#include "optim/solve_status.hpp"

namespace evc::opt {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kConverged:
      return "converged";
    case SolveStatus::kMaxIterations:
      return "max-iterations";
    case SolveStatus::kTimeout:
      return "timeout";
    case SolveStatus::kNumericalFailure:
      return "numerical-failure";
  }
  return "unknown";
}

}  // namespace evc::opt
