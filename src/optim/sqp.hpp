// Sequential Quadratic Programming for the MPC's bilinear program.
//
// Per iteration: linearize the equalities around the iterate, solve the
// convex QP subproblem (exact cost Hessian + regularization), then globalize
// with a backtracking line search on the ℓ1 merit function
//     φ(x) = f(x) + ν·‖c(x)‖₁ + ν·‖(A x − b)₊‖₁.
// The paper prescribes exactly this solver family for the HVAC MPC
// (Kelman & Borrelli, IFAC'11 — bilinear HVAC MPC via SQP).
#pragma once

#include <cstddef>
#include <string>

#include "optim/nlp.hpp"
#include "optim/qp.hpp"

namespace evc::opt {

enum class SqpStatus {
  kConverged,       ///< step and constraint violation below tolerance
  kMaxIterations,   ///< best iterate returned
  kQpFailure,       ///< QP subproblem unsolvable even with elastic relaxation
};

struct SqpOptions {
  std::size_t max_iterations = 30;
  double step_tolerance = 1e-6;        ///< ‖d‖∞ for convergence
  double constraint_tolerance = 1e-6;  ///< ‖c(x)‖∞ for convergence
  double initial_penalty = 10.0;       ///< ν for the ℓ1 merit
  double hessian_regularization = 1e-8;
  std::size_t max_line_search_steps = 25;
  QpOptions qp;
};

struct SqpResult {
  SqpStatus status = SqpStatus::kQpFailure;
  num::Vector x;
  double cost = 0.0;
  double constraint_violation = 0.0;  ///< ‖c(x)‖∞ at the final iterate
  std::size_t iterations = 0;
  std::size_t qp_iterations_total = 0;

  bool usable() const { return status != SqpStatus::kQpFailure; }
};

class SqpSolver {
 public:
  explicit SqpSolver(SqpOptions options = {}) : options_(options) {}

  /// Solve `problem` starting from `x0` (size num_vars()). `x0` need not be
  /// feasible.
  SqpResult solve(const NlpProblem& problem, const num::Vector& x0) const;

 private:
  SqpOptions options_;
};

std::string to_string(SqpStatus status);

}  // namespace evc::opt
