// Sequential Quadratic Programming for the MPC's bilinear program.
//
// Per iteration: linearize the equalities around the iterate, solve the
// convex QP subproblem (exact cost Hessian + regularization), then globalize
// with a backtracking line search on the ℓ1 merit function
//     φ(x) = f(x) + ν·‖c(x)‖₁ + ν·‖(A x − b)₊‖₁.
// The paper prescribes exactly this solver family for the HVAC MPC
// (Kelman & Borrelli, IFAC'11 — bilinear HVAC MPC via SQP).
//
// Hot-path behaviour: the solver owns a persistent QpWorkspace and a reused
// QP subproblem, so consecutive iterations (and consecutive solves on a
// receding horizon) share storage. QP duals are carried from one subproblem
// to the next as interior-point warm starts, and the merit value of an
// accepted line-search candidate is cached so the next iteration does not
// re-evaluate cost/constraints at the same point.
#pragma once

#include <cstddef>
#include <string>

#include "optim/condensed_qp.hpp"
#include "optim/nlp.hpp"
#include "optim/qp.hpp"

namespace evc::opt {

enum class SqpStatus {
  kConverged,       ///< step and constraint violation below tolerance
  kMaxIterations,   ///< best iterate returned
  kTimeout,         ///< wall-clock budget exhausted; best iterate returned
  kQpFailure,       ///< QP subproblem unsolvable even with elastic relaxation
};

/// Coarse classification for control-layer callers (see solve_status.hpp).
SolveStatus solve_status(SqpStatus status);

struct SqpOptions {
  std::size_t max_iterations = 30;
  double step_tolerance = 1e-6;        ///< ‖d‖∞ for convergence
  double constraint_tolerance = 1e-6;  ///< ‖c(x)‖∞ for convergence
  /// Wall-clock budget for one solve (s); 0 disables the deadline. Checked
  /// before every SQP iteration, and the remaining budget caps each QP
  /// subproblem's own deadline, so a stalled subproblem cannot blow through
  /// the control step. On expiry the best iterate so far is returned with
  /// status kTimeout.
  double time_budget_s = 0.0;
  double initial_penalty = 10.0;       ///< ν for the ℓ1 merit
  double hessian_regularization = 1e-8;
  std::size_t max_line_search_steps = 25;
  /// Seed each QP subproblem's interior-point iteration with the previous
  /// subproblem's multipliers (and an externally provided SqpWarmStart for
  /// the first one). Off reproduces fully cold QP solves.
  bool warm_start_duals = true;
  /// Second-order correction against the Maratos effect: when the full QP
  /// step is rejected by the merit test — or accepted without shrinking the
  /// equality violation, the zigzag variant of the same pathology — solve
  /// J·Jᵀ·λ = −c(x+d) for the least-norm feasibility restoration p = Jᵀ·λ
  /// and offer x + d + p to the same acceptance test before backtracking.
  /// Near a curved constraint manifold the full step trades a large cost
  /// improvement for a quadratic feasibility loss; the correction removes
  /// that loss so the unit step — and with it fast local convergence —
  /// survives.
  bool second_order_correction = true;
  QpOptions qp;
  /// QP engine for the subproblems. kCondensed/kAuto route each subproblem
  /// through the condensed dense active-set path when the problem offers a
  /// CondensingPlan, falling back to the sparse interior point on any
  /// failure (and always when no plan exists). kSparse is the original
  /// behaviour.
  QpBackend backend = QpBackend::kSparse;
  CondensedQpOptions condensed;
};

struct SqpResult {
  SqpStatus status = SqpStatus::kQpFailure;
  num::Vector x;
  /// Final QP multipliers (equality / inequality): the dual state to carry
  /// into the next receding-horizon solve as an SqpWarmStart. Empty when no
  /// QP subproblem succeeded.
  num::Vector y_eq;
  num::Vector z_ineq;
  double cost = 0.0;
  double constraint_violation = 0.0;  ///< ‖c(x)‖∞ at the final iterate
  std::size_t iterations = 0;
  std::size_t qp_iterations_total = 0;
  /// Line searches rescued by a second-order correction step.
  std::size_t soc_steps = 0;

  bool usable() const { return status != SqpStatus::kQpFailure; }
};

/// Dual seed for the first QP subproblem of a solve — typically the final
/// multipliers of the previous receding-horizon step. Mismatched sizes are
/// ignored (cold start).
struct SqpWarmStart {
  num::Vector y_eq;
  num::Vector z_ineq;
  bool empty() const { return y_eq.empty() && z_ineq.empty(); }
};

class SqpSolver {
 public:
  explicit SqpSolver(SqpOptions options = {}) : options_(options) {}

  /// Solve `problem` starting from `x0` (size num_vars()). `x0` need not be
  /// feasible. `warm` optionally seeds the first QP subproblem's duals.
  ///
  /// Logically const but reuses an internal workspace: concurrent solve()
  /// calls on the *same* SqpSolver instance are not allowed (one solver per
  /// thread/controller).
  SqpResult solve(const NlpProblem& problem, const num::Vector& x0,
                  const SqpWarmStart* warm = nullptr) const;

  /// Perf counters aggregated over every QP subproblem solved through this
  /// solver's workspace.
  const QpPerfCounters& qp_counters() const { return qp_ws_.counters(); }
  void reset_qp_counters() const { qp_ws_.reset_counters(); }
  /// Checkpoint-restore path: reinstate aggregate counters saved from a
  /// previous solver instance.
  void restore_qp_counters(const QpPerfCounters& counters) const {
    qp_ws_.restore_counters(counters);
  }
  /// Bytes held by the persistent QP workspace.
  std::size_t workspace_bytes() const {
    return qp_ws_.bytes() + condensed_.bytes();
  }

  /// Checkpoint the condensed backend's cross-solve state (the cached
  /// prediction matrices). Always writes a section, empty-cache included,
  /// so the stream layout does not depend on the backend in use.
  void save_backend_state(BinaryWriter& writer) const {
    condensed_.save_cache(writer);
  }
  void load_backend_state(BinaryReader& reader) const {
    condensed_.load_cache(reader);
  }

 private:
  SqpOptions options_;
  // Persistent hot-path storage (see class comment): reused across
  // iterations and across solves.
  mutable QpWorkspace qp_ws_;
  mutable CondensedQpSolver condensed_;
  mutable QpProblem qp_;
  mutable QpWarmStart qp_warm_;
  mutable num::Vector candidate_;
  mutable num::Vector ax_;
  // Second-order-correction scratch: J·Jᵀ and its factorization, the
  // restoration multipliers, and the correction step p = Jᵀ·λ.
  mutable num::Matrix soc_jjt_;
  mutable num::LuFactorization soc_lu_;
  mutable num::Vector soc_rhs_, soc_lambda_, soc_p_;
  mutable num::Vector soc_candidate_;
};

std::string to_string(SqpStatus status);

}  // namespace evc::opt
