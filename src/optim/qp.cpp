#include "optim/qp.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "numerics/kernels.hpp"
#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace evc::opt {

void QpProblem::validate() const {
  const std::size_t n = num_vars();
  EVC_EXPECT(n > 0, "QP with zero variables");
  EVC_EXPECT(h.rows() == n && h.cols() == n, "QP Hessian dimension mismatch");
  if (num_eq() > 0)
    EVC_EXPECT(e_mat.rows() == num_eq() && e_mat.cols() == n,
               "QP equality matrix dimension mismatch");
  else
    EVC_EXPECT(e_mat.rows() == 0, "QP equality matrix/vector mismatch");
  if (num_ineq() > 0)
    EVC_EXPECT(a_mat.rows() == num_ineq() && a_mat.cols() == n,
               "QP inequality matrix dimension mismatch");
  else
    EVC_EXPECT(a_mat.rows() == 0, "QP inequality matrix/vector mismatch");
}

std::string to_string(QpStatus status) {
  switch (status) {
    case QpStatus::kSolved:
      return "solved";
    case QpStatus::kMaxIterations:
      return "max-iterations";
    case QpStatus::kTimeout:
      return "timeout";
    case QpStatus::kNumericalIssue:
      return "numerical-issue";
  }
  return "unknown";
}

SolveStatus solve_status(QpStatus status) {
  switch (status) {
    case QpStatus::kSolved:
      return SolveStatus::kConverged;
    case QpStatus::kMaxIterations:
      return SolveStatus::kMaxIterations;
    case QpStatus::kTimeout:
      return SolveStatus::kTimeout;
    case QpStatus::kNumericalIssue:
      return SolveStatus::kNumericalFailure;
  }
  return SolveStatus::kNumericalFailure;
}

QpPerfCounters& QpPerfCounters::operator+=(const QpPerfCounters& rhs) {
  solves += rhs.solves;
  ipm_iterations += rhs.ipm_iterations;
  factorizations += rhs.factorizations;
  schur_solves += rhs.schur_solves;
  schur_regularizations += rhs.schur_regularizations;
  dense_fallbacks += rhs.dense_fallbacks;
  timeouts += rhs.timeouts;
  warm_starts += rhs.warm_starts;
  workspace_growths += rhs.workspace_growths;
  peak_workspace_bytes = std::max(peak_workspace_bytes,
                                  rhs.peak_workspace_bytes);
  condensed_solves += rhs.condensed_solves;
  condense_rebuilds += rhs.condense_rebuilds;
  active_set_changes += rhs.active_set_changes;
  solve_time_ns += rhs.solve_time_ns;
  factorize_time_ns += rhs.factorize_time_ns;
  timeout_time_ns += rhs.timeout_time_ns;
  return *this;
}

std::size_t QpWorkspace::bytes() const {
  const std::size_t vec_elems =
      x_.capacity() + y_.capacity() + z_.capacity() + s_.capacity() +
      best_x_.capacity() + best_y_.capacity() + best_z_.capacity() +
      r_dual_.capacity() + r_eq_.capacity() + r_eq_neg_.capacity() +
      r_ineq_.capacity() + tmp_mi_.capacity() + rhs1_.capacity() +
      rhs_.capacity() + sol_.capacity() + hx_.capacity() +
      dx_aff_.capacity() + dy_aff_.capacity() + ds_aff_.capacity() +
      dz_aff_.capacity() + dx_.capacity() + dy_.capacity() + ds_.capacity() +
      dz_.capacity() + rc_.capacity();
  return (vec_elems + h_reg_.capacity() + k_mat_.capacity() +
          kkt_.capacity() + a_val_.capacity()) *
             sizeof(double) +
         (a_row_ptr_.capacity() + a_col_.capacity()) * sizeof(std::size_t) +
         schur_.workspace_bytes() + lu_.workspace_bytes();
}

namespace {

// Largest α in (0, 1] with v + α·dv ≥ (1−tau)·v elementwise (v > 0).
double max_step(const num::Vector& v, const num::Vector& dv, double tau) {
  double alpha = 1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (dv[i] < 0.0) alpha = std::min(alpha, -tau * v[i] / dv[i]);
  }
  return alpha;
}

// Books the wall time of one solve into the workspace counters on every exit
// path. Timed-out solves are additionally booked under timeout_time_ns so the
// `timeouts` count has a matching time axis.
struct SolveTimeGuard {
  QpPerfCounters& counters;
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  bool timed_out = false;

  ~SolveTimeGuard() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    counters.solve_time_ns += static_cast<std::uint64_t>(ns);
    if (timed_out) counters.timeout_time_ns += static_cast<std::uint64_t>(ns);
  }
};

}  // namespace

QpResult solve_qp(const QpProblem& problem, const QpOptions& options) {
  QpWorkspace workspace;
  return solve_qp(problem, options, workspace, nullptr);
}

QpResult solve_qp(const QpProblem& problem, const QpOptions& options,
                  QpWorkspace& ws, const QpWarmStart* warm_start) {
  problem.validate();
  const std::size_t n = problem.num_vars();
  const std::size_t me = problem.num_eq();
  const std::size_t mi = problem.num_ineq();

  using Clock = std::chrono::steady_clock;
  const std::size_t bytes_before = ws.bytes();
  ++ws.counters_.solves;
  SolveTimeGuard time_guard{ws.counters_};
  EVC_TRACE_SPAN_VAR(qp_span, "qp.solve");

  // Times one factorization attempt (any path) and books it under
  // factorize_time_ns; the caller still bumps the per-path counters.
  const auto timed_factorize = [&ws](auto&& factorize) {
    EVC_TRACE_SPAN("qp.factorize");
    const Clock::time_point f0 = Clock::now();
    const bool ok = factorize();
    ws.counters_.factorize_time_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - f0)
            .count());
    return ok;
  };

  // Symmetrized, regularized Hessian (reused by residuals and assembly).
  ws.h_reg_.copy_from(problem.h);
  ws.h_reg_.symmetrize();
  for (std::size_t i = 0; i < n; ++i)
    ws.h_reg_(i, i) += options.regularization;

  // Compressed-sparse-row view of A: MPC inequality rows are bounds and
  // small couplings (1–3 nonzeros), so the barrier assembly and every A·v
  // product below run over nonzeros only.
  ws.a_row_ptr_.resize(mi + 1);
  ws.a_col_.clear();
  ws.a_val_.clear();
  for (std::size_t r = 0; r < mi; ++r) {
    ws.a_row_ptr_[r] = ws.a_col_.size();
    for (std::size_t c = 0; c < n; ++c) {
      const double v = problem.a_mat(r, c);
      if (v != 0.0) {
        ws.a_col_.push_back(c);
        ws.a_val_.push_back(v);
      }
    }
  }
  if (mi > 0) ws.a_row_ptr_[mi] = ws.a_col_.size();

  // row-sparse products over the CSR view
  const auto csr_dot_row = [&ws](std::size_t r, const num::Vector& v) {
    double acc = 0.0;
    for (std::size_t k = ws.a_row_ptr_[r]; k < ws.a_row_ptr_[r + 1]; ++k)
      acc += ws.a_val_[k] * v[ws.a_col_[k]];
    return acc;
  };
  // out += Aᵀ·w
  const auto csr_add_at = [&ws, mi](const num::Vector& w, num::Vector& out) {
    for (std::size_t r = 0; r < mi; ++r) {
      const double wr = w[r];
      if (wr == 0.0) continue;
      for (std::size_t k = ws.a_row_ptr_[r]; k < ws.a_row_ptr_[r + 1]; ++k)
        out[ws.a_col_[k]] += ws.a_val_[k] * wr;
    }
  };

  // r_dual = H x + g + Eᵀy + Aᵀz; r_eq = E x − e; r_ineq = A x + s − b.
  const auto compute_residuals = [&](const num::Vector& x,
                                     const num::Vector& y,
                                     const num::Vector& z,
                                     const num::Vector& s) {
    num::gemv(1.0, ws.h_reg_, x, 0.0, ws.r_dual_);
    ws.r_dual_ += problem.g;
    if (me > 0) num::gemv_t(1.0, problem.e_mat, y, 1.0, ws.r_dual_);
    if (mi > 0) csr_add_at(z, ws.r_dual_);
    if (me > 0) {
      num::gemv(1.0, problem.e_mat, x, 0.0, ws.r_eq_);
      ws.r_eq_ -= problem.e_vec;
    } else {
      ws.r_eq_.assign(0, 0.0);
    }
    ws.r_ineq_.resize(mi);
    for (std::size_t r = 0; r < mi; ++r)
      ws.r_ineq_[r] = csr_dot_row(r, x) + s[r] - problem.b_vec[r];
  };
  const auto residual_inf = [&]() {
    return std::max({ws.r_dual_.norm_inf(),
                     ws.r_eq_.empty() ? 0.0 : ws.r_eq_.norm_inf(),
                     ws.r_ineq_.empty() ? 0.0 : ws.r_ineq_.norm_inf()});
  };
  const auto objective_of = [&](const num::Vector& x) {
    num::gemv(1.0, problem.h, x, 0.0, ws.hx_);
    return 0.5 * x.dot(ws.hx_) + problem.g.dot(x);
  };
  const auto finish_workspace_counters = [&]() {
    const std::size_t bytes_after = ws.bytes();
    if (bytes_after > bytes_before) ++ws.counters_.workspace_growths;
    ws.counters_.peak_workspace_bytes =
        std::max(ws.counters_.peak_workspace_bytes, bytes_after);
  };

  QpResult result;
  result.x = num::Vector(n);
  result.y_eq = num::Vector(me);
  result.z_ineq = num::Vector(mi);

  // ---- Pure equality-constrained (or unconstrained) QP: one KKT solve ----
  if (mi == 0) {
    // Block elimination first: Cholesky of the regularized Hessian + Schur
    // complement in the multipliers.
    ++ws.counters_.factorizations;
    if (timed_factorize(
            [&] { return ws.schur_.factorize(ws.h_reg_, problem.e_mat); })) {
      ++ws.counters_.schur_solves;
      if (ws.schur_.regularized()) ++ws.counters_.schur_regularizations;
      ws.rhs1_.resize(n);
      for (std::size_t i = 0; i < n; ++i) ws.rhs1_[i] = -problem.g[i];
      ws.schur_.solve(ws.rhs1_, problem.e_vec, ws.dx_, ws.dy_);
      for (std::size_t i = 0; i < n; ++i) result.x[i] = ws.dx_[i];
      for (std::size_t i = 0; i < me; ++i) result.y_eq[i] = ws.dy_[i];
      result.status = QpStatus::kSolved;
      result.objective = objective_of(result.x);
      compute_residuals(result.x, result.y_eq, result.z_ineq, result.z_ineq);
      result.kkt_residual = residual_inf();
      finish_workspace_counters();
      return result;
    }

    // Dense fallback with regularize-and-retry (e.g. redundant equality
    // rows make the Schur complement singular beyond its internal repair).
    ws.kkt_.resize(n + me, n + me);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) ws.kkt_(r, c) = ws.h_reg_(r, c);
    for (std::size_t r = 0; r < me; ++r)
      for (std::size_t c = 0; c < n; ++c) {
        ws.kkt_(n + r, c) = problem.e_mat(r, c);
        ws.kkt_(c, n + r) = problem.e_mat(r, c);
      }
    ws.rhs_.resize(n + me);
    for (std::size_t i = 0; i < n; ++i) ws.rhs_[i] = -problem.g[i];
    for (std::size_t i = 0; i < me; ++i) ws.rhs_[n + i] = problem.e_vec[i];

    double delta = options.regularization;
    for (int attempt = 0; attempt < 6; ++attempt) {
      ++ws.counters_.factorizations;
      ++ws.counters_.dense_fallbacks;
      if (timed_factorize([&] { return ws.lu_.factorize(ws.kkt_); })) {
        ws.lu_.solve_into(ws.rhs_, ws.sol_);
        for (std::size_t i = 0; i < n; ++i) result.x[i] = ws.sol_[i];
        for (std::size_t i = 0; i < me; ++i) result.y_eq[i] = ws.sol_[n + i];
        result.status = QpStatus::kSolved;
        result.objective = objective_of(result.x);
        compute_residuals(result.x, result.y_eq, result.z_ineq,
                          result.z_ineq);
        result.kkt_residual = residual_inf();
        finish_workspace_counters();
        return result;
      }
      delta = std::max(delta * 100.0, 1e-10);
      for (std::size_t i = 0; i < n; ++i) ws.kkt_(i, i) += delta;
      for (std::size_t i = 0; i < me; ++i) ws.kkt_(n + i, n + i) -= delta;
    }
    result.status = QpStatus::kNumericalIssue;
    finish_workspace_counters();
    return result;
  }

  // ---- Interior point (Mehrotra predictor-corrector) ----
  const bool deadline_active = options.time_budget_s > 0.0;
  const Clock::time_point deadline =
      deadline_active
          ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options.time_budget_s))
          : Clock::time_point{};
  bool hard_failure = false;
  bool timed_out = false;
  num::Vector& x = ws.x_;
  num::Vector& y = ws.y_;
  num::Vector& z = ws.z_;
  num::Vector& s = ws.s_;
  x.assign(n, 0.0);
  y.assign(me, 0.0);
  z.assign(mi, 1.0);
  s.resize(mi);
  // Start slacks at a comfortable distance from the boundary.
  for (std::size_t i = 0; i < mi; ++i)
    s[i] = std::max(1.0, std::abs(problem.b_vec[i]));

  // Warm start: seed the primal from the previous solution and clamp the
  // multipliers/slacks into the interior — an accurate seed starts the
  // barrier nearly converged; a stale one is no worse than a cold start.
  if (warm_start != nullptr && warm_start->x.size() == n &&
      warm_start->y_eq.size() == me && warm_start->z_ineq.size() == mi) {
    ++ws.counters_.warm_starts;
    for (std::size_t i = 0; i < n; ++i) x[i] = warm_start->x[i];
    for (std::size_t i = 0; i < me; ++i) y[i] = warm_start->y_eq[i];
    for (std::size_t i = 0; i < mi; ++i)
      z[i] = std::max(warm_start->z_ineq[i], 1e-3);
    for (std::size_t i = 0; i < mi; ++i) {
      const double slack = problem.b_vec[i] - csr_dot_row(i, x);
      s[i] = std::max(slack, 1e-3 * std::max(1.0, std::abs(problem.b_vec[i])));
    }
  }

  const double scale =
      std::max({1.0, problem.g.norm_inf(), problem.b_vec.norm_inf(),
                me > 0 ? problem.e_vec.norm_inf() : 0.0});

  // Track the best iterate seen so that divergence still returns something
  // usable to the SQP line search.
  num::copy_into(x, ws.best_x_);
  num::copy_into(y, ws.best_y_);
  num::copy_into(z, ws.best_z_);
  double best_residual = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Deadline watchdog: checked between iterations so the loop always
    // leaves a coherent (x, y, z, s) behind — never a half-applied step.
    if (deadline_active && iter > 0 && Clock::now() >= deadline) {
      timed_out = true;
      ++ws.counters_.timeouts;
      break;
    }
    result.iterations = iter + 1;
    ++ws.counters_.ipm_iterations;
    compute_residuals(x, y, z, s);
    const double mu = s.dot(z) / static_cast<double>(mi);
    result.kkt_residual = residual_inf();

    if (!std::isfinite(result.kkt_residual) || !std::isfinite(mu)) {
      // The iteration diverged (ill-conditioned scaling matrix); fall back
      // to the best iterate recorded so far.
      hard_failure = true;
      break;
    }
    const double progress = result.kkt_residual + mu;
    if (progress < best_residual) {
      best_residual = progress;
      num::copy_into(x, ws.best_x_);
      num::copy_into(y, ws.best_y_);
      num::copy_into(z, ws.best_z_);
    }

    if (result.kkt_residual <= options.tolerance * scale &&
        mu <= options.tolerance * scale) {
      result.status = QpStatus::kSolved;
      break;
    }

    // Barrier-augmented Hessian K = H + AᵀDA, D = diag(z/s). Only the
    // upper triangle is accumulated (K is symmetric); the CSR row view
    // makes each row's contribution O(nnz²) instead of O(n·nnz).
    ws.k_mat_.copy_from(ws.h_reg_);
    for (std::size_t r = 0; r < mi; ++r) {
      // Clamp the barrier scaling: an almost-converged active constraint
      // would otherwise overflow the KKT system and poison the
      // factorization.
      const double d = std::clamp(z[r] / s[r], 1e-10, 1e10);
      for (std::size_t ki = ws.a_row_ptr_[r]; ki < ws.a_row_ptr_[r + 1];
           ++ki) {
        const double dai = d * ws.a_val_[ki];
        const std::size_t ci = ws.a_col_[ki];
        for (std::size_t kj = ki; kj < ws.a_row_ptr_[r + 1]; ++kj)
          ws.k_mat_(ci, ws.a_col_[kj]) += dai * ws.a_val_[kj];
      }
    }
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) ws.k_mat_(j, i) = ws.k_mat_(i, j);

    // Factorize the reduced KKT [K, Eᵀ; E, 0] by block elimination; if K is
    // not numerically SPD (extreme barrier scaling), fall back to a dense
    // LU of the full KKT matrix, regularizing once more if needed.
    ++ws.counters_.factorizations;
    bool use_schur = timed_factorize(
        [&] { return ws.schur_.factorize(ws.k_mat_, problem.e_mat); });
    if (use_schur) {
      ++ws.counters_.schur_solves;
      if (ws.schur_.regularized()) ++ws.counters_.schur_regularizations;
    } else {
      ws.kkt_.resize(n + me, n + me);
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) ws.kkt_(r, c) = ws.k_mat_(r, c);
      for (std::size_t r = 0; r < me; ++r)
        for (std::size_t c = 0; c < n; ++c) {
          ws.kkt_(n + r, c) = problem.e_mat(r, c);
          ws.kkt_(c, n + r) = problem.e_mat(r, c);
        }
      ++ws.counters_.dense_fallbacks;
      if (!timed_factorize([&] { return ws.lu_.factorize(ws.kkt_); })) {
        for (std::size_t i = 0; i < n; ++i) ws.kkt_(i, i) += 1e-8;
        for (std::size_t i = 0; i < me; ++i) ws.kkt_(n + i, n + i) -= 1e-8;
        ++ws.counters_.factorizations;
        ++ws.counters_.dense_fallbacks;
        if (!timed_factorize([&] { return ws.lu_.factorize(ws.kkt_); })) {
          hard_failure = true;
          break;
        }
      }
    }

    // Newton step for the perturbed KKT system with complementarity target
    // rc: Z·ds + S·dz = rc − Z·S·e. Eliminating ds = −r_i − A·dx and
    // dz = D·A·dx + (rc − z∘s + z∘r_i)/s gives the reduced system
    // factorized above. Writes into caller-provided buffers — no
    // allocation at steady state.
    const auto solve_newton = [&](const num::Vector& rc, num::Vector& dx,
                                  num::Vector& dy, num::Vector& ds,
                                  num::Vector& dz) {
      ws.tmp_mi_.resize(mi);
      for (std::size_t i = 0; i < mi; ++i)
        ws.tmp_mi_[i] =
            (rc[i] - z[i] * s[i] + z[i] * ws.r_ineq_[i]) / s[i];
      ws.rhs1_.resize(n);
      for (std::size_t i = 0; i < n; ++i) ws.rhs1_[i] = -ws.r_dual_[i];
      for (std::size_t r = 0; r < mi; ++r) {
        const double wr = ws.tmp_mi_[r];
        if (wr == 0.0) continue;
        for (std::size_t k = ws.a_row_ptr_[r]; k < ws.a_row_ptr_[r + 1]; ++k)
          ws.rhs1_[ws.a_col_[k]] -= ws.a_val_[k] * wr;
      }
      if (use_schur) {
        ws.r_eq_neg_.resize(me);
        for (std::size_t i = 0; i < me; ++i) ws.r_eq_neg_[i] = -ws.r_eq_[i];
        ws.schur_.solve(ws.rhs1_, ws.r_eq_neg_, dx, dy);
      } else {
        ws.rhs_.resize(n + me);
        for (std::size_t i = 0; i < n; ++i) ws.rhs_[i] = ws.rhs1_[i];
        for (std::size_t i = 0; i < me; ++i) ws.rhs_[n + i] = -ws.r_eq_[i];
        ws.lu_.solve_into(ws.rhs_, ws.sol_);
        dx.resize(n);
        for (std::size_t i = 0; i < n; ++i) dx[i] = ws.sol_[i];
        dy.resize(me);
        for (std::size_t i = 0; i < me; ++i) dy[i] = ws.sol_[n + i];
      }
      ds.resize(mi);
      for (std::size_t r = 0; r < mi; ++r)
        ds[r] = -ws.r_ineq_[r] - csr_dot_row(r, dx);
      dz.resize(mi);
      for (std::size_t i = 0; i < mi; ++i)
        dz[i] = (rc[i] - z[i] * s[i] - z[i] * ds[i]) / s[i];
    };

    // Predictor (affine): rc = 0 target → drive ZSe to 0.
    ws.rc_.assign(mi, 0.0);
    solve_newton(ws.rc_, ws.dx_aff_, ws.dy_aff_, ws.ds_aff_, ws.dz_aff_);
    const double a_s_aff = max_step(s, ws.ds_aff_, 1.0);
    const double a_z_aff = max_step(z, ws.dz_aff_, 1.0);
    const double alpha_aff = std::min(a_s_aff, a_z_aff);
    double mu_aff = 0.0;
    for (std::size_t i = 0; i < mi; ++i)
      mu_aff += (s[i] + alpha_aff * ws.ds_aff_[i]) *
                (z[i] + alpha_aff * ws.dz_aff_[i]);
    mu_aff /= static_cast<double>(mi);
    const double sigma = std::pow(std::clamp(mu_aff / mu, 0.0, 1.0), 3);

    // Corrector: rc = σμe − ΔS_aff·ΔZ_aff·e.
    for (std::size_t i = 0; i < mi; ++i)
      ws.rc_[i] = sigma * mu - ws.ds_aff_[i] * ws.dz_aff_[i];
    solve_newton(ws.rc_, ws.dx_, ws.dy_, ws.ds_, ws.dz_);

    const double tau = 0.995;
    const double alpha = std::min(
        {max_step(s, ws.ds_, tau), max_step(z, ws.dz_, tau), 1.0});

    x.add_scaled(alpha, ws.dx_);
    if (me > 0) y.add_scaled(alpha, ws.dy_);
    s.add_scaled(alpha, ws.ds_);
    z.add_scaled(alpha, ws.dz_);
  }

  if (result.status != QpStatus::kSolved) {
    // Hand back the best iterate, not the possibly-diverged last one. A
    // near-converged iterate counts as solved: the typical "failure" mode
    // is the barrier matrix blowing up the KKT factorization one iteration
    // *after* the iterate has effectively converged.
    num::copy_into(ws.best_x_, x);
    num::copy_into(ws.best_y_, y);
    num::copy_into(ws.best_z_, z);
    result.kkt_residual = best_residual;
    if (best_residual <= 1e-5 * scale)
      result.status = QpStatus::kSolved;
    else if (hard_failure)
      result.status = QpStatus::kNumericalIssue;
    else
      result.status =
          timed_out ? QpStatus::kTimeout : QpStatus::kMaxIterations;
  }
  time_guard.timed_out = result.status == QpStatus::kTimeout;
  qp_span.arg("iterations", static_cast<double>(result.iterations));
  for (std::size_t i = 0; i < n; ++i) result.x[i] = x[i];
  for (std::size_t i = 0; i < me; ++i) result.y_eq[i] = y[i];
  for (std::size_t i = 0; i < mi; ++i) result.z_ineq[i] = z[i];
  result.objective = objective_of(x);
  finish_workspace_counters();
  return result;
}

}  // namespace evc::opt
