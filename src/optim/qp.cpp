#include "optim/qp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numerics/factorization.hpp"
#include "util/expect.hpp"

namespace evc::opt {

void QpProblem::validate() const {
  const std::size_t n = num_vars();
  EVC_EXPECT(n > 0, "QP with zero variables");
  EVC_EXPECT(h.rows() == n && h.cols() == n, "QP Hessian dimension mismatch");
  if (num_eq() > 0)
    EVC_EXPECT(e_mat.rows() == num_eq() && e_mat.cols() == n,
               "QP equality matrix dimension mismatch");
  else
    EVC_EXPECT(e_mat.rows() == 0, "QP equality matrix/vector mismatch");
  if (num_ineq() > 0)
    EVC_EXPECT(a_mat.rows() == num_ineq() && a_mat.cols() == n,
               "QP inequality matrix dimension mismatch");
  else
    EVC_EXPECT(a_mat.rows() == 0, "QP inequality matrix/vector mismatch");
}

std::string to_string(QpStatus status) {
  switch (status) {
    case QpStatus::kSolved:
      return "solved";
    case QpStatus::kMaxIterations:
      return "max-iterations";
    case QpStatus::kNumericalIssue:
      return "numerical-issue";
  }
  return "unknown";
}

namespace {

struct Residuals {
  num::Vector dual;  // Hx + g + Eᵀy + Aᵀz
  num::Vector eq;    // Ex − e
  num::Vector ineq;  // Ax + s − b
  double inf_norm() const {
    return std::max({dual.norm_inf(), eq.empty() ? 0.0 : eq.norm_inf(),
                     ineq.empty() ? 0.0 : ineq.norm_inf()});
  }
};

Residuals compute_residuals(const QpProblem& p, const num::Matrix& h,
                            const num::Vector& x, const num::Vector& y,
                            const num::Vector& z, const num::Vector& s) {
  Residuals r;
  r.dual = h * x + p.g;
  if (p.num_eq() > 0) r.dual += p.e_mat.transpose_times(y);
  if (p.num_ineq() > 0) r.dual += p.a_mat.transpose_times(z);
  if (p.num_eq() > 0) r.eq = p.e_mat * x - p.e_vec;
  if (p.num_ineq() > 0) r.ineq = p.a_mat * x + s - p.b_vec;
  return r;
}

// Largest α in (0, 1] with v + α·dv ≥ (1−tau)·v elementwise (v > 0).
double max_step(const num::Vector& v, const num::Vector& dv, double tau) {
  double alpha = 1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (dv[i] < 0.0) alpha = std::min(alpha, -tau * v[i] / dv[i]);
  }
  return alpha;
}

double objective_of(const QpProblem& p, const num::Vector& x) {
  return 0.5 * x.dot(p.h * x) + p.g.dot(x);
}

}  // namespace

QpResult solve_qp(const QpProblem& problem, const QpOptions& options) {
  problem.validate();
  const std::size_t n = problem.num_vars();
  const std::size_t me = problem.num_eq();
  const std::size_t mi = problem.num_ineq();

  num::Matrix h = problem.h;
  h.symmetrize();
  for (std::size_t i = 0; i < n; ++i) h(i, i) += options.regularization;

  QpResult result;
  result.x = num::Vector(n);
  result.y_eq = num::Vector(me);
  result.z_ineq = num::Vector(mi);

  // ---- Pure equality-constrained (or unconstrained) QP: one KKT solve ----
  if (mi == 0) {
    num::Matrix kkt(n + me, n + me);
    kkt.set_block(0, 0, h);
    if (me > 0) {
      kkt.set_block(n, 0, problem.e_mat);
      kkt.set_block(0, n, problem.e_mat.transposed());
    }
    num::Vector rhs(n + me);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -problem.g[i];
    for (std::size_t i = 0; i < me; ++i) rhs[n + i] = problem.e_vec[i];

    // Regularize-and-retry on singular KKT (e.g. redundant equality rows).
    double delta = options.regularization;
    for (int attempt = 0; attempt < 6; ++attempt) {
      num::LuFactorization lu(kkt);
      if (lu.ok()) {
        const num::Vector sol = lu.solve(rhs);
        result.x = sol.segment(0, n);
        result.y_eq = sol.segment(n, me);
        result.status = QpStatus::kSolved;
        result.objective = objective_of(problem, result.x);
        const Residuals r = compute_residuals(problem, h, result.x,
                                              result.y_eq, result.z_ineq,
                                              num::Vector(0));
        result.kkt_residual = r.inf_norm();
        return result;
      }
      delta = std::max(delta * 100.0, 1e-10);
      for (std::size_t i = 0; i < n; ++i) kkt(i, i) += delta;
      for (std::size_t i = 0; i < me; ++i) kkt(n + i, n + i) -= delta;
    }
    result.status = QpStatus::kNumericalIssue;
    return result;
  }

  // ---- Interior point (Mehrotra predictor-corrector) ----
  bool hard_failure = false;
  num::Vector x(n), y(me), z(mi, 1.0), s(mi, 1.0);
  // Start slacks at a comfortable distance from the boundary.
  for (std::size_t i = 0; i < mi; ++i)
    s[i] = std::max(1.0, std::abs(problem.b_vec[i]));

  const double scale =
      std::max({1.0, problem.g.norm_inf(), problem.b_vec.norm_inf(),
                me > 0 ? problem.e_vec.norm_inf() : 0.0});

  // Track the best iterate seen so that divergence still returns something
  // usable to the SQP line search.
  num::Vector best_x = x, best_y = y, best_z = z;
  double best_residual = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const Residuals res = compute_residuals(problem, h, x, y, z, s);
    const double mu = s.dot(z) / static_cast<double>(mi);
    result.kkt_residual = res.inf_norm();

    if (!std::isfinite(result.kkt_residual) || !std::isfinite(mu)) {
      // The iteration diverged (ill-conditioned scaling matrix); fall back
      // to the best iterate recorded so far.
      hard_failure = true;
      break;
    }
    const double progress = result.kkt_residual + mu;
    if (progress < best_residual) {
      best_residual = progress;
      best_x = x;
      best_y = y;
      best_z = z;
    }

    if (result.kkt_residual <= options.tolerance * scale &&
        mu <= options.tolerance * scale) {
      result.status = QpStatus::kSolved;
      break;
    }

    // Reduced KKT: [H + AᵀDA, Eᵀ; E, 0], D = diag(z/s).
    num::Matrix kkt(n + me, n + me);
    {
      num::Matrix hd = h;
      for (std::size_t r = 0; r < mi; ++r) {
        // Clamp the barrier scaling: an almost-converged active constraint
        // would otherwise overflow the KKT system and poison the LU.
        const double d = std::clamp(z[r] / s[r], 1e-10, 1e10);
        for (std::size_t i = 0; i < n; ++i) {
          const double ari = problem.a_mat(r, i);
          if (ari == 0.0) continue;
          const double dai = d * ari;
          for (std::size_t j = 0; j < n; ++j)
            hd(i, j) += dai * problem.a_mat(r, j);
        }
      }
      kkt.set_block(0, 0, hd);
    }
    if (me > 0) {
      kkt.set_block(n, 0, problem.e_mat);
      kkt.set_block(0, n, problem.e_mat.transposed());
    }

    num::LuFactorization lu(kkt);
    if (!lu.ok()) {
      // Regularize the whole system once; if that also fails, bail out with
      // whatever iterate we have.
      for (std::size_t i = 0; i < n; ++i) kkt(i, i) += 1e-8;
      for (std::size_t i = 0; i < me; ++i) kkt(n + i, n + i) -= 1e-8;
      lu = num::LuFactorization(kkt);
      if (!lu.ok()) {
        hard_failure = true;
        break;
      }
    }

    auto solve_newton = [&](const num::Vector& rc) {
      // Newton step for the perturbed KKT system with complementarity
      // target rc: Z·ds + S·dz = rc − Z·S·e. Eliminating ds = −r_i − A·dx
      // and dz = D·A·dx + (rc − z∘s + z∘r_i)/s gives the reduced system
      // already factorized in `lu`.
      num::Vector tmp(mi);
      for (std::size_t i = 0; i < mi; ++i)
        tmp[i] = (rc[i] - z[i] * s[i] + z[i] * res.ineq[i]) / s[i];
      num::Vector rhs(n + me);
      num::Vector rhs1 = -res.dual - problem.a_mat.transpose_times(tmp);
      rhs.set_segment(0, rhs1);
      if (me > 0) rhs.set_segment(n, -res.eq);
      const num::Vector sol = lu.solve(rhs);
      num::Vector dx = sol.segment(0, n);
      num::Vector dy = sol.segment(n, me);
      num::Vector ds = -res.ineq - problem.a_mat * dx;
      num::Vector dz(mi);
      for (std::size_t i = 0; i < mi; ++i)
        dz[i] = (rc[i] - z[i] * s[i] - z[i] * ds[i]) / s[i];
      struct Step {
        num::Vector dx, dy, ds, dz;
      };
      return Step{std::move(dx), std::move(dy), std::move(ds), std::move(dz)};
    };

    // Predictor (affine): rc = 0 target → drive ZSe to 0.
    num::Vector rc_aff(mi, 0.0);
    auto aff = solve_newton(rc_aff);
    const double a_s_aff = max_step(s, aff.ds, 1.0);
    const double a_z_aff = max_step(z, aff.dz, 1.0);
    const double alpha_aff = std::min(a_s_aff, a_z_aff);
    double mu_aff = 0.0;
    for (std::size_t i = 0; i < mi; ++i)
      mu_aff += (s[i] + alpha_aff * aff.ds[i]) * (z[i] + alpha_aff * aff.dz[i]);
    mu_aff /= static_cast<double>(mi);
    const double sigma = std::pow(std::clamp(mu_aff / mu, 0.0, 1.0), 3);

    // Corrector: rc = σμe − ΔS_aff·ΔZ_aff·e.
    num::Vector rc(mi);
    for (std::size_t i = 0; i < mi; ++i)
      rc[i] = sigma * mu - aff.ds[i] * aff.dz[i];
    auto step = solve_newton(rc);

    const double tau = 0.995;
    const double alpha =
        std::min({max_step(s, step.ds, tau), max_step(z, step.dz, tau), 1.0});

    x.add_scaled(alpha, step.dx);
    if (me > 0) y.add_scaled(alpha, step.dy);
    s.add_scaled(alpha, step.ds);
    z.add_scaled(alpha, step.dz);
  }

  if (result.status != QpStatus::kSolved) {
    // Hand back the best iterate, not the possibly-diverged last one. A
    // near-converged iterate counts as solved: the typical "failure" mode
    // is the barrier matrix blowing up the KKT factorization one iteration
    // *after* the iterate has effectively converged.
    x = best_x;
    y = best_y;
    z = best_z;
    result.kkt_residual = best_residual;
    if (best_residual <= 1e-5 * scale)
      result.status = QpStatus::kSolved;
    else
      result.status =
          hard_failure ? QpStatus::kNumericalIssue : QpStatus::kMaxIterations;
  }
  result.x = x;
  result.y_eq = y;
  result.z_ineq = z;
  result.objective = objective_of(problem, x);
  return result;
}

}  // namespace evc::opt
