// Structured solver outcome shared by the QP and SQP layers.
//
// Callers used to receive the solver's last iterate with no signal about
// *why* the iteration stopped; a supervisor cannot build a fallback chain on
// that. SolveStatus is the common, coarse classification every solver in
// optim/ maps its native status onto, so control-layer code (MPC controller,
// fault-tolerant supervisor) can branch on one enum:
//   kConverged        — tolerances met, result fully trustworthy,
//   kMaxIterations    — budgeted iterations exhausted; best iterate returned,
//   kTimeout          — wall-clock budget exhausted; best iterate returned,
//   kNumericalFailure — no usable iterate (factorization failure/divergence);
//                       the returned point must NOT be applied to a plant.
#pragma once

#include <string>

namespace evc::opt {

enum class SolveStatus {
  kConverged,
  kMaxIterations,
  kTimeout,
  kNumericalFailure,
};

std::string to_string(SolveStatus status);

}  // namespace evc::opt
