// Condensed QP backend for the MPC fast path.
//
// The sparse path hands the interior-point solver the full step-space QP —
// all 11N+2 variables, 6N+2 equality rows — every receding-horizon step.
// But the equalities are the *model*: given the 5N free inputs per step
// (supply temperature, compressor duty, recirculation, mass flow, comfort
// slack), the states and powers are determined. Condensing eliminates them
// up front (the Φ/Γ "prediction matrix" construction of classic MPC,
// generalized here to an arbitrary triangularizable equality structure):
//
//     d = Z·v + d_p       (d: all variables, v: free variables)
//
// with E·Z = 0 and E·d_p = e, turning the QP into a small dense input-space
// problem
//
//     min ½ vᵀ(ZᵀHZ) v + (Zᵀ(H·d_p + g))ᵀ v   s.t.  (A·Z) v ≤ b − A·d_p
//
// solved by the warm-started dense active-set method in
// optim/dense_active_set. The win is structural: Z, ZᵀHZ (and its Cholesky
// factor), and A·Z depend only on the *linearization*, which barely moves
// between SQP iterations and receding-horizon steps — so they are cached in
// this solver and rebuilt only when the cached equality matrix drifts past
// a tolerance. A steady-state warm solve is then two small triangular
// sweeps and an active-set confirmation: microseconds, not milliseconds.
//
// Which variables are "dependent" and in what order they can be eliminated
// is problem knowledge, declared by the NLP through a CondensingPlan (the
// MPC formulation orders its rows so the dependent block is unit-lower-
// triangular-ish with pivots ≥ 1). The plan is validated here; a problem
// without a plan, or a solve that fails numerically, falls back to the
// sparse interior-point path — the condensed backend is an accelerator,
// never the only route to an answer.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "numerics/factorization.hpp"
#include "numerics/matrix.hpp"
#include "numerics/vector.hpp"
#include "optim/dense_active_set.hpp"
#include "optim/qp.hpp"

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::opt {

/// Which QP engine the SQP layer uses for its subproblems.
enum class QpBackend {
  kSparse,     ///< full-space interior point (the original path)
  kCondensed,  ///< condensed dense active set, IPM fallback on failure
  kAuto,       ///< condensed when the problem offers a plan, else sparse
};

const char* to_string(QpBackend backend);
/// Parse an EVC_MPC_BACKEND value ("sparse"|"condensed"|"auto");
/// unknown strings → nullopt.
std::optional<QpBackend> parse_qp_backend(std::string_view text);
/// Backend from the EVC_MPC_BACKEND environment variable, or `fallback`
/// when the variable is unset/empty/unrecognized (unrecognized values also
/// print a note on stderr, mirroring EVC_SIMD handling).
QpBackend qp_backend_from_env(QpBackend fallback);

/// Declaration of an eliminable equality structure: equality row
/// `dep_rows[i]` is solved for variable `dep_cols[i]`, in order. Valid iff
/// row dep_rows[i] has no nonzero in any dep_cols[j] with j > i (the
/// dependent block is lower triangular in elimination order) and every
/// pivot E(dep_rows[i], dep_cols[i]) stays well away from zero. All
/// equality rows must appear exactly once, so the elimination consumes the
/// entire equality system.
struct CondensingPlan {
  std::size_t num_vars = 0;
  std::vector<std::size_t> dep_rows;
  std::vector<std::size_t> dep_cols;
  /// Derived by finalize(): the non-dependent columns, ascending — the
  /// variables of the condensed QP, in the order Z's columns use.
  std::vector<std::size_t> free_cols;

  std::size_t num_eq() const { return dep_rows.size(); }
  std::size_t num_free() const { return free_cols.size(); }

  /// Validate index ranges/uniqueness and derive free_cols. Returns false
  /// (leaving the plan unusable) on any inconsistency. Triangularity and
  /// pivot health are structural properties of E and are checked against
  /// the actual matrix at rebuild time, not here.
  bool finalize();
};

struct CondensedQpOptions {
  /// Relative ∞-norm drift of the equality matrix (and Hessian diagonal)
  /// beyond which the cached prediction matrices are rebuilt. The cached
  /// matrices are used *as* the linearization when within tolerance, so the
  /// default is tight enough that reuse only happens when the SQP iterate
  /// has effectively stopped moving (converged steps, ZOH holds) — a
  /// rebuild is cheap, a silently stale model is not.
  double drift_tolerance = 1e-7;
  /// The SQP layer's Hessian and inequality matrix are constant across
  /// iterations (quadratic objective, fixed bounds) except for the diagonal
  /// regularization it may add — which the diagonal drift check catches.
  /// Set false for problems whose full H/A genuinely change, at the cost of
  /// a full-matrix compare per solve.
  bool assume_constant_hessian = true;
  /// Minimum pivot magnitude accepted when triangularizing E at rebuild.
  double min_pivot = 1e-8;
  /// Inequality multipliers in the warm start seed the active set when they
  /// exceed max(warm_threshold, warm_relative · max_i z_i). The relative
  /// part matters when the seed comes from an *interior-point* solve (the
  /// bootstrap after any fallback): IPM multipliers are strictly positive
  /// everywhere — inactive rows sit at the duality-gap floor (~tolerance),
  /// orders of magnitude below the active ones — so an absolute threshold
  /// alone seeds every row and the active-set method starts from garbage.
  double warm_threshold = 1e-8;
  double warm_relative = 1e-4;
  DenseActiveSetOptions active_set;
};

/// Condensed-backend solver with a persistent prediction-matrix cache.
/// One instance per SQP solver; not thread-safe. All cross-solve state is
/// the cache (E/H/A snapshots) — checkpointable via save_cache/load_cache —
/// plus matrices derived deterministically from it, so a restored solver
/// replays byte-identically.
class CondensedQpSolver {
 public:
  /// Solve the QP through the condensed path. On any structural or
  /// numerical failure returns a result with status kNumericalIssue
  /// (usable() false) and books nothing but the attempt — the caller is
  /// expected to fall back to solve_qp. On success books
  /// solves/condensed_solves, either condense_rebuilds+factorizations (cache
  /// miss) or warm_starts (cache hit with a warm seed), and
  /// active_set_changes into `counters`.
  QpResult solve(const QpProblem& qp, const CondensingPlan& plan,
                 const CondensedQpOptions& options, QpPerfCounters& counters,
                 const QpWarmStart* warm_start);

  /// Drop the cached prediction matrices (next solve rebuilds).
  void invalidate() { state_ = CacheState::kEmpty; }
  bool has_cache() const { return state_ != CacheState::kEmpty; }

  /// Serialize the cache snapshots (E/H/A at last rebuild). The derived
  /// matrices are *not* written: load_cache marks them for silent
  /// re-derivation on the next solve — same bits, no counter increments, so
  /// a restored run's telemetry matches an uninterrupted one.
  void save_cache(BinaryWriter& writer) const;
  void load_cache(BinaryReader& reader);

  std::size_t bytes() const;

 private:
  enum class CacheState {
    kEmpty,        ///< no snapshots; next solve rebuilds
    kNeedsDerive,  ///< snapshots restored from a checkpoint; derive silently
    kReady,        ///< snapshots + derived matrices valid
  };

  bool plan_matches(const QpProblem& qp, const CondensingPlan& plan) const;
  bool drift_within(const QpProblem& qp, const CondensedQpOptions& options)
      const;
  /// Build Z, H_r = ZᵀHZ (+ Cholesky), A_r = A·Z and the dual-recovery
  /// tables from the cached snapshots. Returns false when E cannot be
  /// triangularized in plan order or H_r is not positive definite.
  bool derive(const CondensingPlan& plan, double min_pivot);

  CacheState state_ = CacheState::kEmpty;

  // Snapshots of the linearization the cache was built from.
  num::Matrix cached_e_, cached_h_, cached_a_;

  // Derived: the condensed problem.
  num::Matrix z_;    ///< num_vars × num_free null-space basis, E·Z = 0
  num::Matrix zt_;   ///< Zᵀ (kept for the ZᵀHZ product)
  num::Matrix hz_;   ///< H·Z scratch
  num::Matrix h_r_;  ///< ZᵀHZ
  num::Matrix a_r_;  ///< A·Z
  num::CholeskyFactorization chol_hr_;
  std::vector<double> pivots_;  ///< E(dep_rows[i], dep_cols[i])
  // Dual recovery: for elimination step i, the sub-column nonzeros
  // E(dep_rows[j], dep_cols[i]) with j > i, flattened CSR-style.
  std::vector<std::size_t> col_ptr_, col_j_;
  std::vector<double> col_val_;

  DenseActiveSetSolver active_set_;

  // Per-solve scratch.
  num::Vector d_p_, rhs_full_, g_r_, b_r_, v_, lam_, hx_, y_eq_rhs_;
  std::vector<std::size_t> warm_idx_;
};

}  // namespace evc::opt
