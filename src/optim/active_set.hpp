// Primal active-set method for dense strictly convex QPs.
//
// An independent second solver for the same problem class as solve_qp()'s
// interior-point method. Two uses:
//  * cross-validation — the randomized test suite solves the same QPs with
//    both methods and requires matching optima, which catches solver bugs
//    that KKT-residual checks alone can miss;
//  * ablation — classical MPC deployments often prefer active-set because
//    of its excellent warm-starting behaviour; bench_ablation_solver can
//    compare both under the MPC workload.
//
// Requires H ≻ 0 (add regularization for semidefinite problems) and a
// feasible starting point; `find_feasible_point` provides one via a
// slack-minimizing phase-1.
#pragma once

#include <optional>

#include "optim/qp.hpp"

namespace evc::opt {

struct ActiveSetOptions {
  std::size_t max_iterations = 200;
  double tolerance = 1e-9;
};

/// Solve with the primal active-set method starting from `x0`, which must
/// satisfy E x0 = e and A x0 ≤ b (within tolerance). Status is kSolved on
/// convergence, kMaxIterations otherwise, kNumericalIssue on singular KKT
/// systems or an infeasible start.
QpResult solve_qp_active_set(const QpProblem& problem, const num::Vector& x0,
                             const ActiveSetOptions& options = {});

/// Phase-1: find a point satisfying E x = e, A x ≤ b, or nullopt if none
/// was found (uses the interior-point solver on a slack formulation).
std::optional<num::Vector> find_feasible_point(const QpProblem& problem);

}  // namespace evc::opt
