// Warm-started primal-dual active-set solver for small dense QPs
//
//   minimize    ½ vᵀH v + gᵀv        (H symmetric positive definite)
//   subject to  A v ≤ b
//
// — the input-space subproblem produced by the condensed MPC backend
// (optim/condensed_qp). The receding-horizon usage pattern is a sequence of
// nearly identical QPs whose optimal active set barely changes from one
// solve to the next, which is exactly the regime where an active-set method
// beats the interior point: seeded with the previous solve's active set it
// typically confirms optimality in one iteration, touching nothing but a
// handful of back-substitutions.
//
// Method: dual active set (Goldfarb–Idnani). Start at the optimum of a
// relaxed problem — the seeded working set W, pruned of any row whose
// equality-constrained multiplier
//     S λ_W = A_W H⁻¹(−g) − b_W,   S = A_W H⁻¹ A_Wᵀ,
// comes out negative — then repeatedly pick a violated constraint p and
// drive its multiplier up from zero. Each dual step moves (v, λ) along
//     dv = −z,  z = H⁻¹a_p − H⁻¹A_Wᵀ r,   dλ_W = −r,  r = S⁻¹ A_W H⁻¹ a_p,
// taking the smaller of the full step s_p/κ (κ = a_pᵀz, the curvature left
// in p's direction) and the first dual blocking step λ_k/r_k; a blocked
// step drops row k and retries, a full step adds p. The dual objective
// strictly increases, so termination is finite for strictly convex H — no
// cycling even on LP-like problems whose optimum is a vertex with ~n active
// rows (the condensed MPC cost is exactly that: linear power and slack
// terms, curvature only from the SoC/comfort quadratics and the SQP
// regularization). A correct warm seed short-circuits to one EQP solve plus
// one feasibility scan. Matches the interior-point solution to tight
// tolerance by construction (tests/dense_active_set_test asserts it).
//
// The Cholesky factor of S is maintained incrementally: adding a constraint
// appends one row (a triangular solve — arithmetic identical to the
// corresponding column step of a fresh factorization), removing one
// re-triangularizes the trailing block with a rank-one update instead of
// refactorizing (SchurCholesky below; verified against a from-scratch
// factorization in tests/dense_active_set_test). The factor of H itself is
// owned by the *caller* and passed in, so the condensed backend can cache it
// across solves and across receding-horizon steps.
//
// Failure honesty: a singular Schur append (numerically dependent working
// rows), a stalled sweep, or the iteration cap all surface as a non-usable
// status. The caller falls back to the interior-point path for that
// subproblem — this solver is the fast path, never the only path.
#pragma once

#include <cstddef>
#include <vector>

#include "numerics/factorization.hpp"
#include "numerics/matrix.hpp"
#include "numerics/vector.hpp"
#include "optim/qp.hpp"

namespace evc::opt {

/// Cholesky factor L of a symmetric positive definite matrix S that grows
/// and shrinks one row/column at a time (the active-set Schur complement).
/// Append solves L·l = s (the same arithmetic a fresh factorization would
/// perform for that column); remove deletes a row/column and restores
/// triangularity of the trailing block with a positive rank-one update.
class SchurCholesky {
 public:
  void reset() { m_ = 0; }
  std::size_t dim() const { return m_; }

  /// Grow S by one row/column whose off-diagonal block is `cross` (the m
  /// existing entries S(0..m-1, m)) and diagonal is `diag`. Returns false —
  /// leaving the factor unchanged — when the new pivot is not positive to
  /// tolerance (the new row is numerically dependent).
  bool append(const double* cross, double diag, double singular_tolerance);

  /// Remove row/column `k` (0-based) and re-triangularize the trailing
  /// block with a rank-one Cholesky update.
  void remove(std::size_t k);

  /// Solve S·x = b in place via L (forward + backward substitution).
  void solve_in_place(double* b) const;

  /// Factor entry L(r, c), r ≥ c — test introspection.
  double entry(std::size_t r, std::size_t c) const {
    return l_[r * cap_ + c];
  }

  std::size_t bytes() const {
    return l_.capacity() * sizeof(double) + v_.capacity() * sizeof(double);
  }

 private:
  double& at(std::size_t r, std::size_t c) { return l_[r * cap_ + c]; }
  double at(std::size_t r, std::size_t c) const { return l_[r * cap_ + c]; }
  void ensure_capacity(std::size_t m);

  std::size_t m_ = 0;    ///< current dimension
  std::size_t cap_ = 0;  ///< row stride of l_
  std::vector<double> l_;
  std::vector<double> v_;  ///< rank-one update scratch
};

struct DenseActiveSetOptions {
  /// Cap on dual steps (adds + drops + the seed-pruning passes). A warm
  /// solve confirms in 1; a cold solve of an LP-like problem performs about
  /// one step per optimal active row, so size this ≳ 2·n.
  std::size_t max_iterations = 200;
  /// Feasibility/optimality margin, scaled per row by max(1, |b_i|):
  /// constraint i counts as violated when a_iᵀv − b_i exceeds it, and a
  /// working-set multiplier as wrong-signed when below its negative.
  double tolerance = 1e-9;
  /// Schur pivot acceptance (relative to the appended diagonal): below this
  /// the candidate row is treated as dependent on the working set (κ = 0,
  /// pure dual step).
  double singular_tolerance = 1e-12;
};

struct DenseActiveSetOutput {
  QpStatus status = QpStatus::kNumericalIssue;
  std::size_t iterations = 0;   ///< dual steps performed (adds + drops)
  std::size_t set_changes = 0;  ///< constraints added + removed
  double kkt_residual = 0.0;    ///< max primal violation / dual negativity
  bool usable() const { return status == QpStatus::kSolved; }
};

class DenseActiveSetSolver {
 public:
  /// Solve min ½vᵀHv + gᵀv s.t. Av ≤ b. `h_chol` is the caller-owned
  /// Cholesky factor of H (cacheable across solves) and `h` the matrix it
  /// factors — needed for the final KKT refinement, which polishes away the
  /// rounding error the incremental dual updates accumulate. `warm_active`
  /// seeds the working set (ascending constraint indices — typically the
  /// support of the previous solve's multipliers) and may be empty for a
  /// cold start. On success `v` holds the primal solution and `lambda` the
  /// full-length multiplier vector (zero at inactive rows). On failure the
  /// outputs are unspecified and the caller should fall back.
  ///
  /// Deterministic: the result is a pure function of the inputs — no state
  /// carries across calls, so a checkpoint-restored controller replays the
  /// same solves bit-for-bit.
  DenseActiveSetOutput solve(const num::CholeskyFactorization& h_chol,
                             const num::Matrix& h, const num::Matrix& a,
                             const num::Vector& g, const num::Vector& b,
                             const std::vector<std::size_t>& warm_active,
                             const DenseActiveSetOptions& options,
                             num::Vector& v, num::Vector& lambda);

  /// Working set of the most recent successful solve (ascending indices) —
  /// the warm seed for the next solve in a receding-horizon sequence.
  const std::vector<std::size_t>& active_set() const { return active_; }

  std::size_t bytes() const;

 private:
  bool try_add(const num::CholeskyFactorization& h_chol, const num::Matrix& a,
               std::size_t idx, double singular_tolerance);
  void remove_at(std::size_t pos);
  void ensure_hinv_rows(std::size_t rows, std::size_t cols);

  std::vector<std::size_t> active_;
  SchurCholesky schur_;
  /// Row t = (H⁻¹ a_{active_[t]})ᵀ — the columns of H⁻¹A_Wᵀ, stored as rows
  /// so every inner loop is contiguous.
  num::Matrix hinv_rows_;
  std::size_t hinv_count_ = 0;
  num::Vector w_, neg_g_, rhs_n_, hinv_new_, resid_;
  /// Working-set multipliers / dual step direction, aligned with active_.
  std::vector<double> lam_w_, r_w_;
  std::vector<double> cross_;
  std::vector<unsigned char> in_active_;
  std::vector<std::size_t> to_remove_;
};

}  // namespace evc::opt
