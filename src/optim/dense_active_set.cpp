#include "optim/dense_active_set.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numerics/kernels.hpp"
#include "util/expect.hpp"

namespace evc::opt {

// ---------------------------------------------------------------------------
// SchurCholesky

void SchurCholesky::ensure_capacity(std::size_t m) {
  if (m <= cap_) return;
  std::size_t grown = std::max<std::size_t>(cap_ * 2, 8);
  grown = std::max(grown, m);
  std::vector<double> fresh(grown * grown, 0.0);
  for (std::size_t r = 0; r < m_; ++r)
    for (std::size_t c = 0; c <= r; ++c) fresh[r * grown + c] = at(r, c);
  l_ = std::move(fresh);
  cap_ = grown;
  v_.resize(cap_);
}

bool SchurCholesky::append(const double* cross, double diag,
                           double singular_tolerance) {
  ensure_capacity(m_ + 1);
  // Forward-substitute L·y = cross into the new bottom row — entry for
  // entry, the arithmetic a fresh factorization would perform for this
  // column of S.
  double* row = &l_[m_ * cap_];
  double sum_sq = 0.0;
  for (std::size_t c = 0; c < m_; ++c) {
    const double* lc = &l_[c * cap_];
    const double y = (cross[c] - num::dot_span(row, lc, c)) / lc[c];
    row[c] = y;
    sum_sq += y * y;
  }
  const double pivot_sq = diag - sum_sq;
  if (!(pivot_sq > singular_tolerance)) return false;
  row[m_] = std::sqrt(pivot_sq);
  ++m_;
  return true;
}

void SchurCholesky::remove(std::size_t k) {
  EVC_EXPECT(k < m_, "SchurCholesky::remove index out of range");
  // Column k below the diagonal is the rank-one correction that restores
  // L22·L22ᵀ once row/column k is cut out: the trailing block satisfies
  // L22_new·L22_newᵀ = L22·L22ᵀ + v·vᵀ.
  const std::size_t tail = m_ - k - 1;
  if (v_.size() < tail) v_.resize(cap_);
  for (std::size_t i = 0; i < tail; ++i) v_[i] = at(k + 1 + i, k);

  for (std::size_t r = k; r + 1 < m_; ++r) {
    double* dst = &l_[r * cap_];
    const double* src = &l_[(r + 1) * cap_];
    for (std::size_t c = 0; c < k; ++c) dst[c] = src[c];
    for (std::size_t c = k; c <= r; ++c) dst[c] = src[c + 1];
  }
  --m_;

  // Positive rank-one update of the trailing block, column by column
  // (Givens-style: each column j mixes with v and shrinks v's support).
  for (std::size_t j = 0; j < tail; ++j) {
    double& ljj = at(k + j, k + j);
    const double r = std::sqrt(ljj * ljj + v_[j] * v_[j]);
    const double c = r / ljj;
    const double s = v_[j] / ljj;
    ljj = r;
    for (std::size_t i = j + 1; i < tail; ++i) {
      double& lij = at(k + i, k + j);
      lij = (lij + s * v_[i]) / c;
      v_[i] = c * v_[i] - s * lij;
    }
  }
}

void SchurCholesky::solve_in_place(double* b) const {
  for (std::size_t r = 0; r < m_; ++r) {
    const double* row = &l_[r * cap_];
    b[r] = (b[r] - num::dot_span(row, b, r)) / row[r];
  }
  for (std::size_t r = m_; r-- > 0;) {
    double acc = b[r];
    for (std::size_t i = r + 1; i < m_; ++i) acc -= at(i, r) * b[i];
    b[r] = acc / at(r, r);
  }
}

// ---------------------------------------------------------------------------
// DenseActiveSetSolver

bool DenseActiveSetSolver::try_add(const num::CholeskyFactorization& h_chol,
                                   const num::Matrix& a, std::size_t idx,
                                   double singular_tolerance) {
  const std::size_t n = a.cols();
  const double* a_idx = a.row_ptr(idx);
  rhs_n_.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) rhs_n_[j] = a_idx[j];
  h_chol.solve_into(rhs_n_, hinv_new_);

  const std::size_t nw = active_.size();
  cross_.resize(std::max<std::size_t>(nw, 1));
  for (std::size_t t = 0; t < nw; ++t)
    cross_[t] = num::dot_span(a.row_ptr(active_[t]), hinv_new_.ptr(), n);
  const double diag = num::dot_span(a_idx, hinv_new_.ptr(), n);
  const double tol = singular_tolerance * std::max(std::abs(diag), 1.0);
  if (!schur_.append(cross_.data(), diag, tol)) return false;

  double* dst = hinv_rows_.row_ptr(nw);
  for (std::size_t j = 0; j < n; ++j) dst[j] = hinv_new_[j];
  active_.push_back(idx);
  in_active_[idx] = 1;
  hinv_count_ = nw + 1;
  return true;
}

void DenseActiveSetSolver::remove_at(std::size_t pos) {
  schur_.remove(pos);
  in_active_[active_[pos]] = 0;
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(pos));
  const std::size_t n = hinv_rows_.cols();
  for (std::size_t t = pos; t + 1 < hinv_count_; ++t) {
    double* dst = hinv_rows_.row_ptr(t);
    const double* src = hinv_rows_.row_ptr(t + 1);
    for (std::size_t j = 0; j < n; ++j) dst[j] = src[j];
  }
  --hinv_count_;
}

void DenseActiveSetSolver::ensure_hinv_rows(std::size_t rows,
                                            std::size_t cols) {
  if (hinv_rows_.rows() < rows || hinv_rows_.cols() != cols)
    hinv_rows_.resize(rows, cols);
}

DenseActiveSetOutput DenseActiveSetSolver::solve(
    const num::CholeskyFactorization& h_chol, const num::Matrix& h,
    const num::Matrix& a, const num::Vector& g, const num::Vector& b,
    const std::vector<std::size_t>& warm_active,
    const DenseActiveSetOptions& options, num::Vector& v,
    num::Vector& lambda) {
  const std::size_t n = a.cols();
  const std::size_t m = a.rows();
  EVC_EXPECT(h_chol.ok() && h_chol.dim() == n,
             "dense active set: H factor missing or wrong dimension");
  EVC_EXPECT(h.rows() == n && h.cols() == n,
             "dense active set: H dimension mismatch");
  EVC_EXPECT(g.size() == n && b.size() == m,
             "dense active set: dimension mismatch");

  DenseActiveSetOutput out;
  const double inf = std::numeric_limits<double>::infinity();
  const std::size_t cap = std::min(m, n);

  // Unconstrained minimizer w = H⁻¹(−g): the anchor every working-set EQP
  // solution is expressed against (g never changes within one solve).
  neg_g_.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) neg_g_[j] = -g[j];
  h_chol.solve_into(neg_g_, w_);

  // Seed the working set. An index whose Schur append fails (numerically
  // dependent on rows already seeded) is simply skipped — if it really is
  // active, the dual loop re-adds it once a dependency has been dropped.
  active_.clear();
  schur_.reset();
  hinv_count_ = 0;
  in_active_.assign(m, 0);
  ensure_hinv_rows(cap, n);
  for (std::size_t idx : warm_active) {
    if (idx >= m || in_active_[idx] != 0) continue;
    if (active_.size() >= cap) break;
    try_add(h_chol, a, idx, options.singular_tolerance);
  }

  // Phase 0 — prune the seed down to a dual-feasible working set: solve the
  // EQP on W and drop every row whose multiplier comes out negative, until
  // λ_W ≥ 0. W only shrinks, so this terminates, and a correct warm seed
  // passes on the first pass. (v, λ_W) is then the optimum of the relaxed
  // problem that ignores every row outside W — the Goldfarb–Idnani
  // invariant phase 1 maintains.
  for (;;) {
    if (++out.iterations > options.max_iterations) {
      out.status = QpStatus::kMaxIterations;
      return out;
    }
    const std::size_t nw = active_.size();
    lam_w_.assign(nw, 0.0);
    for (std::size_t t = 0; t < nw; ++t)
      lam_w_[t] =
          num::dot_span(a.row_ptr(active_[t]), w_.ptr(), n) - b[active_[t]];
    schur_.solve_in_place(lam_w_.data());
    to_remove_.clear();
    for (std::size_t t = 0; t < nw; ++t)
      if (lam_w_[t] <
          -options.tolerance * std::max(1.0, std::abs(b[active_[t]])))
        to_remove_.push_back(t);
    if (to_remove_.empty()) break;
    for (std::size_t r = to_remove_.size(); r-- > 0;) {
      remove_at(to_remove_[r]);
      lam_w_.erase(lam_w_.begin() +
                   static_cast<std::ptrdiff_t>(to_remove_[r]));
      ++out.set_changes;
    }
  }

  v.assign(n, 0.0);
  num::copy_into(w_, v);
  for (std::size_t t = 0; t < active_.size(); ++t)
    num::axpy_span(-lam_w_[t], hinv_rows_.row_ptr(t), v.ptr(), n);

  // Phase 1 — dual steps: pick the most violated constraint p and raise its
  // multiplier from zero until either p becomes satisfied (full step → add
  // p to W) or a working-set multiplier hits zero first (blocking step →
  // drop that row and retry p against the smaller set). The dual objective
  // strictly increases with every step, so no working set repeats.
  for (;;) {
    resid_.assign(m, 0.0);
    num::gemv_span(1.0, a.ptr(), n, m, n, v.ptr(), resid_.ptr());
    std::size_t p = m;
    double worst = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      resid_[i] -= b[i];
      const double scaled = resid_[i] / std::max(1.0, std::abs(b[i]));
      if (in_active_[i] == 0 && scaled > worst) {
        worst = scaled;
        p = i;
      }
    }
    if (p == m || worst <= options.tolerance) break;  // primal feasible

    // H⁻¹a_p once per target constraint; r and κ refresh after every drop.
    const double* a_p = a.row_ptr(p);
    rhs_n_.assign(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) rhs_n_[j] = a_p[j];
    h_chol.solve_into(rhs_n_, hinv_new_);
    const double diag = num::dot_span(a_p, hinv_new_.ptr(), n);
    double s_p = resid_[p];
    double lam_p = 0.0;

    for (;;) {
      if (++out.iterations > options.max_iterations) {
        out.status = QpStatus::kMaxIterations;
        return out;
      }
      const std::size_t nw = active_.size();
      cross_.resize(std::max<std::size_t>(nw, 1));
      for (std::size_t t = 0; t < nw; ++t)
        cross_[t] = num::dot_span(a.row_ptr(active_[t]), hinv_new_.ptr(), n);
      r_w_.assign(cross_.begin(),
                  cross_.begin() + static_cast<std::ptrdiff_t>(nw));
      schur_.solve_in_place(r_w_.data());

      // κ = a_pᵀz with z = H⁻¹a_p − H⁻¹A_Wᵀ·r: the curvature left in p's
      // direction once W's rows are projected out.
      double kappa = diag;
      for (std::size_t t = 0; t < nw; ++t) kappa -= cross_[t] * r_w_[t];
      const bool curved =
          kappa > options.singular_tolerance * std::max(std::abs(diag), 1.0);

      // First dual blocking step: the working-set row whose multiplier
      // reaches zero soonest as λ_p grows.
      double mu_block = inf;
      std::size_t blk = nw;
      for (std::size_t t = 0; t < nw; ++t)
        if (r_w_[t] > 0.0) {
          const double cand = lam_w_[t] / r_w_[t];
          if (cand < mu_block) {
            mu_block = cand;
            blk = t;
          }
        }
      const double mu_full = curved ? s_p / kappa : inf;
      const double mu = std::min(mu_full, mu_block);
      if (!(mu < inf)) {
        // No curvature toward p and nothing to drop: the constraints are
        // inconsistent to working precision. Let the caller fall back.
        out.status = QpStatus::kNumericalIssue;
        return out;
      }

      // Move along the dual step: v ← v − μ·z, λ_W ← λ_W − μ·r, λ_p += μ.
      num::axpy_span(-mu, hinv_new_.ptr(), v.ptr(), n);
      for (std::size_t t = 0; t < nw; ++t)
        num::axpy_span(mu * r_w_[t], hinv_rows_.row_ptr(t), v.ptr(), n);
      for (std::size_t t = 0; t < nw; ++t) lam_w_[t] -= mu * r_w_[t];
      lam_p += mu;
      s_p -= mu * kappa;

      if (mu_full <= mu_block) {
        // Full step: p is now exactly satisfied. Append it with the cross/
        // diag just computed (κ > 0 guarantees the pivot) and move on.
        if (nw >= cap ||
            !schur_.append(cross_.data(), diag,
                           options.singular_tolerance *
                               std::max(std::abs(diag), 1.0))) {
          out.status = QpStatus::kNumericalIssue;
          return out;
        }
        double* dst = hinv_rows_.row_ptr(nw);
        for (std::size_t j = 0; j < n; ++j) dst[j] = hinv_new_[j];
        active_.push_back(p);
        in_active_[p] = 1;
        hinv_count_ = nw + 1;
        lam_w_.push_back(lam_p);
        ++out.set_changes;
        break;
      }
      // Blocked: row blk's multiplier reached zero — drop it and retry p.
      remove_at(blk);
      lam_w_.erase(lam_w_.begin() + static_cast<std::ptrdiff_t>(blk));
      ++out.set_changes;
    }
  }

  // Polish: iterative refinement on the KKT system of the final working set
  //     H·v + g + A_Wᵀλ_W = 0,   A_W·v = b_W.
  // The dual loop reaches the right working set, but its v and λ_W carry
  // rounding error accumulated across every incremental step (each one
  // reuses an up/downdated factor). Refining against H itself restores
  // direct-solve accuracy — the condensed backend needs this to match the
  // interior-point reference to its own tolerance.
  const std::size_t nw_fin = active_.size();
  for (int pass = 0; pass < 1; ++pass) {
    // Stationarity residual r = −(H·v + g + A_Wᵀλ_W), then t = H⁻¹r.
    rhs_n_.assign(n, 0.0);
    num::gemv_span(1.0, h.ptr(), n, n, n, v.ptr(), rhs_n_.ptr());
    for (std::size_t j = 0; j < n; ++j) rhs_n_[j] = -(rhs_n_[j] + g[j]);
    for (std::size_t t = 0; t < nw_fin; ++t)
      num::axpy_span(-lam_w_[t], a.row_ptr(active_[t]), rhs_n_.ptr(), n);
    h_chol.solve_into(rhs_n_, hinv_new_);
    // δλ = S⁻¹(A_W·t − (b_W − A_W·v)), δv = t − H⁻¹A_Wᵀ·δλ.
    r_w_.assign(nw_fin, 0.0);
    for (std::size_t t = 0; t < nw_fin; ++t) {
      const double* a_t = a.row_ptr(active_[t]);
      r_w_[t] = num::dot_span(a_t, hinv_new_.ptr(), n) -
                (b[active_[t]] - num::dot_span(a_t, v.ptr(), n));
    }
    schur_.solve_in_place(r_w_.data());
    num::axpy_span(1.0, hinv_new_.ptr(), v.ptr(), n);
    for (std::size_t t = 0; t < nw_fin; ++t) {
      num::axpy_span(-r_w_[t], hinv_rows_.row_ptr(t), v.ptr(), n);
      lam_w_[t] += r_w_[t];
    }
  }
  resid_.assign(m, 0.0);
  num::gemv_span(1.0, a.ptr(), n, m, n, v.ptr(), resid_.ptr());
  for (std::size_t i = 0; i < m; ++i) resid_[i] -= b[i];

  lambda.assign(m, 0.0);
  for (std::size_t t = 0; t < active_.size(); ++t)
    lambda[active_[t]] = lam_w_[t];

  double kkt = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    kkt = std::max(kkt, resid_[i]);   // primal violation
    kkt = std::max(kkt, -lambda[i]);  // dual negativity
    if (in_active_[i] != 0) kkt = std::max(kkt, std::abs(resid_[i]));
  }
  out.kkt_residual = std::max(kkt, 0.0);
  out.status = QpStatus::kSolved;
  return out;
}

std::size_t DenseActiveSetSolver::bytes() const {
  return schur_.bytes() + hinv_rows_.capacity() * sizeof(double) +
         (w_.capacity() + neg_g_.capacity() + rhs_n_.capacity() +
          hinv_new_.capacity() + resid_.capacity()) *
             sizeof(double) +
         (lam_w_.capacity() + r_w_.capacity() + cross_.capacity()) *
             sizeof(double) +
         in_active_.capacity() +
         (active_.capacity() + to_remove_.capacity()) * sizeof(std::size_t);
}

}  // namespace evc::opt
