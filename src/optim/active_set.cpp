#include "optim/active_set.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "numerics/factorization.hpp"
#include "util/expect.hpp"

namespace evc::opt {

namespace {

/// Solve the equality-constrained subproblem
///   min ½(x+d)ᵀH(x+d) + gᵀ(x+d)   s.t.  E(x+d) = e,  a_iᵀ(x+d) = b_i, i∈W
/// for the step d and multipliers (equalities first, then working rows).
/// Returns false when the KKT system is singular (degenerate working set).
bool solve_working_set(const QpProblem& p, const num::Vector& x,
                       const std::vector<std::size_t>& working,
                       num::Vector& d, num::Vector& y_eq,
                       num::Vector& z_working) {
  const std::size_t n = p.num_vars();
  const std::size_t me = p.num_eq();
  const std::size_t mw = working.size();
  num::Matrix kkt(n + me + mw, n + me + mw);
  kkt.set_block(0, 0, p.h);
  if (me > 0) {
    kkt.set_block(n, 0, p.e_mat);
    kkt.set_block(0, n, p.e_mat.transposed());
  }
  for (std::size_t r = 0; r < mw; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      kkt(n + me + r, c) = p.a_mat(working[r], c);
      kkt(c, n + me + r) = p.a_mat(working[r], c);
    }
  }
  num::Vector rhs(n + me + mw);
  const num::Vector grad = p.h * x + p.g;
  for (std::size_t i = 0; i < n; ++i) rhs[i] = -grad[i];
  // x is feasible w.r.t. E and the working rows, so the constraint rhs in
  // step space is zero.
  num::LuFactorization lu(kkt);
  if (!lu.ok()) return false;
  const num::Vector sol = lu.solve(rhs);
  d = sol.segment(0, n);
  y_eq = sol.segment(n, me);
  z_working = sol.segment(n + me, mw);
  return true;
}

}  // namespace

QpResult solve_qp_active_set(const QpProblem& problem, const num::Vector& x0,
                             const ActiveSetOptions& options) {
  problem.validate();
  const std::size_t n = problem.num_vars();
  EVC_EXPECT(x0.size() == n, "active set: start dimension mismatch");
  const std::size_t mi = problem.num_ineq();

  num::Matrix h = problem.h;
  h.symmetrize();
  QpProblem p = problem;
  p.h = h;

  QpResult result;
  result.x = x0;
  result.y_eq = num::Vector(problem.num_eq());
  result.z_ineq = num::Vector(mi);

  // Verify the start is feasible.
  const double feas_tol = 1e-7;
  if (problem.num_eq() > 0 &&
      (problem.e_mat * x0 - problem.e_vec).norm_inf() > 1e-6) {
    result.status = QpStatus::kNumericalIssue;
    return result;
  }
  num::Vector ax = mi > 0 ? problem.a_mat * x0 : num::Vector(0);
  for (std::size_t i = 0; i < mi; ++i) {
    if (ax[i] - problem.b_vec[i] > 1e-6) {
      result.status = QpStatus::kNumericalIssue;
      return result;
    }
  }

  // Start with the (nearly) active rows in the working set.
  std::vector<std::size_t> working;
  for (std::size_t i = 0; i < mi; ++i)
    if (std::abs(ax[i] - problem.b_vec[i]) <= feas_tol) working.push_back(i);

  num::Vector x = x0;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    num::Vector d, y_eq, z_working;
    if (!solve_working_set(p, x, working, d, y_eq, z_working)) {
      // Degenerate working set (linearly dependent rows): drop the newest
      // row and retry next iteration.
      if (working.empty()) {
        result.status = QpStatus::kNumericalIssue;
        break;
      }
      working.pop_back();
      continue;
    }

    if (d.norm_inf() <= options.tolerance) {
      // Stationary on the working set: check multiplier signs.
      double most_negative = -options.tolerance;
      std::size_t drop = working.size();
      for (std::size_t r = 0; r < working.size(); ++r) {
        if (z_working[r] < most_negative) {
          most_negative = z_working[r];
          drop = r;
        }
      }
      if (drop == working.size()) {
        result.status = QpStatus::kSolved;
        result.x = x;
        result.y_eq = y_eq;
        result.z_ineq = num::Vector(mi);
        for (std::size_t r = 0; r < working.size(); ++r)
          result.z_ineq[working[r]] = std::max(z_working[r], 0.0);
        result.objective = 0.5 * x.dot(p.h * x) + p.g.dot(x);
        return result;
      }
      working.erase(working.begin() + static_cast<std::ptrdiff_t>(drop));
      continue;
    }

    // Ratio test against the non-working rows.
    double alpha = 1.0;
    std::size_t blocking = mi;
    for (std::size_t i = 0; i < mi; ++i) {
      if (std::find(working.begin(), working.end(), i) != working.end())
        continue;
      const double adi = problem.a_mat.row(i).dot(d);
      if (adi > options.tolerance) {
        const double axi = problem.a_mat.row(i).dot(x);
        const double step = (problem.b_vec[i] - axi) / adi;
        if (step < alpha) {
          alpha = std::max(step, 0.0);
          blocking = i;
        }
      }
    }
    x.add_scaled(alpha, d);
    if (blocking < mi) working.push_back(blocking);
  }

  if (result.status != QpStatus::kSolved &&
      result.status != QpStatus::kNumericalIssue)
    result.status = QpStatus::kMaxIterations;
  result.x = x;
  result.objective = 0.5 * x.dot(p.h * x) + p.g.dot(x);
  return result;
}

std::optional<num::Vector> find_feasible_point(const QpProblem& problem) {
  // Phase-1 by proxy: minimize ½‖x‖² subject to the constraints with the
  // interior-point solver, which needs no feasible start.
  QpProblem phase1 = problem;
  phase1.h = num::Matrix::identity(problem.num_vars());
  phase1.g = num::Vector(problem.num_vars());
  const QpResult r = solve_qp(phase1);
  if (r.status != QpStatus::kSolved) return std::nullopt;
  if (problem.num_ineq() > 0) {
    const num::Vector ax = problem.a_mat * r.x;
    for (std::size_t i = 0; i < problem.num_ineq(); ++i)
      if (ax[i] - problem.b_vec[i] > 1e-7) return std::nullopt;
  }
  if (problem.num_eq() > 0 &&
      (problem.e_mat * r.x - problem.e_vec).norm_inf() > 1e-6)
    return std::nullopt;
  return r.x;
}

}  // namespace evc::opt
