#include "optim/sqp.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "numerics/kernels.hpp"
#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace evc::opt {

std::string to_string(SqpStatus status) {
  switch (status) {
    case SqpStatus::kConverged:
      return "converged";
    case SqpStatus::kMaxIterations:
      return "max-iterations";
    case SqpStatus::kTimeout:
      return "timeout";
    case SqpStatus::kQpFailure:
      return "qp-failure";
  }
  return "unknown";
}

SolveStatus solve_status(SqpStatus status) {
  switch (status) {
    case SqpStatus::kConverged:
      return SolveStatus::kConverged;
    case SqpStatus::kMaxIterations:
      return SolveStatus::kMaxIterations;
    case SqpStatus::kTimeout:
      return SolveStatus::kTimeout;
    case SqpStatus::kQpFailure:
      return SolveStatus::kNumericalFailure;
  }
  return SolveStatus::kNumericalFailure;
}

namespace {

// Everything the ℓ1 merit function φ(x) = f(x) + ν·viol(x) needs at a
// point, evaluated once and cached: when a line-search candidate is
// accepted, its evaluation *is* the next iteration's φ0 — the penalty ν may
// change between iterations, so the components are stored instead of φ
// itself. The equality values double as the QP subproblem's −e_vec.
struct MeritEval {
  double f = 0.0;
  num::Vector c;  ///< equality constraint values
  double eq_l1 = 0.0;
  double eq_inf = 0.0;
  double ineq_l1 = 0.0;
  double ineq_inf = 0.0;

  double viol_l1() const { return eq_l1 + ineq_l1; }
  double viol_inf() const { return std::max(eq_inf, ineq_inf); }
  double phi(double nu) const { return f + nu * viol_l1(); }
};

MeritEval evaluate_merit(const NlpProblem& problem, const num::Matrix& a_mat,
                         const num::Vector& b_vec, const num::Vector& x,
                         num::Vector& ax_scratch) {
  MeritEval m;
  m.f = problem.cost(x);
  m.c = problem.eq_constraints(x);
  m.eq_l1 = m.c.norm1();
  m.eq_inf = m.c.norm_inf();
  if (!b_vec.empty()) {
    num::gemv(1.0, a_mat, x, 0.0, ax_scratch);
    for (std::size_t i = 0; i < b_vec.size(); ++i) {
      const double v = ax_scratch[i] - b_vec[i];
      if (v > 0.0) {
        m.ineq_l1 += v;
        m.ineq_inf = std::max(m.ineq_inf, v);
      }
    }
  }
  return m;
}

// Least-norm feasibility restoration for the second-order correction:
// solve J·Jᵀ·λ = −c and set p = Jᵀ·λ, the minimum-norm step with
// J·p = −c. Returns false when J·Jᵀ is numerically singular (redundant or
// rank-deficient linearization) or the correction is non-finite — the
// caller then falls back to plain backtracking. Sizes here are the
// equality count (≲ 100 for the MPC), and the path only runs when a full
// step was rejected, so dense formation of J·Jᵀ is cheap; all buffers are
// caller-owned and reused across corrections.
bool solve_least_norm_restoration(const num::Matrix& j, const num::Vector& c,
                                  num::Matrix& jjt, num::LuFactorization& lu,
                                  num::Vector& rhs, num::Vector& lambda,
                                  num::Vector& p) {
  const std::size_t me = j.rows(), n = j.cols();
  jjt.resize(me, me);
  for (std::size_t i = 0; i < me; ++i) {
    for (std::size_t k = i; k < me; ++k) {
      double acc = 0.0;
      for (std::size_t col = 0; col < n; ++col) acc += j(i, col) * j(k, col);
      jjt(i, k) = acc;
      jjt(k, i) = acc;
    }
  }
  if (!lu.factorize(jjt)) return false;
  rhs.resize(me);
  for (std::size_t i = 0; i < me; ++i) rhs[i] = -c[i];
  lu.solve_into(rhs, lambda);
  num::gemv_t(1.0, j, lambda, 0.0, p);
  for (std::size_t i = 0; i < p.size(); ++i)
    if (!std::isfinite(p[i])) return false;
  return true;
}

}  // namespace

SqpResult SqpSolver::solve(const NlpProblem& problem, const num::Vector& x0,
                           const SqpWarmStart* warm) const {
  const std::size_t n = problem.num_vars();
  EVC_EXPECT(x0.size() == n, "SQP initial point dimension mismatch");
  const num::Matrix& a_mat = problem.ineq_matrix();
  const num::Vector& b_vec = problem.ineq_vector();

  EVC_TRACE_SPAN_VAR(sqp_span, "sqp.solve");
  SqpResult result;
  result.x = x0;
  double nu = options_.initial_penalty;

  // The inequality system is fixed across iterations: copy it into the
  // reused QP subproblem once per solve.
  qp_.a_mat.copy_from(a_mat);

  // Dual seed for the first QP subproblem (receding-horizon warm start).
  bool have_qp_warm = false;
  if (options_.warm_start_duals && warm != nullptr &&
      warm->y_eq.size() == problem.num_eq() &&
      warm->z_ineq.size() == b_vec.size()) {
    num::copy_into(warm->y_eq, qp_warm_.y_eq);
    num::copy_into(warm->z_ineq, qp_warm_.z_ineq);
    have_qp_warm = true;
  }

  MeritEval cur = evaluate_merit(problem, a_mat, b_vec, result.x, ax_);
  bool have_duals = false;

  using Clock = std::chrono::steady_clock;
  const bool deadline_active = options_.time_budget_s > 0.0;
  const Clock::time_point start = deadline_active ? Clock::now() : Clock::time_point{};
  const auto remaining_s = [&]() {
    return options_.time_budget_s -
           std::chrono::duration<double>(Clock::now() - start).count();
  };

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Deadline watchdog: give up between iterations (the iterate is always
    // coherent there) and report kTimeout so the caller can degrade instead
    // of silently trusting a half-optimized plan.
    QpOptions qp_opts = options_.qp;
    if (deadline_active) {
      const double left = remaining_s();
      if (iter > 0 && left <= 0.0) {
        result.status = SqpStatus::kTimeout;
        break;
      }
      // Cap the subproblem's own deadline at what is left of ours.
      const double cap = std::max(left, 1e-4);
      qp_opts.time_budget_s = qp_opts.time_budget_s > 0.0
                                  ? std::min(qp_opts.time_budget_s, cap)
                                  : cap;
    }
    result.iterations = iter + 1;
    const num::Vector grad = problem.cost_gradient(result.x);

    // QP subproblem in the step d:
    //   min ½dᵀHd + ∇fᵀd   s.t.  J·d = −c,  A·d ≤ b − A·x.
    qp_.h = problem.cost_hessian(result.x);
    for (std::size_t i = 0; i < n; ++i)
      qp_.h(i, i) += options_.hessian_regularization;
    qp_.g = grad;
    qp_.e_mat = problem.eq_jacobian(result.x);
    qp_.e_vec.resize(cur.c.size());
    for (std::size_t i = 0; i < cur.c.size(); ++i) qp_.e_vec[i] = -cur.c[i];
    if (b_vec.empty()) {
      qp_.b_vec.assign(0, 0.0);
    } else {
      num::gemv(-1.0, a_mat, result.x, 0.0, qp_.b_vec);
      qp_.b_vec += b_vec;
    }

    // The QP decision variable is the *step*, so the primal seed is zero;
    // the multipliers of the previous subproblem (or receding-horizon
    // predecessor) seed the interior-point duals.
    const QpWarmStart* qp_seed = nullptr;
    if (options_.warm_start_duals && have_qp_warm) {
      qp_warm_.x.assign(n, 0.0);
      qp_seed = &qp_warm_;
    }

    // A usable result must also be finite — a diverged iterate poisons the
    // line search otherwise.
    const auto finite_result = [n](const QpResult& r) {
      if (!r.usable()) return false;
      for (std::size_t i = 0; i < n; ++i)
        if (!std::isfinite(r.x[i])) return false;
      return true;
    };

    QpResult qp_result;
    bool solved = false;
    // Condensed fast path: one attempt against the pristine subproblem.
    // Anything it cannot handle — no plan, stale structure, active-set
    // breakdown — falls through to the interior-point loop below, whose
    // regularize-and-retry covers the condensed failure modes too.
    if (options_.backend != QpBackend::kSparse) {
      if (const CondensingPlan* plan = problem.condensing_plan()) {
        qp_result = condensed_.solve(qp_, *plan, options_.condensed,
                                     qp_ws_.counters_mut(), qp_seed);
        solved = finite_result(qp_result);
      }
    }
    if (!solved) {
      double extra_reg = options_.hessian_regularization;
      for (int attempt = 0; attempt < 5; ++attempt) {
        qp_result = solve_qp(qp_, qp_opts, qp_ws_, qp_seed);
        if (finite_result(qp_result)) break;
        qp_result.status = QpStatus::kNumericalIssue;
        // Singular or diverging KKT: convexify harder and retry (cold — the
        // warm seed did not help this subproblem).
        qp_seed = nullptr;
        extra_reg = std::max(extra_reg * 100.0, 1e-6);
        for (std::size_t i = 0; i < n; ++i) qp_.h(i, i) += extra_reg;
      }
    }
    if (!qp_result.usable()) {
      result.status = SqpStatus::kQpFailure;
      break;
    }
    result.qp_iterations_total += qp_result.iterations;
    const num::Vector& d = qp_result.x;

    // Carry the multipliers into the next subproblem's warm start and the
    // final result.
    num::copy_into(qp_result.y_eq, qp_warm_.y_eq);
    num::copy_into(qp_result.z_ineq, qp_warm_.z_ineq);
    have_qp_warm = true;
    have_duals = true;

    if (d.norm_inf() <= options_.step_tolerance &&
        cur.eq_inf <= options_.constraint_tolerance &&
        cur.ineq_inf <= options_.constraint_tolerance) {
      result.status = SqpStatus::kConverged;
      break;
    }

    // Keep the ℓ1 penalty above the multipliers so the merit function is
    // exact (descent along the QP step is guaranteed).
    double mult_inf = 0.0;
    if (!qp_result.y_eq.empty())
      mult_inf = std::max(mult_inf, qp_result.y_eq.norm_inf());
    if (!qp_result.z_ineq.empty())
      mult_inf = std::max(mult_inf, qp_result.z_ineq.norm_inf());
    nu = std::max(nu, 2.0 * mult_inf + 1.0);

    const double phi0 = cur.phi(nu);
    const double viol0 = cur.viol_l1();
    // Directional derivative of the merit along d (upper bound).
    const double descent = grad.dot(d) - nu * viol0;

    double t = 1.0;
    bool stepped = false;
    MeritEval cand;
    {
      EVC_TRACE_SPAN("sqp.line_search");
      for (std::size_t ls = 0; ls < options_.max_line_search_steps; ++ls) {
        num::copy_into(result.x, candidate_);
        candidate_.add_scaled(t, d);
        cand = evaluate_merit(problem, a_mat, b_vec, candidate_, ax_);
        bool accepted =
            cand.phi(nu) <= phi0 + 1e-4 * t * std::min(descent, 0.0);
        // Maratos guard (see docs/SEED_FAILURES.md): on a curved constraint
        // manifold the full step carries a second-order feasibility error,
        // c(x+d) = O(‖d‖²). The ℓ1 merit then either rejects an excellent
        // step outright (the classic Maratos stall) or accepts a sequence
        // of steps that zigzag across the manifold without ever shrinking
        // the violation. Both show up as the unit step failing to reduce
        // infeasibility — so whenever that happens, restore feasibility
        // with the least-norm correction p = Jᵀ·(J·Jᵀ)⁻¹·(−c(x+d)) and
        // offer x + d + p to the same acceptance test. cand.c already
        // holds c(x+d).
        if (ls == 0 && options_.second_order_correction && !cand.c.empty() &&
            (!accepted ||
             cand.eq_l1 > std::max(0.5 * cur.eq_l1,
                                   options_.constraint_tolerance)) &&
            solve_least_norm_restoration(qp_.e_mat, cand.c, soc_jjt_, soc_lu_,
                                         soc_rhs_, soc_lambda_, soc_p_)) {
          num::copy_into(candidate_, soc_candidate_);
          soc_candidate_.add_scaled(1.0, soc_p_);
          MeritEval cand_soc =
              evaluate_merit(problem, a_mat, b_vec, soc_candidate_, ax_);
          if (cand_soc.phi(nu) <= phi0 + 1e-4 * std::min(descent, 0.0) &&
              (!accepted || cand_soc.phi(nu) < cand.phi(nu))) {
            num::copy_into(soc_candidate_, candidate_);
            cand = std::move(cand_soc);
            accepted = true;
            ++result.soc_steps;
          }
        }
        if (accepted) {
          stepped = true;
          break;
        }
        t *= 0.5;
      }
    }
    if (!stepped) {
      // The merit cannot be decreased along this direction. A starved QP
      // subproblem (timeout after its first iterations) produces junk
      // directions, so a failed line search says nothing then — surface the
      // timeout instead of masking it as stagnation. Otherwise accept
      // convergence at a feasible iterate or report max-iterations.
      if (qp_result.status == QpStatus::kTimeout)
        result.status = SqpStatus::kTimeout;
      else
        result.status = (cur.eq_inf <= options_.constraint_tolerance &&
                         cur.ineq_inf <= options_.constraint_tolerance)
                            ? SqpStatus::kConverged
                            : SqpStatus::kMaxIterations;
      break;
    }
    // Merit stagnation at a feasible iterate: converged for all practical
    // purposes — don't burn the remaining iterations. When the *pre-step*
    // iterate is itself feasible, converge there and discard the step: it
    // bought no merit, and keeping the iterate bit-identical makes a
    // steady-state replan a true fixed point — the next solve linearizes at
    // the same point, registers zero drift, and rides the condensed cache
    // instead of rebuilding over a microscopic creep.
    const double phi_new = cand.phi(nu);
    if (phi0 - phi_new <= 1e-7 * (1.0 + std::abs(phi_new)) &&
        cand.eq_inf <= options_.constraint_tolerance &&
        cand.ineq_inf <= options_.constraint_tolerance) {
      if (!(cur.eq_inf <= options_.constraint_tolerance &&
            cur.ineq_inf <= options_.constraint_tolerance)) {
        result.x = candidate_;
        cur = std::move(cand);
      }
      result.status = SqpStatus::kConverged;
      break;
    }
    result.x = candidate_;
    // The accepted candidate's evaluation becomes the next iteration's φ0 —
    // no re-evaluation of cost/constraints at the same point.
    cur = std::move(cand);
    result.status = SqpStatus::kMaxIterations;  // until proven converged
  }

  sqp_span.arg("iterations", static_cast<double>(result.iterations));
  result.cost = cur.f;
  result.constraint_violation = cur.viol_inf();
  if (have_duals) {
    result.y_eq = qp_warm_.y_eq;
    result.z_ineq = qp_warm_.z_ineq;
  }
  return result;
}

}  // namespace evc::opt
