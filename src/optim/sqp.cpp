#include "optim/sqp.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::opt {

std::string to_string(SqpStatus status) {
  switch (status) {
    case SqpStatus::kConverged:
      return "converged";
    case SqpStatus::kMaxIterations:
      return "max-iterations";
    case SqpStatus::kQpFailure:
      return "qp-failure";
  }
  return "unknown";
}

namespace {

// Σ max(Ax−b, 0): total linear inequality violation.
double ineq_violation_l1(const num::Matrix& a, const num::Vector& b,
                         const num::Vector& x) {
  if (b.empty()) return 0.0;
  const num::Vector ax = a * x;
  double acc = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    acc += std::max(ax[i] - b[i], 0.0);
  return acc;
}

double ineq_violation_inf(const num::Matrix& a, const num::Vector& b,
                          const num::Vector& x) {
  if (b.empty()) return 0.0;
  const num::Vector ax = a * x;
  double acc = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    acc = std::max(acc, ax[i] - b[i]);
  return acc;
}

}  // namespace

SqpResult SqpSolver::solve(const NlpProblem& problem,
                           const num::Vector& x0) const {
  const std::size_t n = problem.num_vars();
  EVC_EXPECT(x0.size() == n, "SQP initial point dimension mismatch");
  const num::Matrix& a_mat = problem.ineq_matrix();
  const num::Vector& b_vec = problem.ineq_vector();

  SqpResult result;
  result.x = x0;
  double nu = options_.initial_penalty;

  auto merit = [&](const num::Vector& x) {
    return problem.cost(x) +
           nu * (problem.eq_constraints(x).norm1() +
                 ineq_violation_l1(a_mat, b_vec, x));
  };

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const num::Vector grad = problem.cost_gradient(result.x);
    const num::Vector c = problem.eq_constraints(result.x);
    const num::Matrix jac = problem.eq_jacobian(result.x);

    // QP subproblem in the step d:
    //   min ½dᵀHd + ∇fᵀd   s.t.  J·d = −c,  A·d ≤ b − A·x.
    QpProblem qp;
    qp.h = problem.cost_hessian(result.x);
    for (std::size_t i = 0; i < n; ++i)
      qp.h(i, i) += options_.hessian_regularization;
    qp.g = grad;
    qp.e_mat = jac;
    qp.e_vec = -c;
    qp.a_mat = a_mat;
    if (b_vec.empty()) {
      qp.b_vec = num::Vector(0);
    } else {
      qp.b_vec = b_vec - a_mat * result.x;
    }

    QpResult qp_result;
    double extra_reg = options_.hessian_regularization;
    for (int attempt = 0; attempt < 5; ++attempt) {
      qp_result = solve_qp(qp, options_.qp);
      // A usable result must also be finite — a diverged interior point
      // iterate poisons the line search otherwise.
      bool finite = qp_result.usable();
      if (finite)
        for (std::size_t i = 0; i < n; ++i)
          if (!std::isfinite(qp_result.x[i])) {
            finite = false;
            break;
          }
      if (finite) break;
      qp_result.status = QpStatus::kNumericalIssue;
      // Singular or diverging KKT: convexify harder and retry.
      extra_reg = std::max(extra_reg * 100.0, 1e-6);
      for (std::size_t i = 0; i < n; ++i) qp.h(i, i) += extra_reg;
    }
    if (!qp_result.usable()) {
      result.status = SqpStatus::kQpFailure;
      break;
    }
    result.qp_iterations_total += qp_result.iterations;
    const num::Vector& d = qp_result.x;

    const double c_inf = c.norm_inf();
    const double ineq_inf = ineq_violation_inf(a_mat, b_vec, result.x);
    if (d.norm_inf() <= options_.step_tolerance &&
        c_inf <= options_.constraint_tolerance &&
        ineq_inf <= options_.constraint_tolerance) {
      result.status = SqpStatus::kConverged;
      break;
    }

    // Keep the ℓ1 penalty above the multipliers so the merit function is
    // exact (descent along the QP step is guaranteed).
    double mult_inf = 0.0;
    if (!qp_result.y_eq.empty())
      mult_inf = std::max(mult_inf, qp_result.y_eq.norm_inf());
    if (!qp_result.z_ineq.empty())
      mult_inf = std::max(mult_inf, qp_result.z_ineq.norm_inf());
    nu = std::max(nu, 2.0 * mult_inf + 1.0);

    const double phi0 = merit(result.x);
    const double viol0 = c.norm1() + ineq_violation_l1(a_mat, b_vec, result.x);
    // Directional derivative of the merit along d (upper bound).
    const double descent = grad.dot(d) - nu * viol0;

    double t = 1.0;
    num::Vector candidate = result.x;
    bool stepped = false;
    for (std::size_t ls = 0; ls < options_.max_line_search_steps; ++ls) {
      candidate = result.x;
      candidate.add_scaled(t, d);
      const double phi = merit(candidate);
      if (phi <= phi0 + 1e-4 * t * std::min(descent, 0.0)) {
        stepped = true;
        break;
      }
      t *= 0.5;
    }
    if (!stepped) {
      // The merit cannot be decreased along this direction (numerical
      // stagnation). Accept convergence at the current iterate if it is
      // feasible, otherwise report max-iterations with the best point.
      result.status = (c_inf <= options_.constraint_tolerance &&
                       ineq_inf <= options_.constraint_tolerance)
                          ? SqpStatus::kConverged
                          : SqpStatus::kMaxIterations;
      break;
    }
    result.x = candidate;
    result.status = SqpStatus::kMaxIterations;  // until proven converged

    // Merit stagnation at a feasible iterate: converged for all practical
    // purposes — don't burn the remaining iterations.
    const double phi_new = merit(result.x);
    if (phi0 - phi_new <= 1e-7 * (1.0 + std::abs(phi_new)) &&
        problem.eq_constraints(result.x).norm_inf() <=
            options_.constraint_tolerance &&
        ineq_violation_inf(a_mat, b_vec, result.x) <=
            options_.constraint_tolerance) {
      result.status = SqpStatus::kConverged;
      break;
    }
  }

  result.cost = problem.cost(result.x);
  result.constraint_violation =
      std::max(problem.eq_constraints(result.x).norm_inf(),
               ineq_violation_inf(a_mat, b_vec, result.x));
  return result;
}

}  // namespace evc::opt
