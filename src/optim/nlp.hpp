// Nonlinear program interface consumed by the SQP solver.
//
//   minimize    f(x)            (smooth, cheap exact Hessian available —
//                                the MPC cost is quadratic, so its Hessian
//                                is constant)
//   subject to  c(x) = 0        (smooth nonlinear equalities; the MPC
//                                dynamics are bilinear)
//               A x ≤ b         (linear inequalities: actuator bounds,
//                                comfort zone, power limits C1–C10)
#pragma once

#include <cstddef>

#include "numerics/matrix.hpp"
#include "numerics/vector.hpp"

namespace evc::opt {

struct CondensingPlan;

class NlpProblem {
 public:
  virtual ~NlpProblem() = default;

  virtual std::size_t num_vars() const = 0;
  virtual std::size_t num_eq() const = 0;

  virtual double cost(const num::Vector& x) const = 0;
  virtual num::Vector cost_gradient(const num::Vector& x) const = 0;
  /// Hessian of the cost at x. Must be symmetric; the solver adds
  /// regularization as needed, so positive semidefinite is sufficient.
  virtual num::Matrix cost_hessian(const num::Vector& x) const = 0;

  /// Equality constraint values c(x) (size num_eq()).
  virtual num::Vector eq_constraints(const num::Vector& x) const = 0;
  /// Jacobian ∂c/∂x (num_eq() × num_vars()).
  virtual num::Matrix eq_jacobian(const num::Vector& x) const = 0;

  /// Fixed linear inequalities A x ≤ b. May have zero rows.
  virtual const num::Matrix& ineq_matrix() const = 0;
  virtual const num::Vector& ineq_vector() const = 0;

  /// Elimination order for the condensed QP backend (optim/condensed_qp),
  /// or nullptr when the problem does not offer one (the solver then stays
  /// on the sparse path regardless of the requested backend). The plan must
  /// be finalized and valid for every linearization this problem produces.
  virtual const CondensingPlan* condensing_plan() const { return nullptr; }
};

}  // namespace evc::opt
