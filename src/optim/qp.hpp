// Dense convex quadratic programming.
//
//   minimize    ½ xᵀH x + gᵀx
//   subject to  E x = e          (equalities)
//               A x ≤ b          (inequalities)
//
// Solved with a primal-dual interior-point method (Mehrotra
// predictor-corrector). Chosen over active-set because it needs no feasible
// starting point and has no combinatorial cycling — the SQP layer throws
// mildly inconsistent linearizations at it every control step, and
// regularize-and-retry is easier to reason about than active-set repair.
//
// Problem sizes here are MPC-scale (n ≲ 300, a few hundred constraints), so
// dense LU of the reduced KKT system per IPM iteration is plenty fast.
#pragma once

#include <cstddef>
#include <string>

#include "numerics/matrix.hpp"
#include "numerics/vector.hpp"

namespace evc::opt {

struct QpProblem {
  num::Matrix h;  ///< n×n, symmetric positive semidefinite (regularized here)
  num::Vector g;  ///< n
  num::Matrix e_mat;  ///< m_e×n equality matrix (may be 0×n)
  num::Vector e_vec;  ///< m_e
  num::Matrix a_mat;  ///< m_i×n inequality matrix (may be 0×n)
  num::Vector b_vec;  ///< m_i

  std::size_t num_vars() const { return g.size(); }
  std::size_t num_eq() const { return e_vec.size(); }
  std::size_t num_ineq() const { return b_vec.size(); }
  /// Throws std::invalid_argument on inconsistent dimensions.
  void validate() const;
};

enum class QpStatus {
  kSolved,
  kMaxIterations,   ///< best iterate returned; residuals not at tolerance
  kNumericalIssue,  ///< KKT factorization failed even after regularization
};

struct QpResult {
  QpStatus status = QpStatus::kNumericalIssue;
  num::Vector x;          ///< primal solution
  num::Vector y_eq;       ///< equality multipliers
  num::Vector z_ineq;     ///< inequality multipliers (≥ 0)
  double objective = 0.0;
  std::size_t iterations = 0;
  double kkt_residual = 0.0;  ///< max-norm of stationarity+feasibility

  bool usable() const { return status != QpStatus::kNumericalIssue; }
};

struct QpOptions {
  std::size_t max_iterations = 60;
  double tolerance = 1e-8;      ///< residual + complementarity target
  double regularization = 1e-9; ///< added to H's diagonal before solving
};

/// Solve a dense convex QP. H is symmetrized internally.
QpResult solve_qp(const QpProblem& problem, const QpOptions& options = {});

std::string to_string(QpStatus status);

}  // namespace evc::opt
