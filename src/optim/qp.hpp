// Dense convex quadratic programming.
//
//   minimize    ½ xᵀH x + gᵀx
//   subject to  E x = e          (equalities)
//               A x ≤ b          (inequalities)
//
// Solved with a primal-dual interior-point method (Mehrotra
// predictor-corrector). Chosen over active-set because it needs no feasible
// starting point and has no combinatorial cycling — the SQP layer throws
// mildly inconsistent linearizations at it every control step, and
// regularize-and-retry is easier to reason about than active-set repair.
//
// Problem sizes here are MPC-scale (n ≲ 300, a few hundred constraints).
// The per-iteration KKT system is solved by block elimination: Cholesky of
// the SPD barrier-augmented Hessian K = H + AᵀDA plus a Schur complement in
// the equality multipliers (numerics/schur_kkt), falling back to a dense LU
// of the full KKT matrix when K is not numerically positive definite. The
// barrier term AᵀDA is assembled from a compressed-sparse-row view of A —
// MPC inequality rows are bounds and simple couplings with 1–3 nonzeros —
// and only the upper triangle is computed.
//
// All per-iteration storage lives in a QpWorkspace that the caller may own
// and reuse across solves: at steady state (same problem dimensions) the
// interior-point loop performs zero heap allocations. The workspace also
// accumulates perf counters (iterations, factorizations, fallbacks, peak
// bytes) so benches can track the solver's cost envelope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "numerics/aligned.hpp"
#include "numerics/factorization.hpp"
#include "numerics/matrix.hpp"
#include "numerics/schur_kkt.hpp"
#include "numerics/vector.hpp"
#include "optim/solve_status.hpp"

namespace evc::opt {

struct QpProblem {
  num::Matrix h;  ///< n×n, symmetric positive semidefinite (regularized here)
  num::Vector g;  ///< n
  num::Matrix e_mat;  ///< m_e×n equality matrix (may be 0×n)
  num::Vector e_vec;  ///< m_e
  num::Matrix a_mat;  ///< m_i×n inequality matrix (may be 0×n)
  num::Vector b_vec;  ///< m_i

  std::size_t num_vars() const { return g.size(); }
  std::size_t num_eq() const { return e_vec.size(); }
  std::size_t num_ineq() const { return b_vec.size(); }
  /// Throws std::invalid_argument on inconsistent dimensions.
  void validate() const;
};

enum class QpStatus {
  kSolved,
  kMaxIterations,   ///< best iterate returned; residuals not at tolerance
  kTimeout,         ///< wall-clock budget exhausted; best iterate returned
  kNumericalIssue,  ///< KKT factorization failed even after regularization
};

/// Coarse classification for control-layer callers (see solve_status.hpp).
SolveStatus solve_status(QpStatus status);

struct QpResult {
  QpStatus status = QpStatus::kNumericalIssue;
  num::Vector x;          ///< primal solution
  num::Vector y_eq;       ///< equality multipliers
  num::Vector z_ineq;     ///< inequality multipliers (≥ 0)
  double objective = 0.0;
  std::size_t iterations = 0;
  double kkt_residual = 0.0;  ///< max-norm of stationarity+feasibility

  bool usable() const { return status != QpStatus::kNumericalIssue; }
};

struct QpOptions {
  std::size_t max_iterations = 60;
  double tolerance = 1e-8;      ///< residual + complementarity target
  double regularization = 1e-9; ///< added to H's diagonal before solving
  /// Wall-clock budget for one solve (s); 0 disables the deadline. Checked
  /// once per interior-point iteration, so an exhausted budget still returns
  /// the best iterate seen (status kTimeout) rather than aborting mid-step.
  double time_budget_s = 0.0;
};

/// Primal/dual seed for the interior-point iteration, typically the solution
/// of the previous QP in an SQP or receding-horizon sequence. Multipliers
/// are clamped into the interior and slacks re-derived from the primal seed,
/// so a stale or slightly infeasible seed degrades into a cold start rather
/// than a failure. Ignored when dimensions do not match the problem.
struct QpWarmStart {
  num::Vector x;       ///< primal seed (size n)
  num::Vector y_eq;    ///< equality multiplier seed (size m_e)
  num::Vector z_ineq;  ///< inequality multiplier seed (size m_i)
  bool empty() const { return x.empty() && y_eq.empty() && z_ineq.empty(); }
};

/// Perf counters accumulated across every solve that uses a workspace.
struct QpPerfCounters {
  std::size_t solves = 0;
  std::size_t ipm_iterations = 0;
  std::size_t factorizations = 0;      ///< KKT factorizations, any path
  std::size_t schur_solves = 0;        ///< block-elimination factorizations
  std::size_t schur_regularizations = 0;  ///< Schur solves with a shifted S
  std::size_t dense_fallbacks = 0;     ///< full dense KKT LU factorizations
  std::size_t timeouts = 0;            ///< solves that hit their wall budget
  std::size_t warm_starts = 0;         ///< solves seeded from a warm start
  std::size_t workspace_growths = 0;   ///< solves that grew any buffer
  std::size_t peak_workspace_bytes = 0;
  // Condensed-backend counters (optim/condensed_qp). A condensed solve is
  // exactly one of: a rebuild (counted in condense_rebuilds *and*
  // factorizations — it factors the reduced Hessian) or a cached-factor
  // reuse (counted in warm_starts when seeded) — never both.
  std::size_t condensed_solves = 0;    ///< solves taken by the condensed path
  std::size_t condense_rebuilds = 0;   ///< prediction-matrix cache rebuilds
  std::size_t active_set_changes = 0;  ///< working-set adds+drops, all solves
  // Wall-time attribution, so `timeouts` has a matching time axis and the
  // MPC layer can report where its solve budget actually went.
  std::uint64_t solve_time_ns = 0;      ///< total wall time inside solve_qp
  std::uint64_t factorize_time_ns = 0;  ///< wall time inside factorizations
  std::uint64_t timeout_time_ns = 0;    ///< solve time of timed-out solves

  QpPerfCounters& operator+=(const QpPerfCounters& rhs);
};

/// Reusable storage for solve_qp. Create once (per thread/controller), pass
/// to every solve: buffers grow to the largest problem seen and are then
/// reused, making the interior-point loop allocation-free at steady state.
/// Not thread-safe — one workspace per concurrent solver.
class QpWorkspace {
 public:
  QpWorkspace() = default;

  const QpPerfCounters& counters() const { return counters_; }
  /// Mutable counters for sibling solvers that share this workspace's
  /// telemetry stream (the condensed backend books its solves here so the
  /// controller sees one unified set of QP counters).
  QpPerfCounters& counters_mut() { return counters_; }
  void reset_counters() { counters_ = QpPerfCounters{}; }
  /// Overwrite the counters wholesale — used by checkpoint restore so a
  /// resumed controller reports the same aggregate solver telemetry as an
  /// uninterrupted run.
  void restore_counters(const QpPerfCounters& counters) {
    counters_ = counters;
  }

  /// Bytes currently held across all buffers (capacity, not size).
  std::size_t bytes() const;

 private:
  friend QpResult solve_qp(const QpProblem&, const QpOptions&, QpWorkspace&,
                           const QpWarmStart*);

  QpPerfCounters counters_;

  // Compressed-sparse-row view of the inequality matrix A.
  std::vector<std::size_t> a_row_ptr_;
  std::vector<std::size_t> a_col_;
  num::AlignedBuffer a_val_;

  num::Matrix h_reg_;  ///< symmetrized + regularized Hessian
  num::Matrix k_mat_;  ///< H + AᵀDA (barrier-augmented Hessian)
  num::Matrix kkt_;    ///< dense (n+me) KKT matrix (fallback path)
  num::SchurKktSolver schur_;
  num::LuFactorization lu_;

  num::Vector x_, y_, z_, s_;
  num::Vector best_x_, best_y_, best_z_;
  num::Vector r_dual_, r_eq_, r_eq_neg_, r_ineq_;
  num::Vector tmp_mi_, rhs1_, rhs_, sol_, hx_;
  num::Vector dx_aff_, dy_aff_, ds_aff_, dz_aff_;
  num::Vector dx_, dy_, ds_, dz_, rc_;
};

/// Solve a dense convex QP. H is symmetrized internally. The overload
/// without a workspace allocates a fresh one per call (setup code); hot
/// paths should own a QpWorkspace and pass it in, optionally with a warm
/// start from the previous solve in the sequence.
QpResult solve_qp(const QpProblem& problem, const QpOptions& options = {});
QpResult solve_qp(const QpProblem& problem, const QpOptions& options,
                  QpWorkspace& workspace,
                  const QpWarmStart* warm_start = nullptr);

std::string to_string(QpStatus status);

}  // namespace evc::opt
