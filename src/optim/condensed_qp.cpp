#include "optim/condensed_qp.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "numerics/kernels.hpp"
#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::opt {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Relative ∞-norm distance between two equally-sized matrices.
double relative_drift(const num::Matrix& a, const num::Matrix& b) {
  const double* pa = a.ptr();
  const double* pb = b.ptr();
  const std::size_t n = a.rows() * a.cols();
  double diff = 0.0, scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    diff = std::max(diff, std::abs(pa[i] - pb[i]));
    scale = std::max(scale, std::abs(pb[i]));
  }
  return diff / scale;
}

void write_matrix(BinaryWriter& writer, const num::Matrix& m) {
  writer.write_size(m.rows());
  writer.write_size(m.cols());
  writer.write_f64_seq(m.ptr(), m.rows() * m.cols());
}

void read_matrix(BinaryReader& reader, num::Matrix& m) {
  const std::size_t rows = reader.read_size();
  const std::size_t cols = reader.read_size();
  const std::vector<double> data = reader.read_f64_vec();
  if (data.size() != rows * cols)
    throw SerializationError("condensed cache matrix size mismatch");
  m.resize(rows, cols);
  std::copy(data.begin(), data.end(), m.ptr());
}

}  // namespace

const char* to_string(QpBackend backend) {
  switch (backend) {
    case QpBackend::kSparse:
      return "sparse";
    case QpBackend::kCondensed:
      return "condensed";
    case QpBackend::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<QpBackend> parse_qp_backend(std::string_view text) {
  if (text == "sparse" || text == "ipm") return QpBackend::kSparse;
  if (text == "condensed" || text == "dense") return QpBackend::kCondensed;
  if (text == "auto") return QpBackend::kAuto;
  return std::nullopt;
}

QpBackend qp_backend_from_env(QpBackend fallback) {
  const char* env = std::getenv("EVC_MPC_BACKEND");
  if (env == nullptr || *env == '\0') return fallback;
  const auto parsed = parse_qp_backend(env);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "evclimate: EVC_MPC_BACKEND=%s not recognized "
                 "(sparse|condensed|auto); using %s\n",
                 env, to_string(fallback));
    return fallback;
  }
  return *parsed;
}

bool CondensingPlan::finalize() {
  free_cols.clear();
  if (dep_rows.size() != dep_cols.size()) return false;
  if (dep_cols.size() > num_vars) return false;
  std::vector<unsigned char> row_seen(dep_rows.size(), 0);
  std::vector<unsigned char> col_seen(num_vars, 0);
  for (std::size_t i = 0; i < dep_rows.size(); ++i) {
    // Every equality row must be consumed exactly once, so rows are a
    // permutation of 0..num_eq-1; columns must be distinct and in range.
    if (dep_rows[i] >= dep_rows.size() || row_seen[dep_rows[i]] != 0)
      return false;
    if (dep_cols[i] >= num_vars || col_seen[dep_cols[i]] != 0) return false;
    row_seen[dep_rows[i]] = 1;
    col_seen[dep_cols[i]] = 1;
  }
  free_cols.reserve(num_vars - dep_cols.size());
  for (std::size_t c = 0; c < num_vars; ++c)
    if (col_seen[c] == 0) free_cols.push_back(c);
  return true;
}

bool CondensedQpSolver::plan_matches(const QpProblem& qp,
                                     const CondensingPlan& plan) const {
  return plan.num_vars == qp.num_vars() && plan.num_eq() == qp.num_eq() &&
         plan.num_free() == qp.num_vars() - qp.num_eq() &&
         plan.num_free() > 0;
}

bool CondensedQpSolver::drift_within(const QpProblem& qp,
                                     const CondensedQpOptions& options) const {
  if (cached_e_.rows() != qp.e_mat.rows() ||
      cached_e_.cols() != qp.e_mat.cols() ||
      cached_h_.rows() != qp.h.rows() || cached_a_.rows() != qp.a_mat.rows())
    return false;
  if (relative_drift(qp.e_mat, cached_e_) > options.drift_tolerance)
    return false;
  // The Hessian diagonal moves when the SQP layer regularizes-and-retries;
  // catch that even under the constant-Hessian contract.
  const std::size_t n = qp.h.rows();
  double diff = 0.0, scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    diff = std::max(diff, std::abs(qp.h(i, i) - cached_h_(i, i)));
    scale = std::max(scale, std::abs(cached_h_(i, i)));
  }
  if (diff / scale > options.drift_tolerance) return false;
  if (!options.assume_constant_hessian) {
    if (relative_drift(qp.h, cached_h_) > options.drift_tolerance)
      return false;
    if (qp.a_mat.rows() > 0 &&
        relative_drift(qp.a_mat, cached_a_) > options.drift_tolerance)
      return false;
  }
  return true;
}

bool CondensedQpSolver::derive(const CondensingPlan& plan, double min_pivot) {
  const std::size_t n = plan.num_vars;
  const std::size_t me = plan.num_eq();
  const std::size_t nf = plan.num_free();

  // Structural check against the actual matrix: in elimination order, row i
  // must not touch a variable eliminated later, and its pivot must be solid.
  pivots_.assign(me, 0.0);
  for (std::size_t i = 0; i < me; ++i) {
    const double pivot = cached_e_(plan.dep_rows[i], plan.dep_cols[i]);
    if (std::abs(pivot) < min_pivot) return false;
    pivots_[i] = pivot;
    for (std::size_t j = i + 1; j < me; ++j)
      if (cached_e_(plan.dep_rows[i], plan.dep_cols[j]) != 0.0) return false;
  }

  // Null-space basis Z by forward substitution: free rows are unit vectors,
  // each dependent row is solved from its equality row (which, by the order
  // just verified, references only rows already filled in). Zero entries of
  // E are skipped — MPC equality rows have a handful of nonzeros each.
  z_.resize(n, nf);
  for (std::size_t t = 0; t < nf; ++t) z_(plan.free_cols[t], t) = 1.0;
  for (std::size_t i = 0; i < me; ++i) {
    const std::size_t row = plan.dep_rows[i];
    const std::size_t col = plan.dep_cols[i];
    const double* e_row = cached_e_.row_ptr(row);
    double* z_col = z_.row_ptr(col);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == col || e_row[j] == 0.0) continue;
      num::axpy_span(-e_row[j] / pivots_[i], z_.row_ptr(j), z_col, nf);
    }
  }

  // H·Z and A·Z with explicit zero-skipping: both matrices are sparse
  // (bounds and short couplings), and rebuilds sit on the re-linearization
  // path where this is the dominant cost.
  hz_.resize(n, nf);
  for (std::size_t i = 0; i < n; ++i) {
    const double* h_row = cached_h_.row_ptr(i);
    double* out = hz_.row_ptr(i);
    for (std::size_t k = 0; k < n; ++k)
      if (h_row[k] != 0.0) num::axpy_span(h_row[k], z_.row_ptr(k), out, nf);
  }
  a_r_.resize(cached_a_.rows(), nf);
  for (std::size_t i = 0; i < cached_a_.rows(); ++i) {
    const double* a_row = cached_a_.row_ptr(i);
    double* out = a_r_.row_ptr(i);
    for (std::size_t k = 0; k < n; ++k)
      if (a_row[k] != 0.0) num::axpy_span(a_row[k], z_.row_ptr(k), out, nf);
  }

  zt_ = z_.transposed();
  num::gemm(1.0, zt_, hz_, 0.0, h_r_);
  h_r_.symmetrize();
  if (!chol_hr_.factorize(h_r_)) return false;

  // Dual-recovery table: for elimination step i, the nonzeros of E's
  // column dep_cols[i] in later dependent rows (the strictly-lower part of
  // the triangularized block, consumed backwards when recovering y).
  col_ptr_.assign(me + 1, 0);
  col_j_.clear();
  col_val_.clear();
  for (std::size_t i = 0; i < me; ++i) {
    col_ptr_[i] = col_j_.size();
    for (std::size_t j = i + 1; j < me; ++j) {
      const double val = cached_e_(plan.dep_rows[j], plan.dep_cols[i]);
      if (val != 0.0) {
        col_j_.push_back(j);
        col_val_.push_back(val);
      }
    }
  }
  col_ptr_[me] = col_j_.size();
  return true;
}

QpResult CondensedQpSolver::solve(const QpProblem& qp,
                                  const CondensingPlan& plan,
                                  const CondensedQpOptions& options,
                                  QpPerfCounters& counters,
                                  const QpWarmStart* warm_start) {
  QpResult result;
  if (!plan_matches(qp, plan)) return result;

  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = qp.num_vars();
  const std::size_t me = qp.num_eq();
  const std::size_t nf = plan.num_free();
  const std::size_t mi = qp.num_ineq();

  // A checkpoint-restored cache carries only the linearization snapshots;
  // re-derive the prediction matrices from them silently (bit-identical to
  // what the pre-checkpoint run computed, so no counters move).
  if (state_ == CacheState::kNeedsDerive) {
    state_ = derive(plan, options.min_pivot) ? CacheState::kReady
                                             : CacheState::kEmpty;
  }

  bool rebuilt = false;
  if (state_ != CacheState::kReady || !drift_within(qp, options)) {
    EVC_TRACE_SPAN("qp.condense");
    const auto rebuild_start = std::chrono::steady_clock::now();
    num::copy_into(qp.e_mat, cached_e_);
    num::copy_into(qp.h, cached_h_);
    num::copy_into(qp.a_mat, cached_a_);
    if (!derive(plan, options.min_pivot)) {
      state_ = CacheState::kEmpty;
      return result;
    }
    state_ = CacheState::kReady;
    rebuilt = true;
    ++counters.condense_rebuilds;
    ++counters.factorizations;
    counters.factorize_time_ns += elapsed_ns(rebuild_start);
  }

  // Particular solution E·d_p = e with free variables pinned to zero, by
  // the same forward substitution that built Z.
  d_p_.assign(n, 0.0);
  for (std::size_t i = 0; i < me; ++i) {
    const std::size_t row = plan.dep_rows[i];
    const double acc =
        qp.e_vec[row] - num::dot_span(cached_e_.row_ptr(row), d_p_.ptr(), n);
    d_p_[plan.dep_cols[i]] = acc / pivots_[i];
  }

  // Reduced gradient g_r = Zᵀ(H·d_p + g) and rhs b_r = b − A·d_p.
  rhs_full_.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) rhs_full_[j] = qp.g[j];
  num::gemv_span(1.0, cached_h_.ptr(), n, n, n, d_p_.ptr(), rhs_full_.ptr());
  g_r_.assign(nf, 0.0);
  num::gemv_t_span(1.0, z_.ptr(), nf, n, nf, rhs_full_.ptr(), g_r_.ptr());
  b_r_.assign(mi, 0.0);
  for (std::size_t i = 0; i < mi; ++i) b_r_[i] = qp.b_vec[i];
  num::gemv_span(-1.0, cached_a_.ptr(), n, mi, n, d_p_.ptr(), b_r_.ptr());

  // Warm working set: the support of the previous solve's inequality
  // multipliers. Derived fresh from the caller's seed every time — the
  // solver itself keeps no hidden cross-solve state.
  warm_idx_.clear();
  const bool warm =
      warm_start != nullptr && warm_start->z_ineq.size() == mi;
  if (warm) {
    double z_max = 0.0;
    for (std::size_t i = 0; i < mi; ++i)
      z_max = std::max(z_max, warm_start->z_ineq[i]);
    const double threshold =
        std::max(options.warm_threshold, options.warm_relative * z_max);
    for (std::size_t i = 0; i < mi; ++i)
      if (warm_start->z_ineq[i] > threshold) warm_idx_.push_back(i);
  }

  DenseActiveSetOutput as_out;
  {
    EVC_TRACE_SPAN_VAR(span, "qp.active_set");
    as_out = active_set_.solve(chol_hr_, h_r_, a_r_, g_r_, b_r_, warm_idx_,
                               options.active_set, v_, lam_);
    span.arg("iterations", static_cast<double>(as_out.iterations));
    span.arg("set_changes", static_cast<double>(as_out.set_changes));
  }
  if (as_out.status != QpStatus::kSolved) return result;

  // Expand v back to the full space and recover the multipliers.
  result.x.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) result.x[j] = d_p_[j];
  num::gemv_span(1.0, z_.ptr(), nf, n, nf, v_.ptr(), result.x.ptr());
  result.z_ineq.assign(mi, 0.0);
  for (std::size_t i = 0; i < mi; ++i) result.z_ineq[i] = lam_[i];

  // Equality duals from stationarity H·x + g + Eᵀy + Aᵀz = 0, solved over
  // the dependent columns in reverse elimination order (Eᵀ restricted to
  // those columns is upper triangular in that order).
  hx_.assign(n, 0.0);
  num::gemv_span(1.0, cached_h_.ptr(), n, n, n, result.x.ptr(), hx_.ptr());
  result.objective = 0.5 * num::dot_span(result.x.ptr(), hx_.ptr(), n) +
                     num::dot_span(qp.g.ptr(), result.x.ptr(), n);
  y_eq_rhs_.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) y_eq_rhs_[j] = hx_[j] + qp.g[j];
  num::gemv_t_span(1.0, cached_a_.ptr(), n, mi, n, lam_.ptr(),
                   y_eq_rhs_.ptr());
  result.y_eq.assign(me, 0.0);
  for (std::size_t i = me; i-- > 0;) {
    double acc = -y_eq_rhs_[plan.dep_cols[i]];
    for (std::size_t t = col_ptr_[i]; t < col_ptr_[i + 1]; ++t)
      acc -= col_val_[t] * result.y_eq[plan.dep_rows[col_j_[t]]];
    result.y_eq[plan.dep_rows[i]] = acc / pivots_[i];
  }

  result.status = QpStatus::kSolved;
  result.iterations = as_out.iterations;
  result.kkt_residual = as_out.kkt_residual;

  ++counters.solves;
  ++counters.condensed_solves;
  // A cache hit reuses the cached Cholesky factor: that is the warm path,
  // and it must not also count as a factorization (nor a rebuild as a warm
  // start) — each solve is exactly one of the two.
  if (!rebuilt && warm) ++counters.warm_starts;
  counters.active_set_changes += as_out.set_changes;
  counters.solve_time_ns += elapsed_ns(start);
  counters.peak_workspace_bytes =
      std::max(counters.peak_workspace_bytes, bytes());
  return result;
}

void CondensedQpSolver::save_cache(BinaryWriter& writer) const {
  writer.section("condensed_cache");
  writer.write_bool(state_ != CacheState::kEmpty);
  if (state_ == CacheState::kEmpty) return;
  write_matrix(writer, cached_e_);
  write_matrix(writer, cached_h_);
  write_matrix(writer, cached_a_);
}

void CondensedQpSolver::load_cache(BinaryReader& reader) {
  reader.expect_section("condensed_cache");
  if (!reader.read_bool()) {
    state_ = CacheState::kEmpty;
    return;
  }
  read_matrix(reader, cached_e_);
  read_matrix(reader, cached_h_);
  read_matrix(reader, cached_a_);
  state_ = CacheState::kNeedsDerive;
}

std::size_t CondensedQpSolver::bytes() const {
  const std::size_t mats =
      (cached_e_.capacity() + cached_h_.capacity() + cached_a_.capacity() +
       z_.capacity() + zt_.capacity() + hz_.capacity() + h_r_.capacity() +
       a_r_.capacity()) *
      sizeof(double);
  const std::size_t vecs =
      (d_p_.capacity() + rhs_full_.capacity() + g_r_.capacity() +
       b_r_.capacity() + v_.capacity() + lam_.capacity() + hx_.capacity() +
       y_eq_rhs_.capacity() + pivots_.capacity() + col_val_.capacity()) *
      sizeof(double);
  const std::size_t idx =
      (col_ptr_.capacity() + col_j_.capacity() + warm_idx_.capacity()) *
      sizeof(std::size_t);
  return mats + vecs + idx + chol_hr_.workspace_bytes() +
         active_set_.bytes();
}

}  // namespace evc::opt
