// Car-following traffic microsimulation (Intelligent Driver Model).
//
// The paper's drive profiles come from "traffic flow information and the
// average vehicle speed in each route segment" (§II-A, Google traffic).
// This module generates the microscopic counterpart: an ego vehicle
// following a leader through stop-and-go traffic with the IDM
//   dv/dt = a·[1 − (v/v0)^δ − (s*/s)²],
//   s* = s0 + v·T + v·Δv / (2·√(a·b)),
// which turns any leader speed schedule (e.g. a standard cycle) into a
// realistic perturbed follower profile — the jerky, anticipatory traces
// real traffic produces, ideal for stress-testing the MPC's forecasts.
#pragma once

#include <cstdint>

#include "drivecycle/drive_profile.hpp"

namespace evc::drive {

struct IdmParams {
  double desired_speed_mps = 33.3;   ///< v0 (free-flow target)
  double time_headway_s = 1.5;       ///< T
  double min_gap_m = 2.0;            ///< s0
  double max_accel_mps2 = 1.4;       ///< a
  double comfortable_decel_mps2 = 2.0;  ///< b
  double accel_exponent = 4.0;       ///< δ

  void validate() const;
};

struct FollowOptions {
  IdmParams idm;
  double initial_gap_m = 20.0;
  /// Gaussian perturbation of the leader's speed (σ, m/s) — models the
  /// ego driver's imperfect anticipation; 0 gives deterministic following.
  double leader_noise_mps = 0.0;
  std::uint64_t seed = 1;
};

/// IDM acceleration for the ego state (speed, gap, closing speed Δv =
/// v_ego − v_leader).
double idm_acceleration(const IdmParams& params, double speed_mps,
                        double gap_m, double closing_speed_mps);

/// Simulate the ego vehicle following `leader` from standstill. The
/// returned profile copies the leader's slope/ambient channels and has the
/// same length and sample period. The ego never reverses, and the gap
/// stays positive (IDM's collision-free property, enforced).
DriveProfile follow_leader(const DriveProfile& leader,
                           const FollowOptions& options = {});

}  // namespace evc::drive
