#include "drivecycle/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/random.hpp"

namespace evc::drive {

void IdmParams::validate() const {
  EVC_EXPECT(desired_speed_mps > 0.0, "desired speed must be positive");
  EVC_EXPECT(time_headway_s > 0.0, "time headway must be positive");
  EVC_EXPECT(min_gap_m > 0.0, "minimum gap must be positive");
  EVC_EXPECT(max_accel_mps2 > 0.0, "max acceleration must be positive");
  EVC_EXPECT(comfortable_decel_mps2 > 0.0,
             "comfortable deceleration must be positive");
  EVC_EXPECT(accel_exponent > 0.0, "acceleration exponent must be positive");
}

double idm_acceleration(const IdmParams& p, double speed_mps, double gap_m,
                        double closing_speed_mps) {
  p.validate();
  EVC_EXPECT(speed_mps >= 0.0, "IDM speed must be >= 0");
  EVC_EXPECT(gap_m > 0.0, "IDM gap must be positive");
  const double desired_gap =
      p.min_gap_m + speed_mps * p.time_headway_s +
      speed_mps * closing_speed_mps /
          (2.0 * std::sqrt(p.max_accel_mps2 * p.comfortable_decel_mps2));
  const double free_term =
      std::pow(speed_mps / p.desired_speed_mps, p.accel_exponent);
  const double interaction = std::max(desired_gap, 0.0) / gap_m;
  return p.max_accel_mps2 *
         (1.0 - free_term - interaction * interaction);
}

DriveProfile follow_leader(const DriveProfile& leader,
                           const FollowOptions& options) {
  EVC_EXPECT(!leader.empty(), "follow_leader needs a non-empty leader");
  options.idm.validate();
  EVC_EXPECT(options.initial_gap_m > options.idm.min_gap_m,
             "initial gap must exceed the minimum gap");
  EVC_EXPECT(options.leader_noise_mps >= 0.0, "leader noise must be >= 0");

  SplitMix64 rng(options.seed);
  const double dt = leader.dt();
  std::vector<DriveSample> samples(leader.size());

  double ego_speed = 0.0;
  double gap = options.initial_gap_m;
  for (std::size_t i = 0; i < leader.size(); ++i) {
    double leader_speed = leader[i].speed_mps;
    if (options.leader_noise_mps > 0.0)
      leader_speed = std::max(
          0.0, leader_speed + rng.normal(0.0, options.leader_noise_mps));

    const double accel =
        idm_acceleration(options.idm, std::max(ego_speed, 0.0),
                         std::max(gap, 0.1), ego_speed - leader_speed);
    const double new_speed = std::max(ego_speed + accel * dt, 0.0);

    // Gap update with trapezoidal relative displacement; never below a
    // hair above zero (IDM brakes hard enough in continuous time; the
    // clamp guards the discretization).
    gap += (leader_speed - 0.5 * (ego_speed + new_speed)) * dt;
    gap = std::max(gap, 0.5);

    DriveSample& s = samples[i];
    s.speed_mps = new_speed;
    s.accel_mps2 = (new_speed - ego_speed) / dt;
    s.slope_percent = leader[i].slope_percent;
    s.ambient_c = leader[i].ambient_c;
    ego_speed = new_speed;
  }
  return DriveProfile(leader.name() + "-follower", dt, std::move(samples));
}

}  // namespace evc::drive
