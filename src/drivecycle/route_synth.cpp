#include "drivecycle/route_synth.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace evc::drive {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Append a linear speed ramp of `duration` seconds ending at `v_end`.
void ramp(std::vector<double>& speed, double dt, double duration,
          double v_end) {
  if (speed.empty()) speed.push_back(0.0);
  const double v_start = speed.back();
  const std::size_t steps =
      std::max<std::size_t>(1, static_cast<std::size_t>(duration / dt));
  for (std::size_t i = 1; i <= steps; ++i)
    speed.push_back(v_start +
                    (v_end - v_start) * static_cast<double>(i) /
                        static_cast<double>(steps));
}

void hold(std::vector<double>& speed, double dt, double duration) {
  if (speed.empty()) speed.push_back(0.0);
  const double v = speed.back();
  const std::size_t steps = static_cast<std::size_t>(duration / dt);
  for (std::size_t i = 0; i < steps; ++i) speed.push_back(v);
}

}  // namespace

DriveProfile synthesize_route(const RouteSynthOptions& options) {
  EVC_EXPECT(options.dt > 0.0, "route dt must be positive");
  EVC_EXPECT(options.trip_duration_s >= 60.0,
             "route must be at least one minute long");
  EVC_EXPECT(options.urban_fraction >= 0.0 && options.urban_fraction <= 1.0,
             "urban fraction must be in [0, 1]");
  EVC_EXPECT(options.hilliness_percent >= 0.0, "hilliness must be >= 0");

  SplitMix64 rng(options.seed);
  const double dt = options.dt;
  std::vector<double> speed{0.0};

  const double urban_end = options.trip_duration_s * options.urban_fraction;
  const auto elapsed = [&] {
    return static_cast<double>(speed.size() - 1) * dt;
  };

  // --- Urban phase: stop-and-go humps with randomized peaks and dwells ---
  while (elapsed() < urban_end) {
    const double peak_kmh =
        std::max(15.0, rng.normal(options.urban_speed_kmh, 8.0));
    const double peak = units::kmh_to_mps(peak_kmh);
    hold(speed, dt, rng.uniform(5.0, 25.0));             // red light / stop
    ramp(speed, dt, rng.uniform(8.0, 20.0), peak);       // pull away
    hold(speed, dt, rng.uniform(10.0, 45.0));            // cruise
    ramp(speed, dt, rng.uniform(6.0, 15.0), 0.0);        // brake to stop
  }

  // --- Highway phase: long cruises with mild speed modulation ---
  if (options.urban_fraction < 1.0) {
    const double target = units::kmh_to_mps(options.highway_speed_kmh);
    ramp(speed, dt, 25.0, target);  // on-ramp
    while (elapsed() < options.trip_duration_s - 60.0) {
      const double v = std::max(units::kmh_to_mps(60.0),
                                rng.normal(target, target * 0.06));
      ramp(speed, dt, rng.uniform(10.0, 25.0), v);
      hold(speed, dt, rng.uniform(30.0, 90.0));
    }
    ramp(speed, dt, 20.0, 0.0);  // off-ramp to destination
    hold(speed, dt, 10.0);
  }

  const std::size_t n = speed.size();

  // --- Elevation: smooth bounded random walk → percent slope ---
  std::vector<double> slope(n, 0.0);
  if (options.hilliness_percent > 0.0) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Mean-reverting walk keeps slopes bounded and realistic.
      s += -0.02 * s + rng.normal(0.0, 0.05);
      slope[i] = std::clamp(s, -options.hilliness_percent,
                            options.hilliness_percent);
    }
    // Low-pass so slope changes on a ~100 m scale, not per sample.
    double filt = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      filt += 0.05 * (slope[i] - filt);
      slope[i] = filt;
    }
  }

  // --- Ambient temperature: slow drift + sensor-scale noise ---
  std::vector<double> ambient(n, options.base_ambient_c);
  double noise = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase =
        static_cast<double>(i) / static_cast<double>(n) * kPi;
    noise += 0.01 * (rng.normal(0.0, 0.2) - noise);
    ambient[i] =
        options.base_ambient_c + options.ambient_drift_c * std::sin(phase) +
        noise;
  }

  std::vector<DriveSample> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    DriveSample& smp = samples[i];
    // Ramp arithmetic can leave −1e-15-scale dust at stop boundaries.
    smp.speed_mps = std::max(speed[i], 0.0);
    smp.accel_mps2 =
        i + 1 < n ? (speed[i + 1] - speed[i]) / dt : 0.0;
    smp.slope_percent = slope[i];
    smp.ambient_c = ambient[i];
  }
  return DriveProfile("synthetic-route", dt, std::move(samples));
}

}  // namespace evc::drive
