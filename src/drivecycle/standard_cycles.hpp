// Standard driving cycles used by the paper's evaluation (§IV):
// NEDC, US06, ECE_EUDC, SC03, UDDS.
//
// NEDC and ECE_EUDC are generated exactly from their piecewise standard
// definitions (UN ECE R83 / 70/220/EEC). US06, SC03 and UDDS are measured
// EPA traces that are not redistributable offline; they are synthesized
// here as piecewise-linear speed schedules matched to the published cycle
// statistics (duration, distance, max and average speed, stop pattern) —
// see DESIGN.md §3 for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "drivecycle/drive_profile.hpp"

namespace evc::drive {

/// kWltp (WLTC class 3b), kHwfet (EPA highway) and kJc08 (Japan urban)
/// post-date or fall outside the paper's evaluation set and are provided
/// for downstream users.
enum class StandardCycle {
  kNedc,
  kUs06,
  kEceEudc,
  kSc03,
  kUdds,
  kWltp,
  kHwfet,
  kJc08,
};

/// The paper's evaluation cycles in Fig. 7/8 order (extended cycles
/// excluded).
std::vector<StandardCycle> all_standard_cycles();
/// The additional cycles beyond the paper's set.
std::vector<StandardCycle> extended_cycles();

std::string cycle_name(StandardCycle cycle);

/// Speed schedule of the cycle sampled at `dt` seconds (flat road). Speeds
/// in m/s; acceleration is the forward difference of speed.
/// `ambient_c` fills the profile's ambient-temperature channel (the paper
/// sets ambient per experiment, constant during a trip).
DriveProfile make_cycle_profile(StandardCycle cycle, double ambient_c,
                                double dt = 1.0);

/// Published reference statistics for validation (duration s, distance km,
/// max speed km/h). Synthesized cycles must match these within tolerance.
struct CycleReference {
  double duration_s;
  double distance_km;
  double max_speed_kmh;
};
CycleReference cycle_reference(StandardCycle cycle);

}  // namespace evc::drive
