// Drive-profile CSV I/O.
//
// Lets users feed real logged routes into the simulator (the paper's
// Google-Maps/NOAA pipeline produces exactly such tables) and round-trip
// profiles between tools. Format: header row, then one sample per line:
//
//   speed_mps,accel_mps2,slope_percent,ambient_c
//
// Column order is fixed; `accel_mps2` may be omitted (3-column form), in
// which case it is reconstructed by forward differences.
#pragma once

#include <string>

#include "drivecycle/drive_profile.hpp"

namespace evc::drive {

/// Write `profile` to `path`. Throws std::invalid_argument on I/O failure.
void save_profile_csv(const DriveProfile& profile, const std::string& path);

/// Load a profile from `path` with sample period `dt`. Throws
/// std::invalid_argument on malformed input (wrong column count,
/// non-numeric cells, physically invalid values).
DriveProfile load_profile_csv(const std::string& path,
                              const std::string& name, double dt = 1.0);

}  // namespace evc::drive
