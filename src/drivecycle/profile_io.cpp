#include "drivecycle/profile_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/csv.hpp"
#include "util/expect.hpp"

namespace evc::drive {

void save_profile_csv(const DriveProfile& profile, const std::string& path) {
  CsvWriter csv(path,
                {"speed_mps", "accel_mps2", "slope_percent", "ambient_c"});
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const DriveSample& s = profile[i];
    csv.write_row({s.speed_mps, s.accel_mps2, s.slope_percent, s.ambient_c});
  }
}

namespace {

std::vector<double> parse_row(const std::string& line, std::size_t lineno) {
  std::vector<double> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(cell, &consumed);
    } catch (const std::exception&) {
      EVC_EXPECT(false, "non-numeric cell '" + cell + "' at line " +
                            std::to_string(lineno));
    }
    EVC_EXPECT(consumed == cell.size() || cell[consumed] == ' ',
               "trailing garbage in cell at line " + std::to_string(lineno));
    cells.push_back(value);
  }
  return cells;
}

}  // namespace

DriveProfile load_profile_csv(const std::string& path,
                              const std::string& name, double dt) {
  std::ifstream in(path);
  EVC_EXPECT(in.good(), "cannot open drive profile CSV: " + path);

  std::string line;
  EVC_EXPECT(static_cast<bool>(std::getline(in, line)),
             "drive profile CSV is empty: " + path);
  // The first line is a header (any text); data starts at line 2.

  std::vector<DriveSample> samples;
  std::size_t lineno = 1;
  std::size_t expected_cols = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::vector<double> cells = parse_row(line, lineno);
    EVC_EXPECT(cells.size() == 3 || cells.size() == 4,
               "expected 3 or 4 columns at line " + std::to_string(lineno));
    if (expected_cols == 0) expected_cols = cells.size();
    EVC_EXPECT(cells.size() == expected_cols,
               "inconsistent column count at line " + std::to_string(lineno));
    DriveSample s;
    s.speed_mps = cells[0];
    if (cells.size() == 4) {
      s.accel_mps2 = cells[1];
      s.slope_percent = cells[2];
      s.ambient_c = cells[3];
    } else {
      s.slope_percent = cells[1];
      s.ambient_c = cells[2];
    }
    samples.push_back(s);
  }
  EVC_EXPECT(!samples.empty(), "drive profile CSV has no data rows: " + path);

  if (expected_cols == 3) {
    // Reconstruct acceleration by forward differences.
    for (std::size_t i = 0; i + 1 < samples.size(); ++i)
      samples[i].accel_mps2 =
          (samples[i + 1].speed_mps - samples[i].speed_mps) / dt;
    samples.back().accel_mps2 = 0.0;
  }
  return DriveProfile(name, dt, std::move(samples));
}

}  // namespace evc::drive
