// Drive profile: the multi-variable environment input of the paper (§II-A).
//
// A drive profile is discrete-time sampled data describing the environment
// the EV drives through: vehicle speed, acceleration, road slope, and
// ambient temperature per sample. It is the single input of both the power
// train estimator and the MPC's receding horizon.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace evc::drive {

/// One sample of the environment (SI units; slope in percent grade where
/// 100 % = 45°; temperature in °C).
struct DriveSample {
  double speed_mps = 0.0;
  double accel_mps2 = 0.0;
  double slope_percent = 0.0;
  double ambient_c = 20.0;
};

class DriveProfile {
 public:
  DriveProfile() = default;
  /// `dt` is the sample period in seconds.
  DriveProfile(std::string name, double dt, std::vector<DriveSample> samples);

  const std::string& name() const { return name_; }
  double dt() const { return dt_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double duration() const { return dt_ * static_cast<double>(size()); }

  const DriveSample& operator[](std::size_t i) const { return samples_[i]; }
  /// Sample at index i, clamped to the final sample past the end (the MPC
  /// horizon may extend beyond the profile near the trip's end).
  const DriveSample& clamped(std::size_t i) const;

  /// Total distance driven (trapezoidal integral of speed), meters.
  double total_distance_m() const;
  double max_speed_mps() const;
  double average_speed_mps() const;  ///< includes stops

  /// Copy of samples [start, start+count), clamped to the profile end.
  DriveProfile window(std::size_t start, std::size_t count) const;

 private:
  std::string name_;
  double dt_ = 1.0;
  std::vector<DriveSample> samples_;
};

}  // namespace evc::drive
