#include "drivecycle/standard_cycles.hpp"

#include <cmath>

#include "util/expect.hpp"
#include "util/interp.hpp"
#include "util/units.hpp"

namespace evc::drive {

namespace {

/// (time s, speed km/h) knot; cycles are linear between knots.
struct Knot {
  double t;
  double v_kmh;
};

/// ECE-15 elementary urban cycle, 195 s (UN ECE R83 piecewise definition).
std::vector<Knot> ece15_knots(double t0) {
  const std::vector<Knot> base{
      {0, 0},    {11, 0},   {15, 15},  {23, 15},  {28, 0},   {49, 0},
      {61, 32},  {85, 32},  {96, 0},   {117, 0},  {143, 50}, {155, 50},
      {163, 35}, {176, 35}, {188, 0},  {195, 0},
  };
  std::vector<Knot> out;
  out.reserve(base.size());
  for (const Knot& k : base) out.push_back({k.t + t0, k.v_kmh});
  return out;
}

/// Extra-urban cycle, 400 s. `low_power` caps the top speed at 90 km/h
/// (the Annex "low-powered vehicle" variant — the paper's ECE_EUDC).
std::vector<Knot> eudc_knots(double t0, bool low_power) {
  std::vector<Knot> base;
  if (!low_power) {
    base = {{0, 0},     {20, 0},    {61, 70},   {111, 70}, {119, 50},
            {188, 50},  {201, 70},  {251, 70},  {286, 100}, {316, 100},
            {336, 120}, {346, 120}, {362, 80},  {370, 50}, {380, 0},
            {400, 0}};
  } else {
    base = {{0, 0},    {20, 0},   {61, 70},  {111, 70}, {119, 50},
            {188, 50}, {201, 70}, {251, 70}, {286, 90}, {346, 90},
            {362, 80}, {370, 50}, {380, 0},  {400, 0}};
  }
  for (Knot& k : base) k.t += t0;
  return base;
}

std::vector<Knot> nedc_knots(bool low_power) {
  std::vector<Knot> out;
  for (int rep = 0; rep < 4; ++rep) {
    auto part = ece15_knots(195.0 * rep);
    // Skip the duplicate joint knot between repetitions.
    const std::size_t skip = rep == 0 ? 0 : 1;
    out.insert(out.end(), part.begin() + skip, part.end());
  }
  auto ex = eudc_knots(780.0, low_power);
  out.insert(out.end(), ex.begin() + 1, ex.end());
  return out;
}

/// US06 supplemental FTP cycle — synthesized to the published statistics
/// (596 s, 12.89 km, 129.2 km/h max, aggressive accelerations).
std::vector<Knot> us06_knots() {
  return {{0, 0},     {5, 0},     {25, 80},   {35, 60},   {50, 95},
          {70, 40},   {80, 45},   {95, 0},    {105, 0},   {125, 100},
          {160, 129}, {210, 124}, {240, 95},  {275, 128}, {350, 129},
          {385, 105}, {415, 120}, {450, 0},   {470, 0},   {500, 50},
          {520, 30},  {545, 0},   {596, 0}};
}

/// SC03 air-conditioning SFTP cycle — synthesized to the published
/// statistics (596 s, 5.76 km, 88.2 km/h max, urban stop-and-go).
std::vector<Knot> sc03_knots() {
  return {{0, 0},    {20, 0},   {40, 50},  {60, 40},  {80, 55},  {100, 0},
          {115, 0},  {135, 88}, {190, 78}, {215, 0},  {230, 0},  {250, 45},
          {270, 50}, {290, 0},  {305, 0},  {325, 60}, {355, 55}, {375, 30},
          {395, 65}, {425, 0},  {445, 0},  {465, 40}, {485, 35}, {505, 45},
          {525, 0},  {545, 0},  {565, 35}, {585, 20}, {596, 0}};
}

/// One urban speed hump: idle, linear accel to `peak`, cruise, decel to 0.
struct Hump {
  double peak_kmh;
  double accel_s;
  double cruise_s;
  double decel_s;
  double idle_s;  ///< idle *before* the hump
};

std::vector<Knot> knots_from_humps(const std::vector<Hump>& humps,
                                   double tail_idle_s) {
  std::vector<Knot> out{{0, 0}};
  double t = 0.0;
  for (const Hump& h : humps) {
    t += h.idle_s;
    out.push_back({t, 0});
    t += h.accel_s;
    out.push_back({t, h.peak_kmh});
    t += h.cruise_s;
    out.push_back({t, h.peak_kmh});
    t += h.decel_s;
    out.push_back({t, 0});
  }
  t += tail_idle_s;
  out.push_back({t, 0});
  return out;
}

/// UDDS (FTP-72 urban cycle) — synthesized as 17 stop-separated humps to the
/// published statistics (1369 s, 12.07 km, 91.2 km/h max, ~17 stops).
std::vector<Knot> udds_knots() {
  const std::vector<Hump> humps{
      {50.0, 25, 40, 20, 20},   {91.2, 45, 60, 35, 15},
      {35.0, 12, 25, 10, 15},   {50.0, 18, 30, 14, 20},
      {40.0, 14, 25, 12, 18},   {56.0, 20, 35, 16, 15},
      {45.0, 15, 30, 13, 20},   {32.0, 10, 20, 9, 14},
      {55.0, 18, 32, 15, 18},   {42.0, 14, 26, 12, 16},
      {60.0, 22, 36, 17, 15},   {38.0, 12, 24, 11, 17},
      {48.0, 16, 30, 14, 19},   {35.0, 11, 22, 10, 15},
      {52.0, 17, 32, 15, 18},   {44.0, 14, 26, 12, 16},
      {40.0, 13, 24, 11, 14},
  };
  return knots_from_humps(humps, 25.0);
}

/// WLTC class 3b — synthesized to the published statistics (1800 s,
/// 23.27 km, 131.3 km/h max) with its four phases: low (589 s, urban
/// stop-and-go), medium (433 s), high (455 s), extra-high (323 s).
std::vector<Knot> wltp_knots() {
  // Low phase ≈ 585 s / 3.1 km of urban stop-and-go.
  std::vector<Hump> low{
      {40.0, 15, 25, 12, 29},   {50.0, 18, 20, 14, 32},
      {56.5, 20, 22, 16, 35},   {35.0, 12, 22, 10, 31},
      {48.0, 16, 28, 14, 37},   {42.0, 14, 22, 12, 33},
      {30.0, 10, 18, 9, 29},
  };
  auto knots = knots_from_humps(low, 10.0);
  const double t_low = knots.back().t;
  // Medium phase 433 s / ≈ 4.76 km, peak 76.6 km/h, one mid-phase stop.
  std::vector<Knot> medium{{0, 0},     {30, 50},  {80, 45},  {120, 0},
                           {140, 0},   {190, 76.6}, {260, 60}, {330, 45},
                           {400, 25},  {423, 0},  {433, 0}};
  for (Knot& k : medium) k.t += t_low;
  knots.insert(knots.end(), medium.begin() + 1, medium.end());
  const double t_med = knots.back().t;
  // High phase 455 s / ≈ 6.6 km, peak 97.4 km/h.
  std::vector<Knot> high{{0, 0},      {40, 60},  {100, 70}, {160, 0},
                         {180, 0},    {240, 97.4}, {330, 85}, {380, 60},
                         {440, 0},    {455, 0}};
  for (Knot& k : high) k.t += t_med;
  knots.insert(knots.end(), high.begin() + 1, high.end());
  const double t_high = knots.back().t;
  // Extra-high phase 323 s / ≈ 8.7 km, peak 131.3 km/h, ends at rest.
  std::vector<Knot> xhigh{{0, 0},     {45, 95},   {110, 118}, {175, 131.3},
                          {230, 118}, {280, 90},  {310, 40},  {318, 0},
                          {323, 0}};
  for (Knot& k : xhigh) k.t += t_high;
  knots.insert(knots.end(), xhigh.begin() + 1, xhigh.end());
  return knots;
}

/// HWFET (EPA highway fuel economy test) — synthesized to the published
/// statistics (765 s, 16.45 km, 96.4 km/h max, no intermediate stops).
std::vector<Knot> hwfet_knots() {
  return {{0, 0},     {35, 80},   {100, 90},  {180, 78}, {260, 88},
          {340, 96.4}, {420, 88},  {500, 92},  {580, 85}, {660, 90},
          {730, 48},  {765, 0}};
}

/// JC08 (Japan urban/expressway) — synthesized to the published statistics
/// (1204 s, 8.17 km, 81.6 km/h max, ~30 % idle).
std::vector<Knot> jc08_knots() {
  const std::vector<Hump> humps{
      {30.0, 12, 18, 10, 35},  {40.0, 15, 25, 12, 38},
      {55.0, 20, 30, 15, 40},  {35.0, 12, 20, 10, 36},
      {60.0, 22, 35, 16, 38},  {45.0, 15, 25, 13, 40},
      {70.0, 25, 40, 18, 35},  {40.0, 14, 22, 11, 42},
      {81.6, 30, 45, 20, 38},  {50.0, 16, 28, 13, 40},
      {35.0, 12, 20, 10, 38},  {55.0, 18, 30, 14, 40},
  };
  return knots_from_humps(humps, 33.0);
}

std::vector<Knot> knots_for(StandardCycle cycle) {
  switch (cycle) {
    case StandardCycle::kNedc:
      return nedc_knots(/*low_power=*/false);
    case StandardCycle::kEceEudc:
      return nedc_knots(/*low_power=*/true);
    case StandardCycle::kUs06:
      return us06_knots();
    case StandardCycle::kSc03:
      return sc03_knots();
    case StandardCycle::kUdds:
      return udds_knots();
    case StandardCycle::kWltp:
      return wltp_knots();
    case StandardCycle::kHwfet:
      return hwfet_knots();
    case StandardCycle::kJc08:
      return jc08_knots();
  }
  EVC_ENSURE(false, "unreachable cycle enum");
}

}  // namespace

std::vector<StandardCycle> all_standard_cycles() {
  return {StandardCycle::kNedc, StandardCycle::kUs06, StandardCycle::kEceEudc,
          StandardCycle::kSc03, StandardCycle::kUdds};
}

std::vector<StandardCycle> extended_cycles() {
  return {StandardCycle::kWltp, StandardCycle::kHwfet, StandardCycle::kJc08};
}

std::string cycle_name(StandardCycle cycle) {
  switch (cycle) {
    case StandardCycle::kNedc:
      return "NEDC";
    case StandardCycle::kUs06:
      return "US06";
    case StandardCycle::kEceEudc:
      return "ECE_EUDC";
    case StandardCycle::kSc03:
      return "SC03";
    case StandardCycle::kUdds:
      return "UDDS";
    case StandardCycle::kWltp:
      return "WLTP";
    case StandardCycle::kHwfet:
      return "HWFET";
    case StandardCycle::kJc08:
      return "JC08";
  }
  return "unknown";
}

CycleReference cycle_reference(StandardCycle cycle) {
  switch (cycle) {
    case StandardCycle::kNedc:
      return {1180.0, 11.02, 120.0};
    case StandardCycle::kUs06:
      return {596.0, 12.89, 129.2};  // published EPA statistics
    case StandardCycle::kEceEudc:
      return {1180.0, 10.5, 90.0};  // low-powered-vehicle NEDC variant
    case StandardCycle::kSc03:
      return {596.0, 5.76, 88.2};  // published EPA statistics
    case StandardCycle::kUdds:
      return {1369.0, 12.07, 91.2};  // published EPA statistics
    case StandardCycle::kWltp:
      return {1800.0, 23.27, 131.3};  // published WLTC class 3b statistics
    case StandardCycle::kHwfet:
      return {765.0, 16.45, 96.4};  // published EPA statistics
    case StandardCycle::kJc08:
      return {1204.0, 8.17, 81.6};  // published JC08 statistics
  }
  EVC_ENSURE(false, "unreachable cycle enum");
}

DriveProfile make_cycle_profile(StandardCycle cycle, double ambient_c,
                                double dt) {
  EVC_EXPECT(dt > 0.0, "cycle sample period must be positive");
  const auto knots = knots_for(cycle);
  std::vector<double> ts, vs;
  ts.reserve(knots.size());
  vs.reserve(knots.size());
  for (const Knot& k : knots) {
    ts.push_back(k.t);
    vs.push_back(units::kmh_to_mps(k.v_kmh));
  }
  const LookupTable1D speed(ts, vs);
  const double duration = ts.back();

  const std::size_t n = static_cast<std::size_t>(std::round(duration / dt));
  std::vector<DriveSample> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    DriveSample& s = samples[i];
    s.speed_mps = speed(t);
    // Forward-difference acceleration over the sample period; zero at the
    // final sample (cycle ends at rest).
    s.accel_mps2 = (speed(std::min(t + dt, duration)) - s.speed_mps) / dt;
    s.slope_percent = 0.0;  // standard cycles are defined on flat road
    s.ambient_c = ambient_c;
  }
  return DriveProfile(cycle_name(cycle), dt, std::move(samples));
}

}  // namespace evc::drive
