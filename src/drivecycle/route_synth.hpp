// Synthetic route & weather generation.
//
// The paper builds real-life drive profiles from Google Maps traffic/
// elevation data and NOAA climate records (§II-A). Neither database is
// available offline, so this module generates statistically similar routes:
// stop-and-go urban humps mixed with highway stretches, a bounded
// random-walk elevation profile, and a slowly varying ambient temperature.
// The output is an ordinary DriveProfile, exercising exactly the same code
// path as a database-derived profile would.
#pragma once

#include <cstdint>

#include "drivecycle/drive_profile.hpp"

namespace evc::drive {

struct RouteSynthOptions {
  std::uint64_t seed = 1;
  double trip_duration_s = 1800.0;
  /// Fraction of trip time spent in urban stop-and-go (rest is highway).
  double urban_fraction = 0.5;
  double urban_speed_kmh = 50.0;    ///< typical urban hump peak
  double highway_speed_kmh = 110.0; ///< typical highway cruise speed
  /// Peak road slope magnitude in percent grade; 0 gives a flat route.
  double hilliness_percent = 2.0;
  double base_ambient_c = 25.0;
  /// Slow ambient drift amplitude over the trip (°C).
  double ambient_drift_c = 2.0;
  double dt = 1.0;
};

/// Deterministic in `seed`: the same options always give the same profile.
DriveProfile synthesize_route(const RouteSynthOptions& options);

}  // namespace evc::drive
