#include "drivecycle/drive_profile.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace evc::drive {

DriveProfile::DriveProfile(std::string name, double dt,
                           std::vector<DriveSample> samples)
    : name_(std::move(name)), dt_(dt), samples_(std::move(samples)) {
  EVC_EXPECT(dt_ > 0.0, "drive profile sample period must be positive");
  for (const DriveSample& s : samples_) {
    EVC_EXPECT(s.speed_mps >= 0.0, "drive profile speed must be >= 0");
    EVC_EXPECT(s.ambient_c > -60.0 && s.ambient_c < 70.0,
               "ambient temperature outside plausible range");
  }
}

const DriveSample& DriveProfile::clamped(std::size_t i) const {
  EVC_EXPECT(!samples_.empty(), "clamped() on empty profile");
  return samples_[std::min(i, samples_.size() - 1)];
}

double DriveProfile::total_distance_m() const {
  double dist = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i)
    dist += 0.5 * (samples_[i - 1].speed_mps + samples_[i].speed_mps) * dt_;
  return dist;
}

double DriveProfile::max_speed_mps() const {
  double m = 0.0;
  for (const DriveSample& s : samples_) m = std::max(m, s.speed_mps);
  return m;
}

double DriveProfile::average_speed_mps() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (const DriveSample& s : samples_) acc += s.speed_mps;
  return acc / static_cast<double>(samples_.size());
}

DriveProfile DriveProfile::window(std::size_t start, std::size_t count) const {
  std::vector<DriveSample> out;
  out.reserve(count);
  for (std::size_t i = start; i < std::min(start + count, samples_.size());
       ++i)
    out.push_back(samples_[i]);
  return DriveProfile(name_ + "-window", dt_, std::move(out));
}

}  // namespace evc::drive
