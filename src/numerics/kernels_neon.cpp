// NEON target (aarch64): two 2-lane float64x2_t registers per logical
// 4-lane pack, mirroring the SSE2 layout. NEON is baseline on aarch64, so
// no runtime CPU check is needed — availability is a build-time property.
// vmulq/vaddq are used instead of vfmaq for bitwise identity with the
// other targets (see kernels_avx2.cpp).
#include "numerics/simd_blocked.hpp"

#if defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>

namespace evc::num::simd {
namespace {

struct PackNeon {
  float64x2_t lo, hi;

  static PackNeon load(const double* p) {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  static void store(double* p, PackNeon v) {
    vst1q_f64(p, v.lo);
    vst1q_f64(p + 2, v.hi);
  }
  static PackNeon broadcast(double a) {
    const float64x2_t v = vdupq_n_f64(a);
    return {v, v};
  }
  static PackNeon zero() {
    const float64x2_t v = vdupq_n_f64(0.0);
    return {v, v};
  }
  static PackNeon add(PackNeon x, PackNeon y) {
    return {vaddq_f64(x.lo, y.lo), vaddq_f64(x.hi, y.hi)};
  }
  static PackNeon mul(PackNeon x, PackNeon y) {
    return {vmulq_f64(x.lo, y.lo), vmulq_f64(x.hi, y.hi)};
  }
  static double reduce(PackNeon v) {
    const float64x2_t s = vaddq_f64(v.lo, v.hi);  // (l0+l2, l1+l3)
    return vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1);
  }
};

}  // namespace

const KernelTable* neon_table() {
  static const KernelTable table = BlockedKernels<PackNeon>::table(Isa::kNeon);
  return &table;
}

const FixedKernelTable* neon_fixed_table(std::size_t n) {
  return fixed_table_lookup<PackNeon>(n);
}

}  // namespace evc::num::simd

#else  // non-ARM build: target not available

namespace evc::num::simd {
const KernelTable* neon_table() { return nullptr; }
const FixedKernelTable* neon_fixed_table(std::size_t) { return nullptr; }
}  // namespace evc::num::simd

#endif
