// SSE2 target: the logical 4-lane pack is two 2-lane __m128d registers.
// SSE2 is part of the x86-64 baseline, so this target always exists on
// x86-64 builds. Lane order matches the blocked scalar reference exactly:
// lo = lanes {0,1}, hi = lanes {2,3}, reduce = (l0+l2) + (l1+l3).
#include "numerics/simd_blocked.hpp"

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>

namespace evc::num::simd {
namespace {

struct PackSse2 {
  __m128d lo, hi;

  static PackSse2 load(const double* p) {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  static void store(double* p, PackSse2 v) {
    _mm_storeu_pd(p, v.lo);
    _mm_storeu_pd(p + 2, v.hi);
  }
  static PackSse2 broadcast(double a) {
    const __m128d v = _mm_set1_pd(a);
    return {v, v};
  }
  static PackSse2 zero() {
    const __m128d v = _mm_setzero_pd();
    return {v, v};
  }
  static PackSse2 add(PackSse2 x, PackSse2 y) {
    return {_mm_add_pd(x.lo, y.lo), _mm_add_pd(x.hi, y.hi)};
  }
  static PackSse2 mul(PackSse2 x, PackSse2 y) {
    return {_mm_mul_pd(x.lo, y.lo), _mm_mul_pd(x.hi, y.hi)};
  }
  static double reduce(PackSse2 v) {
    // lo+hi = (l0+l2, l1+l3); then sum the two halves in that order.
    const __m128d s = _mm_add_pd(v.lo, v.hi);
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }
};

}  // namespace

const KernelTable* sse2_table() {
  static const KernelTable table = BlockedKernels<PackSse2>::table(Isa::kSse2);
  return &table;
}

const FixedKernelTable* sse2_fixed_table(std::size_t n) {
  return fixed_table_lookup<PackSse2>(n);
}

}  // namespace evc::num::simd

#else  // non-x86 build: target not available

namespace evc::num::simd {
const KernelTable* sse2_table() { return nullptr; }
const FixedKernelTable* sse2_fixed_table(std::size_t) { return nullptr; }
}  // namespace evc::num::simd

#endif
