#include "numerics/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::num {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void Matrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::copy_from(const Matrix& src) {
  rows_ = src.rows_;
  cols_ = src.cols_;
  data_.assign(src.data_.begin(), src.data_.end());
}

double& Matrix::at(std::size_t r, std::size_t c) {
  EVC_EXPECT(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  EVC_EXPECT(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  EVC_EXPECT(cols_ == rhs.rows_, "Matrix * Matrix dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  EVC_EXPECT(cols_ == v.size(), "Matrix * Vector dimension mismatch");
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Vector Matrix::transpose_times(const Vector& x) const {
  EVC_EXPECT(rows_ == x.size(), "Matrix::transpose_times dimension mismatch");
  Vector out(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < cols_; ++j) out[j] += (*this)(i, j) * xi;
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  EVC_EXPECT(rows_ == rhs.rows_ && cols_ == rhs.cols_,
             "Matrix += dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  EVC_EXPECT(rows_ == rhs.rows_ && cols_ == rhs.cols_,
             "Matrix -= dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  EVC_EXPECT(r0 + nr <= rows_ && c0 + nc <= cols_,
             "Matrix::block out of range");
  Matrix out(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c) out(r, c) = (*this)(r0 + r, c0 + c);
  return out;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& src) {
  EVC_EXPECT(r0 + src.rows_ <= rows_ && c0 + src.cols_ <= cols_,
             "Matrix::set_block out of range");
  for (std::size_t r = 0; r < src.rows_; ++r)
    for (std::size_t c = 0; c < src.cols_; ++c)
      (*this)(r0 + r, c0 + c) = src(r, c);
}

Vector Matrix::row(std::size_t r) const {
  EVC_EXPECT(r < rows_, "Matrix::row out of range");
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::col(std::size_t c) const {
  EVC_EXPECT(c < cols_, "Matrix::col out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  EVC_EXPECT(r < rows_ && v.size() == cols_, "Matrix::set_row mismatch");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

double Matrix::norm_max() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

void Matrix::symmetrize() {
  EVC_EXPECT(rows_ == cols_, "symmetrize requires a square matrix");
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
}

}  // namespace evc::num
