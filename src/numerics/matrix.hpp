// Dense row-major real matrix for the embedded optimization stack.
// Storage is 64-byte aligned (numerics/aligned.hpp) for the SIMD kernels.
#pragma once

#include <cstddef>
#include <vector>

#include "numerics/aligned.hpp"
#include "numerics/vector.hpp"

namespace evc::num {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  /// Elements the backing store can hold without reallocating.
  std::size_t capacity() const { return data_.capacity(); }

  /// Set dimensions and zero every element. Reuses the backing store when
  /// capacity suffices — the workspace-reuse primitive.
  void resize(std::size_t rows, std::size_t cols);
  /// Zero every element, keeping dimensions.
  void set_zero();
  /// dst := src, reusing this matrix's backing store when adequate.
  void copy_from(const Matrix& src);

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  /// Raw 64-byte-aligned element pointer (row-major, leading dim = cols()).
  double* ptr() { return data_.data(); }
  const double* ptr() const { return data_.data(); }
  /// Pointer to the first element of row `r`.
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }
  /// Bounds-checked access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Vector operator*(const Vector& v) const;
  /// yᵀ = xᵀ·A, i.e. Aᵀ·x without forming the transpose.
  Vector transpose_times(const Vector& x) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Copy rows [r0, r0+nr) × cols [c0, c0+nc).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;
  /// Write `src` at offset (r0, c0).
  void set_block(std::size_t r0, std::size_t c0, const Matrix& src);
  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;
  void set_row(std::size_t r, const Vector& v);

  /// max |a_ij|.
  double norm_max() const;
  /// Symmetrize in place: A := (A + Aᵀ)/2. Cheap guard before factorizing
  /// matrices that are symmetric up to rounding.
  void symmetrize();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedBuffer data_;
};

}  // namespace evc::num
