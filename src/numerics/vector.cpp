#include "numerics/vector.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace evc::num {

double& Vector::at(std::size_t i) {
  EVC_EXPECT(i < size(), "Vector::at out of range");
  return data_[i];
}

double Vector::at(std::size_t i) const {
  EVC_EXPECT(i < size(), "Vector::at out of range");
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  EVC_EXPECT(size() == rhs.size(), "Vector += size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  EVC_EXPECT(size() == rhs.size(), "Vector -= size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector& Vector::add_scaled(double s, const Vector& rhs) {
  EVC_EXPECT(size() == rhs.size(), "Vector add_scaled size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += s * rhs.data_[i];
  return *this;
}

double Vector::dot(const Vector& rhs) const {
  EVC_EXPECT(size() == rhs.size(), "Vector dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += data_[i] * rhs.data_[i];
  return acc;
}

double Vector::norm2() const { return std::sqrt(dot(*this)); }

double Vector::norm_inf() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

double Vector::norm1() const {
  double acc = 0.0;
  for (double x : data_) acc += std::abs(x);
  return acc;
}

void Vector::fill(double value) {
  for (double& x : data_) x = value;
}

Vector Vector::segment(std::size_t begin, std::size_t count) const {
  EVC_EXPECT(begin + count <= size(), "Vector::segment out of range");
  Vector out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = data_[begin + i];
  return out;
}

void Vector::set_segment(std::size_t begin, const Vector& src) {
  EVC_EXPECT(begin + src.size() <= size(), "Vector::set_segment out of range");
  for (std::size_t i = 0; i < src.size(); ++i) data_[begin + i] = src[i];
}

}  // namespace evc::num
