// 64-byte-aligned storage for the numerics containers.
//
// The SIMD kernels (numerics/simd.hpp) issue unaligned vector loads, so
// alignment is a performance property, not a correctness one: a 64-byte
// base puts every buffer on a cache-line (and AVX-512-ready) boundary, so
// the first lane of a row never straddles two lines. Matrix rows are only
// individually aligned when the column count is a multiple of 8 doubles —
// the kernels therefore never *assume* alignment, they just profit from it.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace evc::num {

/// Minimal C++17 aligned allocator (std::aligned_alloc under the hood).
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two >= alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes = (n * sizeof(T) + Alignment - 1) / Alignment * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// Cache-line alignment for every numerics buffer.
inline constexpr std::size_t kNumAlignment = 64;

/// Backing store of Vector/Matrix (and the QP workspace's CSR values):
/// a std::vector whose heap block is 64-byte aligned.
using AlignedBuffer = std::vector<double, AlignedAllocator<double, kNumAlignment>>;

}  // namespace evc::num
