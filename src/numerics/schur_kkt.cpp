#include "numerics/schur_kkt.hpp"

#include <algorithm>

#include "numerics/simd.hpp"
#include "util/expect.hpp"

namespace evc::num {

bool SchurKktSolver::factorize(const Matrix& k, const Matrix& e) {
  EVC_EXPECT(k.rows() == k.cols(), "SchurKkt: K must be square");
  EVC_EXPECT(e.cols() == k.rows() || e.rows() == 0,
             "SchurKkt: E column count must match K");
  n_ = k.rows();
  me_ = e.rows();
  ok_ = false;
  s_via_lu_ = false;
  regularized_ = false;

  if (!chol_k_.factorize(k)) return false;

  if (me_ == 0) {
    ok_ = true;
    return true;
  }

  // Wᵀ = K⁻¹·Eᵀ, all me right-hand sides at once: the block triangular
  // solves sweep rows of L with the inner loop contiguous across the rhs
  // columns, which is ~an order of magnitude faster than me single-rhs
  // back-substitutions (those stride down a column of L per element).
  wt_.resize(n_, me_);
  for (std::size_t c = 0; c < n_; ++c)
    for (std::size_t j = 0; j < me_; ++j) wt_(c, j) = e(j, c);
  chol_k_.forward_block_in_place(wt_);  // wt_ is now Y = L⁻¹·Eᵀ
  // S = E·K⁻¹·Eᵀ = YᵀY: accumulate rank-1 updates from the half-solved
  // block before finishing the backward sweep — upper triangle, mirrored.
  s_.resize(me_, me_);
  for (std::size_t i = 0; i < me_; ++i)
    for (std::size_t j = 0; j < me_; ++j) s_(i, j) = 0.0;
  if (simd::dispatch_enabled()) {
    const simd::KernelTable& tbl = simd::active();
    for (std::size_t c = 0; c < n_; ++c) {
      const double* yc = wt_.row_ptr(c);
      for (std::size_t i = 0; i < me_; ++i) {
        const double yci = yc[i];
        if (yci == 0.0) continue;
        // Rank-1 row update along the contiguous tail j ∈ [i, me).
        tbl.axpy(yci, yc + i, s_.row_ptr(i) + i, me_ - i);
      }
    }
  } else {
    for (std::size_t c = 0; c < n_; ++c) {
      for (std::size_t i = 0; i < me_; ++i) {
        const double yci = wt_(c, i);
        if (yci == 0.0) continue;
        for (std::size_t j = i; j < me_; ++j) s_(i, j) += yci * wt_(c, j);
      }
    }
  }
  for (std::size_t i = 0; i < me_; ++i)
    for (std::size_t j = i + 1; j < me_; ++j) s_(j, i) = s_(i, j);
  chol_k_.backward_block_in_place(wt_);  // wt_ is now K⁻¹·Eᵀ

  if (chol_s_.factorize(s_)) {
    ok_ = true;
    return true;
  }
  // S singular or slightly indefinite through roundoff (e.g. redundant
  // equality rows): dual-regularize once, then fall back to pivoted LU.
  double shift = std::max(1e-12 * s_.norm_max(), 1e-12);
  for (std::size_t i = 0; i < me_; ++i) s_(i, i) += shift;
  regularized_ = true;
  if (chol_s_.factorize(s_)) {
    ok_ = true;
    return true;
  }
  if (lu_s_.factorize(s_)) {
    s_via_lu_ = true;
    ok_ = true;
    return true;
  }
  return false;
}

void SchurKktSolver::solve(const Vector& r1, const Vector& r2, Vector& dx,
                           Vector& dy) const {
  EVC_EXPECT(ok_, "SchurKkt: solve without a successful factorization");
  EVC_EXPECT(r1.size() == n_ && r2.size() == me_,
             "SchurKkt: solve dimension mismatch");

  // t = K⁻¹·r1.
  chol_k_.solve_into(r1, t_);

  if (me_ == 0) {
    dx.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) dx[i] = t_[i];
    dy.resize(0);
    return;
  }

  // rhs_y = E·t − r2, but E is not stored here — use Wᵀ instead:
  // E·t = E·K⁻¹·r1 = (K⁻¹Eᵀ)ᵀ·r1 (symmetric K). Sweep rows of wt_ so the
  // inner loop is contiguous.
  rhs_y_.resize(me_);
  for (std::size_t j = 0; j < me_; ++j) rhs_y_[j] = -r2[j];
  if (simd::dispatch_enabled()) {
    const simd::KernelTable& tbl = simd::active();
    for (std::size_t c = 0; c < n_; ++c) {
      const double rc = r1[c];
      if (rc == 0.0) continue;
      tbl.axpy(rc, wt_.row_ptr(c), rhs_y_.ptr(), me_);
    }
  } else {
    for (std::size_t c = 0; c < n_; ++c) {
      const double rc = r1[c];
      if (rc == 0.0) continue;
      for (std::size_t j = 0; j < me_; ++j) rhs_y_[j] += wt_(c, j) * rc;
    }
  }

  dy.resize(me_);
  if (s_via_lu_)
    lu_s_.solve_into(rhs_y_, dy);
  else
    chol_s_.solve_into(rhs_y_, dy);

  // dx = K⁻¹·(r1 − Eᵀ·dy) = t − (K⁻¹·Eᵀ)·dy — row·vector dots over wt_.
  dx.resize(n_);
  if (simd::dispatch_enabled()) {
    const simd::KernelTable& tbl = simd::active();
    for (std::size_t c = 0; c < n_; ++c)
      dx[c] = t_[c] - tbl.dot(wt_.row_ptr(c), dy.ptr(), me_);
  } else {
    for (std::size_t c = 0; c < n_; ++c) {
      double acc = 0.0;
      for (std::size_t j = 0; j < me_; ++j) acc += wt_(c, j) * dy[j];
      dx[c] = t_[c] - acc;
    }
  }
}

std::size_t SchurKktSolver::workspace_bytes() const {
  return (wt_.capacity() + s_.capacity() + t_.capacity() +
          rhs_y_.capacity()) *
             sizeof(double) +
         chol_k_.workspace_bytes() + chol_s_.workspace_bytes() +
         lu_s_.workspace_bytes();
}

}  // namespace evc::num
