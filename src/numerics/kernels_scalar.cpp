// Blocked scalar reference target — the bit pattern every vector target
// must reproduce. Compiled with -ffp-contract=off (see CMakeLists) so the
// four-lane arithmetic cannot be fused into FMAs on hosts that have them.
#include "numerics/simd_blocked.hpp"

namespace evc::num::simd {
namespace {

// Four explicit double lanes; the compiler is free to auto-vectorize this
// (the semantics, and therefore the bits, do not change).
struct PackScalar {
  double l0, l1, l2, l3;

  static PackScalar load(const double* p) { return {p[0], p[1], p[2], p[3]}; }
  static void store(double* p, PackScalar v) {
    p[0] = v.l0;
    p[1] = v.l1;
    p[2] = v.l2;
    p[3] = v.l3;
  }
  static PackScalar broadcast(double a) { return {a, a, a, a}; }
  static PackScalar zero() { return {0.0, 0.0, 0.0, 0.0}; }
  static PackScalar add(PackScalar x, PackScalar y) {
    return {x.l0 + y.l0, x.l1 + y.l1, x.l2 + y.l2, x.l3 + y.l3};
  }
  static PackScalar mul(PackScalar x, PackScalar y) {
    return {x.l0 * y.l0, x.l1 * y.l1, x.l2 * y.l2, x.l3 * y.l3};
  }
  static double reduce(PackScalar v) { return (v.l0 + v.l2) + (v.l1 + v.l3); }
};

}  // namespace

const KernelTable* scalar_table() {
  static const KernelTable table =
      BlockedKernels<PackScalar>::table(Isa::kScalar);
  return &table;
}

const FixedKernelTable* scalar_fixed_table(std::size_t n) {
  return fixed_table_lookup<PackScalar>(n);
}

}  // namespace evc::num::simd
