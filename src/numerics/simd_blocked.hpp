// The one blocked-accumulation algorithm behind every SIMD target.
//
// Each instruction set provides a Pack type modelling **four logical
// double lanes** (AVX2: one 4-lane register; SSE2/NEON: two 2-lane
// registers; scalar: four doubles) and this header instantiates the kernel
// bodies over it. Because every target executes the same lane arithmetic in
// the same order — eight-element unroll with two pack accumulators, a fixed
// reduction tree ((l0+l2) + (l1+l3)), sequential scalar tail, and no fused
// multiply-add anywhere — the results are bit-identical across targets for
// every input. tests/kernels_simd_test asserts exactly that.
//
// Requirements on Pack (all static):
//   load(p)       four doubles from p (unaligned allowed)
//   store(p, v)   four doubles to p (unaligned allowed)
//   broadcast(a)  all lanes = a
//   zero()        all lanes = 0.0
//   add(x, y), mul(x, y)   lane-wise (never fused)
//   reduce(v)     (l0+l2) + (l1+l3)
//
// The including translation unit must be compiled with -ffp-contract=off so
// the compiler cannot fuse the scalar tail (or the scalar pack) into FMAs
// that the vector targets do not perform.
#pragma once

#include <cstddef>

#include "numerics/simd.hpp"

namespace evc::num::simd {

template <typename Pack>
struct BlockedKernels {
  static double dot(const double* x, const double* y, std::size_t n) {
    Pack acc0 = Pack::zero();
    Pack acc1 = Pack::zero();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      acc0 = Pack::add(acc0, Pack::mul(Pack::load(x + i), Pack::load(y + i)));
      acc1 = Pack::add(acc1,
                       Pack::mul(Pack::load(x + i + 4), Pack::load(y + i + 4)));
    }
    acc0 = Pack::add(acc0, acc1);
    for (; i + 4 <= n; i += 4)
      acc0 = Pack::add(acc0, Pack::mul(Pack::load(x + i), Pack::load(y + i)));
    double r = Pack::reduce(acc0);
    for (; i < n; ++i) r += x[i] * y[i];
    return r;
  }

  static void axpy(double a, const double* x, double* y, std::size_t n) {
    const Pack va = Pack::broadcast(a);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      Pack::store(y + i,
                  Pack::add(Pack::load(y + i), Pack::mul(va, Pack::load(x + i))));
      Pack::store(y + i + 4, Pack::add(Pack::load(y + i + 4),
                                       Pack::mul(va, Pack::load(x + i + 4))));
    }
    for (; i + 4 <= n; i += 4)
      Pack::store(y + i,
                  Pack::add(Pack::load(y + i), Pack::mul(va, Pack::load(x + i))));
    for (; i < n; ++i) y[i] += a * x[i];
  }

  static void scale(double a, double* x, std::size_t n) {
    const Pack va = Pack::broadcast(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
      Pack::store(x + i, Pack::mul(va, Pack::load(x + i)));
    for (; i < n; ++i) x[i] *= a;
  }

  static void gemv(double alpha, const double* a, std::size_t lda,
                   std::size_t rows, std::size_t cols, const double* x,
                   double* y) {
    for (std::size_t i = 0; i < rows; ++i)
      y[i] += alpha * dot(a + i * lda, x, cols);
  }

  static void gemv_t(double alpha, const double* a, std::size_t lda,
                     std::size_t rows, std::size_t cols, const double* x,
                     double* y) {
    for (std::size_t i = 0; i < rows; ++i)
      axpy(alpha * x[i], a + i * lda, y, cols);
  }

  static void gemm(double alpha, const double* a, std::size_t lda,
                   const double* b, std::size_t ldb, double* c,
                   std::size_t ldc, std::size_t m, std::size_t k,
                   std::size_t n) {
    for (std::size_t i = 0; i < m; ++i) {
      double* ci = c + i * ldc;
      for (std::size_t p = 0; p < k; ++p)
        axpy(alpha * a[i * lda + p], b + p * ldb, ci, n);
    }
  }

  static constexpr KernelTable table(Isa isa) {
    return KernelTable{isa, &dot, &axpy, &scale, &gemv, &gemv_t, &gemm};
  }
};

/// Fixed-length instantiation of the blocked kernels: the same lane
/// arithmetic as BlockedKernels<Pack> — eight-element unroll with two
/// accumulators, the fixed reduction tree, sequential scalar tail — with the
/// trip counts baked in at compile time, so the optimizer fully unrolls the
/// blocked loop and the remainder handling folds away. Results are bitwise
/// equal to BlockedKernels<Pack> at n = N because the operation sequence is
/// identical step for step (tests/kernels_simd_test asserts it).
///
/// The bodies are spelled with constant bounds rather than forwarding to
/// BlockedKernels(…, N): forwarding makes GCC's LTO unroller emit bogus
/// "iteration <huge> invokes undefined behavior" warnings about the scalar
/// tail of the inlined runtime-length body, and diagnostic pragmas are not
/// streamed into the link-time optimizer. Constant bounds fold in the front
/// end, before the offending pass runs.
template <typename Pack, std::size_t N>
struct FixedBlockedKernels {
  static constexpr std::size_t kBlock8 = N - N % 8;
  static constexpr std::size_t kBlock4 = N - N % 4;

  static double dot(const double* x, const double* y) {
    Pack acc0 = Pack::zero();
    Pack acc1 = Pack::zero();
    for (std::size_t i = 0; i < kBlock8; i += 8) {
      acc0 = Pack::add(acc0, Pack::mul(Pack::load(x + i), Pack::load(y + i)));
      acc1 = Pack::add(acc1,
                       Pack::mul(Pack::load(x + i + 4), Pack::load(y + i + 4)));
    }
    acc0 = Pack::add(acc0, acc1);
    for (std::size_t i = kBlock8; i < kBlock4; i += 4)
      acc0 = Pack::add(acc0, Pack::mul(Pack::load(x + i), Pack::load(y + i)));
    double r = Pack::reduce(acc0);
    if constexpr (N % 4 != 0)
      for (std::size_t i = kBlock4; i < N; ++i) r += x[i] * y[i];
    return r;
  }

  static void axpy(double a, const double* x, double* y) {
    const Pack va = Pack::broadcast(a);
    for (std::size_t i = 0; i < kBlock8; i += 8) {
      Pack::store(y + i,
                  Pack::add(Pack::load(y + i), Pack::mul(va, Pack::load(x + i))));
      Pack::store(y + i + 4, Pack::add(Pack::load(y + i + 4),
                                       Pack::mul(va, Pack::load(x + i + 4))));
    }
    for (std::size_t i = kBlock8; i < kBlock4; i += 4)
      Pack::store(y + i,
                  Pack::add(Pack::load(y + i), Pack::mul(va, Pack::load(x + i))));
    if constexpr (N % 4 != 0)
      for (std::size_t i = kBlock4; i < N; ++i) y[i] += a * x[i];
  }

  static void gemv(double alpha, const double* a, std::size_t lda,
                   std::size_t rows, const double* x, double* y) {
    for (std::size_t i = 0; i < rows; ++i) y[i] += alpha * dot(a + i * lda, x);
  }
  static void gemv_t(double alpha, const double* a, std::size_t lda,
                     std::size_t rows, const double* x, double* y) {
    for (std::size_t i = 0; i < rows; ++i) axpy(alpha * x[i], a + i * lda, y);
  }

  static constexpr FixedKernelTable table() {
    return FixedKernelTable{N, &dot, &axpy, &gemv, &gemv_t};
  }
};

/// Shared body of the per-target fixed-table accessors: map a runtime length
/// onto the compile-time specializations this build carries.
template <typename Pack>
const FixedKernelTable* fixed_table_lookup(std::size_t n) {
  static const FixedKernelTable condensed =
      FixedBlockedKernels<Pack, kFixedCondensedDim>::table();
  static const FixedKernelTable full =
      FixedBlockedKernels<Pack, kFixedFullDim>::table();
  if (n == kFixedCondensedDim) return &condensed;
  if (n == kFixedFullDim) return &full;
  return nullptr;
}

// Internal per-target table accessors, defined one per translation unit so
// each can be compiled with its own ISA flags. A target that is not
// compiled into this build returns nullptr.
const KernelTable* scalar_table();
const KernelTable* sse2_table();
const KernelTable* avx2_table();
const KernelTable* neon_table();
const FixedKernelTable* scalar_fixed_table(std::size_t n);
const FixedKernelTable* sse2_fixed_table(std::size_t n);
const FixedKernelTable* avx2_fixed_table(std::size_t n);
const FixedKernelTable* neon_fixed_table(std::size_t n);

}  // namespace evc::num::simd
