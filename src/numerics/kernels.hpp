// In-place BLAS-style kernels for the solver hot path.
//
// The Matrix/Vector operators allocate a fresh result on every call, which
// is fine for setup code but poisons the per-iteration loops of the QP/SQP
// solvers. These kernels write into caller-provided buffers instead, so a
// solver that owns a workspace performs zero heap allocations at steady
// state. Output buffers are resized to the correct dimension (an allocation
// only the first time; afterwards the capacity is reused).
//
// Execution: when SIMD dispatch is enabled (numerics/simd.hpp — the
// default), the inner loops run through the runtime-selected vector target
// using the blocked accumulation order, which is bit-identical across every
// target. EVC_SIMD=off preserves the legacy sequential loops bit-for-bit.
//
// Aliasing: output buffers must not alias any input (the loops read inputs
// while writing outputs). This is asserted where cheap.
#pragma once

#include "numerics/matrix.hpp"
#include "numerics/vector.hpp"

namespace evc::num {

/// y := α·A·x + β·y. `y` is resized to a.rows() when β == 0; otherwise it
/// must already have that size. `y` must not alias `x`.
void gemv(double alpha, const Matrix& a, const Vector& x, double beta,
          Vector& y);

/// y := α·Aᵀ·x + β·y (without forming the transpose). `y` is resized to
/// a.cols() when β == 0; otherwise it must already have that size. `y` must
/// not alias `x`.
void gemv_t(double alpha, const Matrix& a, const Vector& x, double beta,
            Vector& y);

/// C := α·A·B + β·C. `c` is resized to a.rows()×b.cols() when β == 0;
/// otherwise it must already have those dimensions. `c` must not alias
/// `a` or `b`.
void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c);

/// y := α·x + y (same as Vector::add_scaled, in kernel spelling).
void axpy(double alpha, const Vector& x, Vector& y);

/// Σ x_i·y_i through the dispatched kernel (blocked order when SIMD is on;
/// Vector::dot's sequential order when off).
double dot(const Vector& x, const Vector& y);

/// dst := src, reusing dst's backing store when its capacity suffices.
void copy_into(const Vector& src, Vector& dst);
void copy_into(const Matrix& src, Matrix& dst);

// Raw-pointer variants for callers that manage their own buffers (the
// condensed QP backend works on rows of packed workspace matrices). When the
// length matches a compile-time specialization (simd::fixed_table), the
// fully unrolled fixed-N kernel runs; otherwise the size-generic dispatched
// kernel; EVC_SIMD=off keeps plain sequential loops. All three produce the
// same bits for the dispatched orders; `off` is the legacy sequential order,
// as everywhere else in this layer.

/// Σ x[i]·y[i] over n elements.
double dot_span(const double* x, const double* y, std::size_t n);
/// y[i] += a·x[i] over n elements.
void axpy_span(double a, const double* x, double* y, std::size_t n);
/// y[i] += alpha·(A·x)[i]; A is rows×cols row-major, leading dimension lda.
void gemv_span(double alpha, const double* a, std::size_t lda,
               std::size_t rows, std::size_t cols, const double* x, double* y);
/// y[j] += alpha·(Aᵀ·x)[j]; A is rows×cols row-major, leading dimension lda.
void gemv_t_span(double alpha, const double* a, std::size_t lda,
                 std::size_t rows, std::size_t cols, const double* x,
                 double* y);

}  // namespace evc::num
