// Block-elimination (Schur-complement) solver for saddle-point KKT systems
//
//   [ K  Eᵀ ] [dx]   [r1]
//   [ E  0  ] [dy] = [r2]
//
// with K n×n symmetric positive definite and E me×n (me may be zero). This
// is the system the interior-point QP solves every iteration: K is the
// regularized Hessian plus the barrier term AᵀDA (SPD by construction) and
// E the MPC dynamics Jacobian. Eliminating dx gives
//
//   S·dy = E·K⁻¹·r1 − r2,     S = E·K⁻¹·Eᵀ   (me×me, SPD for full-rank E)
//   dx   = K⁻¹·(r1 − Eᵀ·dy)
//
// which replaces one dense LU of size (n+me) with a Cholesky of size n plus
// a Cholesky of size me — roughly (1 + me/n)³ / (1/2 + me·(me/n)²/... )
// fewer flops and no pivoting — and exposes the horizon structure: K⁻¹Eᵀ is
// computed once per factorization and reused by the predictor and corrector
// solves.
//
// All storage is owned by the solver and reused across factorize() calls,
// so steady-state refactorization performs zero heap allocations.
#pragma once

#include <cstddef>

#include "numerics/factorization.hpp"
#include "numerics/matrix.hpp"
#include "numerics/vector.hpp"

namespace evc::num {

class SchurKktSolver {
 public:
  SchurKktSolver() = default;

  /// Factor the KKT system for the given blocks. K must be n×n and
  /// (numerically) SPD; E must be me×n (me == 0 reduces to a plain SPD
  /// solve). Returns false — and invalidates the factorization — if K is
  /// not positive definite or the Schur complement is singular (rank
  /// deficient E). A small dual regularization is attempted before giving
  /// up on a singular Schur complement.
  bool factorize(const Matrix& k, const Matrix& e);

  bool ok() const { return ok_; }
  /// True when the last successful factorize() had to diagonally shift the
  /// Schur complement (singular / indefinite S, e.g. redundant equality
  /// rows). Duals from such a solve are from the perturbed system; callers
  /// can count these to keep the repair path observable.
  bool regularized() const { return regularized_; }
  std::size_t dim_primal() const { return n_; }
  std::size_t dim_dual() const { return me_; }

  /// Solve for dx (size n) and dy (size me); requires ok(). Buffers are
  /// resized; r1/r2 must not alias dx/dy.
  void solve(const Vector& r1, const Vector& r2, Vector& dx, Vector& dy) const;

  /// Bytes of factorization + scratch storage currently held.
  std::size_t workspace_bytes() const;

 private:
  std::size_t n_ = 0;
  std::size_t me_ = 0;
  bool ok_ = false;
  bool regularized_ = false;

  CholeskyFactorization chol_k_;
  CholeskyFactorization chol_s_;
  LuFactorization lu_s_;  ///< fallback when S is not numerically SPD
  bool s_via_lu_ = false;

  Matrix wt_;  ///< n×me, column j = K⁻¹·eⱼ (K⁻¹·Eᵀ, stored directly)
  Matrix s_;   ///< me×me Schur complement E·K⁻¹·Eᵀ
  mutable Vector t_;      ///< K⁻¹·r1 scratch
  mutable Vector rhs_y_;  ///< E·t − r2 scratch
};

}  // namespace evc::num
