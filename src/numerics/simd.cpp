#include "numerics/simd.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "numerics/simd_blocked.hpp"

namespace evc::num::simd {

namespace {

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::kOff:
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      // SSE2 is part of the x86-64 baseline; AVX2 needs a cpuid check
      // (done once — __builtin_cpu_supports caches the cpuid result).
      return isa == Isa::kSse2 ? true : __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is baseline on aarch64
#else
      return false;
#endif
  }
  return false;
}

Isa resolve_active() {
  const char* env = std::getenv("EVC_SIMD");
  if (env != nullptr && *env != '\0') {
    const auto parsed = parse_isa(env);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "evclimate: EVC_SIMD=%s not recognized "
                   "(off|scalar|sse2|avx2|neon|auto); auto-detecting\n",
                   env);
      return detect_best();
    }
    if (*parsed == Isa::kOff || table_for(*parsed) != nullptr) return *parsed;
    const Isa best = detect_best();
    std::fprintf(stderr,
                 "evclimate: EVC_SIMD=%s unavailable on this host/build; "
                 "using %s\n",
                 env, to_string(best));
    return best;
  }
  return detect_best();
}

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kOff:
      return "off";
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<Isa> parse_isa(std::string_view text) {
  if (text == "off" || text == "0" || text == "none") return Isa::kOff;
  if (text == "scalar" || text == "blocked") return Isa::kScalar;
  if (text == "sse2") return Isa::kSse2;
  if (text == "avx2") return Isa::kAvx2;
  if (text == "neon") return Isa::kNeon;
  if (text == "auto" || text == "best" || text == "on") return detect_best();
  return std::nullopt;
}

Isa detect_best() {
  if (table_for(Isa::kAvx2) != nullptr) return Isa::kAvx2;
  if (table_for(Isa::kNeon) != nullptr) return Isa::kNeon;
  if (table_for(Isa::kSse2) != nullptr) return Isa::kSse2;
  return Isa::kScalar;
}

Isa active_isa() {
  // Resolved exactly once; every subsequent call (and therefore every
  // kernel dispatch in the process) sees the same target.
  static const Isa isa = resolve_active();
  return isa;
}

bool dispatch_enabled() { return active_isa() != Isa::kOff; }

const KernelTable& active() {
  static const KernelTable& table = *[] {
    const KernelTable* t = table_for(active_isa());
    return t != nullptr ? t : scalar_table();
  }();
  return table;
}

const FixedKernelTable* fixed_table(std::size_t n) {
  if (!dispatch_enabled()) return nullptr;
  switch (active_isa()) {
    case Isa::kOff:
      return nullptr;
    case Isa::kScalar:
      return scalar_fixed_table(n);
    case Isa::kSse2:
      return sse2_fixed_table(n);
    case Isa::kAvx2:
      return avx2_fixed_table(n);
    case Isa::kNeon:
      return neon_fixed_table(n);
  }
  return nullptr;
}

const KernelTable* table_for(Isa isa) {
  if (!cpu_supports(isa)) return nullptr;
  switch (isa) {
    case Isa::kOff:
      return nullptr;
    case Isa::kScalar:
      return scalar_table();
    case Isa::kSse2:
      return sse2_table();
    case Isa::kAvx2:
      return avx2_table();
    case Isa::kNeon:
      return neon_table();
  }
  return nullptr;
}

std::vector<Isa> available_targets() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon})
    if (table_for(isa) != nullptr) out.push_back(isa);
  return out;
}

}  // namespace evc::num::simd
