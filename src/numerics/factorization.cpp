#include "numerics/factorization.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/simd.hpp"
#include "util/expect.hpp"

namespace evc::num {

namespace {
constexpr double kPivotTol = 1e-13;
}

bool LuFactorization::factorize(const Matrix& a) {
  EVC_EXPECT(a.rows() == a.cols(), "LU requires a square matrix");
  n_ = a.rows();
  lu_.copy_from(a);
  perm_.resize(n_);
  perm_sign_ = 1;
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  // Scale reference for the singularity test: relative to the matrix norm.
  const double scale = std::max(lu_.norm_max(), 1.0);
  const bool vec = simd::dispatch_enabled();

  ok_ = true;
  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t piv = k;
    double piv_val = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > piv_val) {
        piv = r;
        piv_val = v;
      }
    }
    // Inverted test so a NaN pivot (poisoned input matrix) also fails.
    if (!(piv_val > kPivotTol * scale)) {
      ok_ = false;
      return ok_;
    }
    if (piv != k) {
      for (std::size_t c = 0; c < n_; ++c)
        std::swap(lu_(k, c), lu_(piv, c));
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double m = lu_(r, k) * inv_pivot;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      if (vec) {
        // Trailing-row update is a contiguous axpy along row r.
        simd::active().axpy(-m, &lu_(k, k + 1), &lu_(r, k + 1), n_ - k - 1);
      } else {
        for (std::size_t c = k + 1; c < n_; ++c) lu_(r, c) -= m * lu_(k, c);
      }
    }
  }
  return ok_;
}

void LuFactorization::solve_into(const Vector& b, Vector& x) const {
  EVC_EXPECT(ok_, "solve on a singular LU factorization");
  EVC_EXPECT(b.size() == n_, "LU solve dimension mismatch");
  EVC_EXPECT(&b != &x, "LU solve_into output aliases input");
  x.resize(n_);
  if (simd::dispatch_enabled()) {
    const simd::KernelTable& tbl = simd::active();
    // Forward: L·y = P·b (unit lower triangular); row i dots the already
    // computed prefix of x.
    for (std::size_t i = 0; i < n_; ++i)
      x[i] = b[perm_[i]] - tbl.dot(lu_.row_ptr(i), x.ptr(), i);
    // Backward: U·x = y, dotting the already computed suffix.
    for (std::size_t ii = n_; ii-- > 0;) {
      const double acc = x[ii] - tbl.dot(lu_.row_ptr(ii) + ii + 1,
                                         x.ptr() + ii + 1, n_ - ii - 1);
      x[ii] = acc / lu_(ii, ii);
    }
    return;
  }
  // Forward: L·y = P·b (unit lower triangular).
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Backward: U·x = y.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  Vector x(n_);
  solve_into(b, x);
  return x;
}

double LuFactorization::determinant() const {
  if (!ok_) return 0.0;
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

bool CholeskyFactorization::factorize(const Matrix& a) {
  EVC_EXPECT(a.rows() == a.cols(), "Cholesky requires a square matrix");
  n_ = a.rows();
  l_.resize(n_, n_);
  ok_ = true;
  if (simd::dispatch_enabled()) {
    const simd::KernelTable& tbl = simd::active();
    // Row-dot form: column j's panel update dots the already computed
    // leading rows of L, which are contiguous in row-major storage.
    for (std::size_t j = 0; j < n_; ++j) {
      const double* lj = l_.row_ptr(j);
      const double diag = a(j, j) - tbl.dot(lj, lj, j);
      // Inverted test so a NaN diagonal also fails.
      if (!(diag > 0.0)) {
        ok_ = false;
        return ok_;
      }
      l_(j, j) = std::sqrt(diag);
      const double inv = 1.0 / l_(j, j);
      for (std::size_t i = j + 1; i < n_; ++i)
        l_(i, j) = (a(i, j) - tbl.dot(l_.row_ptr(i), lj, j)) * inv;
    }
    return ok_;
  }
  for (std::size_t j = 0; j < n_; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    // Inverted test so a NaN diagonal also fails.
    if (!(diag > 0.0)) {
      ok_ = false;
      return ok_;
    }
    l_(j, j) = std::sqrt(diag);
    const double inv = 1.0 / l_(j, j);
    for (std::size_t i = j + 1; i < n_; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc * inv;
    }
  }
  return ok_;
}

void CholeskyFactorization::solve_into(const Vector& b, Vector& x) const {
  EVC_EXPECT(ok_, "solve on a failed Cholesky factorization");
  EVC_EXPECT(b.size() == n_, "Cholesky solve dimension mismatch");
  if (&x != &b) {
    x.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) x[i] = b[i];
  }
  if (simd::dispatch_enabled()) {
    const simd::KernelTable& tbl = simd::active();
    // Forward: L·y = b, each row dots the solved prefix.
    for (std::size_t i = 0; i < n_; ++i)
      x[i] = (x[i] - tbl.dot(l_.row_ptr(i), x.ptr(), i)) / l_(i, i);
    // Backward: Lᵀ·x = y, column-sweep form — one contiguous axpy along
    // row jj of L per solved component.
    for (std::size_t jj = n_; jj-- > 0;) {
      const double xj = x[jj] / l_(jj, jj);
      x[jj] = xj;
      if (xj == 0.0) continue;
      tbl.axpy(-xj, l_.row_ptr(jj), x.ptr(), jj);
    }
    return;
  }
  // Forward: L·y = b, overwriting x sequentially.
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * x[j];
    x[i] = acc / l_(i, i);
  }
  // Backward: Lᵀ·x = y, column-sweep form — reads *rows* of L, which are
  // contiguous in row-major storage (the naive gather form strides down a
  // column per element and defeats the cache).
  for (std::size_t jj = n_; jj-- > 0;) {
    const double xj = x[jj] / l_(jj, jj);
    x[jj] = xj;
    if (xj == 0.0) continue;
    for (std::size_t i = 0; i < jj; ++i) x[i] -= l_(jj, i) * xj;
  }
}

void CholeskyFactorization::forward_block_in_place(Matrix& b) const {
  EVC_EXPECT(ok_, "block solve on a failed Cholesky factorization");
  EVC_EXPECT(b.rows() == n_, "Cholesky block solve dimension mismatch");
  const std::size_t k = b.cols();
  if (simd::dispatch_enabled()) {
    const simd::KernelTable& tbl = simd::active();
    for (std::size_t i = 0; i < n_; ++i) {
      double* bi = b.row_ptr(i);
      for (std::size_t j = 0; j < i; ++j) {
        const double lij = l_(i, j);
        if (lij == 0.0) continue;
        tbl.axpy(-lij, b.row_ptr(j), bi, k);
      }
      tbl.scale(1.0 / l_(i, i), bi, k);
    }
    return;
  }
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double lij = l_(i, j);
      if (lij == 0.0) continue;
      for (std::size_t c = 0; c < k; ++c) b(i, c) -= lij * b(j, c);
    }
    const double inv = 1.0 / l_(i, i);
    for (std::size_t c = 0; c < k; ++c) b(i, c) *= inv;
  }
}

void CholeskyFactorization::backward_block_in_place(Matrix& b) const {
  EVC_EXPECT(ok_, "block solve on a failed Cholesky factorization");
  EVC_EXPECT(b.rows() == n_, "Cholesky block solve dimension mismatch");
  const std::size_t k = b.cols();
  if (simd::dispatch_enabled()) {
    const simd::KernelTable& tbl = simd::active();
    for (std::size_t j = n_; j-- > 0;) {
      double* bj = b.row_ptr(j);
      tbl.scale(1.0 / l_(j, j), bj, k);
      for (std::size_t i = 0; i < j; ++i) {
        const double lji = l_(j, i);
        if (lji == 0.0) continue;
        tbl.axpy(-lji, bj, b.row_ptr(i), k);
      }
    }
    return;
  }
  for (std::size_t j = n_; j-- > 0;) {
    const double inv = 1.0 / l_(j, j);
    for (std::size_t c = 0; c < k; ++c) b(j, c) *= inv;
    for (std::size_t i = 0; i < j; ++i) {
      const double lji = l_(j, i);
      if (lji == 0.0) continue;
      for (std::size_t c = 0; c < k; ++c) b(i, c) -= lji * b(j, c);
    }
  }
}

Vector CholeskyFactorization::solve(const Vector& b) const {
  Vector x(n_);
  solve_into(b, x);
  return x;
}

Vector solve_linear(const Matrix& a, const Vector& b) {
  LuFactorization lu(a);
  if (!lu.ok()) throw std::runtime_error("solve_linear: singular matrix");
  return lu.solve(b);
}

}  // namespace evc::num
