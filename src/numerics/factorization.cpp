#include "numerics/factorization.hpp"

#include <cmath>
#include <stdexcept>

#include "util/expect.hpp"

namespace evc::num {

namespace {
constexpr double kPivotTol = 1e-13;
}

LuFactorization::LuFactorization(const Matrix& a)
    : n_(a.rows()), lu_(a), perm_(a.rows()) {
  EVC_EXPECT(a.rows() == a.cols(), "LU requires a square matrix");
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  // Scale reference for the singularity test: relative to the matrix norm.
  const double scale = std::max(lu_.norm_max(), 1.0);

  ok_ = true;
  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t piv = k;
    double piv_val = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > piv_val) {
        piv = r;
        piv_val = v;
      }
    }
    // Inverted test so a NaN pivot (poisoned input matrix) also fails.
    if (!(piv_val > kPivotTol * scale)) {
      ok_ = false;
      return;
    }
    if (piv != k) {
      for (std::size_t c = 0; c < n_; ++c)
        std::swap(lu_(k, c), lu_(piv, c));
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double m = lu_(r, k) * inv_pivot;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  EVC_EXPECT(ok_, "solve on a singular LU factorization");
  EVC_EXPECT(b.size() == n_, "LU solve dimension mismatch");
  Vector x(n_);
  // Forward: L·y = P·b (unit lower triangular).
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Backward: U·x = y.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

double LuFactorization::determinant() const {
  if (!ok_) return 0.0;
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

CholeskyFactorization::CholeskyFactorization(const Matrix& a)
    : n_(a.rows()), l_(a.rows(), a.cols()) {
  EVC_EXPECT(a.rows() == a.cols(), "Cholesky requires a square matrix");
  ok_ = true;
  for (std::size_t j = 0; j < n_; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= 0.0) {
      ok_ = false;
      return;
    }
    l_(j, j) = std::sqrt(diag);
    const double inv = 1.0 / l_(j, j);
    for (std::size_t i = j + 1; i < n_; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc * inv;
    }
  }
}

Vector CholeskyFactorization::solve(const Vector& b) const {
  EVC_EXPECT(ok_, "solve on a failed Cholesky factorization");
  EVC_EXPECT(b.size() == n_, "Cholesky solve dimension mismatch");
  Vector y(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  Vector x(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

Vector solve_linear(const Matrix& a, const Vector& b) {
  LuFactorization lu(a);
  if (!lu.ok()) throw std::runtime_error("solve_linear: singular matrix");
  return lu.solve(b);
}

}  // namespace evc::num
