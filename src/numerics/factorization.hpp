// Dense factorizations backing the QP/SQP solvers.
//
// * LuFactorization       — PLU with partial pivoting; general square
//                           systems (SQP KKT systems are symmetric but
//                           indefinite, so LU-with-pivoting is the robust
//                           workhorse at these sizes).
// * CholeskyFactorization — SPD systems (regularized QP Hessians).
//
// Both report singularity through `ok()` instead of throwing: the solvers
// treat a singular KKT matrix as a recoverable condition (they regularize
// and retry).
#pragma once

#include <cstddef>
#include <vector>

#include "numerics/matrix.hpp"
#include "numerics/vector.hpp"

namespace evc::num {

class LuFactorization {
 public:
  /// Factor A = P·L·U. `A` must be square.
  explicit LuFactorization(const Matrix& a);

  /// False if a pivot collapsed below tolerance (singular to working
  /// precision); `solve` must not be called in that case.
  bool ok() const { return ok_; }
  std::size_t dim() const { return n_; }

  Vector solve(const Vector& b) const;
  double determinant() const;

 private:
  std::size_t n_ = 0;
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
  bool ok_ = false;
};

class CholeskyFactorization {
 public:
  /// Factor A = L·Lᵀ. `A` must be square and symmetric; `ok()` is false if
  /// A is not (numerically) positive definite.
  explicit CholeskyFactorization(const Matrix& a);

  bool ok() const { return ok_; }
  std::size_t dim() const { return n_; }
  Vector solve(const Vector& b) const;

 private:
  std::size_t n_ = 0;
  Matrix l_;
  bool ok_ = false;
};

/// Convenience: solve A·x = b by PLU. Throws std::runtime_error if A is
/// singular to working precision (callers that can recover should construct
/// LuFactorization directly and test ok()).
Vector solve_linear(const Matrix& a, const Vector& b);

}  // namespace evc::num
