// Dense factorizations backing the QP/SQP solvers.
//
// * LuFactorization       — PLU with partial pivoting; general square
//                           systems (SQP KKT systems are symmetric but
//                           indefinite, so LU-with-pivoting is the robust
//                           workhorse at these sizes).
// * CholeskyFactorization — SPD systems (regularized QP Hessians).
//
// Both report singularity through `ok()` instead of throwing: the solvers
// treat a singular KKT matrix as a recoverable condition (they regularize
// and retry).
//
// Both support refactorization into preallocated workspace: default-construct
// once, then call `factorize()` per iteration — the internal storage is
// reused whenever the dimension allows, so steady-state refactorization
// performs no heap allocation. `solve_into` writes the solution into a
// caller-provided buffer for the same reason.
#pragma once

#include <cstddef>
#include <vector>

#include "numerics/matrix.hpp"
#include "numerics/vector.hpp"

namespace evc::num {

class LuFactorization {
 public:
  /// Empty factorization; call factorize() before solve().
  LuFactorization() = default;
  /// Factor A = P·L·U. `A` must be square.
  explicit LuFactorization(const Matrix& a) { factorize(a); }

  /// (Re)factor A = P·L·U into this object's workspace, reusing storage.
  /// Returns ok().
  bool factorize(const Matrix& a);

  /// False if a pivot collapsed below tolerance (singular to working
  /// precision); `solve` must not be called in that case.
  bool ok() const { return ok_; }
  std::size_t dim() const { return n_; }

  Vector solve(const Vector& b) const;
  /// Solve A·x = b into `x` (resized; must not alias `b` — the row
  /// permutation reads b out of order).
  void solve_into(const Vector& b, Vector& x) const;
  double determinant() const;

  /// Bytes of factorization storage currently held.
  std::size_t workspace_bytes() const {
    return lu_.capacity() * sizeof(double) +
           perm_.capacity() * sizeof(std::size_t);
  }

 private:
  std::size_t n_ = 0;
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
  bool ok_ = false;
};

class CholeskyFactorization {
 public:
  /// Empty factorization; call factorize() before solve().
  CholeskyFactorization() = default;
  /// Factor A = L·Lᵀ. `A` must be square and symmetric; `ok()` is false if
  /// A is not (numerically) positive definite.
  explicit CholeskyFactorization(const Matrix& a) { factorize(a); }

  /// (Re)factor A = L·Lᵀ into this object's workspace, reusing storage.
  /// Returns ok().
  bool factorize(const Matrix& a);

  bool ok() const { return ok_; }
  std::size_t dim() const { return n_; }
  Vector solve(const Vector& b) const;
  /// Solve A·x = b into `x` (resized; aliasing `b` is allowed — the
  /// triangular sweeps overwrite sequentially).
  void solve_into(const Vector& b, Vector& x) const;

  /// Solve L·Y = B in place, one right-hand side per *column* of B (n×k).
  /// Row-oriented sweeps keep every inner loop contiguous, which is what
  /// makes many-rhs solves (the Schur complement's K⁻¹Eᵀ) fast.
  void forward_block_in_place(Matrix& b) const;
  /// Solve Lᵀ·X = Y in place; completes forward_block_in_place so that
  /// B becomes A⁻¹ of the original block.
  void backward_block_in_place(Matrix& b) const;

  std::size_t workspace_bytes() const {
    return l_.capacity() * sizeof(double);
  }

 private:
  std::size_t n_ = 0;
  Matrix l_;
  bool ok_ = false;
};

/// Convenience: solve A·x = b by PLU. Throws std::runtime_error if A is
/// singular to working precision (callers that can recover should construct
/// LuFactorization directly and test ok()).
Vector solve_linear(const Matrix& a, const Vector& b);

}  // namespace evc::num
