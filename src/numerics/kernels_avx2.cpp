// AVX2 target: one 4-lane __m256d per logical pack. This TU is compiled
// with -mavx2 (see CMakeLists); whether it actually runs is decided at
// startup by cpuid, so the binary stays safe on SSE2-only hosts.
//
// Deliberately no FMA: vfmadd rounds once where mul+add rounds twice, which
// would break bitwise identity with the SSE2/NEON/scalar targets. The
// throughput win here comes from width, not fusion.
#include "numerics/simd_blocked.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

namespace evc::num::simd {
namespace {

struct PackAvx2 {
  __m256d v;

  static PackAvx2 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static void store(double* p, PackAvx2 x) { _mm256_storeu_pd(p, x.v); }
  static PackAvx2 broadcast(double a) { return {_mm256_set1_pd(a)}; }
  static PackAvx2 zero() { return {_mm256_setzero_pd()}; }
  static PackAvx2 add(PackAvx2 x, PackAvx2 y) {
    return {_mm256_add_pd(x.v, y.v)};
  }
  static PackAvx2 mul(PackAvx2 x, PackAvx2 y) {
    return {_mm256_mul_pd(x.v, y.v)};
  }
  static double reduce(PackAvx2 x) {
    // low half (l0,l1) + high half (l2,l3) = (l0+l2, l1+l3), then sum the
    // two halves — the same tree as every other target.
    const __m128d s =
        _mm_add_pd(_mm256_castpd256_pd128(x.v), _mm256_extractf128_pd(x.v, 1));
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }
};

}  // namespace

const KernelTable* avx2_table() {
  static const KernelTable table = BlockedKernels<PackAvx2>::table(Isa::kAvx2);
  return &table;
}

const FixedKernelTable* avx2_fixed_table(std::size_t n) {
  return fixed_table_lookup<PackAvx2>(n);
}

}  // namespace evc::num::simd

#else  // build without AVX2 support: target not available

namespace evc::num::simd {
const KernelTable* avx2_table() { return nullptr; }
const FixedKernelTable* avx2_fixed_table(std::size_t) { return nullptr; }
}  // namespace evc::num::simd

#endif
