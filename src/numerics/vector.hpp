// Dense real vector for the embedded optimization stack.
//
// Sized for MPC-scale problems (tens to a few hundred unknowns); all storage
// is contiguous doubles, all operations are O(n) loops — no expression
// templates, no aliasing surprises. The backing store is 64-byte aligned
// (numerics/aligned.hpp) so the SIMD kernels' loads start on a cache line.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "numerics/aligned.hpp"

namespace evc::num {

class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init)
      : data_(init.begin(), init.end()) {}
  /// Copies into aligned storage (the source allocator differs).
  explicit Vector(const std::vector<double>& data)
      : data_(data.begin(), data.end()) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  /// Elements the backing store can hold without reallocating.
  std::size_t capacity() const { return data_.capacity(); }

  /// Resize preserving existing elements (new elements zero). Reuses the
  /// backing store when capacity suffices — the workspace-reuse primitive.
  void resize(std::size_t n) { data_.resize(n, 0.0); }
  /// Resize and overwrite every element with `fill` (reuses capacity).
  void assign(std::size_t n, double fill) { data_.assign(n, fill); }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }
  /// Bounds-checked access (throws on misuse).
  double& at(std::size_t i);
  double at(std::size_t i) const;

  const AlignedBuffer& data() const { return data_; }
  AlignedBuffer& data() { return data_; }
  /// Raw 64-byte-aligned element pointer (kernel entry points).
  double* ptr() { return data_.data(); }
  const double* ptr() const { return data_.data(); }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);
  /// this += s * rhs (axpy).
  Vector& add_scaled(double s, const Vector& rhs);

  double dot(const Vector& rhs) const;
  double norm2() const;
  double norm_inf() const;
  /// Sum of |x_i| (ℓ1 norm) — used by the SQP merit function.
  double norm1() const;

  void fill(double value);
  /// Copy of elements [begin, begin+count).
  Vector segment(std::size_t begin, std::size_t count) const;
  /// Write `src` into elements [begin, begin+src.size()).
  void set_segment(std::size_t begin, const Vector& src);

  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(double s, Vector v) { return v *= s; }
  friend Vector operator*(Vector v, double s) { return v *= s; }
  friend Vector operator-(Vector v) { return v *= -1.0; }

 private:
  AlignedBuffer data_;
};

}  // namespace evc::num
