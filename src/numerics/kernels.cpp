#include "numerics/kernels.hpp"

#include "numerics/simd.hpp"
#include "util/expect.hpp"

namespace evc::num {

void gemv(double alpha, const Matrix& a, const Vector& x, double beta,
          Vector& y) {
  EVC_EXPECT(a.cols() == x.size(), "gemv dimension mismatch");
  EVC_EXPECT(&y != &x, "gemv output aliases input");
  if (beta == 0.0) {
    y.assign(a.rows(), 0.0);
  } else {
    EVC_EXPECT(y.size() == a.rows(), "gemv output dimension mismatch");
    if (beta != 1.0) y *= beta;
  }
  if (alpha == 0.0) return;
  const std::size_t rows = a.rows(), cols = a.cols();
  if (simd::dispatch_enabled()) {
    simd::active().gemv(alpha, a.ptr(), cols, rows, cols, x.ptr(), y.ptr());
    return;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols; ++j) acc += a(i, j) * x[j];
    y[i] += alpha * acc;
  }
}

void gemv_t(double alpha, const Matrix& a, const Vector& x, double beta,
            Vector& y) {
  EVC_EXPECT(a.rows() == x.size(), "gemv_t dimension mismatch");
  EVC_EXPECT(&y != &x, "gemv_t output aliases input");
  if (beta == 0.0) {
    y.assign(a.cols(), 0.0);
  } else {
    EVC_EXPECT(y.size() == a.cols(), "gemv_t output dimension mismatch");
    if (beta != 1.0) y *= beta;
  }
  if (alpha == 0.0) return;
  const std::size_t rows = a.rows(), cols = a.cols();
  if (simd::dispatch_enabled()) {
    simd::active().gemv_t(alpha, a.ptr(), cols, rows, cols, x.ptr(), y.ptr());
    return;
  }
  // Row-major: run along rows of A so the inner loop is contiguous.
  for (std::size_t i = 0; i < rows; ++i) {
    const double xi = alpha * x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < cols; ++j) y[j] += a(i, j) * xi;
  }
}

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c) {
  EVC_EXPECT(a.cols() == b.rows(), "gemm dimension mismatch");
  EVC_EXPECT(&c != &a && &c != &b, "gemm output aliases input");
  if (beta == 0.0) {
    c.resize(a.rows(), b.cols());
  } else {
    EVC_EXPECT(c.rows() == a.rows() && c.cols() == b.cols(),
               "gemm output dimension mismatch");
    if (beta != 1.0) c *= beta;
  }
  if (alpha == 0.0) return;
  const std::size_t rows = a.rows(), inner = a.cols(), cols = b.cols();
  if (simd::dispatch_enabled()) {
    simd::active().gemm(alpha, a.ptr(), inner, b.ptr(), cols, c.ptr(), cols,
                        rows, inner, cols);
    return;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t k = 0; k < inner; ++k) {
      const double aik = alpha * a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < cols; ++j) c(i, j) += aik * b(k, j);
    }
  }
}

void axpy(double alpha, const Vector& x, Vector& y) {
  if (simd::dispatch_enabled()) {
    EVC_EXPECT(x.size() == y.size(), "axpy dimension mismatch");
    simd::active().axpy(alpha, x.ptr(), y.ptr(), y.size());
    return;
  }
  y.add_scaled(alpha, x);
}

double dot(const Vector& x, const Vector& y) {
  EVC_EXPECT(x.size() == y.size(), "dot dimension mismatch");
  if (simd::dispatch_enabled())
    return simd::active().dot(x.ptr(), y.ptr(), x.size());
  return x.dot(y);
}

double dot_span(const double* x, const double* y, std::size_t n) {
  if (simd::dispatch_enabled()) {
    if (const simd::FixedKernelTable* fixed = simd::fixed_table(n))
      return fixed->dot(x, y);
    return simd::active().dot(x, y, n);
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void axpy_span(double a, const double* x, double* y, std::size_t n) {
  if (simd::dispatch_enabled()) {
    if (const simd::FixedKernelTable* fixed = simd::fixed_table(n)) {
      fixed->axpy(a, x, y);
      return;
    }
    simd::active().axpy(a, x, y, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void gemv_span(double alpha, const double* a, std::size_t lda,
               std::size_t rows, std::size_t cols, const double* x,
               double* y) {
  if (simd::dispatch_enabled()) {
    if (const simd::FixedKernelTable* fixed = simd::fixed_table(cols)) {
      fixed->gemv(alpha, a, lda, rows, x, y);
      return;
    }
    simd::active().gemv(alpha, a, lda, rows, cols, x, y);
    return;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    const double* ai = a + i * lda;
    for (std::size_t j = 0; j < cols; ++j) acc += ai[j] * x[j];
    y[i] += alpha * acc;
  }
}

void gemv_t_span(double alpha, const double* a, std::size_t lda,
                 std::size_t rows, std::size_t cols, const double* x,
                 double* y) {
  if (simd::dispatch_enabled()) {
    if (const simd::FixedKernelTable* fixed = simd::fixed_table(cols)) {
      fixed->gemv_t(alpha, a, lda, rows, x, y);
      return;
    }
    simd::active().gemv_t(alpha, a, lda, rows, cols, x, y);
    return;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    const double xi = alpha * x[i];
    if (xi == 0.0) continue;
    const double* ai = a + i * lda;
    for (std::size_t j = 0; j < cols; ++j) y[j] += ai[j] * xi;
  }
}

void copy_into(const Vector& src, Vector& dst) {
  dst.data().assign(src.data().begin(), src.data().end());
}

void copy_into(const Matrix& src, Matrix& dst) { dst.copy_from(src); }

}  // namespace evc::num
