// Portable SIMD abstraction with runtime dispatch for the numeric kernels.
//
// Every dense inner loop of the solver hot path (numerics/kernels,
// factorization, schur_kkt) funnels through a small table of raw-pointer
// kernels — dot / axpy / scale / gemv / gemvᵀ / gemm — with one
// implementation per instruction set:
//
//   * avx2    4-wide AVX2 (x86-64, detected via cpuid at startup)
//   * sse2    2×2-wide SSE2 (x86-64 baseline)
//   * neon    2×2-wide NEON (aarch64 baseline)
//   * scalar  blocked portable fallback (any ISA)
//   * off     dispatch disabled — callers keep their legacy sequential loops
//
// Bitwise reproducibility across targets: all implementations share one
// *blocked accumulation order* (numerics/simd_blocked.hpp) — four logical
// lanes, eight-element unroll, a fixed reduction tree, and no fused
// multiply-add — so every target produces bit-identical doubles to the
// blocked scalar reference on every input, remainder lanes included
// (asserted exhaustively by tests/kernels_simd_test). Checkpoint/soak
// byte-identity therefore holds regardless of which target a host selects.
// The `off` mode instead preserves this repo's pre-SIMD sequential
// arithmetic bit-for-bit, as the escape hatch and A/B reference.
//
// Selection happens once, at first use:
//   EVC_SIMD=off|scalar|sse2|avx2|neon|auto   overrides auto-detection;
//   unset/auto picks the best target supported by both the build and the
//   CPU. Requesting a target the host cannot run falls back to the best
//   available one (with a note on stderr).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

namespace evc::num::simd {

enum class Isa {
  kOff,     ///< dispatch disabled: callers use their legacy sequential loops
  kScalar,  ///< blocked scalar reference (portable, defines the bit pattern)
  kSse2,    ///< x86-64 SSE2, two 2-lane vectors per logical 4-lane pack
  kAvx2,    ///< x86-64 AVX2, one 4-lane vector per pack
  kNeon,    ///< aarch64 NEON, two 2-lane vectors per pack
};

/// Raw-pointer kernels, one slot per primitive the solver hot path needs.
/// All matrices are row-major with leading dimension `lda`/`ldb`/`ldc`
/// (elements between consecutive rows). Outputs must not alias inputs.
struct KernelTable {
  Isa isa = Isa::kScalar;
  /// Σ x[i]·y[i] in blocked order.
  double (*dot)(const double* x, const double* y, std::size_t n);
  /// y[i] += a·x[i] (elementwise; bitwise equal to the plain loop).
  void (*axpy)(double a, const double* x, double* y, std::size_t n);
  /// x[i] *= a.
  void (*scale)(double a, double* x, std::size_t n);
  /// y[i] += alpha·(A·x)[i], one blocked dot per row.
  void (*gemv)(double alpha, const double* a, std::size_t lda,
               std::size_t rows, std::size_t cols, const double* x, double* y);
  /// y[j] += alpha·(Aᵀ·x)[j], one axpy per row (runs along rows of A so the
  /// inner loop is contiguous; never forms the transpose).
  void (*gemv_t)(double alpha, const double* a, std::size_t lda,
                 std::size_t rows, std::size_t cols, const double* x,
                 double* y);
  /// C[i,:] += alpha·Σ_k A[i,k]·B[k,:], one axpy per (i,k).
  void (*gemm)(double alpha, const double* a, std::size_t lda,
               const double* b, std::size_t ldb, double* c, std::size_t ldc,
               std::size_t m, std::size_t k, std::size_t n);
};

/// Compile-time-length variants of the vector kernels for the condensed MPC
/// fast path. The generic KernelTable loops carry a runtime trip count; for
/// the two sizes the production horizon actually uses, a fixed-N
/// instantiation lets the compiler fully unroll the blocked loop and drop
/// the remainder branches. The arithmetic is the *same blocked order* as the
/// generic table — fixed kernels are bit-identical to their size-generic
/// counterparts (asserted by tests/kernels_simd_test), they just skip the
/// loop bookkeeping.
struct FixedKernelTable {
  std::size_t n = 0;  ///< the compile-time vector length this table serves
  /// Σ x[i]·y[i] over exactly n elements, blocked order.
  double (*dot)(const double* x, const double* y);
  /// y[i] += a·x[i] over exactly n elements.
  void (*axpy)(double a, const double* x, double* y);
  /// y[i] += alpha·(A·x)[i]; A is rows×n row-major with leading dim `lda`.
  void (*gemv)(double alpha, const double* a, std::size_t lda,
               std::size_t rows, const double* x, double* y);
  /// y[j] += alpha·(Aᵀ·x)[j]; A is rows×n row-major with leading dim `lda`.
  void (*gemv_t)(double alpha, const double* a, std::size_t lda,
                 std::size_t rows, const double* x, double* y);
};

/// The vector lengths specialized at compile time, chosen for the production
/// horizon N = 12 of the condensed backend (core/mpc_formulation):
/// 5N condensed free variables and 11N+2 full-space variables.
inline constexpr std::size_t kFixedCondensedDim = 60;
inline constexpr std::size_t kFixedFullDim = 134;

/// Fixed-length table of the active target for vector length `n`, or
/// nullptr when `n` has no compile-time specialization or dispatch is off
/// (callers fall back to the size-generic path either way).
const FixedKernelTable* fixed_table(std::size_t n);

const char* to_string(Isa isa);
/// Parse an EVC_SIMD value. "auto"/"best" → Isa behind auto-detection is
/// returned by detect_best(); unknown strings → nullopt.
std::optional<Isa> parse_isa(std::string_view text);

/// Best target supported by both this build and this CPU (never kOff).
Isa detect_best();
/// The target this process runs with — resolved once from EVC_SIMD (or
/// detect_best() when unset/auto) and then immutable.
Isa active_isa();
/// False only in `off` mode; gates every dispatch call site.
bool dispatch_enabled();

/// Kernel table for the active target. In `off` mode this returns the
/// blocked scalar table, but dispatch call sites must consult
/// dispatch_enabled() first and keep their legacy loops when it is false.
const KernelTable& active();

/// Table for a specific target, or nullptr when that target is not compiled
/// into this build or not supported by this CPU (kOff always → nullptr).
const KernelTable* table_for(Isa isa);

/// Every runnable vector/scalar target on this host (kScalar always
/// included; never contains kOff) — the test matrix for bitwise checks.
std::vector<Isa> available_targets();

}  // namespace evc::num::simd
