#include "sim/ode.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/expect.hpp"

namespace evc::sim {

namespace {

void euler_step(const OdeRhs& rhs, double t, double h, std::vector<double>& x,
                std::vector<double>& k) {
  rhs(t, x, k);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += h * k[i];
}

void rk4_step(const OdeRhs& rhs, double t, double h, std::vector<double>& x,
              std::vector<std::vector<double>>& work) {
  const std::size_t n = x.size();
  auto& k1 = work[0];
  auto& k2 = work[1];
  auto& k3 = work[2];
  auto& k4 = work[3];
  auto& tmp = work[4];

  rhs(t, x, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * h * k1[i];
  rhs(t + 0.5 * h, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * h * k2[i];
  rhs(t + 0.5 * h, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + h * k3[i];
  rhs(t + h, tmp, k4);
  for (std::size_t i = 0; i < n; ++i)
    x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
}

}  // namespace

std::vector<double> integrate_fixed(const OdeRhs& rhs, std::vector<double> x0,
                                    double t0, double t1, double dt,
                                    OdeMethod method) {
  EVC_EXPECT(dt > 0.0, "integrate_fixed: dt must be positive");
  EVC_EXPECT(t1 >= t0, "integrate_fixed: t1 must be >= t0");
  const std::size_t n = x0.size();
  std::vector<std::vector<double>> work(5, std::vector<double>(n));
  double t = t0;
  while (t < t1 - 1e-12) {
    const double h = std::min(dt, t1 - t);
    if (method == OdeMethod::kEuler)
      euler_step(rhs, t, h, x0, work[0]);
    else
      rk4_step(rhs, t, h, x0, work);
    t += h;
  }
  return x0;
}

std::vector<double> integrate_adaptive(const OdeRhs& rhs,
                                       std::vector<double> x0, double t0,
                                       double t1,
                                       const AdaptiveOptions& options) {
  EVC_EXPECT(t1 >= t0, "integrate_adaptive: t1 must be >= t0");
  const std::size_t n = x0.size();
  if (t1 == t0 || n == 0) return x0;

  // Dormand–Prince RK5(4) coefficients.
  static constexpr double c2 = 1.0 / 5, c3 = 3.0 / 10, c4 = 4.0 / 5,
                          c5 = 8.0 / 9;
  static constexpr double a21 = 1.0 / 5;
  static constexpr double a31 = 3.0 / 40, a32 = 9.0 / 40;
  static constexpr double a41 = 44.0 / 45, a42 = -56.0 / 15, a43 = 32.0 / 9;
  static constexpr double a51 = 19372.0 / 6561, a52 = -25360.0 / 2187,
                          a53 = 64448.0 / 6561, a54 = -212.0 / 729;
  static constexpr double a61 = 9017.0 / 3168, a62 = -355.0 / 33,
                          a63 = 46732.0 / 5247, a64 = 49.0 / 176,
                          a65 = -5103.0 / 18656;
  static constexpr double b1 = 35.0 / 384, b3 = 500.0 / 1113, b4 = 125.0 / 192,
                          b5 = -2187.0 / 6784, b6 = 11.0 / 84;
  static constexpr double e1 = 71.0 / 57600, e3 = -71.0 / 16695,
                          e4 = 71.0 / 1920, e5 = -17253.0 / 339200,
                          e6 = 22.0 / 525, e7 = -1.0 / 40;

  std::vector<std::vector<double>> k(7, std::vector<double>(n));
  std::vector<double> tmp(n), x5(n);

  double t = t0;
  double h = std::min(options.initial_step, t1 - t0);
  std::size_t steps = 0;
  rhs(t, x0, k[0]);  // FSAL seed

  while (t < t1 - 1e-12) {
    if (++steps > options.max_steps)
      throw std::runtime_error("integrate_adaptive: max step count exceeded");
    h = std::min(h, t1 - t);

    for (std::size_t i = 0; i < n; ++i) tmp[i] = x0[i] + h * a21 * k[0][i];
    rhs(t + c2 * h, tmp, k[1]);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = x0[i] + h * (a31 * k[0][i] + a32 * k[1][i]);
    rhs(t + c3 * h, tmp, k[2]);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = x0[i] + h * (a41 * k[0][i] + a42 * k[1][i] + a43 * k[2][i]);
    rhs(t + c4 * h, tmp, k[3]);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = x0[i] + h * (a51 * k[0][i] + a52 * k[1][i] + a53 * k[2][i] +
                            a54 * k[3][i]);
    rhs(t + c5 * h, tmp, k[4]);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = x0[i] + h * (a61 * k[0][i] + a62 * k[1][i] + a63 * k[2][i] +
                            a64 * k[3][i] + a65 * k[4][i]);
    rhs(t + h, tmp, k[5]);
    for (std::size_t i = 0; i < n; ++i)
      x5[i] = x0[i] + h * (b1 * k[0][i] + b3 * k[2][i] + b4 * k[3][i] +
                           b5 * k[4][i] + b6 * k[5][i]);
    rhs(t + h, x5, k[6]);

    // Error estimate (difference of 5th and embedded 4th order solutions).
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = h * (e1 * k[0][i] + e3 * k[2][i] + e4 * k[3][i] +
                            e5 * k[4][i] + e6 * k[5][i] + e7 * k[6][i]);
      const double sc = options.abs_tol +
                        options.rel_tol *
                            std::max(std::abs(x0[i]), std::abs(x5[i]));
      err = std::max(err, std::abs(e) / sc);
    }

    if (err <= 1.0) {
      t += h;
      x0 = x5;
      k[0] = k[6];  // FSAL
    }
    const double factor =
        std::clamp(0.9 * std::pow(std::max(err, 1e-10), -0.2), 0.2, 5.0);
    h *= factor;
    if (h < options.min_step)
      throw std::runtime_error("integrate_adaptive: step size collapsed");
  }
  return x0;
}

}  // namespace evc::sim
