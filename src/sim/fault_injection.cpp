#include "sim/fault_injection.hpp"

#include <cmath>

#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::sim {

namespace {

// Stream seed for spec `i`: one splitmix64 scramble of (seed, i) so streams
// are decorrelated and stable under spec insertion/removal at other indices.
std::uint64_t stream_seed(std::uint64_t seed, std::size_t i) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (i + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double* scalar_of(ctl::ControlContext& c, FaultSignal signal) {
  switch (signal) {
    case FaultSignal::kCabinTemp:
      return &c.cabin_temp_c;
    case FaultSignal::kOutsideTemp:
      return &c.outside_temp_c;
    case FaultSignal::kSoc:
      return &c.soc_percent;
    case FaultSignal::kMotorForecast:
      return nullptr;
  }
  return nullptr;
}

}  // namespace

std::string to_string(FaultSignal signal) {
  switch (signal) {
    case FaultSignal::kCabinTemp:
      return "cabin-temp";
    case FaultSignal::kOutsideTemp:
      return "outside-temp";
    case FaultSignal::kSoc:
      return "soc";
    case FaultSignal::kMotorForecast:
      return "motor-forecast";
  }
  return "unknown";
}

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBias:
      return "bias";
    case FaultKind::kStuckAt:
      return "stuck-at";
    case FaultKind::kDropout:
      return "dropout";
    case FaultKind::kStaleSample:
      return "stale-sample";
    case FaultKind::kSpike:
      return "spike";
    case FaultKind::kQuantization:
      return "quantization";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::vector<FaultSpec> specs, std::uint64_t seed)
    : specs_(std::move(specs)), seed_(seed) {
  for (const FaultSpec& spec : specs_) {
    EVC_EXPECT(spec.rate >= 0.0 && spec.rate <= 1.0,
               "fault rate outside [0, 1]");
    EVC_EXPECT(spec.hold_steps >= 1, "fault hold must be at least one step");
    EVC_EXPECT(spec.start_s <= spec.end_s, "fault window start after end");
    if (spec.kind == FaultKind::kQuantization)
      EVC_EXPECT(spec.magnitude > 0.0, "quantization step must be positive");
  }
  reset();
}

void FaultInjector::reset() {
  states_.clear();
  states_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    SpecState state;
    state.rng = SplitMix64(stream_seed(seed_, i));
    states_.push_back(std::move(state));
  }
  stats_ = FaultInjectionStats{};
}

std::size_t FaultInjector::apply(ctl::ControlContext& context) {
  ++stats_.steps;
  std::size_t active = 0;

  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& spec = specs_[i];
    SpecState& state = states_[i];

    if (state.active_steps_left == 0) {
      // One Bernoulli draw per inactive step keeps the stream length a pure
      // function of elapsed steps, independent of other specs' episodes.
      const bool in_window =
          context.time_s >= spec.start_s && context.time_s < spec.end_s;
      const bool fire = state.rng.next_double() < spec.rate;
      if (!in_window || !fire) continue;
      state.active_steps_left = spec.hold_steps;
      ++stats_.episodes;
      // Latch the pre-fault value for the hold-style kinds.
      if (spec.kind == FaultKind::kStaleSample) {
        if (spec.signal == FaultSignal::kMotorForecast)
          state.held_forecast = context.motor_power_forecast_w;
        else
          state.held_value = *scalar_of(context, spec.signal);
      }
    }

    --state.active_steps_left;
    ++active;

    const bool forecast = spec.signal == FaultSignal::kMotorForecast;
    double* value = scalar_of(context, spec.signal);
    auto& forecast_vec = context.motor_power_forecast_w;
    switch (spec.kind) {
      case FaultKind::kBias:
        ++stats_.bias_steps;
        if (forecast)
          for (double& v : forecast_vec) v += spec.magnitude;
        else
          *value += spec.magnitude;
        break;
      case FaultKind::kStuckAt:
        ++stats_.stuck_steps;
        if (forecast)
          forecast_vec.assign(forecast_vec.size(), spec.magnitude);
        else
          *value = spec.magnitude;
        break;
      case FaultKind::kDropout:
        ++stats_.dropout_steps;
        // A silent sensor reads NaN; a silent forecast service returns
        // nothing (the controller falls back to reactive behaviour).
        if (forecast)
          forecast_vec.clear();
        else
          *value = std::numeric_limits<double>::quiet_NaN();
        break;
      case FaultKind::kStaleSample:
        ++stats_.stale_steps;
        if (forecast)
          forecast_vec = state.held_forecast;
        else
          *value = state.held_value;
        break;
      case FaultKind::kSpike:
        ++stats_.spike_steps;
        {
          const double sign = state.rng.next_double() < 0.5 ? -1.0 : 1.0;
          if (forecast)
            for (double& v : forecast_vec) v += sign * spec.magnitude;
          else
            *value += sign * spec.magnitude;
        }
        break;
      case FaultKind::kQuantization:
        ++stats_.quantization_steps;
        if (forecast)
          for (double& v : forecast_vec)
            v = std::round(v / spec.magnitude) * spec.magnitude;
        else
          *value = std::round(*value / spec.magnitude) * spec.magnitude;
        break;
    }
  }

  if (active > 0) ++stats_.faulted_steps;
  return active;
}

void FaultInjector::save_state(BinaryWriter& writer) const {
  writer.section("fault_injector");
  writer.write_size(states_.size());
  for (const SpecState& state : states_) {
    writer.write_u64(state.rng.state());
    writer.write_size(state.active_steps_left);
    writer.write_f64(state.held_value);
    writer.write_f64_vec(state.held_forecast);
  }
  writer.write_size(stats_.steps);
  writer.write_size(stats_.faulted_steps);
  writer.write_size(stats_.episodes);
  writer.write_size(stats_.bias_steps);
  writer.write_size(stats_.stuck_steps);
  writer.write_size(stats_.dropout_steps);
  writer.write_size(stats_.stale_steps);
  writer.write_size(stats_.spike_steps);
  writer.write_size(stats_.quantization_steps);
}

void FaultInjector::load_state(BinaryReader& reader) {
  reader.expect_section("fault_injector");
  const std::size_t n = reader.read_size();
  if (n != specs_.size())
    throw SerializationError("fault injector spec count mismatch");
  for (SpecState& state : states_) {
    state.rng.set_state(reader.read_u64());
    state.active_steps_left = reader.read_size();
    state.held_value = reader.read_f64();
    state.held_forecast = reader.read_f64_vec();
  }
  stats_.steps = reader.read_size();
  stats_.faulted_steps = reader.read_size();
  stats_.episodes = reader.read_size();
  stats_.bias_steps = reader.read_size();
  stats_.stuck_steps = reader.read_size();
  stats_.dropout_steps = reader.read_size();
  stats_.stale_steps = reader.read_size();
  stats_.spike_steps = reader.read_size();
  stats_.quantization_steps = reader.read_size();
}

}  // namespace evc::sim
