// Explicit ODE integration for the continuous-time plant models.
//
// The paper's MPC controls a plant simulated by AMESim; our substitute plant
// integrates the same low-order ODEs (cabin thermal balance, battery charge)
// with a fixed-step integrator running finer than the 1 s control step, plus
// an adaptive RK45 used by tests as a reference solution.
#pragma once

#include <functional>
#include <vector>

namespace evc::sim {

/// dx/dt = f(t, x) — `dxdt` is pre-sized to x.size().
using OdeRhs = std::function<void(double t, const std::vector<double>& x,
                                  std::vector<double>& dxdt)>;

enum class OdeMethod { kEuler, kRk4 };

/// Integrate from (t0, x0) to t1 with fixed step dt (the last step is
/// shortened to land exactly on t1). Returns x(t1).
std::vector<double> integrate_fixed(const OdeRhs& rhs, std::vector<double> x0,
                                    double t0, double t1, double dt,
                                    OdeMethod method = OdeMethod::kRk4);

struct AdaptiveOptions {
  double abs_tol = 1e-8;
  double rel_tol = 1e-8;
  double initial_step = 1e-2;
  double min_step = 1e-10;
  std::size_t max_steps = 2'000'000;
};

/// Dormand–Prince RK45 with PI step-size control. Throws std::runtime_error
/// if the step collapses below min_step (stiff / inconsistent model).
std::vector<double> integrate_adaptive(const OdeRhs& rhs,
                                       std::vector<double> x0, double t0,
                                       double t1,
                                       const AdaptiveOptions& options = {});

}  // namespace evc::sim
