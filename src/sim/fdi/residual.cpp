#include "sim/fdi/residual.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::fdi {

ScalarResidualFilter::ScalarResidualFilter(double initial_estimate,
                                           ResidualOptions options)
    : options_(options), x_(initial_estimate),
      p_(options.initial_variance) {
  EVC_EXPECT(options_.process_noise > 0.0, "process noise must be positive");
  EVC_EXPECT(options_.measurement_noise > 0.0,
             "measurement noise must be positive");
  EVC_EXPECT(options_.initial_variance > 0.0,
             "initial variance must be positive");
  EVC_EXPECT(options_.gate_nis > 0.0, "NIS gate must be positive");
  EVC_EXPECT(options_.max_variance >= options_.initial_variance,
             "variance ceiling below the initial variance");
}

void ScalarResidualFilter::reinitialize(double estimate) {
  x_ = estimate;
  p_ = options_.initial_variance;
}

ResidualUpdate ScalarResidualFilter::step(double predicted, double decay,
                                          double measured, bool allow_fuse) {
  EVC_EXPECT(decay > 0.0 && decay <= 1.0, "decay factor outside (0, 1]");
  // Time update: the caller propagated the estimate through the model.
  x_ = predicted;
  p_ = std::min(decay * decay * p_ + options_.process_noise,
                options_.max_variance);

  ResidualUpdate update;
  update.variance = p_ + options_.measurement_noise;
  if (std::isfinite(measured)) {
    update.innovation = measured - x_;
    update.nis = update.innovation * update.innovation / update.variance;
    update.within_gate = update.nis <= options_.gate_nis;
  } else {
    // A silent sensor has no residual; it votes "inconsistent".
    update.innovation = std::numeric_limits<double>::quiet_NaN();
    update.nis = std::numeric_limits<double>::quiet_NaN();
    update.within_gate = false;
  }

  // Innovation gating: only a trusted AND plausible measurement updates
  // the model estimate — one outlier never contaminates the redundancy.
  if (allow_fuse && update.within_gate) {
    const double gain = p_ / update.variance;
    x_ += gain * update.innovation;
    p_ *= (1.0 - gain);
    update.fused = true;
  }
  return update;
}

void ScalarResidualFilter::save_state(BinaryWriter& w) const {
  w.section("residual");
  w.write_f64(x_);
  w.write_f64(p_);
}

void ScalarResidualFilter::load_state(BinaryReader& r) {
  r.expect_section("residual");
  x_ = r.read_f64();
  p_ = r.read_f64();
}

}  // namespace evc::fdi
