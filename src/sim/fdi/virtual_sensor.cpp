#include "sim/fdi/virtual_sensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::fdi {

CabinTempVirtualSensor::CabinTempVirtualSensor(hvac::HvacParams params)
    : cabin_(params) {}

Prediction CabinTempVirtualSensor::predict(double cabin_estimate_c,
                                           const hvac::HvacInputs& applied,
                                           double outside_estimate_c,
                                           double dt_s) const {
  Prediction p;
  p.value = cabin_.step_exact(cabin_estimate_c, applied.supply_temp_c,
                              applied.air_flow_kg_s, outside_estimate_c,
                              dt_s);
  const hvac::HvacParams& params = cabin_.params();
  const double conductance = params.wall_ua_w_per_k +
                             std::max(0.0, applied.air_flow_kg_s) *
                                 params.air_cp;
  const double rate = conductance / params.cabin_capacitance_j_per_k;
  p.decay = std::exp(-rate * std::max(0.0, dt_s));
  return p;
}

CoulombSocVirtualSensor::CoulombSocVirtualSensor(double capacity_ah,
                                                 double nominal_voltage_v)
    : capacity_ah_(capacity_ah), nominal_voltage_v_(nominal_voltage_v) {
  EVC_EXPECT(capacity_ah_ > 0.0, "battery capacity must be positive");
  EVC_EXPECT(nominal_voltage_v_ > 0.0, "nominal voltage must be positive");
}

Prediction CoulombSocVirtualSensor::predict(double soc_estimate_percent,
                                            double total_electrical_power_w,
                                            double dt_s) const {
  const double capacity_j = capacity_ah_ * 3600.0 * nominal_voltage_v_;
  const double delta =
      100.0 * total_electrical_power_w * std::max(0.0, dt_s) / capacity_j;
  Prediction p;
  p.value = std::clamp(soc_estimate_percent - delta, 0.0, 100.0);
  p.decay = 1.0;
  return p;
}

}  // namespace evc::fdi
