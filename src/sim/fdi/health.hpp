// Per-sensor health state machine of the FDIR layer.
//
// Each monitored sensor owns one HealthStateMachine driven by a per-step
// boolean verdict ("was this step's residual inside the chi-square
// gate?"). The four states and their edges:
//
//             consistent                      inconsistent × suspect_after
//   ┌─────── HEALTHY ─────────────────────────────────┐
//   │            ▲                                    ▼
//   │ consistent │ (false-trip guard)              SUSPECT
//   │            └──────────────────────┐             │ inconsistent
//   │                                   │             │ × isolate_after
//   │ consistent × readmit_after        │             ▼
//   └──────── RECOVERING ◄── consistent ┴─────── ISOLATED
//                  │        (after min_isolation_steps dwell)
//                  └── inconsistent ──► ISOLATED   (re-trip)
//
//   * HEALTHY → SUSPECT after `suspect_after` consecutive inconsistent
//     steps (a detection).
//   * SUSPECT → HEALTHY on the first consistent step (the false-trip
//     guard: an isolated spike never escalates, and the guard counter
//     records how often the gate fired without a confirmed fault).
//   * SUSPECT → ISOLATED after `isolate_after` further consecutive
//     inconsistent steps (an isolation; the supervisor substitutes the
//     virtual sensor from here on).
//   * ISOLATED → RECOVERING when the measurement agrees with the virtual
//     estimate again, but only after `min_isolation_steps` of dwell —
//     a stuck sensor that briefly sweeps past the true value must not
//     start a recovery probe.
//   * RECOVERING → HEALTHY after `readmit_after` consecutive consistent
//     steps (re-admission); any inconsistent step re-trips straight back
//     to ISOLATED.
//
// Every edge is counted (HealthCounters) and the whole machine serializes
// into checkpoints, so a resumed run continues the exact same episode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::fdi {

enum class SensorHealth : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kIsolated = 2,
  kRecovering = 3,
};

std::string to_string(SensorHealth state);

struct HealthOptions {
  /// Consecutive inconsistent steps before HEALTHY degrades to SUSPECT.
  std::size_t suspect_after = 2;
  /// Further consecutive inconsistent steps before SUSPECT is ISOLATED.
  std::size_t isolate_after = 3;
  /// Minimum dwell in ISOLATED before a recovery probe may begin.
  std::size_t min_isolation_steps = 10;
  /// Consecutive consistent steps in RECOVERING before re-admission.
  std::size_t readmit_after = 12;
};

struct HealthCounters {
  std::size_t detections = 0;    ///< HEALTHY → SUSPECT edges
  std::size_t false_trips = 0;   ///< SUSPECT → HEALTHY edges (guard)
  std::size_t isolations = 0;    ///< entries into ISOLATED (incl. re-trips)
  std::size_t re_trips = 0;      ///< RECOVERING → ISOLATED edges
  std::size_t recovery_probes = 0;  ///< ISOLATED → RECOVERING edges
  std::size_t readmissions = 0;  ///< RECOVERING → HEALTHY edges
  std::size_t steps_in_state[4] = {0, 0, 0, 0};
};

class HealthStateMachine {
 public:
  explicit HealthStateMachine(HealthOptions options);

  SensorHealth state() const { return state_; }
  const HealthCounters& counters() const { return counters_; }
  /// The sensor's reading must not be trusted (ISOLATED or RECOVERING):
  /// the supervisor substitutes the virtual estimate.
  bool isolated() const {
    return state_ == SensorHealth::kIsolated ||
           state_ == SensorHealth::kRecovering;
  }

  /// Advance one step with this step's gate verdict; returns the state
  /// after the transition.
  SensorHealth step(bool consistent);

  void reset();
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  HealthOptions options_;
  SensorHealth state_ = SensorHealth::kHealthy;
  std::size_t streak_ = 0;  ///< consecutive steps driving the pending edge
  std::size_t dwell_ = 0;   ///< steps spent in the current state
  HealthCounters counters_;
};

}  // namespace evc::fdi
