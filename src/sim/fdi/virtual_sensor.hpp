// Analytical-redundancy virtual sensors.
//
// When a physical sensor is isolated, the supervisor needs a *live*
// substitute — a value that keeps tracking the plant, not an aging
// last-good hold. Each virtual sensor is a stateless one-step predictor
// over the quantities the control loop already knows (the applied
// actuation, the ambient estimate, the commanded power): it maps the
// current fused estimate to the model's prediction for the next step plus
// the sensitivity of that prediction, which the ScalarResidualFilter uses
// for both variance propagation and residual generation. Prediction state
// (the estimate itself) lives in the filter; these classes carry only
// model parameters, so checkpointing them is free.
#pragma once

#include "hvac/cabin_model.hpp"
#include "hvac/hvac_params.hpp"

namespace evc::fdi {

/// A one-step model prediction: x̂⁺ = value, with d(value)/d(x̂) = decay.
struct Prediction {
  double value = 0.0;
  double decay = 1.0;  ///< sensitivity in (0, 1]
};

/// Cabin temperature from the exact linear-ODE cabin step (paper Eq. 7–8)
/// driven by the *applied* HVAC actuation — the same model the plant and
/// the MPC use, evaluated from the estimate instead of the sensor.
class CabinTempVirtualSensor {
 public:
  explicit CabinTempVirtualSensor(hvac::HvacParams params);

  /// Predict the cabin temperature after `dt_s` given the applied inputs
  /// and the (estimated) outside temperature.
  Prediction predict(double cabin_estimate_c, const hvac::HvacInputs& applied,
                     double outside_estimate_c, double dt_s) const;

 private:
  hvac::CabinThermalModel cabin_;
};

/// Ambient temperature as a bounded random walk: weather changes over
/// minutes, not control steps, so "it is what it was" plus process noise
/// is the honest model (the residual options carry the noise).
class AmbientTempVirtualSensor {
 public:
  Prediction predict(double outside_estimate_c) const {
    return {outside_estimate_c, 1.0};
  }
};

/// Battery SoC by coulomb counting the commanded electrical power:
///   SoC⁺ = SoC − 100 · P·dt / (3600 · Q_Ah · V_nom).
/// Drift sources (Peukert rate effects, BMS derating, voltage sag) are
/// absorbed by the residual filter's process noise while the sensor is
/// healthy — fusion re-anchors the counter every step — and bounded by
/// the variance ceiling while it coasts through an isolation.
class CoulombSocVirtualSensor {
 public:
  CoulombSocVirtualSensor(double capacity_ah, double nominal_voltage_v);

  Prediction predict(double soc_estimate_percent,
                     double total_electrical_power_w, double dt_s) const;

 private:
  double capacity_ah_;
  double nominal_voltage_v_;
};

}  // namespace evc::fdi
