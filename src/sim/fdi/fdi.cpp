#include "sim/fdi/fdi.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "util/serialize.hpp"

namespace evc::fdi {

SensorFdi::SensorFdi(FdiOptions options, hvac::HvacParams hvac_params)
    : options_(options),
      hvac_params_(hvac_params),
      power_model_(hvac_params, hvac_params.target_temp_c),
      cabin_vs_(hvac_params),
      soc_vs_(options.battery_capacity_ah, options.battery_nominal_voltage_v),
      cabin_filter_(hvac_params.target_temp_c, options.cabin.residual),
      outside_filter_(hvac_params.target_temp_c, options.outside.residual),
      soc_filter_(90.0, options.soc.residual),
      cabin_health_(options.cabin.health),
      outside_health_(options.outside.health),
      soc_health_(options.soc.health) {}

void SensorFdi::initialize_from(const ctl::ControlContext& raw) {
  // Anchor every filter on the first finite reading; a sensor that is
  // already dead at step 0 starts from the configured nominal instead and
  // the residual chain flags it from there.
  if (std::isfinite(raw.cabin_temp_c)) {
    cabin_filter_.reinitialize(raw.cabin_temp_c);
  }
  if (std::isfinite(raw.outside_temp_c)) {
    outside_filter_.reinitialize(raw.outside_temp_c);
  }
  if (std::isfinite(raw.soc_percent)) {
    soc_filter_.reinitialize(raw.soc_percent);
  }
  // The first step has no applied actuation yet — predict "no change".
  pending_cabin_ = {cabin_filter_.estimate(), 1.0};
  pending_outside_ = {outside_filter_.estimate(), 1.0};
  pending_soc_ = {soc_filter_.estimate(), 1.0};
  initialized_ = true;
}

void SensorFdi::SensorAccounting::note(const ResidualUpdate& update,
                                       bool substituted) {
  ++steps;
  if (!update.within_gate) {
    ++gate_exceedances;
  }
  if (update.fused) {
    ++fused_steps;
  }
  if (substituted) {
    ++substituted_steps;
  }
  if (std::isfinite(update.nis)) {
    nis_sum += update.nis;
    nis_max = std::max(nis_max, update.nis);
    ++nis_samples;
  }
}

FdiFrame SensorFdi::assess(const ctl::ControlContext& raw) {
  EVC_TRACE_SPAN("fdi.assess");
  if (!initialized_) {
    initialize_from(raw);
  }
  last_dt_s_ = raw.dt_s;
  last_motor_power_w_ = raw.motor_power_forecast_w.empty()
                            ? 0.0
                            : raw.motor_power_forecast_w.front();
  if (!std::isfinite(last_motor_power_w_)) {
    last_motor_power_w_ = 0.0;
  }

  // Residual step: fuse only while the health layer still trusts the
  // sensor; during ISOLATED/RECOVERING the filter coasts open-loop and its
  // estimate is the virtual-sensor value.
  const ResidualUpdate cabin_u =
      cabin_filter_.step(pending_cabin_.value, pending_cabin_.decay,
                         raw.cabin_temp_c, !cabin_health_.isolated());
  const ResidualUpdate outside_u =
      outside_filter_.step(pending_outside_.value, pending_outside_.decay,
                           raw.outside_temp_c, !outside_health_.isolated());
  const ResidualUpdate soc_u =
      soc_filter_.step(pending_soc_.value, pending_soc_.decay,
                       raw.soc_percent, !soc_health_.isolated());

  cabin_health_.step(cabin_u.within_gate);
  outside_health_.step(outside_u.within_gate);
  soc_health_.step(soc_u.within_gate);

  FdiFrame frame;
  frame.cabin_health = cabin_health_.state();
  frame.outside_health = outside_health_.state();
  frame.soc_health = soc_health_.state();
  frame.cabin_substituted = cabin_health_.isolated();
  frame.outside_substituted = outside_health_.isolated();
  frame.soc_substituted = soc_health_.isolated();
  // Pass-through guarantee: a trusted sensor's raw bytes go through
  // untouched; only an isolated sensor is replaced by the model estimate.
  frame.cabin_temp_c =
      frame.cabin_substituted ? cabin_filter_.estimate() : raw.cabin_temp_c;
  frame.outside_temp_c = frame.outside_substituted
                             ? outside_filter_.estimate()
                             : raw.outside_temp_c;
  frame.soc_percent = frame.soc_substituted
                          ? std::clamp(soc_filter_.estimate(), 0.0, 100.0)
                          : raw.soc_percent;

  ++steps_;
  if (frame.any_substituted()) {
    ++substituted_steps_;
  }
  cabin_acc_.note(cabin_u, frame.cabin_substituted);
  outside_acc_.note(outside_u, frame.outside_substituted);
  soc_acc_.note(soc_u, frame.soc_substituted);
  return frame;
}

void SensorFdi::commit(const hvac::HvacInputs& applied) {
  EVC_TRACE_SPAN("fdi.commit");
  if (!initialized_) {
    return;
  }
  const double cabin_est = cabin_filter_.estimate();
  const double outside_est = outside_filter_.estimate();

  pending_cabin_ =
      cabin_vs_.predict(cabin_est, applied, outside_est, last_dt_s_);
  pending_outside_ = outside_vs_.predict(outside_est);

  // Coulomb counting over the commanded electrical power: HVAC draw for
  // the applied actuation at the estimated temperatures, plus traction and
  // accessory load. `applied` was sanitized by the plant against the TRUE
  // cabin/outside temps; power_for's non-negativity contract only holds
  // when inputs and mixed temp share a frame, so re-sanitize against the
  // estimates before evaluating power in the estimate frame (an applied
  // coil temp riding the true mixed-temp boundary would otherwise read as
  // negative cooling when the estimate is colder than the truth).
  const hvac::HvacInputs est_frame =
      power_model_.sanitize(applied, outside_est, cabin_est);
  const double mixed =
      power_model_.mixed_temp(est_frame.recirculation, outside_est, cabin_est);
  const double hvac_w = power_model_.power_for(est_frame, mixed).total();
  const double total_w =
      hvac_w + last_motor_power_w_ + options_.accessory_power_w;
  pending_soc_ =
      soc_vs_.predict(soc_filter_.estimate(), total_w, last_dt_s_);
}

FdiSensorStats SensorFdi::sensor_stats(
    const SensorAccounting& acc, const HealthStateMachine& machine) const {
  FdiSensorStats s;
  s.steps = acc.steps;
  s.gate_exceedances = acc.gate_exceedances;
  s.fused_steps = acc.fused_steps;
  s.substituted_steps = acc.substituted_steps;
  s.nis_sum = acc.nis_sum;
  s.nis_max = acc.nis_max;
  s.nis_samples = acc.nis_samples;
  s.health = machine.counters();
  return s;
}

FdiStats SensorFdi::stats() const {
  FdiStats s;
  s.steps = steps_;
  s.substituted_steps = substituted_steps_;
  s.cabin = sensor_stats(cabin_acc_, cabin_health_);
  s.outside = sensor_stats(outside_acc_, outside_health_);
  s.soc = sensor_stats(soc_acc_, soc_health_);
  return s;
}

void SensorFdi::reset() {
  cabin_filter_.reinitialize(hvac_params_.target_temp_c);
  outside_filter_.reinitialize(hvac_params_.target_temp_c);
  soc_filter_.reinitialize(90.0);
  cabin_health_.reset();
  outside_health_.reset();
  soc_health_.reset();
  initialized_ = false;
  pending_cabin_ = {};
  pending_outside_ = {};
  pending_soc_ = {};
  last_dt_s_ = 1.0;
  last_motor_power_w_ = 0.0;
  steps_ = 0;
  substituted_steps_ = 0;
  cabin_acc_ = {};
  outside_acc_ = {};
  soc_acc_ = {};
}

void SensorFdi::SensorAccounting::save_state(BinaryWriter& w) const {
  w.write_size(steps);
  w.write_size(gate_exceedances);
  w.write_size(fused_steps);
  w.write_size(substituted_steps);
  w.write_f64(nis_sum);
  w.write_f64(nis_max);
  w.write_size(nis_samples);
}

void SensorFdi::SensorAccounting::load_state(BinaryReader& r) {
  steps = r.read_size();
  gate_exceedances = r.read_size();
  fused_steps = r.read_size();
  substituted_steps = r.read_size();
  nis_sum = r.read_f64();
  nis_max = r.read_f64();
  nis_samples = r.read_size();
}

void SensorFdi::save_state(BinaryWriter& w) const {
  w.section("fdi");
  w.write_bool(initialized_);
  w.write_f64(pending_cabin_.value);
  w.write_f64(pending_cabin_.decay);
  w.write_f64(pending_outside_.value);
  w.write_f64(pending_outside_.decay);
  w.write_f64(pending_soc_.value);
  w.write_f64(pending_soc_.decay);
  w.write_f64(last_dt_s_);
  w.write_f64(last_motor_power_w_);
  w.write_size(steps_);
  w.write_size(substituted_steps_);
  cabin_filter_.save_state(w);
  outside_filter_.save_state(w);
  soc_filter_.save_state(w);
  cabin_health_.save_state(w);
  outside_health_.save_state(w);
  soc_health_.save_state(w);
  cabin_acc_.save_state(w);
  outside_acc_.save_state(w);
  soc_acc_.save_state(w);
}

void SensorFdi::load_state(BinaryReader& r) {
  r.expect_section("fdi");
  initialized_ = r.read_bool();
  pending_cabin_.value = r.read_f64();
  pending_cabin_.decay = r.read_f64();
  pending_outside_.value = r.read_f64();
  pending_outside_.decay = r.read_f64();
  pending_soc_.value = r.read_f64();
  pending_soc_.decay = r.read_f64();
  last_dt_s_ = r.read_f64();
  last_motor_power_w_ = r.read_f64();
  steps_ = r.read_size();
  substituted_steps_ = r.read_size();
  cabin_filter_.load_state(r);
  outside_filter_.load_state(r);
  soc_filter_.load_state(r);
  cabin_health_.load_state(r);
  outside_health_.load_state(r);
  soc_health_.load_state(r);
  cabin_acc_.load_state(r);
  outside_acc_.load_state(r);
  soc_acc_.load_state(r);
}

}  // namespace evc::fdi
