#include "sim/fdi/health.hpp"

#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::fdi {

std::string to_string(SensorHealth state) {
  switch (state) {
    case SensorHealth::kHealthy:
      return "healthy";
    case SensorHealth::kSuspect:
      return "suspect";
    case SensorHealth::kIsolated:
      return "isolated";
    case SensorHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

HealthStateMachine::HealthStateMachine(HealthOptions options)
    : options_(options) {
  EVC_EXPECT(options_.suspect_after >= 1, "suspect_after must be >= 1");
  EVC_EXPECT(options_.isolate_after >= 1, "isolate_after must be >= 1");
  EVC_EXPECT(options_.readmit_after >= 1, "readmit_after must be >= 1");
}

void HealthStateMachine::reset() {
  state_ = SensorHealth::kHealthy;
  streak_ = 0;
  dwell_ = 0;
  counters_ = HealthCounters{};
}

SensorHealth HealthStateMachine::step(bool consistent) {
  ++counters_.steps_in_state[static_cast<std::size_t>(state_)];
  ++dwell_;

  switch (state_) {
    case SensorHealth::kHealthy:
      if (consistent) {
        streak_ = 0;
      } else if (++streak_ >= options_.suspect_after) {
        ++counters_.detections;
        state_ = SensorHealth::kSuspect;
        streak_ = 0;
        dwell_ = 0;
      }
      break;

    case SensorHealth::kSuspect:
      if (consistent) {
        // False-trip guard: one good reading clears suspicion; persistent
        // faults re-enter through the full suspect_after hysteresis.
        ++counters_.false_trips;
        state_ = SensorHealth::kHealthy;
        streak_ = 0;
        dwell_ = 0;
      } else if (++streak_ >= options_.isolate_after) {
        ++counters_.isolations;
        state_ = SensorHealth::kIsolated;
        streak_ = 0;
        dwell_ = 0;
      }
      break;

    case SensorHealth::kIsolated:
      // The dwell requirement stops a stuck sensor that sweeps past the
      // true value from flapping straight into a recovery probe.
      if (consistent && dwell_ > options_.min_isolation_steps) {
        ++counters_.recovery_probes;
        state_ = SensorHealth::kRecovering;
        streak_ = 1;  // this consistent step counts toward re-admission
        dwell_ = 0;
        if (streak_ >= options_.readmit_after) {
          ++counters_.readmissions;
          state_ = SensorHealth::kHealthy;
          streak_ = 0;
        }
      }
      break;

    case SensorHealth::kRecovering:
      if (!consistent) {
        ++counters_.re_trips;
        ++counters_.isolations;
        state_ = SensorHealth::kIsolated;
        streak_ = 0;
        dwell_ = 0;
      } else if (++streak_ >= options_.readmit_after) {
        ++counters_.readmissions;
        state_ = SensorHealth::kHealthy;
        streak_ = 0;
        dwell_ = 0;
      }
      break;
  }
  return state_;
}

void HealthStateMachine::save_state(BinaryWriter& w) const {
  w.section("health");
  w.write_u8(static_cast<std::uint8_t>(state_));
  w.write_size(streak_);
  w.write_size(dwell_);
  w.write_size(counters_.detections);
  w.write_size(counters_.false_trips);
  w.write_size(counters_.isolations);
  w.write_size(counters_.re_trips);
  w.write_size(counters_.recovery_probes);
  w.write_size(counters_.readmissions);
  for (std::size_t s : counters_.steps_in_state) w.write_size(s);
}

void HealthStateMachine::load_state(BinaryReader& r) {
  r.expect_section("health");
  const std::uint8_t raw = r.read_u8();
  if (raw > 3) throw SerializationError("invalid sensor health state");
  state_ = static_cast<SensorHealth>(raw);
  streak_ = r.read_size();
  dwell_ = r.read_size();
  counters_.detections = r.read_size();
  counters_.false_trips = r.read_size();
  counters_.isolations = r.read_size();
  counters_.re_trips = r.read_size();
  counters_.recovery_probes = r.read_size();
  counters_.readmissions = r.read_size();
  for (std::size_t& s : counters_.steps_in_state) s = r.read_size();
}

}  // namespace evc::fdi
