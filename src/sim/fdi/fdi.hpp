// Sensor fault detection, isolation, and recovery (FDIR) orchestrator.
//
// SensorFdi monitors the three scalar sensors the control loop depends on
// — cabin temperature, outside temperature, battery SoC — with one
// (virtual sensor, residual filter, health state machine) triple each:
//
//   raw measurement ──► ScalarResidualFilter ──► NIS ──► chi-square gate
//           ▲                    ▲                           │
//           │          model prediction from          verdict▼
//     substitution     the previous step's       HealthStateMachine
//     when isolated    applied actuation
//
// Per control step the supervisor calls
//   assess(raw_context)  — evaluate residuals, advance health machines,
//                          and substitute the virtual-sensor estimate for
//                          every isolated sensor (detection), then
//   commit(applied)      — arm the next step's model predictions with the
//                          actuation that actually reached the plant
//                          (recovery of the redundancy).
//
// Pass-through guarantee: while a sensor is healthy its measured value is
// returned *bit-for-bit* — the FDI layer only observes. A clean run with
// FDI enabled is therefore byte-identical to one without it (tested).
//
// The whole subsystem serializes into checkpoints (filters, health
// machines, pending predictions, statistics), so a killed run resumes its
// fault episodes mid-flight.
#pragma once

#include <cstddef>

#include "control/controller.hpp"
#include "hvac/hvac_params.hpp"
#include "hvac/hvac_plant.hpp"
#include "sim/fdi/health.hpp"
#include "sim/fdi/residual.hpp"
#include "sim/fdi/virtual_sensor.hpp"

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::fdi {

struct FdiSensorOptions {
  ResidualOptions residual;
  HealthOptions health;
};

struct FdiOptions {
  /// Master switch — a SupervisedController only constructs the FDIR
  /// subsystem when enabled.
  bool enabled = false;
  FdiSensorOptions cabin;
  FdiSensorOptions outside;
  FdiSensorOptions soc;
  /// Battery constants for the coulomb-counting SoC virtual sensor;
  /// core::make_supervised_mpc_controller overwrites them from EvParams.
  double battery_capacity_ah = 66.2;
  double battery_nominal_voltage_v = 360.0;
  /// Constant accessory draw added to the coulomb counter's power estimate.
  double accessory_power_w = 250.0;

  FdiOptions() {
    // Cabin: the thermal model is the plant's own ODE, so the residual is
    // dominated by sensor noise; outside: an honest random walk needs more
    // process noise; SoC: percent-scale readings with slow dynamics.
    cabin.residual = {0.05, 0.25, 1.0, kChiSq1Tail01Percent, 25.0};
    outside.residual = {0.10, 0.25, 1.0, kChiSq1Tail01Percent, 25.0};
    soc.residual = {1e-4, 0.01, 0.25, kChiSq1Tail01Percent, 4.0};
  }
};

/// Per-sensor telemetry (health-edge counters + residual statistics).
struct FdiSensorStats {
  std::size_t steps = 0;
  std::size_t gate_exceedances = 0;  ///< steps with NIS outside the gate
  std::size_t fused_steps = 0;       ///< measurement folded into the model
  std::size_t substituted_steps = 0; ///< virtual estimate replaced the sensor
  double nis_sum = 0.0;              ///< finite NIS only
  double nis_max = 0.0;
  std::size_t nis_samples = 0;
  HealthCounters health;
};

struct FdiStats {
  std::size_t steps = 0;
  std::size_t substituted_steps = 0;  ///< steps with ≥ 1 substitution
  FdiSensorStats cabin;
  FdiSensorStats outside;
  FdiSensorStats soc;
};

/// One step's verdict: the sensor values the controller should see (raw
/// bytes when trusted, virtual estimates when isolated) plus per-sensor
/// health for telemetry.
struct FdiFrame {
  double cabin_temp_c = 0.0;
  double outside_temp_c = 0.0;
  double soc_percent = 0.0;
  bool cabin_substituted = false;
  bool outside_substituted = false;
  bool soc_substituted = false;
  SensorHealth cabin_health = SensorHealth::kHealthy;
  SensorHealth outside_health = SensorHealth::kHealthy;
  SensorHealth soc_health = SensorHealth::kHealthy;

  bool any_substituted() const {
    return cabin_substituted || outside_substituted || soc_substituted;
  }
};

class SensorFdi {
 public:
  SensorFdi(FdiOptions options, hvac::HvacParams hvac_params);

  /// Evaluate this step's raw measurements (pre-sanitation: NaNs and wild
  /// values are exactly what the residuals must catch). Advances health
  /// machines and returns possibly-substituted sensor values.
  FdiFrame assess(const ctl::ControlContext& raw);

  /// Arm the next step's model predictions with the actuation the
  /// supervisor actually emitted.
  void commit(const hvac::HvacInputs& applied);

  FdiStats stats() const;
  SensorHealth cabin_health() const { return cabin_health_.state(); }
  SensorHealth outside_health() const { return outside_health_.state(); }
  SensorHealth soc_health() const { return soc_health_.state(); }
  const FdiOptions& options() const { return options_; }
  /// Current virtual-sensor estimates (the substitution values).
  double cabin_estimate_c() const { return cabin_filter_.estimate(); }
  double outside_estimate_c() const { return outside_filter_.estimate(); }
  double soc_estimate_percent() const { return soc_filter_.estimate(); }

  void reset();
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  struct SensorAccounting {
    std::size_t steps = 0;
    std::size_t gate_exceedances = 0;
    std::size_t fused_steps = 0;
    std::size_t substituted_steps = 0;
    double nis_sum = 0.0;
    double nis_max = 0.0;
    std::size_t nis_samples = 0;

    void note(const ResidualUpdate& update, bool substituted);
    void save_state(BinaryWriter& w) const;
    void load_state(BinaryReader& r);
  };

  void initialize_from(const ctl::ControlContext& raw);
  FdiSensorStats sensor_stats(const SensorAccounting& acc,
                              const HealthStateMachine& machine) const;

  FdiOptions options_;
  hvac::HvacParams hvac_params_;
  hvac::HvacPlant power_model_;  ///< power_for() only; holds no run state

  CabinTempVirtualSensor cabin_vs_;
  AmbientTempVirtualSensor outside_vs_;
  CoulombSocVirtualSensor soc_vs_;

  ScalarResidualFilter cabin_filter_;
  ScalarResidualFilter outside_filter_;
  ScalarResidualFilter soc_filter_;
  HealthStateMachine cabin_health_;
  HealthStateMachine outside_health_;
  HealthStateMachine soc_health_;

  bool initialized_ = false;
  Prediction pending_cabin_;
  Prediction pending_outside_;
  Prediction pending_soc_;
  double last_dt_s_ = 1.0;
  double last_motor_power_w_ = 0.0;

  std::size_t steps_ = 0;
  std::size_t substituted_steps_ = 0;
  SensorAccounting cabin_acc_;
  SensorAccounting outside_acc_;
  SensorAccounting soc_acc_;
};

}  // namespace evc::fdi
