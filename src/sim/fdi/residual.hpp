// Model-based residual generation for the FDIR layer.
//
// Each monitored scalar sensor is shadowed by a one-state Kalman filter
// whose prediction comes from an analytical-redundancy model (cabin
// thermal ODE, ambient random walk, coulomb-counted SoC — see
// virtual_sensor.hpp). The residual is the filter innovation
// ν = measured − predicted and its normalized form NIS = ν²/S with
// S = P⁻ + R. Under a healthy sensor NIS ~ χ²(1), so a fixed quantile of
// χ²(1) is a constant-false-alarm-rate gate: NIS above the gate is a
// detection vote, fed to the sensor's HealthStateMachine.
//
// Two behaviours matter for fault tolerance:
//   * innovation gating — a measurement outside the gate is *never fused*
//     into the estimate, so one outlier cannot poison the model state that
//     later steps validate against;
//   * open-loop coasting — while a sensor is isolated the filter runs
//     pure-model (fuse = false) and its estimate IS the virtual sensor
//     value the supervisor substitutes.
#pragma once

#include <cstddef>

#include "sim/kalman.hpp"

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::fdi {

/// Upper-tail quantiles of χ²(1): gate thresholds for a scalar NIS test
/// at the given false-alarm rate per step.
inline constexpr double kChiSq1Tail5Percent = 3.841;
inline constexpr double kChiSq1Tail1Percent = 6.635;
inline constexpr double kChiSq1Tail01Percent = 10.828;

struct ResidualOptions {
  /// Per-step model error variance q (signal units squared).
  double process_noise = 0.05;
  /// Sensor noise variance R (signal units squared).
  double measurement_noise = 0.25;
  /// Initial estimate variance P0.
  double initial_variance = 1.0;
  /// NIS gate (χ²(1) quantile). Default: 0.1 % false alarms per step.
  double gate_nis = kChiSq1Tail01Percent;
  /// Variance ceiling while coasting open-loop — without it a long
  /// isolation inflates P until every reading looks consistent.
  double max_variance = 25.0;
};

/// One step's residual evaluation.
struct ResidualUpdate {
  double innovation = 0.0;
  double variance = 0.0;  ///< innovation variance S
  double nis = 0.0;       ///< NaN when the measurement was non-finite
  bool within_gate = false;  ///< finite && nis <= gate
  bool fused = false;        ///< measurement was folded into the estimate
};

class ScalarResidualFilter {
 public:
  ScalarResidualFilter(double initial_estimate, ResidualOptions options);

  double estimate() const { return x_; }
  double variance() const { return p_; }
  const ResidualOptions& options() const { return options_; }

  /// Advance one step. `predicted` is the model's propagation of the
  /// current estimate, `decay` its sensitivity d(predicted)/d(estimate),
  /// `measured` the raw sensor reading (may be NaN), and `allow_fuse`
  /// whether the health layer still trusts the sensor. The measurement is
  /// fused only when allowed AND inside the gate (innovation gating).
  ResidualUpdate step(double predicted, double decay, double measured,
                      bool allow_fuse);

  /// Re-anchor the estimate (e.g. on first measurement).
  void reinitialize(double estimate);

  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  ResidualOptions options_;
  double x_;
  double p_;
};

}  // namespace evc::fdi
