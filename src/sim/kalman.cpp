#include "sim/kalman.hpp"

#include <limits>

#include "numerics/factorization.hpp"
#include "util/expect.hpp"

namespace evc::sim {

KalmanFilter::KalmanFilter(num::Matrix f, num::Matrix b, num::Matrix h,
                           num::Matrix q, num::Matrix r, num::Vector x0,
                           num::Matrix p0)
    : f_(std::move(f)), b_(std::move(b)), h_(std::move(h)), q_(std::move(q)),
      r_(std::move(r)), x_(std::move(x0)), p_(std::move(p0)) {
  const std::size_t n = x_.size();
  EVC_EXPECT(f_.rows() == n && f_.cols() == n, "KF: F must be n×n");
  EVC_EXPECT(b_.rows() == n, "KF: B must have n rows");
  EVC_EXPECT(h_.cols() == n, "KF: H must have n columns");
  EVC_EXPECT(q_.rows() == n && q_.cols() == n, "KF: Q must be n×n");
  const std::size_t m = h_.rows();
  EVC_EXPECT(r_.rows() == m && r_.cols() == m, "KF: R must be m×m");
  EVC_EXPECT(p_.rows() == n && p_.cols() == n, "KF: P0 must be n×n");
}

void KalmanFilter::predict(const num::Vector& u) {
  EVC_EXPECT(u.size() == b_.cols(), "KF: control dimension mismatch");
  x_ = f_ * x_ + b_ * u;
  p_ = f_ * p_ * f_.transposed();
  p_ += q_;
  p_.symmetrize();
}

KalmanUpdateResult KalmanFilter::update(const num::Vector& z) {
  EVC_EXPECT(z.size() == h_.rows(), "KF: measurement dimension mismatch");
  KalmanUpdateResult result;
  result.innovation = z - h_ * x_;
  num::Matrix s = h_ * p_ * h_.transposed();
  s += r_;
  result.innovation_covariance = s;
  num::LuFactorization lu(s);
  if (!lu.ok()) {
    // Structured status: the caller keeps the prediction and decides what a
    // skipped fusion means (the FDI layer counts it as a residual outage).
    result.ok = false;
    result.nis = std::numeric_limits<double>::quiet_NaN();
    return result;
  }

  // NIS = νᵀ S⁻¹ ν through the same factorization (S is symmetric).
  result.nis = result.innovation.dot(lu.solve(result.innovation));

  // Gain K = P Hᵀ S⁻¹, applied column-wise through the factorization.
  const num::Matrix pht = p_ * h_.transposed();
  const std::size_t n = x_.size();
  const std::size_t m = z.size();
  num::Matrix gain(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    // Row i of K solves Sᵀ kᵢ = (P Hᵀ) row i; S is symmetric.
    const num::Vector ki = lu.solve(pht.row(i));
    for (std::size_t j = 0; j < m; ++j) gain(i, j) = ki[j];
  }

  x_ += gain * result.innovation;
  num::Matrix i_kh = num::Matrix::identity(n);
  i_kh -= gain * h_;
  p_ = i_kh * p_;
  p_.symmetrize();
  result.ok = true;
  return result;
}

CabinTempEstimator::CabinTempEstimator(double initial_temp_c,
                                       double process_noise,
                                       double measurement_noise)
    : x_(initial_temp_c), p_(1.0), q_(process_noise), r_(measurement_noise) {
  EVC_EXPECT(process_noise > 0.0 && measurement_noise > 0.0,
             "noise variances must be positive");
}

ScalarKalmanUpdate CabinTempEstimator::step(double predicted_next_temp,
                                            double decay, double measured) {
  EVC_EXPECT(decay > 0.0 && decay <= 1.0,
             "cabin decay factor outside (0, 1]");
  // Predict: the caller already propagated the estimate through the exact
  // cabin step; only the variance needs the sensitivity.
  x_ = predicted_next_temp;
  p_ = decay * decay * p_ + q_;
  // Update against the noisy sensor, surfacing the innovation statistics.
  ScalarKalmanUpdate update;
  update.innovation = measured - x_;
  update.variance = p_ + r_;
  update.nis = update.innovation * update.innovation / update.variance;
  const double gain = p_ / (p_ + r_);
  x_ += gain * update.innovation;
  p_ *= (1.0 - gain);
  return update;
}

}  // namespace evc::sim
