// Versioned, crash-safe checkpoint container.
//
// A Checkpoint wraps an opaque serialized payload (produced with
// BinaryWriter by whoever owns the state — canonically
// core::SimulationSession) in a self-validating envelope:
//
//   magic "EVCKPT\0\1" · format version u32 · payload length u64 ·
//   FNV-1a-64 checksum of the payload · payload bytes
//
// The envelope makes two failure modes detectable instead of corrupting:
//   * version skew — a checkpoint from a different format version is
//     refused with SerializationError, never reinterpreted;
//   * torn or bit-rotted files — the checksum must match before a single
//     payload byte is handed to the reader.
// write_file() is atomic (write to a sibling temp file, flush, rename), so
// a process killed mid-checkpoint leaves either the previous complete
// checkpoint or a temp file the loader never looks at — never a half
// checkpoint under the real name. That property is what the chaos-soak
// harness's kill-and-resume cycles lean on.
#pragma once

#include <cstdint>
#include <string>

namespace evc::sim {

/// Bumped whenever the payload layout changes incompatibly.
/// v2: flight-recorder ring + per-step solver effort in the MPC section.
/// v3: condensed-QP counters + backend cache section in the MPC section.
inline constexpr std::uint32_t kCheckpointFormatVersion = 3;

class Checkpoint {
 public:
  Checkpoint() = default;
  /// Wrap an already-serialized payload (e.g. BinaryWriter::take()).
  static Checkpoint wrap(std::string payload);

  const std::string& payload() const { return payload_; }

  /// Envelope + payload as a byte string.
  std::string encode() const;
  /// Parse and validate an encoded checkpoint. Throws SerializationError
  /// on bad magic, version skew, truncation, or checksum mismatch.
  static Checkpoint decode(const std::string& bytes);

  /// Atomically write encode() to `path` (temp file + flush + rename).
  /// Throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;
  /// Read and validate a checkpoint file (same failure modes as decode,
  /// plus std::runtime_error when the file cannot be read).
  static Checkpoint read_file(const std::string& path);

 private:
  std::string payload_;
};

/// FNV-1a 64-bit — tiny, dependency-free integrity hash for the envelope.
std::uint64_t fnv1a64(const std::string& bytes);

}  // namespace evc::sim
