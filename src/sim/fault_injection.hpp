// Deterministic sensor/forecast fault injection for robustness studies.
//
// A FaultInjector sits between the simulated plant and the controller and
// corrupts the ControlContext the controller sees — the plant itself stays
// truthful, exactly like a real ECU whose sensors glitch while the physics
// carry on. Faults are composable (any number of specs, applied in order)
// and the schedule is fully deterministic: each spec draws from its own
// splitmix64 stream derived from (seed, spec index), so adding or removing
// one spec never perturbs the others' episodes and every run with the same
// seed reproduces bit-exactly.
//
// Fault taxonomy (docs/ROBUSTNESS.md):
//   kBias          additive offset while an episode is active
//   kStuckAt       signal frozen at `magnitude` while active
//   kDropout       signal reads quiet-NaN (sensor silence); a forecast
//                  dropout empties the forecast vector instead
//   kStaleSample   signal frozen at its value when the episode started
//   kSpike         additive impulse of ±magnitude (random sign per step)
//   kQuantization  signal rounded to a grid of `magnitude`
//
// Episodes: every step a spec is inactive (and inside its time window) it
// fires with probability `rate`, then stays active for `hold_steps` steps.
// rate = 1 with a large hold models a permanent fault.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "util/random.hpp"

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::sim {

enum class FaultSignal {
  kCabinTemp,      ///< ControlContext::cabin_temp_c (°C)
  kOutsideTemp,    ///< ControlContext::outside_temp_c (°C)
  kSoc,            ///< ControlContext::soc_percent
  kMotorForecast,  ///< ControlContext::motor_power_forecast_w (all entries)
};

enum class FaultKind {
  kBias,
  kStuckAt,
  kDropout,
  kStaleSample,
  kSpike,
  kQuantization,
};

struct FaultSpec {
  FaultSignal signal = FaultSignal::kCabinTemp;
  FaultKind kind = FaultKind::kBias;
  /// Per-step episode start probability while inactive, in [0, 1].
  double rate = 0.0;
  /// Bias offset / stuck value / spike amplitude / quantization step.
  double magnitude = 0.0;
  /// Steps an episode stays active once fired (≥ 1).
  std::size_t hold_steps = 1;
  /// Episodes only start inside [start_s, end_s) of simulation time.
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
};

/// Aggregate fault activity since construction/reset.
struct FaultInjectionStats {
  std::size_t steps = 0;          ///< apply() calls
  std::size_t faulted_steps = 0;  ///< steps where ≥ 1 fault was active
  std::size_t episodes = 0;       ///< episodes started
  /// Active fault-step counts per kind (a 3-step dropout episode counts 3).
  std::size_t bias_steps = 0;
  std::size_t stuck_steps = 0;
  std::size_t dropout_steps = 0;
  std::size_t stale_steps = 0;
  std::size_t spike_steps = 0;
  std::size_t quantization_steps = 0;
};

class FaultInjector {
 public:
  /// Throws std::invalid_argument on malformed specs (rate outside [0, 1],
  /// non-positive quantization step, zero hold).
  FaultInjector(std::vector<FaultSpec> specs, std::uint64_t seed);

  /// Corrupt `context` in place for this step (keyed on context.time_s).
  /// Returns the number of faults active this step.
  std::size_t apply(ctl::ControlContext& context);

  /// Restore the constructed state: same seed → the exact same schedule.
  void reset();

  const FaultInjectionStats& stats() const { return stats_; }
  const std::vector<FaultSpec>& specs() const { return specs_; }

  /// Checkpoint hooks: per-spec SplitMix64 stream positions, episode
  /// progress, hold latches, and the aggregate stats — a restored injector
  /// replays the identical fault sequence the uninterrupted run would see.
  void save_state(BinaryWriter& writer) const;
  void load_state(BinaryReader& reader);

 private:
  struct SpecState {
    SplitMix64 rng{0};
    std::size_t active_steps_left = 0;
    double held_value = 0.0;              ///< stale/stuck scalar
    std::vector<double> held_forecast;    ///< stale forecast snapshot
  };

  std::vector<FaultSpec> specs_;
  std::uint64_t seed_;
  std::vector<SpecState> states_;
  FaultInjectionStats stats_;
};

std::string to_string(FaultSignal signal);
std::string to_string(FaultKind kind);

}  // namespace evc::sim
