// Linear Kalman filter and the cabin-temperature estimator built on it.
//
// The paper's Algorithm 1 feeds the measured cabin temperature straight
// into the MPC (x0|t = Tz at line 21). A production climate controller
// reads a noisy, quantized NTC sensor; this module provides the standard
// fix — a Kalman filter on the (linear, per-step) cabin dynamics — so the
// robustness bench can quantify how sensor noise degrades each
// methodology and how much filtering recovers.
#pragma once

#include "numerics/matrix.hpp"
#include "numerics/vector.hpp"

namespace evc::sim {

/// Everything a fault-detection consumer needs from one measurement
/// update: the innovation ν = z − Hx̂, its covariance S = HPHᵀ + R, and
/// the normalized innovation squared NIS = νᵀS⁻¹ν. Under a healthy sensor
/// the NIS is χ²-distributed with m degrees of freedom, which is what the
/// FDI layer's chi-square gate tests (docs/ROBUSTNESS.md).
struct KalmanUpdateResult {
  /// False when the innovation covariance was numerically singular; the
  /// state/covariance were left at the prediction (no silent corruption)
  /// and `nis` is NaN.
  bool ok = false;
  num::Vector innovation;
  num::Matrix innovation_covariance;
  double nis = 0.0;
};

/// Discrete-time linear Kalman filter:
///   x_{k+1} = F x_k + B u_k + w,  w ~ N(0, Q)
///   z_k     = H x_k + v,          v ~ N(0, R)
class KalmanFilter {
 public:
  /// Dimensions are fixed by the matrices; `x0`/`p0` give the initial
  /// state belief.
  KalmanFilter(num::Matrix f, num::Matrix b, num::Matrix h, num::Matrix q,
               num::Matrix r, num::Vector x0, num::Matrix p0);

  const num::Vector& state() const { return x_; }
  const num::Matrix& covariance() const { return p_; }

  /// Time update with control input u.
  void predict(const num::Vector& u);
  /// Measurement update with observation z. A singular innovation
  /// covariance is reported as a structured status (`ok == false`, state
  /// untouched) rather than thrown — the caller decides whether a skipped
  /// fusion is fatal.
  KalmanUpdateResult update(const num::Vector& z);

 private:
  num::Matrix f_, b_, h_, q_, r_;
  num::Vector x_;
  num::Matrix p_;
};

/// Scalar analogue of KalmanUpdateResult for the one-state estimators.
struct ScalarKalmanUpdate {
  double innovation = 0.0;   ///< ν = measured − predicted
  double variance = 0.0;     ///< S = P⁻ + R
  double nis = 0.0;          ///< ν²/S, χ²(1) under a healthy sensor
};

/// One-state Kalman estimator for the cabin temperature: per step the
/// (linear) exact cabin dynamics give Tz⁺ = α·Tz + β, with α, β computed
/// from the applied HVAC inputs — supplied by the caller as the predicted
/// next temperature and its sensitivity. Scalar arithmetic (no matrices)
/// since the cabin state is one-dimensional.
class CabinTempEstimator {
 public:
  /// `process_noise` is the per-step model error variance (K²),
  /// `measurement_noise` the sensor variance (K²).
  CabinTempEstimator(double initial_temp_c, double process_noise,
                     double measurement_noise);

  double estimate() const { return x_; }
  double variance() const { return p_; }

  /// Advance: `predicted_next_temp` is the model's exact-step prediction
  /// from the current *estimate*, `decay` its sensitivity ∂Tz⁺/∂Tz
  /// (e^{−rate·dt} of the cabin ODE), and `measured` the noisy sensor.
  /// Returns the innovation statistics of the update (FDI consumes them).
  ScalarKalmanUpdate step(double predicted_next_temp, double decay,
                          double measured);

 private:
  double x_;  ///< state estimate (°C)
  double p_;  ///< estimate variance (K²)
  double q_;  ///< process noise (K² per step)
  double r_;  ///< measurement noise (K²)
};

}  // namespace evc::sim
