#include "sim/recorder.hpp"

#include "util/csv.hpp"
#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::sim {

void StateRecorder::record(const std::string& channel, double t,
                           double value) {
  auto& ch = channels_[channel];
  ch.t.push_back(t);
  ch.v.push_back(value);
}

bool StateRecorder::has(const std::string& channel) const {
  return channels_.count(channel) > 0;
}

const StateRecorder::Channel& StateRecorder::channel_or_throw(
    const std::string& name) const {
  const auto it = channels_.find(name);
  EVC_EXPECT(it != channels_.end(), "unknown recorder channel: " + name);
  return it->second;
}

const std::vector<double>& StateRecorder::values(
    const std::string& channel) const {
  return channel_or_throw(channel).v;
}

const std::vector<double>& StateRecorder::times(
    const std::string& channel) const {
  return channel_or_throw(channel).t;
}

std::vector<std::string> StateRecorder::channels() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, _] : channels_) names.push_back(name);
  return names;
}

std::size_t StateRecorder::samples(const std::string& channel) const {
  return channel_or_throw(channel).v.size();
}

void StateRecorder::write_csv(const std::string& path) const {
  EVC_EXPECT(!channels_.empty(), "write_csv on empty recorder");
  std::vector<std::string> header{"t"};
  std::size_t rows = channels_.begin()->second.v.size();
  for (const auto& [name, ch] : channels_) {
    EVC_EXPECT(ch.v.size() == rows,
               "write_csv: channels have different lengths");
    header.push_back(name);
  }
  CsvWriter csv(path, header);
  const auto& t = channels_.begin()->second.t;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row{t[r]};
    for (const auto& [name, ch] : channels_) row.push_back(ch.v[r]);
    csv.write_row(row);
  }
}

void StateRecorder::save_state(BinaryWriter& writer) const {
  writer.section("recorder");
  writer.write_size(channels_.size());
  for (const auto& [name, ch] : channels_) {
    writer.write_string(name);
    writer.write_f64_vec(ch.t);
    writer.write_f64_vec(ch.v);
  }
}

void StateRecorder::load_state(BinaryReader& reader) {
  reader.expect_section("recorder");
  channels_.clear();
  const std::size_t n = reader.read_size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string name = reader.read_string();
    Channel& ch = channels_[name];
    ch.t = reader.read_f64_vec();
    ch.v = reader.read_f64_vec();
  }
}

}  // namespace evc::sim
