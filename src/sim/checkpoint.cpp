#include "sim/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/serialize.hpp"

namespace evc::sim {

namespace {

// 8 bytes: readable prefix + NUL + format generation.
const char kMagic[8] = {'E', 'V', 'C', 'K', 'P', 'T', '\0', '\1'};

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

Checkpoint Checkpoint::wrap(std::string payload) {
  Checkpoint c;
  c.payload_ = std::move(payload);
  return c;
}

std::string Checkpoint::encode() const {
  BinaryWriter w;
  std::string out(kMagic, sizeof(kMagic));
  w.write_u32(kCheckpointFormatVersion);
  w.write_u64(payload_.size());
  w.write_u64(fnv1a64(payload_));
  out += w.take();
  out += payload_;
  return out;
}

Checkpoint Checkpoint::decode(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
    throw SerializationError("not a checkpoint (bad magic)");
  BinaryReader header(
      std::string_view(bytes).substr(sizeof(kMagic)));
  const std::uint32_t version = header.read_u32();
  if (version != kCheckpointFormatVersion)
    throw SerializationError(
        "checkpoint format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kCheckpointFormatVersion) + ")");
  const std::uint64_t length = header.read_u64();
  const std::uint64_t checksum = header.read_u64();
  const std::size_t body_offset = bytes.size() - header.remaining();
  if (header.remaining() != length)
    throw SerializationError("checkpoint payload truncated");
  Checkpoint c;
  c.payload_ = bytes.substr(body_offset);
  if (fnv1a64(c.payload_) != checksum)
    throw SerializationError("checkpoint checksum mismatch (torn write?)");
  return c;
}

void Checkpoint::write_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("cannot open " + tmp + " for write");
    const std::string bytes = encode();
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    file.flush();
    if (!file) throw std::runtime_error("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
}

Checkpoint Checkpoint::read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open checkpoint " + path);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  return decode(bytes);
}

}  // namespace evc::sim
