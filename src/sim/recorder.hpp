// Named time-series recorder for closed-loop simulations.
//
// The simulation loop appends one sample per control step; benches and
// examples read channels back for statistics or dump them to CSV.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::sim {

class StateRecorder {
 public:
  /// Append a sample to `channel` at time `t`. All channels share the time
  /// base: within one time step record every channel exactly once.
  void record(const std::string& channel, double t, double value);

  bool has(const std::string& channel) const;
  const std::vector<double>& values(const std::string& channel) const;
  const std::vector<double>& times(const std::string& channel) const;
  std::vector<std::string> channels() const;
  std::size_t samples(const std::string& channel) const;

  /// Write all channels to CSV (outer join on recording order; channels must
  /// have equal lengths).
  void write_csv(const std::string& path) const;

  /// Checkpoint hooks: every channel's full time/value history (std::map
  /// ordering makes the byte layout deterministic).
  void save_state(BinaryWriter& writer) const;
  void load_state(BinaryReader& reader);

 private:
  struct Channel {
    std::vector<double> t;
    std::vector<double> v;
  };
  const Channel& channel_or_throw(const std::string& name) const;
  std::map<std::string, Channel> channels_;
};

}  // namespace evc::sim
