// Field-visitor sinks: one enumeration of a stats struct's fields feeds
// every exporter.
//
// Each telemetry struct (MpcPlanStats, SupervisorStats, FdiStats, ...)
// gets a single visit_fields(value, FieldSink&) enumeration; the sinks
// here turn that enumeration into
//   * a JSON object (JsonFieldSink) — what core::to_json returns, and
//   * registry gauges (RegistryFieldSink) — "mpc.plans",
//     "supervisor.demotions", ... visible in obs::snapshot().
// Adding a field to a struct therefore updates every exporter in one
// place, instead of the six hand-rolled emitters this replaced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace evc::obs {

class FieldSink {
 public:
  virtual ~FieldSink() = default;

  /// Open/close a nested group ("comfort", "solver", per-sensor blocks).
  virtual void begin_group(const char* name) = 0;
  virtual void end_group() = 0;

  virtual void field_u64(const char* name, std::uint64_t value) = 0;
  virtual void field_f64(const char* name, double value) = 0;
  /// Array of counters (e.g. per-tier step occupancy).
  virtual void field_size_array(const char* name,
                                const std::vector<std::size_t>& values) = 0;

  /// std::size_t convenience (travels as u64).
  void field_size(const char* name, std::size_t value) {
    field_u64(name, static_cast<std::uint64_t>(value));
  }
};

/// Renders the visited fields as one JSON object (nested groups become
/// nested objects, arrays become JSON arrays). str() closes the root and
/// returns the document; call it exactly once.
class JsonFieldSink : public FieldSink {
 public:
  JsonFieldSink() { json_.begin_object(); }

  void begin_group(const char* name) override {
    json_.key(name);
    json_.begin_object();
  }
  void end_group() override { json_.end_object(); }
  void field_u64(const char* name, std::uint64_t value) override {
    json_.key(name).value(static_cast<unsigned long long>(value));
  }
  void field_f64(const char* name, double value) override {
    json_.key(name).value(value);
  }
  void field_size_array(const char* name,
                        const std::vector<std::size_t>& values) override {
    json_.key(name);
    json_.begin_array();
    for (std::size_t v : values) json_.value(v);
    json_.end_array();
  }

  std::string str() {
    json_.end_object();
    return json_.str();
  }

 private:
  JsonWriter json_;
};

/// Publishes the visited fields as gauges named prefix.group.field into a
/// MetricsRegistry — cumulative stats structs republished wholesale, so
/// set-semantics (gauge) is the correct idempotent choice. Cold path: each
/// field resolves its name through the registration mutex.
class RegistryFieldSink : public FieldSink {
 public:
  explicit RegistryFieldSink(std::string prefix,
                             MetricsRegistry& registry =
                                 MetricsRegistry::global())
      : registry_(registry), prefix_(std::move(prefix)) {
    if (!prefix_.empty() && prefix_.back() != '.') prefix_ += '.';
  }

  void begin_group(const char* name) override {
    prefix_ += name;
    prefix_ += '.';
  }
  void end_group() override {
    // Drop "<group>." — find the previous '.' before the trailing one.
    prefix_.pop_back();
    const std::size_t dot = prefix_.rfind('.');
    prefix_.resize(dot == std::string::npos ? 0 : dot + 1);
  }
  void field_u64(const char* name, std::uint64_t value) override {
    registry_.set(registry_.gauge(prefix_ + name),
                  static_cast<double>(value));
  }
  void field_f64(const char* name, double value) override {
    registry_.set(registry_.gauge(prefix_ + name), value);
  }
  void field_size_array(const char* name,
                        const std::vector<std::size_t>& values) override {
    for (std::size_t i = 0; i < values.size(); ++i)
      registry_.set(
          registry_.gauge(prefix_ + name + '.' + std::to_string(i)),
          static_cast<double>(values[i]));
  }

 private:
  MetricsRegistry& registry_;
  std::string prefix_;
};

}  // namespace evc::obs
