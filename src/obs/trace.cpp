#include "obs/trace.hpp"

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/json.hpp"

namespace evc::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One thread's event storage. Written only by the owning thread (head
/// advances with release so the exporter's acquire load sees completed
/// slots); kept alive past thread exit by the shared_ptr registry so a
/// short-lived worker's spans survive into the export.
struct Tracer::ThreadRing {
  std::array<TraceEvent, Tracer::kRingCapacity> events{};
  std::atomic<std::uint64_t> head{0};  ///< total events ever recorded
  std::uint32_t tid = 0;
  double sim_time_s = std::numeric_limits<double>::quiet_NaN();
};

struct Tracer::Impl {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
};

Tracer::Tracer() : epoch_ns_(steady_now_ns()), impl_(new Impl) {}

Tracer& Tracer::global() {
  // Leaked: worker threads may record during static destruction order.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_enabled(bool on) {
#if defined(EVC_OBS_NO_TRACING)
  (void)on;
#else
  enabled_.store(on, std::memory_order_relaxed);
#endif
}

std::uint64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

Tracer::ThreadRing& Tracer::local_ring() {
  thread_local std::shared_ptr<ThreadRing> ring = [this]() {
    auto fresh = std::make_shared<ThreadRing>();
    std::lock_guard<std::mutex> lock(impl_->mutex);
    fresh->tid = static_cast<std::uint32_t>(impl_->rings.size());
    impl_->rings.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

void Tracer::set_sim_time(double time_s) {
  if (!enabled()) return;
  local_ring().sim_time_s = time_s;
}

void Tracer::record(TraceEventKind kind, const char* name,
                    std::uint64_t start_ns, std::uint64_t dur_ns,
                    const char* arg_name, double value) {
  ThreadRing& ring = local_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  TraceEvent& e = ring.events[head % kRingCapacity];
  e.name = name;
  e.arg_name = arg_name;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.value = value;
  e.sim_time_s = ring.sim_time_s;
  e.kind = kind;
  ring.head.store(head + 1, std::memory_order_release);
}

void Tracer::record_span(const char* name, std::uint64_t start_ns,
                         std::uint64_t dur_ns, const char* arg_name,
                         double arg_value) {
  if (!enabled()) return;
  record(TraceEventKind::kSpan, name, start_ns, dur_ns, arg_name, arg_value);
}

void Tracer::instant(const char* name, double value) {
  if (!enabled()) return;
  record(TraceEventKind::kInstant, name, now_ns(), 0, nullptr, value);
}

void Tracer::counter(const char* name, double value) {
  if (!enabled()) return;
  record(TraceEventKind::kCounter, name, now_ns(), 0, nullptr, value);
}

TraceStats Tracer::stats() const {
  TraceStats out;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  out.threads = impl_->rings.size();
  for (const auto& ring : impl_->rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    out.recorded += static_cast<std::size_t>(
        std::min<std::uint64_t>(head, kRingCapacity));
    if (head > kRingCapacity)
      out.dropped += static_cast<std::size_t>(head - kRingCapacity);
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& ring : impl_->rings)
    ring->head.store(0, std::memory_order_release);
}

void Tracer::write_chrome_json(std::ostream& out) const {
  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  const TraceStats totals = stats();
  json.key("otherData");
  json.begin_object();
  json.key("clock").value("steady");
  json.key("recorded").value(totals.recorded);
  json.key("dropped").value(totals.dropped);
  json.end_object();
  json.key("traceEvents");
  json.begin_array();

  json.begin_object();
  json.key("name").value("process_name");
  json.key("ph").value("M");
  json.key("pid").value(0);
  json.key("tid").value(0);
  json.key("args");
  json.begin_object();
  json.key("name").value("evclimate");
  json.end_object();
  json.end_object();

  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& ring : impl_->rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, kRingCapacity);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const TraceEvent& e = ring->events[i % kRingCapacity];
      json.begin_object();
      json.key("name").value(e.name != nullptr ? e.name : "?");
      json.key("cat").value("evc");
      switch (e.kind) {
        case TraceEventKind::kSpan:
          json.key("ph").value("X");
          json.key("dur").value(static_cast<double>(e.dur_ns) / 1000.0);
          break;
        case TraceEventKind::kInstant:
          json.key("ph").value("i");
          json.key("s").value("t");
          break;
        case TraceEventKind::kCounter:
          json.key("ph").value("C");
          break;
      }
      json.key("ts").value(static_cast<double>(e.start_ns) / 1000.0);
      json.key("pid").value(0);
      json.key("tid").value(ring->tid);
      json.key("args");
      json.begin_object();
      if (e.kind == TraceEventKind::kCounter) {
        json.key("value").value(e.value);
      } else if (e.arg_name != nullptr) {
        json.key(e.arg_name).value(e.value);
      } else if (e.kind == TraceEventKind::kInstant && e.value != 0.0) {
        json.key("value").value(e.value);
      }
      if (std::isfinite(e.sim_time_s))
        json.key("sim_time_s").value(e.sim_time_s);
      json.end_object();
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  out << json.str();
}

std::string Tracer::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

TraceSpan::TraceSpan(const char* name) {
  Tracer& tracer = Tracer::global();
  if (tracer.enabled()) {
    name_ = name;
    start_ns_ = tracer.now_ns();
  }
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;  // disabled mid-span: drop it
  tracer.record_span(name_, start_ns_, tracer.now_ns() - start_ns_, arg_name_,
                     arg_value_);
}

TraceEnvGuard::TraceEnvGuard() {
  const char* env = std::getenv("EVC_TRACE");
  init(env != nullptr ? std::string(env) : std::string());
}

TraceEnvGuard::TraceEnvGuard(std::string path_override) {
  if (path_override.empty()) {
    const char* env = std::getenv("EVC_TRACE");
    if (env != nullptr) path_override = env;
  }
  init(std::move(path_override));
}

void TraceEnvGuard::init(std::string path) {
  if (path.empty()) return;
#if defined(EVC_OBS_NO_TRACING)
  std::fprintf(stderr,
               "EVC_TRACE=%s ignored: tracing compiled out "
               "(EVCLIMATE_TRACING=OFF)\n",
               path.c_str());
#else
  path_ = std::move(path);
  active_ = true;
  Tracer::global().set_enabled(true);
#endif
}

TraceEnvGuard::~TraceEnvGuard() {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(false);
  std::ofstream out(path_, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "EVC_TRACE: cannot open '%s' for writing\n",
                 path_.c_str());
    return;
  }
  tracer.write_chrome_json(out);
  const TraceStats totals = tracer.stats();
  std::fprintf(stderr,
               "EVC_TRACE: wrote %s (%zu events, %zu dropped, %zu threads)\n",
               path_.c_str(), totals.recorded, totals.dropped, totals.threads);
}

}  // namespace evc::obs
