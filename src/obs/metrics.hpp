// Process-wide metrics registry: named counters, gauges, and log-bucketed
// latency histograms.
//
// The control stack runs the same step loop millions of times per bench, so
// the write path must be cheap enough to leave enabled unconditionally:
//   * counters and histograms are sharded per thread — each writer thread
//     is assigned one of kShards cache-line-padded cells on first use and
//     only ever touches that cell with relaxed atomics, so concurrent
//     increments never contend on a line;
//   * histograms bucket values on a log scale (exact buckets below 16, then
//     8 sub-buckets per octave, ≤ 12.5 % relative width), the classic
//     HDR-histogram layout: recording is two shifts and a fetch_add, and
//     p50/p90/p99 are recovered from the bucket counts at snapshot time.
//
// Registration (name → id) takes a mutex and is expected at startup /
// first-use; the id is then a plain index into a fixed slot table, so the
// hot path never hashes a string. snapshot() folds the shards into one
// consistent-enough view (relaxed reads; exact once writers are quiescent)
// and exports the whole registry as JSON or CSV — the single exporter that
// the per-struct to_json emitters in core/metrics_json delegate to via
// obs::publish_* field sinks.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace evc::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Snapshot of one histogram: totals plus quantiles recovered from the
/// bucket counts. Quantiles are the *lower bound* of the bucket holding the
/// rank — exact for values < 16, otherwise at most 12.5 % below the true
/// sample.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;  ///< kCounter
  double gauge = 0.0;         ///< kGauge
  HistogramSummary histogram; ///< kHistogram
};

/// Point-in-time view of every registered metric, in registration order
/// (deterministic for a deterministic program).
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// {"schema":"evclimate-metrics-v1","counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,sum,max,p50,p90,p99}}}
  std::string to_json() const;
  /// One line per scalar: kind,name,field,value (histograms expand to six
  /// lines). Header row included.
  std::string to_csv() const;
};

class MetricsRegistry {
 public:
  using Id = std::uint32_t;

  /// Per-thread shard count for counters/histograms.
  static constexpr std::size_t kShards = 16;
  /// Fixed slot-table capacity; registration beyond this throws.
  static constexpr std::size_t kMaxMetrics = 512;
  /// Exact buckets [0, 16) then 8 sub-buckets per power of two up to 2^63.
  static constexpr std::size_t kHistogramBuckets = 8 + 61 * 8;

  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Register (or look up) a metric. Re-registering the same name with the
  /// same kind returns the existing id; a kind clash throws
  /// std::invalid_argument. Takes a mutex — cache the id, not the name.
  Id counter(const std::string& name);
  Id gauge(const std::string& name);
  Id histogram(const std::string& name);

  /// Hot-path writes: relaxed atomics on this thread's shard, no locks.
  void add(Id id, std::uint64_t delta = 1);
  void set(Id id, double value);
  void observe(Id id, std::uint64_t value);

  MetricsSnapshot snapshot() const;
  /// Zero every value (registrations survive) — test isolation.
  void reset();

  /// Bucket index for `value` (exposed for tests): identity below 16, then
  /// log-bucketed with 8 sub-buckets per octave.
  static std::size_t bucket_index(std::uint64_t value);
  /// Smallest value mapping to bucket `index` (the quantile estimate).
  static std::uint64_t bucket_lower_bound(std::size_t index);

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  struct HistogramShard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  struct Metric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::array<Cell, kShards> cells{};  ///< counters; cell 0 holds gauges
    std::unique_ptr<HistogramShard[]> shards;  ///< kShards, histograms only
  };

  Id register_metric(const std::string& name, MetricKind kind);
  Metric* metric(Id id) const;

  // Slot table: registration publishes the pointer with release so the
  // lock-free write path can acquire-load it without touching the mutex.
  std::array<std::atomic<Metric*>, kMaxMetrics> slots_{};
  std::atomic<std::uint32_t> registered_{0};
  mutable std::mutex register_mutex_;
};

/// Snapshot of the process-wide registry — the one exporter behind every
/// stats emitter.
MetricsSnapshot snapshot();

}  // namespace evc::obs
