// Ring-buffer span tracer with a Chrome trace-event (Perfetto) exporter.
//
// EVC_TRACE_SPAN("qp.solve") opens an RAII scope whose wall-clock interval
// is recorded when the scope closes. The hot path is built to disappear:
//   * runtime-disabled (the default): one relaxed atomic load per scope —
//     no clock reads, no ring writes, no allocation — so clean runs stay
//     byte-identical and within noise of an untraced build;
//   * compile-time disabled (EVCLIMATE_TRACING=OFF → EVC_OBS_NO_TRACING):
//     the macros expand to nothing at all;
//   * enabled: two steady_clock reads plus one store into a fixed-size
//     per-thread ring (kRingCapacity events, oldest overwritten) — no
//     locks, no allocation after a thread's first event.
//
// Every event carries both the wall-clock timestamp (ns since the tracer's
// epoch) and the simulation time the owning thread last published via
// set_sim_time(), so a Perfetto timeline can be correlated with the drive
// cycle. write_chrome_json() drains all thread rings into the Chrome
// trace-event JSON format (https://ui.perfetto.dev loads it directly).
//
// The exporter reads rings that other threads write; call it when writer
// threads are quiescent (end of main, TraceEnvGuard destructor) — the rings
// themselves are only ever written by their owning thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace evc::obs {

enum class TraceEventKind : std::uint8_t { kSpan, kInstant, kCounter };

struct TraceEvent {
  const char* name = nullptr;      ///< static-lifetime string
  const char* arg_name = nullptr;  ///< optional numeric argument label
  std::uint64_t start_ns = 0;      ///< since Tracer epoch
  std::uint64_t dur_ns = 0;        ///< 0 for instants/counters
  double value = 0.0;              ///< argument or counter value
  double sim_time_s = 0.0;         ///< NaN when the thread never set it
  TraceEventKind kind = TraceEventKind::kSpan;
};

/// Totals across all thread rings (for tests and the exporter footer).
struct TraceStats {
  std::size_t recorded = 0;  ///< events currently held in rings
  std::size_t dropped = 0;   ///< events overwritten by ring wraparound
  std::size_t threads = 0;   ///< rings ever created
};

class Tracer {
 public:
  static constexpr std::size_t kRingCapacity = 8192;

  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// No-op (stays disabled) when compiled out via EVC_OBS_NO_TRACING.
  void set_enabled(bool on);

  /// Nanoseconds since the tracer's construction (steady clock).
  std::uint64_t now_ns() const;

  /// Publish the simulation time stamped onto this thread's subsequent
  /// events. Cheap no-op while disabled.
  void set_sim_time(double time_s);

  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t dur_ns, const char* arg_name = nullptr,
                   double arg_value = 0.0);
  void instant(const char* name, double value = 0.0);
  void counter(const char* name, double value);

  TraceStats stats() const;
  /// Drop every recorded event (rings stay registered) — test isolation.
  void clear();

  /// Chrome trace-event JSON of everything currently recorded. Call with
  /// writer threads quiescent.
  void write_chrome_json(std::ostream& out) const;
  std::string chrome_json() const;

 private:
  Tracer();
  struct ThreadRing;
  ThreadRing& local_ring();
  void record(TraceEventKind kind, const char* name, std::uint64_t start_ns,
              std::uint64_t dur_ns, const char* arg_name, double value);

  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_ = 0;  // steady_clock at construction

  struct Impl;
  Impl* impl_;  // leaked singleton internals (rings outlive exit order)
};

/// RAII span; see EVC_TRACE_SPAN. Records on destruction when the tracer
/// was enabled at construction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Attach one numeric argument (last call wins), e.g.
  /// span.arg("iterations", 12).
  void arg(const char* name, double value) {
    arg_name_ = name;
    arg_value_ = value;
  }

 private:
  const char* name_ = nullptr;  ///< nullptr ⇒ tracer was disabled
  const char* arg_name_ = nullptr;
  double arg_value_ = 0.0;
  std::uint64_t start_ns_ = 0;
};

/// No-op stand-in used when tracing is compiled out.
struct NullSpan {
  explicit NullSpan(const char*) {}
  void arg(const char*, double) {}
};

/// Process-lifetime guard wiring the EVC_TRACE=path.json convention: the
/// constructor enables the tracer when EVC_TRACE (or the explicit override)
/// names a file; the destructor disables it and writes the Chrome trace
/// there. Instantiate first thing in main(). With tracing compiled out the
/// guard warns on stderr and stays inactive; with EVC_TRACE unset it does
/// nothing and writes zero bytes.
class TraceEnvGuard {
 public:
  TraceEnvGuard();
  explicit TraceEnvGuard(std::string path_override);
  TraceEnvGuard(const TraceEnvGuard&) = delete;
  TraceEnvGuard& operator=(const TraceEnvGuard&) = delete;
  ~TraceEnvGuard();

  bool active() const { return active_; }
  const std::string& path() const { return path_; }

 private:
  void init(std::string path);
  std::string path_;
  bool active_ = false;
};

}  // namespace evc::obs

#if defined(EVC_OBS_NO_TRACING)
#define EVC_TRACE_SPAN(name)
#define EVC_TRACE_SPAN_VAR(var, name) ::evc::obs::NullSpan var(name)
#define EVC_TRACE_INSTANT(name)
#define EVC_TRACE_COUNTER(name, value)
#else
#define EVC_TRACE_CONCAT_IMPL(a, b) a##b
#define EVC_TRACE_CONCAT(a, b) EVC_TRACE_CONCAT_IMPL(a, b)
/// Anonymous RAII span covering the rest of the enclosing scope.
#define EVC_TRACE_SPAN(name) \
  ::evc::obs::TraceSpan EVC_TRACE_CONCAT(evc_trace_span_, __LINE__)(name)
/// Named RAII span, when the scope wants to attach an argument later.
#define EVC_TRACE_SPAN_VAR(var, name) ::evc::obs::TraceSpan var(name)
#define EVC_TRACE_INSTANT(name)                                         \
  do {                                                                  \
    ::evc::obs::Tracer& evc_trace_t = ::evc::obs::Tracer::global();     \
    if (evc_trace_t.enabled()) evc_trace_t.instant(name);               \
  } while (0)
#define EVC_TRACE_COUNTER(name, value)                                  \
  do {                                                                  \
    ::evc::obs::Tracer& evc_trace_t = ::evc::obs::Tracer::global();     \
    if (evc_trace_t.enabled()) evc_trace_t.counter(name, value);        \
  } while (0)
#endif
