#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>

#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/serialize.hpp"

namespace evc::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(const FlightRecord& rec) {
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
  } else {
    ring_[static_cast<std::size_t>(total_ % capacity_)] = rec;
  }
  ++total_;

  EVC_TRACE_COUNTER("flight.cabin_temp_c", rec.cabin_temp_c);
  EVC_TRACE_COUNTER("flight.soc_percent", rec.soc_percent);
  EVC_TRACE_COUNTER("flight.hvac_power_w", rec.hvac_power_w);
  EVC_TRACE_COUNTER("flight.tier", static_cast<double>(rec.tier));
}

std::size_t FlightRecorder::size() const { return ring_.size(); }

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    const std::size_t start = static_cast<std::size_t>(total_ % capacity_);
    for (std::size_t i = 0; i < capacity_; ++i)
      out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string FlightRecorder::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("evclimate-flight-v1");
  json.key("capacity").value(capacity_);
  json.key("total_recorded").value(total_);
  json.key("records");
  json.begin_array();
  for (const FlightRecord& r : snapshot()) {
    json.begin_object();
    json.key("time_s").value(r.time_s);
    json.key("dt_s").value(r.dt_s);
    json.key("supply_temp_c").value(r.supply_temp_c);
    json.key("coil_temp_c").value(r.coil_temp_c);
    json.key("recirculation").value(r.recirculation);
    json.key("air_flow_kg_s").value(r.air_flow_kg_s);
    json.key("cabin_temp_c").value(r.cabin_temp_c);
    json.key("outside_temp_c").value(r.outside_temp_c);
    json.key("soc_percent").value(r.soc_percent);
    json.key("motor_power_w").value(r.motor_power_w);
    json.key("hvac_power_w").value(r.hvac_power_w);
    json.key("tier").value(r.tier);
    json.key("cabin_health").value(static_cast<unsigned int>(r.cabin_health));
    json.key("outside_health")
        .value(static_cast<unsigned int>(r.outside_health));
    json.key("soc_health").value(static_cast<unsigned int>(r.soc_health));
    json.key("qp_iterations").value(r.qp_iterations);
    json.key("solve_time_ns").value(r.solve_time_ns);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

bool FlightRecorder::dump_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

void FlightRecorder::clear() {
  ring_.clear();
  total_ = 0;
}

void FlightRecorder::save_state(BinaryWriter& writer) const {
  writer.section("flight");
  writer.write_size(capacity_);
  writer.write_u64(total_);
  writer.write_size(ring_.size());
  for (const FlightRecord& r : ring_) {
    writer.write_f64(r.time_s);
    writer.write_f64(r.dt_s);
    writer.write_f64(r.supply_temp_c);
    writer.write_f64(r.coil_temp_c);
    writer.write_f64(r.recirculation);
    writer.write_f64(r.air_flow_kg_s);
    writer.write_f64(r.cabin_temp_c);
    writer.write_f64(r.outside_temp_c);
    writer.write_f64(r.soc_percent);
    writer.write_f64(r.motor_power_w);
    writer.write_f64(r.hvac_power_w);
    writer.write_u32(r.tier);
    writer.write_u8(r.cabin_health);
    writer.write_u8(r.outside_health);
    writer.write_u8(r.soc_health);
    writer.write_u64(r.qp_iterations);
    writer.write_u64(r.solve_time_ns);
  }
}

void FlightRecorder::load_state(BinaryReader& reader) {
  reader.expect_section("flight");
  const std::size_t capacity = reader.read_size();
  if (capacity != capacity_)
    throw SerializationError("flight recorder capacity mismatch");
  total_ = reader.read_u64();
  const std::size_t held = reader.read_size();
  if (held > capacity_)
    throw SerializationError("flight recorder holds more than its capacity");
  ring_.clear();
  ring_.reserve(capacity_);
  for (std::size_t i = 0; i < held; ++i) {
    FlightRecord r;
    r.time_s = reader.read_f64();
    r.dt_s = reader.read_f64();
    r.supply_temp_c = reader.read_f64();
    r.coil_temp_c = reader.read_f64();
    r.recirculation = reader.read_f64();
    r.air_flow_kg_s = reader.read_f64();
    r.cabin_temp_c = reader.read_f64();
    r.outside_temp_c = reader.read_f64();
    r.soc_percent = reader.read_f64();
    r.motor_power_w = reader.read_f64();
    r.hvac_power_w = reader.read_f64();
    r.tier = reader.read_u32();
    r.cabin_health = reader.read_u8();
    r.outside_health = reader.read_u8();
    r.soc_health = reader.read_u8();
    r.qp_iterations = reader.read_u64();
    r.solve_time_ns = reader.read_u64();
    ring_.push_back(r);
  }
}

}  // namespace evc::obs
