// Per-step flight recorder: a bounded ring of structured control-step
// records — the black box of a run.
//
// Each control step the simulation session samples one FlightRecord:
// applied actuation, plant/battery state, the supervisor tier that
// actuated, the FDI health triple, and the optimizer's per-step cost
// (QP iterations, solve wall time). The ring keeps the most recent
// `capacity` steps, serializes into the sim::Checkpoint envelope with the
// rest of the session (so a resumed run carries its recent history), and
// is dumped to JSON on supervisor demotion or crash — the few thousand
// steps leading up to a failure, not a full-trip trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::obs {

struct FlightRecord {
  double time_s = 0.0;
  double dt_s = 0.0;
  // Applied actuation (what left the controller, post-supervision).
  double supply_temp_c = 0.0;
  double coil_temp_c = 0.0;
  double recirculation = 0.0;
  double air_flow_kg_s = 0.0;
  // Plant / battery state after the step.
  double cabin_temp_c = 0.0;
  double outside_temp_c = 0.0;
  double soc_percent = 0.0;
  double motor_power_w = 0.0;
  double hvac_power_w = 0.0;
  // Control stack (filled via ClimateController::fill_flight_record).
  std::uint32_t tier = 0;           ///< tier that actuated (0 = preferred)
  std::uint8_t cabin_health = 0;    ///< fdi::SensorHealth as integer
  std::uint8_t outside_health = 0;
  std::uint8_t soc_health = 0;
  std::uint64_t qp_iterations = 0;  ///< this step's plan (0 between plans)
  std::uint64_t solve_time_ns = 0;  ///< this step's plan (0 between plans)
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);

  /// Append one record, overwriting the oldest when full. When the span
  /// tracer is enabled this also emits flight.* counter events so the
  /// records show up on the Perfetto timeline.
  void record(const FlightRecord& rec);

  std::size_t capacity() const { return capacity_; }
  /// Records currently held (≤ capacity).
  std::size_t size() const;
  /// Records ever seen (size() + overwritten).
  std::uint64_t total_recorded() const { return total_; }

  /// Held records, oldest first.
  std::vector<FlightRecord> snapshot() const;

  /// {"schema":"evclimate-flight-v1","total_recorded":N,"records":[...]}
  std::string to_json() const;
  /// Best-effort atomic-ish dump (write + rename not needed: the dump is
  /// diagnostic, not a checkpoint). Returns false on I/O failure.
  bool dump_json(const std::string& path) const;

  void clear();
  void save_state(BinaryWriter& writer) const;
  /// Throws SerializationError when the serialized capacity differs from
  /// this recorder's (configuration mismatch).
  void load_state(BinaryReader& reader);

 private:
  std::size_t capacity_;
  std::vector<FlightRecord> ring_;
  std::uint64_t total_ = 0;
};

}  // namespace evc::obs
