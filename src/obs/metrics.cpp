#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/json.hpp"

namespace evc::obs {

namespace {

/// Stable shard index for the calling thread: handed out round-robin on
/// first use, so up to kShards writer threads never share a cell.
std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % MetricsRegistry::kShards;
  return shard;
}

}  // namespace

MetricsRegistry::~MetricsRegistry() {
  const std::uint32_t n = registered_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i)
    delete slots_[i].load(std::memory_order_acquire);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Id MetricsRegistry::register_metric(const std::string& name,
                                                     MetricKind kind) {
  std::lock_guard<std::mutex> lock(register_mutex_);
  const std::uint32_t n = registered_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    Metric* m = slots_[i].load(std::memory_order_relaxed);
    if (m->name == name) {
      if (m->kind != kind)
        throw std::invalid_argument("metric '" + name +
                                    "' re-registered with a different kind");
      return i;
    }
  }
  if (n >= kMaxMetrics)
    throw std::length_error("metrics registry full (kMaxMetrics)");
  auto metric = std::make_unique<Metric>();
  metric->name = name;
  metric->kind = kind;
  if (kind == MetricKind::kHistogram)
    metric->shards = std::make_unique<HistogramShard[]>(kShards);
  slots_[n].store(metric.release(), std::memory_order_release);
  registered_.store(n + 1, std::memory_order_release);
  return n;
}

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name) {
  return register_metric(name, MetricKind::kCounter);
}

MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name) {
  return register_metric(name, MetricKind::kGauge);
}

MetricsRegistry::Id MetricsRegistry::histogram(const std::string& name) {
  return register_metric(name, MetricKind::kHistogram);
}

MetricsRegistry::Metric* MetricsRegistry::metric(Id id) const {
  if (id >= registered_.load(std::memory_order_acquire)) return nullptr;
  return slots_[id].load(std::memory_order_acquire);
}

void MetricsRegistry::add(Id id, std::uint64_t delta) {
  Metric* m = metric(id);
  if (m == nullptr || m->kind != MetricKind::kCounter) return;
  m->cells[thread_shard()].value.fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::set(Id id, double value) {
  Metric* m = metric(id);
  if (m == nullptr || m->kind != MetricKind::kGauge) return;
  m->cells[0].value.store(std::bit_cast<std::uint64_t>(value),
                          std::memory_order_relaxed);
}

void MetricsRegistry::observe(Id id, std::uint64_t value) {
  Metric* m = metric(id);
  if (m == nullptr || m->kind != MetricKind::kHistogram) return;
  HistogramShard& shard = m->shards[thread_shard()];
  shard.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

std::size_t MetricsRegistry::bucket_index(std::uint64_t value) {
  if (value < 16) return static_cast<std::size_t>(value);
  const std::size_t msb =
      static_cast<std::size_t>(std::bit_width(value)) - 1;  // ≥ 4
  const std::size_t sub =
      static_cast<std::size_t>(value >> (msb - 3)) & 7;     // top 3 bits
  return 8 + (msb - 3) * 8 + sub;
}

std::uint64_t MetricsRegistry::bucket_lower_bound(std::size_t index) {
  if (index < 16) return static_cast<std::uint64_t>(index);
  const std::size_t octave = (index - 8) / 8;  // msb − 3
  const std::size_t sub = (index - 8) % 8;
  return static_cast<std::uint64_t>(8 + sub) << octave;
}

namespace {

std::uint64_t quantile_from_buckets(
    const std::array<std::uint64_t, MetricsRegistry::kHistogramBuckets>& b,
    std::uint64_t count, double q) {
  if (count == 0) return 0;
  // 1-based rank of the q-quantile sample.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    seen += b[i];
    if (seen >= rank) return MetricsRegistry::bucket_lower_bound(i);
  }
  return MetricsRegistry::bucket_lower_bound(b.size() - 1);
}

}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::uint32_t n = registered_.load(std::memory_order_acquire);
  snap.metrics.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Metric* m = slots_[i].load(std::memory_order_acquire);
    MetricValue out;
    out.name = m->name;
    out.kind = m->kind;
    switch (m->kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = 0;
        for (const Cell& cell : m->cells)
          total += cell.value.load(std::memory_order_relaxed);
        out.counter = total;
        break;
      }
      case MetricKind::kGauge:
        out.gauge = std::bit_cast<double>(
            m->cells[0].value.load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        std::array<std::uint64_t, kHistogramBuckets> buckets{};
        HistogramSummary& h = out.histogram;
        for (std::size_t s = 0; s < kShards; ++s) {
          const HistogramShard& shard = m->shards[s];
          for (std::size_t b = 0; b < kHistogramBuckets; ++b)
            buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
          h.count += shard.count.load(std::memory_order_relaxed);
          h.sum += shard.sum.load(std::memory_order_relaxed);
          h.max = std::max(h.max, shard.max.load(std::memory_order_relaxed));
        }
        h.p50 = quantile_from_buckets(buckets, h.count, 0.50);
        h.p90 = quantile_from_buckets(buckets, h.count, 0.90);
        h.p99 = quantile_from_buckets(buckets, h.count, 0.99);
        break;
      }
    }
    snap.metrics.push_back(std::move(out));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(register_mutex_);
  const std::uint32_t n = registered_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    Metric* m = slots_[i].load(std::memory_order_relaxed);
    for (Cell& cell : m->cells)
      cell.value.store(0, std::memory_order_relaxed);
    if (m->shards != nullptr)
      for (std::size_t s = 0; s < kShards; ++s) {
        HistogramShard& shard = m->shards[s];
        for (auto& bucket : shard.buckets)
          bucket.store(0, std::memory_order_relaxed);
        shard.count.store(0, std::memory_order_relaxed);
        shard.sum.store(0, std::memory_order_relaxed);
        shard.max.store(0, std::memory_order_relaxed);
      }
  }
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("evclimate-metrics-v1");
  json.key("counters");
  json.begin_object();
  for (const MetricValue& m : metrics)
    if (m.kind == MetricKind::kCounter) json.key(m.name).value(m.counter);
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const MetricValue& m : metrics)
    if (m.kind == MetricKind::kGauge) json.key(m.name).value(m.gauge);
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const MetricValue& m : metrics) {
    if (m.kind != MetricKind::kHistogram) continue;
    json.key(m.name);
    json.begin_object();
    json.key("count").value(m.histogram.count);
    json.key("sum").value(m.histogram.sum);
    json.key("max").value(m.histogram.max);
    json.key("p50").value(m.histogram.p50);
    json.key("p90").value(m.histogram.p90);
    json.key("p99").value(m.histogram.p99);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "kind,name,field,value\n";
  const auto row = [&out](const char* kind, const std::string& name,
                          const char* field, const std::string& value) {
    out += kind;
    out += ',';
    out += name;
    out += ',';
    out += field;
    out += ',';
    out += value;
    out += '\n';
  };
  for (const MetricValue& m : metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        row("counter", m.name, "value", std::to_string(m.counter));
        break;
      case MetricKind::kGauge: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", m.gauge);
        row("gauge", m.name, "value", buf);
        break;
      }
      case MetricKind::kHistogram:
        row("histogram", m.name, "count", std::to_string(m.histogram.count));
        row("histogram", m.name, "sum", std::to_string(m.histogram.sum));
        row("histogram", m.name, "max", std::to_string(m.histogram.max));
        row("histogram", m.name, "p50", std::to_string(m.histogram.p50));
        row("histogram", m.name, "p90", std::to_string(m.histogram.p90));
        row("histogram", m.name, "p99", std::to_string(m.histogram.p99));
        break;
    }
  }
  return out;
}

MetricsSnapshot snapshot() { return MetricsRegistry::global().snapshot(); }

}  // namespace evc::obs
