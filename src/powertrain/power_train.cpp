#include "powertrain/power_train.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::pt {

PowerTrain::PowerTrain(VehicleParams params) : road_load_(params) {}

TractionPower PowerTrain::power(const drive::DriveSample& sample) const {
  const VehicleParams& p = params();
  TractionPower out;
  out.tractive_force_n = road_load_.tractive_force(
      sample.speed_mps, sample.accel_mps2, sample.slope_percent);
  out.mechanical_power_w = out.tractive_force_n * sample.speed_mps;

  const double wheel_speed =
      sample.speed_mps / p.wheel_radius_m;  // rad/s
  const double rotor_speed = wheel_speed * p.gear_ratio;
  const double motor_torque =
      rotor_speed > 1e-9
          ? out.mechanical_power_w / rotor_speed
          : 0.0;
  out.motor_efficiency = motor_map_.efficiency(rotor_speed, motor_torque);

  if (out.mechanical_power_w >= 0.0) {
    // Motor mode: the battery supplies the mechanical power plus losses.
    out.electrical_power_w =
        std::min(out.mechanical_power_w / out.motor_efficiency,
                 p.max_motor_power_w);
  } else {
    // Generator mode: losses reduce what reaches the battery; recuperation
    // is capped and the friction brakes take the rest.
    out.electrical_power_w =
        std::max(out.mechanical_power_w * out.motor_efficiency,
                 -p.max_regen_power_w);
  }
  return out;
}

std::vector<double> PowerTrain::power_trace(
    const drive::DriveProfile& profile) const {
  std::vector<double> trace(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i)
    trace[i] = power(profile[i]).electrical_power_w;
  return trace;
}

double PowerTrain::trip_energy_j(const drive::DriveProfile& profile) const {
  double energy = 0.0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    energy += (power(profile[i]).electrical_power_w +
               params().accessory_power_w) *
              profile.dt();
  }
  return energy;
}

}  // namespace evc::pt
