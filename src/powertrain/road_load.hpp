// Road load and tractive force (paper Eq. 1–5).
#pragma once

#include "powertrain/vehicle_params.hpp"

namespace evc::pt {

/// Breakdown of the road load force at one operating point (N).
struct RoadLoad {
  double aero_n = 0.0;     ///< Faero, Eq. 2
  double grade_n = 0.0;    ///< Fgr, Eq. 3
  double rolling_n = 0.0;  ///< Froll, Eq. 4
  double total() const { return aero_n + grade_n + rolling_n; }
};

class RoadLoadModel {
 public:
  explicit RoadLoadModel(VehicleParams params);

  const VehicleParams& params() const { return params_; }

  /// Road load Frd at speed (m/s) and slope (percent grade). Requires
  /// speed ≥ 0.
  RoadLoad road_load(double speed_mps, double slope_percent) const;

  /// Tractive force Ftr = Frd + m·a (Eq. 5). Negative values mean braking.
  double tractive_force(double speed_mps, double accel_mps2,
                        double slope_percent) const;

 private:
  VehicleParams params_;
};

}  // namespace evc::pt
