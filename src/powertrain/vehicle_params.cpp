#include "powertrain/vehicle_params.hpp"

#include "util/expect.hpp"

namespace evc::pt {

void VehicleParams::validate() const {
  EVC_EXPECT(mass_kg > 0.0, "vehicle mass must be positive");
  EVC_EXPECT(drag_coefficient > 0.0 && drag_coefficient < 2.0,
             "drag coefficient outside plausible range");
  EVC_EXPECT(frontal_area_m2 > 0.0, "frontal area must be positive");
  EVC_EXPECT(rolling_c0 >= 0.0 && rolling_c1 >= 0.0,
             "rolling resistance coefficients must be non-negative");
  EVC_EXPECT(wheel_radius_m > 0.0, "wheel radius must be positive");
  EVC_EXPECT(gear_ratio > 0.0, "gear ratio must be positive");
  EVC_EXPECT(max_motor_power_w > 0.0, "motor power limit must be positive");
  EVC_EXPECT(max_regen_power_w >= 0.0, "regen power cap must be >= 0");
  EVC_EXPECT(accessory_power_w >= 0.0, "accessory power must be >= 0");
}

VehicleParams nissan_leaf_params() { return VehicleParams{}; }

}  // namespace evc::pt
