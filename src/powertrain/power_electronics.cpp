#include "powertrain/power_electronics.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::pt {

TractionInverter::TractionInverter(double rated_power_w)
    : rated_power_w_(rated_power_w),
      // IGBT bridge shape: switching losses hurt light load, conduction
      // losses shave the top end slightly.
      efficiency_curve_({0.0, 0.02, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00},
                        {0.50, 0.80, 0.90, 0.945, 0.97, 0.975, 0.972,
                         0.965}) {
  EVC_EXPECT(rated_power_w_ > 0.0, "inverter rating must be positive");
}

double TractionInverter::efficiency(double power_w) const {
  const double load = std::min(std::abs(power_w) / rated_power_w_, 1.0);
  return efficiency_curve_(load);
}

double TractionInverter::dc_input_power(double ac_output_w) const {
  EVC_EXPECT(ac_output_w >= 0.0, "motoring output must be >= 0");
  if (ac_output_w == 0.0) return 0.0;
  return ac_output_w / efficiency(ac_output_w);
}

double TractionInverter::dc_recovered_power(double ac_input_w) const {
  EVC_EXPECT(ac_input_w >= 0.0, "regeneration input must be >= 0");
  return ac_input_w * efficiency(ac_input_w);
}

DcDcConverter::DcDcConverter(double rated_power_w, double peak_efficiency)
    : rated_power_w_(rated_power_w), peak_efficiency_(peak_efficiency) {
  EVC_EXPECT(rated_power_w_ > 0.0, "DC/DC rating must be positive");
  EVC_EXPECT(peak_efficiency_ > 0.0 && peak_efficiency_ <= 1.0,
             "DC/DC efficiency outside (0, 1]");
}

double DcDcConverter::efficiency(double output_w) const {
  EVC_EXPECT(output_w >= 0.0, "DC/DC load must be >= 0");
  // Fixed standby loss (2 % of rating) folded into an efficiency view.
  const double standby = 0.02 * rated_power_w_;
  if (output_w <= 0.0) return peak_efficiency_;
  return output_w / (output_w / peak_efficiency_ + standby);
}

double DcDcConverter::input_power(double output_w) const {
  EVC_EXPECT(output_w >= 0.0, "DC/DC load must be >= 0");
  const double standby = 0.02 * rated_power_w_;
  return output_w / peak_efficiency_ + standby;
}

}  // namespace evc::pt
