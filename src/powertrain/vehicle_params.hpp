// Vehicle-level parameters of the power train model (paper §II-B, Eq. 1–6).
//
// Defaults follow the Nissan Leaf, the vehicle the paper calibrates
// against (Hayes et al., "Simplified Electric Vehicle Power Train Models
// and Range Estimation", VPPC'11).
#pragma once

namespace evc::pt {

struct VehicleParams {
  double mass_kg = 1521.0;        ///< curb + driver
  double drag_coefficient = 0.29; ///< Cx
  double frontal_area_m2 = 2.27;  ///< A
  double rolling_c0 = 0.008;      ///< rolling resistance, constant term
  double rolling_c1 = 1.6e-6;     ///< rolling resistance, v² term (s²/m²)
  double wheel_radius_m = 0.316;
  double gear_ratio = 7.94;       ///< single-speed reduction
  double headwind_mps = 0.0;      ///< vwind in Eq. 2

  double max_motor_power_w = 80e3;
  /// Regenerative braking recuperation cap (brake blending takes the rest).
  double max_regen_power_w = 30e3;
  /// Fixed accessory draw (infotainment, pumps, 12 V loads) — the paper's
  /// third, constant consumption category.
  double accessory_power_w = 250.0;

  /// Throws std::invalid_argument if physically inconsistent.
  void validate() const;
};

/// Nissan-Leaf-class defaults (the paper's calibration target).
VehicleParams nissan_leaf_params();

}  // namespace evc::pt
