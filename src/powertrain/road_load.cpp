#include "powertrain/road_load.hpp"

#include <cmath>

#include "util/expect.hpp"
#include "util/units.hpp"

namespace evc::pt {

RoadLoadModel::RoadLoadModel(VehicleParams params) : params_(params) {
  params_.validate();
}

RoadLoad RoadLoadModel::road_load(double speed_mps,
                                  double slope_percent) const {
  EVC_EXPECT(speed_mps >= 0.0, "road load requires speed >= 0");
  RoadLoad load;
  const double v_air = speed_mps + params_.headwind_mps;
  load.aero_n = 0.5 * consts::kAirDensity * params_.drag_coefficient *
                params_.frontal_area_m2 * v_air * std::abs(v_air);
  load.grade_n = params_.mass_kg * consts::kGravity *
                 std::sin(units::grade_percent_to_angle(slope_percent));
  // Rolling resistance vanishes at standstill; quadratic speed correction
  // per Eq. 4.
  load.rolling_n =
      speed_mps > 0.0
          ? params_.mass_kg * consts::kGravity *
                (params_.rolling_c0 + params_.rolling_c1 * speed_mps * speed_mps)
          : 0.0;
  return load;
}

double RoadLoadModel::tractive_force(double speed_mps, double accel_mps2,
                                     double slope_percent) const {
  return road_load(speed_mps, slope_percent).total() +
         params_.mass_kg * accel_mps2;
}

}  // namespace evc::pt
