// Power train model (paper §II-B): drive sample → electrical motor power.
//
// Motor mode:      Pe = Ftr·v / ηm            (Eq. 6)
// Generator mode:  Pe = Ftr·v · ηm, clamped to the recuperation cap; the
//                  friction brakes absorb the remainder.
#pragma once

#include "drivecycle/drive_profile.hpp"
#include "powertrain/motor_map.hpp"
#include "powertrain/road_load.hpp"
#include "powertrain/vehicle_params.hpp"

namespace evc::pt {

/// Electrical power breakdown at one drive sample (W; negative = into the
/// battery via regeneration).
struct TractionPower {
  double tractive_force_n = 0.0;
  double mechanical_power_w = 0.0;  ///< Ftr·v at the wheel
  double motor_efficiency = 1.0;
  double electrical_power_w = 0.0;  ///< battery-side motor draw
};

class PowerTrain {
 public:
  explicit PowerTrain(VehicleParams params);

  const VehicleParams& params() const { return road_load_.params(); }

  /// Motor electrical power for one environment sample.
  TractionPower power(const drive::DriveSample& sample) const;

  /// Motor power trace for an entire profile (W, one entry per sample).
  std::vector<double> power_trace(const drive::DriveProfile& profile) const;

  /// Energy drawn from the battery over a profile (J), including regen
  /// credit and the constant accessory load.
  double trip_energy_j(const drive::DriveProfile& profile) const;

 private:
  RoadLoadModel road_load_;
  MotorEfficiencyMap motor_map_;
};

}  // namespace evc::pt
