// Electrical motor efficiency map (paper §II-B: "ηm is highly dependent on
// the motor rotational speed and the generated torque").
//
// The map is a bilinear lookup over (rotor speed rad/s, |torque| N·m) with
// the characteristic PMSM shape: a broad ≈92 % island at mid speed /
// mid torque, dropping toward standstill (copper losses dominate), very low
// torque (iron/windage losses dominate) and the corners of the envelope.
#pragma once

#include "util/interp.hpp"

namespace evc::pt {

class MotorEfficiencyMap {
 public:
  /// Leaf-class 80 kW PMSM map.
  MotorEfficiencyMap();

  /// Efficiency in (0, 1] for a rotor speed (rad/s) and shaft torque (N·m,
  /// sign ignored — the map is symmetric between motor and generator mode).
  double efficiency(double rotor_speed_rad_s, double torque_nm) const;

  double peak_efficiency() const { return peak_; }

 private:
  LookupTable2D map_;
  double peak_ = 0.0;
};

}  // namespace evc::pt
