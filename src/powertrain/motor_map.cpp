#include "powertrain/motor_map.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::pt {

MotorEfficiencyMap::MotorEfficiencyMap() {
  // Speed grid 0..1000 rad/s (Leaf motor redlines around 10k rpm ≈ 1047),
  // torque grid 0..280 N·m.
  const std::vector<double> speed{0, 50, 100, 200, 300, 450, 600, 800, 1000};
  const std::vector<double> torque{0, 10, 30, 60, 100, 150, 200, 250, 280};

  // Analytic loss model generates the grid: copper loss ∝ T², iron loss ∝ ω
  // and ω², windage ∝ ω³, fixed electronics loss. The resulting island shape
  // matches published Leaf dynamometer maps to a few percent.
  auto eff_at = [](double w, double t) {
    const double p_mech = std::max(w * t, 1.0);
    const double copper = 0.18 * t * t;        // I²R, torque-driven
    const double iron = 0.04 * std::pow(w, 1.5);  // hysteresis + eddy
    const double windage = 2e-7 * w * w * w;
    const double fixed = 300.0;                // inverter + control
    const double losses = copper + iron + windage + fixed;
    return std::clamp(p_mech / (p_mech + losses), 0.05, 0.95);
  };

  std::vector<double> grid;
  grid.reserve(speed.size() * torque.size());
  double peak = 0.0;
  for (double w : speed)
    for (double t : torque) {
      const double e = eff_at(std::max(w, 20.0), std::max(t, 5.0));
      grid.push_back(e);
      peak = std::max(peak, e);
    }
  map_ = LookupTable2D(speed, torque, grid);
  peak_ = peak;
}

double MotorEfficiencyMap::efficiency(double rotor_speed_rad_s,
                                      double torque_nm) const {
  EVC_EXPECT(rotor_speed_rad_s >= 0.0, "rotor speed must be >= 0");
  return map_(rotor_speed_rad_s, std::abs(torque_nm));
}

}  // namespace evc::pt
