// Power-electronics efficiency models (paper §I: "Other components inside
// EV, e.g. power converters, inverters, electrical motor, etc. demonstrate
// different efficiency in various conditions. Hence, the BMS may optimize
// the battery or HESS usage based on the components' efficiency map.").
//
// * TractionInverter — DC→AC stage between pack and motor. Efficiency
//   curve: poor at light load (switching losses dominate), ~0.97 plateau.
// * DcDcConverter — HV→12 V accessory rail.
// Both are load-dependent maps usable by the trip planner's energy
// prediction; the motor map in motor_map.cpp folds a *fixed* inverter loss,
// these models expose the load dependence explicitly.
#pragma once

#include "util/interp.hpp"

namespace evc::pt {

class TractionInverter {
 public:
  /// `rated_power_w` scales the loss curve (Leaf-class 80 kW default).
  explicit TractionInverter(double rated_power_w = 80e3);

  double rated_power_w() const { return rated_power_w_; }

  /// Conversion efficiency in (0, 1] at a given throughput (|W|, either
  /// direction — the bridge is symmetric).
  double efficiency(double power_w) const;

  /// DC-side power for a desired AC-side output (motoring, W ≥ 0).
  double dc_input_power(double ac_output_w) const;
  /// DC-side power recovered for an AC-side regeneration input (W ≥ 0).
  double dc_recovered_power(double ac_input_w) const;

 private:
  double rated_power_w_;
  LookupTable1D efficiency_curve_;  ///< vs load fraction
};

class DcDcConverter {
 public:
  DcDcConverter(double rated_power_w = 1500.0, double peak_efficiency = 0.93);

  /// HV-side draw for a 12 V-side load (W ≥ 0).
  double input_power(double output_w) const;
  double efficiency(double output_w) const;

 private:
  double rated_power_w_;
  double peak_efficiency_;
};

}  // namespace evc::pt
