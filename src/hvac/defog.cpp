#include "hvac/defog.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace evc::hvac {

void DefogParams::validate() const {
  EVC_EXPECT(glass_coupling >= 0.0 && glass_coupling <= 1.0,
             "glass coupling outside [0, 1]");
  EVC_EXPECT(safety_margin_k >= 0.0, "safety margin must be >= 0");
  EVC_EXPECT(defog_recirculation_cap >= 0.0 &&
                 defog_recirculation_cap <= 1.0,
             "defog recirculation cap outside [0, 1]");
}

double windshield_temp_c(const DefogParams& params, double cabin_temp_c,
                         double outside_temp_c) {
  params.validate();
  return cabin_temp_c -
         params.glass_coupling * (cabin_temp_c - outside_temp_c);
}

double fog_margin_k(const DefogParams& params, double cabin_temp_c,
                    double outside_temp_c, double cabin_humidity_ratio) {
  EVC_EXPECT(cabin_humidity_ratio >= 0.0, "humidity ratio must be >= 0");
  const double glass =
      windshield_temp_c(params, cabin_temp_c, outside_temp_c);
  if (cabin_humidity_ratio <= 1e-9) return 100.0;  // bone-dry air: no risk
  return glass - dew_point_c(cabin_humidity_ratio);
}

double recirculation_limit(const DefogParams& params, double hvac_max_dr,
                           double cabin_temp_c, double outside_temp_c,
                           double cabin_humidity_ratio) {
  EVC_EXPECT(hvac_max_dr >= 0.0 && hvac_max_dr <= 1.0,
             "recirculation maximum outside [0, 1]");
  const double margin = fog_margin_k(params, cabin_temp_c, outside_temp_c,
                                     cabin_humidity_ratio);
  if (margin >= params.safety_margin_k) return hvac_max_dr;
  return std::min(hvac_max_dr, params.defog_recirculation_cap);
}

}  // namespace evc::hvac
