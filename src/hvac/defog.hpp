// Windshield fog-risk assessment and the fresh-air override.
//
// The safety constraint real automotive climate controllers must respect:
// when the windshield's inner surface falls below the cabin air's dew
// point, condensation fogs the glass. High recirculation — exactly what
// the MPC prefers for efficiency in extreme ambients — raises cabin
// humidity and with it the dew point, so an efficiency-optimal controller
// needs a fog guard. This module computes the risk from the humidity model
// and provides the standard mitigation: cap the recirculation fraction
// when the margin shrinks.
#pragma once

#include "hvac/humidity.hpp"

namespace evc::hvac {

struct DefogParams {
  /// Windshield inner-surface temperature model: Tglass = Tz − k·(Tz − To)
  /// (conduction through the glass pulls the inner surface toward outside;
  /// single glazing swept by outside air at speed couples strongly).
  double glass_coupling = 0.55;
  /// Required margin between glass temperature and cabin dew point (K).
  double safety_margin_k = 2.0;
  /// Recirculation cap applied while fogging is imminent.
  double defog_recirculation_cap = 0.2;

  void validate() const;
};

/// Windshield inner-surface temperature estimate.
double windshield_temp_c(const DefogParams& params, double cabin_temp_c,
                         double outside_temp_c);

/// Margin (K) between the windshield surface and the cabin dew point;
/// negative = actively fogging.
double fog_margin_k(const DefogParams& params, double cabin_temp_c,
                    double outside_temp_c, double cabin_humidity_ratio);

/// The recirculation limit to apply: the configured HVAC maximum when the
/// margin is healthy, the defog cap when the margin is below the safety
/// threshold.
double recirculation_limit(const DefogParams& params, double hvac_max_dr,
                           double cabin_temp_c, double outside_temp_c,
                           double cabin_humidity_ratio);

}  // namespace evc::hvac
