#include "hvac/comfort.hpp"

#include <algorithm>
#include <cmath>

#include "hvac/humidity.hpp"
#include "util/expect.hpp"

namespace evc::hvac {

namespace {

/// Clothing surface temperature by damped fixed-point iteration (ISO 7730).
double clothing_surface_temp(double m_w, double icl, double fcl, double ta,
                             double tr, double var) {
  double tcl = ta + 0.5 * (35.7 - 0.028 * m_w - ta);  // warm start
  for (int iter = 0; iter < 150; ++iter) {
    const double hc_nat = 2.38 * std::pow(std::abs(tcl - ta), 0.25);
    const double hc_forced = 12.1 * std::sqrt(var);
    const double hc = std::max(hc_nat, hc_forced);
    const double radiant = 3.96e-8 * fcl *
                           (std::pow(tcl + 273.0, 4) - std::pow(tr + 273.0, 4));
    const double next =
        35.7 - 0.028 * m_w - icl * (radiant + fcl * hc * (tcl - ta));
    const double damped = 0.5 * (tcl + next);
    if (std::abs(damped - tcl) < 1e-7) return damped;
    tcl = damped;
  }
  return tcl;
}

}  // namespace

double predicted_mean_vote(const ComfortConditions& c) {
  EVC_EXPECT(c.metabolic_rate_met > 0.0, "metabolic rate must be positive");
  EVC_EXPECT(c.clothing_clo >= 0.0, "clothing insulation must be >= 0");
  EVC_EXPECT(c.air_velocity_m_s >= 0.0, "air velocity must be >= 0");
  EVC_EXPECT(c.relative_humidity >= 0.0 && c.relative_humidity <= 1.0,
             "relative humidity outside [0, 1]");

  const double m = c.metabolic_rate_met * 58.15;  // W/m²
  const double w = 0.0;                           // no external work
  const double m_w = m - w;
  const double icl = 0.155 * c.clothing_clo;  // m²K/W
  const double fcl =
      icl <= 0.078 ? 1.0 + 1.29 * icl : 1.05 + 0.645 * icl;
  const double pa =
      c.relative_humidity * saturation_pressure_pa(c.air_temp_c);
  const double var = std::max(c.air_velocity_m_s, 0.05);

  const double tcl = clothing_surface_temp(m_w, icl, fcl, c.air_temp_c,
                                           c.radiant_temp_c, var);
  const double hc = std::max(2.38 * std::pow(std::abs(tcl - c.air_temp_c),
                                             0.25),
                             12.1 * std::sqrt(var));

  // Heat-balance terms (ISO 7730 Eq. 1).
  const double skin_diffusion = 3.05e-3 * (5733.0 - 6.99 * m_w - pa);
  const double sweating = std::max(0.42 * (m_w - 58.15), 0.0);
  const double latent_resp = 1.7e-5 * m * (5867.0 - pa);
  const double dry_resp = 0.0014 * m * (34.0 - c.air_temp_c);
  const double radiant =
      3.96e-8 * fcl *
      (std::pow(tcl + 273.0, 4) - std::pow(c.radiant_temp_c + 273.0, 4));
  const double convective = fcl * hc * (tcl - c.air_temp_c);

  const double load = m_w - skin_diffusion - sweating - latent_resp -
                      dry_resp - radiant - convective;
  return (0.303 * std::exp(-0.036 * m) + 0.028) * load;
}

double predicted_percentage_dissatisfied(double pmv) {
  return 100.0 -
         95.0 * std::exp(-0.03353 * std::pow(pmv, 4) -
                         0.2179 * pmv * pmv);
}

ComfortBand comfort_band(ComfortConditions conditions, double pmv_limit) {
  EVC_EXPECT(pmv_limit > 0.0, "PMV limit must be positive");
  const double radiant_offset =
      conditions.radiant_temp_c - conditions.air_temp_c;
  const auto pmv_at = [&](double air_temp) {
    ComfortConditions c = conditions;
    c.air_temp_c = air_temp;
    c.radiant_temp_c = air_temp + radiant_offset;
    return predicted_mean_vote(c);
  };
  // PMV is monotone increasing in temperature: bisect each band edge.
  const auto solve = [&](double target) {
    double lo = 0.0, hi = 50.0;
    EVC_EXPECT(pmv_at(lo) < target && pmv_at(hi) > target,
               "comfort band outside the 0–50 °C search window");
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (pmv_at(mid) < target)
        lo = mid;
      else
        hi = mid;
    }
    return 0.5 * (lo + hi);
  };
  ComfortBand band;
  band.low_c = solve(-pmv_limit);
  band.high_c = solve(pmv_limit);
  return band;
}

}  // namespace evc::hvac
