#include "hvac/humidity.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/units.hpp"

namespace evc::hvac {

double saturation_pressure_pa(double temp_c) {
  EVC_EXPECT(temp_c > -60.0 && temp_c < 80.0,
             "temperature outside psychrometric validity");
  // Magnus formula (over water), coefficients per WMO.
  return 610.94 * std::exp(17.625 * temp_c / (temp_c + 243.04));
}

double humidity_ratio(double temp_c, double relative_humidity,
                      double pressure_pa) {
  EVC_EXPECT(relative_humidity >= 0.0 && relative_humidity <= 1.0,
             "relative humidity outside [0, 1]");
  EVC_EXPECT(pressure_pa > 1000.0, "implausible total pressure");
  const double pv = relative_humidity * saturation_pressure_pa(temp_c);
  EVC_EXPECT(pv < pressure_pa, "vapor pressure exceeds total pressure");
  return 0.62198 * pv / (pressure_pa - pv);
}

double relative_humidity(double temp_c, double humidity_ratio_kg_kg,
                         double pressure_pa) {
  EVC_EXPECT(humidity_ratio_kg_kg >= 0.0, "humidity ratio must be >= 0");
  const double pv = pressure_pa * humidity_ratio_kg_kg /
                    (0.62198 + humidity_ratio_kg_kg);
  return pv / saturation_pressure_pa(temp_c);
}

double moist_enthalpy(double temp_c, double humidity_ratio_kg_kg) {
  EVC_EXPECT(humidity_ratio_kg_kg >= 0.0, "humidity ratio must be >= 0");
  return consts::kAirHeatCapacity * temp_c +
         humidity_ratio_kg_kg * (kLatentHeatJPerKg + kVaporCp * temp_c);
}

double dew_point_c(double humidity_ratio_kg_kg, double pressure_pa) {
  EVC_EXPECT(humidity_ratio_kg_kg > 0.0,
             "dew point undefined for perfectly dry air");
  const double pv = pressure_pa * humidity_ratio_kg_kg /
                    (0.62198 + humidity_ratio_kg_kg);
  // Invert the Magnus formula.
  const double ln_ratio = std::log(pv / 610.94);
  return 243.04 * ln_ratio / (17.625 - ln_ratio);
}

double equivalent_dry_air_temp(double temp_c, double humidity_ratio_kg_kg) {
  return moist_enthalpy(temp_c, humidity_ratio_kg_kg) /
         consts::kAirHeatCapacity;
}

void MoistureParams::validate() const {
  EVC_EXPECT(air_mass_kg > 0.0, "cabin air mass must be positive");
  EVC_EXPECT(occupant_vapor_kg_s >= 0.0, "vapor emission must be >= 0");
  EVC_EXPECT(occupants >= 0, "occupant count must be >= 0");
}

CabinMoistureModel::CabinMoistureModel(MoistureParams params,
                                       double initial_humidity_ratio)
    : params_(params), w_z_(initial_humidity_ratio) {
  params_.validate();
  EVC_EXPECT(initial_humidity_ratio >= 0.0 && initial_humidity_ratio < 0.05,
             "initial humidity ratio outside plausible range");
}

MoistureStep CabinMoistureModel::step(double mz_kg_s, double dr, double to_c,
                                      double w_outside, double coil_temp_c,
                                      double cabin_temp_c, double dt_s) {
  EVC_EXPECT(mz_kg_s >= 0.0, "air flow must be >= 0");
  EVC_EXPECT(dr >= 0.0 && dr <= 1.0, "recirculation outside [0, 1]");
  EVC_EXPECT(w_outside >= 0.0, "outside humidity ratio must be >= 0");
  EVC_EXPECT(dt_s > 0.0, "moisture step must be positive");
  (void)to_c;  // mixing is by humidity ratio; temperature enters via RH out

  MoistureStep out;

  // Mixer: humidity ratios blend by dry-air mass fractions (Eq. 9's moist
  // counterpart).
  const double w_mixed = (1.0 - dr) * w_outside + dr * w_z_;

  // Cooling coil: if the coil surface is below the mixed air's dew point,
  // the outlet saturates at the coil temperature and the difference
  // condenses out.
  double w_supply = w_mixed;
  if (w_mixed > 0.0 && coil_temp_c < dew_point_c(w_mixed)) {
    const double w_sat_coil = evc::hvac::humidity_ratio(coil_temp_c, 1.0);
    w_supply = std::min(w_mixed, w_sat_coil);
  }
  out.condensate_kg_s = mz_kg_s * (w_mixed - w_supply);
  out.latent_coil_load_w = out.condensate_kg_s * kLatentHeatJPerKg;

  // Cabin moisture balance: supply air exchanges with the cabin; occupants
  // add vapor.
  const double vapor_gen =
      params_.occupant_vapor_kg_s * static_cast<double>(params_.occupants);
  const double dw_dt =
      (mz_kg_s * (w_supply - w_z_) + vapor_gen) / params_.air_mass_kg;
  w_z_ = std::max(w_z_ + dw_dt * dt_s, 0.0);

  out.cabin_humidity_ratio = w_z_;
  out.cabin_relative_humidity = relative_humidity(cabin_temp_c, w_z_);
  return out;
}

}  // namespace evc::hvac
