#include "hvac/hvac_params.hpp"

#include "util/expect.hpp"

namespace evc::hvac {

void HvacParams::validate() const {
  EVC_EXPECT(cabin_capacitance_j_per_k > 0.0,
             "cabin thermal capacitance must be positive");
  EVC_EXPECT(air_cp > 0.0, "air heat capacity must be positive");
  EVC_EXPECT(wall_ua_w_per_k >= 0.0, "wall UA must be >= 0");
  EVC_EXPECT(heater_efficiency > 0.0 && heater_efficiency <= 1.0,
             "heater efficiency must be in (0, 1]");
  EVC_EXPECT(cooler_efficiency > 0.0,
             "cooler efficiency (COP-folded) must be positive");
  EVC_EXPECT(fan_coefficient >= 0.0, "fan coefficient must be >= 0");
  EVC_EXPECT(min_air_flow_kg_s >= 0.0 &&
                 max_air_flow_kg_s > min_air_flow_kg_s,
             "air flow bounds inconsistent");
  EVC_EXPECT(comfort_min_c < comfort_max_c, "comfort zone inverted");
  EVC_EXPECT(target_temp_c >= comfort_min_c && target_temp_c <= comfort_max_c,
             "target temperature outside comfort zone");
  EVC_EXPECT(min_coil_temp_c < max_supply_temp_c,
             "coil/supply temperature bounds inconsistent");
  EVC_EXPECT(max_recirculation >= 0.0 && max_recirculation <= 1.0,
             "recirculation bound must be in [0, 1]");
  EVC_EXPECT(max_heater_power_w > 0.0 && max_cooler_power_w > 0.0 &&
                 max_fan_power_w > 0.0,
             "power limits must be positive");
}

HvacParams default_hvac_params() { return HvacParams{}; }

}  // namespace evc::hvac
