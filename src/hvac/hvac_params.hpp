// Single-zone VAV HVAC parameters (paper §II-C, Eq. 7–12, Fig. 4) and the
// control constraints C1–C10 (§III-A).
//
// Defaults are i-MiEV-class (Umezu & Noyama, SAE 2010) tuned so the plant
// reproduces the transient behaviour reported for automotive cabins
// (Knibbs et al. air-change rates; Huang et al. cabin conditioning).
#pragma once

namespace evc::hvac {

struct HvacParams {
  // --- Thermal plant (Eq. 7–9) ---
  /// Thermal capacitance of cabin air + interior mass (J/K).
  double cabin_capacitance_j_per_k = 1.3e5;
  /// Air heat capacity cp (J/(kg·K)).
  double air_cp = 1005.0;
  /// Wall heat exchange cx·Ax (W/K) between cabin and outside. Automotive
  /// cabins are poorly insulated; ~100 W/K reproduces the conditioning
  /// loads of the paper's Table I.
  double wall_ua_w_per_k = 100.0;
  /// Solar radiation thermal load offset Qsolar (W); constant during a trip.
  double solar_load_w = 600.0;

  // --- Coils and fan (Eq. 10–12) ---
  double heater_efficiency = 0.9;  ///< ηh (resistive PTC heater)
  /// ηc — folds compressor COP and coil effectiveness into one parameter,
  /// as the paper does ("efficiency parameters describing the operating
  /// characteristics").
  double cooler_efficiency = 1.5;
  double fan_coefficient = 5600.0;  ///< kf (W·s²/kg²)

  // --- Constraints C1–C10 ---
  double min_air_flow_kg_s = 0.02;   ///< C1 lower (fresh-air minimum)
  double max_air_flow_kg_s = 0.25;   ///< C1 upper
  double comfort_min_c = 22.0;       ///< C2 lower
  double comfort_max_c = 26.0;       ///< C2 upper
  double min_coil_temp_c = 4.0;      ///< C5 (evaporator frost limit)
  double max_supply_temp_c = 60.0;   ///< C6 (heater outlet limit)
  double max_recirculation = 0.9;    ///< C7 (fresh-air regulation)
  double max_heater_power_w = 6000.0;  ///< C8
  double max_cooler_power_w = 6000.0;  ///< C9
  double max_fan_power_w = 400.0;      ///< C10

  double target_temp_c = 24.0;  ///< Ttarget in the cost function (Eq. 21)

  void validate() const;
};

/// i-MiEV-class defaults used throughout the experiments.
HvacParams default_hvac_params();

/// Actuator inputs i = [Ts, Tc, dr, mz]′ (paper §III-A).
struct HvacInputs {
  double supply_temp_c = 24.0;  ///< Ts, heater outlet / supply air
  double coil_temp_c = 24.0;    ///< Tc, cooler outlet
  double recirculation = 0.5;   ///< dr ∈ [0, dr_max]
  double air_flow_kg_s = 0.02;  ///< mz
};

/// Electrical power breakdown of the HVAC (W).
struct HvacPower {
  double heater_w = 0.0;  ///< Ph, Eq. 10
  double cooler_w = 0.0;  ///< Pc, Eq. 11
  double fan_w = 0.0;     ///< Pf, Eq. 12
  double total() const { return heater_w + cooler_w + fan_w; }
};

}  // namespace evc::hvac
