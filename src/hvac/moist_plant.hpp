// Moist-air HVAC plant: the single-zone plant composed with the cabin
// moisture balance, charging the cooling coil for the latent load of
// condensation.
//
// This quantifies what the paper's equivalent-dry-air-temperature
// simplification (§II-C) absorbs: in humid climates a large share of the
// cooling power dehumidifies rather than cools, so the dry-air plant
// underestimates Pc. bench_ablation_humidity compares both plants.
#pragma once

#include "hvac/humidity.hpp"
#include "hvac/hvac_plant.hpp"

namespace evc::hvac {

struct MoistStepResult {
  HvacStepResult dry;        ///< the dry-air plant's result
  MoistureStep moisture;     ///< cabin humidity state and condensation
  double latent_cooler_w = 0.0;  ///< extra electrical power at the cooler
  double total_power_w = 0.0;    ///< dry power + latent share
};

class MoistHvacPlant {
 public:
  MoistHvacPlant(HvacParams params, MoistureParams moisture,
                 double initial_cabin_temp_c,
                 double initial_relative_humidity);

  double cabin_temp_c() const { return plant_.cabin_temp_c(); }
  double cabin_humidity_ratio() const { return moisture_.humidity_ratio(); }
  const HvacParams& params() const { return plant_.params(); }

  /// Apply inputs for one step against outside air at (to_c, outside_rh).
  MoistStepResult step(const HvacInputs& requested, double to_c,
                       double outside_rh, double dt_s);

 private:
  HvacPlant plant_;
  CabinMoistureModel moisture_;
};

}  // namespace evc::hvac
