// Cabin thermal dynamics (paper Eq. 7–8).
//
//   Mc·dTz/dt = Q + mz·cp·(Ts − Tz),   Q = Qsolar + cx·Ax·(To − Tz)
//
// With constant inputs over a step this is a linear first-order ODE with a
// closed-form solution; the plant uses the exact step, and tests cross-check
// it against RK4 integration of the same right-hand side.
#pragma once

#include "hvac/hvac_params.hpp"

namespace evc::hvac {

class CabinThermalModel {
 public:
  explicit CabinThermalModel(HvacParams params);

  const HvacParams& params() const { return params_; }

  /// dTz/dt for cabin temp `tz`, supply temp `ts`, flow `mz`, outside `to`.
  double derivative(double tz_c, double ts_c, double mz_kg_s,
                    double to_c) const;

  /// Exact cabin temperature after `dt` seconds with inputs held constant.
  double step_exact(double tz_c, double ts_c, double mz_kg_s, double to_c,
                    double dt_s) const;

  /// Steady-state cabin temperature for constant inputs.
  double equilibrium(double ts_c, double mz_kg_s, double to_c) const;

 private:
  HvacParams params_;
};

}  // namespace evc::hvac
