// Moist-air extension of the HVAC model.
//
// The paper's §II-C treats humidity implicitly: "the temperature represents
// an equivalent dry air temperature at which the dry air has the same
// specific enthalpy as the actual moist air mixture", because humidity "is
// not typically directly measured or controlled". This module makes the
// implicit explicit: standard psychrometrics (saturation pressure, humidity
// ratio, enthalpy, dew point), the equivalent dry-air temperature the paper
// uses, a cabin moisture balance (occupants + ventilation), and the latent
// load that condensation puts on the cooling coil — so the effect of the
// dry-air simplification can be quantified (see bench_ablation_humidity).
#pragma once

namespace evc::hvac {

/// Standard atmospheric pressure used throughout (Pa).
inline constexpr double kAtmPressurePa = 101325.0;
/// Latent heat of vaporization of water near cabin temperatures (J/kg).
inline constexpr double kLatentHeatJPerKg = 2.45e6;
/// Heat capacity of water vapor (J/(kg·K)).
inline constexpr double kVaporCp = 1860.0;

// --- Psychrometric primitives (Magnus form over water) ---

/// Saturation vapor pressure at `temp_c` (Pa). Valid −40…+60 °C.
double saturation_pressure_pa(double temp_c);

/// Humidity ratio w (kg water / kg dry air) at a relative humidity in
/// [0, 1] and total pressure.
double humidity_ratio(double temp_c, double relative_humidity,
                      double pressure_pa = kAtmPressurePa);

/// Relative humidity in [0, ~] from a humidity ratio (can exceed 1 for
/// supersaturated states before condensation is applied).
double relative_humidity(double temp_c, double humidity_ratio_kg_kg,
                         double pressure_pa = kAtmPressurePa);

/// Specific enthalpy of moist air per kg of dry air (J/kg), 0 °C datum.
double moist_enthalpy(double temp_c, double humidity_ratio_kg_kg);

/// Dew point of air with the given humidity ratio (°C).
double dew_point_c(double humidity_ratio_kg_kg,
                   double pressure_pa = kAtmPressurePa);

/// The paper's equivalent dry-air temperature: the temperature at which
/// dry air (cp = 1005) has the same specific enthalpy as the moist mixture.
double equivalent_dry_air_temp(double temp_c, double humidity_ratio_kg_kg);

// --- Cabin moisture balance + coil condensation ---

struct MoistureParams {
  /// Effective moisture capacitance: kg of dry air whose humidity ratio
  /// the cabin state represents (air mass + hygroscopic surfaces).
  double air_mass_kg = 8.0;
  /// Occupant latent emission (kg water vapor per second); ≈50 g/h/person.
  double occupant_vapor_kg_s = 1.4e-5;
  int occupants = 1;

  void validate() const;
};

/// One step's humidity outcome.
struct MoistureStep {
  double cabin_humidity_ratio = 0.0;
  double cabin_relative_humidity = 0.0;  ///< at the given cabin temperature
  double condensate_kg_s = 0.0;          ///< water removed at the coil
  double latent_coil_load_w = 0.0;       ///< extra thermal load on the coil
};

class CabinMoistureModel {
 public:
  CabinMoistureModel(MoistureParams params, double initial_humidity_ratio);

  const MoistureParams& params() const { return params_; }
  double humidity_ratio() const { return w_z_; }

  /// Advance one step: outside air at (to_c, w_o) mixed at recirculation
  /// `dr`, passed over a coil at `coil_temp_c` (condensing if below the dew
  /// point), supplied to the cabin at mass flow `mz`; occupants add vapor.
  MoistureStep step(double mz_kg_s, double dr, double to_c, double w_outside,
                    double coil_temp_c, double cabin_temp_c, double dt_s);

 private:
  MoistureParams params_;
  double w_z_;  ///< cabin humidity ratio
};

}  // namespace evc::hvac
