#include "hvac/multizone.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hvac/hvac_plant.hpp"
#include "sim/ode.hpp"
#include "util/expect.hpp"

namespace evc::hvac {

namespace {

void check_fractions(const std::vector<double>& f, std::size_t n,
                     const char* what) {
  EVC_EXPECT(f.size() == n,
             std::string(what) + ": needs one entry per zone");
  double sum = 0.0;
  for (double x : f) {
    EVC_EXPECT(x >= 0.0, std::string(what) + ": fractions must be >= 0");
    sum += x;
  }
  EVC_EXPECT(std::abs(sum - 1.0) < 1e-9,
             std::string(what) + ": fractions must sum to 1");
}

}  // namespace

void MultiZoneParams::validate() const {
  base.validate();
  const std::size_t n = num_zones();
  EVC_EXPECT(n >= 2, "multi-zone model needs at least two zones");
  check_fractions(capacitance_fraction, n, "capacitance_fraction");
  check_fractions(wall_fraction, n, "wall_fraction");
  check_fractions(solar_fraction, n, "solar_fraction");
  EVC_EXPECT(interzone_ua.size() == n * (n - 1) / 2,
             "interzone_ua needs one entry per zone pair");
  for (double k : interzone_ua)
    EVC_EXPECT(k >= 0.0, "interzone conductance must be >= 0");
}

MultiZoneCabinModel::MultiZoneCabinModel(MultiZoneParams params)
    : params_(std::move(params)) {
  params_.validate();
}

std::vector<double> MultiZoneCabinModel::derivatives(
    const std::vector<double>& zone_temps_c, double ts_c, double mz_kg_s,
    const std::vector<double>& split, double to_c) const {
  const std::size_t n = num_zones();
  EVC_EXPECT(zone_temps_c.size() == n, "zone temperature count mismatch");
  EVC_EXPECT(split.size() == n, "flow split count mismatch");
  EVC_EXPECT(mz_kg_s >= 0.0, "air flow must be >= 0");
  const HvacParams& b = params_.base;

  std::vector<double> ddt(n, 0.0);
  // Pairwise conduction, upper-triangular indexing.
  std::size_t pair = 0;
  std::vector<double> conduction(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j, ++pair) {
      const double q =
          params_.interzone_ua[pair] * (zone_temps_c[j] - zone_temps_c[i]);
      conduction[i] += q;
      conduction[j] -= q;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double mc = b.cabin_capacitance_j_per_k *
                      params_.capacitance_fraction[i];
    const double q = b.solar_load_w * params_.solar_fraction[i] +
                     b.wall_ua_w_per_k * params_.wall_fraction[i] *
                         (to_c - zone_temps_c[i]) +
                     conduction[i] +
                     split[i] * mz_kg_s * b.air_cp * (ts_c - zone_temps_c[i]);
    ddt[i] = q / mc;
  }
  return ddt;
}

std::vector<double> MultiZoneCabinModel::step(
    const std::vector<double>& zone_temps_c, double ts_c, double mz_kg_s,
    const std::vector<double>& split, double to_c, double dt_s) const {
  EVC_EXPECT(dt_s > 0.0, "multi-zone step must be positive");
  const sim::OdeRhs rhs = [&](double, const std::vector<double>& x,
                              std::vector<double>& dxdt) {
    dxdt = derivatives(x, ts_c, mz_kg_s, split, to_c);
  };
  return sim::integrate_fixed(rhs, zone_temps_c, 0.0, dt_s,
                              std::min(dt_s, 1.0));
}

double MultiZoneCabinModel::return_temp(
    const std::vector<double>& zone_temps_c,
    const std::vector<double>& split) const {
  EVC_EXPECT(zone_temps_c.size() == num_zones() &&
                 split.size() == num_zones(),
             "zone count mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < num_zones(); ++i)
    acc += split[i] * zone_temps_c[i];
  return acc;
}

MultiZonePlant::MultiZonePlant(MultiZoneParams params,
                               const std::vector<double>& initial_zone_temps_c)
    : cabin_(std::move(params)), zone_temps_(initial_zone_temps_c) {
  EVC_EXPECT(zone_temps_.size() == cabin_.num_zones(),
             "initial zone temperature count mismatch");
}

double MultiZonePlant::mean_cabin_temp_c() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < zone_temps_.size(); ++i)
    acc += cabin_.params().capacitance_fraction[i] * zone_temps_[i];
  return acc;
}

MultiZonePlant::StepResult MultiZonePlant::step(
    const HvacInputs& requested, const std::vector<double>& requested_split,
    double outside_temp_c, double dt_s) {
  const std::size_t n = cabin_.num_zones();
  StepResult result;

  // Normalize the split; uniform if unspecified.
  result.split.assign(n, 1.0 / static_cast<double>(n));
  if (!requested_split.empty()) {
    EVC_EXPECT(requested_split.size() == n, "flow split count mismatch");
    double sum = 0.0;
    for (double s : requested_split) {
      EVC_EXPECT(s >= 0.0, "flow split must be >= 0");
      sum += s;
    }
    if (sum > 1e-9)
      for (std::size_t i = 0; i < n; ++i)
        result.split[i] = requested_split[i] / sum;
  }

  // Reuse the single-zone coil/fan stage with the flow-weighted return
  // temperature as the recirculated stream.
  const double t_return = cabin_.return_temp(zone_temps_, result.split);
  HvacPlant stage(cabin_.params().base, t_return);
  result.applied = stage.sanitize(requested, outside_temp_c, t_return);
  result.mixed_temp_c = stage.mixed_temp(result.applied.recirculation,
                                         outside_temp_c, t_return);
  result.power = stage.power_for(result.applied, result.mixed_temp_c);

  zone_temps_ = cabin_.step(zone_temps_, result.applied.supply_temp_c,
                            result.applied.air_flow_kg_s, result.split,
                            outside_temp_c, dt_s);
  result.zone_temps_c = zone_temps_;
  return result;
}

}  // namespace evc::hvac
