// Multi-zone cabin extension (paper §II-C: the VAV system offers "precise
// control of the temperature and humidity in multi-zone or single-zone";
// the paper then assumes single-zone — this module implements the general
// case so the simplification can be quantified).
//
// N thermal zones (e.g. front/rear rows) form a linear network:
//   Mc_i·dTi/dt = Qsolar_i + UA_i·(To − Ti) + Σ_j K_ij·(Tj − Ti)
//                 + s_i·mz·cp·(Ts − Ti)
// with one shared supply (fan + coils as in the single-zone plant) whose
// flow is split across zones by fractions s_i (per-zone VAV dampers), and
// the return air mixed flow-weighted.
#pragma once

#include <vector>

#include "hvac/hvac_params.hpp"

namespace evc::hvac {

struct MultiZoneParams {
  /// Base single-zone parameters (coils, fan, constraints, totals).
  HvacParams base;
  /// Fraction of the cabin thermal capacitance per zone (sums to 1).
  std::vector<double> capacitance_fraction{0.55, 0.45};
  /// Fraction of the wall UA per zone (sums to 1).
  std::vector<double> wall_fraction{0.6, 0.4};
  /// Fraction of the solar load per zone (sums to 1; windshield biases
  /// the front).
  std::vector<double> solar_fraction{0.7, 0.3};
  /// Inter-zone conductances K_ij (W/K), upper-triangular flattened:
  /// for 2 zones a single front↔rear value.
  std::vector<double> interzone_ua{25.0};

  std::size_t num_zones() const { return capacitance_fraction.size(); }
  void validate() const;
};

class MultiZoneCabinModel {
 public:
  explicit MultiZoneCabinModel(MultiZoneParams params);

  const MultiZoneParams& params() const { return params_; }
  std::size_t num_zones() const { return params_.num_zones(); }

  /// Zone temperature derivatives for supply temp `ts`, total flow `mz`,
  /// per-zone flow split `split` (sums to 1), outside `to`.
  std::vector<double> derivatives(const std::vector<double>& zone_temps_c,
                                  double ts_c, double mz_kg_s,
                                  const std::vector<double>& split,
                                  double to_c) const;

  /// RK4 step of the zone network over `dt_s`.
  std::vector<double> step(const std::vector<double>& zone_temps_c,
                           double ts_c, double mz_kg_s,
                           const std::vector<double>& split, double to_c,
                           double dt_s) const;

  /// Flow-weighted return-air temperature.
  double return_temp(const std::vector<double>& zone_temps_c,
                     const std::vector<double>& split) const;

 private:
  MultiZoneParams params_;
};

/// Multi-zone plant: the single-zone coil/fan stage feeding the zone
/// network. Inputs are the single-zone HvacInputs plus the flow split.
class MultiZonePlant {
 public:
  MultiZonePlant(MultiZoneParams params,
                 const std::vector<double>& initial_zone_temps_c);

  const MultiZoneCabinModel& model() const { return cabin_; }
  const std::vector<double>& zone_temps_c() const { return zone_temps_; }
  /// Capacitance-weighted mean cabin temperature (what a single-zone
  /// controller "sees").
  double mean_cabin_temp_c() const;

  struct StepResult {
    HvacInputs applied;
    std::vector<double> split;
    double mixed_temp_c = 0.0;
    HvacPower power;
    std::vector<double> zone_temps_c;
  };

  /// Apply inputs with a requested flow split (normalized internally; a
  /// uniform split is used if empty).
  StepResult step(const HvacInputs& requested,
                  const std::vector<double>& requested_split,
                  double outside_temp_c, double dt_s);

 private:
  MultiZoneCabinModel cabin_;
  std::vector<double> zone_temps_;
};

}  // namespace evc::hvac
