// Fanger thermal comfort model (PMV/PPD per ISO 7730).
//
// The paper's comfort zone (constraint C2 and refs [11]) is a temperature
// band; the underlying science is Fanger's Predicted Mean Vote. This module
// implements the full steady-state PMV — air/radiant temperature, humidity,
// air velocity, metabolic rate, clothing — and the Predicted Percentage
// Dissatisfied, so experiments can report occupant comfort as PPD instead
// of a raw temperature error, and the comfort-zone band can be *derived*
// (the band where |PMV| ≤ 0.5) rather than assumed.
#pragma once

namespace evc::hvac {

struct ComfortConditions {
  double air_temp_c = 24.0;
  /// Mean radiant temperature; in a vehicle cabin close to air temperature
  /// except under strong sun.
  double radiant_temp_c = 24.0;
  double air_velocity_m_s = 0.1;  ///< at the occupant
  double relative_humidity = 0.5;
  double metabolic_rate_met = 1.2;  ///< seated, light activity (driving)
  double clothing_clo = 0.6;        ///< light clothing
};

/// Predicted Mean Vote on the 7-point scale (−3 cold … +3 hot).
/// Iteratively solves the clothing-surface heat balance (ISO 7730).
double predicted_mean_vote(const ComfortConditions& conditions);

/// Predicted Percentage Dissatisfied (%, ≥ 5 at PMV = 0).
double predicted_percentage_dissatisfied(double pmv);

/// The air-temperature band where |PMV| ≤ `pmv_limit` with the other
/// conditions held — the derived comfort zone. Returned as {low, high} °C.
struct ComfortBand {
  double low_c = 0.0;
  double high_c = 0.0;
};
ComfortBand comfort_band(ComfortConditions conditions,
                         double pmv_limit = 0.5);

}  // namespace evc::hvac
