// The complete single-zone VAV HVAC plant (paper Fig. 4): air mixer with
// recirculation damper, cooling coil, heating coil, variable-speed fan, and
// the cabin thermal mass.
//
// This is the physical plant the controllers act on — the stand-in for the
// paper's AMESim model. It sanitizes requested actuator inputs into the
// physically achievable envelope (C1, C3–C10), computes the electrical
// power of the coils and fan (Eq. 10–12), and advances the cabin state with
// the exact linear-ODE step.
#pragma once

#include "hvac/cabin_model.hpp"
#include "hvac/hvac_params.hpp"

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::hvac {

/// Result of applying inputs for one step.
struct HvacStepResult {
  HvacInputs applied;       ///< inputs after envelope sanitation
  double mixed_temp_c = 0;  ///< Tm, Eq. 9
  HvacPower power;          ///< electrical draw during the step
  double cabin_temp_c = 0;  ///< Tz after the step
};

class HvacPlant {
 public:
  HvacPlant(HvacParams params, double initial_cabin_temp_c);

  const HvacParams& params() const { return cabin_.params(); }
  double cabin_temp_c() const { return cabin_temp_c_; }
  void reset(double cabin_temp_c) { cabin_temp_c_ = cabin_temp_c; }
  const CabinThermalModel& cabin_model() const { return cabin_; }

  /// Clamp requested inputs into the physically achievable envelope:
  /// flow/damper bounds, coil temperature limits, the ordering
  /// Tc ≤ min(Tm, Ts), and the coil/fan power caps (power caps translate
  /// into achievable coil temperature spans at the requested flow).
  HvacInputs sanitize(const HvacInputs& requested, double outside_temp_c,
                      double cabin_temp_c) const;

  /// Electrical power for (already sanitized) inputs at the current mixed
  /// air temperature.
  HvacPower power_for(const HvacInputs& inputs, double mixed_temp_c) const;

  /// Mixed air temperature Tm for a recirculation fraction (Eq. 9).
  double mixed_temp(double recirculation, double outside_temp_c,
                    double cabin_temp_c) const;

  /// Apply inputs for `dt` seconds: sanitize, compute power, advance Tz.
  HvacStepResult step(const HvacInputs& requested, double outside_temp_c,
                      double dt_s);

  void save_state(BinaryWriter& writer) const;
  void load_state(BinaryReader& reader);

 private:
  CabinThermalModel cabin_;
  double cabin_temp_c_;
};

}  // namespace evc::hvac
