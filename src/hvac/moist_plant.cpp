#include "hvac/moist_plant.hpp"

#include "util/expect.hpp"

namespace evc::hvac {

MoistHvacPlant::MoistHvacPlant(HvacParams params, MoistureParams moisture,
                               double initial_cabin_temp_c,
                               double initial_relative_humidity)
    : plant_(params, initial_cabin_temp_c),
      moisture_(moisture, humidity_ratio(initial_cabin_temp_c,
                                         initial_relative_humidity)) {}

MoistStepResult MoistHvacPlant::step(const HvacInputs& requested, double to_c,
                                     double outside_rh, double dt_s) {
  EVC_EXPECT(outside_rh >= 0.0 && outside_rh <= 1.0,
             "outside relative humidity outside [0, 1]");
  MoistStepResult out;
  const double cabin_before = plant_.cabin_temp_c();
  out.dry = plant_.step(requested, to_c, dt_s);
  out.moisture = moisture_.step(
      out.dry.applied.air_flow_kg_s, out.dry.applied.recirculation, to_c,
      humidity_ratio(to_c, outside_rh), out.dry.applied.coil_temp_c,
      cabin_before, dt_s);
  // The condensation's latent heat is removed by the same coil at the same
  // folded efficiency (Eq. 11's energy-difference view extended to
  // enthalpy).
  out.latent_cooler_w =
      out.moisture.latent_coil_load_w / params().cooler_efficiency;
  out.total_power_w = out.dry.power.total() + out.latent_cooler_w;
  return out;
}

}  // namespace evc::hvac
