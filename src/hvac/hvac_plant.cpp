#include "hvac/hvac_plant.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::hvac {

HvacPlant::HvacPlant(HvacParams params, double initial_cabin_temp_c)
    : cabin_(params), cabin_temp_c_(initial_cabin_temp_c) {}

double HvacPlant::mixed_temp(double recirculation, double outside_temp_c,
                             double cabin_temp_c) const {
  return (1.0 - recirculation) * outside_temp_c +
         recirculation * cabin_temp_c;
}

HvacInputs HvacPlant::sanitize(const HvacInputs& requested,
                               double outside_temp_c,
                               double cabin_temp_c) const {
  const HvacParams& p = params();
  HvacInputs in = requested;

  // C1 + C10: flow bounds; the fan power cap translates to a max flow.
  double flow_cap = p.max_air_flow_kg_s;
  if (p.fan_coefficient > 0.0)
    flow_cap = std::min(flow_cap,
                        std::sqrt(p.max_fan_power_w / p.fan_coefficient));
  in.air_flow_kg_s =
      std::clamp(in.air_flow_kg_s, p.min_air_flow_kg_s, flow_cap);

  // C7: damper range.
  in.recirculation = std::clamp(in.recirculation, 0.0, p.max_recirculation);

  const double tm = mixed_temp(in.recirculation, outside_temp_c, cabin_temp_c);

  // C4 + C5 + C9: the cooler can only cool, not below the frost limit, and
  // not faster than its power cap allows at this flow.
  double tc_min = p.min_coil_temp_c;
  if (in.air_flow_kg_s > 0.0)
    tc_min = std::max(tc_min, tm - p.max_cooler_power_w * p.cooler_efficiency /
                                       (p.air_cp * in.air_flow_kg_s));
  in.coil_temp_c = std::clamp(in.coil_temp_c, std::min(tc_min, tm), tm);

  // C3 + C6 + C8: the heater can only heat, up to its outlet limit and
  // power cap.
  double ts_max = p.max_supply_temp_c;
  if (in.air_flow_kg_s > 0.0)
    ts_max = std::min(ts_max,
                      in.coil_temp_c + p.max_heater_power_w *
                                           p.heater_efficiency /
                                           (p.air_cp * in.air_flow_kg_s));
  in.supply_temp_c = std::clamp(in.supply_temp_c, in.coil_temp_c, ts_max);

  return in;
}

HvacPower HvacPlant::power_for(const HvacInputs& inputs,
                               double mixed_temp_c) const {
  const HvacParams& p = params();
  HvacPower power;
  power.heater_w = p.air_cp / p.heater_efficiency * inputs.air_flow_kg_s *
                   (inputs.supply_temp_c - inputs.coil_temp_c);
  power.cooler_w = p.air_cp / p.cooler_efficiency * inputs.air_flow_kg_s *
                   (mixed_temp_c - inputs.coil_temp_c);
  power.fan_w = p.fan_coefficient * inputs.air_flow_kg_s *
                inputs.air_flow_kg_s;
  EVC_ENSURE(power.heater_w >= -1e-9 && power.cooler_w >= -1e-9,
             "sanitized inputs must give non-negative coil power");
  power.heater_w = std::max(power.heater_w, 0.0);
  power.cooler_w = std::max(power.cooler_w, 0.0);
  return power;
}

HvacStepResult HvacPlant::step(const HvacInputs& requested,
                               double outside_temp_c, double dt_s) {
  EVC_EXPECT(dt_s > 0.0, "HVAC step duration must be positive");
  HvacStepResult result;
  result.applied = sanitize(requested, outside_temp_c, cabin_temp_c_);
  result.mixed_temp_c =
      mixed_temp(result.applied.recirculation, outside_temp_c, cabin_temp_c_);
  result.power = power_for(result.applied, result.mixed_temp_c);
  cabin_temp_c_ = cabin_.step_exact(cabin_temp_c_,
                                    result.applied.supply_temp_c,
                                    result.applied.air_flow_kg_s,
                                    outside_temp_c, dt_s);
  result.cabin_temp_c = cabin_temp_c_;
  return result;
}

void HvacPlant::save_state(BinaryWriter& writer) const {
  writer.section("hvac_plant");
  writer.write_f64(cabin_temp_c_);
}

void HvacPlant::load_state(BinaryReader& reader) {
  reader.expect_section("hvac_plant");
  cabin_temp_c_ = reader.read_f64();
}

}  // namespace evc::hvac
