#include "hvac/cabin_model.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace evc::hvac {

CabinThermalModel::CabinThermalModel(HvacParams params) : params_(params) {
  params_.validate();
}

double CabinThermalModel::derivative(double tz_c, double ts_c, double mz_kg_s,
                                     double to_c) const {
  EVC_EXPECT(mz_kg_s >= 0.0, "air flow must be >= 0");
  const double q = params_.solar_load_w +
                   params_.wall_ua_w_per_k * (to_c - tz_c);
  return (q + mz_kg_s * params_.air_cp * (ts_c - tz_c)) /
         params_.cabin_capacitance_j_per_k;
}

double CabinThermalModel::equilibrium(double ts_c, double mz_kg_s,
                                      double to_c) const {
  EVC_EXPECT(mz_kg_s >= 0.0, "air flow must be >= 0");
  const double conductance =
      params_.wall_ua_w_per_k + mz_kg_s * params_.air_cp;
  EVC_EXPECT(conductance > 0.0, "cabin has no thermal coupling");
  return (params_.solar_load_w + params_.wall_ua_w_per_k * to_c +
          mz_kg_s * params_.air_cp * ts_c) /
         conductance;
}

double CabinThermalModel::step_exact(double tz_c, double ts_c, double mz_kg_s,
                                     double to_c, double dt_s) const {
  EVC_EXPECT(dt_s >= 0.0, "time step must be >= 0");
  const double conductance =
      params_.wall_ua_w_per_k + mz_kg_s * params_.air_cp;
  if (conductance <= 0.0) {
    // Pure integrator (no coupling): only the solar load acts.
    return tz_c +
           params_.solar_load_w / params_.cabin_capacitance_j_per_k * dt_s;
  }
  const double tz_inf = equilibrium(ts_c, mz_kg_s, to_c);
  const double rate = conductance / params_.cabin_capacitance_j_per_k;
  return tz_inf + (tz_c - tz_inf) * std::exp(-rate * dt_s);
}

}  // namespace evc::hvac
