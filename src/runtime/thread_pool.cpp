#include "runtime/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "obs/trace.hpp"

namespace evc::rt {

// Runs one queued task under a "pool.task" span carrying how long it sat in
// the queue — the signal that distinguishes a saturated pool from slow
// tasks. Tracer disabled: a plain call.
void ThreadPool::run_task(Task& task) {
#if !defined(EVC_OBS_NO_TRACING)
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    EVC_TRACE_SPAN_VAR(task_span, "pool.task");
    const std::uint64_t now = tracer.now_ns();
    task_span.arg("queue_ns",
                  task.enqueue_ns != 0 && now > task.enqueue_ns
                      ? static_cast<double>(now - task.enqueue_ns)
                      : 0.0);
    task.fn();
    return;
  }
#endif
  task.fn();
}

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this]() { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    Task inline_task{std::move(task), 0};
    run_task(inline_task);
    return;
  }
  std::uint64_t enqueue_ns = 0;
#if !defined(EVC_OBS_NO_TRACING)
  if (obs::Tracer::global().enabled())
    enqueue_ns = obs::Tracer::global().now_ns();
#endif
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Task{std::move(task), enqueue_ns});
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(task);
  }
}

std::size_t ThreadPool::default_concurrency() {
  if (const char* env = std::getenv("EVC_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0 && parsed <= 256) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_concurrency() - 1);
  return pool;
}

}  // namespace evc::rt
