#include "runtime/thread_pool.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evc::rt {

// Runs one queued task under a "pool.task" span carrying how long it sat in
// the queue — the signal that distinguishes a saturated pool from slow
// tasks. Tracer disabled: a plain call.
void ThreadPool::run_task(Task& task) {
#if !defined(EVC_OBS_NO_TRACING)
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    EVC_TRACE_SPAN_VAR(task_span, "pool.task");
    const std::uint64_t now = tracer.now_ns();
    task_span.arg("queue_ns",
                  task.enqueue_ns != 0 && now > task.enqueue_ns
                      ? static_cast<double>(now - task.enqueue_ns)
                      : 0.0);
    task.fn();
    return;
  }
#endif
  task.fn();
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (const char* env = std::getenv("EVC_POOL_STEAL"))
    steal_first_ = std::strcmp(env, "force") == 0;
  steals_metric_ = obs::MetricsRegistry::global().counter("pool.steals");
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i]() { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    Task inline_task{std::move(task), 0};
    run_task(inline_task);
    return;
  }
  std::uint64_t enqueue_ns = 0;
#if !defined(EVC_OBS_NO_TRACING)
  if (obs::Tracer::global().enabled())
    enqueue_ns = obs::Tracer::global().now_ns();
#endif
  const std::size_t idx =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[idx]->mutex);
    queues_[idx]->tasks.push_back(Task{std::move(task), enqueue_ns});
  }
  // The count increments under the pool mutex so a worker that just
  // evaluated the wait predicate cannot miss this task's notify.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_count_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

bool ThreadPool::pop_own(std::size_t self, Task& out) {
  WorkerQueue& q = *queues_[self];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.front());
  q.tasks.pop_front();
  return true;
}

bool ThreadPool::try_steal(std::size_t self, Task& out) {
  const std::size_t n = queues_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % n];
#if !defined(EVC_OBS_NO_TRACING)
    obs::Tracer& tracer = obs::Tracer::global();
    const std::uint64_t start = tracer.enabled() ? tracer.now_ns() : 0;
#endif
    bool stolen = false;
    {
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        // Steal from the back: the opposite end from the owner's pops, so
        // a steal and an owner pop of a 2+ deep deque never want the same
        // task, and the oldest work (most likely already cold) migrates.
        out = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        stolen = true;
      }
    }
    if (stolen) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::global().add(steals_metric_);
#if !defined(EVC_OBS_NO_TRACING)
      if (start != 0)
        tracer.record_span("pool.steal", start, tracer.now_ns() - start,
                           "victim",
                           static_cast<double>((self + offset) % n));
#endif
      return true;
    }
  }
  return false;
}

bool ThreadPool::try_acquire(std::size_t self, Task& out) {
  if (steal_first_)
    return try_steal(self, out) || pop_own(self, out);
  return pop_own(self, out) || try_steal(self, out);
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    Task task;
    if (try_acquire(self, task)) {
      task_count_.fetch_sub(1, std::memory_order_relaxed);
      run_task(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] {
      return stop_ || task_count_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_ && task_count_.load(std::memory_order_relaxed) <= 0)
      return;  // stop requested and every submitted task claimed
  }
}

std::size_t ThreadPool::default_concurrency() {
  if (const char* env = std::getenv("EVC_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0 && parsed <= 256) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_concurrency() - 1);
  return pool;
}

}  // namespace evc::rt
