#include "runtime/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace evc::rt {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this]() { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t ThreadPool::default_concurrency() {
  if (const char* env = std::getenv("EVC_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0 && parsed <= 256) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_concurrency() - 1);
  return pool;
}

}  // namespace evc::rt
