#include "runtime/fleet.hpp"

#include <algorithm>
#include <chrono>

#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/random.hpp"

namespace evc::rt {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Quantile by partial sort: exact, destructive on `samples`.
std::uint64_t quantile_ns(std::vector<std::uint64_t>& samples, double q) {
  if (samples.empty()) return 0;
  const std::size_t rank = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

/// One concurrent lane: the reusable controller plus this lane's latency
/// samples for the current run() call.
struct FleetEngine::Slot {
  std::unique_ptr<core::MpcClimateController> controller;
  std::vector<std::uint64_t> step_ns;
};

FleetEngine::FleetEngine(core::EvParams params,
                         const drive::DriveProfile& profile,
                         FleetOptions options)
    : params_(params), profile_(profile), options_(options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  vehicles_metric_ = reg.counter("fleet.vehicles");
  steps_metric_ = reg.counter("fleet.steps");
  step_ns_metric_ = reg.histogram("fleet.step_ns");
  vehicles_per_sec_metric_ = reg.gauge("fleet.vehicles_per_sec");
}

FleetEngine::~FleetEngine() = default;

FleetEngine::Slot& FleetEngine::acquire_slot() {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  if (!free_slots_.empty()) {
    Slot* slot = free_slots_.back();
    free_slots_.pop_back();
    return *slot;
  }
  slots_.push_back(std::make_unique<Slot>());
  Slot& slot = *slots_.back();
  slot.controller = core::make_mpc_controller(params_, options_.mpc);
  return slot;
}

void FleetEngine::release_slot(Slot& slot) {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  free_slots_.push_back(&slot);
}

FleetVehicleResult FleetEngine::run_vehicle(Slot& slot,
                                            std::size_t index) const {
  // Initial conditions come from the vehicle index alone — splitmix's own
  // stream-advance constant spaces the seeds — so the draw is identical no
  // matter which slot or thread serves the vehicle.
  SplitMix64 rng(options_.seed + 0x9E3779B97F4A7C15ull *
                                     static_cast<std::uint64_t>(index));
  core::SimulationOptions sim_opts;
  sim_opts.record_traces = false;
  sim_opts.flight_recorder_capacity = 16;
  sim_opts.initial_soc_percent = rng.uniform(options_.min_initial_soc_percent,
                                             options_.max_initial_soc_percent);
  sim_opts.initial_cabin_temp_c = rng.uniform(
      options_.min_initial_cabin_temp_c, options_.max_initial_cabin_temp_c);

  // The session borrows the slot's controller and resets it on
  // construction, so controller reuse cannot leak state between vehicles.
  core::SimulationSession session(params_, *slot.controller, profile_,
                                  sim_opts);

  FleetVehicleResult out;
  out.initial_soc_percent = sim_opts.initial_soc_percent;
  out.initial_cabin_temp_c = *sim_opts.initial_cabin_temp_c;

  const std::size_t cap = options_.max_steps_per_vehicle == 0
                              ? session.total_steps()
                              : std::min(options_.max_steps_per_vehicle,
                                         session.total_steps());
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  if (options_.collect_step_latency) {
    for (std::size_t s = 0; s < cap; ++s) {
      const Clock::time_point t0 = Clock::now();
      session.advance();
      const std::uint64_t ns = ns_between(t0, Clock::now());
      slot.step_ns.push_back(ns);
      reg.observe(step_ns_metric_, ns);
    }
  } else {
    for (std::size_t s = 0; s < cap; ++s) session.advance();
  }

  out.steps = cap;
  out.final_soc_percent = session.soc_percent();
  out.final_cabin_temp_c = session.cabin_temp_c();
  out.metrics = session.finish().metrics;
  reg.add(vehicles_metric_);
  reg.add(steps_metric_, cap);
  return out;
}

FleetSummary FleetEngine::run(ThreadPool& pool) {
  EVC_TRACE_SPAN_VAR(fleet_span, "fleet.run");
  fleet_span.arg("vehicles", static_cast<double>(options_.vehicles));

  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (auto& slot : slots_) slot->step_ns.clear();
  }

  FleetSummary summary;
  summary.vehicles.resize(options_.vehicles);
  const Clock::time_point start = Clock::now();
  parallel_for(pool, options_.vehicles, [&](std::size_t i) {
    Slot& slot = acquire_slot();
    try {
      summary.vehicles[i] = run_vehicle(slot, i);
    } catch (...) {
      release_slot(slot);
      throw;
    }
    release_slot(slot);
  });
  summary.wall_ns = ns_between(start, Clock::now());

  for (const FleetVehicleResult& v : summary.vehicles)
    summary.total_steps += v.steps;
  if (summary.wall_ns > 0)
    summary.vehicles_per_second = static_cast<double>(options_.vehicles) /
                                  (static_cast<double>(summary.wall_ns) * 1e-9);
  obs::MetricsRegistry::global().set(vehicles_per_sec_metric_,
                                     summary.vehicles_per_second);

  if (options_.collect_step_latency) {
    std::vector<std::uint64_t> all;
    all.reserve(summary.total_steps);
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const auto& slot : slots_)
      all.insert(all.end(), slot->step_ns.begin(), slot->step_ns.end());
    summary.step_p50_ns = quantile_ns(all, 0.50);
    summary.step_p99_ns = quantile_ns(all, 0.99);
    if (!all.empty()) summary.step_max_ns = *std::max_element(all.begin(), all.end());
  }
  return summary;
}

FleetSummary FleetEngine::run() { return run(ThreadPool::global()); }

}  // namespace evc::rt
