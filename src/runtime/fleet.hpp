// Fleet-scale batched MPC engine: N independent vehicles, one shared pool.
//
// The paper evaluates one vehicle at a time; a fleet operator (or a
// hardware-in-the-loop farm) runs thousands of independent closed-loop
// climate-control simulations against shared drive-cycle and ambient data.
// This engine batches those runs:
//
//   * one *slot* per concurrent lane, each owning a battery lifetime-aware
//     MPC controller (the expensive object: QP workspace, warm-start state)
//     that is reset and reused across every vehicle the slot serves — no
//     per-vehicle controller construction;
//   * the drive profile and EV parameters are shared read-only across all
//     vehicles; per-vehicle initial conditions (state of charge, cabin
//     soak temperature) are drawn from a SplitMix64 stream seeded by
//     `seed` and the vehicle index — never by slot or thread — so the
//     fleet result is bit-identical to running the vehicles serially,
//     regardless of worker count or stealing (tested under both);
//   * per-step latency is sampled around every SimulationSession::advance
//     and published to the `fleet.step_ns` histogram, with exact p50/p99
//     recomputed over all samples in the summary (the bench's tail-latency
//     axis). Vehicle/step counts land on `fleet.vehicles`/`fleet.steps`,
//     throughput on the `fleet.vehicles_per_sec` gauge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/ev_model.hpp"
#include "core/metrics.hpp"
#include "core/mpc_controller.hpp"
#include "drivecycle/drive_profile.hpp"
#include "runtime/thread_pool.hpp"

namespace evc::rt {

struct FleetOptions {
  std::size_t vehicles = 64;
  /// Cap on control steps per vehicle; 0 runs each vehicle's full profile.
  std::size_t max_steps_per_vehicle = 0;
  /// Seed of the per-vehicle variation stream (initial SoC / cabin soak).
  std::uint64_t seed = 2024;
  double min_initial_soc_percent = 60.0;
  double max_initial_soc_percent = 95.0;
  double min_initial_cabin_temp_c = 28.0;
  double max_initial_cabin_temp_c = 40.0;
  /// Shared MPC configuration for every vehicle's controller.
  core::MpcOptions mpc;
  /// Sample wall time around each advance() (off saves two clock reads per
  /// step when only throughput matters).
  bool collect_step_latency = true;
};

/// Per-vehicle outcome, slot-indexed by vehicle — deterministic.
struct FleetVehicleResult {
  double initial_soc_percent = 0.0;
  double initial_cabin_temp_c = 0.0;
  double final_soc_percent = 0.0;
  double final_cabin_temp_c = 0.0;
  std::size_t steps = 0;
  core::TripMetrics metrics;
};

struct FleetSummary {
  std::vector<FleetVehicleResult> vehicles;
  std::uint64_t total_steps = 0;
  std::uint64_t wall_ns = 0;
  double vehicles_per_second = 0.0;
  /// Exact quantiles over every step's advance() wall time (zero when
  /// collect_step_latency is off).
  std::uint64_t step_p50_ns = 0;
  std::uint64_t step_p99_ns = 0;
  std::uint64_t step_max_ns = 0;
};

class FleetEngine {
 public:
  /// `profile` is borrowed read-only and must outlive the engine.
  FleetEngine(core::EvParams params, const drive::DriveProfile& profile,
              FleetOptions options);
  ~FleetEngine();
  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Run the fleet on `pool`'s helpers plus the calling thread. Vehicle
  /// results are independent of scheduling; throughput/latency fields are
  /// wall-clock measurements of this call. Reusable: slots (and their
  /// controllers) persist across calls.
  FleetSummary run(ThreadPool& pool);
  /// Run on the process-global pool.
  FleetSummary run();

  const FleetOptions& options() const { return options_; }

 private:
  struct Slot;
  Slot& acquire_slot();
  void release_slot(Slot& slot);
  FleetVehicleResult run_vehicle(Slot& slot, std::size_t index) const;

  core::EvParams params_;
  const drive::DriveProfile& profile_;
  FleetOptions options_;

  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<Slot>> slots_;   ///< all slots ever created
  std::vector<Slot*> free_slots_;              ///< currently idle

  std::uint32_t vehicles_metric_ = 0;
  std::uint32_t steps_metric_ = 0;
  std::uint32_t step_ns_metric_ = 0;
  std::uint32_t vehicles_per_sec_metric_ = 0;
};

}  // namespace evc::rt
