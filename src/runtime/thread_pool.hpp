// Thread-pool batch runner for embarrassingly parallel scenario sweeps.
//
// The bench/figure harness runs many independent closed-loop simulations
// (one per drive cycle, ambient temperature, or ablation variant). Each
// scenario owns its controllers and RNG state, so they parallelize with no
// shared mutable state; parallel_map writes each scenario's result into its
// own slot, making the output bit-identical to a serial run regardless of
// worker count or scheduling.
//
// Worker count: EVC_THREADS in the environment overrides (total concurrency
// including the calling thread; 1 = serial), otherwise hardware concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace evc::rt {

/// Fixed-size pool of worker threads draining a task queue. The pool holds
/// *helper* threads: batch helpers below also run work on the calling
/// thread, so a pool of size 0 is valid and means "serial".
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. With zero workers the task runs inline.
  void submit(std::function<void()> task);

  /// Total desired concurrency: EVC_THREADS if set and positive, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  static std::size_t default_concurrency();

  /// Process-wide pool with default_concurrency() − 1 helper threads,
  /// created on first use. EVC_THREADS=1 therefore makes every
  /// parallel_for/parallel_map on the global pool strictly serial.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;  ///< tracer timestamp; 0 while disabled
  };

  void worker_loop();
  static void run_task(Task& task);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Run fn(i) for every i in [0, n) using `pool`'s helpers plus the calling
/// thread. Returns after all iterations finish; the first exception thrown
/// by fn is rethrown (remaining iterations are skipped once one fails).
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const std::size_t helpers = n > 1 ? std::min(pool.size(), n - 1) : 0;

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  const auto drain = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::atomic<std::size_t> pending{helpers};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (std::size_t w = 0; w < helpers; ++w) {
    pool.submit([&]() {
      drain();
      // Notify while still holding the lock: the caller's wait cannot
      // observe pending == 0 and return (destroying the stack-local cv and
      // mutex) until this helper is done touching them.
      std::lock_guard<std::mutex> lock(done_mutex);
      pending.fetch_sub(1, std::memory_order_relaxed);
      done_cv.notify_one();
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending.load() == 0; });
  if (error) std::rethrow_exception(error);
}

template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  parallel_for(ThreadPool::global(), n, std::forward<Fn>(fn));
}

/// parallel_for that collects results: out[i] = fn(i). Slot-indexed, so the
/// result vector is identical to the serial `for` loop's.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
  return parallel_map<T>(ThreadPool::global(), n, std::forward<Fn>(fn));
}

}  // namespace evc::rt
