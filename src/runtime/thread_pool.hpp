// Work-stealing thread-pool batch runner for embarrassingly parallel
// scenario sweeps.
//
// The bench/figure harness and the fleet engine run many independent
// closed-loop simulations (one per drive cycle, ambient temperature,
// ablation variant, or vehicle). Each scenario owns its controllers and RNG
// state, so they parallelize with no shared mutable state; parallel_map
// writes each scenario's result into its own slot, making the output
// bit-identical to a serial run regardless of worker count or scheduling.
//
// Scheduling: each worker owns a deque. submit() places tasks round-robin
// across the worker deques; a worker pops its own deque from the front and,
// when empty, steals from the back of a sibling's — so a worker stuck
// behind one long task (a vehicle whose solver hit a hard step) cannot
// strand the tasks queued behind it. Steals are counted in the
// `pool.steals` metric and traced as "pool.steal" spans; queued→run latency
// stays on the "pool.task" span as `queue_ns`.
//
// EVC_POOL_STEAL=force inverts the scan order (steal before own deque) so
// determinism tests can drive every task through the steal path.
//
// Worker count: EVC_THREADS in the environment overrides (total concurrency
// including the calling thread; 1 = serial), otherwise hardware concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace evc::rt {

/// Fixed-size pool of worker threads draining per-worker task deques with
/// work stealing. The pool holds *helper* threads: batch helpers below also
/// run work on the calling thread, so a pool of size 0 is valid and means
/// "serial".
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task on the next worker deque (round-robin). With zero
  /// workers the task runs inline.
  void submit(std::function<void()> task);

  /// Completed steals since construction (also published as the
  /// `pool.steals` counter metric).
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Total desired concurrency: EVC_THREADS if set and positive, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  static std::size_t default_concurrency();

  /// Process-wide pool with default_concurrency() − 1 helper threads,
  /// created on first use. EVC_THREADS=1 therefore makes every
  /// parallel_for/parallel_map on the global pool strictly serial.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;  ///< tracer timestamp; 0 while disabled
  };
  /// One worker's deque. Cache-line-aligned so two workers' queue locks
  /// never share a line. The per-queue mutex (not a lock-free deque) is
  /// deliberate: tasks here are whole simulations, microseconds to
  /// milliseconds each, so queue-transfer cost is noise and the mutex keeps
  /// the steal protocol trivially correct under TSan.
  struct alignas(64) WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t self);
  /// Own-deque pop (front) then steal scan (back of each sibling, round
  /// robin from self+1) — or the reverse with EVC_POOL_STEAL=force.
  bool try_acquire(std::size_t self, Task& out);
  bool pop_own(std::size_t self, Task& out);
  bool try_steal(std::size_t self, Task& out);
  static void run_task(Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  /// Tasks pushed minus tasks claimed. Pushes increment under mutex_ (so a
  /// waiting worker cannot miss the wakeup); claims decrement after the pop,
  /// so the count can be transiently negative — the wait predicate uses > 0.
  std::atomic<std::int64_t> task_count_{0};
  std::atomic<std::uint64_t> next_queue_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::uint32_t steals_metric_ = 0;
  bool steal_first_ = false;  ///< EVC_POOL_STEAL=force
  bool stop_ = false;
};

/// Run fn(i) for every i in [0, n) using `pool`'s helpers plus the calling
/// thread. Returns after all iterations finish; the first exception thrown
/// by fn is rethrown (remaining iterations are skipped once one fails).
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const std::size_t helpers = n > 1 ? std::min(pool.size(), n - 1) : 0;

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  const auto drain = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::atomic<std::size_t> pending{helpers};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (std::size_t w = 0; w < helpers; ++w) {
    pool.submit([&]() {
      drain();
      // Notify while still holding the lock: the caller's wait cannot
      // observe pending == 0 and return (destroying the stack-local cv and
      // mutex) until this helper is done touching them.
      std::lock_guard<std::mutex> lock(done_mutex);
      pending.fetch_sub(1, std::memory_order_relaxed);
      done_cv.notify_one();
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending.load() == 0; });
  if (error) std::rethrow_exception(error);
}

template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  parallel_for(ThreadPool::global(), n, std::forward<Fn>(fn));
}

/// parallel_for that collects results: out[i] = fn(i). Slot-indexed, so the
/// result vector is identical to the serial `for` loop's.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
  return parallel_map<T>(ThreadPool::global(), n, std::forward<Fn>(fn));
}

}  // namespace evc::rt
