// Fault-tolerant control supervisor: input sanitation, per-step deadline
// watchdog, and a graceful-degradation fallback chain.
//
// A real vehicle ECU cannot forward a NaN from a glitched sensor into an
// optimizer, nor hold the cabin hostage to a solver that missed its
// deadline. The SupervisedController wraps an ordered list of tiers —
// canonically full MPC → relaxed MPC → PID → On/Off — behind one
// ClimateController facade and guarantees, for every step:
//   * the wrapped controllers only ever see sanitized inputs (NaN/Inf and
//     out-of-range values replaced by last-good-value hold + clamp),
//   * the emitted actuation is finite and inside the actuator box,
//   * a tier that reports degraded health (DecisionHealth), emits bad
//     actuation, or blows the step deadline is demoted away from
//     immediately — the next tier decides in the same step,
//   * recovery is hysteretic: a degraded tier must look healthy for
//     `promote_after` consecutive steps before the tier above is probed
//     again, so the chain cannot flap at the fault rate.
// A terminal safe-hold tier (hold last healthy actuation, else minimum
// ventilation pass-through) is built in and cannot fail.
//
// When every input is clean and the preferred tier healthy, the supervisor
// is a bit-exact pass-through: sanitation only rewrites values that are
// actually bad, so supervised and unsupervised runs produce byte-identical
// traces on fault-free scenarios (tested).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/pid.hpp"
#include "hvac/hvac_params.hpp"
#include "sim/fdi/fdi.hpp"

namespace evc::ctl {

struct SupervisorOptions {
  /// Per-step wall-clock deadline for one tier's decide() (s); a miss marks
  /// the tier unhealthy for this step. 0 disables the watchdog.
  double step_deadline_s = 0.0;
  /// Consecutive healthy steps at a degraded tier before the tier above is
  /// probed again (recovery hysteresis; ≥ 1).
  std::size_t promote_after = 8;
  /// Plausibility range for temperature sensors (°C); values outside are
  /// clamped and counted.
  double min_temp_c = -60.0;
  double max_temp_c = 90.0;
  /// Consecutive steps a sensor may ride the last-good-value hold before
  /// the supervisor escalates to the safe-hold tier: a hold that old tracks
  /// nothing, so acting on it through any controller is guesswork. 0
  /// disables the escalation (holds age silently, matching the pre-FDIR
  /// behaviour). Irrelevant while the FDIR layer substitutes live virtual
  /// estimates — those are finite, so the hold never ages.
  std::size_t max_hold_steps = 0;
  /// Sensor FDIR layer (detection/isolation/recovery + virtual-sensor
  /// substitution); constructed only when fdi.enabled.
  fdi::FdiOptions fdi;
};

/// Counters for every intervention the supervisor makes. `tier_steps[i]` is
/// the number of steps actuated by tier i (the safe-hold tier is the last
/// entry) — the "fallback occupancy" reported by the robustness bench.
struct SupervisorStats {
  std::size_t steps = 0;
  std::size_t sanitized_steps = 0;   ///< steps with ≥ 1 repaired input
  std::size_t sanitized_values = 0;  ///< individual repaired input values
  std::size_t deadline_misses = 0;
  std::size_t health_degradations = 0;  ///< tier self-reported degraded
  std::size_t invalid_outputs = 0;  ///< non-finite / out-of-box actuation
  std::size_t output_clamps = 0;    ///< emitted actuation pulled into box
  std::size_t demotions = 0;
  std::size_t promotions = 0;
  /// Steps forced to the safe-hold tier because a sensor hold outlived
  /// max_hold_steps (permanent-dropout escalation).
  std::size_t hold_expirations = 0;
  /// Steps where the FDIR layer substituted ≥ 1 virtual-sensor estimate.
  std::size_t fdi_substituted_steps = 0;
  std::vector<std::size_t> tier_steps;
};

class SupervisedController : public ClimateController {
 public:
  /// `tiers` in degradation order, tiers[0] = preferred. At least one. The
  /// terminal safe-hold tier is internal — do not include it.
  SupervisedController(std::vector<std::unique_ptr<ClimateController>> tiers,
                       hvac::HvacParams params,
                       SupervisorOptions options = {});

  std::string name() const override;
  hvac::HvacInputs decide(const ControlContext& context) override;
  void reset() override;

  const SupervisorStats& stats() const { return stats_; }
  const SupervisorOptions& options() const { return options_; }
  /// Index of the tier currently trusted (0 = preferred; num_tiers() − 1 =
  /// safe-hold).
  std::size_t current_tier() const { return current_tier_; }
  /// Wrapped tiers + 1 for the internal safe-hold.
  std::size_t num_tiers() const { return tiers_.size() + 1; }
  /// Display name of tier `i` ("safe-hold" for the terminal tier).
  std::string tier_name(std::size_t i) const;
  /// Borrow wrapped tier `i` (i < num_tiers() − 1; the internal safe-hold
  /// has no controller object) — e.g. to read tier-specific telemetry.
  const ClimateController& tier(std::size_t i) const { return *tiers_.at(i); }
  /// Tier that actuated the most recent step.
  std::size_t last_applied_tier() const { return last_applied_tier_; }
  /// The FDIR subsystem, or nullptr when options.fdi.enabled is false.
  const fdi::SensorFdi* fdi() const { return fdi_.get(); }

  /// Checkpoint hooks: supervisor bookkeeping, sanitizer hold state, FDIR
  /// subsystem, and every wrapped tier (recursive).
  void save_state(BinaryWriter& writer) const override;
  void load_state(BinaryReader& reader) override;

  /// Flight-recorder hook: applied tier + FDIR health triple, then delegate
  /// to the tier that actually actuated (for its solver effort fields).
  void fill_flight_record(obs::FlightRecord& record) const override;

 private:
  ControlContext sanitize(const ControlContext& context);
  hvac::HvacInputs safe_hold(const ControlContext& context) const;
  bool output_ok(const hvac::HvacInputs& inputs) const;

  std::vector<std::unique_ptr<ClimateController>> tiers_;
  hvac::HvacParams params_;
  SupervisorOptions options_;
  SupervisorStats stats_;

  std::size_t current_tier_ = 0;
  std::size_t last_applied_tier_ = 0;
  std::size_t healthy_streak_ = 0;

  // Last-good-value hold for the sanitizer.
  bool have_last_good_ = false;
  double last_good_cabin_c_ = 0.0;
  double last_good_outside_c_ = 0.0;
  double last_good_soc_ = 0.0;

  // Safe-hold state: last actuation that passed the output checks.
  bool have_safe_output_ = false;
  hvac::HvacInputs last_safe_output_;

  // Consecutive steps each scalar was repaired by the last-good hold
  // (non-finite raw reading); resets on any finite reading.
  std::size_t cabin_hold_age_ = 0;
  std::size_t outside_hold_age_ = 0;
  std::size_t soc_hold_age_ = 0;

  std::unique_ptr<fdi::SensorFdi> fdi_;
};

/// PID fallback tier: a single PID on the cabin-temperature error commands
/// one heat/cool effort u ∈ [−1, 1], mapped onto the actuator box with the
/// same demand-scheduled actuation the fuzzy baseline uses. Deterministic,
/// allocation-free, microseconds per step — the workhorse degraded mode
/// when the optimizer is distrusted.
class PidClimateController : public ClimateController {
 public:
  explicit PidClimateController(hvac::HvacParams params);
  PidClimateController(hvac::HvacParams params, PidGains gains);

  std::string name() const override { return "PID fallback"; }
  hvac::HvacInputs decide(const ControlContext& context) override;
  void reset() override { pid_.reset(); }
  void save_state(BinaryWriter& writer) const override {
    pid_.save_state(writer);
  }
  void load_state(BinaryReader& reader) override { pid_.load_state(reader); }

 private:
  hvac::HvacParams params_;
  Pid pid_;
};

}  // namespace evc::ctl
