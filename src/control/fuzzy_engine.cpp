#include "control/fuzzy_engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::ctl {

MembershipFunction::MembershipFunction(std::string label, double a, double b,
                                       double c, double d)
    : label_(std::move(label)), a_(a), b_(b), c_(c), d_(d) {
  EVC_EXPECT(a <= b && b <= c && c <= d,
             "membership breakpoints must be ordered a<=b<=c<=d");
}

MembershipFunction MembershipFunction::triangle(std::string label, double a,
                                                double b, double c) {
  return MembershipFunction(std::move(label), a, b, b, c);
}

double MembershipFunction::grade(double x) const {
  if (x <= a_ || x >= d_) {
    // Degenerate shoulders: a==b (resp. c==d) means a crisp edge that is
    // fully on at the boundary.
    if (x <= a_ && a_ == b_ && x >= a_) return 1.0;
    if (x >= d_ && c_ == d_ && x <= d_) return 1.0;
    return 0.0;
  }
  if (x < b_) return (x - a_) / (b_ - a_);
  if (x <= c_) return 1.0;
  return (d_ - x) / (d_ - c_);
}

LinguisticVariable::LinguisticVariable(std::string name,
                                       std::vector<MembershipFunction> sets)
    : name_(std::move(name)), sets_(std::move(sets)) {
  EVC_EXPECT(!sets_.empty(), "linguistic variable needs at least one set");
}

const MembershipFunction& LinguisticVariable::set(std::size_t i) const {
  EVC_EXPECT(i < sets_.size(), "set index out of range");
  return sets_[i];
}

std::size_t LinguisticVariable::set_index(const std::string& label) const {
  for (std::size_t i = 0; i < sets_.size(); ++i)
    if (sets_[i].label() == label) return i;
  EVC_EXPECT(false, "unknown linguistic set: " + label);
  return 0;
}

FuzzyInference::FuzzyInference(std::vector<LinguisticVariable> inputs,
                               LinguisticVariable output,
                               std::vector<FuzzyRule> rules)
    : inputs_(std::move(inputs)), output_(std::move(output)),
      rules_(std::move(rules)) {
  EVC_EXPECT(!inputs_.empty(), "fuzzy system needs at least one input");
  EVC_EXPECT(!rules_.empty(), "fuzzy system needs at least one rule");
  out_min_ = output_.set(0).support_min();
  out_max_ = output_.set(0).support_max();
  for (std::size_t i = 1; i < output_.num_sets(); ++i) {
    out_min_ = std::min(out_min_, output_.set(i).support_min());
    out_max_ = std::max(out_max_, output_.set(i).support_max());
  }
  for (const FuzzyRule& rule : rules_) {
    EVC_EXPECT(rule.antecedent.size() == inputs_.size(),
               "rule antecedent arity mismatch");
    for (std::size_t v = 0; v < inputs_.size(); ++v)
      EVC_EXPECT(rule.antecedent[v] == FuzzyRule::kAny ||
                     rule.antecedent[v] < inputs_[v].num_sets(),
                 "rule references unknown input set");
    EVC_EXPECT(rule.consequent < output_.num_sets(),
               "rule references unknown output set");
  }
}

double FuzzyInference::infer(const std::vector<double>& crisp_inputs) const {
  EVC_EXPECT(crisp_inputs.size() == inputs_.size(),
             "crisp input arity mismatch");

  // Activation strength per output set (max aggregation across rules).
  std::vector<double> activation(output_.num_sets(), 0.0);
  for (const FuzzyRule& rule : rules_) {
    double strength = 1.0;
    for (std::size_t v = 0; v < inputs_.size(); ++v) {
      if (rule.antecedent[v] == FuzzyRule::kAny) continue;
      strength = std::min(
          strength, inputs_[v].set(rule.antecedent[v]).grade(crisp_inputs[v]));
    }
    activation[rule.consequent] =
        std::max(activation[rule.consequent], strength);
  }

  // Centroid of the clipped-and-aggregated output surface, sampled densely
  // (Mamdani max-min with discretized centroid defuzzification).
  constexpr int kSamples = 200;
  double weighted = 0.0, total = 0.0;
  for (int i = 0; i <= kSamples; ++i) {
    const double x =
        out_min_ + (out_max_ - out_min_) * static_cast<double>(i) / kSamples;
    double mu = 0.0;
    for (std::size_t s = 0; s < output_.num_sets(); ++s)
      mu = std::max(mu, std::min(activation[s], output_.set(s).grade(x)));
    weighted += mu * x;
    total += mu;
  }
  if (total <= 1e-12) return 0.5 * (out_min_ + out_max_);
  return weighted / total;
}

}  // namespace evc::ctl
