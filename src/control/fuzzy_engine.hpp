// Mamdani fuzzy inference engine.
//
// Generic substrate for the fuzzy temperature controller (paper ref [10]:
// Ibrahim et al., "Fuzzy-based Temperature and Humidity Control for HVAC
// of Electric Vehicle"). Triangular/trapezoidal membership functions,
// min-AND rule activation, max aggregation, centroid defuzzification.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace evc::ctl {

/// Trapezoidal membership function (a ≤ b ≤ c ≤ d); a triangle has b == c.
/// Membership rises linearly on [a, b], is 1 on [b, c], falls on [c, d].
class MembershipFunction {
 public:
  MembershipFunction(std::string label, double a, double b, double c,
                     double d);
  static MembershipFunction triangle(std::string label, double a, double b,
                                     double c);

  double grade(double x) const;
  const std::string& label() const { return label_; }
  double support_min() const { return a_; }
  double support_max() const { return d_; }

 private:
  std::string label_;
  double a_, b_, c_, d_;
};

/// A named input/output dimension with its linguistic sets.
class LinguisticVariable {
 public:
  LinguisticVariable(std::string name,
                     std::vector<MembershipFunction> sets);

  const std::string& name() const { return name_; }
  std::size_t num_sets() const { return sets_.size(); }
  const MembershipFunction& set(std::size_t i) const;
  /// Index of the set with this label; throws if absent.
  std::size_t set_index(const std::string& label) const;

 private:
  std::string name_;
  std::vector<MembershipFunction> sets_;
};

/// IF in0 is A AND in1 is B … THEN out is C (indices into the variables'
/// set lists; an antecedent of kAny ignores that input).
struct FuzzyRule {
  static constexpr std::size_t kAny = static_cast<std::size_t>(-1);
  std::vector<std::size_t> antecedent;  ///< one entry per input variable
  std::size_t consequent = 0;           ///< output set index
};

class FuzzyInference {
 public:
  FuzzyInference(std::vector<LinguisticVariable> inputs,
                 LinguisticVariable output, std::vector<FuzzyRule> rules);

  /// Crisp inputs (one per input variable) → centroid-defuzzified output.
  /// If no rule fires, returns the center of the output range.
  double infer(const std::vector<double>& crisp_inputs) const;

  std::size_t num_rules() const { return rules_.size(); }

 private:
  std::vector<LinguisticVariable> inputs_;
  LinguisticVariable output_;
  std::vector<FuzzyRule> rules_;
  double out_min_, out_max_;
};

}  // namespace evc::ctl
