// Fuzzy-based climate control — the second state-of-the-art baseline
// (paper ref [10]: Ibrahim et al., Procedia Engineering 2012).
//
// A Mamdani PD-style fuzzy regulator on (temperature error, error rate)
// produces a normalized thermal command u ∈ [−1, 1] (negative = cool,
// positive = heat), mapped onto the VAV actuators: coil/supply temperature
// proportional to |u| and air flow scheduled with demand. This stabilizes
// the cabin temperature tightly (paper Fig. 5) but is oblivious to the
// motor load and battery state.
#pragma once

#include <memory>

#include "control/controller.hpp"
#include "control/fuzzy_engine.hpp"
#include "hvac/hvac_params.hpp"

namespace evc::ctl {

struct FuzzyOptions {
  double error_range_c = 3.0;        ///< error normalization span
  double error_rate_range_c_s = 0.1; ///< derivative normalization span
  double recirculation = 0.5;        ///< fixed damper position
  /// Integral trim gain (1/(°C·s)): the fuzzy PD surface alone leaves a
  /// steady-state offset against sustained thermal loads; the paper's
  /// baseline is fuzzy *on a PID substrate*, so a slow integral term
  /// removes the offset. Anti-windup clamps the trim to ±1.
  double integral_gain = 0.005;
};

class FuzzyController : public ClimateController {
 public:
  FuzzyController(hvac::HvacParams params, FuzzyOptions options = {});

  std::string name() const override { return "Fuzzy"; }
  hvac::HvacInputs decide(const ControlContext& context) override;
  void reset() override;
  void save_state(BinaryWriter& writer) const override;
  void load_state(BinaryReader& reader) override;

  /// Normalized thermal command for given crisp error/rate — exposed for
  /// unit-testing the rule base.
  double command(double error_c, double error_rate_c_s) const;

 private:
  hvac::HvacParams params_;
  FuzzyOptions options_;
  std::unique_ptr<FuzzyInference> inference_;
  double prev_error_ = 0.0;
  bool has_prev_ = false;
  double integral_trim_ = 0.0;
};

}  // namespace evc::ctl
