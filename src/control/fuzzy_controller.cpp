#include "control/fuzzy_controller.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::ctl {

namespace {

/// Five symmetric triangular sets NB, NS, ZE, PS, PB over [−1, 1].
std::vector<MembershipFunction> five_sets() {
  return {
      MembershipFunction("NB", -1.0, -1.0, -1.0, -0.5),
      MembershipFunction::triangle("NS", -1.0, -0.5, 0.0),
      MembershipFunction::triangle("ZE", -0.5, 0.0, 0.5),
      MembershipFunction::triangle("PS", 0.0, 0.5, 1.0),
      MembershipFunction("PB", 0.5, 1.0, 1.0, 1.0),
  };
}

std::vector<FuzzyRule> pd_rule_base() {
  // Standard 5×5 anti-diagonal PD surface: hot cabin (positive error)
  // commands cooling (negative u), and the error rate shifts the verdict
  // one set in the damping direction.
  std::vector<FuzzyRule> rules;
  for (std::size_t e = 0; e < 5; ++e) {
    for (std::size_t de = 0; de < 5; ++de) {
      const int s = (static_cast<int>(e) - 2) + (static_cast<int>(de) - 2);
      const int out = std::clamp(2 - s, 0, 4);
      rules.push_back(FuzzyRule{{e, de}, static_cast<std::size_t>(out)});
    }
  }
  return rules;
}

}  // namespace

FuzzyController::FuzzyController(hvac::HvacParams params, FuzzyOptions options)
    : params_(params), options_(options) {
  params_.validate();
  EVC_EXPECT(options_.error_range_c > 0.0, "error range must be positive");
  EVC_EXPECT(options_.error_rate_range_c_s > 0.0,
             "error rate range must be positive");
  std::vector<LinguisticVariable> inputs{
      LinguisticVariable("error", five_sets()),
      LinguisticVariable("error_rate", five_sets()),
  };
  inference_ = std::make_unique<FuzzyInference>(
      std::move(inputs), LinguisticVariable("command", five_sets()),
      pd_rule_base());
}

double FuzzyController::command(double error_c, double error_rate_c_s) const {
  const double e = std::clamp(error_c / options_.error_range_c, -1.0, 1.0);
  const double de =
      std::clamp(error_rate_c_s / options_.error_rate_range_c_s, -1.0, 1.0);
  return std::clamp(inference_->infer({e, de}), -1.0, 1.0);
}

hvac::HvacInputs FuzzyController::decide(const ControlContext& context) {
  const double error = context.cabin_temp_c - params_.target_temp_c;
  const double rate =
      has_prev_ ? (error - prev_error_) / context.dt_s : 0.0;
  prev_error_ = error;
  has_prev_ = true;

  // Slow integral trim removes the PD surface's steady-state offset
  // (negative error integral commands heating, positive cooling).
  integral_trim_ = std::clamp(
      integral_trim_ - options_.integral_gain * error * context.dt_s, -1.0,
      1.0);
  const double u = std::clamp(command(error, rate) + integral_trim_, -1.0,
                              1.0);

  hvac::HvacInputs in;
  in.recirculation = options_.recirculation;
  const double tm = (1.0 - in.recirculation) * context.outside_temp_c +
                    in.recirculation * context.cabin_temp_c;
  // Demand-scheduled flow: idle ventilation near zero command, full flow at
  // full command.
  in.air_flow_kg_s =
      params_.min_air_flow_kg_s +
      std::abs(u) * (params_.max_air_flow_kg_s - params_.min_air_flow_kg_s);
  if (u >= 0.0) {
    // Heating: cooler pass-through, heater raises supply air.
    in.coil_temp_c = tm;
    in.supply_temp_c = tm + u * (params_.max_supply_temp_c - tm);
  } else {
    // Cooling: no reheat, coil temperature dives toward its limit.
    in.coil_temp_c = tm + (-u) * (params_.min_coil_temp_c - tm);
    in.supply_temp_c = in.coil_temp_c;
  }
  return in;
}

void FuzzyController::reset() {
  prev_error_ = 0.0;
  has_prev_ = false;
  integral_trim_ = 0.0;
}

void FuzzyController::save_state(BinaryWriter& writer) const {
  writer.section("fuzzy");
  writer.write_f64(prev_error_);
  writer.write_bool(has_prev_);
  writer.write_f64(integral_trim_);
}

void FuzzyController::load_state(BinaryReader& reader) {
  reader.expect_section("fuzzy");
  prev_error_ = reader.read_f64();
  has_prev_ = reader.read_bool();
  integral_trim_ = reader.read_f64();
}

}  // namespace evc::ctl
