#include "control/onoff_controller.hpp"

#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::ctl {

OnOffController::OnOffController(hvac::HvacParams params, OnOffOptions options)
    : params_(params), options_(options) {
  params_.validate();
  EVC_EXPECT(options_.deadband_c > 0.0, "deadband must be positive");
}

hvac::HvacInputs OnOffController::decide(const ControlContext& context) {
  const double target = params_.target_temp_c;
  const double tz = context.cabin_temp_c;

  // Hysteresis state machine: engage outside the deadband, release when
  // the temperature crosses the target coming back.
  switch (mode_) {
    case Mode::kOff:
      if (tz > target + options_.deadband_c)
        mode_ = Mode::kCooling;
      else if (tz < target - options_.deadband_c)
        mode_ = Mode::kHeating;
      break;
    case Mode::kCooling:
      if (tz <= target) mode_ = Mode::kOff;
      break;
    case Mode::kHeating:
      if (tz >= target) mode_ = Mode::kOff;
      break;
  }

  hvac::HvacInputs in;
  in.recirculation = options_.recirculation;
  const double tm = (1.0 - in.recirculation) * context.outside_temp_c +
                    in.recirculation * tz;
  switch (mode_) {
    case Mode::kOff:
      // Manual-A/C behaviour (i-MiEV class): the blower keeps running at
      // the user-set speed; only the coils cycle off (mixed air passes
      // straight through). This is what makes On/Off the most wasteful
      // methodology in the paper's comparison.
      in.air_flow_kg_s = params_.max_air_flow_kg_s;
      in.coil_temp_c = tm;
      in.supply_temp_c = tm;
      break;
    case Mode::kCooling:
      in.air_flow_kg_s = params_.max_air_flow_kg_s;
      in.coil_temp_c = params_.min_coil_temp_c;
      in.supply_temp_c = params_.min_coil_temp_c;  // no reheat
      break;
    case Mode::kHeating:
      in.air_flow_kg_s = params_.max_air_flow_kg_s;
      in.coil_temp_c = tm;  // cooler inactive
      in.supply_temp_c = params_.max_supply_temp_c;
      break;
  }
  return in;
}

void OnOffController::save_state(BinaryWriter& writer) const {
  writer.section("onoff");
  writer.write_u8(static_cast<std::uint8_t>(mode_));
}

void OnOffController::load_state(BinaryReader& reader) {
  reader.expect_section("onoff");
  mode_ = static_cast<Mode>(reader.read_u8());
}

}  // namespace evc::ctl
