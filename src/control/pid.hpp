// Discrete PID controller with anti-windup.
//
// The fuzzy baseline (paper ref [10]) is "implemented on PID controllers";
// this class is that substrate, and is also usable standalone as a simple
// temperature regulator in the examples.
#pragma once

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::ctl {

struct PidGains {
  double kp = 1.0;
  double ki = 0.0;
  double kd = 0.0;
  double output_min = -1.0;
  double output_max = 1.0;
};

class Pid {
 public:
  explicit Pid(PidGains gains);

  /// One update for error `e` over `dt_s` seconds. Back-calculation
  /// anti-windup: the integrator only accumulates while the output is not
  /// saturated against the error direction.
  double update(double error, double dt_s);

  void reset();
  double integral() const { return integral_; }

  void save_state(BinaryWriter& writer) const;
  void load_state(BinaryReader& reader);

 private:
  PidGains gains_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool has_prev_ = false;
};

}  // namespace evc::ctl
