#include "control/pid.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::ctl {

Pid::Pid(PidGains gains) : gains_(gains) {
  EVC_EXPECT(gains_.output_min < gains_.output_max,
             "PID output limits inverted");
}

double Pid::update(double error, double dt_s) {
  EVC_EXPECT(dt_s > 0.0, "PID step must be positive");
  const double derivative =
      has_prev_ ? (error - prev_error_) / dt_s : 0.0;
  prev_error_ = error;
  has_prev_ = true;

  const double unsat = gains_.kp * error + gains_.ki * integral_ +
                       gains_.kd * derivative;
  const double out =
      std::clamp(unsat, gains_.output_min, gains_.output_max);
  // Conditional integration anti-windup: freeze the integrator while the
  // output is pinned and the error would push it further out.
  const bool saturated_high = unsat > gains_.output_max && error > 0.0;
  const bool saturated_low = unsat < gains_.output_min && error < 0.0;
  if (!saturated_high && !saturated_low) integral_ += error * dt_s;
  return out;
}

void Pid::reset() {
  integral_ = 0.0;
  prev_error_ = 0.0;
  has_prev_ = false;
}

void Pid::save_state(BinaryWriter& writer) const {
  writer.section("pid");
  writer.write_f64(integral_);
  writer.write_f64(prev_error_);
  writer.write_bool(has_prev_);
}

void Pid::load_state(BinaryReader& reader) {
  reader.expect_section("pid");
  integral_ = reader.read_f64();
  prev_error_ = reader.read_f64();
  has_prev_ = reader.read_bool();
}

}  // namespace evc::ctl
