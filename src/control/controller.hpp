// Climate controller interface shared by the baselines (On/Off, fuzzy) and
// the paper's MPC controller.
//
// Each control step the simulation hands the controller the measured cabin
// state plus — for predictive controllers — the receding-horizon forecast
// of motor power and ambient temperature derived from the drive profile
// (paper Algorithm 1, lines 14–15). Reactive controllers ignore the
// forecast.
#pragma once

#include <string>
#include <vector>

#include "hvac/hvac_params.hpp"

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::obs {
struct FlightRecord;
}  // namespace evc::obs

namespace evc::ctl {

struct ControlContext {
  double time_s = 0.0;
  double dt_s = 1.0;
  double cabin_temp_c = 24.0;
  double outside_temp_c = 24.0;
  double soc_percent = 90.0;
  /// Predicted motor electrical power over the control window (W), element
  /// k is the prediction for time_s + k·dt_s. Empty for reactive control.
  std::vector<double> motor_power_forecast_w;
  /// Predicted ambient temperature over the control window (°C).
  std::vector<double> outside_temp_forecast_c;
};

/// Self-reported health of a controller's most recent decide() call — the
/// hook the fault-tolerant supervisor uses to drive its fallback chain
/// without depending on any concrete controller type. Reactive controllers
/// are always healthy (the default); solver-backed controllers report
/// degradation when the underlying optimization did not produce an
/// applicable plan (timeout, iteration cap with a bad iterate, numerical
/// failure).
struct DecisionHealth {
  bool degraded = false;
  /// Static human-readable cause (never null); "" when healthy.
  const char* reason = "";
};

class ClimateController {
 public:
  virtual ~ClimateController() = default;

  virtual std::string name() const = 0;
  /// Actuator decision for the next step.
  virtual hvac::HvacInputs decide(const ControlContext& context) = 0;
  /// Clear internal state (hysteresis mode, integrators, warm starts).
  virtual void reset() {}
  /// Health of the most recent decide() (see DecisionHealth).
  virtual DecisionHealth last_health() const { return {}; }

  /// Serialize/restore the controller's mutable state for crash-safe
  /// checkpoints (sim::Checkpoint). A stateless controller keeps the no-op
  /// defaults; stateful ones must round-trip byte-identically: after
  /// load_state, every subsequent decide() must match the uninterrupted
  /// run bit-for-bit.
  virtual void save_state(BinaryWriter& writer) const { (void)writer; }
  virtual void load_state(BinaryReader& reader) { (void)reader; }

  /// Fill the controller-owned fields of a per-step flight record (tier,
  /// sensor health, solver effort) after decide(). The default leaves the
  /// record untouched — reactive controllers have nothing to add.
  virtual void fill_flight_record(obs::FlightRecord& record) const {
    (void)record;
  }
};

}  // namespace evc::ctl
