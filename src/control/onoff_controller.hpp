// Switching On/Off climate control — the first state-of-the-art baseline
// (paper refs [8][9]: i-MiEV air-conditioning system; Montgomery,
// Fundamentals of HVAC control systems).
//
// Classic thermostat hysteresis: when the cabin temperature leaves the
// deadband around the target the HVAC switches fully on (max flow, coil at
// its limit); once the temperature crosses the target on the way back the
// system switches off (minimum ventilation only). This produces the large
// temperature oscillation and power peaks of paper Fig. 5.
#pragma once

#include "control/controller.hpp"
#include "hvac/hvac_params.hpp"

namespace evc::ctl {

struct OnOffOptions {
  double deadband_c = 1.5;      ///< half-width of the hysteresis band
  double recirculation = 0.5;   ///< fixed damper position while running
};

class OnOffController : public ClimateController {
 public:
  OnOffController(hvac::HvacParams params, OnOffOptions options = {});

  std::string name() const override { return "On/Off"; }
  hvac::HvacInputs decide(const ControlContext& context) override;
  void reset() override { mode_ = Mode::kOff; }
  void save_state(BinaryWriter& writer) const override;
  void load_state(BinaryReader& reader) override;

 private:
  enum class Mode { kOff, kCooling, kHeating };

  hvac::HvacParams params_;
  OnOffOptions options_;
  Mode mode_ = Mode::kOff;
};

}  // namespace evc::ctl
