#include "control/controller.hpp"

// Interface-only translation unit: keeps the vtable anchored in one place.
namespace evc::ctl {}
