#include "control/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::ctl {

namespace {

/// Repair one scalar: non-finite → fallback; out of [lo, hi] → clamp.
/// Returns true when the value was rewritten.
bool repair(double& value, double fallback, double lo, double hi) {
  if (!std::isfinite(value)) {
    value = std::clamp(fallback, lo, hi);
    return true;
  }
  if (value < lo || value > hi) {
    value = std::clamp(value, lo, hi);
    return true;
  }
  return false;
}

}  // namespace

SupervisedController::SupervisedController(
    std::vector<std::unique_ptr<ClimateController>> tiers,
    hvac::HvacParams params, SupervisorOptions options)
    : tiers_(std::move(tiers)), params_(params), options_(options) {
  params_.validate();
  EVC_EXPECT(!tiers_.empty(), "supervisor needs at least one tier");
  for (const auto& tier : tiers_)
    EVC_EXPECT(tier != nullptr, "supervisor tier must not be null");
  EVC_EXPECT(options_.promote_after >= 1,
             "promotion hysteresis must be at least one step");
  EVC_EXPECT(options_.min_temp_c < options_.max_temp_c,
             "sanitation temperature range is empty");
  EVC_EXPECT(options_.step_deadline_s >= 0.0,
             "step deadline must be >= 0");
  stats_.tier_steps.assign(num_tiers(), 0);
  if (options_.fdi.enabled)
    fdi_ = std::make_unique<fdi::SensorFdi>(options_.fdi, params_);
}

std::string SupervisedController::name() const {
  return "Supervised " + tiers_.front()->name();
}

std::string SupervisedController::tier_name(std::size_t i) const {
  if (i >= tiers_.size()) return "safe-hold";
  return tiers_[i]->name();
}

void SupervisedController::reset() {
  for (auto& tier : tiers_) tier->reset();
  stats_ = SupervisorStats{};
  stats_.tier_steps.assign(num_tiers(), 0);
  current_tier_ = 0;
  last_applied_tier_ = 0;
  healthy_streak_ = 0;
  have_last_good_ = false;
  have_safe_output_ = false;
  cabin_hold_age_ = 0;
  outside_hold_age_ = 0;
  soc_hold_age_ = 0;
  if (fdi_) fdi_->reset();
}

ControlContext SupervisedController::sanitize(const ControlContext& context) {
  ControlContext clean = context;
  std::size_t repaired = 0;

  // Scalars: last-good-value hold for sensor silence, plausibility clamp
  // for wild-but-finite readings. Before any good sample exists the comfort
  // target / a mid-range SoC stand in.
  const double cabin_fb =
      have_last_good_ ? last_good_cabin_c_ : params_.target_temp_c;
  const double outside_fb =
      have_last_good_ ? last_good_outside_c_ : params_.target_temp_c;
  const double soc_fb = have_last_good_ ? last_good_soc_ : 50.0;
  const bool cabin_finite = std::isfinite(clean.cabin_temp_c);
  const bool outside_finite = std::isfinite(clean.outside_temp_c);
  const bool soc_finite = std::isfinite(clean.soc_percent);
  repaired += repair(clean.cabin_temp_c, cabin_fb, options_.min_temp_c,
                     options_.max_temp_c);
  repaired += repair(clean.outside_temp_c, outside_fb, options_.min_temp_c,
                     options_.max_temp_c);
  repaired += repair(clean.soc_percent, soc_fb, 0.0, 100.0);

  // Hold aging for the max_hold_steps escalation: only a silent sensor
  // (non-finite reading repaired by the hold) ages; any finite reading —
  // even one that needed clamping — resets the age.
  cabin_hold_age_ = cabin_finite ? 0 : cabin_hold_age_ + 1;
  outside_hold_age_ = outside_finite ? 0 : outside_hold_age_ + 1;
  soc_hold_age_ = soc_finite ? 0 : soc_hold_age_ + 1;

  // dt must stay positive or downstream rate computations divide by zero.
  if (!std::isfinite(clean.dt_s) || clean.dt_s <= 0.0) {
    clean.dt_s = 1.0;
    ++repaired;
  }
  if (!std::isfinite(clean.time_s)) {
    clean.time_s = 0.0;
    ++repaired;
  }

  // Forecasts: a corrupted entry falls back to the (sanitized) current
  // value — zero extra power, current ambient — rather than poisoning the
  // whole MPC window.
  for (double& p : clean.motor_power_forecast_w)
    if (!std::isfinite(p)) {
      p = 0.0;
      ++repaired;
    }
  for (double& temp : clean.outside_temp_forecast_c)
    repaired += repair(temp, clean.outside_temp_c, options_.min_temp_c,
                       options_.max_temp_c);

  have_last_good_ = true;
  last_good_cabin_c_ = clean.cabin_temp_c;
  last_good_outside_c_ = clean.outside_temp_c;
  last_good_soc_ = clean.soc_percent;

  if (repaired > 0) {
    ++stats_.sanitized_steps;
    stats_.sanitized_values += repaired;
  }
  return clean;
}

bool SupervisedController::output_ok(const hvac::HvacInputs& in) const {
  // The actuator box, with a hair of slack for soft-constrained solver
  // iterates: C1 flow, C6 supply ceiling, C7 damper range. Coil and supply
  // temperatures are bounded by physical plausibility rather than the C5
  // frost limit: a pass-through coil legitimately reads below 4 °C in cold
  // ambient (the plant clamps against the mixed temperature itself).
  constexpr double kEps = 1e-6;
  if (!std::isfinite(in.supply_temp_c) || !std::isfinite(in.coil_temp_c) ||
      !std::isfinite(in.recirculation) || !std::isfinite(in.air_flow_kg_s))
    return false;
  if (in.air_flow_kg_s < params_.min_air_flow_kg_s - kEps ||
      in.air_flow_kg_s > params_.max_air_flow_kg_s + kEps)
    return false;
  if (in.recirculation < -kEps ||
      in.recirculation > params_.max_recirculation + kEps)
    return false;
  if (in.supply_temp_c > params_.max_supply_temp_c + kEps ||
      in.supply_temp_c < options_.min_temp_c)
    return false;
  if (in.coil_temp_c < options_.min_temp_c ||
      in.coil_temp_c > options_.max_temp_c)
    return false;
  return true;
}

hvac::HvacInputs SupervisedController::safe_hold(
    const ControlContext& context) const {
  if (have_safe_output_) return last_safe_output_;
  // No trusted actuation yet: minimum ventilation, coils pass-through.
  hvac::HvacInputs in;
  in.recirculation = 0.5;
  const double tm = (1.0 - in.recirculation) * context.outside_temp_c +
                    in.recirculation * context.cabin_temp_c;
  in.air_flow_kg_s = params_.min_air_flow_kg_s;
  in.coil_temp_c = std::clamp(tm, params_.min_coil_temp_c,
                              params_.max_supply_temp_c);
  in.supply_temp_c = in.coil_temp_c;
  return in;
}

hvac::HvacInputs SupervisedController::decide(const ControlContext& context) {
  using Clock = std::chrono::steady_clock;
  EVC_TRACE_SPAN_VAR(step_span, "supervisor.step");
  static const struct {
    obs::MetricsRegistry::Id demotions;
    obs::MetricsRegistry::Id promotions;
    obs::MetricsRegistry::Id deadline_misses;
  } metric_ids{
      obs::MetricsRegistry::global().counter("supervisor.demotions"),
      obs::MetricsRegistry::global().counter("supervisor.promotions"),
      obs::MetricsRegistry::global().counter("supervisor.deadline_misses")};
  ++stats_.steps;

  // FDIR first, on the *raw* context: residual detection must see exactly
  // what the sensor emitted (NaNs and wild values included). Trusted
  // sensors pass through bit-for-bit; isolated ones are replaced by live
  // virtual-sensor estimates, which keeps the sanitizer's hold from aging.
  ControlContext viewed = context;
  if (fdi_) {
    const fdi::FdiFrame frame = fdi_->assess(context);
    viewed.cabin_temp_c = frame.cabin_temp_c;
    viewed.outside_temp_c = frame.outside_temp_c;
    viewed.soc_percent = frame.soc_percent;
    if (frame.any_substituted()) ++stats_.fdi_substituted_steps;
  }
  const ControlContext clean = sanitize(viewed);

  // A hold that outlived its budget tracks nothing — no controller should
  // act on it. Skip the tier chain entirely and actuate safe-hold.
  const bool hold_expired =
      options_.max_hold_steps > 0 &&
      (cabin_hold_age_ > options_.max_hold_steps ||
       outside_hold_age_ > options_.max_hold_steps ||
       soc_hold_age_ > options_.max_hold_steps);
  if (hold_expired) ++stats_.hold_expirations;

  const std::size_t safe_tier = tiers_.size();
  hvac::HvacInputs output;
  std::size_t applied = safe_tier;
  bool applied_healthy_controller = false;

  for (std::size_t tier = current_tier_;
       !hold_expired && tier < tiers_.size(); ++tier) {
    const Clock::time_point t0 = Clock::now();
    hvac::HvacInputs candidate = tiers_[tier]->decide(clean);
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - t0).count();

    bool healthy = true;
    if (options_.step_deadline_s > 0.0 &&
        elapsed_s > options_.step_deadline_s) {
      ++stats_.deadline_misses;
      obs::MetricsRegistry::global().add(metric_ids.deadline_misses);
      healthy = false;
    }
    if (tiers_[tier]->last_health().degraded) {
      ++stats_.health_degradations;
      healthy = false;
    }
    if (!output_ok(candidate)) {
      ++stats_.invalid_outputs;
      healthy = false;
    }
    if (healthy) {
      output = candidate;
      applied = tier;
      applied_healthy_controller = true;
      break;
    }
  }

  if (!applied_healthy_controller) {
    output = safe_hold(clean);
    applied = safe_tier;
  }

  // Terminal guarantee: whatever produced the actuation, what leaves the
  // supervisor is finite and inside the box. The clamp only rewrites values
  // output_ok() already rejected (safe-hold's synthesized inputs pass by
  // construction), so a healthy tier's bytes are untouched.
  if (!output_ok(output)) {
    ++stats_.output_clamps;
    hvac::HvacInputs safe = safe_hold(clean);
    const auto pick = [](double v, double lo, double hi, double fb) {
      return std::isfinite(v) ? std::clamp(v, lo, hi) : fb;
    };
    output.air_flow_kg_s =
        pick(output.air_flow_kg_s, params_.min_air_flow_kg_s,
             params_.max_air_flow_kg_s, safe.air_flow_kg_s);
    output.recirculation = pick(output.recirculation, 0.0,
                                params_.max_recirculation, safe.recirculation);
    output.supply_temp_c =
        pick(output.supply_temp_c, options_.min_temp_c,
             params_.max_supply_temp_c, safe.supply_temp_c);
    output.coil_temp_c = pick(output.coil_temp_c, params_.min_coil_temp_c,
                              options_.max_temp_c, safe.coil_temp_c);
  }

  // Tier bookkeeping: demote immediately to whichever tier actually
  // actuated; promote one level only after a healthy streak (hysteresis).
  stats_.tier_steps[applied] += 1;
  last_applied_tier_ = applied;
  if (applied > current_tier_) {
    stats_.demotions += 1;
    obs::MetricsRegistry::global().add(metric_ids.demotions);
    EVC_TRACE_INSTANT("supervisor.demotion");
    current_tier_ = applied;
    healthy_streak_ = 0;
  } else {
    ++healthy_streak_;
    if (current_tier_ > 0 && healthy_streak_ >= options_.promote_after) {
      stats_.promotions += 1;
      obs::MetricsRegistry::global().add(metric_ids.promotions);
      EVC_TRACE_INSTANT("supervisor.promotion");
      current_tier_ -= 1;
      healthy_streak_ = 0;
    }
  }
  step_span.arg("tier", static_cast<double>(applied));

  have_safe_output_ = true;
  last_safe_output_ = output;
  // Arm the FDIR layer's next-step model predictions with the actuation
  // that actually left the supervisor.
  if (fdi_) fdi_->commit(output);
  return output;
}

namespace {

void save_hvac_inputs(BinaryWriter& w, const hvac::HvacInputs& in) {
  w.write_f64(in.supply_temp_c);
  w.write_f64(in.coil_temp_c);
  w.write_f64(in.recirculation);
  w.write_f64(in.air_flow_kg_s);
}

void load_hvac_inputs(BinaryReader& r, hvac::HvacInputs& in) {
  in.supply_temp_c = r.read_f64();
  in.coil_temp_c = r.read_f64();
  in.recirculation = r.read_f64();
  in.air_flow_kg_s = r.read_f64();
}

}  // namespace

void SupervisedController::save_state(BinaryWriter& writer) const {
  writer.section("supervisor");
  writer.write_size(current_tier_);
  writer.write_size(last_applied_tier_);
  writer.write_size(healthy_streak_);
  writer.write_bool(have_last_good_);
  writer.write_f64(last_good_cabin_c_);
  writer.write_f64(last_good_outside_c_);
  writer.write_f64(last_good_soc_);
  writer.write_bool(have_safe_output_);
  save_hvac_inputs(writer, last_safe_output_);
  writer.write_size(cabin_hold_age_);
  writer.write_size(outside_hold_age_);
  writer.write_size(soc_hold_age_);

  writer.section("supervisor_stats");
  writer.write_size(stats_.steps);
  writer.write_size(stats_.sanitized_steps);
  writer.write_size(stats_.sanitized_values);
  writer.write_size(stats_.deadline_misses);
  writer.write_size(stats_.health_degradations);
  writer.write_size(stats_.invalid_outputs);
  writer.write_size(stats_.output_clamps);
  writer.write_size(stats_.demotions);
  writer.write_size(stats_.promotions);
  writer.write_size(stats_.hold_expirations);
  writer.write_size(stats_.fdi_substituted_steps);
  writer.write_size_vec(stats_.tier_steps);

  writer.write_bool(fdi_ != nullptr);
  if (fdi_) fdi_->save_state(writer);

  writer.write_size(tiers_.size());
  for (const auto& tier : tiers_) tier->save_state(writer);
}

void SupervisedController::load_state(BinaryReader& reader) {
  reader.expect_section("supervisor");
  current_tier_ = reader.read_size();
  last_applied_tier_ = reader.read_size();
  healthy_streak_ = reader.read_size();
  have_last_good_ = reader.read_bool();
  last_good_cabin_c_ = reader.read_f64();
  last_good_outside_c_ = reader.read_f64();
  last_good_soc_ = reader.read_f64();
  have_safe_output_ = reader.read_bool();
  load_hvac_inputs(reader, last_safe_output_);
  cabin_hold_age_ = reader.read_size();
  outside_hold_age_ = reader.read_size();
  soc_hold_age_ = reader.read_size();

  reader.expect_section("supervisor_stats");
  stats_.steps = reader.read_size();
  stats_.sanitized_steps = reader.read_size();
  stats_.sanitized_values = reader.read_size();
  stats_.deadline_misses = reader.read_size();
  stats_.health_degradations = reader.read_size();
  stats_.invalid_outputs = reader.read_size();
  stats_.output_clamps = reader.read_size();
  stats_.demotions = reader.read_size();
  stats_.promotions = reader.read_size();
  stats_.hold_expirations = reader.read_size();
  stats_.fdi_substituted_steps = reader.read_size();
  stats_.tier_steps = reader.read_size_vec();

  const bool had_fdi = reader.read_bool();
  if (had_fdi != (fdi_ != nullptr))
    throw SerializationError("supervisor FDI configuration mismatch");
  if (fdi_) fdi_->load_state(reader);

  if (reader.read_size() != tiers_.size())
    throw SerializationError("supervisor tier count mismatch");
  for (auto& tier : tiers_) tier->load_state(reader);
}

void SupervisedController::fill_flight_record(
    obs::FlightRecord& record) const {
  record.tier = static_cast<std::uint32_t>(last_applied_tier_);
  if (fdi_) {
    record.cabin_health = static_cast<std::uint8_t>(fdi_->cabin_health());
    record.outside_health = static_cast<std::uint8_t>(fdi_->outside_health());
    record.soc_health = static_cast<std::uint8_t>(fdi_->soc_health());
  }
  if (last_applied_tier_ < tiers_.size())
    tiers_[last_applied_tier_]->fill_flight_record(record);
}

PidClimateController::PidClimateController(hvac::HvacParams params)
    : PidClimateController(params, PidGains{0.6, 0.02, 0.0, -1.0, 1.0}) {}

PidClimateController::PidClimateController(hvac::HvacParams params,
                                           PidGains gains)
    : params_(params), pid_(gains) {
  params_.validate();
}

hvac::HvacInputs PidClimateController::decide(const ControlContext& context) {
  // Positive error (cold cabin) commands heating (u > 0).
  const double error = params_.target_temp_c - context.cabin_temp_c;
  const double u = pid_.update(error, context.dt_s);

  hvac::HvacInputs in;
  in.recirculation = 0.5;
  const double tm = (1.0 - in.recirculation) * context.outside_temp_c +
                    in.recirculation * context.cabin_temp_c;
  in.air_flow_kg_s =
      params_.min_air_flow_kg_s +
      std::abs(u) * (params_.max_air_flow_kg_s - params_.min_air_flow_kg_s);
  if (u >= 0.0) {
    in.coil_temp_c = std::max(tm, params_.min_coil_temp_c);
    in.supply_temp_c = in.coil_temp_c +
                       u * (params_.max_supply_temp_c - in.coil_temp_c);
  } else {
    in.coil_temp_c = tm + (-u) * (params_.min_coil_temp_c - tm);
    in.coil_temp_c = std::max(in.coil_temp_c, params_.min_coil_temp_c);
    in.supply_temp_c = in.coil_temp_c;  // no reheat
  }
  in.supply_temp_c = std::min(in.supply_temp_c, params_.max_supply_temp_c);
  return in;
}

}  // namespace evc::ctl
