#include "control/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/expect.hpp"

namespace evc::ctl {

namespace {

/// Repair one scalar: non-finite → fallback; out of [lo, hi] → clamp.
/// Returns true when the value was rewritten.
bool repair(double& value, double fallback, double lo, double hi) {
  if (!std::isfinite(value)) {
    value = std::clamp(fallback, lo, hi);
    return true;
  }
  if (value < lo || value > hi) {
    value = std::clamp(value, lo, hi);
    return true;
  }
  return false;
}

}  // namespace

SupervisedController::SupervisedController(
    std::vector<std::unique_ptr<ClimateController>> tiers,
    hvac::HvacParams params, SupervisorOptions options)
    : tiers_(std::move(tiers)), params_(params), options_(options) {
  params_.validate();
  EVC_EXPECT(!tiers_.empty(), "supervisor needs at least one tier");
  for (const auto& tier : tiers_)
    EVC_EXPECT(tier != nullptr, "supervisor tier must not be null");
  EVC_EXPECT(options_.promote_after >= 1,
             "promotion hysteresis must be at least one step");
  EVC_EXPECT(options_.min_temp_c < options_.max_temp_c,
             "sanitation temperature range is empty");
  EVC_EXPECT(options_.step_deadline_s >= 0.0,
             "step deadline must be >= 0");
  stats_.tier_steps.assign(num_tiers(), 0);
}

std::string SupervisedController::name() const {
  return "Supervised " + tiers_.front()->name();
}

std::string SupervisedController::tier_name(std::size_t i) const {
  if (i >= tiers_.size()) return "safe-hold";
  return tiers_[i]->name();
}

void SupervisedController::reset() {
  for (auto& tier : tiers_) tier->reset();
  stats_ = SupervisorStats{};
  stats_.tier_steps.assign(num_tiers(), 0);
  current_tier_ = 0;
  last_applied_tier_ = 0;
  healthy_streak_ = 0;
  have_last_good_ = false;
  have_safe_output_ = false;
}

ControlContext SupervisedController::sanitize(const ControlContext& context) {
  ControlContext clean = context;
  std::size_t repaired = 0;

  // Scalars: last-good-value hold for sensor silence, plausibility clamp
  // for wild-but-finite readings. Before any good sample exists the comfort
  // target / a mid-range SoC stand in.
  const double cabin_fb =
      have_last_good_ ? last_good_cabin_c_ : params_.target_temp_c;
  const double outside_fb =
      have_last_good_ ? last_good_outside_c_ : params_.target_temp_c;
  const double soc_fb = have_last_good_ ? last_good_soc_ : 50.0;
  repaired += repair(clean.cabin_temp_c, cabin_fb, options_.min_temp_c,
                     options_.max_temp_c);
  repaired += repair(clean.outside_temp_c, outside_fb, options_.min_temp_c,
                     options_.max_temp_c);
  repaired += repair(clean.soc_percent, soc_fb, 0.0, 100.0);

  // dt must stay positive or downstream rate computations divide by zero.
  if (!std::isfinite(clean.dt_s) || clean.dt_s <= 0.0) {
    clean.dt_s = 1.0;
    ++repaired;
  }
  if (!std::isfinite(clean.time_s)) {
    clean.time_s = 0.0;
    ++repaired;
  }

  // Forecasts: a corrupted entry falls back to the (sanitized) current
  // value — zero extra power, current ambient — rather than poisoning the
  // whole MPC window.
  for (double& p : clean.motor_power_forecast_w)
    if (!std::isfinite(p)) {
      p = 0.0;
      ++repaired;
    }
  for (double& temp : clean.outside_temp_forecast_c)
    repaired += repair(temp, clean.outside_temp_c, options_.min_temp_c,
                       options_.max_temp_c);

  have_last_good_ = true;
  last_good_cabin_c_ = clean.cabin_temp_c;
  last_good_outside_c_ = clean.outside_temp_c;
  last_good_soc_ = clean.soc_percent;

  if (repaired > 0) {
    ++stats_.sanitized_steps;
    stats_.sanitized_values += repaired;
  }
  return clean;
}

bool SupervisedController::output_ok(const hvac::HvacInputs& in) const {
  // The actuator box, with a hair of slack for soft-constrained solver
  // iterates: C1 flow, C6 supply ceiling, C7 damper range. Coil and supply
  // temperatures are bounded by physical plausibility rather than the C5
  // frost limit: a pass-through coil legitimately reads below 4 °C in cold
  // ambient (the plant clamps against the mixed temperature itself).
  constexpr double kEps = 1e-6;
  if (!std::isfinite(in.supply_temp_c) || !std::isfinite(in.coil_temp_c) ||
      !std::isfinite(in.recirculation) || !std::isfinite(in.air_flow_kg_s))
    return false;
  if (in.air_flow_kg_s < params_.min_air_flow_kg_s - kEps ||
      in.air_flow_kg_s > params_.max_air_flow_kg_s + kEps)
    return false;
  if (in.recirculation < -kEps ||
      in.recirculation > params_.max_recirculation + kEps)
    return false;
  if (in.supply_temp_c > params_.max_supply_temp_c + kEps ||
      in.supply_temp_c < options_.min_temp_c)
    return false;
  if (in.coil_temp_c < options_.min_temp_c ||
      in.coil_temp_c > options_.max_temp_c)
    return false;
  return true;
}

hvac::HvacInputs SupervisedController::safe_hold(
    const ControlContext& context) const {
  if (have_safe_output_) return last_safe_output_;
  // No trusted actuation yet: minimum ventilation, coils pass-through.
  hvac::HvacInputs in;
  in.recirculation = 0.5;
  const double tm = (1.0 - in.recirculation) * context.outside_temp_c +
                    in.recirculation * context.cabin_temp_c;
  in.air_flow_kg_s = params_.min_air_flow_kg_s;
  in.coil_temp_c = std::clamp(tm, params_.min_coil_temp_c,
                              params_.max_supply_temp_c);
  in.supply_temp_c = in.coil_temp_c;
  return in;
}

hvac::HvacInputs SupervisedController::decide(const ControlContext& context) {
  using Clock = std::chrono::steady_clock;
  ++stats_.steps;
  const ControlContext clean = sanitize(context);

  const std::size_t safe_tier = tiers_.size();
  hvac::HvacInputs output;
  std::size_t applied = safe_tier;
  bool applied_healthy_controller = false;

  for (std::size_t tier = current_tier_; tier < tiers_.size(); ++tier) {
    const Clock::time_point t0 = Clock::now();
    hvac::HvacInputs candidate = tiers_[tier]->decide(clean);
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - t0).count();

    bool healthy = true;
    if (options_.step_deadline_s > 0.0 &&
        elapsed_s > options_.step_deadline_s) {
      ++stats_.deadline_misses;
      healthy = false;
    }
    if (tiers_[tier]->last_health().degraded) {
      ++stats_.health_degradations;
      healthy = false;
    }
    if (!output_ok(candidate)) {
      ++stats_.invalid_outputs;
      healthy = false;
    }
    if (healthy) {
      output = candidate;
      applied = tier;
      applied_healthy_controller = true;
      break;
    }
  }

  if (!applied_healthy_controller) {
    output = safe_hold(clean);
    applied = safe_tier;
  }

  // Terminal guarantee: whatever produced the actuation, what leaves the
  // supervisor is finite and inside the box. The clamp only rewrites values
  // output_ok() already rejected (safe-hold's synthesized inputs pass by
  // construction), so a healthy tier's bytes are untouched.
  if (!output_ok(output)) {
    ++stats_.output_clamps;
    hvac::HvacInputs safe = safe_hold(clean);
    const auto pick = [](double v, double lo, double hi, double fb) {
      return std::isfinite(v) ? std::clamp(v, lo, hi) : fb;
    };
    output.air_flow_kg_s =
        pick(output.air_flow_kg_s, params_.min_air_flow_kg_s,
             params_.max_air_flow_kg_s, safe.air_flow_kg_s);
    output.recirculation = pick(output.recirculation, 0.0,
                                params_.max_recirculation, safe.recirculation);
    output.supply_temp_c =
        pick(output.supply_temp_c, options_.min_temp_c,
             params_.max_supply_temp_c, safe.supply_temp_c);
    output.coil_temp_c = pick(output.coil_temp_c, params_.min_coil_temp_c,
                              options_.max_temp_c, safe.coil_temp_c);
  }

  // Tier bookkeeping: demote immediately to whichever tier actually
  // actuated; promote one level only after a healthy streak (hysteresis).
  stats_.tier_steps[applied] += 1;
  last_applied_tier_ = applied;
  if (applied > current_tier_) {
    stats_.demotions += 1;
    current_tier_ = applied;
    healthy_streak_ = 0;
  } else {
    ++healthy_streak_;
    if (current_tier_ > 0 && healthy_streak_ >= options_.promote_after) {
      stats_.promotions += 1;
      current_tier_ -= 1;
      healthy_streak_ = 0;
    }
  }

  have_safe_output_ = true;
  last_safe_output_ = output;
  return output;
}

PidClimateController::PidClimateController(hvac::HvacParams params)
    : PidClimateController(params, PidGains{0.6, 0.02, 0.0, -1.0, 1.0}) {}

PidClimateController::PidClimateController(hvac::HvacParams params,
                                           PidGains gains)
    : params_(params), pid_(gains) {
  params_.validate();
}

hvac::HvacInputs PidClimateController::decide(const ControlContext& context) {
  // Positive error (cold cabin) commands heating (u > 0).
  const double error = params_.target_temp_c - context.cabin_temp_c;
  const double u = pid_.update(error, context.dt_s);

  hvac::HvacInputs in;
  in.recirculation = 0.5;
  const double tm = (1.0 - in.recirculation) * context.outside_temp_c +
                    in.recirculation * context.cabin_temp_c;
  in.air_flow_kg_s =
      params_.min_air_flow_kg_s +
      std::abs(u) * (params_.max_air_flow_kg_s - params_.min_air_flow_kg_s);
  if (u >= 0.0) {
    in.coil_temp_c = std::max(tm, params_.min_coil_temp_c);
    in.supply_temp_c = in.coil_temp_c +
                       u * (params_.max_supply_temp_c - in.coil_temp_c);
  } else {
    in.coil_temp_c = tm + (-u) * (params_.min_coil_temp_c - tm);
    in.coil_temp_c = std::max(in.coil_temp_c, params_.min_coil_temp_c);
    in.supply_temp_c = in.coil_temp_c;  // no reheat
  }
  in.supply_temp_c = std::min(in.supply_temp_c, params_.max_supply_temp_c);
  return in;
}

}  // namespace evc::ctl
