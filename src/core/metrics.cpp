#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "hvac/comfort.hpp"
#include "util/expect.hpp"

namespace evc::core {

ComfortStats comfort_stats(const std::vector<double>& cabin_temp_c,
                           double comfort_min_c, double comfort_max_c,
                           double target_c) {
  EVC_EXPECT(!cabin_temp_c.empty(), "comfort stats of empty trace");
  EVC_EXPECT(comfort_min_c < comfort_max_c, "comfort zone inverted");
  ComfortStats stats;
  std::size_t outside = 0;
  double sq_acc = 0.0;
  double ppd_acc = 0.0;
  for (double tz : cabin_temp_c) {
    if (tz < comfort_min_c - 1e-9 || tz > comfort_max_c + 1e-9) ++outside;
    const double err = tz - target_c;
    stats.max_abs_error_c = std::max(stats.max_abs_error_c, std::abs(err));
    sq_acc += err * err;
    hvac::ComfortConditions conditions;
    conditions.air_temp_c = tz;
    conditions.radiant_temp_c = tz;
    ppd_acc += hvac::predicted_percentage_dissatisfied(
        hvac::predicted_mean_vote(conditions));
  }
  stats.avg_ppd_percent =
      ppd_acc / static_cast<double>(cabin_temp_c.size());
  stats.fraction_outside =
      static_cast<double>(outside) / static_cast<double>(cabin_temp_c.size());
  stats.rms_error_c =
      std::sqrt(sq_acc / static_cast<double>(cabin_temp_c.size()));
  return stats;
}

}  // namespace evc::core
