#include "core/trip_planner.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/stats.hpp"

namespace evc::core {

TripPlanner::TripPlanner(EvParams params)
    : params_(params), power_train_(params.vehicle),
      inverter_(params.vehicle.max_motor_power_w),
      dcdc_(1500.0, 0.93) {}

double TripPlanner::steady_hvac_power_w(double ambient_c) const {
  const hvac::HvacParams& p = params_.hvac;
  const double target = p.target_temp_c;
  const double mz = 0.1;   // mid blower
  const double dr = 0.5;   // mid damper
  // Net thermal load on the cabin at the target temperature.
  const double q = p.solar_load_w + p.wall_ua_w_per_k * (ambient_c - target);
  // Supply temperature that holds the target, clamped to the envelope.
  double ts = target - q / (mz * p.air_cp);
  ts = std::clamp(ts, p.min_coil_temp_c, p.max_supply_temp_c);
  const double tm = (1.0 - dr) * ambient_c + dr * target;

  double power = p.fan_coefficient * mz * mz;
  if (ts < tm) {
    power += p.air_cp / p.cooler_efficiency * mz * (tm - ts);
  } else {
    power += p.air_cp / p.heater_efficiency * mz * (ts - tm);
  }
  return power;
}

TripPlan TripPlanner::plan(const drive::DriveProfile& profile,
                           double initial_soc,
                           double nominal_hvac_power_w) const {
  EVC_EXPECT(!profile.empty(), "trip plan needs a non-empty profile");
  EVC_EXPECT(initial_soc > 0.0 && initial_soc <= 100.0,
             "initial SoC outside (0, 100]");
  EVC_EXPECT(nominal_hvac_power_w >= 0.0, "HVAC estimate must be >= 0");

  bat::BatteryPack pack(params_.battery, initial_soc);
  const double plateau = inverter_.efficiency(0.5 * inverter_.rated_power_w());

  TripPlan plan;
  plan.predicted_soc.reserve(profile.size());
  double min_soc = initial_soc;

  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double motor = power_train_.power(profile[i]).electrical_power_w;
    // The motor map folds the inverter's *fixed* loss; apply only the
    // load-dependent excess of the inverter curve on top (≥ 1 at light
    // load, ≈ 1 on the plateau).
    double motor_dc = motor;
    if (motor > 0.0)
      motor_dc = motor * plateau / inverter_.efficiency(motor);
    const double total = motor_dc + nominal_hvac_power_w +
                         dcdc_.input_power(params_.vehicle.accessory_power_w);
    pack.step(total, profile.dt());
    plan.predicted_energy_j += total * profile.dt();
    plan.predicted_soc.push_back(pack.soc_percent());
    min_soc = std::min(min_soc, pack.soc_percent());
  }

  plan.predicted_final_soc = pack.soc_percent();
  plan.predicted_cycle_avg_soc = mean_of(plan.predicted_soc);
  plan.reachable = min_soc > params_.bms.min_soc_percent;
  return plan;
}

}  // namespace evc::core
