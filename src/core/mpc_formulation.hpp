// MPC optimal-control formulation (paper §III-A, Eq. 18–21).
//
// Decision vector over an N-step control window with step Δt:
//   x_k            cabin temperature Tz, k = 0..N          (N+1)
//   i_k = [Ts, Tc, dr, mz]                k = 0..N−1       (4N)
//   u_k = [Tm, Ph, Pc, Pf]  (powers in kW) k = 0..N−1      (4N)
//   SoC_k          battery state of charge, k = 0..N       (N+1)
//   s_k            comfort-zone slack for x_{k+1}, k = 0..N−1  (N)
//
// The comfort zone C2 is imposed *softly* (x within [min−s, max+s], s ≥ 0,
// linear penalty): with hard bounds the window is infeasible whenever the
// cabin starts outside the zone (heat-soaked car, extreme ambient at the
// plant's power limits), and a receding-horizon controller must degrade
// gracefully there, not fail.
//
// Nonlinear (bilinear) equalities: trapezoidal cabin dynamics (Eq. 18–19),
// air mixer (Eq. 9), heater/cooler coil power (Eq. 10–11), fan law
// (Eq. 12), a linearized battery charge balance, and the two initial
// conditions. Linear inequalities encode C1–C10 plus the comfort zone.
//
// Cost (Eq. 21): Σ w1·(Pf+Pc+Ph) + w2·(SoC_k − mean(SoC))² +
// w3·(Tz_k − Ttarget)². The SoC-deviation term uses the window's own mean
// (a PSD quadratic via the centering matrix) — the paper's SoCavg is the
// cycle average, unavailable in closed form inside the window; minimizing
// the window's variance is the same pressure: it flattens the SoC
// trajectory by shifting HVAC load away from motor-power peaks.
//
// Electrical power inside the window is modeled linearly in SoC
// (SoC_{k+1} = SoC_k − κ·P_total·Δt). The physical plant still applies the
// full Peukert/IR model; the controller's model error is handled by the
// receding horizon, exactly as in the paper (SQP on a bilinear model of a
// richer AMESim plant).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "battery/battery_params.hpp"
#include "hvac/hvac_params.hpp"
#include "optim/condensed_qp.hpp"
#include "optim/nlp.hpp"

namespace evc::core {

/// Variable packing for the control window.
class MpcIndex {
 public:
  explicit MpcIndex(std::size_t horizon);

  std::size_t horizon() const { return n_; }
  std::size_t num_vars() const { return 11 * n_ + 2; }
  std::size_t num_eq() const { return 6 * n_ + 2; }
  std::size_t num_ineq() const { return 16 * n_; }

  // k ranges: states 0..N, inputs/auxiliaries 0..N−1.
  std::size_t x(std::size_t k) const;
  std::size_t ts(std::size_t k) const;
  std::size_t tc(std::size_t k) const;
  std::size_t dr(std::size_t k) const;
  std::size_t mz(std::size_t k) const;
  std::size_t tm(std::size_t k) const;
  std::size_t ph(std::size_t k) const;
  std::size_t pc(std::size_t k) const;
  std::size_t pf(std::size_t k) const;
  std::size_t soc(std::size_t k) const;
  /// Comfort slack for predicted state x_{k+1}, k = 0..N−1.
  std::size_t slack(std::size_t k) const;

 private:
  std::size_t n_;
};

struct MpcWeights {
  double power = 0.02;        ///< w1, per kW per step
  double soc_deviation = 2.0; ///< w2, per %² per step
  double comfort = 0.3;       ///< w3, per K² per step
  /// Linear penalty per K of comfort-zone violation per step; large enough
  /// that slack is only used when the zone is physically unreachable.
  double comfort_slack = 50.0;
  /// Actuator-rate penalty on consecutive inputs Σ‖i_{k+1} − i_k‖²_W
  /// (production MPC practice: damper/valve wear and acoustic comfort).
  /// 0 disables it — the paper's cost has no such term. Channels are
  /// internally rescaled so a 1 K supply-temperature swing, a 0.1 damper
  /// swing and a 0.025 kg/s flow swing cost comparably.
  double input_rate = 0.0;
};

/// Per-window boundary data.
struct MpcWindowData {
  double dt_s = 5.0;
  double initial_cabin_temp_c = 24.0;
  double initial_soc_percent = 90.0;
  /// Forecast over the window, size = horizon: motor+accessory electrical
  /// power (kW) and ambient temperature (°C).
  std::vector<double> fixed_power_kw;
  std::vector<double> outside_temp_c;
  /// When set, the w2 term becomes the paper's literal (SoC − SoCavg)²
  /// with this cycle-average reference (percent) — typically the
  /// TripPlanner's predicted cycle average. When unset, the window's own
  /// mean is used (variance form).
  std::optional<double> soc_reference;
  /// Battery model inside the window: false (default) uses the linear
  /// charge balance SoC⁺ = SoC − κ·P·Δt; true applies the smoothed
  /// Peukert rate-capacity correction g(P) = P·(√(P²+δ²)/Pnom)^(pc−1)
  /// so high-power intervals drain super-linearly, as the plant does.
  bool nonlinear_battery = false;
};

class MpcFormulation : public opt::NlpProblem {
 public:
  MpcFormulation(hvac::HvacParams hvac_params,
                 bat::BatteryParams battery_params, MpcWeights weights,
                 MpcWindowData window);

  const MpcIndex& index() const { return idx_; }

  // --- NlpProblem interface ---
  std::size_t num_vars() const override { return idx_.num_vars(); }
  std::size_t num_eq() const override { return idx_.num_eq(); }
  double cost(const num::Vector& z) const override;
  num::Vector cost_gradient(const num::Vector& z) const override;
  num::Matrix cost_hessian(const num::Vector& z) const override;
  num::Vector eq_constraints(const num::Vector& z) const override;
  num::Matrix eq_jacobian(const num::Vector& z) const override;
  const num::Matrix& ineq_matrix() const override { return a_mat_; }
  const num::Vector& ineq_vector() const override { return b_vec_; }
  /// Elimination order for the condensed backend: the dynamics rows solve
  /// for the dependent trajectory (states, mixed-air temperature, powers,
  /// SoC), leaving the 5N true decisions (Ts, Tc, dr, mz, slack) free.
  const opt::CondensingPlan* condensing_plan() const override {
    return &plan_;
  }

  /// A physically consistent starting point: cabin/SoC held at their
  /// initial values, coils idle, minimum flow, all auxiliaries consistent
  /// with the equalities (up to the SoC drift from the fixed load).
  num::Vector cold_start() const;

  /// SoC discharge coefficient κ (percent per kW per second).
  double soc_per_kw_s() const { return kappa_; }

  /// The boundary data this window was built from (warm-start alignment).
  const MpcWindowData& window() const { return window_; }

 private:
  void build_cost();
  void build_inequalities();
  /// Smoothed Peukert throughput g(P) (kW) and its derivative at total
  /// power `p_kw` — identity when the window uses the linear model.
  double peukert_g(double p_kw) const;
  double peukert_dg(double p_kw) const;

  hvac::HvacParams hvac_;
  bat::BatteryParams battery_;
  MpcWeights weights_;
  MpcWindowData window_;
  MpcIndex idx_;
  double kappa_ = 0.0;  ///< %SoC per (kW·s)
  double peukert_pnom_kw_ = 8.0;

  num::Matrix hessian_;
  num::Vector gradient_const_;
  num::Matrix a_mat_;
  num::Vector b_vec_;
  opt::CondensingPlan plan_;
};

}  // namespace evc::core
