// Hierarchical multi-zone climate control.
//
// The paper's MPC is single-zone (§II-C). The practical multi-zone
// architecture — used in production VAV systems — is hierarchical: a
// single-zone *supply controller* (here: any ClimateController, including
// the battery lifetime-aware MPC) regulates the capacitance-weighted mean
// cabin temperature, while a fast inner loop steers the per-zone flow
// split toward the zones that are furthest from target on the supply's
// side of the error. This composes the paper's contribution with the
// multi-zone plant without re-deriving the MPC for M zones.
#pragma once

#include <memory>
#include <vector>

#include "control/controller.hpp"
#include "hvac/multizone.hpp"

namespace evc::core {

struct ZoneSplitOptions {
  /// Split sensitivity: share_i ∝ exp(gain · benefit_i), where benefit_i
  /// is how much supply air would move zone i toward the target (K).
  double gain = 0.8;
  /// Floor on any zone's share (every zone keeps some ventilation).
  double min_share = 0.1;
};

class MultiZoneSupervisor {
 public:
  MultiZoneSupervisor(std::unique_ptr<ctl::ClimateController> supply_controller,
                      hvac::MultiZoneParams params,
                      ZoneSplitOptions options = {});

  const ctl::ClimateController& supply_controller() const {
    return *supply_;
  }

  /// One step: feed the mean temperature to the supply controller, compute
  /// the zone split from the per-zone errors and the supply temperature,
  /// apply both to the plant.
  hvac::MultiZonePlant::StepResult step(hvac::MultiZonePlant& plant,
                                        const ctl::ControlContext& context,
                                        double dt_s);

  /// The split computed by the most recent step (empty before any step).
  const std::vector<double>& last_split() const { return last_split_; }

  /// Split policy in isolation (exposed for testing): given per-zone
  /// temperatures, the target, and the supply temperature, returns
  /// normalized shares.
  std::vector<double> compute_split(const std::vector<double>& zone_temps_c,
                                    double target_c,
                                    double supply_temp_c) const;

 private:
  std::unique_ptr<ctl::ClimateController> supply_;
  hvac::MultiZoneParams params_;
  ZoneSplitOptions options_;
  std::vector<double> last_split_;
};

}  // namespace evc::core
