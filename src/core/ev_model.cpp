#include "core/ev_model.hpp"

#include "util/serialize.hpp"

namespace evc::core {

EvModel::EvModel(EvParams params, double initial_soc_percent,
                 double initial_cabin_temp_c)
    : params_(params), power_train_(params.vehicle),
      hvac_plant_(params.hvac, initial_cabin_temp_c),
      bms_(params.battery, params.bms, initial_soc_percent) {}

void EvModel::reset(double soc_percent, double cabin_temp_c) {
  bms_.start_cycle(soc_percent);
  hvac_plant_.reset(cabin_temp_c);
}

EvStep EvModel::step(const drive::DriveSample& sample,
                     const hvac::HvacInputs& hvac_inputs, double dt_s) {
  EvStep out;
  out.motor_power_w = power_train_.power(sample).electrical_power_w;
  out.hvac = hvac_plant_.step(hvac_inputs, sample.ambient_c, dt_s);
  out.accessory_power_w = params_.vehicle.accessory_power_w;
  const double requested =
      out.motor_power_w + out.hvac.power.total() + out.accessory_power_w;
  out.total_power_w = bms_.apply_power(requested, dt_s);
  out.soc_percent = bms_.soc_percent();
  return out;
}

void EvModel::save_state(BinaryWriter& writer) const {
  writer.section("ev_model");
  hvac_plant_.save_state(writer);
  bms_.save_state(writer);
}

void EvModel::load_state(BinaryReader& reader) {
  reader.expect_section("ev_model");
  hvac_plant_.load_state(reader);
  bms_.load_state(reader);
}

}  // namespace evc::core
