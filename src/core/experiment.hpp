// Experiment helpers shared by the benchmark harness and the examples:
// controller factories and the three-way comparison (On/Off vs fuzzy vs
// battery lifetime-aware MPC) used by every figure/table of §IV.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "core/ev_model.hpp"
#include "core/mpc_controller.hpp"
#include "core/simulation.hpp"
#include "drivecycle/drive_profile.hpp"

namespace evc::core {

std::unique_ptr<ctl::ClimateController> make_onoff_controller(
    const EvParams& params);
std::unique_ptr<ctl::ClimateController> make_fuzzy_controller(
    const EvParams& params);
std::unique_ptr<MpcClimateController> make_mpc_controller(
    const EvParams& params, const MpcOptions& options = {});

struct ControllerRun {
  std::string controller;
  TripMetrics metrics;
};

/// Run all three methodologies on the same profile with identical comfort
/// settings (the paper's fairness protocol, §IV-B).
std::vector<ControllerRun> compare_controllers(
    const EvParams& params, const drive::DriveProfile& profile,
    const SimulationOptions& sim_options = {},
    const MpcOptions& mpc_options = {});

/// Percent improvement of `ours` over `baseline` (positive = ours lower).
double improvement_percent(double baseline, double ours);

}  // namespace evc::core
