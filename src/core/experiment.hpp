// Experiment helpers shared by the benchmark harness and the examples:
// controller factories and the three-way comparison (On/Off vs fuzzy vs
// battery lifetime-aware MPC) used by every figure/table of §IV.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/supervisor.hpp"
#include "core/ev_model.hpp"
#include "core/mpc_controller.hpp"
#include "core/simulation.hpp"
#include "drivecycle/drive_profile.hpp"

namespace evc::core {

std::unique_ptr<ctl::ClimateController> make_onoff_controller(
    const EvParams& params);
std::unique_ptr<ctl::ClimateController> make_fuzzy_controller(
    const EvParams& params);
std::unique_ptr<MpcClimateController> make_mpc_controller(
    const EvParams& params, const MpcOptions& options = {});

/// A relaxed variant of `options` used as the first fallback tier: shorter
/// horizon, looser tolerances, fewer iterations and a hard solve-time
/// budget — trades optimality for a bounded, dependable answer.
MpcOptions make_relaxed_mpc_options(const MpcOptions& options);

/// The canonical fault-tolerant chain of §ROBUSTNESS: full MPC → relaxed
/// MPC → PID → On/Off, wrapped in a SupervisedController (input sanitation,
/// deadline watchdog, hysteretic recovery). With clean inputs and a healthy
/// solver this is byte-identical to make_mpc_controller's output.
std::unique_ptr<ctl::SupervisedController> make_supervised_mpc_controller(
    const EvParams& params, const MpcOptions& options = {},
    const ctl::SupervisorOptions& supervisor_options = {});

struct ControllerRun {
  std::string controller;
  TripMetrics metrics;
};

/// Run all three methodologies on the same profile with identical comfort
/// settings (the paper's fairness protocol, §IV-B).
std::vector<ControllerRun> compare_controllers(
    const EvParams& params, const drive::DriveProfile& profile,
    const SimulationOptions& sim_options = {},
    const MpcOptions& mpc_options = {});

/// Percent improvement of `ours` over `baseline` (positive = ours lower).
double improvement_percent(double baseline, double ours);

}  // namespace evc::core
