// Driving-time closed-loop co-simulation (paper Algorithm 1).
//
// Runs a climate controller against the EV plant over a drive profile:
//   line 2–5   motor power pre-computed from the profile,
//   line 13–22 per-step loop: forecast window → controller → HVAC plant →
//              BMS SoC update,
//   line 23    ΔSoH of the completed discharge cycle.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "core/ev_model.hpp"
#include "core/metrics.hpp"
#include "drivecycle/drive_profile.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/fault_injection.hpp"
#include "sim/recorder.hpp"

namespace evc::core {

struct SimulationOptions {
  double initial_soc_percent = 90.0;
  /// Cabin temperature at departure; defaults to the comfort target (the
  /// paper evaluates regulation, not pull-down — override for pull-down
  /// scenarios).
  std::optional<double> initial_cabin_temp_c;
  /// How much of the drive profile the controller may look ahead (s).
  double forecast_horizon_s = 120.0;
  /// Record full traces (disable for parameter sweeps to save memory).
  bool record_traces = true;
  /// Optional fault injector corrupting the ControlContext the controller
  /// sees each step (the plant stays truthful). Not owned; the caller is
  /// responsible for reset() between runs. nullptr = clean sensors.
  sim::FaultInjector* fault_injector = nullptr;
  /// Bounded ring of per-step flight records (obs::FlightRecorder) kept by
  /// SimulationSession — the black box read after a crash or demotion.
  std::size_t flight_recorder_capacity = 4096;
  /// When non-empty, the flight recorder dumps its JSON here every time the
  /// supervisor demotes (the recorded tier rises) — the post-mortem for
  /// "why did the stack fall back".
  std::string flight_dump_path;
};

struct SimulationResult {
  TripMetrics metrics;
  /// Channels: cabin_temp_c, outside_temp_c, motor_power_w, hvac_power_w,
  /// heater_w, cooler_w, fan_w, soc_percent, speed_mps.
  sim::StateRecorder recorder;
};

class ClimateSimulation {
 public:
  explicit ClimateSimulation(EvParams params);

  const EvParams& params() const { return params_; }

  SimulationResult run(ctl::ClimateController& controller,
                       const drive::DriveProfile& profile,
                       const SimulationOptions& options = {}) const;

 private:
  EvParams params_;
};

/// Incremental form of ClimateSimulation::run() with crash-safe
/// checkpoint/restore.
///
/// A session owns everything Algorithm 1's loop mutates — the EV plant,
/// accumulators, traces, the recorder — and borrows the controller, drive
/// profile, and (optional) fault injector from the caller. Stepping it to
/// completion reproduces run() byte-for-byte; it exists so a run can be
/// *interrupted*:
///
///   checkpoint() serializes the complete mutable state (session, plant,
///   controller — via ClimateController::save_state — and fault-injector
///   RNG streams) into a sim::Checkpoint envelope; restore() loads one into
///   a freshly constructed session. A restored run continues byte-
///   identically: N steps + checkpoint + restore + M steps equals N + M
///   uninterrupted steps, including every trace sample, metric, controller
///   decision, and subsequent fault episode (tested; the chaos-soak bench
///   leans on this through kill-and-resume cycles).
///
/// The caller must reconstruct the same configuration before restore():
/// same profile, options, controller structure, and fault specs. Mismatches
/// the payload can detect (tier counts, spec counts, FDI presence) throw
/// SerializationError; value-level divergence is on the caller, exactly
/// like any process reloading its own state file.
class SimulationSession {
 public:
  /// Resets `controller` and prepares step 0. The referenced controller,
  /// profile, and options.fault_injector must outlive the session.
  SimulationSession(const EvParams& params, ctl::ClimateController& controller,
                    const drive::DriveProfile& profile,
                    const SimulationOptions& options = {});

  std::size_t step_index() const { return step_; }
  std::size_t total_steps() const { return n_; }
  bool done() const { return step_ >= n_; }
  double cabin_temp_c() const { return ev_.cabin_temp_c(); }
  double soc_percent() const { return ev_.soc_percent(); }

  /// Advance one control step (precondition: !done()).
  void advance();
  /// Advance until done.
  void run_to_completion();

  /// Metrics + recorder for the steps taken so far (canonically called at
  /// done(); the recorder is moved out, leaving the session finished).
  SimulationResult finish();

  /// Serialize the complete mutable state into an encoded checkpoint
  /// envelope (see sim::Checkpoint).
  std::string checkpoint() const;
  /// Restore from an encoded envelope produced by checkpoint() under the
  /// same configuration. Throws SerializationError on any mismatch the
  /// payload can detect.
  void restore(const std::string& encoded);
  /// Atomic file convenience wrappers around checkpoint()/restore().
  void checkpoint_to_file(const std::string& path) const;
  void restore_from_file(const std::string& path);

  /// The per-step black box (one FlightRecord per advance(), bounded ring).
  const obs::FlightRecorder& flight_recorder() const { return flight_; }

 private:
  EvParams params_;
  ctl::ClimateController& controller_;
  const drive::DriveProfile& profile_;
  SimulationOptions options_;

  EvModel ev_;
  std::vector<double> motor_power_;
  std::size_t forecast_samples_ = 1;
  double dt_ = 1.0;
  std::size_t n_ = 0;

  std::size_t step_ = 0;
  double motor_acc_ = 0.0;
  double hvac_acc_ = 0.0;
  double total_acc_ = 0.0;
  std::vector<double> cabin_trace_;
  std::vector<double> hvac_power_trace_;
  sim::StateRecorder recorder_;
  obs::FlightRecorder flight_;
  /// Highest tier seen so far; a rise triggers the flight_dump_path dump.
  std::uint32_t last_flight_tier_ = 0;
};

}  // namespace evc::core
