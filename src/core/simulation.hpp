// Driving-time closed-loop co-simulation (paper Algorithm 1).
//
// Runs a climate controller against the EV plant over a drive profile:
//   line 2–5   motor power pre-computed from the profile,
//   line 13–22 per-step loop: forecast window → controller → HVAC plant →
//              BMS SoC update,
//   line 23    ΔSoH of the completed discharge cycle.
#pragma once

#include <optional>

#include "control/controller.hpp"
#include "core/ev_model.hpp"
#include "core/metrics.hpp"
#include "drivecycle/drive_profile.hpp"
#include "sim/fault_injection.hpp"
#include "sim/recorder.hpp"

namespace evc::core {

struct SimulationOptions {
  double initial_soc_percent = 90.0;
  /// Cabin temperature at departure; defaults to the comfort target (the
  /// paper evaluates regulation, not pull-down — override for pull-down
  /// scenarios).
  std::optional<double> initial_cabin_temp_c;
  /// How much of the drive profile the controller may look ahead (s).
  double forecast_horizon_s = 120.0;
  /// Record full traces (disable for parameter sweeps to save memory).
  bool record_traces = true;
  /// Optional fault injector corrupting the ControlContext the controller
  /// sees each step (the plant stays truthful). Not owned; the caller is
  /// responsible for reset() between runs. nullptr = clean sensors.
  sim::FaultInjector* fault_injector = nullptr;
};

struct SimulationResult {
  TripMetrics metrics;
  /// Channels: cabin_temp_c, outside_temp_c, motor_power_w, hvac_power_w,
  /// heater_w, cooler_w, fan_w, soc_percent, speed_mps.
  sim::StateRecorder recorder;
};

class ClimateSimulation {
 public:
  explicit ClimateSimulation(EvParams params);

  const EvParams& params() const { return params_; }

  SimulationResult run(ctl::ClimateController& controller,
                       const drive::DriveProfile& profile,
                       const SimulationOptions& options = {}) const;

 private:
  EvParams params_;
};

}  // namespace evc::core
