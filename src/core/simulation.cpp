#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "sim/checkpoint.hpp"
#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::core {

ClimateSimulation::ClimateSimulation(EvParams params) : params_(params) {
  params_.vehicle.validate();
  params_.hvac.validate();
  params_.battery.validate();
}

SimulationResult ClimateSimulation::run(
    ctl::ClimateController& controller, const drive::DriveProfile& profile,
    const SimulationOptions& options) const {
  SimulationSession session(params_, controller, profile, options);
  session.run_to_completion();
  return session.finish();
}

SimulationSession::SimulationSession(const EvParams& params,
                                     ctl::ClimateController& controller,
                                     const drive::DriveProfile& profile,
                                     const SimulationOptions& options)
    : params_(params), controller_(controller), profile_(profile),
      options_(options),
      ev_(params, options.initial_soc_percent,
          options.initial_cabin_temp_c.value_or(params.hvac.target_temp_c)),
      flight_(options.flight_recorder_capacity) {
  EVC_EXPECT(!profile.empty(), "simulation needs a non-empty drive profile");
  EVC_EXPECT(options.initial_soc_percent > 0.0 &&
                 options.initial_soc_percent <= 100.0,
             "initial SoC outside (0, 100]");
  dt_ = profile.dt();
  n_ = profile.size();

  controller_.reset();

  // Algorithm 1 lines 2–5: motor power from the drive profile, known for
  // the whole trip before departure (GPS route knowledge).
  motor_power_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i)
    motor_power_[i] = ev_.power_train().power(profile[i]).electrical_power_w;

  forecast_samples_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(options.forecast_horizon_s / dt_)));

  cabin_trace_.reserve(n_);
  hvac_power_trace_.reserve(n_);
}

void SimulationSession::advance() {
  EVC_EXPECT(!done(), "advance() past the end of the drive profile");
  const std::size_t t = step_;
  obs::Tracer::global().set_sim_time(static_cast<double>(t) * dt_);
  EVC_TRACE_SPAN("sim.step");

  // Algorithm 1 lines 14–15: receding-horizon forecast.
  ctl::ControlContext context;
  context.time_s = static_cast<double>(t) * dt_;
  context.dt_s = dt_;
  context.cabin_temp_c = ev_.cabin_temp_c();
  context.outside_temp_c = profile_[t].ambient_c;
  context.soc_percent = ev_.soc_percent();
  context.motor_power_forecast_w.resize(forecast_samples_);
  context.outside_temp_forecast_c.resize(forecast_samples_);
  for (std::size_t j = 0; j < forecast_samples_; ++j) {
    const std::size_t i = std::min(t + j, n_ - 1);
    context.motor_power_forecast_w[j] = motor_power_[i];
    context.outside_temp_forecast_c[j] = profile_[i].ambient_c;
  }

  // Sensor/forecast corruption happens between plant and controller: the
  // controller decides from the faulted view, the plant stays truthful.
  if (options_.fault_injector != nullptr)
    options_.fault_injector->apply(context);

  // Algorithm 1 lines 16–22: decide, apply to the plant, update battery.
  const hvac::HvacInputs inputs = controller_.decide(context);
  const EvStep step = ev_.step(profile_[t], inputs, dt_);

  cabin_trace_.push_back(step.hvac.cabin_temp_c);
  hvac_power_trace_.push_back(step.hvac.power.total());
  motor_acc_ += step.motor_power_w;
  hvac_acc_ += step.hvac.power.total();
  total_acc_ += step.total_power_w;

  if (options_.record_traces) {
    const double time = context.time_s;
    recorder_.record("cabin_temp_c", time, step.hvac.cabin_temp_c);
    recorder_.record("outside_temp_c", time, profile_[t].ambient_c);
    recorder_.record("motor_power_w", time, step.motor_power_w);
    recorder_.record("hvac_power_w", time, step.hvac.power.total());
    recorder_.record("heater_w", time, step.hvac.power.heater_w);
    recorder_.record("cooler_w", time, step.hvac.power.cooler_w);
    recorder_.record("fan_w", time, step.hvac.power.fan_w);
    recorder_.record("soc_percent", time, step.soc_percent);
    recorder_.record("speed_mps", time, profile_[t].speed_mps);
  }

  // Flight recorder: one structured record per control step. The controller
  // stack fills its own fields (tier, FDI health, solver effort) through
  // the fill_flight_record() hook; everything else comes from the applied
  // actuation and the plant's post-step state.
  obs::FlightRecord rec;
  rec.time_s = static_cast<double>(t) * dt_;
  rec.dt_s = dt_;
  rec.supply_temp_c = inputs.supply_temp_c;
  rec.coil_temp_c = inputs.coil_temp_c;
  rec.recirculation = inputs.recirculation;
  rec.air_flow_kg_s = inputs.air_flow_kg_s;
  rec.cabin_temp_c = step.hvac.cabin_temp_c;
  rec.outside_temp_c = profile_[t].ambient_c;
  rec.soc_percent = step.soc_percent;
  rec.motor_power_w = step.motor_power_w;
  rec.hvac_power_w = step.hvac.power.total();
  controller_.fill_flight_record(rec);
  flight_.record(rec);
  if (rec.tier > last_flight_tier_) {
    // The stack just fell back a tier: dump the black box while the steps
    // leading up to the demotion are still in the ring.
    if (!options_.flight_dump_path.empty())
      flight_.dump_json(options_.flight_dump_path);
    last_flight_tier_ = rec.tier;
  }

  ++step_;
}

void SimulationSession::run_to_completion() {
  while (!done()) advance();
}

SimulationResult SimulationSession::finish() {
  SimulationResult result;
  result.recorder = std::move(recorder_);

  // Algorithm 1 line 23: ΔSoH of the discharge cycle.
  TripMetrics& m = result.metrics;
  const double dn = static_cast<double>(n_);
  m.duration_s = profile_.duration();
  m.distance_km = profile_.total_distance_m() / 1000.0;
  m.avg_motor_power_w = motor_acc_ / dn;
  m.avg_hvac_power_w = hvac_acc_ / dn;
  m.avg_total_power_w = total_acc_ / dn;
  m.hvac_energy_j = hvac_acc_ * dt_;
  m.total_energy_j = total_acc_ * dt_;
  m.initial_soc_percent = options_.initial_soc_percent;
  m.final_soc_percent = ev_.soc_percent();
  m.stress = ev_.bms().cycle_stress();
  m.delta_soh_percent = ev_.bms().cycle_delta_soh();
  {
    bat::SohModel soh(params_.battery);
    m.cycles_to_end_of_life = soh.cycles_to_end_of_life(m.delta_soh_percent);
  }
  if (m.distance_km > 1e-6) {
    m.consumption_wh_per_km = m.total_energy_j / 3600.0 / m.distance_km;
    const double usable_wh = params_.battery.nominal_capacity_ah *
                             params_.battery.nominal_voltage_v *
                             (options_.initial_soc_percent -
                              params_.bms.min_soc_percent) /
                             100.0;
    if (m.consumption_wh_per_km > 1e-9)
      m.estimated_range_km = usable_wh / m.consumption_wh_per_km;
  }
  m.comfort = comfort_stats(cabin_trace_, params_.hvac.comfort_min_c,
                            params_.hvac.comfort_max_c,
                            params_.hvac.target_temp_c);
  return result;
}

std::string SimulationSession::checkpoint() const {
  BinaryWriter writer;
  writer.section("session");
  writer.write_size(step_);
  writer.write_f64(motor_acc_);
  writer.write_f64(hvac_acc_);
  writer.write_f64(total_acc_);
  writer.write_f64_vec(cabin_trace_);
  writer.write_f64_vec(hvac_power_trace_);
  recorder_.save_state(writer);
  ev_.save_state(writer);
  writer.section("controller");
  controller_.save_state(writer);
  writer.section("faults");
  writer.write_bool(options_.fault_injector != nullptr);
  if (options_.fault_injector != nullptr)
    options_.fault_injector->save_state(writer);
  flight_.save_state(writer);
  writer.write_u32(last_flight_tier_);
  return sim::Checkpoint::wrap(writer.take()).encode();
}

void SimulationSession::restore(const std::string& encoded) {
  const sim::Checkpoint ckpt = sim::Checkpoint::decode(encoded);
  BinaryReader reader(ckpt.payload());
  reader.expect_section("session");
  step_ = reader.read_size();
  if (step_ > n_) throw SerializationError("checkpoint beyond profile end");
  motor_acc_ = reader.read_f64();
  hvac_acc_ = reader.read_f64();
  total_acc_ = reader.read_f64();
  cabin_trace_ = reader.read_f64_vec();
  hvac_power_trace_ = reader.read_f64_vec();
  recorder_.load_state(reader);
  ev_.load_state(reader);
  reader.expect_section("controller");
  controller_.load_state(reader);
  reader.expect_section("faults");
  const bool had_injector = reader.read_bool();
  if (had_injector != (options_.fault_injector != nullptr))
    throw SerializationError("fault injector configuration mismatch");
  if (options_.fault_injector != nullptr)
    options_.fault_injector->load_state(reader);
  flight_.load_state(reader);
  last_flight_tier_ = reader.read_u32();
  if (!reader.at_end())
    throw SerializationError("trailing bytes after checkpoint payload");
}

void SimulationSession::checkpoint_to_file(const std::string& path) const {
  sim::Checkpoint::decode(checkpoint()).write_file(path);
}

void SimulationSession::restore_from_file(const std::string& path) {
  restore(sim::Checkpoint::read_file(path).encode());
}

}  // namespace evc::core
