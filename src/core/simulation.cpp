#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::core {

ClimateSimulation::ClimateSimulation(EvParams params) : params_(params) {
  params_.vehicle.validate();
  params_.hvac.validate();
  params_.battery.validate();
}

SimulationResult ClimateSimulation::run(
    ctl::ClimateController& controller, const drive::DriveProfile& profile,
    const SimulationOptions& options) const {
  EVC_EXPECT(!profile.empty(), "simulation needs a non-empty drive profile");
  EVC_EXPECT(options.initial_soc_percent > 0.0 &&
                 options.initial_soc_percent <= 100.0,
             "initial SoC outside (0, 100]");
  const double dt = profile.dt();
  const std::size_t n = profile.size();
  const double cabin0 =
      options.initial_cabin_temp_c.value_or(params_.hvac.target_temp_c);

  controller.reset();
  EvModel ev(params_, options.initial_soc_percent, cabin0);

  // Algorithm 1 lines 2–5: motor power from the drive profile, known for
  // the whole trip before departure (GPS route knowledge).
  std::vector<double> motor_power(n);
  for (std::size_t i = 0; i < n; ++i)
    motor_power[i] = ev.power_train().power(profile[i]).electrical_power_w;

  const std::size_t forecast_samples = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(options.forecast_horizon_s / dt)));

  SimulationResult result;
  std::vector<double> cabin_trace;
  std::vector<double> hvac_power_trace;
  cabin_trace.reserve(n);
  hvac_power_trace.reserve(n);
  double motor_acc = 0.0, hvac_acc = 0.0, total_acc = 0.0;

  for (std::size_t t = 0; t < n; ++t) {
    // Algorithm 1 lines 14–15: receding-horizon forecast.
    ctl::ControlContext context;
    context.time_s = static_cast<double>(t) * dt;
    context.dt_s = dt;
    context.cabin_temp_c = ev.cabin_temp_c();
    context.outside_temp_c = profile[t].ambient_c;
    context.soc_percent = ev.soc_percent();
    context.motor_power_forecast_w.resize(forecast_samples);
    context.outside_temp_forecast_c.resize(forecast_samples);
    for (std::size_t j = 0; j < forecast_samples; ++j) {
      const std::size_t i = std::min(t + j, n - 1);
      context.motor_power_forecast_w[j] = motor_power[i];
      context.outside_temp_forecast_c[j] = profile[i].ambient_c;
    }

    // Sensor/forecast corruption happens between plant and controller: the
    // controller decides from the faulted view, the plant stays truthful.
    if (options.fault_injector != nullptr)
      options.fault_injector->apply(context);

    // Algorithm 1 lines 16–22: decide, apply to the plant, update battery.
    const hvac::HvacInputs inputs = controller.decide(context);
    const EvStep step = ev.step(profile[t], inputs, dt);

    cabin_trace.push_back(step.hvac.cabin_temp_c);
    hvac_power_trace.push_back(step.hvac.power.total());
    motor_acc += step.motor_power_w;
    hvac_acc += step.hvac.power.total();
    total_acc += step.total_power_w;

    if (options.record_traces) {
      const double time = context.time_s;
      result.recorder.record("cabin_temp_c", time, step.hvac.cabin_temp_c);
      result.recorder.record("outside_temp_c", time, profile[t].ambient_c);
      result.recorder.record("motor_power_w", time, step.motor_power_w);
      result.recorder.record("hvac_power_w", time, step.hvac.power.total());
      result.recorder.record("heater_w", time, step.hvac.power.heater_w);
      result.recorder.record("cooler_w", time, step.hvac.power.cooler_w);
      result.recorder.record("fan_w", time, step.hvac.power.fan_w);
      result.recorder.record("soc_percent", time, step.soc_percent);
      result.recorder.record("speed_mps", time, profile[t].speed_mps);
    }
  }

  // Algorithm 1 line 23: ΔSoH of the discharge cycle.
  TripMetrics& m = result.metrics;
  const double dn = static_cast<double>(n);
  m.duration_s = profile.duration();
  m.distance_km = profile.total_distance_m() / 1000.0;
  m.avg_motor_power_w = motor_acc / dn;
  m.avg_hvac_power_w = hvac_acc / dn;
  m.avg_total_power_w = total_acc / dn;
  m.hvac_energy_j = hvac_acc * dt;
  m.total_energy_j = total_acc * dt;
  m.initial_soc_percent = options.initial_soc_percent;
  m.final_soc_percent = ev.soc_percent();
  m.stress = ev.bms().cycle_stress();
  m.delta_soh_percent = ev.bms().cycle_delta_soh();
  {
    bat::SohModel soh(params_.battery);
    m.cycles_to_end_of_life = soh.cycles_to_end_of_life(m.delta_soh_percent);
  }
  if (m.distance_km > 1e-6) {
    m.consumption_wh_per_km = m.total_energy_j / 3600.0 / m.distance_km;
    const double usable_wh = params_.battery.nominal_capacity_ah *
                             params_.battery.nominal_voltage_v *
                             (options.initial_soc_percent -
                              params_.bms.min_soc_percent) /
                             100.0;
    if (m.consumption_wh_per_km > 1e-9)
      m.estimated_range_km = usable_wh / m.consumption_wh_per_km;
  }
  m.comfort = comfort_stats(cabin_trace, params_.hvac.comfort_min_c,
                            params_.hvac.comfort_max_c,
                            params_.hvac.target_temp_c);
  return result;
}

}  // namespace evc::core
