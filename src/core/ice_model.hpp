// Internal-combustion comparison vehicle for the motivational study
// (paper Fig. 1: power-share of engine / HVAC / accessories vs ambient
// temperature, Toyota-Corolla-class).
//
// The paper reads these numbers off published measurements; offline we
// regenerate them from an analytic model that captures the two effects the
// figure illustrates: (1) cabin heating is nearly free for an ICE vehicle
// (engine waste heat; only the fan draws useful power), and (2) cooling
// costs engine shaft power through the belt-driven compressor.
#pragma once

#include "drivecycle/drive_profile.hpp"

namespace evc::core {

struct IceParams {
  double mass_kg = 1300.0;
  double drag_coefficient = 0.29;
  double frontal_area_m2 = 2.10;
  double rolling_c0 = 0.010;
  /// Brake thermal efficiency of the engine at typical urban load.
  double engine_efficiency = 0.25;
  /// Fuel power burned at idle / very light load (urban driving keeps the
  /// engine spinning regardless of demand).
  double idle_fuel_power_w = 3000.0;
  /// Belt + compressor conversion efficiency for the A/C drive.
  double compressor_drive_efficiency = 0.85;
  double ac_cop = 2.5;              ///< vapor-compression COP
  double fan_power_w = 250.0;       ///< blower at typical speed
  double accessory_power_w = 350.0; ///< alternator-supplied loads
  /// Cabin steady heat-exchange coefficient with outside (W/K) including
  /// ventilation air — used for the steady HVAC load estimate.
  double cabin_ua_w_per_k = 70.0;
  double solar_load_w = 400.0;
  double target_temp_c = 24.0;
};

/// Average power of the three consumption categories over a trip, expressed
/// as fuel-equivalent power (W) so the shares are comparable to Fig. 1.
struct PowerShare {
  double propulsion_w = 0.0;
  double hvac_w = 0.0;
  double accessories_w = 0.0;
  double total() const { return propulsion_w + hvac_w + accessories_w; }
  double hvac_fraction() const { return hvac_w / total(); }
};

class IceVehicleModel {
 public:
  explicit IceVehicleModel(IceParams params = {});

  const IceParams& params() const { return params_; }

  /// Average power share over `profile` with the HVAC holding the target
  /// cabin temperature against `profile`'s ambient temperature.
  PowerShare average_power_share(const drive::DriveProfile& profile) const;

 private:
  IceParams params_;
};

}  // namespace evc::core
