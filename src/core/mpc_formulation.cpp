#include "core/mpc_formulation.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/units.hpp"

namespace evc::core {

MpcIndex::MpcIndex(std::size_t horizon) : n_(horizon) {
  EVC_EXPECT(horizon >= 1, "MPC horizon must be at least one step");
}

std::size_t MpcIndex::x(std::size_t k) const {
  EVC_EXPECT(k <= n_, "state index out of horizon");
  return k;
}
std::size_t MpcIndex::ts(std::size_t k) const {
  EVC_EXPECT(k < n_, "input index out of horizon");
  return (n_ + 1) + 4 * k;
}
std::size_t MpcIndex::tc(std::size_t k) const { return ts(k) + 1; }
std::size_t MpcIndex::dr(std::size_t k) const { return ts(k) + 2; }
std::size_t MpcIndex::mz(std::size_t k) const { return ts(k) + 3; }
std::size_t MpcIndex::tm(std::size_t k) const {
  EVC_EXPECT(k < n_, "auxiliary index out of horizon");
  return (n_ + 1) + 4 * n_ + 4 * k;
}
std::size_t MpcIndex::ph(std::size_t k) const { return tm(k) + 1; }
std::size_t MpcIndex::pc(std::size_t k) const { return tm(k) + 2; }
std::size_t MpcIndex::pf(std::size_t k) const { return tm(k) + 3; }
std::size_t MpcIndex::soc(std::size_t k) const {
  EVC_EXPECT(k <= n_, "SoC index out of horizon");
  return (n_ + 1) + 8 * n_ + k;
}
std::size_t MpcIndex::slack(std::size_t k) const {
  EVC_EXPECT(k < n_, "slack index out of horizon");
  return 10 * n_ + 2 + k;
}

MpcFormulation::MpcFormulation(hvac::HvacParams hvac_params,
                               bat::BatteryParams battery_params,
                               MpcWeights weights, MpcWindowData window)
    : hvac_(hvac_params), battery_(battery_params), weights_(weights),
      window_(std::move(window)), idx_(window_.fixed_power_kw.size()) {
  hvac_.validate();
  battery_.validate();
  EVC_EXPECT(window_.dt_s > 0.0, "MPC step must be positive");
  EVC_EXPECT(window_.outside_temp_c.size() == idx_.horizon(),
             "forecast arrays must have equal length");
  EVC_EXPECT(weights_.power >= 0.0 && weights_.soc_deviation >= 0.0 &&
                 weights_.comfort >= 0.0,
             "MPC weights must be non-negative");

  // κ: SoC percent consumed per kW per second at the nominal voltage.
  kappa_ = 100.0 * 1000.0 /
           (battery_.nominal_voltage_v *
            units::ah_to_coulomb(battery_.nominal_capacity_ah));
  // Peukert normalization power (kW): the draw at the nominal current.
  peukert_pnom_kw_ =
      battery_.nominal_voltage_v * battery_.nominal_current_a / 1000.0;

  build_cost();
  build_inequalities();

  // Condensing plan: the two initial conditions pin x(0)/SoC(0), then each
  // step's equality rows are solved in turn for x(k+1) (cabin dynamics,
  // pivot 1 + coupling ≥ 1), Tm (mixer), Ph/Pc/Pf (coil and fan laws) and
  // SoC(k+1) (charge balance) — every pivot is the row's own unit (or
  // near-unit) coefficient, so the elimination is valid at any
  // linearization point.
  const std::size_t horizon = idx_.horizon();
  plan_.num_vars = idx_.num_vars();
  plan_.dep_rows.reserve(idx_.num_eq());
  plan_.dep_cols.reserve(idx_.num_eq());
  plan_.dep_rows.push_back(6 * horizon);
  plan_.dep_cols.push_back(idx_.x(0));
  plan_.dep_rows.push_back(6 * horizon + 1);
  plan_.dep_cols.push_back(idx_.soc(0));
  for (std::size_t k = 0; k < horizon; ++k) {
    const std::size_t cols[6] = {idx_.x(k + 1), idx_.tm(k), idx_.ph(k),
                                 idx_.pc(k),    idx_.pf(k), idx_.soc(k + 1)};
    for (std::size_t r = 0; r < 6; ++r) {
      plan_.dep_rows.push_back(6 * k + r);
      plan_.dep_cols.push_back(cols[r]);
    }
  }
  EVC_ENSURE(plan_.finalize(), "condensing plan inconsistent");
}

void MpcFormulation::build_cost() {
  const std::size_t n = idx_.num_vars();
  const std::size_t horizon = idx_.horizon();
  hessian_ = num::Matrix(n, n);
  gradient_const_ = num::Vector(n);

  // w3·(Tz_k − Ttarget)² over k = 0..N (0.5 zᵀHz + gᵀz form → H gets 2w3).
  for (std::size_t k = 0; k <= horizon; ++k) {
    const std::size_t ix = idx_.x(k);
    hessian_(ix, ix) += 2.0 * weights_.comfort;
    gradient_const_[ix] += -2.0 * weights_.comfort * hvac_.target_temp_c;
  }

  // w1·(Ph+Pc+Pf) — linear; comfort-zone slack penalty — linear.
  for (std::size_t k = 0; k < horizon; ++k) {
    gradient_const_[idx_.ph(k)] += weights_.power;
    gradient_const_[idx_.pc(k)] += weights_.power;
    gradient_const_[idx_.pf(k)] += weights_.power;
    gradient_const_[idx_.slack(k)] += weights_.comfort_slack;
  }

  // Actuator-rate penalty Σ‖i_{k+1} − i_k‖²_W: tridiagonal blocks per
  // input channel. Per-channel scales put temperatures (K), damper
  // fraction, and flow (kg/s) on comparable footing.
  if (weights_.input_rate > 0.0 && horizon >= 2) {
    const double channel_scale[4] = {1.0, 1.0, 100.0, 1600.0};
    for (std::size_t k = 0; k + 1 < horizon; ++k) {
      const std::size_t a[4] = {idx_.ts(k), idx_.tc(k), idx_.dr(k),
                                idx_.mz(k)};
      const std::size_t b[4] = {idx_.ts(k + 1), idx_.tc(k + 1),
                                idx_.dr(k + 1), idx_.mz(k + 1)};
      for (int ch = 0; ch < 4; ++ch) {
        const double w = 2.0 * weights_.input_rate * channel_scale[ch];
        hessian_(a[ch], a[ch]) += w;
        hessian_(b[ch], b[ch]) += w;
        hessian_(a[ch], b[ch]) -= w;
        hessian_(b[ch], a[ch]) -= w;
      }
    }
  }

  const std::size_t m = horizon + 1;
  if (window_.soc_reference.has_value()) {
    // Paper's literal Eq. 21 form: w2·Σ(SoC_k − SoCavg)² against the
    // cycle-average reference supplied by the trip planner.
    const double ref = *window_.soc_reference;
    for (std::size_t a = 0; a < m; ++a) {
      const std::size_t i = idx_.soc(a);
      hessian_(i, i) += 2.0 * weights_.soc_deviation;
      gradient_const_[i] += -2.0 * weights_.soc_deviation * ref;
    }
  } else {
    // Window-variance form: w2·Σ(SoC_k − mean(SoC))², the centering
    // quadratic 2w2·(I − 11ᵀ/M).
    const double inv_m = 1.0 / static_cast<double>(m);
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = 0; b < m; ++b) {
        const double cij = (a == b ? 1.0 : 0.0) - inv_m;
        hessian_(idx_.soc(a), idx_.soc(b)) +=
            2.0 * weights_.soc_deviation * cij;
      }
    }
  }
}

double MpcFormulation::peukert_g(double p_kw) const {
  if (!window_.nonlinear_battery) return p_kw;
  constexpr double kDelta = 0.5;  // kW smoothing near zero power
  const double mag = std::sqrt(p_kw * p_kw + kDelta * kDelta);
  return p_kw * std::pow(mag / peukert_pnom_kw_,
                         battery_.peukert_constant - 1.0);
}

double MpcFormulation::peukert_dg(double p_kw) const {
  if (!window_.nonlinear_battery) return 1.0;
  constexpr double kDelta = 0.5;
  const double pc1 = battery_.peukert_constant - 1.0;
  const double mag = std::sqrt(p_kw * p_kw + kDelta * kDelta);
  const double base = std::pow(mag / peukert_pnom_kw_, pc1);
  // d/dP [P·(mag/Pnom)^(pc−1)] = base + P·pc1·(mag/Pnom)^(pc−2)·(P/mag)/Pnom
  return base + p_kw * pc1 *
                    std::pow(mag / peukert_pnom_kw_, pc1 - 1.0) *
                    (p_kw / mag) / peukert_pnom_kw_;
}

double MpcFormulation::cost(const num::Vector& z) const {
  return 0.5 * z.dot(hessian_ * z) + gradient_const_.dot(z);
}

num::Vector MpcFormulation::cost_gradient(const num::Vector& z) const {
  return hessian_ * z + gradient_const_;
}

num::Matrix MpcFormulation::cost_hessian(const num::Vector&) const {
  return hessian_;
}

num::Vector MpcFormulation::eq_constraints(const num::Vector& z) const {
  const std::size_t horizon = idx_.horizon();
  const double dt = window_.dt_s;
  const double gamma = dt / hvac_.cabin_capacitance_j_per_k;
  const double cp = hvac_.air_cp;
  num::Vector c(idx_.num_eq());

  std::size_t row = 0;
  for (std::size_t k = 0; k < horizon; ++k) {
    const double to = window_.outside_temp_c[k];
    const double xk = z[idx_.x(k)];
    const double xk1 = z[idx_.x(k + 1)];
    const double xbar = 0.5 * (xk + xk1);
    const double ts = z[idx_.ts(k)];
    const double tc = z[idx_.tc(k)];
    const double dr = z[idx_.dr(k)];
    const double mz = z[idx_.mz(k)];
    const double tm = z[idx_.tm(k)];

    // Cabin dynamics (Eq. 18–19), scaled by Δt/Mc for conditioning.
    c[row++] = (xk1 - xk) -
               gamma * (hvac_.solar_load_w +
                        hvac_.wall_ua_w_per_k * (to - xbar) +
                        mz * cp * (ts - xbar));
    // Mixer (Eq. 9).
    c[row++] = tm - (1.0 - dr) * to - dr * xk;
    // Heater power in kW (Eq. 10).
    c[row++] = z[idx_.ph(k)] -
               cp / (1000.0 * hvac_.heater_efficiency) * mz * (ts - tc);
    // Cooler power in kW (Eq. 11).
    c[row++] = z[idx_.pc(k)] -
               cp / (1000.0 * hvac_.cooler_efficiency) * mz * (tm - tc);
    // Fan law in kW (Eq. 12).
    c[row++] = z[idx_.pf(k)] - hvac_.fan_coefficient / 1000.0 * mz * mz;
    // Battery charge balance: Eq. 13 linearized, or with the smoothed
    // Peukert correction when the window models the rate-capacity effect.
    c[row++] = z[idx_.soc(k + 1)] - z[idx_.soc(k)] +
               kappa_ * dt *
                   peukert_g(z[idx_.ph(k)] + z[idx_.pc(k)] + z[idx_.pf(k)] +
                             window_.fixed_power_kw[k]);
  }
  // Initial conditions (x0|t, Algorithm 1 lines 11, 21–22).
  c[row++] = z[idx_.x(0)] - window_.initial_cabin_temp_c;
  c[row++] = z[idx_.soc(0)] - window_.initial_soc_percent;
  EVC_ENSURE(row == idx_.num_eq(), "equality row count mismatch");
  return c;
}

num::Matrix MpcFormulation::eq_jacobian(const num::Vector& z) const {
  const std::size_t horizon = idx_.horizon();
  const double dt = window_.dt_s;
  const double gamma = dt / hvac_.cabin_capacitance_j_per_k;
  const double cp = hvac_.air_cp;
  num::Matrix j(idx_.num_eq(), idx_.num_vars());

  std::size_t row = 0;
  for (std::size_t k = 0; k < horizon; ++k) {
    const double to = window_.outside_temp_c[k];
    const double xk = z[idx_.x(k)];
    const double xk1 = z[idx_.x(k + 1)];
    const double xbar = 0.5 * (xk + xk1);
    const double ts = z[idx_.ts(k)];
    const double tc = z[idx_.tc(k)];
    const double dr = z[idx_.dr(k)];
    const double mz = z[idx_.mz(k)];
    const double tm = z[idx_.tm(k)];

    // Cabin dynamics row.
    const double half_coupling =
        0.5 * gamma * (hvac_.wall_ua_w_per_k + mz * cp);
    j(row, idx_.x(k)) = -1.0 + half_coupling;
    j(row, idx_.x(k + 1)) = 1.0 + half_coupling;
    j(row, idx_.ts(k)) = -gamma * mz * cp;
    j(row, idx_.mz(k)) = -gamma * cp * (ts - xbar);
    ++row;
    // Mixer row.
    j(row, idx_.tm(k)) = 1.0;
    j(row, idx_.dr(k)) = to - xk;
    j(row, idx_.x(k)) = -dr;
    ++row;
    // Heater row.
    {
      const double scale = cp / (1000.0 * hvac_.heater_efficiency);
      j(row, idx_.ph(k)) = 1.0;
      j(row, idx_.mz(k)) = -scale * (ts - tc);
      j(row, idx_.ts(k)) = -scale * mz;
      j(row, idx_.tc(k)) = scale * mz;
      ++row;
    }
    // Cooler row.
    {
      const double scale = cp / (1000.0 * hvac_.cooler_efficiency);
      j(row, idx_.pc(k)) = 1.0;
      j(row, idx_.mz(k)) = -scale * (tm - tc);
      j(row, idx_.tm(k)) = -scale * mz;
      j(row, idx_.tc(k)) = scale * mz;
      ++row;
    }
    // Fan row.
    j(row, idx_.pf(k)) = 1.0;
    j(row, idx_.mz(k)) = -2.0 * hvac_.fan_coefficient / 1000.0 * mz;
    ++row;
    // Battery row (linear, or chain rule through the Peukert throughput).
    {
      const double total_kw = z[idx_.ph(k)] + z[idx_.pc(k)] +
                              z[idx_.pf(k)] + window_.fixed_power_kw[k];
      const double sensitivity = kappa_ * dt * peukert_dg(total_kw);
      j(row, idx_.soc(k + 1)) = 1.0;
      j(row, idx_.soc(k)) = -1.0;
      j(row, idx_.ph(k)) = sensitivity;
      j(row, idx_.pc(k)) = sensitivity;
      j(row, idx_.pf(k)) = sensitivity;
      ++row;
    }
  }
  j(row, idx_.x(0)) = 1.0;
  ++row;
  j(row, idx_.soc(0)) = 1.0;
  ++row;
  EVC_ENSURE(row == idx_.num_eq(), "Jacobian row count mismatch");
  return j;
}

void MpcFormulation::build_inequalities() {
  const std::size_t horizon = idx_.horizon();
  a_mat_ = num::Matrix(idx_.num_ineq(), idx_.num_vars());
  b_vec_ = num::Vector(idx_.num_ineq());

  std::size_t row = 0;
  auto upper = [&](std::size_t var, double bound) {
    a_mat_(row, var) = 1.0;
    b_vec_[row] = bound;
    ++row;
  };
  auto lower = [&](std::size_t var, double bound) {
    a_mat_(row, var) = -1.0;
    b_vec_[row] = -bound;
    ++row;
  };

  for (std::size_t k = 0; k < horizon; ++k) {
    // C1: flow bounds.
    upper(idx_.mz(k), hvac_.max_air_flow_kg_s);
    lower(idx_.mz(k), hvac_.min_air_flow_kg_s);
    // C2 (soft): comfort zone on the predicted states x_1..x_N with a
    // non-negative slack, so an infeasible start degrades instead of
    // aborting the plan.
    a_mat_(row, idx_.x(k + 1)) = 1.0;
    a_mat_(row, idx_.slack(k)) = -1.0;
    b_vec_[row] = hvac_.comfort_max_c;
    ++row;
    a_mat_(row, idx_.x(k + 1)) = -1.0;
    a_mat_(row, idx_.slack(k)) = -1.0;
    b_vec_[row] = -hvac_.comfort_min_c;
    ++row;
    lower(idx_.slack(k), 0.0);
    // C3: Tc ≤ Ts.
    a_mat_(row, idx_.tc(k)) = 1.0;
    a_mat_(row, idx_.ts(k)) = -1.0;
    b_vec_[row] = 0.0;
    ++row;
    // C4: Tc ≤ Tm.
    a_mat_(row, idx_.tc(k)) = 1.0;
    a_mat_(row, idx_.tm(k)) = -1.0;
    b_vec_[row] = 0.0;
    ++row;
    // C5: coil frost limit.
    lower(idx_.tc(k), hvac_.min_coil_temp_c);
    // C6: heater outlet limit.
    upper(idx_.ts(k), hvac_.max_supply_temp_c);
    // C7: damper range.
    upper(idx_.dr(k), hvac_.max_recirculation);
    lower(idx_.dr(k), 0.0);
    // C8/C9: coil power caps (kW) and non-negativity.
    upper(idx_.ph(k), hvac_.max_heater_power_w / 1000.0);
    lower(idx_.ph(k), 0.0);
    upper(idx_.pc(k), hvac_.max_cooler_power_w / 1000.0);
    lower(idx_.pc(k), 0.0);
    // C10: fan power cap (kW).
    upper(idx_.pf(k), hvac_.max_fan_power_w / 1000.0);
  }
  EVC_ENSURE(row == idx_.num_ineq(), "inequality row count mismatch");
}

num::Vector MpcFormulation::cold_start() const {
  const std::size_t horizon = idx_.horizon();
  num::Vector z(idx_.num_vars());
  const double tz0 = window_.initial_cabin_temp_c;
  double soc = window_.initial_soc_percent;
  for (std::size_t k = 0; k <= horizon; ++k) z[idx_.x(k)] = tz0;
  for (std::size_t k = 0; k < horizon; ++k) {
    const double to = window_.outside_temp_c[k];
    const double dr = 0.5 * hvac_.max_recirculation;
    const double tm = (1.0 - dr) * to + dr * tz0;
    const double mz = hvac_.min_air_flow_kg_s;
    z[idx_.ts(k)] = tm;
    z[idx_.tc(k)] = tm;
    z[idx_.dr(k)] = dr;
    z[idx_.mz(k)] = mz;
    z[idx_.tm(k)] = tm;
    z[idx_.ph(k)] = 0.0;
    z[idx_.pc(k)] = 0.0;
    const double pf_kw = hvac_.fan_coefficient / 1000.0 * mz * mz;
    z[idx_.pf(k)] = pf_kw;
    z[idx_.soc(k)] = soc;
    soc -= kappa_ * window_.dt_s * (pf_kw + window_.fixed_power_kw[k]);
    // Slack covers any initial comfort violation so the cold start is
    // feasible even for a heat-soaked or frozen cabin.
    z[idx_.slack(k)] = std::max({0.0, tz0 - hvac_.comfort_max_c,
                                 hvac_.comfort_min_c - tz0});
  }
  z[idx_.soc(horizon)] = soc;
  return z;
}

}  // namespace evc::core
