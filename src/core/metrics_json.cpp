#include "core/metrics_json.hpp"

#include "util/json.hpp"

namespace evc::core {

namespace {

void write_metrics(JsonWriter& json, const TripMetrics& m) {
  json.begin_object();
  json.key("duration_s").value(m.duration_s);
  json.key("distance_km").value(m.distance_km);
  json.key("avg_motor_power_w").value(m.avg_motor_power_w);
  json.key("avg_hvac_power_w").value(m.avg_hvac_power_w);
  json.key("avg_total_power_w").value(m.avg_total_power_w);
  json.key("hvac_energy_j").value(m.hvac_energy_j);
  json.key("total_energy_j").value(m.total_energy_j);
  json.key("initial_soc_percent").value(m.initial_soc_percent);
  json.key("final_soc_percent").value(m.final_soc_percent);
  json.key("soc_deviation_percent").value(m.stress.soc_deviation);
  json.key("soc_average_percent").value(m.stress.soc_average);
  json.key("delta_soh_percent").value(m.delta_soh_percent);
  json.key("cycles_to_end_of_life").value(m.cycles_to_end_of_life);
  json.key("consumption_wh_per_km").value(m.consumption_wh_per_km);
  json.key("estimated_range_km").value(m.estimated_range_km);
  json.key("comfort");
  json.begin_object();
  json.key("fraction_outside").value(m.comfort.fraction_outside);
  json.key("max_abs_error_c").value(m.comfort.max_abs_error_c);
  json.key("rms_error_c").value(m.comfort.rms_error_c);
  json.key("avg_ppd_percent").value(m.comfort.avg_ppd_percent);
  json.end_object();
  json.end_object();
}

}  // namespace

std::string to_json(const TripMetrics& metrics) {
  JsonWriter json;
  write_metrics(json, metrics);
  return json.str();
}

std::string to_json(const MpcPlanStats& stats) {
  JsonWriter json;
  json.begin_object();
  json.key("plans").value(stats.plans);
  json.key("failures").value(stats.failures);
  json.key("sqp_iterations").value(stats.sqp_iterations);
  json.key("qp_iterations").value(stats.qp_iterations);
  json.key("solve_time_ns").value(stats.solve_time_ns);
  json.key("dual_warm_starts").value(stats.dual_warm_starts);
  json.key("converged").value(stats.converged);
  json.key("max_iteration_exits").value(stats.max_iteration_exits);
  json.key("timeouts").value(stats.timeouts);
  json.key("numerical_failures").value(stats.numerical_failures);
  json.key("rejected_plans").value(stats.rejected_plans);
  json.key("solver");
  json.begin_object();
  json.key("solves").value(stats.solver.solves);
  json.key("ipm_iterations").value(stats.solver.ipm_iterations);
  json.key("factorizations").value(stats.solver.factorizations);
  json.key("schur_solves").value(stats.solver.schur_solves);
  json.key("schur_regularizations").value(stats.solver.schur_regularizations);
  json.key("dense_fallbacks").value(stats.solver.dense_fallbacks);
  json.key("timeouts").value(stats.solver.timeouts);
  json.key("warm_starts").value(stats.solver.warm_starts);
  json.key("workspace_growths").value(stats.solver.workspace_growths);
  json.key("peak_workspace_bytes").value(stats.solver.peak_workspace_bytes);
  json.end_object();
  json.key("workspace_bytes").value(stats.solver_workspace_bytes);
  json.end_object();
  return json.str();
}

std::string to_json(const ctl::SupervisorStats& stats) {
  JsonWriter json;
  json.begin_object();
  json.key("steps").value(stats.steps);
  json.key("sanitized_steps").value(stats.sanitized_steps);
  json.key("sanitized_values").value(stats.sanitized_values);
  json.key("deadline_misses").value(stats.deadline_misses);
  json.key("health_degradations").value(stats.health_degradations);
  json.key("invalid_outputs").value(stats.invalid_outputs);
  json.key("output_clamps").value(stats.output_clamps);
  json.key("demotions").value(stats.demotions);
  json.key("promotions").value(stats.promotions);
  json.key("hold_expirations").value(stats.hold_expirations);
  json.key("fdi_substituted_steps").value(stats.fdi_substituted_steps);
  json.key("tier_steps");
  json.begin_array();
  for (std::size_t steps : stats.tier_steps) json.value(steps);
  json.end_array();
  json.end_object();
  return json.str();
}

std::string to_json(const sim::FaultInjectionStats& stats) {
  JsonWriter json;
  json.begin_object();
  json.key("steps").value(stats.steps);
  json.key("faulted_steps").value(stats.faulted_steps);
  json.key("episodes").value(stats.episodes);
  json.key("bias_steps").value(stats.bias_steps);
  json.key("stuck_steps").value(stats.stuck_steps);
  json.key("dropout_steps").value(stats.dropout_steps);
  json.key("stale_steps").value(stats.stale_steps);
  json.key("spike_steps").value(stats.spike_steps);
  json.key("quantization_steps").value(stats.quantization_steps);
  json.end_object();
  return json.str();
}

namespace {

void write_fdi_sensor(JsonWriter& json, const fdi::FdiSensorStats& s) {
  json.begin_object();
  json.key("steps").value(s.steps);
  json.key("gate_exceedances").value(s.gate_exceedances);
  json.key("fused_steps").value(s.fused_steps);
  json.key("substituted_steps").value(s.substituted_steps);
  json.key("nis_mean").value(s.nis_samples > 0
                                 ? s.nis_sum / static_cast<double>(s.nis_samples)
                                 : 0.0);
  json.key("nis_max").value(s.nis_max);
  json.key("nis_samples").value(s.nis_samples);
  json.key("detections").value(s.health.detections);
  json.key("false_trips").value(s.health.false_trips);
  json.key("isolations").value(s.health.isolations);
  json.key("re_trips").value(s.health.re_trips);
  json.key("recovery_probes").value(s.health.recovery_probes);
  json.key("readmissions").value(s.health.readmissions);
  json.end_object();
}

}  // namespace

std::string to_json(const fdi::FdiStats& stats) {
  JsonWriter json;
  json.begin_object();
  json.key("steps").value(stats.steps);
  json.key("substituted_steps").value(stats.substituted_steps);
  json.key("cabin");
  write_fdi_sensor(json, stats.cabin);
  json.key("outside");
  write_fdi_sensor(json, stats.outside);
  json.key("soc");
  write_fdi_sensor(json, stats.soc);
  json.end_object();
  return json.str();
}

std::string to_json(const std::vector<ControllerRun>& runs) {
  JsonWriter json;
  json.begin_array();
  for (const ControllerRun& run : runs) {
    json.begin_object();
    json.key("controller").value(run.controller);
    json.key("metrics");
    write_metrics(json, run.metrics);
    json.end_object();
  }
  json.end_array();
  return json.str();
}

}  // namespace evc::core
