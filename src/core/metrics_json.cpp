#include "core/metrics_json.hpp"

#include "util/json.hpp"

namespace evc::core {

namespace {

void visit_qp_counters(const opt::QpPerfCounters& c, obs::FieldSink& sink) {
  sink.field_size("solves", c.solves);
  sink.field_size("ipm_iterations", c.ipm_iterations);
  sink.field_size("factorizations", c.factorizations);
  sink.field_size("schur_solves", c.schur_solves);
  sink.field_size("schur_regularizations", c.schur_regularizations);
  sink.field_size("dense_fallbacks", c.dense_fallbacks);
  sink.field_size("timeouts", c.timeouts);
  sink.field_size("warm_starts", c.warm_starts);
  sink.field_size("workspace_growths", c.workspace_growths);
  sink.field_size("peak_workspace_bytes", c.peak_workspace_bytes);
  sink.field_size("condensed_solves", c.condensed_solves);
  sink.field_size("condense_rebuilds", c.condense_rebuilds);
  sink.field_size("active_set_changes", c.active_set_changes);
  sink.field_u64("solve_time_ns", c.solve_time_ns);
  sink.field_u64("factorize_time_ns", c.factorize_time_ns);
  sink.field_u64("timeout_time_ns", c.timeout_time_ns);
}

void visit_fdi_sensor(const fdi::FdiSensorStats& s, obs::FieldSink& sink) {
  sink.field_size("steps", s.steps);
  sink.field_size("gate_exceedances", s.gate_exceedances);
  sink.field_size("fused_steps", s.fused_steps);
  sink.field_size("substituted_steps", s.substituted_steps);
  sink.field_f64("nis_mean",
                 s.nis_samples > 0
                     ? s.nis_sum / static_cast<double>(s.nis_samples)
                     : 0.0);
  sink.field_f64("nis_max", s.nis_max);
  sink.field_size("nis_samples", s.nis_samples);
  sink.field_size("detections", s.health.detections);
  sink.field_size("false_trips", s.health.false_trips);
  sink.field_size("isolations", s.health.isolations);
  sink.field_size("re_trips", s.health.re_trips);
  sink.field_size("recovery_probes", s.health.recovery_probes);
  sink.field_size("readmissions", s.health.readmissions);
}

}  // namespace

void visit_fields(const TripMetrics& m, obs::FieldSink& sink) {
  sink.field_f64("duration_s", m.duration_s);
  sink.field_f64("distance_km", m.distance_km);
  sink.field_f64("avg_motor_power_w", m.avg_motor_power_w);
  sink.field_f64("avg_hvac_power_w", m.avg_hvac_power_w);
  sink.field_f64("avg_total_power_w", m.avg_total_power_w);
  sink.field_f64("hvac_energy_j", m.hvac_energy_j);
  sink.field_f64("total_energy_j", m.total_energy_j);
  sink.field_f64("initial_soc_percent", m.initial_soc_percent);
  sink.field_f64("final_soc_percent", m.final_soc_percent);
  sink.field_f64("soc_deviation_percent", m.stress.soc_deviation);
  sink.field_f64("soc_average_percent", m.stress.soc_average);
  sink.field_f64("delta_soh_percent", m.delta_soh_percent);
  sink.field_f64("cycles_to_end_of_life", m.cycles_to_end_of_life);
  sink.field_f64("consumption_wh_per_km", m.consumption_wh_per_km);
  sink.field_f64("estimated_range_km", m.estimated_range_km);
  sink.begin_group("comfort");
  sink.field_f64("fraction_outside", m.comfort.fraction_outside);
  sink.field_f64("max_abs_error_c", m.comfort.max_abs_error_c);
  sink.field_f64("rms_error_c", m.comfort.rms_error_c);
  sink.field_f64("avg_ppd_percent", m.comfort.avg_ppd_percent);
  sink.end_group();
}

void visit_fields(const MpcPlanStats& stats, obs::FieldSink& sink) {
  sink.field_size("plans", stats.plans);
  sink.field_size("failures", stats.failures);
  sink.field_size("sqp_iterations", stats.sqp_iterations);
  sink.field_size("qp_iterations", stats.qp_iterations);
  sink.field_u64("solve_time_ns", stats.solve_time_ns);
  sink.field_size("dual_warm_starts", stats.dual_warm_starts);
  sink.field_size("converged", stats.converged);
  sink.field_size("max_iteration_exits", stats.max_iteration_exits);
  sink.field_size("timeouts", stats.timeouts);
  sink.field_size("numerical_failures", stats.numerical_failures);
  sink.field_size("rejected_plans", stats.rejected_plans);
  sink.begin_group("solver");
  visit_qp_counters(stats.solver, sink);
  sink.end_group();
  sink.field_size("workspace_bytes", stats.solver_workspace_bytes);
}

void visit_fields(const ctl::SupervisorStats& stats, obs::FieldSink& sink) {
  sink.field_size("steps", stats.steps);
  sink.field_size("sanitized_steps", stats.sanitized_steps);
  sink.field_size("sanitized_values", stats.sanitized_values);
  sink.field_size("deadline_misses", stats.deadline_misses);
  sink.field_size("health_degradations", stats.health_degradations);
  sink.field_size("invalid_outputs", stats.invalid_outputs);
  sink.field_size("output_clamps", stats.output_clamps);
  sink.field_size("demotions", stats.demotions);
  sink.field_size("promotions", stats.promotions);
  sink.field_size("hold_expirations", stats.hold_expirations);
  sink.field_size("fdi_substituted_steps", stats.fdi_substituted_steps);
  sink.field_size_array("tier_steps", stats.tier_steps);
}

void visit_fields(const sim::FaultInjectionStats& stats,
                  obs::FieldSink& sink) {
  sink.field_size("steps", stats.steps);
  sink.field_size("faulted_steps", stats.faulted_steps);
  sink.field_size("episodes", stats.episodes);
  sink.field_size("bias_steps", stats.bias_steps);
  sink.field_size("stuck_steps", stats.stuck_steps);
  sink.field_size("dropout_steps", stats.dropout_steps);
  sink.field_size("stale_steps", stats.stale_steps);
  sink.field_size("spike_steps", stats.spike_steps);
  sink.field_size("quantization_steps", stats.quantization_steps);
}

void visit_fields(const fdi::FdiStats& stats, obs::FieldSink& sink) {
  sink.field_size("steps", stats.steps);
  sink.field_size("substituted_steps", stats.substituted_steps);
  sink.begin_group("cabin");
  visit_fdi_sensor(stats.cabin, sink);
  sink.end_group();
  sink.begin_group("outside");
  visit_fdi_sensor(stats.outside, sink);
  sink.end_group();
  sink.begin_group("soc");
  visit_fdi_sensor(stats.soc, sink);
  sink.end_group();
}

namespace {

template <typename Stats>
std::string render_json(const Stats& stats) {
  obs::JsonFieldSink sink;
  visit_fields(stats, sink);
  return sink.str();
}

}  // namespace

std::string to_json(const TripMetrics& metrics) {
  return render_json(metrics);
}
std::string to_json(const MpcPlanStats& stats) { return render_json(stats); }
std::string to_json(const ctl::SupervisorStats& stats) {
  return render_json(stats);
}
std::string to_json(const sim::FaultInjectionStats& stats) {
  return render_json(stats);
}
std::string to_json(const fdi::FdiStats& stats) { return render_json(stats); }

std::string to_json(const std::vector<ControllerRun>& runs) {
  JsonWriter json;
  json.begin_array();
  for (const ControllerRun& run : runs) {
    json.begin_object();
    json.key("controller").value(run.controller);
    json.key("metrics");
    json.raw_value(to_json(run.metrics));
    json.end_object();
  }
  json.end_array();
  return json.str();
}

namespace {

template <typename Stats>
void publish(const Stats& stats, const std::string& prefix) {
  obs::RegistryFieldSink sink(prefix);
  visit_fields(stats, sink);
}

}  // namespace

void publish_metrics(const TripMetrics& metrics, const std::string& prefix) {
  publish(metrics, prefix);
}
void publish_metrics(const MpcPlanStats& stats, const std::string& prefix) {
  publish(stats, prefix);
}
void publish_metrics(const ctl::SupervisorStats& stats,
                     const std::string& prefix) {
  publish(stats, prefix);
}
void publish_metrics(const sim::FaultInjectionStats& stats,
                     const std::string& prefix) {
  publish(stats, prefix);
}
void publish_metrics(const fdi::FdiStats& stats, const std::string& prefix) {
  publish(stats, prefix);
}

}  // namespace evc::core
