// JSON export of experiment results for external tooling.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/mpc_controller.hpp"

namespace evc::core {

/// One TripMetrics as a JSON object string.
std::string to_json(const TripMetrics& metrics);

/// MPC planning/solver telemetry (plans, iterations, solve wall time, QP
/// workspace counters) as a JSON object string — the machine-readable form
/// consumed by the perf benches and CI artifacts.
std::string to_json(const MpcPlanStats& stats);

/// A controller comparison (e.g. from compare_controllers) as a JSON array
/// of {controller, metrics} objects.
std::string to_json(const std::vector<ControllerRun>& runs);

}  // namespace evc::core
