// JSON export of experiment results for external tooling.
//
// Every stats struct enumerates its fields exactly once through
// visit_fields(value, obs::FieldSink&); the to_json overloads render that
// enumeration as JSON (obs::JsonFieldSink) and the publish_metrics
// overloads publish the same fields as gauges into the process-wide
// metrics registry (obs::RegistryFieldSink), so obs::snapshot() exports
// them alongside the live counters/histograms. Adding a field to a struct
// updates both exporters in one place.
#pragma once

#include <string>
#include <vector>

#include "control/supervisor.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/mpc_controller.hpp"
#include "obs/fields.hpp"
#include "sim/fault_injection.hpp"

namespace evc::core {

/// Field enumerations — one per stats struct, feeding every exporter.
void visit_fields(const TripMetrics& metrics, obs::FieldSink& sink);
void visit_fields(const MpcPlanStats& stats, obs::FieldSink& sink);
void visit_fields(const ctl::SupervisorStats& stats, obs::FieldSink& sink);
void visit_fields(const sim::FaultInjectionStats& stats,
                  obs::FieldSink& sink);
void visit_fields(const fdi::FdiStats& stats, obs::FieldSink& sink);

/// One TripMetrics as a JSON object string.
std::string to_json(const TripMetrics& metrics);

/// MPC planning/solver telemetry (plans, iterations, solve/factorize wall
/// time, QP workspace counters) as a JSON object string — the
/// machine-readable form consumed by the perf benches and CI artifacts.
std::string to_json(const MpcPlanStats& stats);

/// A controller comparison (e.g. from compare_controllers) as a JSON array
/// of {controller, metrics} objects.
std::string to_json(const std::vector<ControllerRun>& runs);

/// Supervisor intervention counters (sanitized inputs, deadline misses,
/// demotions/promotions, per-tier fallback occupancy) as a JSON object.
std::string to_json(const ctl::SupervisorStats& stats);

/// Fault-injection activity counters as a JSON object.
std::string to_json(const sim::FaultInjectionStats& stats);

/// FDIR telemetry (per-sensor residual statistics and health-edge
/// counters) as a JSON object.
std::string to_json(const fdi::FdiStats& stats);

/// Publish a stats struct into the metrics registry as prefix.field gauges
/// (e.g. "mpc.stats.plans", "supervisor.stats.tier_steps.0");
/// obs::snapshot() then carries them in the unified export. The ".stats"
/// defaults keep the gauges clear of the live counters the controllers
/// maintain under the bare prefixes ("mpc.plans", "supervisor.demotions") —
/// a name may hold only one metric kind.
void publish_metrics(const TripMetrics& metrics,
                     const std::string& prefix = "trip");
void publish_metrics(const MpcPlanStats& stats,
                     const std::string& prefix = "mpc.stats");
void publish_metrics(const ctl::SupervisorStats& stats,
                     const std::string& prefix = "supervisor.stats");
void publish_metrics(const sim::FaultInjectionStats& stats,
                     const std::string& prefix = "faults");
void publish_metrics(const fdi::FdiStats& stats,
                     const std::string& prefix = "fdi.stats");

}  // namespace evc::core
