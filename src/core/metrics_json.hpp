// JSON export of experiment results for external tooling.
#pragma once

#include <string>
#include <vector>

#include "control/supervisor.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/mpc_controller.hpp"
#include "sim/fault_injection.hpp"

namespace evc::core {

/// One TripMetrics as a JSON object string.
std::string to_json(const TripMetrics& metrics);

/// MPC planning/solver telemetry (plans, iterations, solve wall time, QP
/// workspace counters) as a JSON object string — the machine-readable form
/// consumed by the perf benches and CI artifacts.
std::string to_json(const MpcPlanStats& stats);

/// A controller comparison (e.g. from compare_controllers) as a JSON array
/// of {controller, metrics} objects.
std::string to_json(const std::vector<ControllerRun>& runs);

/// Supervisor intervention counters (sanitized inputs, deadline misses,
/// demotions/promotions, per-tier fallback occupancy) as a JSON object.
std::string to_json(const ctl::SupervisorStats& stats);

/// Fault-injection activity counters as a JSON object.
std::string to_json(const sim::FaultInjectionStats& stats);

/// FDIR telemetry (per-sensor residual statistics and health-edge
/// counters) as a JSON object.
std::string to_json(const fdi::FdiStats& stats);

}  // namespace evc::core
