// Battery lifetime-aware MPC climate controller (paper §III, Algorithm 1).
//
// Each planning instant the controller:
//   1. bins the motor-power/ambient forecast from the drive profile into
//      the MPC's coarser step (Algorithm 1 lines 14–15),
//   2. assembles the bilinear optimal-control problem (MpcFormulation),
//   3. solves it with SQP, warm-started from the previous plan shifted by
//      one step (line 16) and from the previous plan's QP multipliers
//      (the constraint structure is identical across receding-horizon
//      steps, so the duals transfer directly),
//   4. applies the first input of the optimal plan (line 18).
// Between planning instants the last applied input is held (zero-order
// hold), which is what makes the controller real-time viable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "battery/battery_params.hpp"
#include "control/controller.hpp"
#include "core/mpc_formulation.hpp"
#include "optim/sqp.hpp"

namespace evc::core {

struct MpcOptions {
  std::size_t horizon = 12;  ///< N, steps in the control window
  double step_s = 5.0;       ///< MPC discretization = replanning period
  MpcWeights weights;
  opt::SqpOptions sqp;
  /// Accessory draw added to the motor forecast (W).
  double accessory_power_w = 250.0;
  /// When set, use the paper's literal (SoC − SoCavg)² cost with this
  /// cycle-average reference (percent, e.g. from TripPlanner); otherwise
  /// the window-variance form is used.
  std::optional<double> soc_reference;
  /// Model the Peukert rate-capacity effect inside the control window
  /// (see MpcWindowData::nonlinear_battery).
  bool nonlinear_battery = false;
  /// Display name; lets variants (e.g. the supervisor's relaxed fallback
  /// tier) stay distinguishable in comparisons and fallback-occupancy rows.
  std::string name = "Battery Lifetime-aware MPC";

  MpcOptions() {
    // The receding horizon forgives small suboptimality; favour speed.
    // Temperatures to 1 mK and constraint residuals to 0.1 mK are far
    // below actuator resolution.
    sqp.max_iterations = 8;
    sqp.step_tolerance = 1e-3;
    sqp.constraint_tolerance = 1e-4;
    sqp.hessian_regularization = 1e-6;
    sqp.qp.max_iterations = 30;
    sqp.qp.tolerance = 1e-7;
    // Default backend is overridable per process (EVC_MPC_BACKEND=
    // sparse|condensed|auto); explicit assignment after construction
    // still wins for embedded callers.
    sqp.backend = opt::qp_backend_from_env(opt::QpBackend::kSparse);
  }
};

/// Planning telemetry for tests/benches. `solver` aggregates the QP
/// workspace's perf counters (interior-point iterations, factorizations,
/// warm starts, workspace growth/peak bytes) over every plan since reset.
/// The per-status counters partition `plans`: every solve lands in exactly
/// one of converged / max_iteration_exits / timeouts / numerical_failures,
/// and `rejected_plans` counts usable solves whose constraint violation was
/// too large to apply (those also count toward `failures`).
struct MpcPlanStats {
  std::size_t plans = 0;
  std::size_t failures = 0;  ///< plans that fell back (unusable or rejected)
  std::size_t sqp_iterations = 0;
  std::size_t qp_iterations = 0;
  std::uint64_t solve_time_ns = 0;  ///< wall time spent inside SQP solves
  std::size_t dual_warm_starts = 0; ///< plans seeded with previous duals
  std::size_t converged = 0;            ///< SolveStatus::kConverged solves
  std::size_t max_iteration_exits = 0;  ///< SolveStatus::kMaxIterations
  std::size_t timeouts = 0;             ///< SolveStatus::kTimeout
  std::size_t numerical_failures = 0;   ///< SolveStatus::kNumericalFailure
  std::size_t rejected_plans = 0;  ///< usable but violation too large
  opt::QpPerfCounters solver;
  std::size_t solver_workspace_bytes = 0;
};

class MpcClimateController : public ctl::ClimateController {
 public:
  MpcClimateController(hvac::HvacParams hvac_params,
                       bat::BatteryParams battery_params,
                       MpcOptions options = {});

  std::string name() const override { return options_.name; }
  hvac::HvacInputs decide(const ctl::ControlContext& context) override;
  void reset() override;
  /// Degraded while the most recent plan was not applied (solver timeout /
  /// numerical failure / rejected iterate) — the supervisor's demotion
  /// signal. Healthy between planning instants if the held plan was good.
  ctl::DecisionHealth last_health() const override;

  const MpcPlanStats& stats() const { return stats_; }
  const MpcOptions& options() const { return options_; }
  /// Planned SoC trajectory of the last solve (empty before first plan).
  const std::vector<double>& planned_soc() const { return planned_soc_; }
  /// Structured outcome of the most recent solve (converged before any).
  opt::SolveStatus last_plan_status() const { return last_plan_status_; }
  /// Whether the most recent solve's plan was applied to the actuators.
  bool last_plan_applied() const { return last_plan_applied_; }

  /// Checkpoint hooks: round-trip everything that influences future plans —
  /// warm-start primal/dual state, zero-order-hold input, plan schedule,
  /// and the aggregate telemetry (including the QP workspace counters,
  /// which are pushed back into the solver on load).
  void save_state(BinaryWriter& writer) const override;
  void load_state(BinaryReader& reader) override;

  /// Per-step solver effort for the flight recorder: the QP iterations and
  /// wall time of the plan computed *this* step (zero on zero-order-hold
  /// steps, which run no solver).
  void fill_flight_record(obs::FlightRecord& record) const override;

 private:
  MpcWindowData make_window(const ctl::ControlContext& context) const;
  num::Vector warm_start(const MpcFormulation& formulation) const;
  hvac::HvacInputs fallback_inputs(const ctl::ControlContext& context) const;

  hvac::HvacParams hvac_;
  bat::BatteryParams battery_;
  MpcOptions options_;
  opt::SqpSolver solver_;

  std::optional<num::Vector> last_solution_;
  opt::SqpWarmStart last_duals_;
  std::optional<hvac::HvacInputs> held_input_;
  double next_plan_time_s_ = 0.0;
  std::vector<double> planned_soc_;
  MpcPlanStats stats_;
  opt::SolveStatus last_plan_status_ = opt::SolveStatus::kConverged;
  bool last_plan_applied_ = true;
  std::uint64_t last_step_qp_iterations_ = 0;
  std::uint64_t last_step_solve_ns_ = 0;
};

}  // namespace evc::core
