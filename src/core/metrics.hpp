// Trip-level metrics: everything the paper's evaluation reports.
#pragma once

#include <vector>

#include "battery/soh_model.hpp"

namespace evc::core {

struct ComfortStats {
  /// Fraction of samples with Tz outside the comfort zone.
  double fraction_outside = 0.0;
  double max_abs_error_c = 0.0;  ///< |Tz − Ttarget| worst case
  double rms_error_c = 0.0;
  /// Trip-average Predicted Percentage Dissatisfied (Fanger PMV/PPD at the
  /// cabin temperature, nominal in-cabin conditions). ≥ 5 by construction.
  double avg_ppd_percent = 5.0;
};

struct TripMetrics {
  double duration_s = 0.0;
  double distance_km = 0.0;

  double avg_motor_power_w = 0.0;
  double avg_hvac_power_w = 0.0;   ///< Fig. 8 / Table I quantity
  double avg_total_power_w = 0.0;
  double hvac_energy_j = 0.0;
  double total_energy_j = 0.0;

  double initial_soc_percent = 0.0;
  double final_soc_percent = 0.0;
  bat::CycleStress stress;          ///< SoCdev / SoCavg of the drive
  double delta_soh_percent = 0.0;   ///< Fig. 7 / Table I quantity
  double cycles_to_end_of_life = 0.0;

  double consumption_wh_per_km = 0.0;
  /// Simple BMS-style range estimate: usable pack energy at this trip's
  /// consumption rate.
  double estimated_range_km = 0.0;

  ComfortStats comfort;
};

/// Comfort statistics of a cabin-temperature trace.
ComfortStats comfort_stats(const std::vector<double>& cabin_temp_c,
                           double comfort_min_c, double comfort_max_c,
                           double target_c);

}  // namespace evc::core
