#include "core/ice_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/units.hpp"

namespace evc::core {

IceVehicleModel::IceVehicleModel(IceParams params) : params_(params) {
  EVC_EXPECT(params_.engine_efficiency > 0.0 &&
                 params_.engine_efficiency < 0.5,
             "engine efficiency outside plausible range");
  EVC_EXPECT(params_.ac_cop > 0.0, "A/C COP must be positive");
}

PowerShare IceVehicleModel::average_power_share(
    const drive::DriveProfile& profile) const {
  EVC_EXPECT(!profile.empty(), "power share of empty profile");
  const IceParams& p = params_;

  double propulsion_acc = 0.0;
  double hvac_acc = 0.0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const drive::DriveSample& s = profile[i];
    // Road load + inertia; braking is wasted in friction brakes (no regen).
    const double aero = 0.5 * consts::kAirDensity * p.drag_coefficient *
                        p.frontal_area_m2 * s.speed_mps * s.speed_mps;
    const double roll =
        s.speed_mps > 0.0 ? p.mass_kg * consts::kGravity * p.rolling_c0 : 0.0;
    const double grade =
        p.mass_kg * consts::kGravity *
        std::sin(units::grade_percent_to_angle(s.slope_percent));
    const double force = aero + roll + grade + p.mass_kg * s.accel_mps2;
    const double mech = std::max(force * s.speed_mps, 0.0);
    // Fuel-equivalent power of propulsion, plus the idle burn that keeps
    // the engine spinning through stops and coasting.
    propulsion_acc += mech / p.engine_efficiency + p.idle_fuel_power_w;

    // Steady HVAC thermal demand to hold the target temperature.
    const double dT = s.ambient_c - p.target_temp_c;
    double hvac = p.fan_power_w;  // blower always runs
    if (dT > 0.0) {
      // Cooling: heat gain (walls+ventilation+solar) removed at the A/C
      // COP, driven off the engine belt → fuel-equivalent power.
      const double heat_w = p.cabin_ua_w_per_k * dT + p.solar_load_w;
      hvac += heat_w / p.ac_cop / p.compressor_drive_efficiency /
              p.engine_efficiency;
    }
    // Heating: engine coolant waste heat is free; only the blower counts.
    hvac_acc += hvac;
  }

  PowerShare share;
  const double n = static_cast<double>(profile.size());
  share.propulsion_w = propulsion_acc / n;
  share.hvac_w = hvac_acc / n;
  // Accessories are alternator loads: electrical power converted to
  // fuel-equivalent through the alternator (~60 %) and the engine.
  share.accessories_w =
      p.accessory_power_w / (0.6 * p.engine_efficiency);
  return share;
}

}  // namespace evc::core
