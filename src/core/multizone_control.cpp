#include "core/multizone_control.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::core {

MultiZoneSupervisor::MultiZoneSupervisor(
    std::unique_ptr<ctl::ClimateController> supply_controller,
    hvac::MultiZoneParams params, ZoneSplitOptions options)
    : supply_(std::move(supply_controller)), params_(std::move(params)),
      options_(options) {
  EVC_EXPECT(supply_ != nullptr, "supervisor needs a supply controller");
  params_.validate();
  EVC_EXPECT(options_.gain >= 0.0, "split gain must be >= 0");
  EVC_EXPECT(options_.min_share >= 0.0 &&
                 options_.min_share * static_cast<double>(params_.num_zones()) <
                     1.0 + 1e-9,
             "zone share floor infeasible");
}

std::vector<double> MultiZoneSupervisor::compute_split(
    const std::vector<double>& zone_temps_c, double target_c,
    double supply_temp_c) const {
  const std::size_t n = params_.num_zones();
  EVC_EXPECT(zone_temps_c.size() == n, "zone temperature count mismatch");

  // Benefit of supply air for zone i: the supply moves the zone toward
  // (supply − Tz_i); its usefulness is how aligned that is with the error
  // (target − Tz_i). Softmax over benefits with a per-zone floor.
  std::vector<double> weight(n);
  double max_benefit = -1e18;
  std::vector<double> benefit(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double toward_target = target_c - zone_temps_c[i];
    const double supply_effect = supply_temp_c - zone_temps_c[i];
    // Signed alignment in K: positive when the supply helps this zone.
    benefit[i] = toward_target * (supply_effect >= 0.0 ? 1.0 : -1.0);
    max_benefit = std::max(max_benefit, benefit[i]);
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = std::exp(options_.gain * (benefit[i] - max_benefit));
    sum += weight[i];
  }
  // Normalize with the floor: shares = floor + (1 − n·floor)·softmax.
  const double spread =
      1.0 - options_.min_share * static_cast<double>(n);
  std::vector<double> split(n);
  for (std::size_t i = 0; i < n; ++i)
    split[i] = options_.min_share + spread * weight[i] / sum;
  return split;
}

hvac::MultiZonePlant::StepResult MultiZoneSupervisor::step(
    hvac::MultiZonePlant& plant, const ctl::ControlContext& context,
    double dt_s) {
  ctl::ControlContext mean_context = context;
  mean_context.cabin_temp_c = plant.mean_cabin_temp_c();
  const hvac::HvacInputs inputs = supply_->decide(mean_context);
  last_split_ = compute_split(plant.zone_temps_c(),
                              params_.base.target_temp_c,
                              inputs.supply_temp_c);
  return plant.step(inputs, last_split_, context.outside_temp_c, dt_s);
}

}  // namespace evc::core
