#include "core/experiment.hpp"

#include <algorithm>

#include "control/fuzzy_controller.hpp"
#include "control/onoff_controller.hpp"
#include "util/expect.hpp"

namespace evc::core {

std::unique_ptr<ctl::ClimateController> make_onoff_controller(
    const EvParams& params) {
  return std::make_unique<ctl::OnOffController>(params.hvac);
}

std::unique_ptr<ctl::ClimateController> make_fuzzy_controller(
    const EvParams& params) {
  return std::make_unique<ctl::FuzzyController>(params.hvac);
}

std::unique_ptr<MpcClimateController> make_mpc_controller(
    const EvParams& params, const MpcOptions& options) {
  MpcOptions opts = options;
  opts.accessory_power_w = params.vehicle.accessory_power_w;
  return std::make_unique<MpcClimateController>(params.hvac, params.battery,
                                                opts);
}

MpcOptions make_relaxed_mpc_options(const MpcOptions& options) {
  MpcOptions relaxed = options;
  relaxed.name = "Relaxed MPC";
  relaxed.horizon = std::max<std::size_t>(4, options.horizon / 2);
  relaxed.sqp.max_iterations =
      std::max<std::size_t>(2, options.sqp.max_iterations / 2);
  relaxed.sqp.step_tolerance = options.sqp.step_tolerance * 10.0;
  relaxed.sqp.constraint_tolerance = options.sqp.constraint_tolerance * 10.0;
  relaxed.sqp.qp.max_iterations =
      std::max<std::size_t>(10, options.sqp.qp.max_iterations / 2);
  // A hard wall-clock budget of its own, NOT inherited from the parent: the
  // relaxed tier exists to give a dependable answer when the full tier is
  // starved, and inheriting a starved budget would starve the fallback too.
  // The supervisor's deadline watchdog remains the real-time guard.
  relaxed.sqp.time_budget_s = 0.05;
  return relaxed;
}

std::unique_ptr<ctl::SupervisedController> make_supervised_mpc_controller(
    const EvParams& params, const MpcOptions& options,
    const ctl::SupervisorOptions& supervisor_options) {
  std::vector<std::unique_ptr<ctl::ClimateController>> tiers;
  tiers.push_back(make_mpc_controller(params, options));
  tiers.push_back(
      make_mpc_controller(params, make_relaxed_mpc_options(options)));
  tiers.push_back(std::make_unique<ctl::PidClimateController>(params.hvac));
  tiers.push_back(make_onoff_controller(params));
  // The FDIR layer's coulomb-counting virtual sensor needs the actual pack
  // constants; the caller configures everything else about the FDI setup.
  ctl::SupervisorOptions configured = supervisor_options;
  configured.fdi.battery_capacity_ah = params.battery.nominal_capacity_ah;
  configured.fdi.battery_nominal_voltage_v = params.battery.nominal_voltage_v;
  configured.fdi.accessory_power_w = params.vehicle.accessory_power_w;
  return std::make_unique<ctl::SupervisedController>(
      std::move(tiers), params.hvac, configured);
}

std::vector<ControllerRun> compare_controllers(
    const EvParams& params, const drive::DriveProfile& profile,
    const SimulationOptions& sim_options, const MpcOptions& mpc_options) {
  ClimateSimulation simulation(params);
  std::vector<ControllerRun> runs;

  const auto run_one = [&](ctl::ClimateController& controller) {
    const SimulationResult result =
        simulation.run(controller, profile, sim_options);
    runs.push_back({controller.name(), result.metrics});
  };

  auto onoff = make_onoff_controller(params);
  run_one(*onoff);
  auto fuzzy = make_fuzzy_controller(params);
  run_one(*fuzzy);
  auto mpc = make_mpc_controller(params, mpc_options);
  run_one(*mpc);
  return runs;
}

double improvement_percent(double baseline, double ours) {
  EVC_EXPECT(baseline != 0.0, "improvement over a zero baseline");
  return (baseline - ours) / baseline * 100.0;
}

}  // namespace evc::core
