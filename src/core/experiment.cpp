#include "core/experiment.hpp"

#include "control/fuzzy_controller.hpp"
#include "control/onoff_controller.hpp"
#include "util/expect.hpp"

namespace evc::core {

std::unique_ptr<ctl::ClimateController> make_onoff_controller(
    const EvParams& params) {
  return std::make_unique<ctl::OnOffController>(params.hvac);
}

std::unique_ptr<ctl::ClimateController> make_fuzzy_controller(
    const EvParams& params) {
  return std::make_unique<ctl::FuzzyController>(params.hvac);
}

std::unique_ptr<MpcClimateController> make_mpc_controller(
    const EvParams& params, const MpcOptions& options) {
  MpcOptions opts = options;
  opts.accessory_power_w = params.vehicle.accessory_power_w;
  return std::make_unique<MpcClimateController>(params.hvac, params.battery,
                                                opts);
}

std::vector<ControllerRun> compare_controllers(
    const EvParams& params, const drive::DriveProfile& profile,
    const SimulationOptions& sim_options, const MpcOptions& mpc_options) {
  ClimateSimulation simulation(params);
  std::vector<ControllerRun> runs;

  const auto run_one = [&](ctl::ClimateController& controller) {
    const SimulationResult result =
        simulation.run(controller, profile, sim_options);
    runs.push_back({controller.name(), result.metrics});
  };

  auto onoff = make_onoff_controller(params);
  run_one(*onoff);
  auto fuzzy = make_fuzzy_controller(params);
  run_one(*fuzzy);
  auto mpc = make_mpc_controller(params, mpc_options);
  run_one(*mpc);
  return runs;
}

double improvement_percent(double baseline, double ours) {
  EVC_EXPECT(baseline != 0.0, "improvement over a zero baseline");
  return (baseline - ours) / baseline * 100.0;
}

}  // namespace evc::core
