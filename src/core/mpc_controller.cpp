#include "core/mpc_controller.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::core {

MpcClimateController::MpcClimateController(hvac::HvacParams hvac_params,
                                           bat::BatteryParams battery_params,
                                           MpcOptions options)
    : hvac_(hvac_params), battery_(battery_params), options_(options),
      solver_(options.sqp) {
  hvac_.validate();
  battery_.validate();
  EVC_EXPECT(options_.horizon >= 2, "MPC horizon must be at least 2 steps");
  EVC_EXPECT(options_.step_s > 0.0, "MPC step must be positive");
}

void MpcClimateController::reset() {
  last_solution_.reset();
  last_duals_.y_eq.assign(0, 0.0);
  last_duals_.z_ineq.assign(0, 0.0);
  held_input_.reset();
  next_plan_time_s_ = 0.0;
  planned_soc_.clear();
  stats_ = MpcPlanStats{};
  last_plan_status_ = opt::SolveStatus::kConverged;
  last_plan_applied_ = true;
  last_step_qp_iterations_ = 0;
  last_step_solve_ns_ = 0;
  solver_.reset_qp_counters();
}

ctl::DecisionHealth MpcClimateController::last_health() const {
  if (last_plan_applied_) {
    // A timed-out plan may still be applied (finite, near-feasible
    // best-effort iterate — often just the warm-started shift of the
    // previous plan), but it earned no trust: report degraded so a
    // supervisor can hand the step to a tier with an adequate budget.
    if (last_plan_status_ == opt::SolveStatus::kTimeout)
      return {true, "mpc solver timeout (best-effort plan applied)"};
    return {};
  }
  switch (last_plan_status_) {
    case opt::SolveStatus::kTimeout:
      return {true, "mpc solver timeout"};
    case opt::SolveStatus::kNumericalFailure:
      return {true, "mpc solver numerical failure"};
    case opt::SolveStatus::kMaxIterations:
      return {true, "mpc plan rejected at iteration cap"};
    case opt::SolveStatus::kConverged:
      return {true, "mpc plan rejected"};
  }
  return {true, "mpc plan rejected"};
}

MpcWindowData MpcClimateController::make_window(
    const ctl::ControlContext& context) const {
  MpcWindowData window;
  window.dt_s = options_.step_s;
  window.initial_cabin_temp_c = context.cabin_temp_c;
  window.initial_soc_percent = context.soc_percent;
  window.soc_reference = options_.soc_reference;
  window.nonlinear_battery = options_.nonlinear_battery;
  window.fixed_power_kw.resize(options_.horizon);
  window.outside_temp_c.resize(options_.horizon);

  // Bin the per-sample forecast into MPC steps, padding past its end with
  // the last known value (near the trip's end the horizon outlives the
  // profile — Algorithm 1 clamps there too).
  const auto& power = context.motor_power_forecast_w;
  const auto& temp = context.outside_temp_forecast_c;
  const double sample_dt = context.dt_s;
  const std::size_t per_bin = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(options_.step_s / sample_dt)));

  for (std::size_t k = 0; k < options_.horizon; ++k) {
    double power_acc = 0.0;
    for (std::size_t j = 0; j < per_bin; ++j) {
      const std::size_t i = k * per_bin + j;
      const double p =
          power.empty()
              ? 0.0
              : power[std::min(i, power.size() - 1)];
      power_acc += p;
    }
    window.fixed_power_kw[k] =
        (power_acc / static_cast<double>(per_bin) +
         options_.accessory_power_w) /
        1000.0;
    const std::size_t i0 = k * per_bin;
    window.outside_temp_c[k] =
        temp.empty() ? context.outside_temp_c
                     : temp[std::min(i0, temp.size() - 1)];
  }
  return window;
}

num::Vector MpcClimateController::warm_start(
    const MpcFormulation& formulation) const {
  const num::Vector cold = formulation.cold_start();
  if (!last_solution_ || last_solution_->size() != cold.size()) return cold;

  const MpcIndex& idx = formulation.index();
  const std::size_t n = idx.horizon();
  const num::Vector& prev = *last_solution_;

  // Two candidate seeds: the previous plan shifted one step forward (right
  // when the plant followed the plan and the window really advanced), or the
  // previous plan held as-is (right when we are re-planning an effectively
  // unchanged problem — the plant did not move to the predicted state, or an
  // ensemble/test caller re-solves the same window). Pick by which one's
  // initial state matches the measurement: starting the SQP from an iterate
  // whose pinned states agree with the initial-state equalities is what lets
  // a steady-state plan confirm in one iteration instead of re-contracting
  // from a self-inflicted infeasibility.
  const MpcWindowData& window = formulation.window();
  const double temp_scale = 1.0, soc_scale = 1.0;
  const double err_shift =
      std::abs(window.initial_cabin_temp_c - prev[idx.x(1)]) / temp_scale +
      std::abs(window.initial_soc_percent - prev[idx.soc(1)]) / soc_scale;
  const double err_hold =
      std::abs(window.initial_cabin_temp_c - prev[idx.x(0)]) / temp_scale +
      std::abs(window.initial_soc_percent - prev[idx.soc(0)]) / soc_scale;
  if (err_hold < err_shift) return prev;

  // Shift the previous plan one step forward; duplicate the tail.
  num::Vector z = prev;
  for (std::size_t k = 0; k < n; ++k) {
    z[idx.x(k)] = prev[idx.x(std::min(k + 1, n))];
    z[idx.soc(k)] = prev[idx.soc(std::min(k + 1, n))];
    const std::size_t src = std::min(k + 1, n - 1);
    z[idx.ts(k)] = prev[idx.ts(src)];
    z[idx.tc(k)] = prev[idx.tc(src)];
    z[idx.dr(k)] = prev[idx.dr(src)];
    z[idx.mz(k)] = prev[idx.mz(src)];
    z[idx.tm(k)] = prev[idx.tm(src)];
    z[idx.ph(k)] = prev[idx.ph(src)];
    z[idx.pc(k)] = prev[idx.pc(src)];
    z[idx.pf(k)] = prev[idx.pf(src)];
    z[idx.slack(k)] = prev[idx.slack(src)];
  }
  z[idx.x(n)] = prev[idx.x(n)];
  z[idx.soc(n)] = prev[idx.soc(n)];
  return z;
}

hvac::HvacInputs MpcClimateController::fallback_inputs(
    const ctl::ControlContext& context) const {
  if (held_input_) return *held_input_;
  // Safe idle: minimum ventilation, coils pass-through.
  hvac::HvacInputs in;
  in.recirculation = 0.5;
  const double tm = (1.0 - in.recirculation) * context.outside_temp_c +
                    in.recirculation * context.cabin_temp_c;
  in.air_flow_kg_s = hvac_.min_air_flow_kg_s;
  in.coil_temp_c = tm;
  in.supply_temp_c = tm;
  return in;
}

hvac::HvacInputs MpcClimateController::decide(
    const ctl::ControlContext& context) {
  // Zero-order hold between planning instants.
  if (held_input_ && context.time_s + 1e-9 < next_plan_time_s_) {
    last_step_qp_iterations_ = 0;
    last_step_solve_ns_ = 0;
    return *held_input_;
  }

  EVC_TRACE_SPAN_VAR(plan_span, "mpc.plan");
  // Registered once; the ids are plain indices afterwards (see
  // obs::MetricsRegistry), so the per-plan cost is a few relaxed atomics.
  static const struct {
    obs::MetricsRegistry::Id plans;
    obs::MetricsRegistry::Id failures;
    obs::MetricsRegistry::Id timeouts;
    obs::MetricsRegistry::Id solve_ns;
    obs::MetricsRegistry::Id condensed_solves;
    obs::MetricsRegistry::Id condense_rebuilds;
    obs::MetricsRegistry::Id active_set_changes;
  } metric_ids{
      obs::MetricsRegistry::global().counter("mpc.plans"),
      obs::MetricsRegistry::global().counter("mpc.failures"),
      obs::MetricsRegistry::global().counter("mpc.timeouts"),
      obs::MetricsRegistry::global().histogram("mpc.plan.solve_ns"),
      obs::MetricsRegistry::global().counter("mpc.condensed.solves"),
      obs::MetricsRegistry::global().counter("mpc.condensed.rebuilds"),
      obs::MetricsRegistry::global().counter("mpc.condensed.active_set_changes")};

  const MpcWindowData window = make_window(context);
  MpcFormulation formulation(hvac_, battery_, options_.weights, window);
  const num::Vector z0 = warm_start(formulation);

  ++stats_.plans;
  // Previous plan's QP multipliers seed the first subproblem's duals; the
  // primal shift above already seeds the iterate. Stale duals (after a
  // failed plan) are empty and degrade to a cold start.
  const opt::SqpWarmStart* duals =
      last_duals_.empty() ? nullptr : &last_duals_;
  if (duals != nullptr) ++stats_.dual_warm_starts;
  const auto t0 = std::chrono::steady_clock::now();
  const opt::SqpResult result = solver_.solve(formulation, z0, duals);
  const auto t1 = std::chrono::steady_clock::now();
  last_step_solve_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  last_step_qp_iterations_ = result.qp_iterations_total;
  stats_.solve_time_ns += last_step_solve_ns_;
  stats_.sqp_iterations += result.iterations;
  stats_.qp_iterations += result.qp_iterations_total;
  // The workspace counters are cumulative; diff against the previous
  // snapshot so the condensed-backend metrics see only this plan's work.
  const opt::QpPerfCounters prev_counters = stats_.solver;
  stats_.solver = solver_.qp_counters();
  stats_.solver_workspace_bytes = solver_.workspace_bytes();
  plan_span.arg("sqp_iterations", static_cast<double>(result.iterations));
  obs::MetricsRegistry::global().add(metric_ids.plans);
  obs::MetricsRegistry::global().observe(metric_ids.solve_ns,
                                         last_step_solve_ns_);
  if (stats_.solver.condensed_solves > prev_counters.condensed_solves)
    obs::MetricsRegistry::global().add(
        metric_ids.condensed_solves,
        stats_.solver.condensed_solves - prev_counters.condensed_solves);
  if (stats_.solver.condense_rebuilds > prev_counters.condense_rebuilds)
    obs::MetricsRegistry::global().add(
        metric_ids.condense_rebuilds,
        stats_.solver.condense_rebuilds - prev_counters.condense_rebuilds);
  if (stats_.solver.active_set_changes > prev_counters.active_set_changes)
    obs::MetricsRegistry::global().add(
        metric_ids.active_set_changes,
        stats_.solver.active_set_changes - prev_counters.active_set_changes);

  // Branch on the structured solver outcome — a numerical failure is never
  // applied, and a timeout / iteration-capped iterate is applied only if it
  // is finite and near-feasible.
  const opt::SolveStatus status = opt::solve_status(result.status);
  last_plan_status_ = status;
  switch (status) {
    case opt::SolveStatus::kConverged:
      ++stats_.converged;
      break;
    case opt::SolveStatus::kMaxIterations:
      ++stats_.max_iteration_exits;
      break;
    case opt::SolveStatus::kTimeout:
      ++stats_.timeouts;
      obs::MetricsRegistry::global().add(metric_ids.timeouts);
      break;
    case opt::SolveStatus::kNumericalFailure:
      ++stats_.numerical_failures;
      break;
  }

  const MpcIndex& idx = formulation.index();
  bool accept = status != opt::SolveStatus::kNumericalFailure &&
                result.constraint_violation < 0.5;
  if (accept) {
    // A best-effort iterate (timeout / max-iterations) must still actuate
    // with finite values; check the inputs that will be applied.
    const double first[] = {result.x[idx.ts(0)], result.x[idx.tc(0)],
                            result.x[idx.dr(0)], result.x[idx.mz(0)]};
    for (const double v : first)
      if (!std::isfinite(v)) {
        accept = false;
        break;
      }
    if (!accept) ++stats_.rejected_plans;
  } else if (status != opt::SolveStatus::kNumericalFailure) {
    ++stats_.rejected_plans;
  }

  hvac::HvacInputs input;
  if (accept) {
    input.supply_temp_c = result.x[idx.ts(0)];
    input.coil_temp_c = result.x[idx.tc(0)];
    input.recirculation = result.x[idx.dr(0)];
    input.air_flow_kg_s = result.x[idx.mz(0)];
    // Saturate to the actuator box (C1/C5/C6/C7) before commanding the
    // plant. The interior point returns strictly interior iterates and
    // passes through bit-unchanged; the condensed backend solves the
    // *cached* linearization (reused while within drift_tolerance), so a
    // boundary-active input can overshoot the true bound by ~drift·|x| —
    // an epsilon that must not leak into actuation.
    input.supply_temp_c =
        std::min(input.supply_temp_c, hvac_.max_supply_temp_c);
    input.coil_temp_c = std::max(input.coil_temp_c, hvac_.min_coil_temp_c);
    input.recirculation =
        std::clamp(input.recirculation, 0.0, hvac_.max_recirculation);
    input.air_flow_kg_s = std::clamp(
        input.air_flow_kg_s, hvac_.min_air_flow_kg_s, hvac_.max_air_flow_kg_s);
    last_solution_ = result.x;
    last_duals_.y_eq = result.y_eq;
    last_duals_.z_ineq = result.z_ineq;
    planned_soc_.assign(idx.horizon() + 1, 0.0);
    for (std::size_t k = 0; k <= idx.horizon(); ++k)
      planned_soc_[k] = result.x[idx.soc(k)];
  } else {
    ++stats_.failures;
    obs::MetricsRegistry::global().add(metric_ids.failures);
    input = fallback_inputs(context);
    last_solution_.reset();  // stale plans make poor warm starts
    last_duals_.y_eq.assign(0, 0.0);
    last_duals_.z_ineq.assign(0, 0.0);
  }
  last_plan_applied_ = accept;

  held_input_ = input;
  next_plan_time_s_ = context.time_s + options_.step_s;
  return input;
}

namespace {

void save_hvac_inputs(BinaryWriter& w, const hvac::HvacInputs& in) {
  w.write_f64(in.supply_temp_c);
  w.write_f64(in.coil_temp_c);
  w.write_f64(in.recirculation);
  w.write_f64(in.air_flow_kg_s);
}

hvac::HvacInputs load_hvac_inputs(BinaryReader& r) {
  hvac::HvacInputs in;
  in.supply_temp_c = r.read_f64();
  in.coil_temp_c = r.read_f64();
  in.recirculation = r.read_f64();
  in.air_flow_kg_s = r.read_f64();
  return in;
}

void save_qp_counters(BinaryWriter& w, const opt::QpPerfCounters& c) {
  w.write_size(c.solves);
  w.write_size(c.ipm_iterations);
  w.write_size(c.factorizations);
  w.write_size(c.schur_solves);
  w.write_size(c.schur_regularizations);
  w.write_size(c.dense_fallbacks);
  w.write_size(c.timeouts);
  w.write_size(c.warm_starts);
  w.write_size(c.workspace_growths);
  w.write_size(c.peak_workspace_bytes);
  w.write_size(c.condensed_solves);
  w.write_size(c.condense_rebuilds);
  w.write_size(c.active_set_changes);
  w.write_u64(c.solve_time_ns);
  w.write_u64(c.factorize_time_ns);
  w.write_u64(c.timeout_time_ns);
}

opt::QpPerfCounters load_qp_counters(BinaryReader& r) {
  opt::QpPerfCounters c;
  c.solves = r.read_size();
  c.ipm_iterations = r.read_size();
  c.factorizations = r.read_size();
  c.schur_solves = r.read_size();
  c.schur_regularizations = r.read_size();
  c.dense_fallbacks = r.read_size();
  c.timeouts = r.read_size();
  c.warm_starts = r.read_size();
  c.workspace_growths = r.read_size();
  c.peak_workspace_bytes = r.read_size();
  c.condensed_solves = r.read_size();
  c.condense_rebuilds = r.read_size();
  c.active_set_changes = r.read_size();
  c.solve_time_ns = r.read_u64();
  c.factorize_time_ns = r.read_u64();
  c.timeout_time_ns = r.read_u64();
  return c;
}

}  // namespace

void MpcClimateController::save_state(BinaryWriter& writer) const {
  writer.section("mpc");
  writer.write_bool(last_solution_.has_value());
  if (last_solution_)
    writer.write_f64_seq(last_solution_->ptr(), last_solution_->size());
  writer.write_f64_seq(last_duals_.y_eq.ptr(), last_duals_.y_eq.size());
  writer.write_f64_seq(last_duals_.z_ineq.ptr(), last_duals_.z_ineq.size());
  writer.write_bool(held_input_.has_value());
  if (held_input_) save_hvac_inputs(writer, *held_input_);
  writer.write_f64(next_plan_time_s_);
  writer.write_f64_vec(planned_soc_);
  writer.write_u8(static_cast<std::uint8_t>(last_plan_status_));
  writer.write_bool(last_plan_applied_);
  writer.write_u64(last_step_qp_iterations_);
  writer.write_u64(last_step_solve_ns_);

  writer.section("mpc_stats");
  writer.write_size(stats_.plans);
  writer.write_size(stats_.failures);
  writer.write_size(stats_.sqp_iterations);
  writer.write_size(stats_.qp_iterations);
  writer.write_u64(stats_.solve_time_ns);
  writer.write_size(stats_.dual_warm_starts);
  writer.write_size(stats_.converged);
  writer.write_size(stats_.max_iteration_exits);
  writer.write_size(stats_.timeouts);
  writer.write_size(stats_.numerical_failures);
  writer.write_size(stats_.rejected_plans);
  save_qp_counters(writer, solver_.qp_counters());
  writer.write_size(stats_.solver_workspace_bytes);

  // Condensed-backend cache (prediction matrices): restoring it keeps the
  // resumed run's rebuild counters identical to an uninterrupted one.
  writer.section("mpc_backend");
  solver_.save_backend_state(writer);
}

void MpcClimateController::load_state(BinaryReader& reader) {
  reader.expect_section("mpc");
  if (reader.read_bool()) {
    last_solution_ = num::Vector(reader.read_f64_vec());
  } else {
    last_solution_.reset();
  }
  last_duals_.y_eq = num::Vector(reader.read_f64_vec());
  last_duals_.z_ineq = num::Vector(reader.read_f64_vec());
  if (reader.read_bool()) {
    held_input_ = load_hvac_inputs(reader);
  } else {
    held_input_.reset();
  }
  next_plan_time_s_ = reader.read_f64();
  planned_soc_ = reader.read_f64_vec();
  last_plan_status_ = static_cast<opt::SolveStatus>(reader.read_u8());
  last_plan_applied_ = reader.read_bool();
  last_step_qp_iterations_ = reader.read_u64();
  last_step_solve_ns_ = reader.read_u64();

  reader.expect_section("mpc_stats");
  stats_.plans = reader.read_size();
  stats_.failures = reader.read_size();
  stats_.sqp_iterations = reader.read_size();
  stats_.qp_iterations = reader.read_size();
  stats_.solve_time_ns = reader.read_u64();
  stats_.dual_warm_starts = reader.read_size();
  stats_.converged = reader.read_size();
  stats_.max_iteration_exits = reader.read_size();
  stats_.timeouts = reader.read_size();
  stats_.numerical_failures = reader.read_size();
  stats_.rejected_plans = reader.read_size();
  // The restored counters go straight back into the workspace, so the
  // resumed run's aggregate solver telemetry continues where it left off
  // (decide() re-reads them from the solver after every plan).
  stats_.solver = load_qp_counters(reader);
  solver_.restore_qp_counters(stats_.solver);
  stats_.solver_workspace_bytes = reader.read_size();

  reader.expect_section("mpc_backend");
  solver_.load_backend_state(reader);
}

void MpcClimateController::fill_flight_record(
    obs::FlightRecord& record) const {
  record.qp_iterations = last_step_qp_iterations_;
  record.solve_time_ns = last_step_solve_ns_;
}

}  // namespace evc::core
