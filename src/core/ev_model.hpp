// Integrated EV model: power train + HVAC plant + battery/BMS.
//
// This is the "physical plant" of the co-simulation (the paper models it in
// AMESim, Fig. 3): controllers act on it through HVAC inputs; the drive
// profile drives the motor load; the BMS tracks SoC and cycle stress.
#pragma once

#include "battery/bms.hpp"
#include "drivecycle/drive_profile.hpp"
#include "hvac/hvac_plant.hpp"
#include "powertrain/power_train.hpp"

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::core {

struct EvParams {
  pt::VehicleParams vehicle = pt::nissan_leaf_params();
  hvac::HvacParams hvac = hvac::default_hvac_params();
  bat::BatteryParams battery = bat::leaf_24kwh_params();
  bat::BmsLimits bms;
};

/// Per-step plant outcome.
struct EvStep {
  double motor_power_w = 0.0;
  hvac::HvacStepResult hvac;
  double accessory_power_w = 0.0;
  double total_power_w = 0.0;    ///< as served by the BMS
  double soc_percent = 0.0;
};

class EvModel {
 public:
  EvModel(EvParams params, double initial_soc_percent,
          double initial_cabin_temp_c);

  const EvParams& params() const { return params_; }
  const pt::PowerTrain& power_train() const { return power_train_; }
  double cabin_temp_c() const { return hvac_plant_.cabin_temp_c(); }
  double soc_percent() const { return bms_.soc_percent(); }
  const bat::Bms& bms() const { return bms_; }

  /// Restart a discharge cycle.
  void reset(double soc_percent, double cabin_temp_c);

  /// Advance one step: motor load from the drive sample, HVAC inputs from
  /// the controller, battery update through the BMS.
  EvStep step(const drive::DriveSample& sample,
              const hvac::HvacInputs& hvac_inputs, double dt_s);

  /// Checkpoint hooks: plant thermal state + complete battery/BMS history
  /// (the SoC trace feeds the cycle-stress metrics, so it must survive a
  /// restore byte-identically).
  void save_state(BinaryWriter& writer) const;
  void load_state(BinaryReader& reader);

 private:
  EvParams params_;
  pt::PowerTrain power_train_;
  hvac::HvacPlant hvac_plant_;
  bat::Bms bms_;
};

}  // namespace evc::core
