// Route-based trip planning (paper §I: "[3][7] have illustrated that the
// BMS may predict and optimize the energy consumption more efficiently by
// having the route information"; §II-A: the route and its per-segment
// parameters "are known accurately before driving").
//
// Before departure the planner rolls the power train (with the explicit
// power-electronics maps) and a nominal HVAC load over the whole drive
// profile to predict the SoC trajectory. Products:
//  * reachability — will the trip complete above the BMS floor?
//  * the predicted cycle-average SoC — the SoCavg the paper's cost
//    function Eq. 21 references (see MpcWindowData::soc_reference);
//  * a per-sample SoC forecast for range/charge planning UIs.
#pragma once

#include <vector>

#include "core/ev_model.hpp"
#include "drivecycle/drive_profile.hpp"
#include "powertrain/power_electronics.hpp"

namespace evc::core {

struct TripPlan {
  /// Predicted SoC per profile sample (percent), Peukert included.
  std::vector<double> predicted_soc;
  double predicted_final_soc = 0.0;
  double predicted_cycle_avg_soc = 0.0;  ///< the paper's SoCavg
  double predicted_energy_j = 0.0;       ///< battery-side, whole trip
  bool reachable = false;  ///< final SoC stays above the BMS floor
};

class TripPlanner {
 public:
  explicit TripPlanner(EvParams params);

  /// Predict the trip from `initial_soc` assuming the HVAC draws a
  /// constant `nominal_hvac_power_w` (the pre-drive estimate; the paper's
  /// related work treats HVAC as exactly such a constant).
  TripPlan plan(const drive::DriveProfile& profile, double initial_soc,
                double nominal_hvac_power_w) const;

  /// Steady-state HVAC power needed to hold the comfort target at
  /// `ambient_c` with a mid damper setting — a physically grounded default
  /// for `plan`'s nominal HVAC power.
  double steady_hvac_power_w(double ambient_c) const;

 private:
  EvParams params_;
  pt::PowerTrain power_train_;
  pt::TractionInverter inverter_;
  pt::DcDcConverter dcdc_;
};

}  // namespace evc::core
