// Hybrid Energy Storage System: battery + ultracapacitor with a
// peak-shaving power split (paper §I, ref [3]).
//
// Policy: a first-order low-pass filter estimates the sustained component
// of the load; the battery serves that component (plus a trickle term that
// restores the ultracapacitor toward its target SoC), the ultracapacitor
// serves the transient residual within its envelope, and whatever it
// cannot serve falls back to the battery. This is the classic
// filter-based HESS management the DAC'13 reference builds on, and it
// attacks exactly the quantity the paper's SoH model penalizes: the
// variance of the battery's SoC trajectory.
#pragma once

#include "battery/bms.hpp"
#include "battery/ultracapacitor.hpp"

namespace evc::bat {

struct HessPolicy {
  /// Low-pass time constant for the battery's share of the load (s).
  double filter_time_constant_s = 20.0;
  /// Ultracapacitor SoC setpoint in [0, 1]; headroom for both peaks (above)
  /// and regen (below).
  double ucap_soc_target = 0.6;
  /// Gain (W per unit SoC error) of the restoring trickle charge.
  double restore_gain_w = 4000.0;

  void validate() const;
};

struct HessStep {
  double battery_power_w = 0.0;
  double ucap_power_w = 0.0;
  double served_power_w = 0.0;  ///< battery + ucap (= request unless derated)
  double ucap_soc = 0.0;
};

class Hess {
 public:
  Hess(BatteryParams battery_params, BmsLimits limits,
       UltracapParams ucap_params, HessPolicy policy,
       double initial_soc_percent);

  double battery_soc_percent() const { return bms_.soc_percent(); }
  const Bms& bms() const { return bms_; }
  const Ultracapacitor& ultracap() const { return ucap_; }

  /// Serve a power demand (+ = discharge) for one step.
  HessStep apply_power(double requested_power_w, double dt_s);

  void start_cycle(double soc_percent);

  /// ΔSoH of the battery for the cycle so far (Eq. 15 on the battery's own
  /// SoC trace — the quantity the HESS exists to improve).
  double cycle_delta_soh() const { return bms_.cycle_delta_soh(); }
  CycleStress cycle_stress() const { return bms_.cycle_stress(); }

 private:
  Bms bms_;
  Ultracapacitor ucap_;
  HessPolicy policy_;
  double filtered_load_w_ = 0.0;
  bool filter_primed_ = false;
  double initial_ucap_voltage_v_;
};

}  // namespace evc::bat
