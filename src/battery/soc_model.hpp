// Rate-capacity SoC model (paper Eq. 13–14, Peukert's law).
#pragma once

#include "battery/battery_params.hpp"

namespace evc::bat {

class PeukertSocModel {
 public:
  explicit PeukertSocModel(BatteryParams params);

  const BatteryParams& params() const { return params_; }

  /// Effective current Ieff = I·(I/In)^(pc−1) (Eq. 14). Discharge only:
  /// charging currents (I < 0) pass through unchanged — the rate-capacity
  /// effect models chemical availability during discharge.
  double effective_current(double current_a) const;

  /// Pack terminal current for an electrical power demand (W, negative =
  /// charging) at open-circuit voltage `ocv_v`, accounting for the IR drop:
  /// solves P = (Voc − I·R)·I for the physical branch.
  /// Throws std::invalid_argument if the demand exceeds the deliverable
  /// maximum Voc²/4R.
  double current_for_power(double power_w, double ocv_v) const;

  /// SoC decrement (percentage points) for drawing `current_a` over `dt_s`
  /// seconds (Eq. 13 discretized).
  double soc_delta(double current_a, double dt_s) const;

 private:
  BatteryParams params_;
};

}  // namespace evc::bat
