#include "battery/bms.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/serialize.hpp"

namespace evc::bat {

Bms::Bms(BatteryParams params, BmsLimits limits, double initial_soc_percent)
    : pack_(params, initial_soc_percent), soh_model_(params),
      limits_(limits) {
  EVC_EXPECT(limits_.min_soc_percent < limits_.max_soc_percent,
             "BMS SoC limits inverted");
  EVC_EXPECT(limits_.max_discharge_power_w > 0.0 &&
                 limits_.max_charge_power_w > 0.0,
             "BMS power limits must be positive");
  soc_trace_.push_back(pack_.soc_percent());
}

void Bms::start_cycle(double soc_percent) {
  pack_.reset(soc_percent);
  soc_trace_.clear();
  soc_trace_.push_back(soc_percent);
  protection_engaged_ = false;
}

double Bms::apply_power(double requested_power_w, double dt_s) {
  double power = std::clamp(requested_power_w, -limits_.max_charge_power_w,
                            limits_.max_discharge_power_w);
  // Over-discharge guard: refuse discharge below the floor. Over-charge
  // guard: cut regeneration above the ceiling.
  if (pack_.soc_percent() <= limits_.min_soc_percent && power > 0.0)
    power = 0.0;
  if (pack_.soc_percent() >= limits_.max_soc_percent && power < 0.0)
    power = 0.0;
  if (power != requested_power_w) protection_engaged_ = true;

  last_step_ = pack_.step(power, dt_s);
  soc_trace_.push_back(pack_.soc_percent());
  return power;
}

CycleStress Bms::cycle_stress() const {
  return soh_model_.stress_of_trace(soc_trace_);
}

double Bms::cycle_delta_soh() const {
  return soh_model_.delta_soh(cycle_stress());
}

void Bms::save_state(BinaryWriter& writer) const {
  writer.section("bms");
  pack_.save_state(writer);
  writer.write_f64_vec(soc_trace_);
  writer.write_f64(last_step_.current_a);
  writer.write_f64(last_step_.effective_current_a);
  writer.write_f64(last_step_.terminal_voltage_v);
  writer.write_f64(last_step_.soc_percent);
  writer.write_bool(protection_engaged_);
}

void Bms::load_state(BinaryReader& reader) {
  reader.expect_section("bms");
  pack_.load_state(reader);
  soc_trace_ = reader.read_f64_vec();
  last_step_.current_a = reader.read_f64();
  last_step_.effective_current_a = reader.read_f64();
  last_step_.terminal_voltage_v = reader.read_f64();
  last_step_.soc_percent = reader.read_f64();
  protection_engaged_ = reader.read_bool();
}

}  // namespace evc::bat
