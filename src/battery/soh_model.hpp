// SoH degradation model (paper Eq. 15–17).
//
// The stress of one discharging/charging cycle is summarized by the SoC
// deviation (population stddev of the SoC trace) and the SoC average; the
// per-cycle capacity fade is
//   ΔSoH = (a1·e^(α·SoCdev) + a2) · (a3·e^(β·SoCavg)).
// All SoC quantities are in percent; ΔSoH is in percentage points of
// capacity fade per cycle.
#pragma once

#include <vector>

#include "battery/battery_params.hpp"

namespace evc::bat {

/// Cycle stress summary (Eq. 16–17).
struct CycleStress {
  double soc_deviation = 0.0;  ///< SoCdev, percent
  double soc_average = 0.0;    ///< SoCavg, percent
};

class SohModel {
 public:
  explicit SohModel(BatteryParams params);

  const BatteryParams& params() const { return params_; }

  /// Stress of the *driving* (discharge) part of a cycle from a sampled SoC
  /// trace (percent).
  CycleStress stress_of_trace(const std::vector<double>& soc_trace) const;

  /// Per-cycle fade (percentage points) from a cycle's stress. The fixed
  /// charging phase (paper §II-D) is folded in as constants: its deviation
  /// adds to the drive deviation, and the cycle average blends the drive
  /// average with the charging-phase average.
  double delta_soh(const CycleStress& drive_stress) const;

  /// Convenience: fade directly from a drive SoC trace.
  double delta_soh_of_trace(const std::vector<double>& soc_trace) const;

  /// Number of identical cycles until end of life (80 % capacity),
  /// cycle aging only (the paper's lifetime measure).
  double cycles_to_end_of_life(double delta_soh_per_cycle) const;

  /// Calendar fade (percentage points) after `days` at a standing SoC —
  /// √t law, an extension beyond the paper's cycle-only model.
  double calendar_fade(double days, double standing_soc_percent) const;

  /// Years until end of life combining cycle aging (`cycles_per_day`
  /// cycles of `delta_soh_per_cycle` each) with calendar aging at the
  /// standing SoC. Solved by bisection.
  double years_to_end_of_life(double delta_soh_per_cycle,
                              double cycles_per_day,
                              double standing_soc_percent) const;

 private:
  BatteryParams params_;
};

}  // namespace evc::bat
