#include "battery/ultracapacitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::bat {

void UltracapParams::validate() const {
  EVC_EXPECT(capacitance_f > 0.0, "capacitance must be positive");
  EVC_EXPECT(max_voltage_v > min_voltage_v && min_voltage_v >= 0.0,
             "ultracap voltage window inverted");
  EVC_EXPECT(esr_ohm >= 0.0, "ESR must be >= 0");
  EVC_EXPECT(max_current_a > 0.0, "current limit must be positive");
}

Ultracapacitor::Ultracapacitor(UltracapParams params,
                               double initial_voltage_v)
    : params_(params), voltage_v_(initial_voltage_v) {
  params_.validate();
  EVC_EXPECT(initial_voltage_v >= params_.min_voltage_v &&
                 initial_voltage_v <= params_.max_voltage_v,
             "initial ultracap voltage outside window");
}

double Ultracapacitor::soc() const {
  return (voltage_v_ - params_.min_voltage_v) /
         (params_.max_voltage_v - params_.min_voltage_v);
}

double Ultracapacitor::stored_energy_j() const {
  return 0.5 * params_.capacitance_f * voltage_v_ * voltage_v_;
}

double Ultracapacitor::max_discharge_power_w() const {
  if (voltage_v_ <= params_.min_voltage_v + 1e-9) return 0.0;
  const double i = params_.max_current_a;
  return std::max((voltage_v_ - i * params_.esr_ohm) * i, 0.0);
}

double Ultracapacitor::max_charge_power_w() const {
  if (voltage_v_ >= params_.max_voltage_v - 1e-9) return 0.0;
  const double i = params_.max_current_a;
  return std::max((voltage_v_ + i * params_.esr_ohm) * i, 0.0);
}

UltracapStep Ultracapacitor::step(double power_w, double dt_s) {
  EVC_EXPECT(dt_s > 0.0, "ultracap step must be positive");
  UltracapStep out;

  double power = std::clamp(power_w, -max_charge_power_w(),
                            max_discharge_power_w());

  // Terminal power P = (V − I·R)·I → R·I² − V·I + P = 0, physical branch.
  double current = 0.0;
  if (std::abs(power) > 1e-12) {
    if (params_.esr_ohm <= 0.0) {
      current = power / voltage_v_;
    } else {
      const double disc =
          voltage_v_ * voltage_v_ - 4.0 * params_.esr_ohm * power;
      // The envelope clamp above keeps disc ≥ 0 for discharge; charging
      // always has disc > 0.
      current = (voltage_v_ - std::sqrt(std::max(disc, 0.0))) /
                (2.0 * params_.esr_ohm);
    }
  }
  current = std::clamp(current, -params_.max_current_a,
                       params_.max_current_a);

  // Voltage update, clamped to the window (the clamp models the DC/DC
  // controller cutting off at the window edges).
  double v_next = voltage_v_ - current * dt_s / params_.capacitance_f;
  if (v_next < params_.min_voltage_v) {
    current = (voltage_v_ - params_.min_voltage_v) * params_.capacitance_f /
              dt_s;
    v_next = params_.min_voltage_v;
  } else if (v_next > params_.max_voltage_v) {
    current = (voltage_v_ - params_.max_voltage_v) * params_.capacitance_f /
              dt_s;
    v_next = params_.max_voltage_v;
  }

  out.current_a = current;
  out.power_served_w = (voltage_v_ - current * params_.esr_ohm) * current;
  voltage_v_ = v_next;
  out.voltage_v = voltage_v_;
  return out;
}

}  // namespace evc::bat
