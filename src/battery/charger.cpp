#include "battery/charger.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace evc::bat {

void ChargerParams::validate() const {
  EVC_EXPECT(cc_current_a > 0.0, "CC current must be positive");
  EVC_EXPECT(cv_voltage_v > 0.0, "CV voltage must be positive");
  EVC_EXPECT(cutoff_current_a > 0.0 && cutoff_current_a < cc_current_a,
             "cutoff current must be in (0, cc_current)");
  EVC_EXPECT(sample_period_s > 0.0, "sample period must be positive");
  EVC_EXPECT(max_duration_s > 0.0, "max duration must be positive");
}

ChargeResult simulate_cc_cv_charge(BatteryPack& pack,
                                   const ChargerParams& charger) {
  charger.validate();
  const double r = pack.params().internal_resistance_ohm;
  ChargeResult result;
  result.soc_trace.push_back(pack.soc_percent());

  double t = 0.0;
  while (t < charger.max_duration_s && pack.soc_percent() < 100.0 - 1e-9) {
    const double ocv = pack.open_circuit_voltage();

    // Phase selection: CC until the terminal voltage would exceed the CV
    // setpoint, then CV with the current tapering as the OCV rises.
    double current = charger.cc_current_a;
    if (ocv + current * r >= charger.cv_voltage_v) {
      current = r > 0.0 ? (charger.cv_voltage_v - ocv) / r
                        : charger.cutoff_current_a;
      if (current <= charger.cutoff_current_a) break;  // charge complete
    }

    // Terminal power flowing *into* the pack (negative demand).
    const double terminal_v = ocv + current * r;
    pack.step(-terminal_v * current, charger.sample_period_s);
    t += charger.sample_period_s;
    result.soc_trace.push_back(pack.soc_percent());
  }

  result.duration_s = t;
  result.final_soc_percent = pack.soc_percent();
  if (result.soc_trace.size() >= 2) {
    SohModel soh(pack.params());
    result.stress = soh.stress_of_trace(result.soc_trace);
  } else {
    // Already above the CV cutoff at the start: nothing charged, zero
    // deviation, average is the standing SoC.
    result.stress = CycleStress{0.0, pack.soc_percent()};
  }
  return result;
}

}  // namespace evc::bat
