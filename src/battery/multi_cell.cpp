#include "battery/multi_cell.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace evc::bat {

MultiCellPack::MultiCellPack(BatteryParams params, std::size_t series_cells,
                             CellSpread spread, BalancerParams balancer,
                             double initial_soc_percent)
    : params_(params), balancer_(balancer), ocv_(make_leaf_ocv_curve()) {
  params_.validate();
  EVC_EXPECT(series_cells >= 2, "a string needs at least two cells");
  EVC_EXPECT(spread.capacity_sigma >= 0.0 && spread.capacity_sigma < 0.2,
             "capacity spread outside plausible range");
  EVC_EXPECT(balancer_.bleed_current_a >= 0.0,
             "bleed current must be >= 0");
  EVC_EXPECT(balancer_.threshold_percent >= 0.0,
             "balancer threshold must be >= 0");
  EVC_EXPECT(initial_soc_percent >= 0.0 && initial_soc_percent <= 100.0,
             "initial SoC outside [0, 100]");

  SplitMix64 rng(spread.seed);
  const double nominal_c = units::ah_to_coulomb(params_.nominal_capacity_ah);
  const double cell_r =
      params_.internal_resistance_ohm / static_cast<double>(series_cells);
  cells_.resize(series_cells);
  soc_.assign(series_cells, initial_soc_percent);
  for (Cell& cell : cells_) {
    cell.capacity_c =
        nominal_c * std::max(0.5, 1.0 + rng.normal(0.0, spread.capacity_sigma));
    cell.resistance_ohm =
        cell_r * std::max(0.2, 1.0 + rng.normal(0.0, spread.resistance_sigma));
  }
}

double MultiCellPack::min_cell_soc() const {
  return *std::min_element(soc_.begin(), soc_.end());
}

double MultiCellPack::max_cell_soc() const {
  return *std::max_element(soc_.begin(), soc_.end());
}

double MultiCellPack::imbalance() const {
  return max_cell_soc() - min_cell_soc();
}

double MultiCellPack::terminal_voltage(double current_a) const {
  const double n = static_cast<double>(cells_.size());
  double v = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    // Per-cell OCV: the pack curve scaled down to one cell's share.
    v += ocv_(soc_[i]) / n - current_a * cells_[i].resistance_ohm;
  }
  return v;
}

double MultiCellPack::step_current(double current_a, double dt_s) {
  EVC_EXPECT(dt_s > 0.0, "pack step must be positive");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const double delta = 100.0 * current_a * dt_s / cells_[i].capacity_c;
    soc_[i] = std::clamp(soc_[i] - delta, 0.0, 100.0);
  }
  return min_cell_soc();
}

double MultiCellPack::balance(double dt_s) {
  EVC_EXPECT(dt_s > 0.0, "balance step must be positive");
  const double floor = min_cell_soc() + balancer_.threshold_percent;
  const double n = static_cast<double>(cells_.size());
  double dissipated_j = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (soc_[i] <= floor) continue;
    const double delta =
        100.0 * balancer_.bleed_current_a * dt_s / cells_[i].capacity_c;
    // Don't bleed below the engage floor within one step.
    const double applied = std::min(delta, soc_[i] - floor);
    soc_[i] -= applied;
    dissipated_j += (applied / 100.0) * cells_[i].capacity_c *
                    (ocv_(soc_[i]) / n);
  }
  return dissipated_j;
}

}  // namespace evc::bat
