// Battery pack parameters (paper §II-D, Eq. 13–17).
//
// Defaults model a Leaf-class 24 kWh Li-ion pack (96s2p, 360 V nominal).
// The SoH degradation constants follow the Millner-shaped stress model the
// paper adopts: ΔSoH = (a1·e^(α·SoCdev) + a2)·(a3·e^(β·SoCavg)).
#pragma once

#include "util/interp.hpp"

namespace evc::bat {

struct BatteryParams {
  double nominal_capacity_ah = 66.2;  ///< Cn at the nominal current
  double nominal_voltage_v = 360.0;
  /// In — manufacturer's nominal (rating) current; C/3 for this pack.
  double nominal_current_a = 22.1;
  double peukert_constant = 1.05;  ///< pc in Eq. 14
  double internal_resistance_ohm = 0.1;

  // --- SoH degradation model (Eq. 15), SoC quantities in percent ---
  double soh_a1 = 5e-4;
  double soh_a2 = 2.5e-4;
  double soh_a3 = 1.0;
  double soh_alpha = 0.35;  ///< sensitivity to SoC deviation (1/%)
  double soh_beta = 0.02;   ///< sensitivity to SoC average (1/%)

  /// The charging half of the cycle has fixed pattern/duration (paper
  /// §II-D); its contribution to the cycle's SoC deviation and average is
  /// folded in as constants.
  double charge_phase_dev_percent = 4.0;
  double charge_phase_avg_percent = 70.0;

  // --- Calendar aging (extension; the paper models cycle aging only) ---
  /// √t calendar fade: fade% = k·e^(β_cal·SoC)·√days. Defaults give ≈2 %
  /// in the first year at 70 % standing SoC.
  double calendar_k = 0.037;
  double calendar_beta = 0.015;  ///< sensitivity to standing SoC (1/%)

  /// End of life at 80 % of nominal capacity (paper §I / §II-D).
  double end_of_life_fade_percent = 20.0;

  void validate() const;
};

BatteryParams leaf_24kwh_params();

/// Pack open-circuit voltage as a function of SoC (percent). Monotone
/// Li-ion shape with the characteristic low-SoC knee.
LookupTable1D make_leaf_ocv_curve();

}  // namespace evc::bat
