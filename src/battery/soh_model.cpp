#include "battery/soh_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/expect.hpp"
#include "util/stats.hpp"

namespace evc::bat {

SohModel::SohModel(BatteryParams params) : params_(params) {
  params_.validate();
}

CycleStress SohModel::stress_of_trace(
    const std::vector<double>& soc_trace) const {
  EVC_EXPECT(soc_trace.size() >= 2, "SoC trace needs at least two samples");
  CycleStress stress;
  stress.soc_average = mean_of(soc_trace);
  stress.soc_deviation = stddev_of(soc_trace);
  return stress;
}

double SohModel::delta_soh(const CycleStress& drive_stress) const {
  EVC_EXPECT(drive_stress.soc_deviation >= 0.0,
             "SoC deviation must be >= 0");
  // Corrupted SoC telemetry can place the cycle stress far outside what a
  // pack can physically exhibit, and e^(α·dev) then overflows to Inf and
  // poisons every downstream lifetime figure. Clamp both stress inputs to
  // the representable [0, 100] band (non-finite collapses to the band edge
  // nearest zero); debug builds assert so genuine model bugs stay loud.
  assert(drive_stress.soc_deviation <= 100.0 &&
         "SoC deviation above the 0-100 band");
  assert(drive_stress.soc_average >= 0.0 &&
         drive_stress.soc_average <= 100.0 &&
         "SoC average outside the 0-100 band");
  const double deviation =
      std::isfinite(drive_stress.soc_deviation)
          ? std::min(drive_stress.soc_deviation, 100.0)
          : 0.0;
  const double average =
      std::isfinite(drive_stress.soc_average)
          ? std::clamp(drive_stress.soc_average, 0.0, 100.0)
          : 0.0;
  const double dev = deviation + params_.charge_phase_dev_percent;
  const double avg = 0.5 * (average + params_.charge_phase_avg_percent);
  return (params_.soh_a1 * std::exp(params_.soh_alpha * dev) +
          params_.soh_a2) *
         (params_.soh_a3 * std::exp(params_.soh_beta * avg));
}

double SohModel::delta_soh_of_trace(
    const std::vector<double>& soc_trace) const {
  return delta_soh(stress_of_trace(soc_trace));
}

double SohModel::cycles_to_end_of_life(double delta_soh_per_cycle) const {
  EVC_EXPECT(delta_soh_per_cycle > 0.0, "fade per cycle must be positive");
  return params_.end_of_life_fade_percent / delta_soh_per_cycle;
}

double SohModel::calendar_fade(double days,
                               double standing_soc_percent) const {
  EVC_EXPECT(days >= 0.0, "calendar days must be >= 0");
  EVC_EXPECT(standing_soc_percent >= 0.0 && standing_soc_percent <= 100.0,
             "standing SoC outside [0, 100]");
  return params_.calendar_k *
         std::exp(params_.calendar_beta * standing_soc_percent) *
         std::sqrt(days);
}

double SohModel::years_to_end_of_life(double delta_soh_per_cycle,
                                      double cycles_per_day,
                                      double standing_soc_percent) const {
  EVC_EXPECT(delta_soh_per_cycle >= 0.0, "fade per cycle must be >= 0");
  EVC_EXPECT(cycles_per_day >= 0.0, "cycles per day must be >= 0");
  EVC_EXPECT(delta_soh_per_cycle * cycles_per_day > 0.0 ||
                 params_.calendar_k > 0.0,
             "no aging mechanism active — lifetime undefined");
  const auto total_fade = [&](double years) {
    const double days = 365.0 * years;
    return delta_soh_per_cycle * cycles_per_day * days +
           calendar_fade(days, standing_soc_percent);
  };
  double lo = 0.0, hi = 1.0;
  while (total_fade(hi) < params_.end_of_life_fade_percent && hi < 1e4)
    hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (total_fade(mid) < params_.end_of_life_fade_percent)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace evc::bat
