#include "battery/thermal_model.hpp"

#include <cmath>

#include "util/expect.hpp"
#include "util/units.hpp"

namespace evc::bat {

void BatteryThermalParams::validate() const {
  EVC_EXPECT(heat_capacity_j_per_k > 0.0,
             "pack heat capacity must be positive");
  EVC_EXPECT(ua_w_per_k > 0.0, "pack UA must be positive");
  EVC_EXPECT(activation_energy_over_r_k > 0.0,
             "activation energy must be positive");
  EVC_EXPECT(reference_temp_c > -40.0 && reference_temp_c < 80.0,
             "reference temperature outside plausible range");
}

BatteryThermalModel::BatteryThermalModel(BatteryThermalParams params,
                                         double initial_temp_c)
    : params_(params), temp_c_(initial_temp_c) {
  params_.validate();
  EVC_EXPECT(initial_temp_c > -40.0 && initial_temp_c < 90.0,
             "initial pack temperature outside plausible range");
}

double BatteryThermalModel::step(double current_a, double resistance_ohm,
                                 double ambient_c, double dt_s) {
  EVC_EXPECT(dt_s >= 0.0, "thermal step must be >= 0");
  EVC_EXPECT(resistance_ohm >= 0.0, "resistance must be >= 0");
  const double joule_w = current_a * current_a * resistance_ohm;
  // Exact step of C·dT/dt = q − UA·(T − Tamb): first-order toward the
  // equilibrium Tamb + q/UA.
  const double t_inf = ambient_c + joule_w / params_.ua_w_per_k;
  const double rate = params_.ua_w_per_k / params_.heat_capacity_j_per_k;
  temp_c_ = t_inf + (temp_c_ - t_inf) * std::exp(-rate * dt_s);
  return temp_c_;
}

double BatteryThermalModel::fade_acceleration(double temp_c) const {
  const double t = units::celsius_to_kelvin(temp_c);
  const double tref = units::celsius_to_kelvin(params_.reference_temp_c);
  return std::exp(params_.activation_energy_over_r_k * (1.0 / tref - 1.0 / t));
}

double delta_soh_at_temperature(const SohModel& soh,
                                const BatteryThermalModel& thermal,
                                const CycleStress& stress,
                                double avg_pack_temp_c) {
  return soh.delta_soh(stress) * thermal.fade_acceleration(avg_pack_temp_c);
}

}  // namespace evc::bat
