// Battery Management System facade (paper §I, §III Algorithm 1 line 20).
//
// Wraps the pack with the protections a BMS provides (over-discharge /
// over-charge guards, power derating near the SoC limits), accumulates the
// drive-cycle SoC trace, and evaluates the SoH degradation of the completed
// cycle — the quantity the paper's controller co-optimizes.
#pragma once

#include <vector>

#include "battery/battery_pack.hpp"
#include "battery/soh_model.hpp"

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::bat {

struct BmsLimits {
  double min_soc_percent = 5.0;   ///< over-discharge guard
  double max_soc_percent = 98.0;  ///< over-charge guard (regen cutoff)
  double max_discharge_power_w = 90e3;
  double max_charge_power_w = 40e3;
};

class Bms {
 public:
  Bms(BatteryParams params, BmsLimits limits, double initial_soc_percent);

  double soc_percent() const { return pack_.soc_percent(); }
  const std::vector<double>& soc_trace() const { return soc_trace_; }
  const BmsLimits& limits() const { return limits_; }

  /// True once the protection envelope was hit at least once.
  bool protection_engaged() const { return protection_engaged_; }

  /// Apply a power demand for one step. The BMS derates the request to its
  /// protection envelope (returning the power actually served) and records
  /// the SoC sample.
  double apply_power(double requested_power_w, double dt_s);

  /// Electrical details of the most recent apply_power step (pack current,
  /// Peukert-effective current, terminal voltage) — consumed by the battery
  /// thermal model.
  const BatteryPack& pack() const { return pack_; }
  const PackStep& last_step() const { return last_step_; }

  /// Reset to a fresh discharge cycle at `soc_percent`.
  void start_cycle(double soc_percent);

  /// Stress and fade of the cycle recorded since start_cycle().
  CycleStress cycle_stress() const;
  double cycle_delta_soh() const;

  void save_state(BinaryWriter& writer) const;
  void load_state(BinaryReader& reader);

 private:
  BatteryPack pack_;
  SohModel soh_model_;
  BmsLimits limits_;
  std::vector<double> soc_trace_;
  PackStep last_step_;
  bool protection_engaged_ = false;
};

}  // namespace evc::bat
