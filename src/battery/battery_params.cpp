#include "battery/battery_params.hpp"

#include "util/expect.hpp"

namespace evc::bat {

void BatteryParams::validate() const {
  EVC_EXPECT(nominal_capacity_ah > 0.0, "capacity must be positive");
  EVC_EXPECT(nominal_voltage_v > 0.0, "voltage must be positive");
  EVC_EXPECT(nominal_current_a > 0.0, "nominal current must be positive");
  EVC_EXPECT(peukert_constant >= 1.0 && peukert_constant < 1.5,
             "Peukert constant outside plausible Li-ion range");
  EVC_EXPECT(internal_resistance_ohm >= 0.0,
             "internal resistance must be >= 0");
  EVC_EXPECT(soh_a1 > 0.0 && soh_a2 >= 0.0 && soh_a3 > 0.0,
             "SoH model coefficients must be positive");
  EVC_EXPECT(soh_alpha > 0.0, "SoH deviation sensitivity must be positive");
  EVC_EXPECT(soh_beta >= 0.0, "SoH average sensitivity must be >= 0");
  EVC_EXPECT(charge_phase_dev_percent >= 0.0 &&
                 charge_phase_avg_percent >= 0.0 &&
                 charge_phase_avg_percent <= 100.0,
             "charge phase constants outside range");
  EVC_EXPECT(calendar_k >= 0.0, "calendar fade coefficient must be >= 0");
  EVC_EXPECT(calendar_beta >= 0.0, "calendar SoC sensitivity must be >= 0");
  EVC_EXPECT(end_of_life_fade_percent > 0.0 &&
                 end_of_life_fade_percent < 100.0,
             "end-of-life fade outside range");
}

BatteryParams leaf_24kwh_params() { return BatteryParams{}; }

LookupTable1D make_leaf_ocv_curve() {
  return LookupTable1D(
      {0.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0},
      {330.0, 344.0, 353.0, 365.0, 371.0, 375.0, 379.0, 383.0, 387.0, 391.0,
       396.0, 403.0});
}

}  // namespace evc::bat
