#include "battery/battery_pack.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/serialize.hpp"
#include "util/units.hpp"

namespace evc::bat {

BatteryPack::BatteryPack(BatteryParams params, double initial_soc_percent)
    : soc_model_(params), ocv_(make_leaf_ocv_curve()),
      soc_percent_(initial_soc_percent) {
  EVC_EXPECT(initial_soc_percent >= 0.0 && initial_soc_percent <= 100.0,
             "initial SoC must be in [0, 100]");
}

void BatteryPack::reset(double soc_percent) {
  EVC_EXPECT(soc_percent >= 0.0 && soc_percent <= 100.0,
             "SoC must be in [0, 100]");
  soc_percent_ = soc_percent;
  depleted_ = false;
}

PackStep BatteryPack::step(double power_w, double dt_s) {
  EVC_EXPECT(dt_s > 0.0, "pack step duration must be positive");
  PackStep out;
  const double ocv = ocv_(soc_percent_);
  out.current_a = soc_model_.current_for_power(power_w, ocv);
  out.effective_current_a = soc_model_.effective_current(out.current_a);
  out.terminal_voltage_v =
      ocv - out.current_a * params().internal_resistance_ohm;

  soc_percent_ += soc_model_.soc_delta(out.current_a, dt_s);
  if (soc_percent_ <= 0.0) depleted_ = true;
  soc_percent_ = std::clamp(soc_percent_, 0.0, 100.0);
  out.soc_percent = soc_percent_;
  return out;
}

double BatteryPack::remaining_energy_j() const {
  return units::ah_to_coulomb(params().nominal_capacity_ah) *
         (soc_percent_ / 100.0) * params().nominal_voltage_v;
}

void BatteryPack::save_state(BinaryWriter& writer) const {
  writer.section("battery_pack");
  writer.write_f64(soc_percent_);
  writer.write_bool(depleted_);
}

void BatteryPack::load_state(BinaryReader& reader) {
  reader.expect_section("battery_pack");
  soc_percent_ = reader.read_f64();
  depleted_ = reader.read_bool();
}

}  // namespace evc::bat
