// Stateful battery pack: SoC integration under a power load.
#pragma once

#include "battery/soc_model.hpp"
#include "util/interp.hpp"

namespace evc {
class BinaryReader;
class BinaryWriter;
}  // namespace evc

namespace evc::bat {

/// One step's electrical outcome.
struct PackStep {
  double current_a = 0.0;            ///< terminal current (− = charging)
  double effective_current_a = 0.0;  ///< Peukert-corrected (Eq. 14)
  double terminal_voltage_v = 0.0;
  double soc_percent = 0.0;          ///< SoC after the step
};

class BatteryPack {
 public:
  BatteryPack(BatteryParams params, double initial_soc_percent);

  const BatteryParams& params() const { return soc_model_.params(); }
  double soc_percent() const { return soc_percent_; }
  void reset(double soc_percent);
  double open_circuit_voltage() const { return ocv_(soc_percent_); }

  /// Draw `power_w` (− = regenerate) for `dt_s` seconds. SoC saturates at
  /// [0, 100]; drawing from an empty pack is flagged by `depleted()`.
  PackStep step(double power_w, double dt_s);

  bool depleted() const { return depleted_; }

  /// Remaining usable energy at the nominal voltage (J), ignoring rate
  /// effects — the BMS's simple range-estimation basis.
  double remaining_energy_j() const;

  void save_state(BinaryWriter& writer) const;
  void load_state(BinaryReader& reader);

 private:
  PeukertSocModel soc_model_;
  LookupTable1D ocv_;
  double soc_percent_;
  bool depleted_ = false;
};

}  // namespace evc::bat
