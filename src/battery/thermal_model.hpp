// Lumped battery-pack thermal model and temperature-dependent SoH.
//
// The paper scopes battery temperature out of Eq. 15 ("modeled as a
// constant"). This extension implements it: Joule self-heating against a
// coolant/ambient sink, and an Arrhenius acceleration factor on the
// per-cycle fade — so the ablation bench can quantify how much the
// constant-temperature assumption hides.
//
//   C_th·dT/dt = I²·R − UA·(T − T_amb)
//   fade(T) = fade(Tref) · exp( Ea/Rgas · (1/Tref − 1/T) )
#pragma once

#include "battery/soh_model.hpp"

namespace evc::bat {

struct BatteryThermalParams {
  /// Lumped heat capacity of the pack (≈200 kg of cells and structure).
  double heat_capacity_j_per_k = 2.2e5;
  /// Heat exchange to the coolant/ambient (forced-air Leaf-class pack).
  double ua_w_per_k = 35.0;
  /// Arrhenius activation energy over the gas constant (K). ~4500 K gives
  /// the commonly cited ≈2× fade per +13 °C near room temperature.
  double activation_energy_over_r_k = 4500.0;
  double reference_temp_c = 25.0;

  void validate() const;
};

class BatteryThermalModel {
 public:
  BatteryThermalModel(BatteryThermalParams params, double initial_temp_c);

  const BatteryThermalParams& params() const { return params_; }
  double temperature_c() const { return temp_c_; }
  void reset(double temp_c) { temp_c_ = temp_c; }

  /// Advance one step with pack current `current_a` through internal
  /// resistance `resistance_ohm`, sinking to `ambient_c`. Exact linear-ODE
  /// step (inputs held constant). Returns the new temperature.
  double step(double current_a, double resistance_ohm, double ambient_c,
              double dt_s);

  /// Arrhenius fade-acceleration factor at temperature `temp_c` relative
  /// to the reference (1.0 at the reference temperature).
  double fade_acceleration(double temp_c) const;

 private:
  BatteryThermalParams params_;
  double temp_c_;
};

/// SoH model with the temperature factor applied: Eq. 15 evaluated at the
/// cycle's average pack temperature instead of the paper's constant.
double delta_soh_at_temperature(const SohModel& soh,
                                const BatteryThermalModel& thermal,
                                const CycleStress& stress,
                                double avg_pack_temp_c);

}  // namespace evc::bat
