#include "battery/hess.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc::bat {

void HessPolicy::validate() const {
  EVC_EXPECT(filter_time_constant_s > 0.0,
             "HESS filter time constant must be positive");
  EVC_EXPECT(ucap_soc_target >= 0.0 && ucap_soc_target <= 1.0,
             "ultracap SoC target outside [0, 1]");
  EVC_EXPECT(restore_gain_w >= 0.0, "restore gain must be >= 0");
}

namespace {
double initial_voltage_for_target(const UltracapParams& p, double target) {
  return p.min_voltage_v + target * (p.max_voltage_v - p.min_voltage_v);
}
}  // namespace

Hess::Hess(BatteryParams battery_params, BmsLimits limits,
           UltracapParams ucap_params, HessPolicy policy,
           double initial_soc_percent)
    : bms_(battery_params, limits, initial_soc_percent),
      ucap_(ucap_params,
            initial_voltage_for_target(ucap_params, policy.ucap_soc_target)),
      policy_(policy),
      initial_ucap_voltage_v_(
          initial_voltage_for_target(ucap_params, policy.ucap_soc_target)) {
  policy_.validate();
}

void Hess::start_cycle(double soc_percent) {
  bms_.start_cycle(soc_percent);
  ucap_ = Ultracapacitor(ucap_.params(), initial_ucap_voltage_v_);
  filtered_load_w_ = 0.0;
  filter_primed_ = false;
}

HessStep Hess::apply_power(double requested_power_w, double dt_s) {
  EVC_EXPECT(dt_s > 0.0, "HESS step must be positive");
  // Low-pass the load: the battery should carry the sustained component.
  if (!filter_primed_) {
    filtered_load_w_ = requested_power_w;
    filter_primed_ = true;
  } else {
    const double alpha = dt_s / (policy_.filter_time_constant_s + dt_s);
    filtered_load_w_ += alpha * (requested_power_w - filtered_load_w_);
  }

  // Battery target: sustained load + restoring trickle toward the ucap
  // SoC setpoint (positive error → ucap under target → battery works
  // harder so the surplus recharges the ucap).
  const double soc_error = policy_.ucap_soc_target - ucap_.soc();
  double battery_power =
      filtered_load_w_ + policy_.restore_gain_w * soc_error;

  // The ultracapacitor covers the residual, within its envelope.
  double ucap_request = requested_power_w - battery_power;
  const UltracapStep ucap_step = ucap_.step(ucap_request, dt_s);

  // Whatever the ucap could not serve falls back to the battery.
  battery_power = requested_power_w - ucap_step.power_served_w;
  const double battery_served = bms_.apply_power(battery_power, dt_s);

  HessStep out;
  out.battery_power_w = battery_served;
  out.ucap_power_w = ucap_step.power_served_w;
  out.served_power_w = battery_served + ucap_step.power_served_w;
  out.ucap_soc = ucap_.soc();
  return out;
}

}  // namespace evc::bat
