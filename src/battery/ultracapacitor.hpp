// Ultracapacitor bank model for the Hybrid Energy Storage System
// (paper §I, ref [3]: Park, Kim, Chang, "Hybrid Energy Storage Systems and
// Battery Management for Electric Vehicles", DAC'13).
//
// Ideal capacitor with equivalent series resistance:
//   E = ½·C·V²,   dV/dt = −I/C,   P_terminal = (V − I·R)·I.
#pragma once

namespace evc::bat {

struct UltracapParams {
  double capacitance_f = 63.0;   ///< bank capacitance (Maxwell 125 V class)
  double max_voltage_v = 125.0;
  /// Bank must not fall below half voltage (¾ of the energy is usable).
  double min_voltage_v = 62.5;
  double esr_ohm = 0.018;
  double max_current_a = 750.0;

  void validate() const;
};

struct UltracapStep {
  double current_a = 0.0;   ///< + = discharging
  double voltage_v = 0.0;   ///< open-circuit voltage after the step
  double power_served_w = 0.0;  ///< may be less than requested at limits
};

class Ultracapacitor {
 public:
  Ultracapacitor(UltracapParams params, double initial_voltage_v);

  const UltracapParams& params() const { return params_; }
  double voltage() const { return voltage_v_; }
  /// Usable state of charge in [0, 1]: 0 at min voltage, 1 at max.
  double soc() const;
  double stored_energy_j() const;

  /// Maximum discharge (+) and charge (−) power deliverable right now,
  /// limited by current cap and the voltage window.
  double max_discharge_power_w() const;
  double max_charge_power_w() const;

  /// Serve `power_w` (+ = discharge) for `dt_s`, derated to the physical
  /// envelope. Returns what was actually served.
  UltracapStep step(double power_w, double dt_s);

 private:
  UltracapParams params_;
  double voltage_v_;
};

}  // namespace evc::bat
