#include "battery/soc_model.hpp"

#include <cassert>
#include <cmath>

#include "util/expect.hpp"
#include "util/units.hpp"

namespace evc::bat {

PeukertSocModel::PeukertSocModel(BatteryParams params) : params_(params) {
  params_.validate();
}

double PeukertSocModel::effective_current(double current_a) const {
  if (current_a <= 0.0) return current_a;
  return current_a * std::pow(current_a / params_.nominal_current_a,
                              params_.peukert_constant - 1.0);
}

double PeukertSocModel::current_for_power(double power_w, double ocv_v) const {
  EVC_EXPECT(ocv_v > 0.0, "open-circuit voltage must be positive");
  const double r = params_.internal_resistance_ohm;
  if (r <= 0.0) return power_w / ocv_v;
  const double discriminant = ocv_v * ocv_v - 4.0 * r * power_w;
  EVC_EXPECT(discriminant >= 0.0,
             "power demand exceeds the pack's deliverable maximum");
  // Physical branch: the smaller root (terminal voltage stays near Voc).
  return (ocv_v - std::sqrt(discriminant)) / (2.0 * r);
}

double PeukertSocModel::soc_delta(double current_a, double dt_s) const {
  EVC_EXPECT(dt_s >= 0.0, "time step must be >= 0");
  // A non-finite ampere reading (corrupted telemetry) must not integrate
  // into the SoC state — coulomb counting is cumulative and one NaN would
  // stick forever. Hold the SoC instead; debug builds assert.
  assert(std::isfinite(current_a) && "pack current must be finite");
  if (!std::isfinite(current_a)) return 0.0;
  const double capacity_c =
      units::ah_to_coulomb(params_.nominal_capacity_ah);
  return -100.0 * effective_current(current_a) * dt_s / capacity_c;
}

}  // namespace evc::bat
