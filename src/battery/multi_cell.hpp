// Series multi-cell pack with passive balancing.
//
// The paper's §I: "The BMS prevents overcharging, overdischarging,
// overheating, and imbalance of battery cells". The pack-level models in
// battery_pack.* treat the pack as one lumped cell; this module resolves
// the series string: manufacturing spread in per-cell capacity and
// resistance makes cell SoCs diverge under load, the weakest cell limits
// the usable pack capacity, and a passive balancer (bleed resistors)
// reconverges the string.
#pragma once

#include <cstdint>
#include <vector>

#include "battery/battery_params.hpp"

namespace evc::bat {

struct CellSpread {
  /// Relative standard deviation of cell capacity (1σ, e.g. 0.02 = ±2 %).
  double capacity_sigma = 0.02;
  /// Relative standard deviation of cell resistance.
  double resistance_sigma = 0.05;
  std::uint64_t seed = 1;
};

struct BalancerParams {
  /// Bleed current through the balancing resistor (A).
  double bleed_current_a = 0.1;
  /// Balancing engages on cells more than this above the string minimum.
  double threshold_percent = 0.5;
};

class MultiCellPack {
 public:
  /// `series_cells` cells with parameters scaled from the pack-level
  /// `params` (capacity in Ah is per-cell = pack capacity; voltage split).
  MultiCellPack(BatteryParams params, std::size_t series_cells,
                CellSpread spread, BalancerParams balancer,
                double initial_soc_percent);

  std::size_t num_cells() const { return cells_.size(); }
  const std::vector<double>& cell_soc() const { return soc_; }
  double min_cell_soc() const;
  double max_cell_soc() const;
  /// max − min cell SoC (percentage points) — the BMS's imbalance metric.
  double imbalance() const;
  double terminal_voltage(double current_a) const;

  /// Apply a string current for `dt_s` (+ = discharge). Every cell sees
  /// the same current; SoC moves per each cell's own capacity. Returns the
  /// string's limiting (minimum) SoC after the step.
  double step_current(double current_a, double dt_s);

  /// Run the passive balancer for `dt_s`: cells above (min + threshold)
  /// bleed at the balancer current. Returns the energy dissipated (J).
  double balance(double dt_s);

 private:
  struct Cell {
    double capacity_c = 0.0;  ///< coulombs
    double resistance_ohm = 0.0;
  };
  BatteryParams params_;
  BalancerParams balancer_;
  std::vector<Cell> cells_;
  std::vector<double> soc_;  ///< percent per cell
  LookupTable1D ocv_;        ///< pack-level curve, scaled per cell
};

}  // namespace evc::bat
