// CC-CV charger model.
//
// The paper treats the charging half of the discharge/charge cycle as a
// fixed pattern whose contribution to SoCdev/SoCavg enters Eq. 15 as
// constants. This module *computes* those constants by simulating the
// standard constant-current / constant-voltage protocol, so the defaults
// in BatteryParams can be validated instead of assumed.
#pragma once

#include <vector>

#include "battery/battery_pack.hpp"
#include "battery/soh_model.hpp"

namespace evc::bat {

struct ChargerParams {
  double cc_current_a = 16.5;      ///< ≈C/4 home charging
  double cv_voltage_v = 402.0;     ///< pack CV setpoint (just below OCV@100%)
  double cutoff_current_a = 2.0;   ///< CV phase terminates below this
  double sample_period_s = 60.0;   ///< SoC trace sampling
  double max_duration_s = 12.0 * 3600.0;

  void validate() const;
};

struct ChargeResult {
  double duration_s = 0.0;
  double final_soc_percent = 0.0;
  std::vector<double> soc_trace;  ///< sampled at sample_period_s
  CycleStress stress;             ///< Eq. 16–17 over the charge phase
};

/// Simulate charging `pack` (mutates it) from its current SoC to full (or
/// until the CV cutoff / time limit).
ChargeResult simulate_cc_cv_charge(BatteryPack& pack,
                                   const ChargerParams& charger = {});

}  // namespace evc::bat
