// Minimal JSON emission (writer only).
//
// Experiment results (TripMetrics, comparison tables) export as JSON so
// external tooling — dashboards, notebooks, regression trackers — can
// consume bench output without parsing text tables. Writing only: the
// library never ingests JSON, so no parser is carried.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace evc {

/// Streaming JSON object/array writer with correct escaping and number
/// formatting. Usage:
///   JsonWriter json;
///   json.begin_object();
///   json.key("name").value("NEDC");
///   json.key("power_kw").value(1.25);
///   json.end_object();
///   json.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Key inside an object; must be followed by exactly one value/container.
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  // One exact-match overload per standard integer type, so 64-bit fields
  // (std::size_t counters, std::uint64_t timings) emit without narrowing on
  // any platform — long is only 32-bit on LLP64 (Windows).
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned long v) {
    return value(static_cast<unsigned long long>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned int v) {
    return value(static_cast<unsigned long long>(v));
  }
  JsonWriter& value(bool b);
  /// Splice an already-rendered JSON document in value position (e.g. the
  /// output of another writer). The caller guarantees it is valid JSON.
  JsonWriter& raw_value(const std::string& json);

  /// The document so far. Throws std::logic_error if containers are still
  /// open.
  std::string str() const;

  static std::string escape(const std::string& raw);

 private:
  void comma_if_needed();
  std::ostringstream out_;
  /// Stack of container states: true = needs a comma before the next item.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace evc
