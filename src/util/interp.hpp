// Piecewise-linear lookup tables.
//
// Used for drive-cycle speed schedules, motor efficiency maps, and the
// battery open-circuit-voltage curve. Queries outside the grid clamp to the
// boundary value (physically: saturation, not extrapolation).
#pragma once

#include <vector>

namespace evc {

/// y = f(x) on a strictly increasing grid, linear between knots, clamped
/// outside.
class LookupTable1D {
 public:
  LookupTable1D() = default;
  LookupTable1D(std::vector<double> x, std::vector<double> y);

  double operator()(double x) const;
  bool empty() const { return x_.empty(); }
  std::size_t size() const { return x_.size(); }
  double x_min() const;
  double x_max() const;

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// z = f(x, y) bilinear on a rectangular grid, clamped outside.
class LookupTable2D {
 public:
  LookupTable2D() = default;
  /// `z` is row-major with shape [x.size()][y.size()].
  LookupTable2D(std::vector<double> x, std::vector<double> y,
                std::vector<double> z);

  double operator()(double x, double y) const;
  bool empty() const { return x_.empty(); }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> z_;  // row-major [x][y]
};

}  // namespace evc
