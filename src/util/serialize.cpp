#include "util/serialize.hpp"

#include <cstring>

namespace evc {

namespace {

// Type tags. One byte per value keeps the overhead negligible next to the
// payload while making any reader/writer drift a hard error.
constexpr char kTagBool = 'b';
constexpr char kTagU8 = 'c';
constexpr char kTagU32 = 'u';
constexpr char kTagU64 = 'U';
constexpr char kTagF64 = 'd';
constexpr char kTagString = 's';
constexpr char kTagF64Vec = 'D';
constexpr char kTagSizeVec = 'Z';
constexpr char kTagSection = 'S';

}  // namespace

void BinaryWriter::raw(const void* data, std::size_t n) {
  out_.append(static_cast<const char*>(data), n);
}

void BinaryWriter::write_bool(bool v) {
  tag(kTagBool);
  out_.push_back(v ? 1 : 0);
}

void BinaryWriter::write_u8(std::uint8_t v) {
  tag(kTagU8);
  out_.push_back(static_cast<char>(v));
}

void BinaryWriter::write_u32(std::uint32_t v) {
  tag(kTagU32);
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  raw(buf, 4);
}

void BinaryWriter::write_u64(std::uint64_t v) {
  tag(kTagU64);
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  raw(buf, 8);
}

void BinaryWriter::write_f64(double v) {
  tag(kTagF64);
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[8];
  for (int i = 0; i < 8; ++i)
    buf[i] = static_cast<char>((bits >> (8 * i)) & 0xFF);
  raw(buf, 8);
}

void BinaryWriter::write_string(const std::string& s) {
  tag(kTagString);
  write_u64(s.size());
  raw(s.data(), s.size());
}

void BinaryWriter::write_f64_vec(const std::vector<double>& v) {
  write_f64_seq(v.data(), v.size());
}

void BinaryWriter::write_f64_seq(const double* data, std::size_t n) {
  tag(kTagF64Vec);
  write_u64(n);
  for (std::size_t i = 0; i < n; ++i) write_f64(data[i]);
}

void BinaryWriter::write_size_vec(const std::vector<std::size_t>& v) {
  tag(kTagSizeVec);
  write_u64(v.size());
  for (std::size_t x : v) write_size(x);
}

void BinaryWriter::section(const std::string& name) {
  tag(kTagSection);
  write_string(name);
}

char BinaryReader::tag() {
  if (pos_ >= data_.size()) throw SerializationError("unexpected end of data");
  return data_[pos_++];
}

void BinaryReader::expect_tag(char want, const char* what) {
  const char got = tag();
  if (got != want)
    throw SerializationError(std::string("expected ") + what + " tag '" +
                             want + "', found '" + got + "'");
}

void BinaryReader::raw(void* out, std::size_t n) {
  if (remaining() < n) throw SerializationError("truncated payload");
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
}

bool BinaryReader::read_bool() {
  expect_tag(kTagBool, "bool");
  char v;
  raw(&v, 1);
  if (v != 0 && v != 1) throw SerializationError("malformed bool");
  return v == 1;
}

std::uint8_t BinaryReader::read_u8() {
  expect_tag(kTagU8, "u8");
  char v;
  raw(&v, 1);
  return static_cast<std::uint8_t>(v);
}

std::uint32_t BinaryReader::read_u32() {
  expect_tag(kTagU32, "u32");
  unsigned char buf[4];
  raw(buf, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  expect_tag(kTagU64, "u64");
  unsigned char buf[8];
  raw(buf, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

std::size_t BinaryReader::read_size() {
  const std::uint64_t v = read_u64();
  if (v > static_cast<std::uint64_t>(SIZE_MAX))
    throw SerializationError("size value exceeds platform size_t");
  return static_cast<std::size_t>(v);
}

double BinaryReader::read_f64() {
  expect_tag(kTagF64, "f64");
  unsigned char buf[8];
  raw(buf, 8);
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  expect_tag(kTagString, "string");
  const std::size_t n = read_size();
  if (remaining() < n) throw SerializationError("truncated string");
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::vector<double> BinaryReader::read_f64_vec() {
  expect_tag(kTagF64Vec, "f64 vector");
  const std::size_t n = read_size();
  // Each element costs ≥ 9 bytes (tag + payload); a length that cannot fit
  // in the remaining buffer is corruption, not a huge allocation request.
  if (remaining() / 9 < n) throw SerializationError("truncated f64 vector");
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = read_f64();
  return v;
}

std::vector<std::size_t> BinaryReader::read_size_vec() {
  expect_tag(kTagSizeVec, "size vector");
  const std::size_t n = read_size();
  if (remaining() / 9 < n) throw SerializationError("truncated size vector");
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = read_size();
  return v;
}

void BinaryReader::expect_section(const std::string& name) {
  expect_tag(kTagSection, "section");
  const std::string got = read_string();
  if (got != name)
    throw SerializationError("expected section '" + name + "', found '" +
                             got + "'");
}

}  // namespace evc
