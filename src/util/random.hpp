// Deterministic pseudo-random generation for synthetic routes, weather
// traces, and property-test fixtures.
//
// splitmix64 core: tiny, fast, and — unlike std::default_random_engine —
// identical across standard libraries, so tests and synthesized workloads
// reproduce bit-exactly everywhere.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/expect.hpp"

namespace evc {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    EVC_EXPECT(lo <= hi, "uniform: lo > hi");
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Box–Muller (one draw per call, second discarded —
  /// simplicity over throughput; these paths are not hot).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Raw generator state, for checkpoint/restore: a stream restored with
  /// set_state continues bit-exactly where state() was taken.
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t state) { state_ = state; }

 private:
  std::uint64_t state_;
};

inline double SplitMix64::normal(double mean, double stddev) {
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  const double pi = 3.14159265358979323846;
  double z = [&] {
    double r = u1;
    double s = u2;
    double mag = std::sqrt(-2.0 * std::log(r));
    return mag * std::cos(2.0 * pi * s);
  }();
  return mean + stddev * z;
}

}  // namespace evc
