// Console table printer for the benchmark harness.
//
// Each bench binary regenerates one of the paper's tables/figures; the data
// behind the figure is emitted as an aligned text table so the rows/series
// can be read directly off the terminal (and diffed between runs).
#pragma once

#include <string>
#include <vector>

namespace evc {

/// Fixed-column aligned text table. Cells are strings; numeric helpers
/// format with a fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with column padding, a header underline, and `title` on top.
  std::string render(const std::string& title) const;

  static std::string num(double v, int precision = 3);
  static std::string percent(double v, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace evc
