// Minimal CSV emission for experiment traces.
//
// Bench binaries and examples dump time series (cabin temperature, SoC,
// power draw) as CSV so results can be inspected or re-plotted outside the
// harness. Writing is row-oriented and append-only.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace evc {

/// Append-only CSV writer. The header is fixed at construction; every row
/// must carry exactly as many cells as the header has columns.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  void write_row(const std::vector<double>& cells);
  /// Number of data rows written so far (header excluded).
  std::size_t rows_written() const { return rows_; }
  const std::vector<std::string>& columns() const { return columns_; }

 private:
  std::ofstream out_;
  std::vector<std::string> columns_;
  std::size_t rows_ = 0;
};

}  // namespace evc
