// Streaming and batch statistics used by the battery SoH model (SoC average
// and deviation over a discharge cycle) and by the experiment reporters.
#pragma once

#include <cstddef>
#include <vector>

namespace evc {

/// Welford-style running mean/variance accumulator; numerically stable for
/// long traces.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  /// Population variance (divides by n): the SoH model's SoCdev (Eq. 16)
  /// is the population standard deviation of the SoC trace.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers for post-hoc trace analysis.
double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);  // population stddev
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);
/// Root-mean-square of a trace.
double rms_of(const std::vector<double>& xs);

}  // namespace evc
