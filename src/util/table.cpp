#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/expect.hpp"

namespace evc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  EVC_EXPECT(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  EVC_EXPECT(cells.size() == header_.size(),
             "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  out << "\n== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TextTable::percent(double v, int precision) {
  return num(v, precision) + "%";
}

}  // namespace evc
