#include "util/interp.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace evc {
namespace {

// Index i of the interval [x[i], x[i+1]] containing q, clamped into range.
std::size_t interval_index(const std::vector<double>& x, double q) {
  const auto it = std::upper_bound(x.begin(), x.end(), q);
  if (it == x.begin()) return 0;
  std::size_t i = static_cast<std::size_t>(it - x.begin()) - 1;
  return std::min(i, x.size() - 2);
}

double lerp_fraction(double lo, double hi, double q) {
  if (q <= lo) return 0.0;
  if (q >= hi) return 1.0;
  return (q - lo) / (hi - lo);
}

void check_grid(const std::vector<double>& x, const char* what) {
  EVC_EXPECT(x.size() >= 2, std::string(what) + ": grid needs >= 2 knots");
  for (std::size_t i = 1; i < x.size(); ++i)
    EVC_EXPECT(x[i] > x[i - 1],
               std::string(what) + ": grid must be strictly increasing");
}

}  // namespace

LookupTable1D::LookupTable1D(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  check_grid(x_, "LookupTable1D");
  EVC_EXPECT(x_.size() == y_.size(), "LookupTable1D: x/y size mismatch");
}

double LookupTable1D::operator()(double x) const {
  EVC_EXPECT(!x_.empty(), "LookupTable1D: empty table");
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const std::size_t i = interval_index(x_, x);
  const double t = lerp_fraction(x_[i], x_[i + 1], x);
  return y_[i] + t * (y_[i + 1] - y_[i]);
}

double LookupTable1D::x_min() const {
  EVC_EXPECT(!x_.empty(), "LookupTable1D: empty table");
  return x_.front();
}

double LookupTable1D::x_max() const {
  EVC_EXPECT(!x_.empty(), "LookupTable1D: empty table");
  return x_.back();
}

LookupTable2D::LookupTable2D(std::vector<double> x, std::vector<double> y,
                             std::vector<double> z)
    : x_(std::move(x)), y_(std::move(y)), z_(std::move(z)) {
  check_grid(x_, "LookupTable2D x");
  check_grid(y_, "LookupTable2D y");
  EVC_EXPECT(z_.size() == x_.size() * y_.size(),
             "LookupTable2D: z must be x.size()*y.size()");
}

double LookupTable2D::operator()(double x, double y) const {
  EVC_EXPECT(!x_.empty(), "LookupTable2D: empty table");
  const std::size_t i = interval_index(x_, x);
  const std::size_t j = interval_index(y_, y);
  const double tx = lerp_fraction(x_[i], x_[i + 1], x);
  const double ty = lerp_fraction(y_[j], y_[j + 1], y);
  const std::size_t ny = y_.size();
  const double z00 = z_[i * ny + j];
  const double z01 = z_[i * ny + j + 1];
  const double z10 = z_[(i + 1) * ny + j];
  const double z11 = z_[(i + 1) * ny + j + 1];
  const double z0 = z00 + ty * (z01 - z00);
  const double z1 = z10 + ty * (z11 - z10);
  return z0 + tx * (z1 - z0);
}

}  // namespace evc
