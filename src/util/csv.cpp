#include "util/csv.hpp"

#include <iomanip>
#include <limits>

#include "util/expect.hpp"

namespace evc {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : out_(path), columns_(std::move(columns)) {
  EVC_EXPECT(!columns_.empty(), "CSV needs at least one column");
  EVC_EXPECT(out_.good(), "cannot open CSV output file: " + path);
  // Round-trip exact doubles (17 significant digits).
  out_ << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns_[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  EVC_EXPECT(cells.size() == columns_.size(),
             "row width does not match header");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace evc
