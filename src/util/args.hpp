// Minimal command-line argument parser for the example tools.
//
// Supports `--flag value`, `--flag=value`, bare boolean `--flag`, and
// positional arguments. Typed getters with defaults; unknown flags are an
// error (catches typos in experiment scripts).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace evc {

class ArgParser {
 public:
  /// Parses immediately; throws std::invalid_argument on malformed input
  /// (e.g. `--flag` at the end when a value was expected is treated as a
  /// boolean).
  ArgParser(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }
  /// Positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& flag) const;
  /// Typed getters: return `fallback` when the flag is absent; throw
  /// std::invalid_argument when present but unparsable.
  std::string get_string(const std::string& flag,
                         const std::string& fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  long get_int(const std::string& flag, long fallback) const;
  bool get_bool(const std::string& flag, bool fallback = false) const;

  /// Throws std::invalid_argument listing any flag not in `known` —
  /// call after all getters to reject typos.
  void reject_unknown(const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;  ///< value "" = bare boolean
  std::vector<std::string> positional_;
};

}  // namespace evc
