#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace evc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  EVC_EXPECT(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  EVC_EXPECT(n_ > 0, "variance of empty accumulator");
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  EVC_EXPECT(n_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  EVC_EXPECT(n_ > 0, "max of empty accumulator");
  return max_;
}

namespace {
RunningStats accumulate(const std::vector<double>& xs) {
  EVC_EXPECT(!xs.empty(), "statistics of empty vector");
  RunningStats s;
  for (double x : xs) s.add(x);
  return s;
}
}  // namespace

double mean_of(const std::vector<double>& xs) { return accumulate(xs).mean(); }
double stddev_of(const std::vector<double>& xs) {
  return accumulate(xs).stddev();
}
double min_of(const std::vector<double>& xs) { return accumulate(xs).min(); }
double max_of(const std::vector<double>& xs) { return accumulate(xs).max(); }

double rms_of(const std::vector<double>& xs) {
  EVC_EXPECT(!xs.empty(), "rms of empty vector");
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

}  // namespace evc
