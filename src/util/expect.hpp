// Lightweight contract checking for the evclimate library.
//
// EVC_EXPECT   — precondition on caller-supplied values; throws
//                std::invalid_argument so misuse is recoverable and testable.
// EVC_ENSURE   — internal invariant / postcondition; throws std::logic_error
//                because a violation means the library itself is wrong.
//
// Both always fire (no NDEBUG gating): the models in this library run at
// control-loop rates (~1 Hz effective), so the checks are free in practice
// and catching a bad parameter beats silently producing a wrong trajectory.
#pragma once

#include <stdexcept>
#include <string>

namespace evc {

[[noreturn]] inline void contract_fail_precondition(const char* expr,
                                                    const char* file, int line,
                                                    const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void contract_fail_invariant(const char* expr,
                                                 const char* file, int line,
                                                 const std::string& msg) {
  throw std::logic_error(std::string("invariant failed: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace evc

#define EVC_EXPECT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::evc::contract_fail_precondition(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define EVC_ENSURE(cond, msg)                                           \
  do {                                                                  \
    if (!(cond))                                                        \
      ::evc::contract_fail_invariant(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
