#include "util/json.hpp"

#include <cmath>
#include <iomanip>
#include <limits>
#include <stdexcept>

#include "util/expect.hpp"

namespace evc {

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key directly
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ << '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  EVC_EXPECT(!needs_comma_.empty(), "end_object without begin_object");
  EVC_EXPECT(!pending_key_, "dangling key before end_object");
  out_ << '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ << '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  EVC_EXPECT(!needs_comma_.empty(), "end_array without begin_array");
  out_ << ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  EVC_EXPECT(!needs_comma_.empty(), "key outside an object");
  EVC_EXPECT(!pending_key_, "two keys in a row");
  comma_if_needed();
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  comma_if_needed();
  out_ << '"' << escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) {
  return value(std::string(s));
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no Inf/NaN
  } else {
    out_ << std::setprecision(std::numeric_limits<double>::max_digits10)
         << v;
  }
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  comma_if_needed();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  comma_if_needed();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_if_needed();
  out_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& json) {
  comma_if_needed();
  out_ << json;
  return *this;
}

std::string JsonWriter::str() const {
  if (!needs_comma_.empty())
    throw std::logic_error("JsonWriter: unclosed containers");
  return out_.str();
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace evc
