// Unit conversions and physical constants used across the EV models.
//
// Internally the library works in SI units: m, s, kg, W, J, K. Temperatures
// are stored in degrees Celsius: the cabin/HVAC equations only ever use
// temperature *differences*, so Celsius is safe there and matches the
// paper's tables.
#pragma once

#include <cmath>

namespace evc::units {

inline constexpr double kmh_to_mps(double kmh) { return kmh / 3.6; }
inline constexpr double mps_to_kmh(double mps) { return mps * 3.6; }
inline constexpr double kw_to_w(double kw) { return kw * 1e3; }
inline constexpr double w_to_kw(double w) { return w / 1e3; }
inline constexpr double kwh_to_j(double kwh) { return kwh * 3.6e6; }
inline constexpr double j_to_kwh(double j) { return j / 3.6e6; }
inline constexpr double celsius_to_kelvin(double c) { return c + 273.15; }
inline constexpr double kelvin_to_celsius(double k) { return k - 273.15; }
inline constexpr double ah_to_coulomb(double ah) { return ah * 3600.0; }
inline constexpr double coulomb_to_ah(double c) { return c / 3600.0; }

/// Percent grade (paper's α, 100 % == 45°) to road angle in radians.
inline double grade_percent_to_angle(double grade_percent) {
  return std::atan(grade_percent / 100.0);
}

}  // namespace evc::units

namespace evc::consts {

inline constexpr double kGravity = 9.81;          // m/s^2
inline constexpr double kAirDensity = 1.2;        // kg/m^3 at ~20 °C
inline constexpr double kAirHeatCapacity = 1005;  // J/(kg K), dry air cp

}  // namespace evc::consts
