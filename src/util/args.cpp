#include "util/args.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace evc {

ArgParser::ArgParser(int argc, const char* const* argv) {
  EVC_EXPECT(argc >= 1, "argv must contain at least the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    EVC_EXPECT(!body.empty(), "bare '--' is not a valid flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--flag value` unless the next token is another flag or missing.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[i + 1];
      ++i;
    } else {
      flags_[body] = "";  // bare boolean
    }
  }
}

bool ArgParser::has(const std::string& flag) const {
  return flags_.count(flag) > 0;
}

std::string ArgParser::get_string(const std::string& flag,
                                  const std::string& fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(it->second, &consumed);
  } catch (const std::exception&) {
    EVC_EXPECT(false, "flag --" + flag + " expects a number, got '" +
                          it->second + "'");
  }
  EVC_EXPECT(consumed == it->second.size(),
             "flag --" + flag + " has trailing garbage: '" + it->second +
                 "'");
  return value;
}

long ArgParser::get_int(const std::string& flag, long fallback) const {
  const double value = get_double(flag, static_cast<double>(fallback));
  const long rounded = static_cast<long>(value);
  EVC_EXPECT(static_cast<double>(rounded) == value,
             "flag --" + flag + " expects an integer");
  return rounded;
}

bool ArgParser::get_bool(const std::string& flag, bool fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1")
    return true;
  if (it->second == "false" || it->second == "0") return false;
  EVC_EXPECT(false, "flag --" + flag + " expects a boolean, got '" +
                        it->second + "'");
  return fallback;
}

void ArgParser::reject_unknown(const std::vector<std::string>& known) const {
  for (const auto& [flag, _] : flags_) {
    EVC_EXPECT(std::find(known.begin(), known.end(), flag) != known.end(),
               "unknown flag --" + flag);
  }
}

}  // namespace evc
