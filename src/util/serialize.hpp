// Typed binary serialization for crash-safe checkpoints.
//
// A checkpoint must restore a run *byte-identically*: every double is
// written as its IEEE-754 bit pattern (never through decimal text), every
// integer little-endian fixed-width. Each value carries a one-byte type
// tag and every logical group a named section marker, so a reader that
// drifts out of sync with the writer fails loudly with a
// SerializationError instead of silently reinterpreting bytes — the
// difference between "restore refused" and "restore corrupted the run".
//
// The format is deliberately writer-defined (no schema evolution): a
// checkpoint is consumed by the same binary version that produced it, and
// the enclosing sim::Checkpoint header carries the format version that
// gates cross-version loads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace evc {

/// Thrown on any malformed read: truncation, type-tag mismatch, section
/// name mismatch, or trailing bytes.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what)
      : std::runtime_error("serialization: " + what) {}
};

class BinaryWriter {
 public:
  void write_bool(bool v);
  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  /// std::size_t values travel as u64 regardless of platform width.
  void write_size(std::size_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern — bit-exact round trip, NaN payloads included.
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f64_vec(const std::vector<double>& v);
  /// Same wire format as write_f64_vec, from any contiguous double buffer
  /// (the numerics containers use an aligned allocator, not std::vector).
  void write_f64_seq(const double* data, std::size_t n);
  void write_size_vec(const std::vector<std::size_t>& v);
  /// Named group marker; the reader must consume it with expect_section.
  void section(const std::string& name);

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void tag(char t) { out_.push_back(t); }
  void raw(const void* data, std::size_t n);
  std::string out_;
};

class BinaryReader {
 public:
  /// Reads from `data`; the caller keeps the buffer alive for the
  /// reader's lifetime.
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool read_bool();
  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::size_t read_size();
  double read_f64();
  std::string read_string();
  std::vector<double> read_f64_vec();
  std::vector<std::size_t> read_size_vec();
  /// Consume a section marker; throws unless its name is exactly `name`.
  void expect_section(const std::string& name);

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  char tag();
  void expect_tag(char want, const char* what);
  void raw(void* out, std::size_t n);
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace evc
