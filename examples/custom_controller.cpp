// Tutorial example: writing your own climate controller.
//
// Implements a deliberately simple "eco-proportional" controller against
// the ClimateController interface — proportional cooling/heating with an
// ambient-scheduled recirculation heuristic (recirculate harder the more
// extreme the weather) — and benchmarks it against the library's three
// built-in methodologies on the same cycle. See docs/TUTORIAL.md for the
// walkthrough.
//
//   ./custom_controller [cycle] [ambient_C]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "drivecycle/standard_cycles.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

namespace {

using namespace evc;

/// Proportional thermal command + ambient-scheduled recirculation. The
/// whole controller fits in one screen — that's the point of the exercise.
class EcoProportionalController : public ctl::ClimateController {
 public:
  explicit EcoProportionalController(hvac::HvacParams params)
      : params_(params) {
    params_.validate();
  }

  std::string name() const override { return "Eco-proportional (custom)"; }

  hvac::HvacInputs decide(const ctl::ControlContext& context) override {
    const double error = context.cabin_temp_c - params_.target_temp_c;
    // Normalized command: −1 = full heat … +1 = full cool.
    const double u = std::clamp(error / 2.0, -1.0, 1.0);

    hvac::HvacInputs in;
    // Recirculation schedule: the further the ambient is from the target,
    // the more we recirculate (the MPC discovers this; we hard-code it).
    const double ambient_gap =
        std::abs(context.outside_temp_c - params_.target_temp_c);
    in.recirculation =
        std::min(params_.max_recirculation, 0.3 + 0.02 * ambient_gap);

    const double tm = (1.0 - in.recirculation) * context.outside_temp_c +
                      in.recirculation * context.cabin_temp_c;
    in.air_flow_kg_s =
        params_.min_air_flow_kg_s +
        std::abs(u) * (params_.max_air_flow_kg_s - params_.min_air_flow_kg_s);
    if (u > 0.0) {  // too hot → cool
      in.coil_temp_c = tm + u * (params_.min_coil_temp_c - tm);
      in.supply_temp_c = in.coil_temp_c;
    } else {  // too cold → heat
      in.coil_temp_c = tm;
      in.supply_temp_c = tm - u * (params_.max_supply_temp_c - tm);
    }
    return in;
  }

 private:
  hvac::HvacParams params_;
};

}  // namespace

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  const std::string cycle_name = argc > 1 ? argv[1] : "ECE_EUDC";
  const double ambient = argc > 2 ? std::atof(argv[2]) : 35.0;

  drive::StandardCycle cycle = drive::StandardCycle::kEceEudc;
  for (auto candidate : drive::all_standard_cycles())
    if (drive::cycle_name(candidate) == cycle_name) cycle = candidate;

  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(cycle, ambient);
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;

  TextTable table({"controller", "avg HVAC [kW]", "dSoH [%/cycle]",
                   "comfort viol [%]", "avg PPD [%]"});
  const auto add = [&](ctl::ClimateController& controller) {
    const auto m = sim.run(controller, profile, opts).metrics;
    table.add_row({controller.name(),
                   TextTable::num(m.avg_hvac_power_w / 1000.0, 3),
                   TextTable::num(m.delta_soh_percent, 6),
                   TextTable::num(100.0 * m.comfort.fraction_outside, 1),
                   TextTable::num(m.comfort.avg_ppd_percent, 1)});
  };

  EcoProportionalController custom(params.hvac);
  std::cerr << "running 4 controllers on " << drive::cycle_name(cycle)
            << " @ " << ambient << " C...\n";
  add(custom);
  auto onoff = core::make_onoff_controller(params);
  add(*onoff);
  auto fuzzy = core::make_fuzzy_controller(params);
  add(*fuzzy);
  auto mpc = core::make_mpc_controller(params);
  add(*mpc);

  std::cout << table.render("Custom controller vs the built-ins, " +
                            drive::cycle_name(cycle) + " @ " +
                            TextTable::num(ambient, 0) + " C");
  std::cout << "\nThe ambient-scheduled recirculation heuristic captures "
               "part of the MPC's\nefficiency — the predictive SoC shaping "
               "is what it cannot imitate.\n";
  return 0;
}
