// Scenario example: driving range vs ambient temperature ("range anxiety").
//
// The paper's motivation cites HVAC draws of up to 6 kW cutting driving
// range by up to 50 % depending on the weather. This example quantifies
// that on our EV model: estimated range across the ambient spectrum for a
// climate-off baseline and the three controllers, on the UDDS urban cycle.
//
//   ./range_anxiety
#include <iostream>

#include "core/experiment.hpp"
#include "drivecycle/standard_cycles.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

namespace {

/// A controller that leaves the HVAC at minimum ventilation — the
/// "climate off" reference for the range comparison.
class VentilationOnly : public evc::ctl::ClimateController {
 public:
  explicit VentilationOnly(evc::hvac::HvacParams params) : params_(params) {}
  std::string name() const override { return "Climate off"; }
  evc::hvac::HvacInputs decide(
      const evc::ctl::ControlContext& context) override {
    evc::hvac::HvacInputs in;
    in.recirculation = 0.5;
    const double tm = 0.5 * context.outside_temp_c + 0.5 * context.cabin_temp_c;
    in.air_flow_kg_s = params_.min_air_flow_kg_s;
    in.coil_temp_c = tm;
    in.supply_temp_c = tm;
    return in;
  }

 private:
  evc::hvac::HvacParams params_;
};

}  // namespace

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const core::EvParams params;
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;

  TextTable table({"ambient [C]", "climate off [km]", "On/Off [km]",
                   "Fuzzy [km]", "MPC [km]", "worst range loss [%]"});

  for (double ambient : {-10.0, 0.0, 10.0, 21.0, 32.0, 43.0}) {
    std::cerr << "  ambient " << ambient << " C...\n";
    const auto profile =
        drive::make_cycle_profile(drive::StandardCycle::kUdds, ambient);

    VentilationOnly off(params.hvac);
    const double range_off =
        sim.run(off, profile, opts).metrics.estimated_range_km;
    const auto runs = core::compare_controllers(params, profile, opts);
    const double worst = runs[0].metrics.estimated_range_km;  // On/Off
    table.add_row(
        {TextTable::num(ambient, 0), TextTable::num(range_off, 0),
         TextTable::num(runs[0].metrics.estimated_range_km, 0),
         TextTable::num(runs[1].metrics.estimated_range_km, 0),
         TextTable::num(runs[2].metrics.estimated_range_km, 0),
         TextTable::percent(100.0 * (range_off - worst) / range_off, 1)});
  }

  std::cout << table.render("Estimated UDDS range vs ambient temperature");
  std::cout << "\nThe paper's motivation: climate control can erase a large "
               "fraction of the range;\nthe battery lifetime-aware MPC "
               "recovers a meaningful part of it.\n";
  return 0;
}
