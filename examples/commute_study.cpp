// Scenario example: a year of synthetic commutes.
//
// Uses the route/weather synthesizer (the offline stand-in for the paper's
// Google-Maps + NOAA drive-profile pipeline) to generate a mixed
// urban/highway commute under seasonal ambient temperatures, and projects
// battery lifetime under each climate-control methodology: with one such
// discharge cycle per day, how many *years* until the pack fades to 80 %?
//
//   ./commute_study [seed]
#include <cstdlib>
#include <iostream>

#include "battery/soh_model.hpp"
#include "core/experiment.hpp"
#include "drivecycle/route_synth.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  struct Season {
    const char* name;
    double ambient_c;
    double days;  ///< days per year with this weather
  };
  const std::vector<Season> seasons{
      {"winter", -2.0, 90},
      {"spring", 15.0, 90},
      {"summer", 34.0, 95},
      {"autumn", 8.0, 90},
  };

  const core::EvParams params;
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;

  std::cout << "Synthetic commute: 35 min, 55% urban, rolling terrain "
               "(seed "
            << seed << ")\n";

  // Accumulate per-controller yearly fade: Σ days_season · ΔSoH(season).
  TextTable table({"controller", "winter dSoH", "summer dSoH",
                   "yearly fade [%]", "years to 80%"});
  std::vector<std::string> names;
  std::vector<double> yearly(3, 0.0), winter(3), summer(3);

  for (const Season& season : seasons) {
    drive::RouteSynthOptions route;
    route.seed = seed;
    route.trip_duration_s = 35.0 * 60.0;
    route.urban_fraction = 0.55;
    route.hilliness_percent = 2.5;
    route.base_ambient_c = season.ambient_c;
    const auto profile = drive::synthesize_route(route);

    std::cerr << "  season " << season.name << " (" << season.ambient_c
              << " C)...\n";
    const auto runs = core::compare_controllers(params, profile, opts);
    names.clear();
    for (std::size_t i = 0; i < runs.size(); ++i) {
      names.push_back(runs[i].controller);
      yearly[i] += season.days * runs[i].metrics.delta_soh_percent;
      if (std::string(season.name) == "winter")
        winter[i] = runs[i].metrics.delta_soh_percent;
      if (std::string(season.name) == "summer")
        summer[i] = runs[i].metrics.delta_soh_percent;
    }
  }

  const double eol = params.battery.end_of_life_fade_percent;
  for (std::size_t i = 0; i < names.size(); ++i) {
    table.add_row({names[i], TextTable::num(winter[i], 6),
                   TextTable::num(summer[i], 6),
                   TextTable::num(yearly[i], 3),
                   TextTable::num(eol / yearly[i], 1)});
  }
  std::cout << table.render(
      "Projected battery lifetime under daily commuting");
  std::cout << "\nThe battery lifetime gap is the paper's headline: the "
               "climate controller alone\nchanges how many years the pack "
               "lasts.\n";
  return 0;
}
