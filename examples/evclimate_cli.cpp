// evclimate — command-line front end for the library.
//
//   evclimate_cli simulate --cycle ECE_EUDC --ambient 35 --controller mpc
//                 [--soc 90] [--out trace.csv]
//   evclimate_cli compare  --cycle UDDS --ambient 0
//   evclimate_cli sweep    --cycle NEDC --controller fuzzy
//                 --ambient-from -10 --ambient-to 43 --ambient-step 10
//   evclimate_cli plan     --cycle US06 --ambient 38 [--soc 60]
//   evclimate_cli synth    --seed 7 --duration 1800 --urban 0.5
//                 --ambient 25 --out route.csv
//
// Every subcommand prints a table; `simulate`/`synth` can write CSV.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "core/experiment.hpp"
#include "core/trip_planner.hpp"
#include "drivecycle/profile_io.hpp"
#include "drivecycle/route_synth.hpp"
#include "drivecycle/standard_cycles.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/expect.hpp"
#include "util/table.hpp"

namespace {

using namespace evc;

int usage(const std::string& program) {
  std::cerr
      << "usage: " << program
      << " <simulate|compare|sweep|plan|synth> [--flags]\n"
         "  simulate --cycle C --ambient T --controller onoff|fuzzy|mpc\n"
         "           [--soc S] [--out trace.csv]\n"
         "  compare  --cycle C --ambient T [--soc S]\n"
         "  sweep    --cycle C --controller X --ambient-from A\n"
         "           --ambient-to B [--ambient-step D]\n"
         "  plan     --cycle C --ambient T [--soc S]\n"
         "  synth    [--seed N] [--duration S] [--urban F] [--ambient T]\n"
         "           [--hills P] --out route.csv\n"
         "cycles: NEDC US06 ECE_EUDC SC03 UDDS\n"
         "global: [--trace out.json]   Chrome/Perfetto span trace\n"
         "        [--metrics out.json] metrics-registry snapshot\n";
  return 2;
}

drive::StandardCycle parse_cycle(const std::string& name) {
  for (auto cycle : drive::all_standard_cycles())
    if (drive::cycle_name(cycle) == name) return cycle;
  throw std::invalid_argument("unknown cycle '" + name +
                              "' (try NEDC, US06, ECE_EUDC, SC03, UDDS)");
}

std::unique_ptr<ctl::ClimateController> parse_controller(
    const std::string& name, const core::EvParams& params) {
  if (name == "onoff") return core::make_onoff_controller(params);
  if (name == "fuzzy") return core::make_fuzzy_controller(params);
  if (name == "mpc") return core::make_mpc_controller(params);
  throw std::invalid_argument("unknown controller '" + name +
                              "' (onoff, fuzzy, mpc)");
}

void print_metrics_row(TextTable& table, const std::string& label,
                       const core::TripMetrics& m) {
  table.add_row({label, TextTable::num(m.avg_hvac_power_w / 1000.0, 3),
                 TextTable::num(m.delta_soh_percent, 6),
                 TextTable::num(m.stress.soc_deviation, 3),
                 TextTable::num(m.final_soc_percent, 2),
                 TextTable::num(m.estimated_range_km, 0),
                 TextTable::num(100.0 * m.comfort.fraction_outside, 1)});
}

TextTable metrics_table() {
  return TextTable({"run", "avg HVAC [kW]", "dSoH [%/cyc]", "SoC dev [%]",
                    "final SoC [%]", "range [km]", "comfort viol [%]"});
}

int cmd_simulate(const ArgParser& args) {
  args.reject_unknown(
      {"cycle", "ambient", "controller", "soc", "out", "trace", "metrics"});
  const auto cycle = parse_cycle(args.get_string("cycle", "ECE_EUDC"));
  const double ambient = args.get_double("ambient", 35.0);
  const core::EvParams params;
  auto controller =
      parse_controller(args.get_string("controller", "mpc"), params);
  const auto profile = drive::make_cycle_profile(cycle, ambient);

  core::SimulationOptions opts;
  opts.initial_soc_percent = args.get_double("soc", 90.0);
  core::ClimateSimulation sim(params);
  const auto result = sim.run(*controller, profile, opts);

  TextTable table = metrics_table();
  print_metrics_row(table, controller->name(), result.metrics);
  std::cout << table.render("simulate " + drive::cycle_name(cycle) + " @ " +
                            TextTable::num(ambient, 0) + " C");
  const std::string out = args.get_string("out", "");
  if (!out.empty()) {
    result.recorder.write_csv(out);
    std::cout << "trace written to " << out << "\n";
  }
  return 0;
}

int cmd_compare(const ArgParser& args) {
  args.reject_unknown({"cycle", "ambient", "soc", "trace", "metrics"});
  const auto cycle = parse_cycle(args.get_string("cycle", "ECE_EUDC"));
  const double ambient = args.get_double("ambient", 35.0);
  core::SimulationOptions opts;
  opts.initial_soc_percent = args.get_double("soc", 90.0);
  opts.record_traces = false;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(cycle, ambient);
  const auto runs = core::compare_controllers(params, profile, opts);
  TextTable table = metrics_table();
  for (const auto& run : runs)
    print_metrics_row(table, run.controller, run.metrics);
  std::cout << table.render("compare " + drive::cycle_name(cycle) + " @ " +
                            TextTable::num(ambient, 0) + " C");
  return 0;
}

int cmd_sweep(const ArgParser& args) {
  args.reject_unknown({"cycle", "controller", "ambient-from", "ambient-to", "trace", "metrics",
                       "ambient-step", "soc"});
  const auto cycle = parse_cycle(args.get_string("cycle", "ECE_EUDC"));
  const double from = args.get_double("ambient-from", 0.0);
  const double to = args.get_double("ambient-to", 43.0);
  const double step = args.get_double("ambient-step", 10.0);
  EVC_EXPECT(step > 0.0 && to >= from, "bad ambient sweep range");
  const core::EvParams params;
  const std::string controller_name = args.get_string("controller", "mpc");

  core::SimulationOptions opts;
  opts.initial_soc_percent = args.get_double("soc", 90.0);
  opts.record_traces = false;
  core::ClimateSimulation sim(params);
  TextTable table = metrics_table();
  for (double ambient = from; ambient <= to + 1e-9; ambient += step) {
    auto controller = parse_controller(controller_name, params);
    const auto profile = drive::make_cycle_profile(cycle, ambient);
    const auto result = sim.run(*controller, profile, opts);
    print_metrics_row(table, TextTable::num(ambient, 0) + " C",
                      result.metrics);
  }
  std::cout << table.render("sweep " + drive::cycle_name(cycle) + ", " +
                            controller_name);
  return 0;
}

int cmd_plan(const ArgParser& args) {
  args.reject_unknown({"cycle", "ambient", "soc", "trace", "metrics"});
  const auto cycle = parse_cycle(args.get_string("cycle", "ECE_EUDC"));
  const double ambient = args.get_double("ambient", 35.0);
  const double soc = args.get_double("soc", 90.0);
  const core::EvParams params;
  core::TripPlanner planner(params);
  const auto profile = drive::make_cycle_profile(cycle, ambient);
  const double hvac = planner.steady_hvac_power_w(ambient);
  const auto plan = planner.plan(profile, soc, hvac);

  TextTable table({"quantity", "value"});
  table.add_row({"distance [km]",
                 TextTable::num(profile.total_distance_m() / 1000.0, 1)});
  table.add_row({"steady HVAC estimate [kW]", TextTable::num(hvac / 1000.0, 2)});
  table.add_row({"predicted energy [kWh]",
                 TextTable::num(plan.predicted_energy_j / 3.6e6, 2)});
  table.add_row({"predicted final SoC [%]",
                 TextTable::num(plan.predicted_final_soc, 1)});
  table.add_row({"predicted cycle-avg SoC [%]",
                 TextTable::num(plan.predicted_cycle_avg_soc, 1)});
  table.add_row({"trip reachable", plan.reachable ? "yes" : "NO"});
  std::cout << table.render("plan " + drive::cycle_name(cycle) + " @ " +
                            TextTable::num(ambient, 0) + " C, SoC " +
                            TextTable::num(soc, 0) + "%");
  return 0;
}

int cmd_synth(const ArgParser& args) {
  args.reject_unknown({"seed", "duration", "urban", "ambient", "hills",
                       "out", "trace", "metrics"});
  drive::RouteSynthOptions opts;
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  opts.trip_duration_s = args.get_double("duration", 1800.0);
  opts.urban_fraction = args.get_double("urban", 0.5);
  opts.base_ambient_c = args.get_double("ambient", 25.0);
  opts.hilliness_percent = args.get_double("hills", 2.0);
  const auto profile = drive::synthesize_route(opts);
  TextTable table({"quantity", "value"});
  table.add_row({"samples", TextTable::num(profile.size(), 0)});
  table.add_row({"distance [km]",
                 TextTable::num(profile.total_distance_m() / 1000.0, 2)});
  table.add_row({"max speed [km/h]",
                 TextTable::num(profile.max_speed_mps() * 3.6, 1)});
  std::cout << table.render("synthesized route (seed " +
                            TextTable::num(opts.seed, 0) + ")");
  const std::string out = args.get_string("out", "");
  if (!out.empty()) {
    drive::save_profile_csv(profile, out);
    std::cout << "profile written to " << out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    if (args.positional().empty()) return usage(args.program());

    // --trace overrides the EVC_TRACE convention; either way the guard's
    // destructor writes the Chrome trace after the subcommand finishes.
    const std::string trace_path = args.get_string("trace", "");
    std::optional<obs::TraceEnvGuard> trace_guard;
    if (trace_path.empty())
      trace_guard.emplace();
    else
      trace_guard.emplace(trace_path);

    const std::string command = args.positional()[0];
    int rc = 2;
    if (command == "simulate")
      rc = cmd_simulate(args);
    else if (command == "compare")
      rc = cmd_compare(args);
    else if (command == "sweep")
      rc = cmd_sweep(args);
    else if (command == "plan")
      rc = cmd_plan(args);
    else if (command == "synth")
      rc = cmd_synth(args);
    else
      return usage(args.program());

    const std::string metrics_path = args.get_string("metrics", "");
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      out << obs::snapshot().to_json() << "\n";
      if (!out) throw std::runtime_error("cannot write " + metrics_path);
      std::cout << "metrics written to " << metrics_path << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
