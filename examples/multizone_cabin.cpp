// Scenario example: front/rear comfort in a two-zone cabin.
//
// The paper assumes a single thermal zone (§II-C). This example runs the
// two-zone cabin network with a single-zone fuzzy controller reading the
// mean temperature, and sweeps the front/rear flow split: too much front
// bias starves the rear row on a hot day, too little lets the sun-loaded
// front drift — the sweep finds the split that balances both rows.
//
//   ./multizone_cabin [ambient_C]
#include <cstdlib>
#include <iostream>

#include "control/fuzzy_controller.hpp"
#include "hvac/multizone.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const double ambient = argc > 1 ? std::atof(argv[1]) : 38.0;

  TextTable table({"front flow share", "front Tz [C]", "rear Tz [C]",
                   "spread [C]", "mean [C]", "avg power [kW]"});

  for (double front_share : {0.4, 0.5, 0.6, 0.7, 0.85}) {
    hvac::MultiZoneParams params;  // asymmetric defaults (sun-loaded front)
    hvac::MultiZonePlant plant(params, {ambient, ambient});
    ctl::FuzzyController controller(params.base);
    ctl::ControlContext c;
    c.dt_s = 1.0;
    double power_acc = 0.0;
    const int steps = 2400;
    for (int t = 0; t < steps; ++t) {
      c.cabin_temp_c = plant.mean_cabin_temp_c();
      c.outside_temp_c = ambient;
      const auto r = plant.step(controller.decide(c),
                                {front_share, 1.0 - front_share}, ambient,
                                1.0);
      power_acc += r.power.total();
    }
    const auto& temps = plant.zone_temps_c();
    table.add_row({TextTable::num(front_share, 2),
                   TextTable::num(temps[0], 2), TextTable::num(temps[1], 2),
                   TextTable::num(std::abs(temps[0] - temps[1]), 2),
                   TextTable::num(plant.mean_cabin_temp_c(), 2),
                   TextTable::num(power_acc / steps / 1000.0, 3)});
  }

  std::cout << table.render("Two-zone cabin, flow-split sweep @ " +
                            TextTable::num(ambient, 0) + " C");
  std::cout << "\nThe single-zone controller holds the *mean*; the split "
               "decides how the comfort\nis distributed between rows — the "
               "knob a multi-zone VAV system adds.\n";
  return 0;
}
