// Scenario example: departure preconditioning.
//
// Production EVs precondition the cabin while still plugged in, so the
// pull-down energy comes from the grid instead of the pack. This is the
// paper's precool idea pushed before t = 0: the cabin's thermal mass is a
// small thermal battery. The example compares, on a hot-day commute:
//   1. no preconditioning (depart with a heat-soaked cabin),
//   2. precondition to the target (paper-style comfort at departure),
//   3. precondition *below* target (bank extra cooling in the cabin mass).
//
//   ./precondition_departure [ambient_C]
#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "drivecycle/standard_cycles.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const double ambient = argc > 1 ? std::atof(argv[1]) : 38.0;
  const core::EvParams params;
  const auto profile =
      drive::make_cycle_profile(drive::StandardCycle::kUdds, ambient);
  core::ClimateSimulation sim(params);

  std::cout << "UDDS commute at " << ambient
            << " C; battery lifetime-aware MPC in all variants.\n";

  struct Variant {
    const char* label;
    double cabin_at_departure;
  };
  const Variant variants[] = {
      {"no preconditioning (heat-soaked)", ambient + 6.0},
      {"preconditioned to target", params.hvac.target_temp_c},
      {"overcooled by 1.5 C (thermal banking)",
       params.hvac.target_temp_c - 1.5},
  };

  TextTable table({"departure cabin state", "trip HVAC energy [Wh]",
                   "dSoH [%/cycle]", "final SoC [%]", "comfort viol [%]"});
  for (const Variant& v : variants) {
    std::cerr << "  " << v.label << "...\n";
    core::SimulationOptions opts;
    opts.initial_cabin_temp_c = v.cabin_at_departure;
    opts.record_traces = false;
    auto mpc = core::make_mpc_controller(params);
    const auto result = sim.run(*mpc, profile, opts);
    const auto& m = result.metrics;
    table.add_row({v.label, TextTable::num(m.hvac_energy_j / 3600.0, 0),
                   TextTable::num(m.delta_soh_percent, 6),
                   TextTable::num(m.final_soc_percent, 2),
                   TextTable::num(100.0 * m.comfort.fraction_outside, 1)});
  }

  std::cout << table.render("Departure preconditioning (grid-powered)");
  std::cout << "\nPreconditioning shifts the pull-down energy off the pack "
               "(rows 2-3 vs row 1);\novercooling banks extra cold in the "
               "cabin mass for the first minutes of the trip.\n";
  return 0;
}
