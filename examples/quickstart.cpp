// Quickstart: run the battery lifetime-aware MPC climate controller against
// the two state-of-the-art baselines on one standard driving cycle and
// print the trip metrics the paper's evaluation is built from.
//
//   ./quickstart [cycle] [ambient_C]
//
// cycle ∈ {NEDC, US06, ECE_EUDC, SC03, UDDS}, default ECE_EUDC @ 35 °C.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "drivecycle/standard_cycles.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

namespace {

evc::drive::StandardCycle parse_cycle(const std::string& name) {
  for (auto cycle : evc::drive::all_standard_cycles())
    if (evc::drive::cycle_name(cycle) == name) return cycle;
  std::cerr << "unknown cycle '" << name << "', using ECE_EUDC\n";
  return evc::drive::StandardCycle::kEceEudc;
}

}  // namespace

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  const auto cycle = parse_cycle(argc > 1 ? argv[1] : "ECE_EUDC");
  const double ambient = argc > 2 ? std::atof(argv[2]) : 35.0;

  const auto profile = evc::drive::make_cycle_profile(cycle, ambient);
  std::cout << "Drive profile: " << profile.name() << "  ("
            << profile.duration() << " s, "
            << profile.total_distance_m() / 1000.0 << " km, ambient "
            << ambient << " C)\n";

  const evc::core::EvParams params;
  const auto runs = evc::core::compare_controllers(params, profile);

  evc::TextTable table({"controller", "avg HVAC [kW]", "dSoH [%/cycle]",
                        "SoC dev [%]", "final SoC [%]", "comfort viol [%]",
                        "range [km]"});
  for (const auto& run : runs) {
    const auto& m = run.metrics;
    table.add_row({run.controller,
                   evc::TextTable::num(m.avg_hvac_power_w / 1000.0, 3),
                   evc::TextTable::num(m.delta_soh_percent, 6),
                   evc::TextTable::num(m.stress.soc_deviation, 3),
                   evc::TextTable::num(m.final_soc_percent, 2),
                   evc::TextTable::num(100.0 * m.comfort.fraction_outside, 1),
                   evc::TextTable::num(m.estimated_range_km, 0)});
  }
  std::cout << table.render("Controller comparison on " + profile.name());

  const auto& base = runs.front().metrics;
  const auto& ours = runs.back().metrics;
  std::cout << "\nMPC vs On/Off: HVAC power "
            << evc::core::improvement_percent(base.avg_hvac_power_w,
                                              ours.avg_hvac_power_w)
            << "% lower, dSoH "
            << evc::core::improvement_percent(base.delta_soh_percent,
                                              ours.delta_soh_percent)
            << "% lower\n";
  return 0;
}
