// Scenario example: fleet-level battery lifetime statistics.
//
// Eight synthetic drivers (different commutes via the route synthesizer,
// different traffic via the IDM follower) × summer/winter weather ×
// {fuzzy, battery lifetime-aware MPC}. Aggregates the per-cycle ΔSoH into
// a projected lifetime (cycle + calendar aging) per driver, and reports
// the fleet mean and spread — the number a fleet operator actually buys
// batteries by.
//
//   ./fleet_study [drivers]
#include <cstdlib>
#include <iostream>

#include "battery/soh_model.hpp"
#include "core/experiment.hpp"
#include "drivecycle/route_synth.hpp"
#include "drivecycle/traffic.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const int drivers = argc > 1 ? std::atoi(argv[1]) : 6;

  const core::EvParams params;
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;
  bat::SohModel soh(params.battery);

  RunningStats fuzzy_years, mpc_years;
  std::cerr << "simulating " << drivers << " drivers x 2 seasons x 2 "
            << "controllers...\n";

  for (int driver = 0; driver < drivers; ++driver) {
    double fuzzy_daily = 0.0, mpc_daily = 0.0;
    for (double ambient : {34.0, -2.0}) {  // summer / winter halves
      drive::RouteSynthOptions route;
      route.seed = 1000 + static_cast<std::uint64_t>(driver);
      route.trip_duration_s = 900.0;
      route.urban_fraction = 0.65 + 0.05 * (driver % 5);
      route.urban_speed_kmh = 45.0;
      route.highway_speed_kmh = 90.0;
      route.hilliness_percent = 1.5;
      route.base_ambient_c = ambient;
      auto profile = drive::synthesize_route(route);
      // Individual traffic: each driver follows their own leader noise.
      drive::FollowOptions traffic;
      traffic.seed = 77 + static_cast<std::uint64_t>(driver);
      traffic.leader_noise_mps = 0.8;
      profile = drive::follow_leader(profile, traffic);

      const auto runs = core::compare_controllers(params, profile, opts);
      // Half the year at each ambient, one commute per day.
      fuzzy_daily += 0.5 * runs[1].metrics.delta_soh_percent;
      mpc_daily += 0.5 * runs[2].metrics.delta_soh_percent;
    }
    fuzzy_years.add(soh.years_to_end_of_life(fuzzy_daily, 1.0, 70.0));
    mpc_years.add(soh.years_to_end_of_life(mpc_daily, 1.0, 70.0));
    std::cerr << "  driver " << driver + 1 << "/" << drivers << " done\n";
  }

  TextTable table({"controller", "fleet mean lifetime [y]", "min [y]",
                   "max [y]", "stddev [y]"});
  table.add_row({"Fuzzy-based [10]", TextTable::num(fuzzy_years.mean(), 2),
                 TextTable::num(fuzzy_years.min(), 2),
                 TextTable::num(fuzzy_years.max(), 2),
                 TextTable::num(fuzzy_years.stddev(), 2)});
  table.add_row({"Battery Lifetime-aware MPC",
                 TextTable::num(mpc_years.mean(), 2),
                 TextTable::num(mpc_years.min(), 2),
                 TextTable::num(mpc_years.max(), 2),
                 TextTable::num(mpc_years.stddev(), 2)});
  std::cout << table.render("Fleet battery-lifetime projection (" +
                            TextTable::num(drivers, 0) +
                            " drivers, cycle + calendar aging)");
  std::cout << "\nLifetime gained: "
            << TextTable::num(mpc_years.mean() - fuzzy_years.mean(), 2)
            << " years per vehicle on fleet average.\n"
            << "(Absolute years are pessimistic: the SoH constants are "
               "calibrated to reproduce\nthe paper's *relative* results on "
               "shallow standard cycles; the relative gap is\nthe number "
               "to trust.)\n";
  return 0;
}
