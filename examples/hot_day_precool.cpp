// Scenario example: a heat-soaked car on a 40 °C day.
//
// The cabin starts at 45 °C (parked in the sun). The example contrasts how
// the three controllers pull the cabin down into the comfort zone and what
// that costs the battery — and demonstrates the MPC's precooling: it dumps
// thermal energy into the cabin mass while the motor idles at the start of
// the route, then coasts through the highway power peaks.
//
//   ./hot_day_precool [out_prefix]
//
// Writes <prefix>_<controller>.csv traces for plotting.
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "drivecycle/standard_cycles.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const std::string prefix = argc > 1 ? argv[1] : "hot_day";

  const double ambient = 40.0;
  const auto profile =
      drive::make_cycle_profile(drive::StandardCycle::kUs06, ambient);
  const core::EvParams params;
  core::ClimateSimulation sim(params);

  core::SimulationOptions opts;
  opts.initial_cabin_temp_c = 45.0;  // heat-soaked interior

  std::cout << "Heat-soaked start: cabin 45 C, ambient " << ambient
            << " C, US06 (aggressive highway cycle)\n";

  TextTable table({"controller", "time to comfort [s]", "avg HVAC [kW]",
                   "dSoH [%/cycle]", "final SoC [%]"});

  const auto run = [&](ctl::ClimateController& controller,
                       const std::string& file_tag) {
    const auto result = sim.run(controller, profile, opts);
    const auto& tz = result.recorder.values("cabin_temp_c");
    // First time the cabin enters the comfort zone.
    double t_comfort = -1.0;
    for (std::size_t i = 0; i < tz.size(); ++i) {
      if (tz[i] <= params.hvac.comfort_max_c) {
        t_comfort = result.recorder.times("cabin_temp_c")[i];
        break;
      }
    }
    result.recorder.write_csv(prefix + "_" + file_tag + ".csv");
    const auto& m = result.metrics;
    table.add_row({controller.name(),
                   t_comfort < 0 ? "never" : TextTable::num(t_comfort, 0),
                   TextTable::num(m.avg_hvac_power_w / 1000.0, 2),
                   TextTable::num(m.delta_soh_percent, 6),
                   TextTable::num(m.final_soc_percent, 2)});
  };

  auto onoff = core::make_onoff_controller(params);
  run(*onoff, "onoff");
  auto fuzzy = core::make_fuzzy_controller(params);
  run(*fuzzy, "fuzzy");
  auto mpc = core::make_mpc_controller(params);
  run(*mpc, "mpc");

  std::cout << table.render("Pull-down from a heat-soaked cabin (US06 @ 40 C)");
  std::cout << "\nTraces written to " << prefix << "_{onoff,fuzzy,mpc}.csv\n";
  return 0;
}
