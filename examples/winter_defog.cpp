// Scenario example: recirculation efficiency vs windshield fog in winter.
//
// The MPC loves high recirculation in the cold (it slashes the ventilation
// heating load — the source of its biggest Table I win), but recirculated
// air accumulates occupant moisture and fogs the windshield. This example
// runs the moist plant at −5 °C with four occupants and compares:
//   1. efficiency-only (dr = 0.9 fixed): cheapest, fogs within minutes;
//   2. fresh-air-only (dr = 0.0): safe, pays the full ventilation load;
//   3. defog-supervised (dr capped by the fog-margin guard): nearly the
//      efficiency of (1) with the safety of (2).
#include <algorithm>
#include <iostream>

#include "control/fuzzy_controller.hpp"
#include "hvac/defog.hpp"
#include "hvac/moist_plant.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  // Cool, damp morning: mild enough that the fuzzy controller settles at a
  // low blower speed — the regime where recirculated occupant moisture
  // accumulates fastest.
  const double ambient = 5.0;
  const double outside_rh = 0.8;

  struct Policy {
    const char* label;
    bool fixed;
    double fixed_dr;
    bool supervised;
  };
  const Policy policies[] = {
      {"efficiency-only (dr=0.9)", true, 0.9, false},
      {"fresh-air-only (dr=0.0)", true, 0.0, false},
      {"defog-supervised", true, 0.9, true},
  };

  TextTable table({"policy", "avg HVAC [kW]", "min fog margin [K]",
                   "fogged time [%]", "cabin RH end [%]"});
  for (const Policy& policy : policies) {
    hvac::HvacParams params = hvac::default_hvac_params();
    hvac::MoistureParams moisture;
    moisture.occupants = 4;
    hvac::MoistHvacPlant plant(params, moisture, 20.0, 0.5);
    ctl::FuzzyController controller(params);
    hvac::DefogParams defog;

    double power_acc = 0.0, min_margin = 1e9;
    int fogged = 0;
    const int steps = 1800;
    hvac::MoistStepResult last;
    for (int t = 0; t < steps; ++t) {
      ctl::ControlContext c;
      c.dt_s = 1.0;
      c.cabin_temp_c = plant.cabin_temp_c();
      c.outside_temp_c = ambient;
      hvac::HvacInputs in = controller.decide(c);
      const double heat_demand = in.supply_temp_c - in.coil_temp_c;
      in.recirculation = policy.fixed_dr;
      if (policy.supervised) {
        in.recirculation = std::min(
            in.recirculation,
            hvac::recirculation_limit(defog, 0.9, plant.cabin_temp_c(),
                                      ambient, plant.cabin_humidity_ratio()));
      }
      // Keep the coil consistent with the overridden damper (the fuzzy
      // controller computed it for dr = 0.5): cooler stays passive, the
      // heater span is preserved on top of the new mixed temperature.
      const double tm = (1.0 - in.recirculation) * ambient +
                        in.recirculation * plant.cabin_temp_c();
      in.coil_temp_c = tm;
      in.supply_temp_c = tm + std::max(heat_demand, 0.0);
      last = plant.step(in, ambient, outside_rh, 1.0);
      power_acc += last.total_power_w;
      const double margin =
          hvac::fog_margin_k(defog, plant.cabin_temp_c(), ambient,
                             plant.cabin_humidity_ratio());
      min_margin = std::min(min_margin, margin);
      if (margin < 0.0) ++fogged;
    }
    table.add_row(
        {policy.label, TextTable::num(power_acc / steps / 1000.0, 2),
         TextTable::num(min_margin, 2),
         TextTable::num(100.0 * fogged / steps, 1),
         TextTable::num(100.0 * last.moisture.cabin_relative_humidity, 1)});
  }

  std::cout << table.render(
      "Recirculation vs windshield fog (5 C damp morning, 4 occupants, "
      "80% RH outside)");
  std::cout << "\nThe defog supervisor keeps most of the recirculation "
               "saving without ever\nletting the windshield fog — the "
               "safety constraint an efficiency-optimal\nclimate "
               "controller must carry.\n";
  return 0;
}
