// Shared helpers for the figure/table regeneration harness.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (§IV): it runs the same closed-loop co-simulation the paper
// ran (On/Off [8,9] vs fuzzy [10] vs our battery lifetime-aware MPC on
// standard driving cycles) and prints the rows/series of that exhibit.
// Absolute numbers come from our simulator rather than the authors'
// MATLAB/AMESim testbed; the reproduction target is the *shape* (ordering,
// rough factors, crossovers). EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "drivecycle/standard_cycles.hpp"
#include "runtime/thread_pool.hpp"
#include "util/table.hpp"

namespace evc::bench {

/// Ambient temperature used for the cross-cycle comparisons (Fig. 5–8).
/// The paper fixes "the same ambient temperature, comfort zone, and target
/// temperature for all methodologies"; we use a hot summer day.
inline constexpr double kDefaultAmbientC = 35.0;

/// Controller-name constants in the paper's column order.
inline const char* kOnOff = "On/Off [8,9]";
inline const char* kFuzzy = "Fuzzy-based [10]";
inline const char* kOurs = "Our Battery Lifetime-aware";

struct CycleComparison {
  drive::StandardCycle cycle;
  std::string cycle_name;
  core::TripMetrics onoff;
  core::TripMetrics fuzzy;
  core::TripMetrics mpc;
};

/// Run the three methodologies over one cycle at `ambient_c`.
inline CycleComparison run_cycle_comparison(drive::StandardCycle cycle,
                                            double ambient_c) {
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(cycle, ambient_c);
  core::SimulationOptions opts;
  opts.record_traces = false;
  const auto runs = core::compare_controllers(params, profile, opts);
  return CycleComparison{cycle, drive::cycle_name(cycle), runs[0].metrics,
                         runs[1].metrics, runs[2].metrics};
}

/// Run all five cycles of Fig. 7/8, one scenario per pool worker. Each
/// scenario owns its controllers, so results are identical to the serial
/// loop (set EVC_THREADS=1 to force serial execution).
inline std::vector<CycleComparison> run_all_cycles(double ambient_c) {
  const auto cycles = drive::all_standard_cycles();
  std::cerr << "  running " << cycles.size() << " cycles on "
            << (rt::ThreadPool::global().size() + 1) << " thread(s)...\n";
  return rt::parallel_map<CycleComparison>(
      cycles.size(),
      [&](std::size_t i) { return run_cycle_comparison(cycles[i], ambient_c); });
}

}  // namespace evc::bench
