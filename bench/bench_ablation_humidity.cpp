// Ablation G — the equivalent-dry-air-temperature simplification (§II-C).
//
// The paper folds humidity into an equivalent dry-air temperature and never
// charges the cooling coil for condensation. This bench runs the fuzzy
// controller against the *moist* plant on ECE_EUDC at 35 °C for a range of
// outside relative humidities and reports the latent share of the cooling
// power — the error budget of the paper's dry-air assumption.
#include <iostream>

#include "bench_common.hpp"
#include "control/fuzzy_controller.hpp"
#include "core/simulation.hpp"
#include "hvac/moist_plant.hpp"
#include "powertrain/power_train.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);

  TextTable table({"outside RH [%]", "dry power [kW]", "latent power [kW]",
                   "total [kW]", "latent share [%]", "cabin RH end [%]"});

  for (double rh : {0.2, 0.4, 0.6, 0.8}) {
    std::cerr << "  RH " << rh * 100 << "%...\n";
    hvac::MoistHvacPlant plant(params.hvac, hvac::MoistureParams{},
                               params.hvac.target_temp_c, 0.5);
    ctl::FuzzyController controller(params.hvac);
    double dry_acc = 0.0, latent_acc = 0.0, cabin_rh = 0.0;
    for (std::size_t t = 0; t < profile.size(); ++t) {
      ctl::ControlContext c;
      c.time_s = static_cast<double>(t);
      c.dt_s = profile.dt();
      c.cabin_temp_c = plant.cabin_temp_c();
      c.outside_temp_c = profile[t].ambient_c;
      const auto step = plant.step(controller.decide(c),
                                   profile[t].ambient_c, rh, profile.dt());
      dry_acc += step.dry.power.total();
      latent_acc += step.latent_cooler_w;
      cabin_rh = step.moisture.cabin_relative_humidity;
    }
    const double n = static_cast<double>(profile.size());
    const double dry_kw = dry_acc / n / 1000.0;
    const double latent_kw = latent_acc / n / 1000.0;
    table.add_row({TextTable::num(rh * 100, 0), TextTable::num(dry_kw, 3),
                   TextTable::num(latent_kw, 3),
                   TextTable::num(dry_kw + latent_kw, 3),
                   TextTable::num(100.0 * latent_kw / (dry_kw + latent_kw), 1),
                   TextTable::num(100.0 * cabin_rh, 1)});
  }

  std::cout << table.render(
      "Ablation G — latent (dehumidification) share of cooling power, "
      "fuzzy controller, ECE_EUDC @ 35 C");
  std::cout << "\nThe paper's dry-air model is exact at low humidity and "
               "underestimates the\ncooling power by the latent share in "
               "humid climates.\n";
  return 0;
}
