// Ablation B — cost-function weights (Eq. 21). Turning the SoC-deviation
// term (w2) off isolates *why* the controller improves battery lifetime:
// with w2 = 0 the MPC is merely an energy-optimal climate controller; the
// ΔSoH gap between w2 = 0 and the default is the battery-awareness payoff.
// Sweeping w1 (power weight) shows the comfort/power trade-off.
#include <iostream>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;

  struct Variant {
    std::string label;
    core::MpcWeights weights;
  };
  std::vector<Variant> variants;
  {
    Variant v{"default (w1=0.02, w2=2, w3=0.3)", core::MpcWeights{}};
    variants.push_back(v);
    v.label = "no SoC-deviation term (w2=0)";
    v.weights = core::MpcWeights{};
    v.weights.soc_deviation = 0.0;
    variants.push_back(v);
    v.label = "strong SoC-deviation (w2=10)";
    v.weights = core::MpcWeights{};
    v.weights.soc_deviation = 10.0;
    variants.push_back(v);
    v.label = "no power term (w1=0)";
    v.weights = core::MpcWeights{};
    v.weights.power = 0.0;
    variants.push_back(v);
    v.label = "strong comfort (w3=3)";
    v.weights = core::MpcWeights{};
    v.weights.comfort = 3.0;
    variants.push_back(v);
  }

  TextTable table({"cost variant", "avg HVAC [kW]", "dSoH [%/cycle]",
                   "SoC dev [%]", "rms Tz err [C]"});
  std::cerr << "  running " << variants.size() << " variants on "
            << (rt::ThreadPool::global().size() + 1) << " thread(s)...\n";
  const auto metrics = rt::parallel_map<core::TripMetrics>(
      variants.size(), [&](std::size_t i) {
        core::MpcOptions mpc_opts;
        mpc_opts.weights = variants[i].weights;
        auto mpc = core::make_mpc_controller(params, mpc_opts);
        return sim.run(*mpc, profile, opts).metrics;
      });
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& variant = variants[i];
    const auto& m = metrics[i];
    table.add_row({variant.label,
                   TextTable::num(m.avg_hvac_power_w / 1000.0, 3),
                   TextTable::num(m.delta_soh_percent, 6),
                   TextTable::num(m.stress.soc_deviation, 3),
                   TextTable::num(m.comfort.rms_error_c, 3)});
  }

  std::cout << table.render(
      "Ablation B — Eq. 21 weight variants, ECE_EUDC @ 35 C");
  return 0;
}
