// Closed-loop A/B of the two QP backends on the paper's drive cycle.
//
// The condensed active-set path is meant to be a *drop-in* fast path: per
// subproblem it matches the sparse interior point to KKT tolerance
// (tests/condensed_qp_test), and this bench checks the property that
// actually matters downstream — that a full ECE_EUDC closed-loop run lands
// on the same battery-health, comfort and energy numbers. Exits nonzero on
// mismatch so CI can gate on it.
//
// Tolerances are loose relative to the per-solve 1e-8 agreement because the
// MPC cost surface has near-flat directions: two certificates-equal QP
// solutions can differ by ~1e-5 in coordinates, and a 3400 s receding-
// horizon rollout integrates those differences. What must NOT drift is the
// physics the controller delivers: state of health to a fraction of its
// per-cycle delta, comfort to hundredths of a degree, energy to a fraction
// of a percent.
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "obs/trace.hpp"
#include "optim/condensed_qp.hpp"

namespace {

struct RunResult {
  evc::core::TripMetrics metrics;
  evc::core::MpcPlanStats stats;
  double wall_s = 0.0;
};

bool check_close(const char* what, double a, double b, double abs_tol,
                 double rel_tol) {
  const double tol = abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
  if (std::abs(a - b) <= tol) return true;
  std::cerr << "MISMATCH " << what << ": sparse=" << a << " condensed=" << b
            << " |diff|=" << std::abs(a - b) << " tol=" << tol << "\n";
  return false;
}

}  // namespace

int main() {
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;

  RunResult runs[2];
  const opt::QpBackend backends[2] = {opt::QpBackend::kSparse,
                                      opt::QpBackend::kCondensed};
  for (int i = 0; i < 2; ++i) {
    std::cerr << "  backend = " << opt::to_string(backends[i]) << "...\n";
    core::MpcOptions mpc_opts;
    mpc_opts.sqp.backend = backends[i];
    auto mpc = core::make_mpc_controller(params, mpc_opts);
    const auto start = std::chrono::steady_clock::now();
    const auto result = sim.run(*mpc, profile, opts);
    runs[i].wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    runs[i].metrics = result.metrics;
    runs[i].stats = mpc->stats();
  }

  TextTable table({"backend", "avg HVAC [kW]", "dSoH [%/cycle]",
                   "rms Tz err [C]", "plan failures", "condensed solves",
                   "sim time [s]"});
  for (int i = 0; i < 2; ++i) {
    const auto& r = runs[i];
    table.add_row({opt::to_string(backends[i]),
                   TextTable::num(r.metrics.avg_hvac_power_w / 1000.0, 4),
                   TextTable::num(r.metrics.delta_soh_percent, 6),
                   TextTable::num(r.metrics.comfort.rms_error_c, 4),
                   TextTable::num(r.stats.failures, 0),
                   TextTable::num(r.stats.solver.condensed_solves, 0),
                   TextTable::num(r.wall_s, 1)});
  }
  std::cout << table.render(
      "Backend equivalence — sparse IPM vs condensed active set, ECE_EUDC");

  const auto& s = runs[0];
  const auto& c = runs[1];
  bool ok = true;
  // Sanity: the condensed run must actually have taken the fast path, and
  // the sparse run must not have.
  if (c.stats.solver.condensed_solves == 0) {
    std::cerr << "MISMATCH: condensed backend never used the dense path\n";
    ok = false;
  }
  if (s.stats.solver.condensed_solves != 0) {
    std::cerr << "MISMATCH: sparse backend used the dense path\n";
    ok = false;
  }
  ok &= check_close("avg_hvac_power_w", s.metrics.avg_hvac_power_w,
                    c.metrics.avg_hvac_power_w, 0.0, 1e-2);
  ok &= check_close("delta_soh_percent", s.metrics.delta_soh_percent,
                    c.metrics.delta_soh_percent, 0.0, 5e-3);
  ok &= check_close("comfort.rms_error_c", s.metrics.comfort.rms_error_c,
                    c.metrics.comfort.rms_error_c, 0.01, 5e-3);
  ok &= check_close("failures", static_cast<double>(s.stats.failures),
                    static_cast<double>(c.stats.failures), 0.5, 0.0);

  if (!ok) {
    std::cerr << "backend equivalence FAILED\n";
    return 1;
  }
  std::cout << "backend equivalence OK\n";
  return 0;
}
