// Ablation H — battery model fidelity inside the control window.
//
// The controller's window uses a linear charge balance by default (the
// plant always applies the full Peukert/IR model); with
// `nonlinear_battery` the window also models the rate-capacity effect, so
// the optimizer *sees* that high-power intervals drain super-linearly.
// This quantifies how much controller-model fidelity matters — the
// receding horizon already absorbs most of the mismatch.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;

  TextTable table({"window battery model", "avg HVAC [kW]",
                   "dSoH [%/cycle]", "SoC dev [%]", "final SoC [%]",
                   "sim time [s]"});
  for (bool nonlinear : {false, true}) {
    std::cerr << "  " << (nonlinear ? "Peukert" : "linear") << "...\n";
    core::MpcOptions mpc_opts;
    mpc_opts.nonlinear_battery = nonlinear;
    auto mpc = core::make_mpc_controller(params, mpc_opts);
    const auto start = std::chrono::steady_clock::now();
    const auto result = sim.run(*mpc, profile, opts);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const auto& m = result.metrics;
    table.add_row({nonlinear ? "Peukert (rate-capacity)" : "linear (default)",
                   TextTable::num(m.avg_hvac_power_w / 1000.0, 5),
                   TextTable::num(m.delta_soh_percent, 8),
                   TextTable::num(m.stress.soc_deviation, 3),
                   TextTable::num(m.final_soc_percent, 4),
                   TextTable::num(secs, 1)});
  }
  std::cout << table.render(
      "Ablation H — linear vs Peukert battery model in the MPC window, "
      "ECE_EUDC @ 35 C");
  std::cout << "\nExpected shape: small differences — the plant applies the "
               "full model either\nway and the receding horizon absorbs the "
               "controller's model error.\n";
  return 0;
}
