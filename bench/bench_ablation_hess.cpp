// Ablation D — HVAC-side vs storage-side SoC smoothing.
//
// The paper flattens the battery's SoC trajectory by *controlling the HVAC*
// (demand side); its reference [3] flattens it with a *hybrid energy
// storage system* (supply side: ultracapacitor absorbs transients). This
// ablation runs the 2×2 grid {battery-only, HESS} × {On/Off, MPC} on
// ECE_EUDC @ 35 °C and shows the two mechanisms are complementary: the
// HESS removes the fast motor transients the HVAC cannot chase, the MPC
// removes the sustained HVAC load the ultracapacitor is too small to carry.
#include <iostream>
#include <memory>

#include "battery/hess.hpp"
#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "hvac/hvac_plant.hpp"
#include "powertrain/power_train.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

namespace {

using namespace evc;

struct GridResult {
  double avg_hvac_kw = 0.0;
  double delta_soh = 0.0;
  double soc_dev = 0.0;
};

/// Closed loop like Algorithm 1, but with a pluggable storage backend.
GridResult run_with_storage(const core::EvParams& params,
                            const drive::DriveProfile& profile,
                            ctl::ClimateController& controller,
                            bool use_hess) {
  pt::PowerTrain power_train(params.vehicle);
  hvac::HvacPlant plant(params.hvac, params.hvac.target_temp_c);
  bat::Bms bms(params.battery, params.bms, 90.0);
  std::unique_ptr<bat::Hess> hess;
  if (use_hess)
    hess = std::make_unique<bat::Hess>(params.battery, params.bms,
                                       bat::UltracapParams{},
                                       bat::HessPolicy{}, 90.0);

  controller.reset();
  std::vector<double> motor(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i)
    motor[i] = power_train.power(profile[i]).electrical_power_w;

  const double dt = profile.dt();
  double hvac_acc = 0.0;
  for (std::size_t t = 0; t < profile.size(); ++t) {
    ctl::ControlContext c;
    c.time_s = static_cast<double>(t) * dt;
    c.dt_s = dt;
    c.cabin_temp_c = plant.cabin_temp_c();
    c.outside_temp_c = profile[t].ambient_c;
    c.soc_percent = use_hess ? hess->battery_soc_percent() : bms.soc_percent();
    c.motor_power_forecast_w.assign(120, 0.0);
    c.outside_temp_forecast_c.assign(120, profile[t].ambient_c);
    for (std::size_t j = 0; j < 120; ++j)
      c.motor_power_forecast_w[j] =
          motor[std::min(t + j, profile.size() - 1)];

    const auto hvac_step =
        plant.step(controller.decide(c), profile[t].ambient_c, dt);
    hvac_acc += hvac_step.power.total();
    const double total = motor[t] + hvac_step.power.total() +
                         params.vehicle.accessory_power_w;
    if (use_hess)
      hess->apply_power(total, dt);
    else
      bms.apply_power(total, dt);
  }

  GridResult r;
  r.avg_hvac_kw = hvac_acc / static_cast<double>(profile.size()) / 1000.0;
  r.delta_soh = use_hess ? hess->cycle_delta_soh() : bms.cycle_delta_soh();
  r.soc_dev = (use_hess ? hess->cycle_stress() : bms.cycle_stress())
                  .soc_deviation;
  return r;
}

}  // namespace

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  const evc::core::EvParams params;
  const auto profile = evc::drive::make_cycle_profile(
      evc::drive::StandardCycle::kEceEudc, evc::bench::kDefaultAmbientC);

  evc::TextTable table({"storage", "controller", "avg HVAC [kW]",
                        "SoC dev [%]", "dSoH [%/cycle]"});
  for (bool use_hess : {false, true}) {
    for (int which = 0; which < 2; ++which) {
      std::unique_ptr<evc::ctl::ClimateController> controller =
          which == 0 ? evc::core::make_onoff_controller(params)
                     : std::unique_ptr<evc::ctl::ClimateController>(
                           evc::core::make_mpc_controller(params));
      std::cerr << "  " << (use_hess ? "HESS" : "battery") << " + "
                << controller->name() << "...\n";
      const GridResult r =
          run_with_storage(params, profile, *controller, use_hess);
      table.add_row({use_hess ? "battery+ultracap" : "battery only",
                     controller->name(),
                     evc::TextTable::num(r.avg_hvac_kw, 3),
                     evc::TextTable::num(r.soc_dev, 3),
                     evc::TextTable::num(r.delta_soh, 6)});
    }
  }
  std::cout << table.render(
      "Ablation D — storage-side (HESS [3]) vs demand-side (our MPC) SoC "
      "smoothing, ECE_EUDC @ 35 C");
  std::cout << "\nExpected shape: each mechanism alone improves dSoH; the "
               "combination is best.\n";
  return 0;
}
