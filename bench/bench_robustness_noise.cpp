// Robustness study — sensor noise and forecast error.
//
// The paper assumes a perfect cabin-temperature measurement and a perfect
// motor-power forecast from the route (§II-A: GPS route knowledge). This
// bench perturbs both and measures how gracefully each methodology
// degrades on ECE_EUDC @ 35 °C:
//   * cabin sensor: additive Gaussian noise, fed raw or through the
//     Kalman cabin estimator (sim/kalman),
//   * forecast: multiplicative Gaussian error on the predicted motor power.
#include <cmath>
#include <iostream>
#include <iterator>
#include <memory>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "hvac/hvac_plant.hpp"
#include "powertrain/power_train.hpp"
#include "sim/kalman.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

namespace {

using namespace evc;

struct NoisyRun {
  double avg_hvac_kw = 0.0;
  double delta_soh = 0.0;
  double rms_temp_err = 0.0;
};

NoisyRun run_noisy(const core::EvParams& params,
                   const drive::DriveProfile& profile,
                   ctl::ClimateController& controller, double sensor_sigma,
                   double forecast_sigma, bool use_estimator,
                   std::uint64_t seed) {
  pt::PowerTrain power_train(params.vehicle);
  hvac::HvacPlant plant(params.hvac, params.hvac.target_temp_c);
  bat::Bms bms(params.battery, params.bms, 90.0);
  controller.reset();
  SplitMix64 rng(seed);

  std::vector<double> motor(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i)
    motor[i] = power_train.power(profile[i]).electrical_power_w;

  const double dt = profile.dt();
  sim::CabinTempEstimator estimator(params.hvac.target_temp_c, 1e-3,
                                    sensor_sigma * sensor_sigma + 1e-6);
  hvac::HvacInputs last_inputs;
  bool have_inputs = false;

  double hvac_acc = 0.0;
  RunningStats temp_err;
  for (std::size_t t = 0; t < profile.size(); ++t) {
    const double truth = plant.cabin_temp_c();
    const double measured = truth + rng.normal(0.0, sensor_sigma);

    double believed = measured;
    if (use_estimator) {
      // Propagate the estimate through the exact cabin model with the
      // previously applied inputs, then fuse the noisy sensor.
      double predicted = estimator.estimate();
      double decay = 1.0;
      if (have_inputs) {
        const auto& p = params.hvac;
        const double rate =
            (p.wall_ua_w_per_k + last_inputs.air_flow_kg_s * p.air_cp) /
            p.cabin_capacitance_j_per_k;
        decay = std::exp(-rate * dt);
        predicted = plant.cabin_model().step_exact(
            estimator.estimate(), last_inputs.supply_temp_c,
            last_inputs.air_flow_kg_s, profile[t].ambient_c, dt);
      }
      estimator.step(predicted, decay, measured);
      believed = estimator.estimate();
    }
    temp_err.add(std::abs(believed - truth));

    ctl::ControlContext c;
    c.time_s = static_cast<double>(t) * dt;
    c.dt_s = dt;
    c.cabin_temp_c = believed;
    c.outside_temp_c = profile[t].ambient_c;
    c.soc_percent = bms.soc_percent();
    c.motor_power_forecast_w.assign(120, 0.0);
    c.outside_temp_forecast_c.assign(120, profile[t].ambient_c);
    for (std::size_t j = 0; j < 120; ++j) {
      const double p = motor[std::min(t + j, profile.size() - 1)];
      c.motor_power_forecast_w[j] =
          p * (1.0 + rng.normal(0.0, forecast_sigma));
    }

    last_inputs = controller.decide(c);
    have_inputs = true;
    const auto hvac_step = plant.step(last_inputs, profile[t].ambient_c, dt);
    last_inputs = hvac_step.applied;
    hvac_acc += hvac_step.power.total();
    bms.apply_power(motor[t] + hvac_step.power.total() +
                        params.vehicle.accessory_power_w,
                    dt);
  }

  NoisyRun out;
  out.avg_hvac_kw = hvac_acc / static_cast<double>(profile.size()) / 1000.0;
  out.delta_soh = bms.cycle_delta_soh();
  out.rms_temp_err = temp_err.mean();
  return out;
}

}  // namespace

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  const evc::core::EvParams params;
  const auto profile = evc::drive::make_cycle_profile(
      evc::drive::StandardCycle::kEceEudc, evc::bench::kDefaultAmbientC);

  evc::TextTable table({"scenario", "avg HVAC [kW]", "dSoH [%/cycle]",
                        "mean |Tz error| [C]"});
  struct Scenario {
    const char* label;
    double sensor_sigma;
    double forecast_sigma;
    bool estimator;
  };
  const Scenario scenarios[] = {
      {"ideal (paper's assumption)", 0.0, 0.0, false},
      {"sensor noise 0.5 C, raw", 0.5, 0.0, false},
      {"sensor noise 0.5 C, Kalman", 0.5, 0.0, true},
      {"forecast error 30%", 0.0, 0.3, false},
      {"both, Kalman", 0.5, 0.3, true},
  };

  const std::size_t num_scenarios = std::size(scenarios);
  std::cerr << "  running " << num_scenarios << " scenarios on "
            << (evc::rt::ThreadPool::global().size() + 1) << " thread(s)...\n";
  // Per-scenario controller and fixed RNG seed: the parallel results match
  // the serial loop exactly.
  const auto runs = evc::rt::parallel_map<NoisyRun>(
      num_scenarios, [&](std::size_t i) {
        const Scenario& s = scenarios[i];
        auto mpc = evc::core::make_mpc_controller(params);
        return run_noisy(params, profile, *mpc, s.sensor_sigma,
                         s.forecast_sigma, s.estimator, 99);
      });
  for (std::size_t i = 0; i < num_scenarios; ++i) {
    const NoisyRun& r = runs[i];
    table.add_row({scenarios[i].label, evc::TextTable::num(r.avg_hvac_kw, 3),
                   evc::TextTable::num(r.delta_soh, 6),
                   evc::TextTable::num(r.rms_temp_err, 3)});
  }

  std::cout << table.render(
      "Robustness — MPC under sensor noise / forecast error, ECE_EUDC @ 35 C");
  std::cout << "\nExpected shape: raw sensor noise chops up the plans; the "
               "Kalman estimator\nrecovers most of the ideal performance; "
               "moderate forecast error costs little\n(the receding horizon "
               "replans every 5 s).\n";
  return 0;
}
