// Ablation E — the paper's constant-battery-temperature assumption.
//
// Eq. 15 treats pack temperature as a constant. This bench re-runs the
// Table I ambient sweep with the lumped pack thermal model and the
// Arrhenius fade factor switched on: the pack self-heats under load and
// equilibrates toward the ambient, so hot-weather cycles degrade faster
// than Eq. 15 alone predicts and cold-weather cycles slower. The *relative*
// ranking of the controllers is unchanged — supporting the paper's scoping
// decision — but the absolute fade shifts by the reported factor.
#include <iostream>
#include <memory>

#include "battery/thermal_model.hpp"
#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "hvac/hvac_plant.hpp"
#include "powertrain/power_train.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "obs/trace.hpp"

namespace {

using namespace evc;

struct ThermalRun {
  double delta_soh_const_t = 0.0;  ///< Eq. 15 as in the paper
  double delta_soh_thermal = 0.0;  ///< with pack thermal + Arrhenius
  double avg_pack_temp_c = 0.0;
};

ThermalRun run_thermal(const core::EvParams& params,
                       const drive::DriveProfile& profile,
                       ctl::ClimateController& controller) {
  pt::PowerTrain power_train(params.vehicle);
  hvac::HvacPlant plant(params.hvac, params.hvac.target_temp_c);
  bat::Bms bms(params.battery, params.bms, 90.0);
  // Pack starts equilibrated with the ambient.
  bat::BatteryThermalModel thermal(bat::BatteryThermalParams{},
                                   profile[0].ambient_c);
  controller.reset();

  std::vector<double> motor(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i)
    motor[i] = power_train.power(profile[i]).electrical_power_w;

  const double dt = profile.dt();
  RunningStats pack_temp;
  for (std::size_t t = 0; t < profile.size(); ++t) {
    ctl::ControlContext c;
    c.time_s = static_cast<double>(t) * dt;
    c.dt_s = dt;
    c.cabin_temp_c = plant.cabin_temp_c();
    c.outside_temp_c = profile[t].ambient_c;
    c.soc_percent = bms.soc_percent();
    c.motor_power_forecast_w.assign(120, 0.0);
    c.outside_temp_forecast_c.assign(120, profile[t].ambient_c);
    for (std::size_t j = 0; j < 120; ++j)
      c.motor_power_forecast_w[j] =
          motor[std::min(t + j, profile.size() - 1)];

    const auto hvac_step =
        plant.step(controller.decide(c), profile[t].ambient_c, dt);
    const double total = motor[t] + hvac_step.power.total() +
                         params.vehicle.accessory_power_w;
    bms.apply_power(total, dt);
    thermal.step(bms.last_step().current_a,
                 params.battery.internal_resistance_ohm,
                 profile[t].ambient_c, dt);
    pack_temp.add(thermal.temperature_c());
  }

  ThermalRun out;
  out.delta_soh_const_t = bms.cycle_delta_soh();
  const bat::SohModel soh(params.battery);
  out.avg_pack_temp_c = pack_temp.mean();
  out.delta_soh_thermal = bat::delta_soh_at_temperature(
      soh, thermal, bms.cycle_stress(), out.avg_pack_temp_c);
  return out;
}

}  // namespace

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  const evc::core::EvParams params;
  evc::TextTable table({"ambient [C]", "controller", "avg pack T [C]",
                        "dSoH const-T [%/cyc]", "dSoH thermal [%/cyc]",
                        "thermal factor"});

  for (double ambient : {43.0, 21.0, 0.0}) {
    const auto profile = evc::drive::make_cycle_profile(
        evc::drive::StandardCycle::kEceEudc, ambient);
    for (int which = 0; which < 2; ++which) {
      std::unique_ptr<evc::ctl::ClimateController> controller =
          which == 0 ? evc::core::make_onoff_controller(params)
                     : std::unique_ptr<evc::ctl::ClimateController>(
                           evc::core::make_mpc_controller(params));
      std::cerr << "  " << ambient << " C, " << controller->name() << "...\n";
      const ThermalRun r = run_thermal(params, profile, *controller);
      table.add_row({evc::TextTable::num(ambient, 0), controller->name(),
                     evc::TextTable::num(r.avg_pack_temp_c, 1),
                     evc::TextTable::num(r.delta_soh_const_t, 6),
                     evc::TextTable::num(r.delta_soh_thermal, 6),
                     evc::TextTable::num(
                         r.delta_soh_thermal / r.delta_soh_const_t, 2)});
    }
  }
  std::cout << table.render(
      "Ablation E — constant-T assumption (Eq. 15) vs pack thermal model");
  std::cout << "\nExpected shape: hot ambient accelerates fade (factor > 1), "
               "cold decelerates it;\nthe controller ranking within each "
               "ambient is unchanged.\n";
  return 0;
}
