// Table I — HVAC power consumption and SoH-degradation improvement for
// different ambient temperatures (43, 35, 32, 21, 10, 0 °C) on ECE_EUDC.
//
// Paper's shape: HVAC power is lowest for our methodology at every
// ambient; the SoH improvement grows with the HVAC load and peaks in the
// extreme cold (up to ~36 % vs fuzzy at 0 °C in the paper).
#include <iostream>

#include "bench_common.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const std::vector<double> ambients{43, 35, 32, 21, 10, 0};

  TextTable table({"ambient [C]", std::string(bench::kOnOff) + " [kW]",
                   std::string(bench::kFuzzy) + " [kW]",
                   std::string(bench::kOurs) + " [kW]",
                   "dSoH impr vs On/Off [%]", "dSoH impr vs Fuzzy [%]"});

  std::cerr << "  running " << ambients.size() << " ambients on "
            << (rt::ThreadPool::global().size() + 1) << " thread(s)...\n";
  const auto comparisons = rt::parallel_map<bench::CycleComparison>(
      ambients.size(), [&](std::size_t i) {
        return bench::run_cycle_comparison(drive::StandardCycle::kEceEudc,
                                           ambients[i]);
      });

  for (std::size_t i = 0; i < ambients.size(); ++i) {
    const double ambient = ambients[i];
    const auto& c = comparisons[i];
    table.add_row(
        {TextTable::num(ambient, 0),
         TextTable::num(c.onoff.avg_hvac_power_w / 1000.0, 2),
         TextTable::num(c.fuzzy.avg_hvac_power_w / 1000.0, 2),
         TextTable::num(c.mpc.avg_hvac_power_w / 1000.0, 2),
         TextTable::num(core::improvement_percent(c.onoff.delta_soh_percent,
                                                  c.mpc.delta_soh_percent),
                        2),
         TextTable::num(core::improvement_percent(c.fuzzy.delta_soh_percent,
                                                  c.mpc.delta_soh_percent),
                        2)});
  }

  std::cout << table.render(
      "Table I — HVAC power and dSoH improvement vs ambient (ECE_EUDC)");
  std::cout << "\nPaper's shape: conditioning load (and our advantage) "
               "grows toward both\ntemperature extremes; the largest dSoH "
               "improvement is at 0 C.\n";
  return 0;
}
