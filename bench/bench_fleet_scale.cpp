// Fleet-scale throughput envelope — machine-readable.
//
// Runs the batched fleet engine (rt::FleetEngine) at increasing fleet
// sizes over a shared UDDS drive cycle and emits, per size, the vehicles/s
// throughput and exact p50/p99/max per-step latency as JSON
// (BENCH_fleet.json in CI):
//   { "schema": "evclimate-fleet-bench-v1", "threads": T,
//     "benches": [ {"name","vehicles","steps_per_vehicle","total_steps",
//                   "wall_ns","vehicles_per_sec",
//                   "step_p50_ns","step_p99_ns","step_max_ns"}, ... ] }
//
// Steps per vehicle shrink as the fleet grows (the bench axis is batching
// overhead and scheduling, not trip length), and a short MPC horizon keeps
// a full sweep in CI budget. Same controller and plant stack as the paper
// benches — only the window is smaller.
//
// Usage: bench_fleet_scale [--out PATH] [--max-vehicles N] [--steps S]
//   --max-vehicles caps the sweep (default 8192)
//   --steps overrides the per-size step schedule with a fixed count
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "drivecycle/standard_cycles.hpp"
#include "obs/trace.hpp"
#include "runtime/fleet.hpp"
#include "runtime/thread_pool.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;

  std::string out_path = "BENCH_fleet.json";
  std::size_t max_vehicles = 8192;
  std::size_t steps_override = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") out_path = argv[i + 1];
    if (arg == "--max-vehicles")
      max_vehicles = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    if (arg == "--steps")
      steps_override = static_cast<std::size_t>(std::atoll(argv[i + 1]));
  }

  const auto profile =
      drive::make_cycle_profile(drive::StandardCycle::kUdds, 35.0);
  const core::EvParams params;
  rt::ThreadPool& pool = rt::ThreadPool::global();

  JsonWriter json;
  json.begin_object();
  json.key("schema").value("evclimate-fleet-bench-v1");
  json.key("threads").value(pool.size() + 1);
  json.key("benches");
  json.begin_array();

  for (const std::size_t n : {std::size_t{1}, std::size_t{64},
                              std::size_t{1024}, std::size_t{8192}}) {
    if (n > max_vehicles) continue;
    rt::FleetOptions opts;
    opts.vehicles = n;
    // Measurement-stable step counts: long trips for tiny fleets, short
    // ones once the vehicle count itself provides the sample mass.
    opts.max_steps_per_vehicle =
        steps_override != 0
            ? steps_override
            : std::max<std::size_t>(8, std::min<std::size_t>(256, 4096 / n));
    // Small window: the axis here is batching, not solver depth.
    opts.mpc.horizon = 6;
    rt::FleetEngine engine(params, profile, opts);
    const rt::FleetSummary summary = engine.run(pool);

    json.begin_object();
    json.key("name").value("fleet_n" + std::to_string(n));
    json.key("vehicles").value(n);
    json.key("steps_per_vehicle").value(opts.max_steps_per_vehicle);
    json.key("total_steps").value(summary.total_steps);
    json.key("wall_ns").value(summary.wall_ns);
    json.key("vehicles_per_sec").value(summary.vehicles_per_second);
    json.key("step_p50_ns").value(summary.step_p50_ns);
    json.key("step_p99_ns").value(summary.step_p99_ns);
    json.key("step_max_ns").value(summary.step_max_ns);
    json.end_object();
    std::cerr << "  fleet_n" << n << ": "
              << summary.vehicles_per_second << " vehicles/s, p99 step "
              << summary.step_p99_ns / 1000 << " us\n";
  }

  json.end_array();
  json.end_object();

  std::ofstream out(out_path);
  out << json.str() << "\n";
  if (!out) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}
