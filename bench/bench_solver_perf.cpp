// Solver perf envelope — machine-readable.
//
// Times the optimization hot path (dense QP, SQP on one MPC window, warm
// receding-horizon planning) and emits per-bench wall time plus the QP
// workspace's perf counters as JSON (BENCH_solver.json in CI). Unlike
// bench_micro_optim (google-benchmark, human-oriented), this harness is
// plain chrono so the output schema is ours and diffable across runs:
//   { "benches": [ {"name", "reps", "wall_ns", "ns_per_rep",
//                   "solver": {<QpPerfCounters>}, ...}, ... ] }
//
// Usage: bench_solver_perf [--out PATH]   (default BENCH_solver.json)
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "battery/battery_params.hpp"
#include "core/metrics_json.hpp"
#include "core/mpc_controller.hpp"
#include "hvac/hvac_params.hpp"
#include "numerics/factorization.hpp"
#include "optim/dense_active_set.hpp"
#include "optim/qp.hpp"
#include "optim/sqp.hpp"
#include "util/json.hpp"
#include "util/random.hpp"
#include "obs/trace.hpp"

namespace {

using namespace evc;
using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

opt::QpProblem random_qp(std::size_t n, std::size_t mi, std::uint64_t seed) {
  SplitMix64 rng(seed);
  opt::QpProblem p;
  num::Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1, 1);
  p.h = g.transposed() * g;
  for (std::size_t i = 0; i < n; ++i) p.h(i, i) += 1.0;
  p.g = num::Vector(n);
  for (std::size_t i = 0; i < n; ++i) p.g[i] = rng.uniform(-2, 2);
  p.e_mat = num::Matrix(0, n);
  p.e_vec = num::Vector(0);
  p.a_mat = num::Matrix(mi, n);
  p.b_vec = num::Vector(mi);
  for (std::size_t r = 0; r < mi; ++r) {
    for (std::size_t c = 0; c < n; ++c) p.a_mat(r, c) = rng.uniform(-1, 1);
    p.b_vec[r] = rng.uniform(0.5, 2.0);
  }
  return p;
}

core::MpcFormulation make_window_formulation(std::size_t horizon) {
  core::MpcWindowData w;
  w.dt_s = 5.0;
  w.initial_cabin_temp_c = 25.5;
  w.initial_soc_percent = 88.0;
  w.fixed_power_kw.assign(horizon, 9.0);
  w.outside_temp_c.assign(horizon, 35.0);
  return core::MpcFormulation(hvac::default_hvac_params(),
                              bat::leaf_24kwh_params(), core::MpcWeights{},
                              w);
}

void write_counters(JsonWriter& json, const opt::QpPerfCounters& c) {
  json.begin_object();
  json.key("solves").value(c.solves);
  json.key("ipm_iterations").value(c.ipm_iterations);
  json.key("factorizations").value(c.factorizations);
  json.key("schur_solves").value(c.schur_solves);
  json.key("schur_regularizations").value(c.schur_regularizations);
  json.key("dense_fallbacks").value(c.dense_fallbacks);
  json.key("timeouts").value(c.timeouts);
  json.key("warm_starts").value(c.warm_starts);
  json.key("workspace_growths").value(c.workspace_growths);
  json.key("peak_workspace_bytes").value(c.peak_workspace_bytes);
  json.key("condensed_solves").value(c.condensed_solves);
  json.key("condense_rebuilds").value(c.condense_rebuilds);
  json.key("active_set_changes").value(c.active_set_changes);
  json.key("solve_time_ns").value(c.solve_time_ns);
  json.key("factorize_time_ns").value(c.factorize_time_ns);
  json.key("timeout_time_ns").value(c.timeout_time_ns);
  json.end_object();
}

void write_bench_header(JsonWriter& json, const std::string& name,
                        std::size_t reps, std::uint64_t wall_ns) {
  json.begin_object();
  json.key("name").value(name);
  json.key("reps").value(reps);
  json.key("wall_ns").value(wall_ns);
  json.key("ns_per_rep").value(wall_ns / (reps > 0 ? reps : 1));
}

}  // namespace

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];

  JsonWriter json;
  json.begin_object();
  json.key("schema").value("evclimate-solver-bench-v1");
  json.key("benches");
  json.begin_array();

  // Dense QP, fresh workspace per solve (the legacy entry point).
  {
    const std::size_t n = 60;
    const auto problem = random_qp(n, 2 * n, 42);
    const std::size_t reps = 20;
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      const auto result = opt::solve_qp(problem);
      if (!result.usable()) return 1;
    }
    write_bench_header(json, "qp_dense_n60_cold", reps, ns_since(start));
    json.end_object();
    std::cerr << "  qp_dense_n60_cold done\n";
  }

  // Dense QP, persistent workspace + warm start from the previous solve —
  // the receding-horizon pattern. workspace_growths stays at the first
  // solve's value: the steady-state loop is allocation-free.
  {
    const std::size_t n = 60;
    const auto problem = random_qp(n, 2 * n, 42);
    const std::size_t reps = 20;
    opt::QpWorkspace ws;
    opt::QpWarmStart warm;
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      const auto result =
          opt::solve_qp(problem, {}, ws, warm.empty() ? nullptr : &warm);
      if (!result.usable()) return 1;
      warm.x = result.x;
      warm.y_eq = result.y_eq;
      warm.z_ineq = result.z_ineq;
    }
    write_bench_header(json, "qp_dense_n60_workspace", reps,
                       ns_since(start));
    json.key("solver");
    write_counters(json, ws.counters());
    json.end_object();
    std::cerr << "  qp_dense_n60_workspace done\n";
  }

  // SQP on one MPC window, duals chained across solves.
  {
    const auto f = make_window_formulation(12);
    core::MpcOptions opts;
    const opt::SqpSolver solver(opts.sqp);
    const num::Vector z0 = f.cold_start();
    const std::size_t reps = 20;
    opt::SqpWarmStart warm;
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      const auto result =
          solver.solve(f, z0, warm.empty() ? nullptr : &warm);
      if (!result.usable()) return 1;
      warm.y_eq = result.y_eq;
      warm.z_ineq = result.z_ineq;
    }
    write_bench_header(json, "sqp_mpc_window_h12", reps, ns_since(start));
    json.key("solver");
    write_counters(json, solver.qp_counters());
    json.end_object();
    std::cerr << "  sqp_mpc_window_h12 done\n";
  }

  // Warm receding-horizon planning: the controller replans every step_s
  // with shifted primal + carried duals, exactly the closed-loop hot path.
  {
    core::MpcClimateController mpc(hvac::default_hvac_params(),
                                   bat::leaf_24kwh_params());
    ctl::ControlContext c;
    c.dt_s = 1.0;
    c.cabin_temp_c = 25.0;
    c.outside_temp_c = 35.0;
    c.soc_percent = 88.0;
    c.motor_power_forecast_w.assign(120, 9e3);
    c.outside_temp_forecast_c.assign(120, 35.0);
    // Untimed warm-up: let the receding-horizon replan reach its steady
    // state (primal/dual warm starts settled, SQP at its fixed point) so
    // the timed section measures the warm plan step the name claims, not
    // the cold transient.
    const std::size_t warmup = 24;
    for (std::size_t r = 0; r < warmup; ++r) {
      mpc.decide(c);
      c.time_s += mpc.options().step_s;
    }
    const std::size_t plans = 40;
    const auto start = Clock::now();
    for (std::size_t r = 0; r < plans; ++r) {
      mpc.decide(c);
      c.time_s += mpc.options().step_s;  // next call replans
    }
    write_bench_header(json, "mpc_plan_step_warm", plans, ns_since(start));
    json.key("mpc").raw_value(core::to_json(mpc.stats()));
    json.end_object();
    std::cerr << "  mpc_plan_step_warm done\n";
  }

  // Same warm receding-horizon scenario through the condensed backend — the
  // same-session A/B against mpc_plan_step_warm above. Overrides any
  // EVC_MPC_BACKEND setting so both rows are always present.
  {
    core::MpcOptions opts;
    opts.sqp.backend = opt::QpBackend::kCondensed;
    core::MpcClimateController mpc(hvac::default_hvac_params(),
                                   bat::leaf_24kwh_params(), opts);
    ctl::ControlContext c;
    c.dt_s = 1.0;
    c.cabin_temp_c = 25.0;
    c.outside_temp_c = 35.0;
    c.soc_percent = 88.0;
    c.motor_power_forecast_w.assign(120, 9e3);
    c.outside_temp_forecast_c.assign(120, 35.0);
    // Same untimed warm-up as the sparse row above — the A/B compares
    // steady-state warm plan steps on both backends.
    const std::size_t warmup = 24;
    for (std::size_t r = 0; r < warmup; ++r) {
      mpc.decide(c);
      c.time_s += mpc.options().step_s;
    }
    const std::size_t plans = 40;
    const auto start = Clock::now();
    for (std::size_t r = 0; r < plans; ++r) {
      mpc.decide(c);
      c.time_s += mpc.options().step_s;  // next call replans
    }
    const std::uint64_t wall = ns_since(start);
    if (mpc.stats().solver.condensed_solves == 0) {
      std::cerr << "condensed backend never engaged in "
                   "mpc_plan_step_condensed_warm\n";
      return 1;
    }
    write_bench_header(json, "mpc_plan_step_condensed_warm", plans, wall);
    json.key("mpc").raw_value(core::to_json(mpc.stats()));
    json.end_object();
    std::cerr << "  mpc_plan_step_condensed_warm done\n";
  }

  // Warm active-set resolve in isolation: one dense QP, g nudged slightly
  // each rep, previous working set seeding the next solve — the inner
  // kernel of the condensed plan step.
  {
    const std::size_t n = 60;
    const auto problem = random_qp(n, 2 * n, 42);
    num::CholeskyFactorization h_chol;
    if (!h_chol.factorize(problem.h)) return 1;
    opt::DenseActiveSetSolver active_set;
    opt::DenseActiveSetOptions as_opts;
    num::Vector v(n), lambda(2 * n);
    num::Vector g = problem.g;
    std::vector<std::size_t> warm;
    // Cold solve outside the timer establishes the working set.
    if (!active_set
             .solve(h_chol, problem.h, problem.a_mat, g, problem.b_vec, warm,
                    as_opts, v, lambda)
             .usable())
      return 1;
    const std::size_t reps = 200;
    SplitMix64 rng(7);
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      warm = active_set.active_set();
      for (std::size_t i = 0; i < n; ++i)
        g[i] = problem.g[i] + 1e-3 * rng.uniform(-1, 1);
      const auto out = active_set.solve(h_chol, problem.h, problem.a_mat, g,
                                        problem.b_vec, warm, as_opts, v,
                                        lambda);
      if (!out.usable()) return 1;
    }
    write_bench_header(json, "dense_active_set_resolve", reps,
                       ns_since(start));
    json.end_object();
    std::cerr << "  dense_active_set_resolve done\n";
  }

  json.end_array();
  json.end_object();

  const std::string doc = json.str();
  std::ofstream out(out_path);
  out << doc << "\n";
  if (!out) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << doc << "\n";
  return 0;
}
