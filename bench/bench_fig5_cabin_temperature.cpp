// Fig. 5 — Cabin temperature traces for the three controllers on the same
// drive profile (ECE_EUDC, hot ambient, identical comfort settings).
//
// The paper's exhibit: On/Off oscillates across several degrees (left
// axis), fuzzy holds the target within fractions of a degree, and the MPC
// wiggles deliberately around the target as it trades cabin heat against
// motor-power peaks (right axis).
//
// The bench writes the three traces to fig5_cabin_temperature.csv and
// prints oscillation statistics per controller.
#include <iostream>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "util/stats.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  core::ClimateSimulation sim(params);

  TextTable table({"controller", "mean Tz [C]", "min Tz [C]", "max Tz [C]",
                   "oscillation [C]", "rms error [C]"});
  sim::StateRecorder merged;

  const auto run = [&](ctl::ClimateController& controller,
                       const std::string& label) {
    std::cerr << "  running " << label << "...\n";
    const auto result = sim.run(controller, profile);
    const auto& tz = result.recorder.values("cabin_temp_c");
    const auto& t = result.recorder.times("cabin_temp_c");
    for (std::size_t i = 0; i < tz.size(); ++i)
      merged.record(label, t[i], tz[i]);
    table.add_row({label, TextTable::num(mean_of(tz), 3),
                   TextTable::num(min_of(tz), 3),
                   TextTable::num(max_of(tz), 3),
                   TextTable::num(max_of(tz) - min_of(tz), 3),
                   TextTable::num(result.metrics.comfort.rms_error_c, 3)});
  };

  auto onoff = core::make_onoff_controller(params);
  run(*onoff, bench::kOnOff);
  auto fuzzy = core::make_fuzzy_controller(params);
  run(*fuzzy, bench::kFuzzy);
  auto mpc = core::make_mpc_controller(params);
  run(*mpc, bench::kOurs);

  merged.write_csv("fig5_cabin_temperature.csv");
  std::cout << table.render(
      "Fig. 5 — Cabin temperature regulation, ECE_EUDC @ 35 C (target 24 C)");
  std::cout << "\nTraces written to fig5_cabin_temperature.csv.\n"
            << "Paper's shape: On/Off oscillates across degrees; fuzzy and "
               "MPC hold the target\nwithin fractions of a degree.\n";
  return 0;
}
