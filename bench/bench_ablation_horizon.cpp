// Ablation A — MPC control-window length (paper §III: "The larger the
// control window, the more variables there are to optimize and much more
// flexibility …").
//
// Sweeps the horizon N on ECE_EUDC @ 35 C and reports the power/ΔSoH/
// comfort trade-off plus planning effort. Expected shape: ΔSoH improves
// with lookahead and saturates once the window covers the dominant
// motor-power peaks (~1 minute); planning cost grows superlinearly.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace evc;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;
  opts.forecast_horizon_s = 240.0;

  TextTable table({"horizon N", "window [s]", "avg HVAC [kW]",
                   "dSoH [%/cycle]", "SoC dev [%]", "rms Tz err [C]",
                   "sim time [s]", "SQP iters/plan"});

  for (std::size_t horizon : {2u, 4u, 8u, 12u, 16u, 24u}) {
    std::cerr << "  horizon " << horizon << "...\n";
    core::MpcOptions mpc_opts;
    mpc_opts.horizon = horizon;
    auto mpc = core::make_mpc_controller(params, mpc_opts);
    const auto start = std::chrono::steady_clock::now();
    const auto result = sim.run(*mpc, profile, opts);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const auto& m = result.metrics;
    const auto& stats = mpc->stats();
    table.add_row(
        {TextTable::num(horizon, 0),
         TextTable::num(static_cast<double>(horizon) * mpc_opts.step_s, 0),
         TextTable::num(m.avg_hvac_power_w / 1000.0, 3),
         TextTable::num(m.delta_soh_percent, 6),
         TextTable::num(m.stress.soc_deviation, 3),
         TextTable::num(m.comfort.rms_error_c, 3),
         TextTable::num(secs, 1),
         TextTable::num(static_cast<double>(stats.sqp_iterations) /
                            static_cast<double>(stats.plans), 1)});
  }

  std::cout << table.render(
      "Ablation A — MPC horizon sweep, ECE_EUDC @ 35 C");
  return 0;
}
