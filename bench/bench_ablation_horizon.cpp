// Ablation A — MPC control-window length (paper §III: "The larger the
// control window, the more variables there are to optimize and much more
// flexibility …").
//
// Sweeps the horizon N on ECE_EUDC @ 35 C and reports the power/ΔSoH/
// comfort trade-off plus planning effort. Expected shape: ΔSoH improves
// with lookahead and saturates once the window covers the dominant
// motor-power peaks (~1 minute); planning cost grows superlinearly.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;
  opts.forecast_horizon_s = 240.0;

  TextTable table({"horizon N", "window [s]", "avg HVAC [kW]",
                   "dSoH [%/cycle]", "SoC dev [%]", "rms Tz err [C]",
                   "sim time [s]", "SQP iters/plan"});

  const std::vector<std::size_t> horizons{2, 4, 8, 12, 16, 24};
  struct HorizonRun {
    core::TripMetrics metrics;
    core::MpcPlanStats stats;
    double step_s = 0.0;
    double secs = 0.0;
  };
  std::cerr << "  running " << horizons.size() << " horizons on "
            << (rt::ThreadPool::global().size() + 1) << " thread(s)...\n";
  // ClimateSimulation::run is const; each scenario owns its controller.
  const auto runs = rt::parallel_map<HorizonRun>(
      horizons.size(), [&](std::size_t i) {
        core::MpcOptions mpc_opts;
        mpc_opts.horizon = horizons[i];
        auto mpc = core::make_mpc_controller(params, mpc_opts);
        const auto start = std::chrono::steady_clock::now();
        const auto result = sim.run(*mpc, profile, opts);
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        return HorizonRun{result.metrics, mpc->stats(), mpc_opts.step_s,
                          secs};
      });

  for (std::size_t i = 0; i < horizons.size(); ++i) {
    const std::size_t horizon = horizons[i];
    const auto& m = runs[i].metrics;
    const auto& stats = runs[i].stats;
    table.add_row(
        {TextTable::num(horizon, 0),
         TextTable::num(static_cast<double>(horizon) * runs[i].step_s, 0),
         TextTable::num(m.avg_hvac_power_w / 1000.0, 3),
         TextTable::num(m.delta_soh_percent, 6),
         TextTable::num(m.stress.soc_deviation, 3),
         TextTable::num(m.comfort.rms_error_c, 3),
         TextTable::num(runs[i].secs, 1),
         TextTable::num(static_cast<double>(stats.sqp_iterations) /
                            static_cast<double>(stats.plans), 1)});
  }

  std::cout << table.render(
      "Ablation A — MPC horizon sweep, ECE_EUDC @ 35 C");
  return 0;
}
