// Fig. 1 — Percentages of three types of power consumption in an EV and an
// ICE vehicle for different ambient temperatures (the motivational study).
//
// The paper reads these shares off published Tesla Model S / Toyota Corolla
// data; offline we regenerate them from our EV model (fuzzy-controlled
// HVAC, the typical production behaviour) and the analytic ICE comparison
// vehicle, over an urban UDDS trip at each ambient temperature.
//
// Reproduction target: HVAC share in the EV is large and roughly symmetric
// in hot and cold (the electric motor wastes no heat), while the ICE
// vehicle heats almost for free and only pays for A/C — and the EV's HVAC
// share exceeds the ICE vehicle's at every extreme.
#include <iostream>

#include "bench_common.hpp"
#include "core/ice_model.hpp"
#include "core/simulation.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const std::vector<double> ambients{-10, 0, 10, 21, 32, 43};

  TextTable table({"ambient [C]", "EV motor [%]", "EV HVAC [%]",
                   "EV acc [%]", "ICE engine [%]", "ICE HVAC [%]",
                   "ICE acc [%]"});

  for (double ambient : ambients) {
    std::cerr << "  ambient " << ambient << " C...\n";
    const auto profile =
        drive::make_cycle_profile(drive::StandardCycle::kUdds, ambient);

    // EV shares from the closed-loop simulation with the fuzzy controller.
    const core::EvParams params;
    core::ClimateSimulation sim(params);
    auto ctl = core::make_fuzzy_controller(params);
    core::SimulationOptions opts;
    opts.record_traces = false;
    const auto result = sim.run(*ctl, profile, opts);
    const auto& m = result.metrics;
    // Motor share counts the net traction draw; accessories are fixed.
    const double ev_motor = m.avg_motor_power_w;
    const double ev_hvac = m.avg_hvac_power_w;
    const double ev_acc = params.vehicle.accessory_power_w;
    const double ev_total = ev_motor + ev_hvac + ev_acc;

    // ICE shares from the analytic comparison vehicle.
    const core::IceVehicleModel ice;
    const core::PowerShare ice_share = ice.average_power_share(profile);

    table.add_row({TextTable::num(ambient, 0),
                   TextTable::percent(100.0 * ev_motor / ev_total, 1),
                   TextTable::percent(100.0 * ev_hvac / ev_total, 1),
                   TextTable::percent(100.0 * ev_acc / ev_total, 1),
                   TextTable::percent(100.0 * ice_share.propulsion_w /
                                          ice_share.total(), 1),
                   TextTable::percent(100.0 * ice_share.hvac_w /
                                          ice_share.total(), 1),
                   TextTable::percent(100.0 * ice_share.accessories_w /
                                          ice_share.total(), 1)});
  }

  std::cout << table.render(
      "Fig. 1 — EV vs ICE power share by ambient temperature (UDDS)");
  std::cout << "\nPaper's qualitative claims: EV HVAC share up to ~20%+ and "
               "symmetric hot/cold;\nICE HVAC share <= ~9%, heating nearly "
               "free (engine waste heat).\n";
  return 0;
}
