// Robustness study — sensor/actuator faults against the fault-tolerant
// supervisor (docs/ROBUSTNESS.md).
//
// Sweeps a deterministic fault schedule (sensor dropout, spikes, stuck SoC,
// stale forecasts) over increasing rates, plus a tier with a deliberately
// starved MPC solve budget (periodic solver timeouts), and runs the
// supervised chain full MPC → relaxed MPC → PID → On/Off on the fig. 5
// scenario (ECE_EUDC @ 35 °C). For each scenario it reports:
//   * comfort-violation time (fraction of the trip outside the band),
//   * ΔSoH of the cycle and HVAC energy,
//   * fallback occupancy: fraction of steps actuated by each tier,
//   * a finiteness audit of every recorded plant state (must be 100 %).
//
// Flags: --steps N   truncate the cycle to N control steps (CI smoke)
//        --out PATH  write the machine-readable JSON artifact
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics_json.hpp"
#include "core/simulation.hpp"
#include "sim/fault_injection.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "obs/trace.hpp"

namespace {

using namespace evc;

struct Scenario {
  std::string label;
  double dropout_rate = 0.0;  ///< cabin + SoC sensor dropout rate
  double spike_rate = 0.0;    ///< ambient sensor spike rate
  double stuck_rate = 0.0;    ///< SoC stuck-at rate
  double stale_rate = 0.0;    ///< motor forecast stale-sample rate
  bool starve_solver = false; ///< tight MPC budget → periodic timeouts
};

std::vector<sim::FaultSpec> make_schedule(const Scenario& s) {
  std::vector<sim::FaultSpec> specs;
  if (s.dropout_rate > 0.0) {
    specs.push_back({sim::FaultSignal::kCabinTemp, sim::FaultKind::kDropout,
                     s.dropout_rate, 0.0, 3});
    specs.push_back({sim::FaultSignal::kSoc, sim::FaultKind::kDropout,
                     s.dropout_rate, 0.0, 3});
  }
  if (s.spike_rate > 0.0)
    specs.push_back({sim::FaultSignal::kOutsideTemp, sim::FaultKind::kSpike,
                     s.spike_rate, 40.0, 1});
  if (s.stuck_rate > 0.0)
    specs.push_back({sim::FaultSignal::kSoc, sim::FaultKind::kStuckAt,
                     s.stuck_rate, 150.0, 5});
  if (s.stale_rate > 0.0)
    specs.push_back({sim::FaultSignal::kMotorForecast,
                     sim::FaultKind::kStaleSample, s.stale_rate, 0.0, 10});
  return specs;
}

struct ScenarioResult {
  core::TripMetrics metrics;
  ctl::SupervisorStats supervisor;
  sim::FaultInjectionStats faults;
  core::MpcPlanStats mpc;
  std::vector<std::string> tier_names;
  std::size_t nonfinite_samples = 0;
  std::size_t audited_samples = 0;
};

ScenarioResult run_scenario(const core::EvParams& params,
                            const drive::DriveProfile& profile,
                            const Scenario& s) {
  core::MpcOptions mpc_options;
  mpc_options.accessory_power_w = params.vehicle.accessory_power_w;
  if (s.starve_solver) {
    // A budget far below the typical plan solve time: the full-MPC tier
    // periodically times out and the supervisor must ride the chain.
    mpc_options.sqp.time_budget_s = 200e-6;
  }
  ctl::SupervisorOptions sup_options;
  auto supervised =
      core::make_supervised_mpc_controller(params, mpc_options, sup_options);

  sim::FaultInjector injector(make_schedule(s), /*seed=*/2024);
  core::SimulationOptions sim_options;
  sim_options.record_traces = true;
  sim_options.fault_injector = &injector;

  core::ClimateSimulation simulation(params);
  const core::SimulationResult result =
      simulation.run(*supervised, profile, sim_options);

  ScenarioResult out;
  out.metrics = result.metrics;
  out.supervisor = supervised->stats();
  out.faults = injector.stats();
  for (std::size_t i = 0; i < supervised->num_tiers(); ++i)
    out.tier_names.push_back(supervised->tier_name(i));
  // Plan stats of the preferred tier (the full MPC): the solver-outcome
  // counters are the interesting signal in the timeout scenarios.
  if (const auto* mpc = dynamic_cast<const core::MpcClimateController*>(
          &supervised->tier(0)))
    out.mpc = mpc->stats();

  // Finiteness audit over every recorded plant channel.
  for (const std::string& channel : result.recorder.channels()) {
    for (double v : result.recorder.values(channel)) {
      ++out.audited_samples;
      if (!std::isfinite(v)) ++out.nonfinite_samples;
    }
  }
  return out;
}

void write_json(const std::string& path, const drive::DriveProfile& profile,
                const std::vector<Scenario>& scenarios,
                const std::vector<ScenarioResult>& results) {
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("robustness_faults");
  json.key("cycle").value(profile.name());
  json.key("ambient_c").value(bench::kDefaultAmbientC);
  json.key("steps").value(profile.size());
  json.key("scenarios");
  json.begin_array();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    const ScenarioResult& r = results[i];
    json.begin_object();
    json.key("label").value(s.label);
    json.key("dropout_rate").value(s.dropout_rate);
    json.key("spike_rate").value(s.spike_rate);
    json.key("stuck_rate").value(s.stuck_rate);
    json.key("stale_rate").value(s.stale_rate);
    json.key("starve_solver").value(s.starve_solver);
    json.key("comfort_violation_fraction")
        .value(r.metrics.comfort.fraction_outside);
    json.key("delta_soh_percent").value(r.metrics.delta_soh_percent);
    json.key("hvac_energy_j").value(r.metrics.hvac_energy_j);
    json.key("nonfinite_samples").value(r.nonfinite_samples);
    json.key("audited_samples").value(r.audited_samples);
    json.key("tier_names");
    json.begin_array();
    for (const std::string& name : r.tier_names) json.value(name);
    json.end_array();
    json.key("metrics").raw_value(core::to_json(r.metrics));
    json.key("supervisor").raw_value(core::to_json(r.supervisor));
    json.key("faults").raw_value(core::to_json(r.faults));
    json.key("mpc").raw_value(core::to_json(r.mpc));
    json.end_object();
  }
  json.end_array();
  json.end_object();

  std::ofstream file(path);
  file << json.str() << "\n";
  std::cerr << "  wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  const ArgParser args(argc, argv);
  const long steps = args.get_int("steps", 0);
  const std::string out_path = args.get_string("out", "");
  args.reject_unknown({"steps", "out"});

  const core::EvParams params;
  drive::DriveProfile profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  if (steps > 0)
    profile = profile.window(0, static_cast<std::size_t>(steps));

  const std::vector<Scenario> scenarios = {
      {"clean (no faults)", 0.0, 0.0, 0.0, 0.0, false},
      {"dropout 1%", 0.01, 0.0, 0.0, 0.0, false},
      {"dropout 5% + spikes", 0.05, 0.02, 0.0, 0.0, false},
      {"dropout 5% + solver timeouts", 0.05, 0.0, 0.0, 0.02, true},
      {"dropout 10% + stuck SoC", 0.10, 0.02, 0.01, 0.02, false},
  };

  std::cerr << "  running " << scenarios.size() << " fault scenarios on "
            << (rt::ThreadPool::global().size() + 1) << " thread(s)...\n";
  const auto results = rt::parallel_map<ScenarioResult>(
      scenarios.size(),
      [&](std::size_t i) { return run_scenario(params, profile, scenarios[i]); });

  TextTable table({"scenario", "comfort viol [%]", "dSoH [%/cycle]",
                   "HVAC [kWh]", "sanitized", "fallback occupancy",
                   "non-finite"});
  bool all_finite = true;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::string occupancy;
    const double total = static_cast<double>(std::max<std::size_t>(
        r.supervisor.steps, 1));
    for (std::size_t tier = 0; tier < r.supervisor.tier_steps.size(); ++tier) {
      if (r.supervisor.tier_steps[tier] == 0) continue;
      if (!occupancy.empty()) occupancy += " ";
      occupancy += r.tier_names[tier] + ":" +
                   TextTable::num(100.0 *
                                      static_cast<double>(
                                          r.supervisor.tier_steps[tier]) /
                                      total,
                                  1) +
                   "%";
    }
    if (r.nonfinite_samples > 0) all_finite = false;
    table.add_row(
        {scenarios[i].label,
         TextTable::num(100.0 * r.metrics.comfort.fraction_outside, 2),
         TextTable::num(r.metrics.delta_soh_percent, 6),
         TextTable::num(r.metrics.hvac_energy_j / 3.6e6, 3),
         std::to_string(r.supervisor.sanitized_values), occupancy,
         std::to_string(r.nonfinite_samples) + "/" +
             std::to_string(r.audited_samples)});
  }

  std::cout << table.render(
      "Robustness — supervised MPC under sensor faults, ECE_EUDC @ 35 C");
  std::cout << "\nExpected shape: the clean run matches the unsupervised MPC "
               "bit-exactly; rising\nfault rates shift occupancy toward the "
               "fallback tiers while every recorded\nstate stays finite and "
               "comfort degrades gracefully rather than diverging.\n";

  if (!out_path.empty())
    write_json(out_path, profile, scenarios, results);

  return all_finite ? 0 : 1;
}
