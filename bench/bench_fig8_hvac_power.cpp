// Fig. 8 — Average HVAC power consumption for different drive profiles
// (NEDC, US06, ECE_EUDC, SC03, UDDS), same comfort settings everywhere.
//
// Paper's shape: our methodology minimizes power on every profile —
// on average ~39 % below On/Off and ~6 % below fuzzy.
#include <iostream>

#include "bench_common.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const auto comparisons = bench::run_all_cycles(bench::kDefaultAmbientC);

  TextTable table({"drive profile", std::string(bench::kOnOff) + " [kW]",
                   std::string(bench::kFuzzy) + " [kW]",
                   std::string(bench::kOurs) + " [kW]"});
  double vs_onoff_acc = 0.0, vs_fuzzy_acc = 0.0;
  for (const auto& c : comparisons) {
    table.add_row({c.cycle_name,
                   TextTable::num(c.onoff.avg_hvac_power_w / 1000.0, 2),
                   TextTable::num(c.fuzzy.avg_hvac_power_w / 1000.0, 2),
                   TextTable::num(c.mpc.avg_hvac_power_w / 1000.0, 2)});
    vs_onoff_acc += core::improvement_percent(c.onoff.avg_hvac_power_w,
                                              c.mpc.avg_hvac_power_w);
    vs_fuzzy_acc += core::improvement_percent(c.fuzzy.avg_hvac_power_w,
                                              c.mpc.avg_hvac_power_w);
  }

  std::cout << table.render(
      "Fig. 8 — Average HVAC power by drive profile (35 C ambient)");
  const double n = static_cast<double>(comparisons.size());
  std::cout << "\nOurs vs On/Off: "
            << TextTable::num(vs_onoff_acc / n, 1)
            << "% lower on average (paper: ~39%)\nOurs vs fuzzy:  "
            << TextTable::num(vs_fuzzy_acc / n, 1)
            << "% lower on average (paper: ~6%)\n";
  return 0;
}
