// Ablation C — SQP depth. The paper chose SQP because "the system model
// equations are nonlinear and non-convex" (§III). This ablation compares:
//   * single-QP: one linearization per plan (LTV-MPC style),
//   * shallow SQP (3 iterations),
//   * the default (8 iterations),
// quantifying what the sequential re-linearization buys on the bilinear
// HVAC model.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;

  TextTable table({"solver variant", "avg HVAC [kW]", "dSoH [%/cycle]",
                   "rms Tz err [C]", "plan failures", "sim time [s]"});

  for (std::size_t iters : {1u, 3u, 8u}) {
    std::cerr << "  SQP iterations = " << iters << "...\n";
    core::MpcOptions mpc_opts;
    mpc_opts.sqp.max_iterations = iters;
    auto mpc = core::make_mpc_controller(params, mpc_opts);
    const auto start = std::chrono::steady_clock::now();
    const auto result = sim.run(*mpc, profile, opts);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const auto& m = result.metrics;
    const std::string label =
        iters == 1 ? "single QP (one linearization)"
                   : "SQP, " + std::to_string(iters) + " iterations";
    table.add_row({label, TextTable::num(m.avg_hvac_power_w / 1000.0, 3),
                   TextTable::num(m.delta_soh_percent, 6),
                   TextTable::num(m.comfort.rms_error_c, 3),
                   TextTable::num(mpc->stats().failures, 0),
                   TextTable::num(secs, 1)});
  }

  std::cout << table.render(
      "Ablation C — SQP depth on the bilinear MPC, ECE_EUDC @ 35 C");
  return 0;
}
