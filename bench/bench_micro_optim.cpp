// Micro-benchmarks (google-benchmark): per-call latency of the hot kernels
// behind the figures — the dense QP solve, a full SQP solve of one MPC
// window, a single MPC planning step, and the plant/battery models.
//
// These bound the controller's real-time budget: the paper's methodology
// is only deployable if a plan completes well within the control period.
#include <benchmark/benchmark.h>

#include "battery/battery_pack.hpp"
#include <string>

#include "core/mpc_controller.hpp"
#include "hvac/hvac_plant.hpp"
#include "optim/condensed_qp.hpp"
#include "optim/qp.hpp"
#include "optim/sqp.hpp"
#include "powertrain/power_train.hpp"
#include "obs/trace.hpp"
#include "util/random.hpp"

namespace {

using namespace evc;

/// Tag an MPC-path record with the QP engine it actually exercised, so
/// A/B runs under EVC_MPC_BACKEND=... stay distinguishable in stored
/// benchmark JSON.
void set_backend_label(benchmark::State& state, opt::QpBackend backend) {
  state.SetLabel(std::string("backend=") + opt::to_string(backend));
}

opt::QpProblem random_qp(std::size_t n, std::size_t mi, std::uint64_t seed) {
  SplitMix64 rng(seed);
  opt::QpProblem p;
  num::Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1, 1);
  p.h = g.transposed() * g;
  for (std::size_t i = 0; i < n; ++i) p.h(i, i) += 1.0;
  p.g = num::Vector(n);
  for (std::size_t i = 0; i < n; ++i) p.g[i] = rng.uniform(-2, 2);
  p.e_mat = num::Matrix(0, n);
  p.e_vec = num::Vector(0);
  p.a_mat = num::Matrix(mi, n);
  p.b_vec = num::Vector(mi);
  for (std::size_t r = 0; r < mi; ++r) {
    for (std::size_t c = 0; c < n; ++c) p.a_mat(r, c) = rng.uniform(-1, 1);
    p.b_vec[r] = rng.uniform(0.5, 2.0);
  }
  return p;
}

void BM_QpSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = random_qp(n, 2 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_qp(problem));
  }
}
BENCHMARK(BM_QpSolve)->Arg(20)->Arg(60)->Arg(134);

// Same QP through a persistent workspace with the previous solution as a
// warm start — the receding-horizon usage pattern (allocation-free at
// steady state).
void BM_QpSolveWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = random_qp(n, 2 * n, 42);
  opt::QpWorkspace ws;
  opt::QpWarmStart warm;
  for (auto _ : state) {
    const auto result =
        opt::solve_qp(problem, {}, ws, warm.empty() ? nullptr : &warm);
    benchmark::DoNotOptimize(result);
    warm.x = result.x;
    warm.y_eq = result.y_eq;
    warm.z_ineq = result.z_ineq;
  }
}
BENCHMARK(BM_QpSolveWorkspace)->Arg(20)->Arg(60)->Arg(134);

core::MpcFormulation make_window_formulation(std::size_t horizon) {
  core::MpcWindowData w;
  w.dt_s = 5.0;
  w.initial_cabin_temp_c = 25.5;
  w.initial_soc_percent = 88.0;
  w.fixed_power_kw.assign(horizon, 9.0);
  w.outside_temp_c.assign(horizon, 35.0);
  return core::MpcFormulation(hvac::default_hvac_params(),
                              bat::leaf_24kwh_params(), core::MpcWeights{},
                              w);
}

void BM_SqpMpcWindow(benchmark::State& state) {
  const auto horizon = static_cast<std::size_t>(state.range(0));
  const auto f = make_window_formulation(horizon);
  core::MpcOptions opts;
  const opt::SqpSolver solver(opts.sqp);
  const num::Vector z0 = f.cold_start();
  set_backend_label(state, opts.sqp.backend);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(f, z0));
  }
}
BENCHMARK(BM_SqpMpcWindow)->Arg(4)->Arg(8)->Arg(12)->Unit(
    benchmark::kMillisecond);

void BM_MpcPlanStep(benchmark::State& state) {
  core::MpcClimateController mpc(hvac::default_hvac_params(),
                                 bat::leaf_24kwh_params());
  ctl::ControlContext c;
  c.dt_s = 1.0;
  c.cabin_temp_c = 25.0;
  c.outside_temp_c = 35.0;
  c.soc_percent = 88.0;
  c.motor_power_forecast_w.assign(120, 9e3);
  c.outside_temp_forecast_c.assign(120, 35.0);
  set_backend_label(state, mpc.options().sqp.backend);
  for (auto _ : state) {
    mpc.reset();  // force a fresh (cold-start) plan each call
    benchmark::DoNotOptimize(mpc.decide(c));
  }
}
BENCHMARK(BM_MpcPlanStep)->Unit(benchmark::kMillisecond);

// Steady-state replanning: each decide() is a fresh plan (time advances one
// control period) but warm-started from the previous plan's shifted primal
// and carried QP duals.
void BM_MpcPlanStepWarm(benchmark::State& state) {
  core::MpcClimateController mpc(hvac::default_hvac_params(),
                                 bat::leaf_24kwh_params());
  ctl::ControlContext c;
  c.dt_s = 1.0;
  c.cabin_temp_c = 25.0;
  c.outside_temp_c = 35.0;
  c.soc_percent = 88.0;
  c.motor_power_forecast_w.assign(120, 9e3);
  c.outside_temp_forecast_c.assign(120, 35.0);
  set_backend_label(state, mpc.options().sqp.backend);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc.decide(c));
    c.time_s += mpc.options().step_s;  // next call replans
  }
}
BENCHMARK(BM_MpcPlanStepWarm)->Unit(benchmark::kMillisecond);

void BM_HvacPlantStep(benchmark::State& state) {
  hvac::HvacPlant plant(hvac::default_hvac_params(), 25.0);
  hvac::HvacInputs in;
  in.air_flow_kg_s = 0.15;
  in.recirculation = 0.5;
  in.coil_temp_c = 8.0;
  in.supply_temp_c = 8.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plant.step(in, 35.0, 1.0));
  }
}
BENCHMARK(BM_HvacPlantStep);

void BM_PowerTrainEval(benchmark::State& state) {
  pt::PowerTrain ptm(pt::nissan_leaf_params());
  drive::DriveSample s;
  s.speed_mps = 18.0;
  s.accel_mps2 = 0.7;
  s.slope_percent = 1.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptm.power(s));
  }
}
BENCHMARK(BM_PowerTrainEval);

void BM_BatteryPackStep(benchmark::State& state) {
  bat::BatteryPack pack(bat::leaf_24kwh_params(), 90.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack.step(12e3, 1.0));
    if (pack.soc_percent() < 10.0) pack.reset(90.0);
  }
}
BENCHMARK(BM_BatteryPackStep);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the tracer guard brackets the run:
// EVC_TRACE=trace.json captures qp/sqp/mpc spans from inside the timed
// loops (the overhead-guard CI job compares this binary with and without
// the variable set).
int main(int argc, char** argv) {
  evc::obs::TraceEnvGuard trace_guard;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
