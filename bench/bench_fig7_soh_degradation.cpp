// Fig. 7 — Battery lifetime comparison for different drive profiles:
// SoH degradation of each methodology normalized to the On/Off baseline
// (= 100 %), for NEDC, US06, ECE_EUDC, SC03, UDDS.
//
// Paper's shape: our methodology always lowest (average ~14 % improvement),
// with the largest improvement on ECE_EUDC.
#include <iostream>

#include "bench_common.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const auto comparisons = bench::run_all_cycles(bench::kDefaultAmbientC);

  TextTable table({"drive profile", std::string(bench::kOnOff) + " [%]",
                   std::string(bench::kFuzzy) + " [%]",
                   std::string(bench::kOurs) + " [%]",
                   "ours vs On/Off [% better]"});
  double improvement_acc = 0.0;
  for (const auto& c : comparisons) {
    const double base = c.onoff.delta_soh_percent;
    const double ours_ratio = 100.0 * c.mpc.delta_soh_percent / base;
    table.add_row({c.cycle_name, "100.0",
                   TextTable::num(100.0 * c.fuzzy.delta_soh_percent / base, 1),
                   TextTable::num(ours_ratio, 1),
                   TextTable::num(100.0 - ours_ratio, 1)});
    improvement_acc += 100.0 - ours_ratio;
  }

  std::cout << table.render(
      "Fig. 7 — SoH degradation relative to On/Off (35 C ambient)");
  std::cout << "\nAverage dSoH improvement of our methodology vs On/Off: "
            << TextTable::num(improvement_acc / comparisons.size(), 1)
            << "% (paper: ~14% average vs state-of-the-art)\n";
  return 0;
}
