// Ablation F — the SoC-deviation term's reference (Eq. 21).
//
// The paper's cost penalizes (SoC − SoCavg)² where SoCavg is the cycle
// average; our default implementation penalizes the *window variance*
// (mean taken over the control window) because the cycle average is not
// known inside the window. With the trip planner predicting the cycle
// average before departure (§II-A route knowledge makes this legitimate),
// both forms can run head-to-head.
#include <iostream>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "core/trip_planner.hpp"
#include "obs/trace.hpp"

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  core::ClimateSimulation sim(params);
  core::SimulationOptions opts;
  opts.record_traces = false;

  core::TripPlanner planner{params};
  const core::TripPlan plan = planner.plan(
      profile, opts.initial_soc_percent,
      planner.steady_hvac_power_w(bench::kDefaultAmbientC));

  TextTable table({"SoC-deviation reference", "avg HVAC [kW]",
                   "dSoH [%/cycle]", "SoC dev [%]", "rms Tz err [C]"});

  struct Variant {
    std::string label;
    std::optional<double> reference;
  };
  const Variant variants[] = {
      {"window variance (our default)", std::nullopt},
      {"planner cycle average (paper's literal form, ref=" +
           TextTable::num(plan.predicted_cycle_avg_soc, 2) + "%)",
       plan.predicted_cycle_avg_soc},
  };

  for (const Variant& v : variants) {
    std::cerr << "  " << v.label << "...\n";
    core::MpcOptions mpc_opts;
    mpc_opts.soc_reference = v.reference;
    auto mpc = core::make_mpc_controller(params, mpc_opts);
    const auto result = sim.run(*mpc, profile, opts);
    const auto& m = result.metrics;
    table.add_row({v.label, TextTable::num(m.avg_hvac_power_w / 1000.0, 3),
                   TextTable::num(m.delta_soh_percent, 6),
                   TextTable::num(m.stress.soc_deviation, 3),
                   TextTable::num(m.comfort.rms_error_c, 3)});
  }

  std::cout << table.render(
      "Ablation F — window-variance vs cycle-average SoC reference, "
      "ECE_EUDC @ 35 C");
  std::cout << "\nFinding: a *fixed* cycle-average reference is pathological "
               "early in the\ndischarge — while SoC is above the reference, "
               "the (SoC − ref)² gradient rewards\nburning energy to "
               "approach it, inflating HVAC power and comfort error. The\n"
               "window-variance form penalizes only the SoC *slope* and "
               "avoids this, which is\nstrong evidence the paper's SoCavg "
               "should be read as the control window's own\nmean (as our "
               "default implements), not a trip-level constant.\n";
  return 0;
}
