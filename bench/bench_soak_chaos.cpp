// Chaos-soak harness — randomized multi-fault campaigns with kill-and-resume
// (docs/ROBUSTNESS.md).
//
// Each campaign draws a random fault schedule (3–6 specs across sensors,
// kinds, rates, and hold lengths from a campaign-seeded splitmix64 stream)
// and runs the supervised FDIR chain twice over the same profile:
//
//   reference  an uninterrupted SimulationSession, start to finish;
//   chaos      the same configuration, but at 2–4 random steps the whole
//              process state is "killed": the session, controller, and
//              fault injector are destroyed, rebuilt from scratch, and
//              resumed from a checkpoint file written the step before.
//
// The two runs must agree bit-for-bit — every recorder sample, every trip
// metric — or the checkpoint misses state. Campaign 0 is the clean
// differential: no faults, FDI enabled vs disabled, also bit-identical
// (the FDIR layer must be a byte-exact pass-through for healthy sensors).
// Every recorded plant channel is additionally audited for finiteness.
//
// Flags: --steps N      truncate the cycle to N control steps (CI smoke)
//        --campaigns N  number of randomized fault campaigns (default 3)
//        --seed S       campaign master seed
//        --out PATH     write the machine-readable JSON artifact
//        --flight-dump PREFIX  write each chaos run's flight-recorder ring
//                              to PREFIX_c<i>.json after the campaign
//
// EVC_TRACE=trace.json additionally captures a Chrome/Perfetto span trace
// of the whole soak (qp/sqp/mpc/supervisor/fdi spans from every worker).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics_json.hpp"
#include "core/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injection.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace {

using namespace evc;

struct Campaign {
  std::string label;
  std::vector<sim::FaultSpec> specs;
  std::uint64_t injector_seed = 0;
  bool fdi_enabled = true;
  std::size_t max_hold_steps = 0;
  std::vector<std::size_t> kill_steps;  ///< chaos run: checkpoint+rebuild here
};

const char* signal_name(sim::FaultSignal s) {
  switch (s) {
    case sim::FaultSignal::kCabinTemp: return "cabin_temp";
    case sim::FaultSignal::kOutsideTemp: return "outside_temp";
    case sim::FaultSignal::kSoc: return "soc";
    case sim::FaultSignal::kMotorForecast: return "motor_forecast";
  }
  return "?";
}

const char* kind_name(sim::FaultKind k) {
  switch (k) {
    case sim::FaultKind::kBias: return "bias";
    case sim::FaultKind::kStuckAt: return "stuck_at";
    case sim::FaultKind::kDropout: return "dropout";
    case sim::FaultKind::kStaleSample: return "stale_sample";
    case sim::FaultKind::kSpike: return "spike";
    case sim::FaultKind::kQuantization: return "quantization";
  }
  return "?";
}

std::vector<sim::FaultSpec> random_schedule(SplitMix64& rng) {
  const std::size_t count = 3 + rng.next_u64() % 4;  // 3..6 concurrent specs
  std::vector<sim::FaultSpec> specs;
  for (std::size_t i = 0; i < count; ++i) {
    sim::FaultSpec s;
    s.signal = static_cast<sim::FaultSignal>(rng.next_u64() % 4);
    s.kind = static_cast<sim::FaultKind>(rng.next_u64() % 6);
    s.rate = rng.uniform(0.002, 0.05);
    s.hold_steps = 1 + static_cast<std::size_t>(rng.next_u64() % 30);
    switch (s.kind) {
      case sim::FaultKind::kBias:
        s.magnitude = rng.uniform(-10.0, 10.0);
        break;
      case sim::FaultKind::kStuckAt:
        // Deliberately allows implausible stuck values (e.g. SoC 150) —
        // the sanitation + FDI layers must absorb them.
        s.magnitude = rng.uniform(-20.0, 150.0);
        break;
      case sim::FaultKind::kSpike:
        s.magnitude = rng.uniform(5.0, 50.0);
        break;
      case sim::FaultKind::kQuantization:
        s.magnitude = rng.uniform(0.5, 5.0);
        break;
      case sim::FaultKind::kDropout:
      case sim::FaultKind::kStaleSample:
        break;
    }
    specs.push_back(s);
  }
  return specs;
}

std::vector<std::size_t> random_kill_steps(SplitMix64& rng, std::size_t n) {
  const std::size_t kills = 2 + rng.next_u64() % 3;  // 2..4 kill-and-resumes
  std::vector<std::size_t> steps;
  const std::size_t lo = std::max<std::size_t>(1, n / 10);
  const std::size_t hi = std::max<std::size_t>(lo + 1, n - n / 10);
  for (std::size_t i = 0; i < kills; ++i)
    steps.push_back(lo + rng.next_u64() % (hi - lo));
  std::sort(steps.begin(), steps.end());
  steps.erase(std::unique(steps.begin(), steps.end()), steps.end());
  return steps;
}

struct RunArtifacts {
  core::SimulationResult result;
  ctl::SupervisorStats supervisor;
  fdi::FdiStats fdi;
  sim::FaultInjectionStats faults;
};

/// One full closed-loop run of a campaign. With `chaos` set, every kill
/// step tears the session, controller, and injector down completely and
/// resumes a fresh stack from a checkpoint file — the process-crash
/// analogue the checkpoint format exists for.
RunArtifacts run_campaign(const core::EvParams& params,
                          const drive::DriveProfile& profile,
                          const Campaign& c, bool chaos, bool fdi_enabled,
                          const std::string& ckpt_path,
                          const std::string& flight_dump_path = "") {
  std::unique_ptr<ctl::SupervisedController> controller;
  std::unique_ptr<sim::FaultInjector> injector;
  std::unique_ptr<core::SimulationSession> session;

  const auto rebuild = [&] {
    core::MpcOptions mpc_options;
    mpc_options.accessory_power_w = params.vehicle.accessory_power_w;
    ctl::SupervisorOptions sup_options;
    sup_options.fdi.enabled = fdi_enabled;
    sup_options.max_hold_steps = c.max_hold_steps;
    controller =
        core::make_supervised_mpc_controller(params, mpc_options, sup_options);
    injector.reset();
    if (!c.specs.empty())
      injector = std::make_unique<sim::FaultInjector>(c.specs, c.injector_seed);
    core::SimulationOptions sim_options;
    sim_options.record_traces = true;
    sim_options.fault_injector = injector.get();
    sim_options.flight_dump_path = flight_dump_path;
    session = std::make_unique<core::SimulationSession>(params, *controller,
                                                        profile, sim_options);
  };
  rebuild();

  std::size_t next_kill = 0;
  while (!session->done()) {
    if (chaos && next_kill < c.kill_steps.size() &&
        session->step_index() == c.kill_steps[next_kill]) {
      session->checkpoint_to_file(ckpt_path);
      session.reset();   // "kill": nothing survives but the file
      rebuild();
      session->restore_from_file(ckpt_path);
      ++next_kill;
    }
    session->advance();
  }

  RunArtifacts out;
  // The black box of the run, dumped unconditionally at the end (on top of
  // the automatic dump-on-demotion inside the session).
  if (!flight_dump_path.empty())
    session->flight_recorder().dump_json(flight_dump_path);
  out.result = session->finish();
  out.supervisor = controller->stats();
  if (const fdi::SensorFdi* f = controller->fdi()) out.fdi = f->stats();
  if (injector) out.faults = injector->stats();
  std::remove(ckpt_path.c_str());
  return out;
}

std::uint64_t bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

struct Differential {
  std::size_t compared = 0;
  std::size_t mismatched = 0;
  std::vector<std::string> notes;

  void check(const std::string& what, double a, double b) {
    ++compared;
    if (bits(a) != bits(b)) {
      ++mismatched;
      if (notes.size() < 8)
        notes.push_back(what + ": " + std::to_string(a) +
                        " != " + std::to_string(b));
    }
  }
};

/// Bitwise comparison of two runs: every recorder sample and the trip
/// metrics. Any mismatch means the checkpoint (or the FDI pass-through)
/// dropped state.
Differential diff_runs(const RunArtifacts& a, const RunArtifacts& b) {
  Differential d;
  const auto channels_a = a.result.recorder.channels();
  const auto channels_b = b.result.recorder.channels();
  if (channels_a != channels_b) {
    ++d.mismatched;
    d.notes.push_back("recorder channel sets differ");
    return d;
  }
  for (const std::string& ch : channels_a) {
    const auto& va = a.result.recorder.values(ch);
    const auto& vb = b.result.recorder.values(ch);
    const auto& ta = a.result.recorder.times(ch);
    const auto& tb = b.result.recorder.times(ch);
    if (va.size() != vb.size() || ta.size() != tb.size()) {
      ++d.mismatched;
      d.notes.push_back("channel " + ch + " length differs");
      continue;
    }
    for (std::size_t i = 0; i < va.size(); ++i) {
      ++d.compared;
      if (bits(va[i]) != bits(vb[i]) || bits(ta[i]) != bits(tb[i])) {
        ++d.mismatched;
        if (d.notes.size() < 8)
          d.notes.push_back("channel " + ch + " sample " + std::to_string(i));
      }
    }
  }
  const core::TripMetrics& ma = a.result.metrics;
  const core::TripMetrics& mb = b.result.metrics;
  d.check("final_soc_percent", ma.final_soc_percent, mb.final_soc_percent);
  d.check("hvac_energy_j", ma.hvac_energy_j, mb.hvac_energy_j);
  d.check("total_energy_j", ma.total_energy_j, mb.total_energy_j);
  d.check("delta_soh_percent", ma.delta_soh_percent, mb.delta_soh_percent);
  d.check("soc_deviation", ma.stress.soc_deviation, mb.stress.soc_deviation);
  d.check("rms_error_c", ma.comfort.rms_error_c, mb.comfort.rms_error_c);
  d.check("fraction_outside", ma.comfort.fraction_outside,
          mb.comfort.fraction_outside);
  return d;
}

struct Audit {
  std::size_t samples = 0;
  std::size_t nonfinite = 0;
};

Audit audit_finiteness(const core::SimulationResult& result) {
  Audit a;
  for (const std::string& ch : result.recorder.channels())
    for (double v : result.recorder.values(ch)) {
      ++a.samples;
      if (!std::isfinite(v)) ++a.nonfinite;
    }
  return a;
}

struct CampaignOutcome {
  RunArtifacts reference;
  RunArtifacts chaos;
  Differential diff;
  Audit audit;
};

void write_json(const std::string& path, const drive::DriveProfile& profile,
                std::uint64_t seed, const std::vector<Campaign>& campaigns,
                const std::vector<CampaignOutcome>& outcomes) {
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("soak_chaos");
  json.key("cycle").value(profile.name());
  json.key("ambient_c").value(bench::kDefaultAmbientC);
  json.key("steps").value(profile.size());
  json.key("seed").value(seed);
  json.key("campaigns");
  json.begin_array();
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    const Campaign& c = campaigns[i];
    const CampaignOutcome& o = outcomes[i];
    json.begin_object();
    json.key("label").value(c.label);
    json.key("fdi_enabled").value(c.fdi_enabled);
    json.key("kill_steps");
    json.begin_array();
    for (std::size_t s : c.kill_steps) json.value(s);
    json.end_array();
    json.key("fault_specs");
    json.begin_array();
    for (const sim::FaultSpec& s : c.specs) {
      json.begin_object();
      json.key("signal").value(signal_name(s.signal));
      json.key("kind").value(kind_name(s.kind));
      json.key("rate").value(s.rate);
      json.key("magnitude").value(s.magnitude);
      json.key("hold_steps").value(s.hold_steps);
      json.end_object();
    }
    json.end_array();
    json.key("samples_compared").value(o.diff.compared);
    json.key("samples_mismatched").value(o.diff.mismatched);
    json.key("mismatch_notes");
    json.begin_array();
    for (const std::string& note : o.diff.notes) json.value(note);
    json.end_array();
    json.key("audited_samples").value(o.audit.samples);
    json.key("nonfinite_samples").value(o.audit.nonfinite);
    json.key("metrics").raw_value(core::to_json(o.chaos.result.metrics));
    json.key("supervisor").raw_value(core::to_json(o.chaos.supervisor));
    json.key("fdi").raw_value(core::to_json(o.chaos.fdi));
    json.key("faults").raw_value(core::to_json(o.chaos.faults));
    json.end_object();
  }
  json.end_array();
  // Unified-export path: publish the last campaign's stats as gauges, then
  // embed the whole registry (live mpc.*/supervisor.* counters included).
  if (!outcomes.empty()) {
    const CampaignOutcome& last = outcomes.back();
    core::publish_metrics(last.chaos.result.metrics);
    core::publish_metrics(last.chaos.supervisor);
    core::publish_metrics(last.chaos.fdi);
    core::publish_metrics(last.chaos.faults);
  }
  json.key("metrics_registry").raw_value(obs::snapshot().to_json());
  json.end_object();

  std::ofstream file(path);
  file << json.str() << "\n";
  std::cerr << "  wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // EVC_TRACE=trace.json → Chrome/Perfetto trace of the whole soak run.
  evc::obs::TraceEnvGuard trace_guard;
  const ArgParser args(argc, argv);
  const long steps = args.get_int("steps", 0);
  const long n_campaigns = args.get_int("campaigns", 3);
  const long seed = args.get_int("seed", 20260807);
  const std::string out_path = args.get_string("out", "");
  const std::string flight_prefix = args.get_string("flight-dump", "");
  args.reject_unknown({"steps", "campaigns", "seed", "out", "flight-dump"});

  const core::EvParams params;
  drive::DriveProfile profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  if (steps > 0)
    profile = profile.window(0, static_cast<std::size_t>(steps));

  SplitMix64 master(static_cast<std::uint64_t>(seed));

  std::vector<Campaign> campaigns;
  {
    // Campaign 0: clean byte-identity differential. Reference runs with the
    // FDIR layer disabled, chaos runs with it enabled (and kill-and-resume):
    // with healthy sensors the FDI must be a bit-exact pass-through AND the
    // checkpoint must lose nothing.
    Campaign clean;
    clean.label = "clean (FDI on+resume vs FDI off)";
    clean.fdi_enabled = true;
    clean.kill_steps = random_kill_steps(master, profile.size());
    campaigns.push_back(clean);
  }
  for (long i = 1; i < n_campaigns; ++i) {
    Campaign c;
    c.label = "chaos campaign " + std::to_string(i);
    c.injector_seed = master.next_u64();
    c.specs = random_schedule(master);
    c.kill_steps = random_kill_steps(master, profile.size());
    c.fdi_enabled = true;
    c.max_hold_steps = 120;  // permanent dropouts escalate to safe-hold
    campaigns.push_back(c);
  }

  std::cerr << "  running " << campaigns.size() << " soak campaigns ("
            << profile.size() << " steps each) on "
            << (rt::ThreadPool::global().size() + 1) << " thread(s)...\n";
  const auto outcomes = rt::parallel_map<CampaignOutcome>(
      campaigns.size(), [&](std::size_t i) {
        const Campaign& c = campaigns[i];
        const std::string ckpt_ref =
            "soak_ckpt_" + std::to_string(i) + "_ref.bin";
        const std::string ckpt_chaos =
            "soak_ckpt_" + std::to_string(i) + "_chaos.bin";
        CampaignOutcome o;
        // Campaign 0's reference disables FDI to prove pass-through
        // byte-identity; every other campaign compares like-for-like.
        const bool ref_fdi = (i == 0) ? false : c.fdi_enabled;
        o.reference =
            run_campaign(params, profile, c, /*chaos=*/false, ref_fdi, ckpt_ref);
        const std::string flight_path =
            flight_prefix.empty()
                ? std::string()
                : flight_prefix + "_c" + std::to_string(i) + ".json";
        o.chaos = run_campaign(params, profile, c, /*chaos=*/true,
                               c.fdi_enabled, ckpt_chaos, flight_path);
        o.diff = diff_runs(o.reference, o.chaos);
        o.audit = audit_finiteness(o.chaos.result);
        return o;
      });

  TextTable table({"campaign", "specs", "kills", "compared", "mismatched",
                   "non-finite", "FDI subst", "comfort viol [%]"});
  bool ok = true;
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    const Campaign& c = campaigns[i];
    const CampaignOutcome& o = outcomes[i];
    if (o.diff.mismatched > 0 || o.audit.nonfinite > 0) ok = false;
    table.add_row(
        {c.label, std::to_string(c.specs.size()),
         std::to_string(c.kill_steps.size()), std::to_string(o.diff.compared),
         std::to_string(o.diff.mismatched), std::to_string(o.audit.nonfinite),
         std::to_string(o.chaos.supervisor.fdi_substituted_steps),
         TextTable::num(100.0 * o.chaos.result.metrics.comfort.fraction_outside,
                        2)});
  }

  std::cout << table.render(
      "Chaos soak — kill-and-resume differential, ECE_EUDC @ 35 C");
  std::cout << "\nExpected shape: zero mismatches (checkpoint/restore and the "
               "FDI pass-through\nare bit-exact) and zero non-finite samples "
               "in every campaign.\n";
  for (const CampaignOutcome& o : outcomes)
    for (const std::string& note : o.diff.notes)
      std::cerr << "  MISMATCH " << note << "\n";

  if (!out_path.empty())
    write_json(out_path, profile, static_cast<std::uint64_t>(seed), campaigns,
               outcomes);

  return ok ? 0 : 1;
}
