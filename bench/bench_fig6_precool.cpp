// Fig. 6 — The precool mechanism: the MPC reduces HVAC power while the
// electric motor consumes heavily, and precools the cabin (outside is
// warmer) before predicted motor-power peaks.
//
// The bench runs the MPC on ECE_EUDC @ 35 C, writes the joint trace
// (motor power, HVAC power, cabin temperature) to fig6_precool.csv, and
// quantifies the mechanism with the correlation between motor power and
// HVAC power: the paper's claim implies a clearly *negative* correlation
// for the MPC, absent for the reactive baselines.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "util/stats.hpp"
#include "obs/trace.hpp"

namespace {

double correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  const double ma = evc::mean_of(a), mb = evc::mean_of(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  return num / std::sqrt(da * db + 1e-12);
}

}  // namespace

int main() {
  // EVC_TRACE=trace.json dumps a Chrome/Perfetto trace of this run.
  evc::obs::TraceEnvGuard trace_guard;
  using namespace evc;
  const core::EvParams params;
  const auto profile = drive::make_cycle_profile(
      drive::StandardCycle::kEceEudc, bench::kDefaultAmbientC);
  core::ClimateSimulation sim(params);

  TextTable table({"controller", "corr(motor, HVAC)", "corr(motor, dTz/dt)"});

  const auto run = [&](ctl::ClimateController& controller,
                       const std::string& label, bool dump) {
    std::cerr << "  running " << label << "...\n";
    const auto result = sim.run(controller, profile);
    const auto& motor = result.recorder.values("motor_power_w");
    const auto& hvac = result.recorder.values("hvac_power_w");
    const auto& tz = result.recorder.values("cabin_temp_c");
    std::vector<double> dtz(tz.size(), 0.0);
    for (std::size_t i = 1; i < tz.size(); ++i) dtz[i] = tz[i] - tz[i - 1];
    table.add_row({label, TextTable::num(correlation(motor, hvac), 3),
                   TextTable::num(correlation(motor, dtz), 3)});
    if (dump) {
      sim::StateRecorder rec;
      const auto& t = result.recorder.times("cabin_temp_c");
      for (std::size_t i = 0; i < tz.size(); ++i) {
        rec.record("motor_power_w", t[i], motor[i]);
        rec.record("hvac_power_w", t[i], hvac[i]);
        rec.record("cabin_temp_c", t[i], tz[i]);
      }
      rec.write_csv("fig6_precool.csv");
    }
  };

  auto onoff = core::make_onoff_controller(params);
  run(*onoff, bench::kOnOff, false);
  auto fuzzy = core::make_fuzzy_controller(params);
  run(*fuzzy, bench::kFuzzy, false);
  auto mpc = core::make_mpc_controller(params);
  run(*mpc, bench::kOurs, true);

  std::cout << table.render(
      "Fig. 6 — Precool mechanism, ECE_EUDC @ 35 C");
  std::cout << "\nMPC trace written to fig6_precool.csv.\n"
            << "Paper's shape: our controller shifts HVAC power away from "
               "motor peaks\n(negative correlation); reactive baselines "
               "show no such coupling.\n";
  return 0;
}
