// Tests for the time-series recorder.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/recorder.hpp"

namespace evc::sim {
namespace {

TEST(Recorder, RecordsAndReadsBack) {
  StateRecorder rec;
  rec.record("a", 0.0, 1.0);
  rec.record("a", 1.0, 2.0);
  rec.record("b", 0.0, -1.0);
  EXPECT_TRUE(rec.has("a"));
  EXPECT_FALSE(rec.has("c"));
  EXPECT_EQ(rec.samples("a"), 2u);
  EXPECT_DOUBLE_EQ(rec.values("a")[1], 2.0);
  EXPECT_DOUBLE_EQ(rec.times("a")[1], 1.0);
  EXPECT_EQ(rec.channels().size(), 2u);
}

TEST(Recorder, UnknownChannelThrows) {
  StateRecorder rec;
  EXPECT_THROW(rec.values("missing"), std::invalid_argument);
  EXPECT_THROW(rec.write_csv("/tmp/empty.csv"), std::invalid_argument);
}

TEST(Recorder, CsvRoundTrip) {
  StateRecorder rec;
  for (int i = 0; i < 3; ++i) {
    rec.record("x", i, 10.0 * i);
    rec.record("y", i, -1.0 * i);
  }
  const std::string path = "/tmp/evc_recorder_test.csv";
  rec.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "0,0,-0");
  std::remove(path.c_str());
}

TEST(Recorder, MismatchedChannelLengthsRejectedAtCsv) {
  StateRecorder rec;
  rec.record("x", 0.0, 1.0);
  rec.record("x", 1.0, 2.0);
  rec.record("y", 0.0, 1.0);
  EXPECT_THROW(rec.write_csv("/tmp/evc_bad.csv"), std::invalid_argument);
}

}  // namespace
}  // namespace evc::sim
