// Unit tests for util: units, interpolation, stats, tables, CSV, RNG.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/interp.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace evc {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::kmh_to_mps(36.0), 10.0);
  EXPECT_DOUBLE_EQ(units::mps_to_kmh(10.0), 36.0);
  EXPECT_DOUBLE_EQ(units::kwh_to_j(1.0), 3.6e6);
  EXPECT_DOUBLE_EQ(units::celsius_to_kelvin(0.0), 273.15);
  EXPECT_DOUBLE_EQ(units::ah_to_coulomb(1.0), 3600.0);
  // 100 % grade is 45 degrees.
  EXPECT_NEAR(units::grade_percent_to_angle(100.0), 0.78539816, 1e-7);
  EXPECT_NEAR(units::grade_percent_to_angle(0.0), 0.0, 1e-12);
}

TEST(Interp1D, InterpolatesAndClamps) {
  LookupTable1D t({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(t(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t(1.5), 25.0);
  EXPECT_DOUBLE_EQ(t(-3.0), 0.0);   // clamp low
  EXPECT_DOUBLE_EQ(t(99.0), 40.0);  // clamp high
  EXPECT_DOUBLE_EQ(t.x_min(), 0.0);
  EXPECT_DOUBLE_EQ(t.x_max(), 2.0);
}

TEST(Interp1D, RejectsBadGrids) {
  EXPECT_THROW(LookupTable1D({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(LookupTable1D({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(LookupTable1D({0.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(Interp2D, BilinearExactOnPlane) {
  // f(x,y) = 2x + 3y is reproduced exactly by bilinear interpolation.
  std::vector<double> xs{0, 1, 2}, ys{0, 2};
  std::vector<double> zs;
  for (double x : xs)
    for (double y : ys) zs.push_back(2 * x + 3 * y);
  LookupTable2D t(xs, ys, zs);
  EXPECT_NEAR(t(0.5, 1.0), 2 * 0.5 + 3 * 1.0, 1e-12);
  EXPECT_NEAR(t(1.7, 0.3), 2 * 1.7 + 3 * 0.3, 1e-12);
  // Clamps outside.
  EXPECT_NEAR(t(-1, -1), 0.0, 1e-12);
  EXPECT_NEAR(t(5, 5), 2 * 2 + 3 * 2, 1e-12);
}

TEST(Stats, RunningMatchesBatch) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.mean(), mean_of(xs));
  EXPECT_NEAR(s.stddev(), stddev_of(xs), 1e-12);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);  // population variance
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(rms_of({3.0, 4.0}), std::sqrt(12.5), 1e-12);
}

TEST(Stats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), std::invalid_argument);
  EXPECT_THROW(mean_of({}), std::invalid_argument);
}

TEST(Table, RendersAlignedRows) {
  TextTable t({"cycle", "power"});
  t.add_row({"NEDC", TextTable::num(1.234, 2)});
  const std::string out = t.render("demo");
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("NEDC"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "many", "cells"}), std::invalid_argument);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/evc_csv_test.csv";
  {
    CsvWriter w(path, {"t", "v"});
    w.write_row({0.0, 1.5});
    w.write_row({1.0, 2.5});
    EXPECT_EQ(w.rows_written(), 2u);
    EXPECT_THROW(w.write_row({1.0}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,v");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1.5");
  std::remove(path.c_str());
}

TEST(Random, DeterministicAcrossInstances) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, UniformInRange) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Random, NormalMomentsRoughlyCorrect) {
  SplitMix64 rng(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

}  // namespace
}  // namespace evc
