// Tests for the Kalman filter and the cabin-temperature estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "hvac/cabin_model.hpp"
#include "sim/kalman.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace evc::sim {
namespace {

using num::Matrix;
using num::Vector;

KalmanFilter make_scalar_kf(double f, double q, double r, double x0,
                            double p0) {
  return KalmanFilter(Matrix(1, 1, f), Matrix(1, 1, 1.0),
                      Matrix::identity(1), Matrix(1, 1, q), Matrix(1, 1, r),
                      Vector{x0}, Matrix(1, 1, p0));
}

TEST(Kalman, ConvergesOnConstantSignal) {
  auto kf = make_scalar_kf(1.0, 1e-6, 0.25, 0.0, 10.0);
  SplitMix64 rng(3);
  for (int i = 0; i < 500; ++i) {
    kf.predict(Vector{0.0});
    kf.update(Vector{5.0 + rng.normal(0.0, 0.5)});
  }
  EXPECT_NEAR(kf.state()[0], 5.0, 0.15);
  EXPECT_LT(kf.covariance()(0, 0), 0.25);
}

TEST(Kalman, CovarianceShrinksWithUpdates) {
  auto kf = make_scalar_kf(1.0, 1e-4, 1.0, 0.0, 100.0);
  const double p0 = kf.covariance()(0, 0);
  kf.predict(Vector{0.0});
  kf.update(Vector{1.0});
  EXPECT_LT(kf.covariance()(0, 0), p0);
}

TEST(Kalman, TracksRampWithControlInput) {
  // x_{k+1} = x_k + u, u = 0.1 — with the control modeled, the filter
  // tracks with no lag bias.
  auto kf = make_scalar_kf(1.0, 1e-4, 0.04, 0.0, 1.0);
  SplitMix64 rng(11);
  double truth = 0.0;
  for (int i = 0; i < 300; ++i) {
    truth += 0.1;
    kf.predict(Vector{0.1});
    kf.update(Vector{truth + rng.normal(0.0, 0.2)});
  }
  EXPECT_NEAR(kf.state()[0], truth, 0.3);
}

TEST(Kalman, TwoStateConstantVelocity) {
  // Position-velocity model observing position only: velocity must be
  // inferred.
  Matrix f = Matrix::identity(2);
  f(0, 1) = 1.0;  // dt = 1
  Matrix b(2, 1);  // no control
  Matrix h(1, 2);
  h(0, 0) = 1.0;
  Matrix q = Matrix::identity(2);
  q *= 1e-4;
  Matrix r(1, 1, 0.09);
  KalmanFilter kf(f, b, h, q, r, Vector{0.0, 0.0}, Matrix::identity(2));
  SplitMix64 rng(5);
  double pos = 0.0;
  const double vel = 0.7;
  for (int i = 0; i < 400; ++i) {
    pos += vel;
    kf.predict(Vector{0.0});
    kf.update(Vector{pos + rng.normal(0.0, 0.3)});
  }
  EXPECT_NEAR(kf.state()[1], vel, 0.05);
}

TEST(Kalman, ValidatesDimensions) {
  EXPECT_THROW(KalmanFilter(Matrix(2, 2), Matrix(1, 1), Matrix(1, 2),
                            Matrix(2, 2), Matrix(1, 1), Vector{0.0, 0.0},
                            Matrix(2, 2)),
               std::invalid_argument);  // B has wrong row count
  auto kf = make_scalar_kf(1.0, 1e-4, 1.0, 0.0, 1.0);
  EXPECT_THROW(kf.update(Vector{1.0, 2.0}), std::invalid_argument);
}

// --- Innovation statistics for the FDI layer ---

TEST(Kalman, UpdateReportsInnovationCovarianceAndNis) {
  // One predict/update with hand-computable numbers: F = 1, Q = 0.5,
  // R = 2, P0 = 1, x0 = 0 → after predict P⁻ = 1.5; z = 3 gives
  // ν = 3, S = P⁻ + R = 3.5, NIS = 9 / 3.5.
  auto kf = make_scalar_kf(1.0, 0.5, 2.0, 0.0, 1.0);
  kf.predict(Vector{0.0});
  const KalmanUpdateResult res = kf.update(Vector{3.0});
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.innovation[0], 3.0, 1e-12);
  EXPECT_NEAR(res.innovation_covariance(0, 0), 3.5, 1e-12);
  EXPECT_NEAR(res.nis, 9.0 / 3.5, 1e-12);
}

TEST(Kalman, NisIsChiSquareDistributedUnderHealthySensor) {
  // Long healthy run: the mean NIS must hover near the χ² mean (= the
  // measurement dimension, 1) — the property the FDI gate relies on.
  auto kf = make_scalar_kf(1.0, 1e-6, 0.25, 5.0, 1.0);
  SplitMix64 rng(29);
  RunningStats nis;
  for (int i = 0; i < 4000; ++i) {
    kf.predict(Vector{0.0});
    const auto res = kf.update(Vector{5.0 + rng.normal(0.0, 0.5)});
    ASSERT_TRUE(res.ok);
    if (i > 100) nis.add(res.nis);
  }
  EXPECT_NEAR(nis.mean(), 1.0, 0.15);
}

TEST(Kalman, SingularInnovationCovarianceIsReportedNotThrown) {
  // Q = R = P0 = 0 → S = 0: the update must report the degeneracy and
  // leave the belief untouched instead of dividing by zero.
  auto kf = make_scalar_kf(1.0, 0.0, 0.0, 2.0, 0.0);
  kf.predict(Vector{0.0});
  const KalmanUpdateResult res = kf.update(Vector{7.0});
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(std::isnan(res.nis));
  EXPECT_DOUBLE_EQ(kf.state()[0], 2.0);
  EXPECT_DOUBLE_EQ(kf.covariance()(0, 0), 0.0);
}

TEST(CabinEstimator, StepReportsScalarInnovationStatistics) {
  CabinTempEstimator est(24.0, 0.5, 2.0);
  // With decay = 1 the time update gives P⁻ = P + q; the step reports
  // ν = z − x̂, S = P⁻ + R, NIS = ν²/S.
  const double p_minus = est.variance() + 0.5;
  const ScalarKalmanUpdate u = est.step(24.0, 1.0, 27.0);
  EXPECT_NEAR(u.innovation, 3.0, 1e-12);
  EXPECT_NEAR(u.variance, p_minus + 2.0, 1e-12);
  EXPECT_NEAR(u.nis, 9.0 / (p_minus + 2.0), 1e-12);
}

// --- Cabin temperature estimator against the real cabin model ---

TEST(CabinEstimator, BeatsRawSensorNoise) {
  const hvac::HvacParams params = hvac::default_hvac_params();
  const hvac::CabinThermalModel cabin(params);
  const double dt = 1.0, to = 35.0, ts = 12.0, mz = 0.15;
  const double rate =
      (params.wall_ua_w_per_k + mz * params.air_cp) /
      params.cabin_capacitance_j_per_k;
  const double decay = std::exp(-rate * dt);
  const double sensor_sigma = 0.5;

  CabinTempEstimator est(26.0, 1e-4, sensor_sigma * sensor_sigma);
  SplitMix64 rng(17);
  double truth = 26.0;
  RunningStats raw_err, est_err;
  for (int t = 0; t < 900; ++t) {
    truth = cabin.step_exact(truth, ts, mz, to, dt);
    const double predicted = cabin.step_exact(est.estimate(), ts, mz, to, dt);
    const double measured = truth + rng.normal(0.0, sensor_sigma);
    est.step(predicted, decay, measured);
    if (t > 50) {
      raw_err.add(std::abs(measured - truth));
      est_err.add(std::abs(est.estimate() - truth));
    }
  }
  // The filtered estimate must be several times better than the raw sensor.
  EXPECT_LT(est_err.mean(), 0.4 * raw_err.mean());
}

TEST(CabinEstimator, VarianceReachesSteadyState) {
  CabinTempEstimator est(24.0, 1e-3, 0.25);
  double prev = 1e9;
  for (int i = 0; i < 200; ++i) {
    est.step(24.0, 0.99, 24.0);
    prev = est.variance();
  }
  // Riccati fixed point of the scalar filter.
  EXPECT_GT(prev, 0.0);
  EXPECT_LT(prev, 0.25);
  const double before = est.variance();
  est.step(24.0, 0.99, 24.0);
  EXPECT_NEAR(est.variance(), before, 1e-6);
}

TEST(CabinEstimator, RejectsBadConfig) {
  EXPECT_THROW(CabinTempEstimator(24.0, 0.0, 0.1), std::invalid_argument);
  CabinTempEstimator est(24.0, 1e-3, 0.1);
  EXPECT_THROW(est.step(24.0, 1.5, 24.0), std::invalid_argument);
}

}  // namespace
}  // namespace evc::sim
