// Unit + property tests for the SQP solver on analytic and randomized
// bilinear problems (the MPC's equality constraints are bilinear, so that is
// the class we stress).
#include <gtest/gtest.h>

#include <cmath>

#include "optim/sqp.hpp"
#include "util/random.hpp"

namespace evc::opt {
namespace {

using num::Matrix;
using num::Vector;

/// min ‖x − target‖² s.t. x0·x1 = p (bilinear equality), optional box.
class BilinearProblem : public NlpProblem {
 public:
  BilinearProblem(Vector target, double product, double box = 0.0)
      : target_(std::move(target)), product_(product) {
    const std::size_t n = target_.size();
    if (box > 0.0) {
      a_ = Matrix(2 * n, n);
      b_ = Vector(2 * n);
      for (std::size_t i = 0; i < n; ++i) {
        a_(2 * i, i) = 1.0;
        b_[2 * i] = box;
        a_(2 * i + 1, i) = -1.0;
        b_[2 * i + 1] = box;
      }
    } else {
      a_ = Matrix(0, n);
      b_ = Vector(0);
    }
  }

  std::size_t num_vars() const override { return target_.size(); }
  std::size_t num_eq() const override { return 1; }

  double cost(const Vector& x) const override {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - target_[i];
      acc += d * d;
    }
    return acc;
  }
  Vector cost_gradient(const Vector& x) const override {
    Vector g(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) g[i] = 2.0 * (x[i] - target_[i]);
    return g;
  }
  Matrix cost_hessian(const Vector&) const override {
    Matrix h = Matrix::identity(target_.size());
    h *= 2.0;
    return h;
  }
  Vector eq_constraints(const Vector& x) const override {
    return Vector{x[0] * x[1] - product_};
  }
  Matrix eq_jacobian(const Vector& x) const override {
    Matrix j(1, x.size());
    j(0, 0) = x[1];
    j(0, 1) = x[0];
    return j;
  }
  const Matrix& ineq_matrix() const override { return a_; }
  const Vector& ineq_vector() const override { return b_; }

 private:
  Vector target_;
  double product_;
  Matrix a_;
  Vector b_;
};

TEST(Sqp, SolvesSymmetricBilinearProblem) {
  // Target (2,2), constraint x0·x1 = 1 → by symmetry x0 = x1 = 1 with
  // optimal cost 2. The reduced Hessian vanishes exactly at the optimum
  // (quartic valley), so assert on cost and feasibility, not position.
  BilinearProblem p(Vector{2, 2}, 1.0);
  SqpSolver solver;
  const SqpResult r = solver.solve(p, Vector{1.5, 0.5});
  ASSERT_TRUE(r.usable());
  EXPECT_LT(r.constraint_violation, 1e-5);
  EXPECT_NEAR(r.cost, 2.0, 1e-3);
}

TEST(Sqp, RespectsBoxConstraints) {
  // Target (4,4) with x0·x1 = 1 and |x_i| ≤ 3: symmetric optimum stays x=(1,1)
  // (the box only truncates the target pull).
  BilinearProblem p(Vector{4, 4}, 1.0, 3.0);
  SqpSolver solver;
  const SqpResult r = solver.solve(p, Vector{2.0, 0.5});
  ASSERT_TRUE(r.usable());
  EXPECT_LT(r.constraint_violation, 1e-6);
  EXPECT_LE(std::abs(r.x[0]), 3.0 + 1e-6);
  EXPECT_LE(std::abs(r.x[1]), 3.0 + 1e-6);
  EXPECT_NEAR(r.x[0] * r.x[1], 1.0, 1e-6);
}

TEST(Sqp, ConvergesFromFeasibleStart) {
  BilinearProblem p(Vector{2, 2}, 1.0);
  SqpSolver solver;
  const SqpResult r = solver.solve(p, Vector{1.0, 1.0});
  ASSERT_EQ(r.status, SqpStatus::kConverged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-5);
}

TEST(Sqp, RejectsWrongStartDimension) {
  BilinearProblem p(Vector{2, 2}, 1.0);
  SqpSolver solver;
  EXPECT_THROW(solver.solve(p, Vector{1.0}), std::invalid_argument);
}

/// Pure quadratic with linear equality — SQP must converge in one step.
class LinearEqualityProblem : public NlpProblem {
 public:
  LinearEqualityProblem() : a_(0, 2), b_(0) {}
  std::size_t num_vars() const override { return 2; }
  std::size_t num_eq() const override { return 1; }
  double cost(const Vector& x) const override { return x.dot(x); }
  Vector cost_gradient(const Vector& x) const override { return 2.0 * x; }
  Matrix cost_hessian(const Vector&) const override {
    Matrix h = Matrix::identity(2);
    h *= 2.0;
    return h;
  }
  Vector eq_constraints(const Vector& x) const override {
    return Vector{x[0] + x[1] - 2.0};
  }
  Matrix eq_jacobian(const Vector&) const override {
    Matrix j(1, 2);
    j(0, 0) = 1;
    j(0, 1) = 1;
    return j;
  }
  const Matrix& ineq_matrix() const override { return a_; }
  const Vector& ineq_vector() const override { return b_; }

 private:
  Matrix a_;
  Vector b_;
};

TEST(Sqp, LinearProblemConvergesFast) {
  LinearEqualityProblem p;
  SqpSolver solver;
  const SqpResult r = solver.solve(p, Vector{5.0, -3.0});
  ASSERT_EQ(r.status, SqpStatus::kConverged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-7);
  EXPECT_NEAR(r.x[1], 1.0, 1e-7);
  EXPECT_LE(r.iterations, 4u);
}

class SqpRandomized : public ::testing::TestWithParam<int> {};

TEST_P(SqpRandomized, FeasibilityAndDescentOnBilinearFamily) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const double product = rng.uniform(0.3, 2.5);
  Vector target{rng.uniform(0.5, 3.0), rng.uniform(0.5, 3.0)};
  BilinearProblem p(target, product, 5.0);
  Vector x0{rng.uniform(0.4, 2.0), rng.uniform(0.4, 2.0)};

  SqpSolver solver;
  const SqpResult r = solver.solve(p, x0);
  ASSERT_TRUE(r.usable()) << "seed " << GetParam();
  // Converged to a feasible point…
  EXPECT_LT(r.constraint_violation, 1e-5) << "seed " << GetParam();
  // …that is no worse than the projection of the start onto the constraint
  // (sanity: SQP should not increase cost relative to a crude feasible
  // point derived from x0).
  Vector crude{x0[0], product / x0[0]};
  EXPECT_LE(r.cost, p.cost(crude) + 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqpRandomized, ::testing::Range(0, 30));

}  // namespace
}  // namespace evc::opt
