// Solver hot-path properties: allocation-free steady state of the QP
// workspace, and warm-started solves agreeing with cold-started ones.
#include <gtest/gtest.h>

#include <cstddef>

#include "battery/battery_params.hpp"
#include "core/mpc_controller.hpp"
#include "core/mpc_formulation.hpp"
#include "hvac/hvac_params.hpp"
#include "optim/qp.hpp"
#include "optim/sqp.hpp"
#include "util/random.hpp"

namespace {

using namespace evc;

opt::QpProblem random_qp(std::size_t n, std::size_t mi, std::size_t me,
                         std::uint64_t seed) {
  SplitMix64 rng(seed);
  opt::QpProblem p;
  num::Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1, 1);
  p.h = g.transposed() * g;
  for (std::size_t i = 0; i < n; ++i) p.h(i, i) += 1.0;
  p.g = num::Vector(n);
  for (std::size_t i = 0; i < n; ++i) p.g[i] = rng.uniform(-2, 2);
  p.e_mat = num::Matrix(me, n);
  p.e_vec = num::Vector(me);
  for (std::size_t r = 0; r < me; ++r) {
    for (std::size_t c = 0; c < n; ++c) p.e_mat(r, c) = rng.uniform(-1, 1);
    p.e_vec[r] = rng.uniform(-0.5, 0.5);
  }
  p.a_mat = num::Matrix(mi, n);
  p.b_vec = num::Vector(mi);
  for (std::size_t r = 0; r < mi; ++r) {
    for (std::size_t c = 0; c < n; ++c) p.a_mat(r, c) = rng.uniform(-1, 1);
    p.b_vec[r] = rng.uniform(0.5, 2.0);
  }
  return p;
}

core::MpcFormulation make_window_formulation(std::size_t horizon) {
  core::MpcWindowData w;
  w.dt_s = 5.0;
  w.initial_cabin_temp_c = 25.5;
  w.initial_soc_percent = 88.0;
  w.fixed_power_kw.assign(horizon, 9.0);
  w.outside_temp_c.assign(horizon, 35.0);
  return core::MpcFormulation(hvac::default_hvac_params(),
                              bat::leaf_24kwh_params(), core::MpcWeights{},
                              w);
}

// Steady-state solving through a persistent workspace must not allocate:
// the growth counter moves on the first solve only.
TEST(QpWorkspace, SteadyStateIsAllocationFree) {
  const auto problem = random_qp(30, 60, 6, 11);
  opt::QpWorkspace ws;

  ASSERT_TRUE(opt::solve_qp(problem, {}, ws).usable());
  const std::size_t growths_after_first = ws.counters().workspace_growths;
  const std::size_t bytes_after_first = ws.bytes();
  EXPECT_GE(growths_after_first, 1u);
  EXPECT_EQ(ws.counters().peak_workspace_bytes, bytes_after_first);

  for (int round = 0; round < 5; ++round)
    ASSERT_TRUE(opt::solve_qp(problem, {}, ws).usable());
  EXPECT_EQ(ws.counters().workspace_growths, growths_after_first);
  EXPECT_EQ(ws.bytes(), bytes_after_first);
  EXPECT_EQ(ws.counters().solves, 6u);
}

TEST(QpWorkspace, SmallerProblemReusesStorage) {
  opt::QpWorkspace ws;
  ASSERT_TRUE(opt::solve_qp(random_qp(30, 60, 6, 12), {}, ws).usable());
  const std::size_t growths = ws.counters().workspace_growths;
  ASSERT_TRUE(opt::solve_qp(random_qp(12, 24, 3, 13), {}, ws).usable());
  EXPECT_EQ(ws.counters().workspace_growths, growths);
  ASSERT_TRUE(opt::solve_qp(random_qp(48, 96, 8, 14), {}, ws).usable());
  EXPECT_GT(ws.counters().workspace_growths, growths);
}

// Warm starting is a performance device, not a different algorithm: the
// solution must match the cold solve to solver tolerance.
TEST(QpWarmStart, MatchesColdSolution) {
  const auto problem = random_qp(30, 60, 6, 21);
  opt::QpWorkspace cold_ws;
  const auto cold = opt::solve_qp(problem, {}, cold_ws);
  ASSERT_EQ(cold.status, opt::QpStatus::kSolved);

  opt::QpWorkspace warm_ws;
  opt::QpWarmStart seed;
  seed.x = cold.x;
  seed.y_eq = cold.y_eq;
  seed.z_ineq = cold.z_ineq;
  const auto warm = opt::solve_qp(problem, {}, warm_ws, &seed);
  ASSERT_EQ(warm.status, opt::QpStatus::kSolved);
  EXPECT_EQ(warm_ws.counters().warm_starts, 1u);
  EXPECT_LE(warm.iterations, cold.iterations);
  for (std::size_t i = 0; i < problem.num_vars(); ++i)
    EXPECT_NEAR(warm.x[i], cold.x[i], 1e-6);
}

TEST(SqpWarmStart, MatchesColdSolutionOnMpcWindow) {
  const auto f = make_window_formulation(6);
  core::MpcOptions opts;  // the tuned receding-horizon SQP settings
  const num::Vector z0 = f.cold_start();

  const opt::SqpSolver cold_solver(opts.sqp);
  const auto cold = cold_solver.solve(f, z0);
  ASSERT_TRUE(cold.usable());
  ASSERT_FALSE(cold.y_eq.empty());

  opt::SqpWarmStart seed;
  seed.y_eq = cold.y_eq;
  seed.z_ineq = cold.z_ineq;
  const opt::SqpSolver warm_solver(opts.sqp);
  const auto warm = warm_solver.solve(f, z0, &seed);
  ASSERT_TRUE(warm.usable());

  // Same NLP, same primal start; the dual seed only accelerates the first
  // QP subproblem, so the iterates agree to the SQP step tolerance (1e-3).
  for (std::size_t i = 0; i < z0.size(); ++i)
    EXPECT_NEAR(warm.x[i], cold.x[i], 2.0 * opts.sqp.step_tolerance);
}

// Receding-horizon controller: a warm-started replan must produce the same
// control as a cold-started plan of the same window.
TEST(MpcWarmStart, WarmReplanMatchesColdPlan) {
  const auto hvac_params = hvac::default_hvac_params();
  const auto battery_params = bat::leaf_24kwh_params();
  // The production settings cap SQP at 8 iterations (the receding horizon
  // forgives non-convergence); this equivalence check needs both plans to
  // actually reach the optimum, so raise the cap.
  core::MpcOptions opts;
  opts.sqp.max_iterations = 50;
  core::MpcClimateController warm_mpc(hvac_params, battery_params, opts);
  core::MpcClimateController cold_mpc(hvac_params, battery_params, opts);

  ctl::ControlContext c;
  c.dt_s = 1.0;
  c.cabin_temp_c = 25.0;
  c.outside_temp_c = 35.0;
  c.soc_percent = 88.0;
  c.motor_power_forecast_w.assign(120, 9e3);
  c.outside_temp_forecast_c.assign(120, 35.0);

  warm_mpc.decide(c);  // first plan (cold) seeds the warm state
  c.time_s += warm_mpc.options().step_s;
  const hvac::HvacInputs warm_input = warm_mpc.decide(c);
  EXPECT_EQ(warm_mpc.stats().dual_warm_starts, 1u);

  const hvac::HvacInputs cold_input = cold_mpc.decide(c);
  ASSERT_EQ(cold_mpc.stats().failures, 0u);
  ASSERT_EQ(warm_mpc.stats().failures, 0u);

  EXPECT_NEAR(warm_input.supply_temp_c, cold_input.supply_temp_c, 2e-2);
  EXPECT_NEAR(warm_input.coil_temp_c, cold_input.coil_temp_c, 2e-2);
  EXPECT_NEAR(warm_input.recirculation, cold_input.recirculation, 1e-2);
  EXPECT_NEAR(warm_input.air_flow_kg_s, cold_input.air_flow_kg_s, 1e-2);
}

}  // namespace
