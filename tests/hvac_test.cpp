// Tests for the cabin thermal model and the HVAC plant, including
// energy-balance and envelope (C1–C10) property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "hvac/cabin_model.hpp"
#include "hvac/hvac_plant.hpp"
#include "sim/ode.hpp"
#include "util/random.hpp"

namespace evc::hvac {
namespace {

TEST(CabinModel, EquilibriumBalancesFluxes) {
  CabinThermalModel cabin(default_hvac_params());
  const double teq = cabin.equilibrium(18.0, 0.1, 35.0);
  // At equilibrium the derivative vanishes.
  EXPECT_NEAR(cabin.derivative(teq, 18.0, 0.1, 35.0), 0.0, 1e-12);
}

TEST(CabinModel, NoFlowEquilibriumIsAmbientPlusSolarRise) {
  const HvacParams p = default_hvac_params();
  CabinThermalModel cabin(p);
  const double teq = cabin.equilibrium(0.0, 0.0, 30.0);
  EXPECT_NEAR(teq, 30.0 + p.solar_load_w / p.wall_ua_w_per_k, 1e-9);
}

TEST(CabinModel, ExactStepMatchesRk4Integration) {
  const HvacParams p = default_hvac_params();
  CabinThermalModel cabin(p);
  const double ts = 10.0, mz = 0.2, to = 38.0, tz0 = 27.0, dt = 60.0;
  const double exact = cabin.step_exact(tz0, ts, mz, to, dt);
  const auto rhs = [&](double, const std::vector<double>& x,
                       std::vector<double>& dxdt) {
    dxdt[0] = cabin.derivative(x[0], ts, mz, to);
  };
  const double rk4 = sim::integrate_fixed(rhs, {tz0}, 0, dt, 0.05)[0];
  EXPECT_NEAR(exact, rk4, 1e-8);
}

TEST(CabinModel, StepConvergesToEquilibrium) {
  CabinThermalModel cabin(default_hvac_params());
  const double teq = cabin.equilibrium(12.0, 0.15, 40.0);
  const double t_long = cabin.step_exact(25.0, 12.0, 0.15, 40.0, 7200.0);
  EXPECT_NEAR(t_long, teq, 1e-4);
}

TEST(CabinModel, MonotoneResponseToSupplyTemp) {
  CabinThermalModel cabin(default_hvac_params());
  const double cold = cabin.step_exact(24.0, 10.0, 0.2, 35.0, 30.0);
  const double warm = cabin.step_exact(24.0, 40.0, 0.2, 35.0, 30.0);
  EXPECT_LT(cold, warm);
}

TEST(CabinModel, ZeroStepIsIdentity) {
  CabinThermalModel cabin(default_hvac_params());
  EXPECT_DOUBLE_EQ(cabin.step_exact(23.4, 10.0, 0.2, 35.0, 0.0), 23.4);
}

TEST(HvacPlant, MixerBlendsLinearly) {
  HvacPlant plant(default_hvac_params(), 24.0);
  EXPECT_DOUBLE_EQ(plant.mixed_temp(0.0, 40.0, 24.0), 40.0);
  EXPECT_DOUBLE_EQ(plant.mixed_temp(1.0, 40.0, 24.0), 24.0);
  EXPECT_DOUBLE_EQ(plant.mixed_temp(0.25, 40.0, 24.0), 36.0);
}

TEST(HvacPlant, SanitizeEnforcesEnvelope) {
  const HvacParams p = default_hvac_params();
  HvacPlant plant(p, 24.0);
  HvacInputs wild;
  wild.air_flow_kg_s = 5.0;        // way above C1
  wild.recirculation = 2.0;        // above C7
  wild.coil_temp_c = -40.0;        // below C5
  wild.supply_temp_c = 200.0;      // above C6
  const HvacInputs in = plant.sanitize(wild, 35.0, 24.0);
  EXPECT_LE(in.air_flow_kg_s, p.max_air_flow_kg_s);
  EXPECT_LE(in.recirculation, p.max_recirculation);
  EXPECT_GE(in.coil_temp_c, p.min_coil_temp_c);
  EXPECT_LE(in.supply_temp_c, p.max_supply_temp_c);
  EXPECT_LE(in.coil_temp_c, in.supply_temp_c + 1e-12);  // C3
}

TEST(HvacPlant, SanitizeRespectsPowerCaps) {
  const HvacParams p = default_hvac_params();
  HvacPlant plant(p, 24.0);
  // Demand maximum heating at maximum flow: the heater cap limits Ts.
  HvacInputs in;
  in.air_flow_kg_s = p.max_air_flow_kg_s;
  in.recirculation = 0.0;
  in.coil_temp_c = 0.0;  // clamps up to frost limit
  in.supply_temp_c = p.max_supply_temp_c;
  const HvacInputs s = plant.sanitize(in, 0.0, 20.0);
  const HvacPower power = plant.power_for(s, plant.mixed_temp(0.0, 0.0, 20.0));
  EXPECT_LE(power.heater_w, p.max_heater_power_w + 1.0);
  EXPECT_LE(power.cooler_w, p.max_cooler_power_w + 1.0);
  EXPECT_LE(power.fan_w, p.max_fan_power_w + 1.0);
}

TEST(HvacPlant, CoolingStepCoolsCabin) {
  HvacPlant plant(default_hvac_params(), 28.0);
  HvacInputs in;
  in.air_flow_kg_s = 0.25;
  in.recirculation = 0.5;
  in.coil_temp_c = 5.0;
  in.supply_temp_c = 5.0;
  const HvacStepResult r = plant.step(in, 38.0, 10.0);
  EXPECT_LT(r.cabin_temp_c, 28.0);
  EXPECT_GT(r.power.cooler_w, 0.0);
  EXPECT_NEAR(r.power.heater_w, 0.0, 1e-9);
}

TEST(HvacPlant, HeatingStepWarmsCabin) {
  HvacPlant plant(default_hvac_params(), 15.0);
  HvacInputs in;
  in.air_flow_kg_s = 0.25;
  in.recirculation = 0.5;
  in.coil_temp_c = 60.0;  // clamps down to Tm → cooler inactive
  in.supply_temp_c = 55.0;
  const HvacStepResult r = plant.step(in, 0.0, 10.0);
  EXPECT_GT(r.cabin_temp_c, 15.0);
  EXPECT_GT(r.power.heater_w, 0.0);
  EXPECT_NEAR(r.power.cooler_w, 0.0, 1e-9);
}

TEST(HvacPlant, FanPowerIsQuadraticInFlow) {
  const HvacParams p = default_hvac_params();
  HvacPlant plant(p, 24.0);
  HvacInputs lo, hi;
  lo.air_flow_kg_s = 0.1;
  hi.air_flow_kg_s = 0.2;
  lo.coil_temp_c = hi.coil_temp_c = 24.0;
  lo.supply_temp_c = hi.supply_temp_c = 24.0;
  const double pf_lo = plant.power_for(plant.sanitize(lo, 24, 24), 24).fan_w;
  const double pf_hi = plant.power_for(plant.sanitize(hi, 24, 24), 24).fan_w;
  EXPECT_NEAR(pf_hi / pf_lo, 4.0, 1e-9);
}

TEST(HvacPlant, IdleInputsDrawOnlyFanPower) {
  HvacPlant plant(default_hvac_params(), 24.0);
  HvacInputs in;
  in.recirculation = 0.5;
  in.air_flow_kg_s = 0.05;
  const double tm = plant.mixed_temp(0.5, 24.0, 24.0);
  in.coil_temp_c = tm;
  in.supply_temp_c = tm;
  const HvacStepResult r = plant.step(in, 24.0, 1.0);
  EXPECT_NEAR(r.power.heater_w, 0.0, 1e-9);
  EXPECT_NEAR(r.power.cooler_w, 0.0, 1e-9);
  EXPECT_GT(r.power.fan_w, 0.0);
}

// --- Property sweep: random demands always yield a physical operating point
class HvacEnvelopeProperty : public ::testing::TestWithParam<int> {};

TEST_P(HvacEnvelopeProperty, SanitizedPointIsAlwaysPhysical) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 101 + 3);
  const HvacParams p = default_hvac_params();
  HvacPlant plant(p, rng.uniform(15.0, 35.0));
  for (int i = 0; i < 50; ++i) {
    const double to = rng.uniform(-20.0, 45.0);
    HvacInputs req;
    req.air_flow_kg_s = rng.uniform(-0.1, 0.6);
    req.recirculation = rng.uniform(-0.5, 1.5);
    req.coil_temp_c = rng.uniform(-30.0, 80.0);
    req.supply_temp_c = rng.uniform(-30.0, 120.0);
    const HvacStepResult r = plant.step(req, to, 1.0);

    const HvacInputs& in = r.applied;
    EXPECT_GE(in.air_flow_kg_s, p.min_air_flow_kg_s - 1e-12);
    EXPECT_LE(in.air_flow_kg_s, p.max_air_flow_kg_s + 1e-12);
    EXPECT_GE(in.recirculation, 0.0);
    EXPECT_LE(in.recirculation, p.max_recirculation + 1e-12);
    EXPECT_LE(in.coil_temp_c, r.mixed_temp_c + 1e-9);   // C4
    EXPECT_LE(in.coil_temp_c, in.supply_temp_c + 1e-9); // C3
    EXPECT_LE(in.supply_temp_c, p.max_supply_temp_c + 1e-9);
    EXPECT_GE(r.power.heater_w, 0.0);
    EXPECT_GE(r.power.cooler_w, 0.0);
    EXPECT_LE(r.power.heater_w, p.max_heater_power_w + 1.0);
    EXPECT_LE(r.power.cooler_w, p.max_cooler_power_w + 1.0);
    EXPECT_LE(r.power.fan_w, p.max_fan_power_w + 1.0);
    EXPECT_TRUE(std::isfinite(r.cabin_temp_c));
    EXPECT_GT(r.cabin_temp_c, -60.0);
    EXPECT_LT(r.cabin_temp_c, 90.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HvacEnvelopeProperty, ::testing::Range(0, 15));

TEST(HvacParamsValidation, RejectsInconsistentConfig) {
  HvacParams p = default_hvac_params();
  p.comfort_min_c = 30.0;  // above comfort_max
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = default_hvac_params();
  p.target_temp_c = 40.0;  // outside comfort zone
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = default_hvac_params();
  p.heater_efficiency = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = default_hvac_params();
  p.min_air_flow_kg_s = 0.5;  // above max flow
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace evc::hvac
