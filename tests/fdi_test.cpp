// FDIR layer: health state machine transition table, residual filter
// gating, and the SensorFdi orchestrator (detection, isolation with
// virtual-sensor substitution, recovery, checkpoint round-trips).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "control/controller.hpp"
#include "hvac/hvac_params.hpp"
#include "sim/fdi/fdi.hpp"
#include "sim/fdi/health.hpp"
#include "sim/fdi/residual.hpp"
#include "util/serialize.hpp"

namespace evc::fdi {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

HealthOptions small_options() {
  HealthOptions o;
  o.suspect_after = 2;
  o.isolate_after = 3;
  o.min_isolation_steps = 4;
  o.readmit_after = 3;
  return o;
}

void drive(HealthStateMachine& m, bool consistent, std::size_t steps) {
  for (std::size_t i = 0; i < steps; ++i) m.step(consistent);
}

// --- Health state machine: every edge of the transition table ---

TEST(HealthMachine, HealthyStaysHealthyOnConsistentSteps) {
  HealthStateMachine m(small_options());
  drive(m, true, 50);
  EXPECT_EQ(m.state(), SensorHealth::kHealthy);
  EXPECT_EQ(m.counters().detections, 0u);
  EXPECT_FALSE(m.isolated());
}

TEST(HealthMachine, HealthyToSuspectExactlyAtSuspectAfter) {
  HealthStateMachine m(small_options());
  drive(m, false, small_options().suspect_after - 1);
  EXPECT_EQ(m.state(), SensorHealth::kHealthy);  // one short of the edge
  m.step(false);
  EXPECT_EQ(m.state(), SensorHealth::kSuspect);
  EXPECT_EQ(m.counters().detections, 1u);
}

TEST(HealthMachine, SuspectFallsBackToHealthyOnFirstConsistentStep) {
  HealthStateMachine m(small_options());
  drive(m, false, small_options().suspect_after);
  ASSERT_EQ(m.state(), SensorHealth::kSuspect);
  m.step(true);  // false-trip guard: a single spike never escalates
  EXPECT_EQ(m.state(), SensorHealth::kHealthy);
  EXPECT_EQ(m.counters().false_trips, 1u);
  EXPECT_EQ(m.counters().isolations, 0u);
}

TEST(HealthMachine, SuspectToIsolatedExactlyAtIsolateAfter) {
  const HealthOptions o = small_options();
  HealthStateMachine m(o);
  drive(m, false, o.suspect_after);
  drive(m, false, o.isolate_after - 1);
  EXPECT_EQ(m.state(), SensorHealth::kSuspect);  // one short of the edge
  m.step(false);
  EXPECT_EQ(m.state(), SensorHealth::kIsolated);
  EXPECT_EQ(m.counters().isolations, 1u);
  EXPECT_TRUE(m.isolated());
}

TEST(HealthMachine, IsolationDwellBlocksEarlyRecoveryProbe) {
  const HealthOptions o = small_options();
  HealthStateMachine m(o);
  drive(m, false, o.suspect_after + o.isolate_after);
  ASSERT_EQ(m.state(), SensorHealth::kIsolated);
  // Consistent readings inside the dwell window must not start a probe —
  // a stuck sensor sweeping past the true value looks consistent briefly.
  drive(m, true, o.min_isolation_steps);
  EXPECT_EQ(m.state(), SensorHealth::kIsolated);
  EXPECT_EQ(m.counters().recovery_probes, 0u);
  m.step(true);  // first consistent step past the dwell → probe begins
  EXPECT_EQ(m.state(), SensorHealth::kRecovering);
  EXPECT_EQ(m.counters().recovery_probes, 1u);
  EXPECT_TRUE(m.isolated());  // still not trusted while recovering
}

TEST(HealthMachine, RecoveringReTripsStraightToIsolated) {
  const HealthOptions o = small_options();
  HealthStateMachine m(o);
  drive(m, false, o.suspect_after + o.isolate_after);
  drive(m, true, o.min_isolation_steps + 1);
  ASSERT_EQ(m.state(), SensorHealth::kRecovering);
  m.step(false);  // any inconsistency during the probe re-trips
  EXPECT_EQ(m.state(), SensorHealth::kIsolated);
  EXPECT_EQ(m.counters().re_trips, 1u);
  EXPECT_EQ(m.counters().isolations, 2u);  // re-trip counts as an isolation
}

TEST(HealthMachine, RecoveringReadmitsExactlyAtReadmitAfter) {
  const HealthOptions o = small_options();
  HealthStateMachine m(o);
  drive(m, false, o.suspect_after + o.isolate_after);
  drive(m, true, o.min_isolation_steps + 1);
  ASSERT_EQ(m.state(), SensorHealth::kRecovering);
  // The probe step itself counted as the first consistent step, so
  // readmit_after − 2 more leave the machine one short of the edge.
  drive(m, true, o.readmit_after - 2);
  EXPECT_EQ(m.state(), SensorHealth::kRecovering);
  m.step(true);
  EXPECT_EQ(m.state(), SensorHealth::kHealthy);
  EXPECT_EQ(m.counters().readmissions, 1u);
  EXPECT_FALSE(m.isolated());
}

TEST(HealthMachine, ReTripAfterProbeRequiresFullDwellAgain) {
  const HealthOptions o = small_options();
  HealthStateMachine m(o);
  drive(m, false, o.suspect_after + o.isolate_after);
  drive(m, true, o.min_isolation_steps + 1);  // → recovering
  m.step(false);                              // re-trip → isolated
  ASSERT_EQ(m.state(), SensorHealth::kIsolated);
  drive(m, true, o.min_isolation_steps);
  EXPECT_EQ(m.state(), SensorHealth::kIsolated);  // dwell restarted
  m.step(true);
  EXPECT_EQ(m.state(), SensorHealth::kRecovering);
}

TEST(HealthMachine, StepsInStatePartitionTotalSteps) {
  const HealthOptions o = small_options();
  HealthStateMachine m(o);
  const std::size_t total = 40;
  for (std::size_t i = 0; i < total; ++i) m.step(i % 7 < 3);
  std::size_t sum = 0;
  for (std::size_t s : m.counters().steps_in_state) sum += s;
  EXPECT_EQ(sum, total);
}

TEST(HealthMachine, SaveLoadRoundTripsMidEpisode) {
  const HealthOptions o = small_options();
  HealthStateMachine a(o);
  drive(a, false, o.suspect_after + 1);  // mid-way through a suspect streak

  BinaryWriter w;
  a.save_state(w);
  const std::string bytes = w.take();
  HealthStateMachine b(o);
  BinaryReader r(bytes);
  b.load_state(r);
  EXPECT_TRUE(r.at_end());

  // Both machines must continue identically, edge for edge.
  for (int i = 0; i < 30; ++i) {
    const bool consistent = i % 5 != 0;
    EXPECT_EQ(a.step(consistent), b.step(consistent)) << "step " << i;
  }
  EXPECT_EQ(a.counters().isolations, b.counters().isolations);
  EXPECT_EQ(a.counters().recovery_probes, b.counters().recovery_probes);
}

// --- Residual filter: chi-square gating and innovation gating ---

ResidualOptions unit_residual() {
  ResidualOptions o;
  o.process_noise = 0.05;
  o.measurement_noise = 0.25;
  o.initial_variance = 1.0;
  o.gate_nis = kChiSq1Tail01Percent;
  o.max_variance = 25.0;
  return o;
}

TEST(ResidualFilter, ConsistentMeasurementFusesAndPassesGate) {
  ScalarResidualFilter f(20.0, unit_residual());
  const ResidualUpdate u = f.step(20.0, 1.0, 20.1, /*allow_fuse=*/true);
  EXPECT_TRUE(u.within_gate);
  EXPECT_TRUE(u.fused);
  EXPECT_NEAR(u.innovation, 0.1, 1e-12);
  // NIS = ν²/S with S = (P0 + q) + R.
  EXPECT_NEAR(u.nis, 0.01 / (1.0 + 0.05 + 0.25), 1e-12);
  EXPECT_GT(f.estimate(), 20.0);  // pulled toward the measurement
  EXPECT_LT(f.estimate(), 20.1);
}

TEST(ResidualFilter, OutlierIsGatedAndNeverFused) {
  ScalarResidualFilter f(20.0, unit_residual());
  const ResidualUpdate u = f.step(20.0, 1.0, 45.0, /*allow_fuse=*/true);
  EXPECT_FALSE(u.within_gate);
  EXPECT_FALSE(u.fused);
  // Innovation gating: the outlier must not poison the estimate.
  EXPECT_DOUBLE_EQ(f.estimate(), 20.0);
}

TEST(ResidualFilter, NaNMeasurementFailsGateWithNaNNis) {
  ScalarResidualFilter f(20.0, unit_residual());
  const ResidualUpdate u = f.step(20.0, 1.0, kNaN, /*allow_fuse=*/true);
  EXPECT_FALSE(u.within_gate);
  EXPECT_FALSE(u.fused);
  EXPECT_TRUE(std::isnan(u.nis));
  EXPECT_DOUBLE_EQ(f.estimate(), 20.0);  // coasts on the model
}

TEST(ResidualFilter, IsolatedSensorNeverFusesEvenInsideGate) {
  ScalarResidualFilter f(20.0, unit_residual());
  const ResidualUpdate u = f.step(20.0, 1.0, 20.05, /*allow_fuse=*/false);
  EXPECT_TRUE(u.within_gate);
  EXPECT_FALSE(u.fused);
  EXPECT_DOUBLE_EQ(f.estimate(), 20.0);
}

TEST(ResidualFilter, CoastingVarianceIsCeiled) {
  ResidualOptions o = unit_residual();
  o.max_variance = 3.0;
  ScalarResidualFilter f(20.0, o);
  for (int i = 0; i < 500; ++i) f.step(20.0, 1.0, kNaN, false);
  // Without the ceiling P grows without bound and every later reading
  // would look consistent (the gate dissolves).
  EXPECT_LE(f.variance(), 3.0 + 1e-12);
}

TEST(ResidualFilter, SaveLoadRoundTripsBitExactly) {
  ScalarResidualFilter a(21.375, unit_residual());
  a.step(21.4, 0.97, 21.5, true);
  a.step(21.45, 0.97, kNaN, true);

  BinaryWriter w;
  a.save_state(w);
  const std::string bytes = w.take();
  ScalarResidualFilter b(0.0, unit_residual());
  BinaryReader r(bytes);
  b.load_state(r);
  EXPECT_EQ(a.estimate(), b.estimate());
  EXPECT_EQ(a.variance(), b.variance());
}

// --- SensorFdi orchestrator ---

FdiOptions fast_fdi_options() {
  FdiOptions o;
  o.enabled = true;
  for (FdiSensorOptions* s : {&o.cabin, &o.outside, &o.soc}) {
    s->health.suspect_after = 2;
    s->health.isolate_after = 3;
    s->health.min_isolation_steps = 5;
    s->health.readmit_after = 4;
  }
  return o;
}

ctl::ControlContext healthy_context(double t, double cabin = 24.0) {
  ctl::ControlContext c;
  c.time_s = t;
  c.dt_s = 1.0;
  c.cabin_temp_c = cabin;
  c.outside_temp_c = 35.0;
  c.soc_percent = 80.0;
  c.motor_power_forecast_w = {5000.0};
  c.outside_temp_forecast_c = {35.0};
  return c;
}

hvac::HvacInputs mild_actuation() {
  hvac::HvacInputs in;
  in.supply_temp_c = 20.0;
  in.coil_temp_c = 10.0;
  in.recirculation = 0.5;
  in.air_flow_kg_s = 0.05;
  return in;
}

TEST(SensorFdi, HealthySensorsPassThroughBitExactly) {
  SensorFdi fdi(fast_fdi_options(), hvac::default_hvac_params());
  for (int i = 0; i < 20; ++i) {
    ctl::ControlContext c = healthy_context(i, 24.0 + 0.01 * i);
    c.soc_percent = 80.0 - 0.01 * i;
    const FdiFrame frame = fdi.assess(c);
    // Bit-for-bit pass-through: the FDI layer only observes.
    EXPECT_EQ(frame.cabin_temp_c, c.cabin_temp_c);
    EXPECT_EQ(frame.outside_temp_c, c.outside_temp_c);
    EXPECT_EQ(frame.soc_percent, c.soc_percent);
    EXPECT_FALSE(frame.any_substituted());
    fdi.commit(mild_actuation());
  }
  EXPECT_EQ(fdi.cabin_health(), SensorHealth::kHealthy);
  EXPECT_EQ(fdi.stats().substituted_steps, 0u);
  EXPECT_GT(fdi.stats().cabin.fused_steps, 0u);
}

TEST(SensorFdi, StuckCabinSensorIsolatedWithinDetectionWindow) {
  const FdiOptions options = fast_fdi_options();
  SensorFdi fdi(options, hvac::default_hvac_params());

  // Establish trust with healthy readings.
  int t = 0;
  for (; t < 15; ++t) {
    fdi.assess(healthy_context(t));
    fdi.commit(mild_actuation());
  }
  const double estimate_before = fdi.cabin_estimate_c();

  // Cabin sensor sticks at a wildly wrong value.
  const std::size_t window =
      options.cabin.health.suspect_after + options.cabin.health.isolate_after;
  FdiFrame frame;
  for (std::size_t k = 0; k < window; ++k, ++t) {
    frame = fdi.assess(healthy_context(t, /*cabin=*/55.0));
    fdi.commit(mild_actuation());
  }
  EXPECT_EQ(frame.cabin_health, SensorHealth::kIsolated);
  EXPECT_TRUE(frame.cabin_substituted);
  // The substituted value is the live model estimate, not the stuck 55.
  EXPECT_NEAR(frame.cabin_temp_c, estimate_before, 2.0);
  EXPECT_LT(frame.cabin_temp_c, 30.0);
  // Healthy sensors are untouched by the cabin isolation.
  EXPECT_FALSE(frame.outside_substituted);
  EXPECT_FALSE(frame.soc_substituted);
  EXPECT_GT(fdi.stats().cabin.health.isolations, 0u);
  EXPECT_GT(fdi.stats().substituted_steps, 0u);
}

TEST(SensorFdi, DroppedOutSensorIsIsolatedAndRecovers) {
  const FdiOptions options = fast_fdi_options();
  SensorFdi fdi(options, hvac::default_hvac_params());

  int t = 0;
  for (; t < 10; ++t) {
    fdi.assess(healthy_context(t));
    fdi.commit(mild_actuation());
  }

  // Permanent dropout (NaN) until isolated.
  const std::size_t window =
      options.cabin.health.suspect_after + options.cabin.health.isolate_after;
  for (std::size_t k = 0; k < window; ++k, ++t) {
    fdi.assess(healthy_context(t, kNaN));
    fdi.commit(mild_actuation());
  }
  ASSERT_EQ(fdi.cabin_health(), SensorHealth::kIsolated);

  // Sensor comes back agreeing with the virtual estimate: dwell, probe,
  // then re-admission — substitution stops only after readmit_after.
  const std::size_t recovery = options.cabin.health.min_isolation_steps +
                               options.cabin.health.readmit_after + 4;
  FdiFrame frame;
  for (std::size_t k = 0; k < recovery; ++k, ++t) {
    frame = fdi.assess(healthy_context(t, fdi.cabin_estimate_c()));
    fdi.commit(mild_actuation());
  }
  EXPECT_EQ(frame.cabin_health, SensorHealth::kHealthy);
  EXPECT_FALSE(frame.cabin_substituted);
  EXPECT_GT(fdi.stats().cabin.health.recovery_probes, 0u);
  EXPECT_GT(fdi.stats().cabin.health.readmissions, 0u);
}

TEST(SensorFdi, SaveLoadResumesMidIsolationBitExactly) {
  const FdiOptions options = fast_fdi_options();
  SensorFdi a(options, hvac::default_hvac_params());

  int t = 0;
  for (; t < 12; ++t) {
    a.assess(healthy_context(t));
    a.commit(mild_actuation());
  }
  for (int k = 0; k < 4; ++k, ++t) {  // mid-way into a fault episode
    a.assess(healthy_context(t, 55.0));
    a.commit(mild_actuation());
  }

  BinaryWriter w;
  a.save_state(w);
  const std::string bytes = w.take();
  SensorFdi b(options, hvac::default_hvac_params());
  BinaryReader r(bytes);
  b.load_state(r);
  EXPECT_TRUE(r.at_end());

  // Both instances continue the episode identically, frame for frame.
  for (int k = 0; k < 30; ++k, ++t) {
    const double cabin = k < 10 ? 55.0 : 24.0;
    const FdiFrame fa = a.assess(healthy_context(t, cabin));
    const FdiFrame fb = b.assess(healthy_context(t, cabin));
    EXPECT_EQ(fa.cabin_temp_c, fb.cabin_temp_c) << "step " << k;
    EXPECT_EQ(fa.cabin_health, fb.cabin_health) << "step " << k;
    EXPECT_EQ(fa.cabin_substituted, fb.cabin_substituted) << "step " << k;
    a.commit(mild_actuation());
    b.commit(mild_actuation());
  }
  EXPECT_EQ(a.stats().cabin.health.isolations,
            b.stats().cabin.health.isolations);
  EXPECT_EQ(a.stats().substituted_steps, b.stats().substituted_steps);
}

TEST(SensorFdi, SocReportJumpIsIsolatedAndSubstituteStaysPlausible) {
  const FdiOptions options = fast_fdi_options();
  SensorFdi fdi(options, hvac::default_hvac_params());

  auto context_at = [&](int step, double soc) {
    ctl::ControlContext c = healthy_context(step);
    c.motor_power_forecast_w = {20000.0};
    c.soc_percent = soc;
    return c;
  };

  // Healthy phase: reported SoC follows a slow discharge.
  double soc = 80.0;
  int t = 0;
  for (; t < 15; ++t) {
    fdi.assess(context_at(t, soc));
    fdi.commit(mild_actuation());
    soc -= 0.01;
  }
  ASSERT_EQ(fdi.soc_health(), SensorHealth::kHealthy);

  // BMS glitch: the report jumps to a stuck implausible value. The coulomb
  // counter disagrees immediately and the report is isolated within the
  // detection window; the substitute keeps coulomb-counting from the last
  // trusted estimate instead of swallowing the stuck 95 %.
  const std::size_t window =
      options.soc.health.suspect_after + options.soc.health.isolate_after;
  FdiFrame frame;
  for (std::size_t k = 0; k < window; ++k, ++t) {
    frame = fdi.assess(context_at(t, 95.0));
    fdi.commit(mild_actuation());
  }
  EXPECT_EQ(frame.soc_health, SensorHealth::kIsolated);
  EXPECT_TRUE(frame.soc_substituted);
  EXPECT_LT(frame.soc_percent, 81.0);
  EXPECT_GT(frame.soc_percent, 75.0);
}

}  // namespace
}  // namespace evc::fdi
