// Tests for road load, motor efficiency map, and the power train model.
#include <gtest/gtest.h>

#include <cmath>

#include "drivecycle/standard_cycles.hpp"
#include "powertrain/power_train.hpp"
#include "util/units.hpp"

namespace evc::pt {
namespace {

TEST(RoadLoad, ZeroAtStandstillOnFlat) {
  RoadLoadModel model(nissan_leaf_params());
  const RoadLoad load = model.road_load(0.0, 0.0);
  EXPECT_DOUBLE_EQ(load.aero_n, 0.0);
  EXPECT_DOUBLE_EQ(load.grade_n, 0.0);
  EXPECT_DOUBLE_EQ(load.rolling_n, 0.0);
}

TEST(RoadLoad, AeroIsQuadraticInSpeed) {
  RoadLoadModel model(nissan_leaf_params());
  const double a10 = model.road_load(10.0, 0.0).aero_n;
  const double a20 = model.road_load(20.0, 0.0).aero_n;
  EXPECT_NEAR(a20 / a10, 4.0, 1e-9);
}

TEST(RoadLoad, HeadwindIncreasesAero) {
  VehicleParams params = nissan_leaf_params();
  params.headwind_mps = 5.0;
  RoadLoadModel windy(params);
  RoadLoadModel calm(nissan_leaf_params());
  EXPECT_GT(windy.road_load(20.0, 0.0).aero_n,
            calm.road_load(20.0, 0.0).aero_n);
}

TEST(RoadLoad, GradeMatchesAnalyticForm) {
  const VehicleParams p = nissan_leaf_params();
  RoadLoadModel model(p);
  // 100 % grade = 45°: Fgr = m·g·sin(45°).
  EXPECT_NEAR(model.road_load(0.0, 100.0).grade_n,
              p.mass_kg * 9.81 * std::sin(std::atan(1.0)), 1e-6);
  // Downhill is negative.
  EXPECT_LT(model.road_load(10.0, -5.0).grade_n, 0.0);
}

TEST(RoadLoad, CruisePowerAt100KmhIsLeafLike) {
  // A Leaf cruising at 100 km/h on flat road draws roughly 13–18 kW —
  // the calibration anchor of paper §II-B.
  PowerTrain pt(nissan_leaf_params());
  drive::DriveSample s;
  s.speed_mps = units::kmh_to_mps(100.0);
  const double p = pt.power(s).electrical_power_w;
  EXPECT_GT(p, 11e3);
  EXPECT_LT(p, 19e3);
}

TEST(RoadLoad, RejectsNegativeSpeed) {
  RoadLoadModel model(nissan_leaf_params());
  EXPECT_THROW(model.road_load(-1.0, 0.0), std::invalid_argument);
}

TEST(MotorMap, EfficiencyWithinPhysicalBounds) {
  MotorEfficiencyMap map;
  for (double w : {0.0, 100.0, 400.0, 900.0})
    for (double t : {0.0, 20.0, 120.0, 260.0}) {
      const double e = map.efficiency(w, t);
      EXPECT_GT(e, 0.0);
      EXPECT_LE(e, 0.951);
    }
}

TEST(MotorMap, PeakIsInMidRange) {
  MotorEfficiencyMap map;
  const double mid = map.efficiency(500.0, 60.0);
  EXPECT_GT(mid, 0.88);                         // broad efficient island
  EXPECT_LT(map.efficiency(30.0, 10.0), mid);   // crawling is inefficient
  EXPECT_LT(map.efficiency(100.0, 260.0), mid); // launch torque is lossy
}

TEST(MotorMap, SymmetricInTorqueSign) {
  MotorEfficiencyMap map;
  EXPECT_DOUBLE_EQ(map.efficiency(300.0, 80.0), map.efficiency(300.0, -80.0));
}

TEST(PowerTrain, RegenIsNegativeAndCapped) {
  const VehicleParams params = nissan_leaf_params();
  PowerTrain pt(params);
  drive::DriveSample s;
  s.speed_mps = 25.0;
  s.accel_mps2 = -3.0;  // hard braking
  const TractionPower p = pt.power(s);
  EXPECT_LT(p.mechanical_power_w, 0.0);
  EXPECT_LT(p.electrical_power_w, 0.0);
  EXPECT_GE(p.electrical_power_w, -params.max_regen_power_w);
}

TEST(PowerTrain, MotorPowerIsCapped) {
  const VehicleParams params = nissan_leaf_params();
  PowerTrain pt(params);
  drive::DriveSample s;
  s.speed_mps = 30.0;
  s.accel_mps2 = 4.0;  // beyond the motor's capability
  EXPECT_LE(pt.power(s).electrical_power_w, params.max_motor_power_w);
}

TEST(PowerTrain, ElectricalExceedsMechanicalWhenMotoring) {
  PowerTrain pt(nissan_leaf_params());
  drive::DriveSample s;
  s.speed_mps = 15.0;
  s.accel_mps2 = 0.5;
  const TractionPower p = pt.power(s);
  ASSERT_GT(p.mechanical_power_w, 0.0);
  EXPECT_GT(p.electrical_power_w, p.mechanical_power_w);
  // And the converse when generating.
  s.accel_mps2 = -2.0;
  const TractionPower r = pt.power(s);
  ASSERT_LT(r.mechanical_power_w, 0.0);
  EXPECT_GT(r.electrical_power_w, r.mechanical_power_w);  // less negative
}

TEST(PowerTrain, MonotoneInSlope) {
  PowerTrain pt(nissan_leaf_params());
  double prev = -1e18;
  for (double slope : {-6.0, -2.0, 0.0, 2.0, 6.0}) {
    drive::DriveSample s;
    s.speed_mps = 15.0;
    s.slope_percent = slope;
    const double p = pt.power(s).electrical_power_w;
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerTrain, NedcConsumptionIsLeafLike) {
  // Leaf-class NEDC consumption is ~120–160 Wh/km including accessories —
  // the paper verified its power train model against this figure.
  PowerTrain pt(nissan_leaf_params());
  const auto profile =
      drive::make_cycle_profile(drive::StandardCycle::kNedc, 20.0);
  const double wh_per_km = pt.trip_energy_j(profile) / 3600.0 /
                           (profile.total_distance_m() / 1000.0);
  EXPECT_GT(wh_per_km, 85.0);
  EXPECT_LT(wh_per_km, 180.0);
}

class PowerTrainCycleSweep
    : public ::testing::TestWithParam<drive::StandardCycle> {};

TEST_P(PowerTrainCycleSweep, TraceIsBoundedAndFinite) {
  PowerTrain pt(nissan_leaf_params());
  const auto profile = drive::make_cycle_profile(GetParam(), 20.0);
  const auto trace = pt.power_trace(profile);
  ASSERT_EQ(trace.size(), profile.size());
  const VehicleParams& params = pt.params();
  for (double p : trace) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_LE(p, params.max_motor_power_w + 1e-6);
    EXPECT_GE(p, -params.max_regen_power_w - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCycles, PowerTrainCycleSweep,
                         ::testing::ValuesIn(drive::all_standard_cycles()),
                         [](const auto& suite_info) {
                           return drive::cycle_name(suite_info.param);
                         });

}  // namespace
}  // namespace evc::pt
