// Bitwise-reproducibility contract of the SIMD dispatch layer.
//
// Every runnable kernel table (scalar / sse2 / avx2 / neon, whatever this
// host offers) must produce doubles bit-identical to the blocked scalar
// reference re-implemented below with plain doubles — on every size,
// remainder lanes included, and on unaligned pointers. This is the property
// that lets checkpoint/soak byte-identity hold no matter which target a
// host auto-selects. Comparisons are on bit patterns, never EXPECT_DOUBLE_EQ.
//
// NOTE: this file must be compiled with -ffp-contract=off (set in
// tests/CMakeLists.txt) so the reference below cannot be fused into FMAs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "numerics/aligned.hpp"
#include "numerics/matrix.hpp"
#include "numerics/simd.hpp"
#include "numerics/simd_blocked.hpp"
#include "numerics/vector.hpp"
#include "util/random.hpp"

namespace {

using namespace evc;
using num::simd::Isa;
using num::simd::KernelTable;

std::uint64_t bits(double v) {
  std::uint64_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

#define EXPECT_BITEQ(a, b) EXPECT_EQ(bits(a), bits(b))

// ---------------------------------------------------------------------------
// Test-local blocked scalar reference: the documented accumulation order —
// four logical lanes, eight-element unroll with two accumulators, reduction
// tree (l0+l2)+(l1+l3), sequential scalar tail — written out with plain
// doubles, independent of the library's Pack machinery.

struct RefLanes {
  double l[4];
};

RefLanes ref_zero() { return {{0.0, 0.0, 0.0, 0.0}}; }

void ref_acc(RefLanes& acc, const double* x, const double* y) {
  for (int lane = 0; lane < 4; ++lane) {
    const double prod = x[lane] * y[lane];
    acc.l[lane] = acc.l[lane] + prod;
  }
}

double ref_reduce(const RefLanes& v) {
  return (v.l[0] + v.l[2]) + (v.l[1] + v.l[3]);
}

double ref_dot(const double* x, const double* y, std::size_t n) {
  RefLanes acc0 = ref_zero();
  RefLanes acc1 = ref_zero();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    ref_acc(acc0, x + i, y + i);
    ref_acc(acc1, x + i + 4, y + i + 4);
  }
  for (int lane = 0; lane < 4; ++lane) acc0.l[lane] += acc1.l[lane];
  for (; i + 4 <= n; i += 4) ref_acc(acc0, x + i, y + i);
  double r = ref_reduce(acc0);
  for (; i < n; ++i) r += x[i] * y[i];
  return r;
}

void ref_axpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double prod = a * x[i];
    y[i] = y[i] + prod;
  }
}

void ref_scale(double a, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = a * x[i];
}

void ref_gemv(double alpha, const double* a, std::size_t lda, std::size_t rows,
              std::size_t cols, const double* x, double* y) {
  for (std::size_t i = 0; i < rows; ++i)
    y[i] += alpha * ref_dot(a + i * lda, x, cols);
}

void ref_gemv_t(double alpha, const double* a, std::size_t lda,
                std::size_t rows, std::size_t cols, const double* x,
                double* y) {
  for (std::size_t i = 0; i < rows; ++i)
    ref_axpy(alpha * x[i], a + i * lda, y, cols);
}

void ref_gemm(double alpha, const double* a, std::size_t lda, const double* b,
              std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
              std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t p = 0; p < k; ++p)
      ref_axpy(alpha * a[i * lda + p], b + p * ldb, c + i * ldc, n);
}

// ---------------------------------------------------------------------------

std::vector<double> random_data(SplitMix64& rng, std::size_t n) {
  std::vector<double> out(n);
  // Mixed magnitudes and signs so reassociated sums would actually differ.
  for (double& v : out) v = rng.uniform(-3.0, 3.0) * (1.0 + rng.uniform(0.0, 1e4));
  return out;
}

/// Sizes that hit every lane-remainder class (mod 8 and mod 4) plus a pair
/// of larger blocks.
std::vector<std::size_t> test_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 1; n <= 67; ++n) sizes.push_back(n);
  sizes.push_back(128);
  sizes.push_back(129);
  return sizes;
}

class SimdTargetTest : public ::testing::TestWithParam<Isa> {
 protected:
  const KernelTable& table() const {
    const KernelTable* t = num::simd::table_for(GetParam());
    EXPECT_NE(t, nullptr);
    return *t;
  }
};

TEST_P(SimdTargetTest, DotMatchesBlockedReferenceBitwise) {
  const KernelTable& tbl = table();
  SplitMix64 rng(11);
  for (const std::size_t n : test_sizes()) {
    const auto x = random_data(rng, n);
    const auto y = random_data(rng, n);
    EXPECT_BITEQ(tbl.dot(x.data(), y.data(), n), ref_dot(x.data(), y.data(), n))
        << "n=" << n;
  }
}

TEST_P(SimdTargetTest, AxpyMatchesBitwise) {
  const KernelTable& tbl = table();
  SplitMix64 rng(12);
  for (const std::size_t n : test_sizes()) {
    const auto x = random_data(rng, n);
    auto y_ref = random_data(rng, n);
    auto y_tbl = y_ref;
    const double a = rng.uniform(-2.0, 2.0);
    ref_axpy(a, x.data(), y_ref.data(), n);
    tbl.axpy(a, x.data(), y_tbl.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_BITEQ(y_tbl[i], y_ref[i]) << "n=" << n << " i=" << i;
  }
}

TEST_P(SimdTargetTest, ScaleMatchesBitwise) {
  const KernelTable& tbl = table();
  SplitMix64 rng(13);
  for (const std::size_t n : test_sizes()) {
    auto x_ref = random_data(rng, n);
    auto x_tbl = x_ref;
    const double a = rng.uniform(-2.0, 2.0);
    ref_scale(a, x_ref.data(), n);
    tbl.scale(a, x_tbl.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_BITEQ(x_tbl[i], x_ref[i]) << "n=" << n << " i=" << i;
  }
}

TEST_P(SimdTargetTest, GemvMatchesBitwise) {
  const KernelTable& tbl = table();
  SplitMix64 rng(14);
  for (const std::size_t rows : {1u, 3u, 7u, 12u, 31u}) {
    for (const std::size_t cols : {1u, 5u, 8u, 13u, 64u, 67u}) {
      const auto a = random_data(rng, rows * cols);
      const auto x = random_data(rng, cols);
      auto y_ref = random_data(rng, rows);
      auto y_tbl = y_ref;
      const double alpha = rng.uniform(-2.0, 2.0);
      ref_gemv(alpha, a.data(), cols, rows, cols, x.data(), y_ref.data());
      tbl.gemv(alpha, a.data(), cols, rows, cols, x.data(), y_tbl.data());
      for (std::size_t i = 0; i < rows; ++i)
        EXPECT_BITEQ(y_tbl[i], y_ref[i])
            << rows << "x" << cols << " i=" << i;
    }
  }
}

TEST_P(SimdTargetTest, GemvTransposeMatchesBitwise) {
  const KernelTable& tbl = table();
  SplitMix64 rng(15);
  for (const std::size_t rows : {1u, 3u, 7u, 12u, 31u}) {
    for (const std::size_t cols : {1u, 5u, 8u, 13u, 64u, 67u}) {
      const auto a = random_data(rng, rows * cols);
      const auto x = random_data(rng, rows);
      auto y_ref = random_data(rng, cols);
      auto y_tbl = y_ref;
      const double alpha = rng.uniform(-2.0, 2.0);
      ref_gemv_t(alpha, a.data(), cols, rows, cols, x.data(), y_ref.data());
      tbl.gemv_t(alpha, a.data(), cols, rows, cols, x.data(), y_tbl.data());
      for (std::size_t j = 0; j < cols; ++j)
        EXPECT_BITEQ(y_tbl[j], y_ref[j])
            << rows << "x" << cols << " j=" << j;
    }
  }
}

TEST_P(SimdTargetTest, GemmMatchesBitwise) {
  const KernelTable& tbl = table();
  SplitMix64 rng(16);
  for (const std::size_t m : {1u, 4u, 9u}) {
    for (const std::size_t k : {1u, 6u, 17u}) {
      for (const std::size_t n : {1u, 7u, 8u, 33u}) {
        const auto a = random_data(rng, m * k);
        const auto b = random_data(rng, k * n);
        auto c_ref = random_data(rng, m * n);
        auto c_tbl = c_ref;
        const double alpha = rng.uniform(-2.0, 2.0);
        ref_gemm(alpha, a.data(), k, b.data(), n, c_ref.data(), n, m, k, n);
        tbl.gemm(alpha, a.data(), k, b.data(), n, c_tbl.data(), n, m, k, n);
        for (std::size_t i = 0; i < m * n; ++i)
          EXPECT_BITEQ(c_tbl[i], c_ref[i])
              << m << "x" << k << "x" << n << " i=" << i;
      }
    }
  }
}

TEST_P(SimdTargetTest, UnalignedPointersMatchBitwise) {
  // Offset every operand by one double so no pointer is 16-, 32- or 64-byte
  // aligned: the kernels promise unaligned-safe loads/stores.
  const KernelTable& tbl = table();
  SplitMix64 rng(17);
  for (const std::size_t n : {7u, 16u, 29u, 64u, 65u}) {
    const auto xs = random_data(rng, n + 1);
    auto ys_ref = random_data(rng, n + 1);
    auto ys_tbl = ys_ref;
    const double* x = xs.data() + 1;
    ASSERT_NE(reinterpret_cast<std::uintptr_t>(x) % 16, 0u);

    EXPECT_BITEQ(tbl.dot(x, ys_tbl.data() + 1, n),
                 ref_dot(x, ys_ref.data() + 1, n))
        << "n=" << n;

    const double a = rng.uniform(-2.0, 2.0);
    ref_axpy(a, x, ys_ref.data() + 1, n);
    tbl.axpy(a, x, ys_tbl.data() + 1, n);
    for (std::size_t i = 0; i <= n; ++i)
      EXPECT_BITEQ(ys_tbl[i], ys_ref[i]) << "n=" << n << " i=" << i;
  }
}

/// Per-target fixed-dimension table, mirroring the switch in fixed_table()
/// but for an arbitrary target rather than the active one.
const num::simd::FixedKernelTable* fixed_table_for(Isa isa, std::size_t n) {
  switch (isa) {
    case Isa::kScalar:
      return num::simd::scalar_fixed_table(n);
    case Isa::kSse2:
      return num::simd::sse2_fixed_table(n);
    case Isa::kAvx2:
      return num::simd::avx2_fixed_table(n);
    case Isa::kNeon:
      return num::simd::neon_fixed_table(n);
    default:
      return nullptr;
  }
}

TEST_P(SimdTargetTest, FixedKernelsMatchGenericBitwise) {
  // The compile-time-N kernels the condensed MPC hot path dispatches to
  // (n = 60 inputs, n = 134 decision variables) must be bit-identical to the
  // size-generic table of the same target — same blocked order, the loop
  // trip counts just resolved at compile time. Anything else would make the
  // planner's output depend on whether a vector length hit a specialization.
  const KernelTable& tbl = table();
  SplitMix64 rng(18);
  for (const std::size_t n :
       {num::simd::kFixedCondensedDim, num::simd::kFixedFullDim}) {
    const num::simd::FixedKernelTable* fixed =
        fixed_table_for(GetParam(), n);
    ASSERT_NE(fixed, nullptr) << "n=" << n;
    EXPECT_EQ(fixed->n, n);

    const auto x = random_data(rng, n);
    const auto y = random_data(rng, n);
    EXPECT_BITEQ(fixed->dot(x.data(), y.data()),
                 tbl.dot(x.data(), y.data(), n))
        << "n=" << n;

    const double a = rng.uniform(-2.0, 2.0);
    auto y_fix = y;
    auto y_gen = y;
    fixed->axpy(a, x.data(), y_fix.data());
    tbl.axpy(a, x.data(), y_gen.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_BITEQ(y_fix[i], y_gen[i]) << "n=" << n << " i=" << i;

    // gemv/gemv_t: the fixed column count n is the compile-time parameter,
    // rows stays runtime. Exercise short, odd and tall row counts.
    for (const std::size_t rows : {1u, 5u, 31u}) {
      const auto m = random_data(rng, rows * n);
      const double alpha = rng.uniform(-2.0, 2.0);

      const auto xr = random_data(rng, n);
      auto out_fix = random_data(rng, rows);
      auto out_gen = out_fix;
      fixed->gemv(alpha, m.data(), n, rows, xr.data(), out_fix.data());
      tbl.gemv(alpha, m.data(), n, rows, n, xr.data(), out_gen.data());
      for (std::size_t i = 0; i < rows; ++i)
        EXPECT_BITEQ(out_fix[i], out_gen[i])
            << rows << "x" << n << " i=" << i;

      const auto xt = random_data(rng, rows);
      auto outt_fix = random_data(rng, n);
      auto outt_gen = outt_fix;
      fixed->gemv_t(alpha, m.data(), n, rows, xt.data(), outt_fix.data());
      tbl.gemv_t(alpha, m.data(), n, rows, n, xt.data(), outt_gen.data());
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_BITEQ(outt_fix[j], outt_gen[j])
            << rows << "x" << n << " j=" << j;
    }
  }
}

TEST_P(SimdTargetTest, FixedTableOnlyCoversSpecializedDims) {
  for (const std::size_t n : {0u, 1u, 59u, 61u, 133u, 135u})
    EXPECT_EQ(fixed_table_for(GetParam(), n), nullptr) << "n=" << n;
}

std::string isa_name(const ::testing::TestParamInfo<Isa>& info) {
  return num::simd::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, SimdTargetTest,
                         ::testing::ValuesIn(num::simd::available_targets()),
                         isa_name);

// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, ScalarTargetAlwaysAvailable) {
  const auto targets = num::simd::available_targets();
  bool has_scalar = false;
  for (const Isa isa : targets) {
    EXPECT_NE(isa, Isa::kOff);
    if (isa == Isa::kScalar) has_scalar = true;
  }
  EXPECT_TRUE(has_scalar);
}

TEST(SimdDispatchTest, ActiveTableMatchesActiveIsa) {
  if (!num::simd::dispatch_enabled()) {
    EXPECT_EQ(num::simd::active_isa(), Isa::kOff);
    return;  // EVC_SIMD=off: call sites keep their legacy loops
  }
  EXPECT_EQ(num::simd::active().isa, num::simd::active_isa());
  EXPECT_EQ(num::simd::table_for(num::simd::active_isa()),
            &num::simd::active());
}

TEST(SimdDispatchTest, ActiveFixedTableFollowsActiveIsa) {
  if (!num::simd::dispatch_enabled()) {
    // EVC_SIMD=off: the hot path must fall back to the legacy loops.
    EXPECT_EQ(num::simd::fixed_table(num::simd::kFixedCondensedDim), nullptr);
    return;
  }
  for (const std::size_t n :
       {num::simd::kFixedCondensedDim, num::simd::kFixedFullDim})
    EXPECT_EQ(num::simd::fixed_table(n),
              fixed_table_for(num::simd::active_isa(), n))
        << "n=" << n;
  EXPECT_EQ(num::simd::fixed_table(59), nullptr);
}

TEST(SimdDispatchTest, NumericsStorageIsCacheLineAligned) {
  num::Vector v(37);
  num::Matrix m(13, 7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.ptr()) % num::kNumAlignment,
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.ptr()) % num::kNumAlignment,
            0u);
}

}  // namespace
