// Condensed QP backend: agreement with the sparse interior-point path on
// real MPC subproblems across randomized horizons and constraint patterns,
// prediction-matrix cache/counter accounting, checkpoint round-trips, and
// backend selection plumbing.
#include "optim/condensed_qp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "battery/battery_params.hpp"
#include "core/mpc_controller.hpp"
#include "core/mpc_formulation.hpp"
#include "hvac/hvac_params.hpp"
#include "numerics/kernels.hpp"
#include "optim/qp.hpp"
#include "optim/sqp.hpp"
#include "util/random.hpp"
#include "util/serialize.hpp"

namespace {

using namespace evc;

core::MpcFormulation make_formulation(std::size_t horizon,
                                      std::uint64_t seed) {
  SplitMix64 rng(seed);
  core::MpcWindowData w;
  w.dt_s = 5.0;
  w.initial_cabin_temp_c = rng.uniform(18.0, 32.0);
  w.initial_soc_percent = rng.uniform(40.0, 95.0);
  w.fixed_power_kw.assign(horizon, 0.0);
  w.outside_temp_c.assign(horizon, 0.0);
  for (std::size_t k = 0; k < horizon; ++k) {
    w.fixed_power_kw[k] = rng.uniform(2.0, 18.0);
    w.outside_temp_c[k] = rng.uniform(-5.0, 40.0);
  }
  return core::MpcFormulation(hvac::default_hvac_params(),
                              bat::leaf_24kwh_params(), core::MpcWeights{},
                              w);
}

/// The QP subproblem the SQP layer would pose at iterate z — the exact
/// construction from SqpSolver::solve, so the condensed backend is tested
/// against the problems it actually sees.
opt::QpProblem subproblem_at(const core::MpcFormulation& f,
                             const num::Vector& z) {
  const std::size_t n = f.num_vars();
  opt::QpProblem qp;
  qp.h = f.cost_hessian(z);
  for (std::size_t i = 0; i < n; ++i) qp.h(i, i) += 1e-6;
  qp.g = f.cost_gradient(z);
  qp.e_mat = f.eq_jacobian(z);
  const num::Vector c = f.eq_constraints(z);
  qp.e_vec.resize(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) qp.e_vec[i] = -c[i];
  qp.a_mat = f.ineq_matrix();
  num::Vector ax(qp.a_mat.rows());
  num::gemv(1.0, qp.a_mat, z, 0.0, ax);
  qp.b_vec.resize(ax.size());
  for (std::size_t i = 0; i < ax.size(); ++i)
    qp.b_vec[i] = f.ineq_vector()[i] - ax[i];
  return qp;
}

/// Small random perturbation of the cold start — a plausible SQP iterate, so
/// the linearization (and with it the binding pattern) varies per seed. Kept
/// small: a large kick puts dependent variables (powers, SoC) outside their
/// bounds in a way no step can repair, and the linearized QP is genuinely
/// infeasible — a problem the SQP line search never poses.
num::Vector perturbed_iterate(const core::MpcFormulation& f,
                              std::uint64_t seed, double magnitude) {
  SplitMix64 rng(seed);
  num::Vector z = f.cold_start();
  for (std::size_t i = 0; i < z.size(); ++i)
    z[i] += magnitude * rng.uniform(-1.0, 1.0);
  return z;
}

struct KktReport {
  double objective = 0.0;
  double stationarity = 0.0;   ///< ‖Hx + g + Eᵀy + Aᵀz‖∞
  double eq_violation = 0.0;   ///< ‖Ex − e‖∞
  double ineq_violation = 0.0; ///< max(0, Ax − b)
  double complementarity = 0.0;
};

/// Full-space KKT residuals of a claimed solution — the solver-independent
/// optimality certificate both backends are measured against. (The QP has
/// near-flat valleys — slack directions carry only the 1e-6 SQP
/// regularization — so primal *coordinates* are only determined to about
/// residual/curvature; two correct solvers can sit ~1e-5 apart in x while
/// both are within 1e-8 of the optimum in objective and KKT terms.)
KktReport kkt_report(const opt::QpProblem& qp, const opt::QpResult& r) {
  const std::size_t n = qp.num_vars();
  KktReport out;
  num::Vector stat(n);
  num::gemv(1.0, qp.h, r.x, 0.0, stat);
  for (std::size_t j = 0; j < n; ++j)
    out.objective += (0.5 * stat[j] + qp.g[j]) * r.x[j];
  for (std::size_t j = 0; j < n; ++j) stat[j] += qp.g[j];
  num::gemv_t(1.0, qp.e_mat, r.y_eq, 1.0, stat);
  num::gemv_t(1.0, qp.a_mat, r.z_ineq, 1.0, stat);
  for (std::size_t j = 0; j < n; ++j)
    out.stationarity = std::max(out.stationarity, std::abs(stat[j]));
  num::Vector ex(qp.num_eq());
  num::gemv(1.0, qp.e_mat, r.x, 0.0, ex);
  for (std::size_t i = 0; i < qp.num_eq(); ++i)
    out.eq_violation = std::max(out.eq_violation, std::abs(ex[i] - qp.e_vec[i]));
  num::Vector ax(qp.num_ineq());
  num::gemv(1.0, qp.a_mat, r.x, 0.0, ax);
  for (std::size_t i = 0; i < qp.num_ineq(); ++i) {
    out.ineq_violation = std::max(out.ineq_violation, ax[i] - qp.b_vec[i]);
    out.complementarity = std::max(
        out.complementarity, std::abs(r.z_ineq[i] * (qp.b_vec[i] - ax[i])));
  }
  return out;
}

TEST(CondensedQpTest, MatchesSparseBackendAcrossHorizonsAndPatterns) {
  for (const std::size_t horizon : {4u, 7u, 12u}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto f = make_formulation(horizon, 100 * horizon + seed);
      const num::Vector z = perturbed_iterate(f, seed, 0.01);
      const opt::QpProblem qp = subproblem_at(f, z);

      opt::QpOptions sparse_opts;
      sparse_opts.tolerance = 1e-10;
      sparse_opts.max_iterations = 200;
      const opt::QpResult sparse = opt::solve_qp(qp, sparse_opts);
      ASSERT_EQ(sparse.status, opt::QpStatus::kSolved)
          << "h=" << horizon << " seed=" << seed;

      opt::CondensedQpSolver solver;
      opt::QpPerfCounters counters;
      const opt::QpResult condensed = solver.solve(
          qp, *f.condensing_plan(), opt::CondensedQpOptions{}, counters,
          nullptr);
      ASSERT_TRUE(condensed.usable()) << "h=" << horizon << " seed=" << seed;

      // 1e-8 agreement in the quantities double precision actually pins
      // down: the condensed solution's full-space KKT certificate (absolute
      // optimality — stationarity, feasibility, complementarity all ≤ 1e-8)
      // and its objective never worse than the interior-point reference
      // beyond 1e-8 relative. The reference itself stops with ~1e-6
      // objective error in the flat valleys (it has no such certificate),
      // so the bound is one-sided and coordinates are only compared at the
      // flat-valley limit — see kkt_report's comment.
      const KktReport cert = kkt_report(qp, condensed);
      const KktReport ref = kkt_report(qp, sparse);
      EXPECT_LE(cert.objective,
                ref.objective + 1e-8 * (1.0 + std::abs(ref.objective)))
          << "h=" << horizon << " seed=" << seed;
      EXPECT_LE(cert.stationarity, 1e-8)
          << "h=" << horizon << " seed=" << seed;
      EXPECT_LE(cert.eq_violation, 1e-8)
          << "h=" << horizon << " seed=" << seed;
      EXPECT_LE(cert.ineq_violation, 1e-8)
          << "h=" << horizon << " seed=" << seed;
      EXPECT_LE(cert.complementarity, 1e-8)
          << "h=" << horizon << " seed=" << seed;
      double scale = 1.0;
      for (std::size_t i = 0; i < qp.num_vars(); ++i)
        scale = std::max(scale, std::abs(sparse.x[i]));
      for (std::size_t i = 0; i < qp.num_vars(); ++i)
        EXPECT_NEAR(condensed.x[i], sparse.x[i], 1e-3 * scale)
            << "h=" << horizon << " seed=" << seed << " var " << i;
    }
  }
}

TEST(CondensedQpTest, ActiveSetChangesMidHorizonStillAgree) {
  // Nudge the iterate progressively further from the cold start so the
  // binding pattern (slack rows, input bounds) shifts between solves, and
  // warm-start each solve from the previous one's multipliers — the
  // receding-horizon usage, including active-set changes mid-horizon.
  const auto f = make_formulation(10, 77);
  opt::CondensedQpSolver solver;
  opt::QpPerfCounters counters;
  opt::QpWarmStart warm;
  const opt::QpWarmStart* seed = nullptr;
  for (int step = 0; step < 6; ++step) {
    const num::Vector z = perturbed_iterate(f, 900 + step, 0.004 * step);
    const opt::QpProblem qp = subproblem_at(f, z);

    opt::QpOptions sparse_opts;
    sparse_opts.tolerance = 1e-10;
    sparse_opts.max_iterations = 200;
    const opt::QpResult sparse = opt::solve_qp(qp, sparse_opts);
    ASSERT_EQ(sparse.status, opt::QpStatus::kSolved) << "step " << step;

    const opt::QpResult condensed = solver.solve(
        qp, *f.condensing_plan(), opt::CondensedQpOptions{}, counters, seed);
    ASSERT_TRUE(condensed.usable()) << "step " << step;
    const KktReport cert = kkt_report(qp, condensed);
    const KktReport ref = kkt_report(qp, sparse);
    EXPECT_LE(cert.objective,
              ref.objective + 1e-8 * (1.0 + std::abs(ref.objective)))
        << "step " << step;
    EXPECT_LE(cert.stationarity, 1e-8) << "step " << step;
    EXPECT_LE(cert.eq_violation, 1e-8) << "step " << step;
    EXPECT_LE(cert.ineq_violation, 1e-8) << "step " << step;
    double scale = 1.0;
    for (std::size_t i = 0; i < qp.num_vars(); ++i)
      scale = std::max(scale, std::abs(sparse.x[i]));
    for (std::size_t i = 0; i < qp.num_vars(); ++i)
      EXPECT_NEAR(condensed.x[i], sparse.x[i], 1e-3 * scale)
          << "step " << step << " var " << i;

    warm.x = condensed.x;
    warm.y_eq = condensed.y_eq;
    warm.z_ineq = condensed.z_ineq;
    seed = &warm;
  }
  EXPECT_EQ(counters.solves, 6u);
  EXPECT_EQ(counters.condensed_solves, 6u);
}

TEST(CondensedQpTest, CacheHitBooksWarmStartNotRebuild) {
  const auto f = make_formulation(8, 5);
  const num::Vector z = perturbed_iterate(f, 5, 0.01);
  const opt::QpProblem qp = subproblem_at(f, z);

  opt::CondensedQpSolver solver;
  opt::QpPerfCounters counters;
  const opt::CondensedQpOptions options;

  // Cold solve: a rebuild, which also counts as the factorization it
  // performs — and not a warm start.
  const auto first =
      solver.solve(qp, *f.condensing_plan(), options, counters, nullptr);
  ASSERT_TRUE(first.usable());
  EXPECT_EQ(counters.condense_rebuilds, 1u);
  EXPECT_EQ(counters.factorizations, 1u);
  EXPECT_EQ(counters.warm_starts, 0u);

  // Identical problem, seeded from the first solve: a cache hit — books a
  // warm start, no rebuild, no factorization (the no-double-count rule).
  opt::QpWarmStart warm;
  warm.x = first.x;
  warm.y_eq = first.y_eq;
  warm.z_ineq = first.z_ineq;
  const auto second =
      solver.solve(qp, *f.condensing_plan(), options, counters, &warm);
  ASSERT_TRUE(second.usable());
  EXPECT_EQ(counters.condense_rebuilds, 1u);
  EXPECT_EQ(counters.factorizations, 1u);
  EXPECT_EQ(counters.warm_starts, 1u);
  EXPECT_EQ(counters.condensed_solves, 2u);
  for (std::size_t i = 0; i < qp.num_vars(); ++i)
    EXPECT_NEAR(second.x[i], first.x[i], 1e-9);

  // Drifted linearization: rebuild again.
  const num::Vector z2 = perturbed_iterate(f, 6, 0.01);
  const opt::QpProblem qp2 = subproblem_at(f, z2);
  const auto third =
      solver.solve(qp2, *f.condensing_plan(), options, counters, &warm);
  ASSERT_TRUE(third.usable());
  EXPECT_EQ(counters.condense_rebuilds, 2u);
  EXPECT_EQ(counters.factorizations, 2u);
}

TEST(CondensedQpTest, CacheCheckpointRoundTripReplaysWithoutRebuild) {
  const auto f = make_formulation(8, 21);
  const num::Vector z = perturbed_iterate(f, 21, 0.01);
  const opt::QpProblem qp = subproblem_at(f, z);
  const opt::CondensedQpOptions options;

  opt::CondensedQpSolver original;
  opt::QpPerfCounters counters;
  const auto before =
      original.solve(qp, *f.condensing_plan(), options, counters, nullptr);
  ASSERT_TRUE(before.usable());

  BinaryWriter writer;
  original.save_cache(writer);
  const std::string bytes = writer.take();
  opt::CondensedQpSolver restored;
  BinaryReader reader(bytes);
  restored.load_cache(reader);
  EXPECT_TRUE(restored.has_cache());

  // The restored solver re-derives silently: same solution, and the rebuild
  // counter does not move — a restored run's telemetry matches an
  // uninterrupted one.
  opt::QpPerfCounters restored_counters;
  const auto after = restored.solve(qp, *f.condensing_plan(), options,
                                    restored_counters, nullptr);
  ASSERT_TRUE(after.usable());
  EXPECT_EQ(restored_counters.condense_rebuilds, 0u);
  for (std::size_t i = 0; i < qp.num_vars(); ++i)
    EXPECT_NEAR(after.x[i], before.x[i], 1e-12);
}

TEST(CondensedQpTest, SqpEndToEndMatchesSparseBackend) {
  const auto f = make_formulation(8, 42);
  opt::SqpOptions sparse_opts;
  sparse_opts.max_iterations = 12;
  opt::SqpOptions condensed_opts = sparse_opts;
  condensed_opts.backend = opt::QpBackend::kCondensed;

  const opt::SqpSolver sparse_solver(sparse_opts);
  const opt::SqpSolver condensed_solver(condensed_opts);
  const num::Vector x0 = f.cold_start();
  const auto sparse = sparse_solver.solve(f, x0);
  const auto condensed = condensed_solver.solve(f, x0);
  ASSERT_TRUE(sparse.usable());
  ASSERT_TRUE(condensed.usable());
  EXPECT_GT(condensed_solver.qp_counters().condensed_solves, 0u);

  // Different QP engines may walk different SQP paths on this bilinear
  // problem; the destinations must agree — cost to a relative whisker and
  // the same residual feasibility, whether or not this window converges
  // within the iteration budget.
  EXPECT_NEAR(condensed.cost, sparse.cost,
              1e-4 * (1.0 + std::abs(sparse.cost)));
  EXPECT_NEAR(condensed.constraint_violation, sparse.constraint_violation,
              1e-6 * (1.0 + sparse.constraint_violation));
}

TEST(CondensedQpTest, BackendParsingAndEnvSelection) {
  EXPECT_EQ(opt::parse_qp_backend("sparse"), opt::QpBackend::kSparse);
  EXPECT_EQ(opt::parse_qp_backend("condensed"), opt::QpBackend::kCondensed);
  EXPECT_EQ(opt::parse_qp_backend("auto"), opt::QpBackend::kAuto);
  EXPECT_FALSE(opt::parse_qp_backend("fancy").has_value());

  ::setenv("EVC_MPC_BACKEND", "condensed", 1);
  EXPECT_EQ(opt::qp_backend_from_env(opt::QpBackend::kSparse),
            opt::QpBackend::kCondensed);
  ::setenv("EVC_MPC_BACKEND", "not-a-backend", 1);
  EXPECT_EQ(opt::qp_backend_from_env(opt::QpBackend::kAuto),
            opt::QpBackend::kAuto);
  ::unsetenv("EVC_MPC_BACKEND");
  EXPECT_EQ(opt::qp_backend_from_env(opt::QpBackend::kSparse),
            opt::QpBackend::kSparse);
}

TEST(CondensedQpTest, ControllerCheckpointRoundTripUnderCondensedBackend) {
  core::MpcOptions opts;
  opts.sqp.backend = opt::QpBackend::kCondensed;
  core::MpcClimateController mpc(hvac::default_hvac_params(),
                                 bat::leaf_24kwh_params(), opts);
  ctl::ControlContext c;
  c.dt_s = 1.0;
  c.cabin_temp_c = 27.0;
  c.outside_temp_c = 34.0;
  c.soc_percent = 80.0;
  c.motor_power_forecast_w.assign(60, 8e3);
  c.outside_temp_forecast_c.assign(60, 34.0);
  for (int i = 0; i < 3; ++i) {
    mpc.decide(c);
    c.time_s += mpc.options().step_s;
  }
  ASSERT_GT(mpc.stats().solver.condensed_solves, 0u);

  BinaryWriter writer;
  mpc.save_state(writer);
  const std::string bytes = writer.take();
  core::MpcClimateController restored(hvac::default_hvac_params(),
                                      bat::leaf_24kwh_params(), opts);
  BinaryReader reader(bytes);
  restored.load_state(reader);
  EXPECT_EQ(restored.stats().solver.condensed_solves,
            mpc.stats().solver.condensed_solves);
  EXPECT_EQ(restored.stats().solver.condense_rebuilds,
            mpc.stats().solver.condense_rebuilds);

  // Both controllers now replan identically: same inputs, same counters.
  ctl::ControlContext c2 = c;
  const auto a = mpc.decide(c);
  const auto b = restored.decide(c2);
  EXPECT_DOUBLE_EQ(a.supply_temp_c, b.supply_temp_c);
  EXPECT_DOUBLE_EQ(a.coil_temp_c, b.coil_temp_c);
  EXPECT_DOUBLE_EQ(a.recirculation, b.recirculation);
  EXPECT_DOUBLE_EQ(a.air_flow_kg_s, b.air_flow_kg_s);
  EXPECT_EQ(restored.stats().solver.condensed_solves,
            mpc.stats().solver.condensed_solves);
}

}  // namespace
