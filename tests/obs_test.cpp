// Unified telemetry layer: metrics registry (sharded counters, gauges,
// log-bucketed histograms), ring-buffer span tracer, flight recorder, and
// the guarantee the whole stack leans on — tracing disabled changes
// nothing about a simulation's results.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/metrics_json.hpp"
#include "core/simulation.hpp"
#include "drivecycle/standard_cycles.hpp"
#include "obs/fields.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/serialize.hpp"

namespace evc {
namespace {

// --- Metrics registry ---

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  obs::MetricsRegistry reg;
  const auto id = reg.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&] {
      for (int j = 0; j < kPerThread; ++j) reg.add(id);
    });
  for (auto& t : threads) t.join();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].name, "test.hits");
  EXPECT_EQ(snap.metrics[0].kind, obs::MetricKind::kCounter);
  // Sharded relaxed increments must still lose nothing: exactly 80000.
  EXPECT_EQ(snap.metrics[0].counter,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, GaugeKeepsLastWrite) {
  obs::MetricsRegistry reg;
  const auto id = reg.gauge("test.temp");
  reg.set(id, 1.5);
  reg.set(id, -3.25);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].gauge, -3.25);
}

TEST(Metrics, RegistrationIsIdempotentAndKindClashThrows) {
  obs::MetricsRegistry reg;
  const auto a = reg.counter("test.name");
  const auto b = reg.counter("test.name");
  EXPECT_EQ(a, b);
  EXPECT_THROW(reg.gauge("test.name"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("test.name"), std::invalid_argument);
}

TEST(Metrics, HistogramIsExactBelowSixteen) {
  obs::MetricsRegistry reg;
  const auto id = reg.histogram("test.latency");
  // Values below 16 land in identity buckets — quantiles are exact.
  // Quantile = the ceil(q·count)-th sample, so with 100 samples p50 is
  // rank 50 and p99 is rank 99.
  for (int i = 0; i < 49; ++i) reg.observe(id, 7);
  for (int i = 0; i < 49; ++i) reg.observe(id, 3);
  reg.observe(id, 15);
  reg.observe(id, 15);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  const auto& h = snap.metrics[0].histogram;
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.sum, 49u * 7 + 49u * 3 + 2u * 15);
  EXPECT_EQ(h.max, 15u);
  EXPECT_EQ(h.p50, 7u);   // rank 50 of {3×49, 7×49, 15×2}
  EXPECT_EQ(h.p99, 15u);  // rank 99 lands on the first 15
}

TEST(Metrics, BucketBoundsAreIdentityBelowSixteenThenWithin12Point5Percent) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(obs::MetricsRegistry::bucket_index(v), v);
    EXPECT_EQ(obs::MetricsRegistry::bucket_lower_bound(v), v);
  }
  // Above 16: the lower bound never exceeds the sample and is at most
  // 12.5 % (one sub-bucket of an 8-way-split octave) below it.
  std::size_t prev = obs::MetricsRegistry::bucket_index(15);
  for (std::uint64_t v : {16ull, 17ull, 100ull, 1000ull, 123456ull,
                          87654321ull, (1ull << 40) + 12345ull,
                          (1ull << 62) + 99ull}) {
    const std::size_t idx = obs::MetricsRegistry::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
    const std::uint64_t lb = obs::MetricsRegistry::bucket_lower_bound(idx);
    EXPECT_LE(lb, v);
    EXPECT_LE(v - lb, v / 8u) << "value " << v;
  }
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("test.c");
  const auto g = reg.gauge("test.g");
  const auto h = reg.histogram("test.h");
  reg.add(c, 5);
  reg.set(g, 2.0);
  reg.observe(h, 42);
  reg.reset();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].counter, 0u);
  EXPECT_EQ(snap.metrics[1].gauge, 0.0);
  EXPECT_EQ(snap.metrics[2].histogram.count, 0u);
  EXPECT_EQ(reg.counter("test.c"), c);
}

TEST(Metrics, SnapshotExportsWellFormedJsonAndCsv) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("test.hits"), 3);
  reg.set(reg.gauge("test.temp"), 21.5);
  reg.observe(reg.histogram("test.lat"), 100);
  const auto snap = reg.snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"schema\":\"evclimate-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"test.hits\":3"), std::string::npos);
  long depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  const std::string csv = snap.to_csv();
  EXPECT_EQ(csv.rfind("kind,name,field,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,test.hits,value,3"), std::string::npos);
  // Histograms expand to six rows: count,sum,max,p50,p90,p99.
  std::size_t lat_rows = 0, pos = 0;
  while ((pos = csv.find("histogram,test.lat,", pos)) != std::string::npos) {
    ++lat_rows;
    ++pos;
  }
  EXPECT_EQ(lat_rows, 6u);
}

TEST(Metrics, RegistryFieldSinkPublishesNestedGauges) {
  core::TripMetrics m;
  m.duration_s = 600.0;
  m.comfort.rms_error_c = 0.25;
  core::publish_metrics(m, "test.trip");
  const auto snap = obs::MetricsRegistry::global().snapshot();
  bool saw_duration = false, saw_comfort = false;
  for (const auto& metric : snap.metrics) {
    if (metric.name == "test.trip.duration_s") {
      saw_duration = true;
      EXPECT_EQ(metric.kind, obs::MetricKind::kGauge);
      EXPECT_EQ(metric.gauge, 600.0);
    }
    if (metric.name == "test.trip.comfort.rms_error_c") {
      saw_comfort = true;
      EXPECT_EQ(metric.gauge, 0.25);
    }
  }
  EXPECT_TRUE(saw_duration);
  EXPECT_TRUE(saw_comfort);
}

// --- Span tracer ---

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(false);
  tracer.clear();
  {
    EVC_TRACE_SPAN("test.noop");
    EVC_TRACE_INSTANT("test.instant");
    EVC_TRACE_COUNTER("test.counter", 1.0);
  }
  EXPECT_EQ(tracer.stats().recorded, 0u);
}

#if !defined(EVC_OBS_NO_TRACING)
TEST(Trace, RingWrapsAroundAndCountsDrops) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  constexpr std::size_t kExtra = 100;
  const std::uint64_t t0 = tracer.now_ns();
  for (std::size_t i = 0; i < obs::Tracer::kRingCapacity + kExtra; ++i)
    tracer.record_span("test.span", t0, 1);
  const auto stats = tracer.stats();
  tracer.set_enabled(false);
  tracer.clear();
  EXPECT_EQ(stats.recorded, obs::Tracer::kRingCapacity);
  EXPECT_EQ(stats.dropped, kExtra);
}

TEST(Trace, ChromeJsonCarriesSpansArgsAndSimTime) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  tracer.set_sim_time(12.5);
  {
    EVC_TRACE_SPAN_VAR(span, "test.traced");
    span.arg("iterations", 7.0);
  }
  EVC_TRACE_INSTANT("test.mark");
  EVC_TRACE_COUNTER("test.level", 3.5);
  const std::string json = tracer.chrome_json();
  tracer.set_enabled(false);
  tracer.clear();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.traced\""), std::string::npos);
  EXPECT_NE(json.find("\"iterations\""), std::string::npos);
  EXPECT_NE(json.find("\"test.mark\""), std::string::npos);
  EXPECT_NE(json.find("\"test.level\""), std::string::npos);
  EXPECT_NE(json.find("sim_time"), std::string::npos);
  long depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}
#endif  // !EVC_OBS_NO_TRACING

TEST(Trace, EnvGuardWithoutEnvWritesNothing) {
  const std::string path = "obs_test_should_not_exist.json";
  std::remove(path.c_str());
#if defined(_WIN32)
  _putenv_s("EVC_TRACE", "");
#else
  unsetenv("EVC_TRACE");
#endif
  {
    obs::TraceEnvGuard guard;
    EXPECT_FALSE(guard.active());
  }
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

// --- Flight recorder ---

obs::FlightRecord make_record(double t) {
  obs::FlightRecord rec;
  rec.time_s = t;
  rec.dt_s = 1.0;
  rec.cabin_temp_c = 22.0 + t;
  rec.tier = 1;
  rec.cabin_health = 2;
  rec.qp_iterations = 9;
  rec.solve_time_ns = 1234;
  return rec;
}

TEST(FlightRecorder, RingKeepsMostRecentRecords) {
  obs::FlightRecorder rec(8);
  for (int i = 0; i < 20; ++i) rec.record(make_record(i));
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.total_recorded(), 20u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest first: steps 12..19 survive.
  EXPECT_EQ(snap.front().time_s, 12.0);
  EXPECT_EQ(snap.back().time_s, 19.0);
}

TEST(FlightRecorder, JsonDumpHasSchemaAndRecords) {
  obs::FlightRecorder rec(4);
  rec.record(make_record(0));
  rec.record(make_record(1));
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"schema\":\"evclimate-flight-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"total_recorded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"qp_iterations\":9"), std::string::npos);
  long depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(FlightRecorder, SaveLoadRoundTripsTheRing) {
  obs::FlightRecorder rec(8);
  for (int i = 0; i < 20; ++i) rec.record(make_record(i));
  BinaryWriter w;
  rec.save_state(w);
  const std::string bytes = w.take();

  obs::FlightRecorder loaded(8);
  BinaryReader r(bytes);
  loaded.load_state(r);
  EXPECT_EQ(loaded.total_recorded(), rec.total_recorded());
  const auto a = rec.snapshot();
  const auto b = loaded.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].cabin_temp_c, b[i].cabin_temp_c);
    EXPECT_EQ(a[i].tier, b[i].tier);
    EXPECT_EQ(a[i].cabin_health, b[i].cabin_health);
    EXPECT_EQ(a[i].qp_iterations, b[i].qp_iterations);
    EXPECT_EQ(a[i].solve_time_ns, b[i].solve_time_ns);
  }

  // A recorder configured with a different capacity must refuse the state.
  obs::FlightRecorder mismatched(16);
  BinaryReader r2(bytes);
  EXPECT_THROW(mismatched.load_state(r2), SerializationError);
}

// --- The cross-cutting guarantee: tracing never changes results ---

core::SimulationResult run_short_sim() {
  const core::EvParams params;
  const auto profile =
      drive::make_cycle_profile(drive::StandardCycle::kUdds, 32.0)
          .window(0, 90);
  auto controller = core::make_mpc_controller(params);
  core::SimulationOptions opts;
  opts.record_traces = true;
  opts.flight_recorder_capacity = 64;
  core::SimulationSession session(params, *controller, profile, opts);
  session.run_to_completion();
  // Flight records flow every step even in a clean run.
  EXPECT_EQ(session.flight_recorder().total_recorded(), 90u);
  return session.finish();
}

TEST(Trace, EnablingTracerLeavesSimulationByteIdentical) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(false);
  tracer.clear();
  const auto baseline = run_short_sim();
  const std::size_t recorded_off = tracer.stats().recorded;
  EXPECT_EQ(recorded_off, 0u);  // disabled tracer: zero bytes recorded

  tracer.set_enabled(true);
  const auto traced = run_short_sim();
  tracer.set_enabled(false);
#if !defined(EVC_OBS_NO_TRACING)
  EXPECT_GT(tracer.stats().recorded, 0u);  // spans actually flowed
#endif
  tracer.clear();

  // The trip metrics are pure physics/control outputs — any byte of
  // difference means tracing perturbed a control decision.
  EXPECT_EQ(core::to_json(baseline.metrics), core::to_json(traced.metrics));
}

}  // namespace
}  // namespace evc
