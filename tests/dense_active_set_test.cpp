// Dense active-set solver: agreement with the interior-point reference on
// randomized QPs, warm-start behaviour, and the incremental Schur-Cholesky
// up/downdates against a from-scratch factorization.
#include "optim/dense_active_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "numerics/factorization.hpp"
#include "numerics/matrix.hpp"
#include "numerics/vector.hpp"
#include "optim/qp.hpp"
#include "util/random.hpp"

namespace {

using namespace evc;

struct DenseQp {
  num::Matrix h;
  num::Vector g;
  num::Matrix a;
  num::Vector b;
};

DenseQp random_dense_qp(std::size_t n, std::size_t m, std::uint64_t seed,
                        double b_low = -0.3, double b_high = 1.5) {
  SplitMix64 rng(seed);
  DenseQp qp;
  num::Matrix root(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) root(r, c) = rng.uniform(-1, 1);
  qp.h = root.transposed() * root;
  for (std::size_t i = 0; i < n; ++i) qp.h(i, i) += 1.0;
  qp.g = num::Vector(n);
  for (std::size_t i = 0; i < n; ++i) qp.g[i] = rng.uniform(-2, 2);
  qp.a = num::Matrix(m, n);
  qp.b = num::Vector(m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) qp.a(r, c) = rng.uniform(-1, 1);
    qp.b[r] = rng.uniform(b_low, b_high);
  }
  return qp;
}

opt::QpResult ipm_reference(const DenseQp& qp) {
  opt::QpProblem p;
  p.h = qp.h;
  p.g = qp.g;
  p.e_mat = num::Matrix(0, qp.h.rows());
  p.e_vec = num::Vector(0);
  p.a_mat = qp.a;
  p.b_vec = qp.b;
  opt::QpOptions o;
  o.tolerance = 1e-10;
  o.max_iterations = 100;
  return opt::solve_qp(p, o);
}

// --- SchurCholesky vs from-scratch reference ------------------------------

num::Matrix schur_matrix(const num::Matrix& h, const num::Matrix& a,
                         const std::vector<std::size_t>& rows) {
  num::CholeskyFactorization h_chol;
  EXPECT_TRUE(h_chol.factorize(h));
  const std::size_t n = a.cols();
  const std::size_t k = rows.size();
  num::Matrix s(k, k);
  num::Vector ai(n), hai(n);
  std::vector<num::Vector> hinv;
  for (std::size_t t = 0; t < k; ++t) {
    for (std::size_t j = 0; j < n; ++j) ai[j] = a(rows[t], j);
    h_chol.solve_into(ai, hai);
    hinv.push_back(hai);
  }
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += a(rows[r], j) * hinv[c][j];
      s(r, c) = acc;
    }
  return s;
}

void expect_factor_matches(const opt::SchurCholesky& incremental,
                           const num::Matrix& s, double tol) {
  num::CholeskyFactorization reference;
  ASSERT_TRUE(reference.factorize(s));
  ASSERT_EQ(incremental.dim(), s.rows());
  // Compare L·Lᵀ rather than L entry-wise: after a removal the trailing
  // block's factor is unique only up to the reconstruction it represents.
  const std::size_t k = s.rows();
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c <= r; ++c) {
      double acc = 0.0;
      for (std::size_t j = 0; j <= std::min(r, c); ++j)
        acc += incremental.entry(r, j) * incremental.entry(c, j);
      EXPECT_NEAR(acc, s(r, c), tol) << "S(" << r << "," << c << ")";
    }
}

TEST(SchurCholeskyTest, AppendMatchesFreshFactorization) {
  const std::size_t n = 12;
  const auto qp = random_dense_qp(n, 20, 91);
  num::CholeskyFactorization h_chol;
  ASSERT_TRUE(h_chol.factorize(qp.h));

  opt::SchurCholesky chol;
  std::vector<std::size_t> rows;
  num::Vector ai(n), hai(n);
  for (std::size_t idx : {3u, 11u, 0u, 17u, 8u, 14u}) {
    // cross[t] = a_rows[t]·H⁻¹·a_idx, diag = a_idx·H⁻¹·a_idx.
    for (std::size_t j = 0; j < n; ++j) ai[j] = qp.a(idx, j);
    h_chol.solve_into(ai, hai);
    std::vector<double> cross(rows.size());
    for (std::size_t t = 0; t < rows.size(); ++t) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += qp.a(rows[t], j) * hai[j];
      cross[t] = acc;
    }
    double diag = 0.0;
    for (std::size_t j = 0; j < n; ++j) diag += ai[j] * hai[j];
    ASSERT_TRUE(chol.append(cross.data(), diag, 1e-12));
    rows.push_back(idx);
    expect_factor_matches(chol, schur_matrix(qp.h, qp.a, rows), 1e-9);
  }
}

TEST(SchurCholeskyTest, RemoveMatchesFreshFactorization) {
  const std::size_t n = 12;
  const auto qp = random_dense_qp(n, 20, 92);
  num::CholeskyFactorization h_chol;
  ASSERT_TRUE(h_chol.factorize(qp.h));

  opt::SchurCholesky chol;
  std::vector<std::size_t> rows = {1, 4, 7, 10, 13, 16, 19};
  num::Vector ai(n), hai(n);
  std::vector<std::size_t> added;
  for (std::size_t idx : rows) {
    for (std::size_t j = 0; j < n; ++j) ai[j] = qp.a(idx, j);
    h_chol.solve_into(ai, hai);
    std::vector<double> cross(added.size());
    for (std::size_t t = 0; t < added.size(); ++t) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += qp.a(added[t], j) * hai[j];
      cross[t] = acc;
    }
    double diag = 0.0;
    for (std::size_t j = 0; j < n; ++j) diag += ai[j] * hai[j];
    ASSERT_TRUE(chol.append(cross.data(), diag, 1e-12));
    added.push_back(idx);
  }

  // Remove middle, first, last — each against a from-scratch factor.
  for (std::size_t k : {3u, 0u, 4u}) {
    chol.remove(k);
    added.erase(added.begin() + static_cast<std::ptrdiff_t>(k));
    expect_factor_matches(chol, schur_matrix(qp.h, qp.a, added), 1e-9);
  }
}

// --- Solver vs interior-point reference -----------------------------------

TEST(DenseActiveSetTest, MatchesInteriorPointOnRandomQps) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::size_t n = 8 + (seed % 5);
    const std::size_t m = 2 * n;
    const auto qp = random_dense_qp(n, m, seed);
    const auto reference = ipm_reference(qp);
    ASSERT_TRUE(reference.usable()) << "seed " << seed;

    num::CholeskyFactorization h_chol;
    ASSERT_TRUE(h_chol.factorize(qp.h));
    opt::DenseActiveSetSolver solver;
    num::Vector v, lambda;
    const auto out = solver.solve(h_chol, qp.h, qp.a, qp.g, qp.b, {}, {}, v,
                                  lambda);
    ASSERT_TRUE(out.usable()) << "seed " << seed << " status "
                              << static_cast<int>(out.status) << " iters "
                              << out.iterations;
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(v[j], reference.x[j], 1e-6)
          << "seed " << seed << " var " << j;
    for (std::size_t i = 0; i < m; ++i)
      EXPECT_NEAR(lambda[i], reference.z_ineq[i], 1e-5)
          << "seed " << seed << " row " << i;
  }
}

TEST(DenseActiveSetTest, WarmStartConfirmsInOneSweep) {
  const std::size_t n = 10, m = 20;
  const auto qp = random_dense_qp(n, m, 7);
  num::CholeskyFactorization h_chol;
  ASSERT_TRUE(h_chol.factorize(qp.h));
  opt::DenseActiveSetSolver solver;
  num::Vector v, lambda;
  const auto cold = solver.solve(h_chol, qp.h, qp.a, qp.g, qp.b, {}, {}, v,
                                 lambda);
  ASSERT_TRUE(cold.usable());
  const std::vector<std::size_t> warm = solver.active_set();

  num::Vector v2, lambda2;
  const auto rewarm = solver.solve(h_chol, qp.h, qp.a, qp.g, qp.b, warm, {}, v2,
                                   lambda2);
  ASSERT_TRUE(rewarm.usable());
  EXPECT_EQ(rewarm.iterations, 1u);
  EXPECT_EQ(rewarm.set_changes, 0u);
  // The warm path assembles the working set in seed order, which can differ
  // from the cold path's add order — same set, permuted factor, so agree to
  // tight tolerance rather than bitwise.
  for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(v2[j], v[j], 1e-12);
}

TEST(DenseActiveSetTest, UnconstrainedWhenNoRowBinds) {
  const std::size_t n = 6, m = 10;
  // b so large every constraint is slack at the unconstrained minimum.
  const auto qp = random_dense_qp(n, m, 11, 50.0, 60.0);
  num::CholeskyFactorization h_chol;
  ASSERT_TRUE(h_chol.factorize(qp.h));
  opt::DenseActiveSetSolver solver;
  num::Vector v, lambda;
  const auto out = solver.solve(h_chol, qp.h, qp.a, qp.g, qp.b, {}, {}, v, lambda);
  ASSERT_TRUE(out.usable());
  EXPECT_TRUE(solver.active_set().empty());
  // v = H⁻¹(−g).
  num::Vector neg_g(n), w(n);
  for (std::size_t j = 0; j < n; ++j) neg_g[j] = -qp.g[j];
  h_chol.solve_into(neg_g, w);
  for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(v[j], w[j], 1e-12);
  for (std::size_t i = 0; i < m; ++i) EXPECT_DOUBLE_EQ(lambda[i], 0.0);
}

}  // namespace
