// Tests for the active-set QP solver, including the cross-validation sweep
// against the interior-point method on randomized strictly convex QPs.
#include <gtest/gtest.h>

#include <cmath>

#include "optim/active_set.hpp"
#include "util/random.hpp"

namespace evc::opt {
namespace {

using num::Matrix;
using num::Vector;

QpProblem box_projection_problem() {
  // min ‖x − (5, −5)‖²  s.t. −1 ≤ x ≤ 1.
  QpProblem p;
  p.h = Matrix::identity(2);
  p.h *= 2.0;
  p.g = Vector{-10, 10};
  p.e_mat = Matrix(0, 2);
  p.e_vec = Vector(0);
  p.a_mat = Matrix(4, 2);
  p.a_mat(0, 0) = 1;
  p.a_mat(1, 0) = -1;
  p.a_mat(2, 1) = 1;
  p.a_mat(3, 1) = -1;
  p.b_vec = Vector{1, 1, 1, 1};
  return p;
}

TEST(ActiveSet, SolvesBoxProjection) {
  const QpProblem p = box_projection_problem();
  const QpResult r = solve_qp_active_set(p, Vector{0, 0});
  ASSERT_EQ(r.status, QpStatus::kSolved);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], -1.0, 1e-8);
  // Multipliers of the two active bounds are positive, inactive are zero.
  EXPECT_GT(r.z_ineq[0], 1.0);
  EXPECT_GT(r.z_ineq[3], 1.0);
  EXPECT_NEAR(r.z_ineq[1], 0.0, 1e-9);
  EXPECT_NEAR(r.z_ineq[2], 0.0, 1e-9);
}

TEST(ActiveSet, UnconstrainedInteriorOptimum) {
  QpProblem p;
  p.h = Matrix::identity(2);
  p.h *= 2.0;
  p.g = Vector{-1.0, 0.5};  // optimum (0.5, −0.25), inside the box
  p.e_mat = Matrix(0, 2);
  p.e_vec = Vector(0);
  p.a_mat = Matrix(4, 2);
  p.a_mat(0, 0) = 1;
  p.a_mat(1, 0) = -1;
  p.a_mat(2, 1) = 1;
  p.a_mat(3, 1) = -1;
  p.b_vec = Vector{1, 1, 1, 1};
  const QpResult r = solve_qp_active_set(p, Vector{0, 0});
  ASSERT_EQ(r.status, QpStatus::kSolved);
  EXPECT_NEAR(r.x[0], 0.5, 1e-9);
  EXPECT_NEAR(r.x[1], -0.25, 1e-9);
}

TEST(ActiveSet, HandlesEqualityConstraints) {
  // min ½‖x‖² s.t. x0 + x1 = 2, x0 ≤ 0.5 → (0.5, 1.5).
  QpProblem p;
  p.h = Matrix::identity(2);
  p.g = Vector(2);
  p.e_mat = Matrix(1, 2);
  p.e_mat(0, 0) = 1;
  p.e_mat(0, 1) = 1;
  p.e_vec = Vector{2};
  p.a_mat = Matrix(1, 2);
  p.a_mat(0, 0) = 1;
  p.b_vec = Vector{0.5};
  const QpResult r = solve_qp_active_set(p, Vector{0.0, 2.0});
  ASSERT_EQ(r.status, QpStatus::kSolved);
  EXPECT_NEAR(r.x[0], 0.5, 1e-8);
  EXPECT_NEAR(r.x[1], 1.5, 1e-8);
}

TEST(ActiveSet, RejectsInfeasibleStart) {
  const QpProblem p = box_projection_problem();
  const QpResult r = solve_qp_active_set(p, Vector{5, 5});
  EXPECT_EQ(r.status, QpStatus::kNumericalIssue);
}

TEST(ActiveSet, StartOnActiveConstraint) {
  // Starting exactly on a bound (active working set from step one).
  const QpProblem p = box_projection_problem();
  const QpResult r = solve_qp_active_set(p, Vector{1.0, 0.0});
  ASSERT_EQ(r.status, QpStatus::kSolved);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], -1.0, 1e-8);
}

TEST(FeasiblePoint, FindsOneWhenItExists) {
  const QpProblem p = box_projection_problem();
  const auto x = find_feasible_point(p);
  ASSERT_TRUE(x.has_value());
  const Vector ax = p.a_mat * *x;
  for (std::size_t i = 0; i < p.num_ineq(); ++i)
    EXPECT_LE(ax[i], p.b_vec[i] + 1e-7);
}

// --- Cross-validation: active-set and interior-point must agree ---

class SolverCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(SolverCrossValidation, MatchesInteriorPointOptimum) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 613 + 29);
  const std::size_t n = 2 + rng.next_u64() % 6;
  const std::size_t mi = 1 + rng.next_u64() % (2 * n);

  QpProblem p;
  Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1, 1);
  p.h = g.transposed() * g;
  for (std::size_t i = 0; i < n; ++i) p.h(i, i) += 1.0;
  p.g = Vector(n);
  for (std::size_t i = 0; i < n; ++i) p.g[i] = rng.uniform(-2, 2);
  p.e_mat = Matrix(0, n);
  p.e_vec = Vector(0);

  Vector xf(n);
  for (std::size_t i = 0; i < n; ++i) xf[i] = rng.uniform(-1, 1);
  p.a_mat = Matrix(mi, n);
  p.b_vec = Vector(mi);
  for (std::size_t r = 0; r < mi; ++r) {
    for (std::size_t c = 0; c < n; ++c) p.a_mat(r, c) = rng.uniform(-1, 1);
    p.b_vec[r] = p.a_mat.row(r).dot(xf) + rng.uniform(0.1, 2.0);
  }

  const QpResult ip = solve_qp(p);
  ASSERT_EQ(ip.status, QpStatus::kSolved) << "seed " << GetParam();
  const QpResult as = solve_qp_active_set(p, xf);
  ASSERT_EQ(as.status, QpStatus::kSolved) << "seed " << GetParam();

  // Strictly convex → unique optimum: both solvers must agree.
  EXPECT_NEAR(as.objective, ip.objective,
              1e-5 * (1.0 + std::abs(ip.objective)))
      << "seed " << GetParam();
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(as.x[i], ip.x[i], 1e-4) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverCrossValidation,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace evc::opt
