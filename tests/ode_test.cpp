// Tests for the ODE integrators against closed-form solutions.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/ode.hpp"

namespace evc::sim {
namespace {

// dx/dt = −x, x(0)=1 → x(t) = e^{−t}.
const OdeRhs kDecay = [](double, const std::vector<double>& x,
                         std::vector<double>& dxdt) { dxdt[0] = -x[0]; };

// Harmonic oscillator: x'' = −x as 2-state system; energy is conserved.
const OdeRhs kOscillator = [](double, const std::vector<double>& x,
                              std::vector<double>& dxdt) {
  dxdt[0] = x[1];
  dxdt[1] = -x[0];
};

TEST(OdeFixed, EulerConvergesFirstOrder) {
  const double exact = std::exp(-1.0);
  const double e1 =
      std::abs(integrate_fixed(kDecay, {1.0}, 0, 1, 0.01,
                               OdeMethod::kEuler)[0] - exact);
  const double e2 =
      std::abs(integrate_fixed(kDecay, {1.0}, 0, 1, 0.005,
                               OdeMethod::kEuler)[0] - exact);
  EXPECT_LT(e2, e1);
  EXPECT_NEAR(e1 / e2, 2.0, 0.3);  // halving dt halves the error
}

TEST(OdeFixed, Rk4IsAccurate) {
  const double x1 = integrate_fixed(kDecay, {1.0}, 0, 1, 0.1)[0];
  EXPECT_NEAR(x1, std::exp(-1.0), 1e-6);
}

TEST(OdeFixed, Rk4ConvergesFourthOrder) {
  const double exact = std::exp(-2.0);
  const double e1 =
      std::abs(integrate_fixed(kDecay, {1.0}, 0, 2, 0.2)[0] - exact);
  const double e2 =
      std::abs(integrate_fixed(kDecay, {1.0}, 0, 2, 0.1)[0] - exact);
  EXPECT_NEAR(e1 / e2, 16.0, 8.0);
}

TEST(OdeFixed, LandsExactlyOnFinalTime) {
  // t1 not a multiple of dt: last step must be shortened, not overshot.
  const double x = integrate_fixed(kDecay, {1.0}, 0, 0.95, 0.2)[0];
  EXPECT_NEAR(x, std::exp(-0.95), 1e-5);
}

TEST(OdeFixed, ZeroLengthIntervalReturnsInitialState) {
  const auto x = integrate_fixed(kOscillator, {1.0, 0.0}, 3.0, 3.0, 0.1);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(OdeFixed, RejectsBadArguments) {
  EXPECT_THROW(integrate_fixed(kDecay, {1.0}, 0, 1, -0.1),
               std::invalid_argument);
  EXPECT_THROW(integrate_fixed(kDecay, {1.0}, 1, 0, 0.1),
               std::invalid_argument);
}

TEST(OdeAdaptive, MatchesClosedFormDecay) {
  const auto x = integrate_adaptive(kDecay, {1.0}, 0, 3);
  EXPECT_NEAR(x[0], std::exp(-3.0), 1e-7);
}

TEST(OdeAdaptive, OscillatorEnergyConserved) {
  const double period = 2.0 * 3.14159265358979323846;
  const auto x = integrate_adaptive(kOscillator, {1.0, 0.0}, 0, 5 * period);
  EXPECT_NEAR(x[0], 1.0, 1e-5);
  EXPECT_NEAR(x[1], 0.0, 1e-5);
  EXPECT_NEAR(x[0] * x[0] + x[1] * x[1], 1.0, 1e-6);
}

TEST(OdeAdaptive, AgreesWithRk4OnSmoothProblem) {
  const OdeRhs rhs = [](double t, const std::vector<double>& x,
                        std::vector<double>& dxdt) {
    dxdt[0] = std::sin(t) - 0.5 * x[0];
  };
  const double a = integrate_adaptive(rhs, {0.2}, 0, 10)[0];
  const double b = integrate_fixed(rhs, {0.2}, 0, 10, 1e-3)[0];
  EXPECT_NEAR(a, b, 1e-6);
}

}  // namespace
}  // namespace evc::sim
