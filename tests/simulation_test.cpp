// Integration tests: the full Algorithm 1 closed loop (controller × EV
// plant × BMS) plus the cross-controller ordering properties behind the
// paper's headline claims.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/ice_model.hpp"
#include "drivecycle/standard_cycles.hpp"

namespace evc::core {
namespace {

drive::DriveProfile short_profile(double ambient_c, std::size_t seconds = 260) {
  return drive::make_cycle_profile(drive::StandardCycle::kEceEudc, ambient_c)
      .window(0, seconds);
}

TEST(Simulation, RecordsAllChannels) {
  const EvParams params;
  ClimateSimulation sim(params);
  auto ctl = make_onoff_controller(params);
  const SimulationResult r = sim.run(*ctl, short_profile(35.0));
  for (const char* ch :
       {"cabin_temp_c", "outside_temp_c", "motor_power_w", "hvac_power_w",
        "heater_w", "cooler_w", "fan_w", "soc_percent", "speed_mps"}) {
    ASSERT_TRUE(r.recorder.has(ch)) << ch;
    EXPECT_EQ(r.recorder.samples(ch), 260u) << ch;
  }
}

TEST(Simulation, MetricsAreInternallyConsistent) {
  const EvParams params;
  ClimateSimulation sim(params);
  auto ctl = make_fuzzy_controller(params);
  const SimulationResult r = sim.run(*ctl, short_profile(35.0));
  const TripMetrics& m = r.metrics;
  EXPECT_NEAR(m.duration_s, 260.0, 1.0);
  EXPECT_GT(m.distance_km, 0.0);
  EXPECT_NEAR(m.hvac_energy_j, m.avg_hvac_power_w * m.duration_s,
              1e-6 * std::abs(m.hvac_energy_j) + 1.0);
  EXPECT_LT(m.final_soc_percent, m.initial_soc_percent);
  EXPECT_GT(m.delta_soh_percent, 0.0);
  EXPECT_GT(m.cycles_to_end_of_life, 0.0);
  EXPECT_GT(m.estimated_range_km, 30.0);
  EXPECT_LT(m.estimated_range_km, 400.0);
}

TEST(Simulation, TracesCanBeDisabled) {
  const EvParams params;
  ClimateSimulation sim(params);
  auto ctl = make_onoff_controller(params);
  SimulationOptions opts;
  opts.record_traces = false;
  const SimulationResult r = sim.run(*ctl, short_profile(30.0), opts);
  EXPECT_FALSE(r.recorder.has("cabin_temp_c"));
  EXPECT_GT(r.metrics.avg_hvac_power_w, 0.0);
}

TEST(Simulation, InitialCabinTempOverride) {
  const EvParams params;
  ClimateSimulation sim(params);
  auto ctl = make_onoff_controller(params);
  SimulationOptions opts;
  opts.initial_cabin_temp_c = 40.0;  // heat-soaked car
  const SimulationResult r = sim.run(*ctl, short_profile(35.0), opts);
  EXPECT_NEAR(r.recorder.values("cabin_temp_c").front(), 40.0, 2.0);
  // Pull-down: the On/Off controller drives the cabin toward the target.
  EXPECT_LT(r.recorder.values("cabin_temp_c").back(), 30.0);
}

TEST(Simulation, RejectsEmptyProfileAndBadSoc) {
  const EvParams params;
  ClimateSimulation sim(params);
  auto ctl = make_onoff_controller(params);
  EXPECT_THROW(sim.run(*ctl, drive::DriveProfile{}), std::invalid_argument);
  SimulationOptions opts;
  opts.initial_soc_percent = 0.0;
  EXPECT_THROW(sim.run(*ctl, short_profile(30.0), opts),
               std::invalid_argument);
}

// --- The paper's headline orderings on a short window ---

TEST(Integration, MpcBeatsBaselinesOnPowerAndSoh) {
  const EvParams params;
  const auto profile = short_profile(35.0, 400);
  const auto runs = compare_controllers(params, profile);
  ASSERT_EQ(runs.size(), 3u);
  const TripMetrics& onoff = runs[0].metrics;
  const TripMetrics& fuzzy = runs[1].metrics;
  const TripMetrics& mpc = runs[2].metrics;

  // Fig. 8 ordering: MPC ≤ fuzzy ≤ On/Off on average HVAC power.
  EXPECT_LT(mpc.avg_hvac_power_w, fuzzy.avg_hvac_power_w);
  EXPECT_LT(fuzzy.avg_hvac_power_w, onoff.avg_hvac_power_w);
  // Fig. 7 ordering: MPC has the lowest ΔSoH.
  EXPECT_LT(mpc.delta_soh_percent, onoff.delta_soh_percent);
  EXPECT_LE(mpc.delta_soh_percent, fuzzy.delta_soh_percent * 1.001);
  // All controllers keep the cabin inside the comfort zone.
  for (const auto& run : runs)
    EXPECT_LT(run.metrics.comfort.fraction_outside, 0.05) << run.controller;
}

TEST(Integration, MpcKeepsComfortInExtremeCold) {
  const EvParams params;
  const auto profile = short_profile(0.0, 400);
  ClimateSimulation sim(params);
  auto mpc = make_mpc_controller(params);
  const SimulationResult r = sim.run(*mpc, profile);
  EXPECT_LT(r.metrics.comfort.fraction_outside, 0.05);
  EXPECT_EQ(mpc->stats().failures, 0u);
}

TEST(Integration, HotterAmbientCostsMorePower) {
  const EvParams params;
  ClimateSimulation sim(params);
  double prev = -1.0;
  for (double ambient : {28.0, 35.0, 43.0}) {
    auto ctl = make_fuzzy_controller(params);
    const SimulationResult r = sim.run(*ctl, short_profile(ambient, 300));
    EXPECT_GT(r.metrics.avg_hvac_power_w, prev) << "ambient " << ambient;
    prev = r.metrics.avg_hvac_power_w;
  }
}

TEST(Integration, ImprovementHelper) {
  EXPECT_DOUBLE_EQ(improvement_percent(2.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(improvement_percent(2.0, 2.5), -25.0);
  EXPECT_THROW(improvement_percent(0.0, 1.0), std::invalid_argument);
}

// --- ICE comparison model (Fig. 1 substrate) ---

TEST(IceModel, HeatingIsNearlyFreeCoolingIsNot) {
  IceVehicleModel ice;
  const auto cold =
      drive::make_cycle_profile(drive::StandardCycle::kUdds, -10.0);
  const auto hot =
      drive::make_cycle_profile(drive::StandardCycle::kUdds, 38.0);
  const PowerShare cold_share = ice.average_power_share(cold);
  const PowerShare hot_share = ice.average_power_share(hot);
  // Heating draws only the blower; cooling adds compressor fuel power.
  EXPECT_LT(cold_share.hvac_w, 400.0);
  EXPECT_GT(hot_share.hvac_w, 5.0 * cold_share.hvac_w);
  // Propulsion fuel power dominates in both.
  EXPECT_GT(cold_share.propulsion_w, cold_share.hvac_w);
}

TEST(IceModel, HvacShareStaysBelowEvShare) {
  // Paper Fig. 1: HVAC is ≤ ~9 % of ICE consumption but up to ~20 % for the
  // EV. Check the ICE side of that claim at a hot ambient.
  IceVehicleModel ice;
  const auto hot =
      drive::make_cycle_profile(drive::StandardCycle::kUdds, 40.0);
  EXPECT_LT(ice.average_power_share(hot).hvac_fraction(), 0.20);
}

}  // namespace
}  // namespace evc::core
