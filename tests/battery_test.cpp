// Tests for the Peukert SoC model, SoH degradation model, pack, and BMS.
#include <gtest/gtest.h>

#include <cmath>

#include "battery/bms.hpp"
#include "util/random.hpp"

namespace evc::bat {
namespace {

// --- Peukert / SoC ---

TEST(Peukert, NominalCurrentPassesThrough) {
  PeukertSocModel model(leaf_24kwh_params());
  const double in = model.params().nominal_current_a;
  EXPECT_NEAR(model.effective_current(in), in, 1e-9);
}

TEST(Peukert, HighRateDischargesSuperlinearly) {
  PeukertSocModel model(leaf_24kwh_params());
  const double in = model.params().nominal_current_a;
  EXPECT_GT(model.effective_current(4.0 * in), 4.0 * in);
  // Below nominal the effective current is *less* than the actual one.
  EXPECT_LT(model.effective_current(0.25 * in), 0.25 * in);
}

TEST(Peukert, ChargingBypassesRateCapacity) {
  PeukertSocModel model(leaf_24kwh_params());
  EXPECT_DOUBLE_EQ(model.effective_current(-50.0), -50.0);
  EXPECT_DOUBLE_EQ(model.effective_current(0.0), 0.0);
}

class PeukertMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(PeukertMonotonicity, EffectiveCurrentIsIncreasing) {
  BatteryParams params = leaf_24kwh_params();
  params.peukert_constant = 1.0 + 0.02 * GetParam();
  PeukertSocModel model(params);
  double prev = 0.0;
  for (double i = 1.0; i < 200.0; i += 7.0) {
    const double eff = model.effective_current(i);
    EXPECT_GT(eff, prev);
    prev = eff;
  }
}

INSTANTIATE_TEST_SUITE_P(PeukertConstants, PeukertMonotonicity,
                         ::testing::Range(0, 10));

TEST(SocModel, CurrentForPowerInvertsPowerEquation) {
  PeukertSocModel model(leaf_24kwh_params());
  const double ocv = 380.0;
  for (double p : {-20e3, -5e3, 0.0, 5e3, 30e3, 80e3}) {
    const double i = model.current_for_power(p, ocv);
    const double v = ocv - i * model.params().internal_resistance_ohm;
    EXPECT_NEAR(v * i, p, 1e-6) << "power " << p;
  }
}

TEST(SocModel, RejectsImpossiblePower) {
  PeukertSocModel model(leaf_24kwh_params());
  // Deliverable max is Voc²/4R = 380²/0.4 = 361 kW.
  EXPECT_THROW(model.current_for_power(400e3, 380.0), std::invalid_argument);
}

TEST(SocModel, SocDeltaMatchesCoulombCounting) {
  PeukertSocModel model(leaf_24kwh_params());
  const double in = model.params().nominal_current_a;
  // At exactly the nominal current, one hour drains In·3600 C.
  const double expected =
      -100.0 * in * 3600.0 / (model.params().nominal_capacity_ah * 3600.0);
  EXPECT_NEAR(model.soc_delta(in, 3600.0), expected, 1e-9);
}

// --- SoH ---

TEST(SohModel, DeviationIncreasesFade) {
  SohModel model(leaf_24kwh_params());
  CycleStress mild{1.0, 85.0};
  CycleStress harsh{3.0, 85.0};
  EXPECT_GT(model.delta_soh(harsh), model.delta_soh(mild));
}

TEST(SohModel, HighAverageSocIncreasesFade) {
  SohModel model(leaf_24kwh_params());
  CycleStress low{1.5, 60.0};
  CycleStress high{1.5, 95.0};
  EXPECT_GT(model.delta_soh(high), model.delta_soh(low));
}

TEST(SohModel, FadePerCycleIsRealisticForLiIon) {
  // A standard commute cycle should land in the 1e-3…1e-1 %/cycle band —
  // thousands, not tens or millions, of cycles to end of life.
  SohModel model(leaf_24kwh_params());
  const double fade = model.delta_soh(CycleStress{1.5, 87.0});
  EXPECT_GT(fade, 1e-4);
  EXPECT_LT(fade, 1e-1);
  const double cycles = model.cycles_to_end_of_life(fade);
  EXPECT_GT(cycles, 200.0);
  EXPECT_LT(cycles, 200000.0);
}

TEST(SohModel, StressOfLinearRampMatchesAnalytic) {
  // SoC falling linearly 90→80: mean 85, population stddev = span/√12 ≈ 2.89.
  SohModel model(leaf_24kwh_params());
  std::vector<double> trace;
  for (int i = 0; i <= 1000; ++i) trace.push_back(90.0 - 0.01 * i);
  const CycleStress s = model.stress_of_trace(trace);
  EXPECT_NEAR(s.soc_average, 85.0, 1e-9);
  EXPECT_NEAR(s.soc_deviation, 10.0 / std::sqrt(12.0), 0.01);
}

TEST(SohModel, RejectsDegenerateInputs) {
  SohModel model(leaf_24kwh_params());
  EXPECT_THROW(model.stress_of_trace({50.0}), std::invalid_argument);
  EXPECT_THROW(model.cycles_to_end_of_life(0.0), std::invalid_argument);
  EXPECT_THROW(model.delta_soh(CycleStress{-1.0, 50.0}),
               std::invalid_argument);
}

// --- Pack ---

TEST(BatteryPack, DischargeLowersSocChargeRaisesIt) {
  BatteryPack pack(leaf_24kwh_params(), 70.0);
  pack.step(10e3, 60.0);
  const double after_discharge = pack.soc_percent();
  EXPECT_LT(after_discharge, 70.0);
  pack.step(-10e3, 60.0);
  EXPECT_GT(pack.soc_percent(), after_discharge);
}

TEST(BatteryPack, TerminalVoltageSagsUnderLoad) {
  BatteryPack pack(leaf_24kwh_params(), 80.0);
  const PackStep s = pack.step(40e3, 1.0);
  EXPECT_LT(s.terminal_voltage_v, pack.open_circuit_voltage());
  EXPECT_GT(s.current_a, 100.0);  // ~40 kW / ~390 V
}

TEST(BatteryPack, SocSaturatesAndFlagsDepletion) {
  BatteryPack pack(leaf_24kwh_params(), 0.5);
  for (int i = 0; i < 100; ++i) pack.step(20e3, 60.0);
  EXPECT_DOUBLE_EQ(pack.soc_percent(), 0.0);
  EXPECT_TRUE(pack.depleted());
}

TEST(BatteryPack, EnergyBookkeepingIsConsistent) {
  BatteryPack pack(leaf_24kwh_params(), 100.0);
  const double e_full = pack.remaining_energy_j();
  // 24 kWh class pack.
  EXPECT_NEAR(e_full / 3.6e6, 23.8, 1.0);
  pack.reset(50.0);
  EXPECT_NEAR(pack.remaining_energy_j(), e_full / 2.0, 1e-6);
}

TEST(BatteryPack, RejectsBadInitialSoc) {
  EXPECT_THROW(BatteryPack(leaf_24kwh_params(), 101.0),
               std::invalid_argument);
  BatteryPack pack(leaf_24kwh_params(), 50.0);
  EXPECT_THROW(pack.step(1000.0, 0.0), std::invalid_argument);
}

// --- BMS ---

TEST(Bms, ServesRequestedPowerInNormalRange) {
  Bms bms(leaf_24kwh_params(), BmsLimits{}, 80.0);
  EXPECT_DOUBLE_EQ(bms.apply_power(15e3, 1.0), 15e3);
  EXPECT_FALSE(bms.protection_engaged());
}

TEST(Bms, BlocksDischargeBelowFloor) {
  BmsLimits limits;
  limits.min_soc_percent = 79.0;
  Bms bms(leaf_24kwh_params(), limits, 79.0);
  EXPECT_DOUBLE_EQ(bms.apply_power(10e3, 1.0), 0.0);
  EXPECT_TRUE(bms.protection_engaged());
}

TEST(Bms, CutsRegenAboveCeiling) {
  BmsLimits limits;
  limits.max_soc_percent = 90.0;
  Bms bms(leaf_24kwh_params(), limits, 90.0);
  EXPECT_DOUBLE_EQ(bms.apply_power(-10e3, 1.0), 0.0);
  EXPECT_TRUE(bms.protection_engaged());
}

TEST(Bms, DeratesToPowerLimits) {
  BmsLimits limits;
  limits.max_discharge_power_w = 20e3;
  Bms bms(leaf_24kwh_params(), limits, 80.0);
  EXPECT_DOUBLE_EQ(bms.apply_power(50e3, 1.0), 20e3);
  EXPECT_TRUE(bms.protection_engaged());
}

TEST(Bms, TracksCycleStressOverTrace) {
  Bms bms(leaf_24kwh_params(), BmsLimits{}, 90.0);
  for (int i = 0; i < 600; ++i) bms.apply_power(12e3, 1.0);
  EXPECT_EQ(bms.soc_trace().size(), 601u);
  const CycleStress stress = bms.cycle_stress();
  EXPECT_GT(stress.soc_deviation, 0.0);
  EXPECT_LT(stress.soc_average, 90.0);
  EXPECT_GT(bms.cycle_delta_soh(), 0.0);
  // Restarting the cycle clears the trace.
  bms.start_cycle(85.0);
  EXPECT_EQ(bms.soc_trace().size(), 1u);
  EXPECT_FALSE(bms.protection_engaged());
}

TEST(Bms, FlatterLoadGivesLowerFade) {
  // The core premise of the paper: for the same delivered energy, a flat
  // power profile stresses the battery less than a spiky one.
  const auto run = [](const std::vector<double>& load) {
    Bms bms(leaf_24kwh_params(), BmsLimits{}, 90.0);
    for (double p : load) bms.apply_power(p, 1.0);
    return bms.cycle_delta_soh();
  };
  std::vector<double> flat(1200, 10e3);
  std::vector<double> spiky;
  for (int i = 0; i < 1200; ++i) spiky.push_back(i % 2 ? 20e3 : 0.0);
  EXPECT_LT(run(flat), run(spiky));
}

}  // namespace
}  // namespace evc::bat
