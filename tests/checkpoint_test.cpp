// Crash-safe checkpointing: the typed binary serializer, the validating
// envelope, and byte-identical kill-and-resume of a full simulation
// session (plant + controller + fault-injector RNG + FDI state).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "drivecycle/standard_cycles.hpp"
#include "sim/checkpoint.hpp"
#include "sim/fault_injection.hpp"
#include "util/serialize.hpp"

namespace evc {
namespace {

// --- Typed binary serializer ---

TEST(Serialize, RoundTripsEveryType) {
  BinaryWriter w;
  w.write_bool(true);
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEFu);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_f64(-1.25e-300);
  const std::string with_null("ab\0cd", 5);
  w.write_string(with_null);
  w.write_f64_vec({0.1, -0.2, 1e300});
  w.write_size_vec({0, 1, std::size_t(-1)});
  w.section("end");

  const std::string bytes = w.take();
  BinaryReader r(bytes);
  EXPECT_EQ(r.read_bool(), true);
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_f64(), -1.25e-300);
  EXPECT_EQ(r.read_string(), with_null);
  EXPECT_EQ(r.read_f64_vec(), (std::vector<double>{0.1, -0.2, 1e300}));
  EXPECT_EQ(r.read_size_vec(), (std::vector<std::size_t>{0, 1, std::size_t(-1)}));
  r.expect_section("end");
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, DoubleRoundTripIsBitExactIncludingNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double tiny = std::numeric_limits<double>::denorm_min();
  BinaryWriter w;
  w.write_f64(nan);
  w.write_f64(inf);
  w.write_f64(-0.0);
  w.write_f64(tiny);
  const std::string bytes = w.take();
  BinaryReader r(bytes);
  EXPECT_TRUE(std::isnan(r.read_f64()));
  EXPECT_EQ(r.read_f64(), inf);
  EXPECT_TRUE(std::signbit(r.read_f64()));
  EXPECT_EQ(r.read_f64(), tiny);
}

TEST(Serialize, TypeTagMismatchThrows) {
  BinaryWriter w;
  w.write_f64(1.0);
  const std::string bytes = w.take();
  BinaryReader r(bytes);
  EXPECT_THROW(r.read_u64(), SerializationError);
}

TEST(Serialize, SectionNameMismatchThrows) {
  BinaryWriter w;
  w.section("controller");
  const std::string bytes = w.take();
  BinaryReader r(bytes);
  EXPECT_THROW(r.expect_section("plant"), SerializationError);
}

TEST(Serialize, TruncatedBufferThrows) {
  BinaryWriter w;
  w.write_f64(3.14);
  std::string bytes = w.take();
  bytes.resize(bytes.size() - 4);
  BinaryReader r(bytes);
  EXPECT_THROW(r.read_f64(), SerializationError);
}

// --- Checkpoint envelope ---

TEST(CheckpointEnvelope, EncodeDecodeRoundTrips) {
  const std::string payload("arbitrary \0 binary \xff payload", 28);
  const sim::Checkpoint ckpt = sim::Checkpoint::wrap(payload);
  const sim::Checkpoint back = sim::Checkpoint::decode(ckpt.encode());
  EXPECT_EQ(back.payload(), payload);
}

TEST(CheckpointEnvelope, RejectsBadMagic) {
  std::string bytes = sim::Checkpoint::wrap("payload").encode();
  bytes[0] = 'X';
  EXPECT_THROW(sim::Checkpoint::decode(bytes), SerializationError);
}

TEST(CheckpointEnvelope, RejectsVersionSkew) {
  std::string bytes = sim::Checkpoint::wrap("payload").encode();
  bytes[8] = static_cast<char>(bytes[8] + 1);  // u32 version after magic
  EXPECT_THROW(sim::Checkpoint::decode(bytes), SerializationError);
}

TEST(CheckpointEnvelope, RejectsTruncation) {
  const std::string bytes = sim::Checkpoint::wrap("payload").encode();
  EXPECT_THROW(sim::Checkpoint::decode(bytes.substr(0, bytes.size() - 1)),
               SerializationError);
  EXPECT_THROW(sim::Checkpoint::decode(bytes.substr(0, 10)),
               SerializationError);
}

TEST(CheckpointEnvelope, RejectsFlippedPayloadBit) {
  const std::string payload(64, 'p');
  std::string bytes = sim::Checkpoint::wrap(payload).encode();
  bytes[bytes.size() - 7] ^= 0x40;  // corrupt one payload byte
  EXPECT_THROW(sim::Checkpoint::decode(bytes), SerializationError);
}

TEST(CheckpointEnvelope, FileRoundTripAndOverwrite) {
  const std::string path = "checkpoint_test_envelope.bin";
  sim::Checkpoint::wrap("first").write_file(path);
  sim::Checkpoint::wrap("second — atomically replaces").write_file(path);
  const sim::Checkpoint back = sim::Checkpoint::read_file(path);
  EXPECT_EQ(back.payload(), "second — atomically replaces");
  std::remove(path.c_str());
}

// --- Session kill-and-resume ---

core::SimulationOptions faulted_options(sim::FaultInjector* injector) {
  core::SimulationOptions opts;
  opts.record_traces = true;
  opts.fault_injector = injector;
  return opts;
}

std::vector<sim::FaultSpec> test_schedule() {
  return {
      {sim::FaultSignal::kCabinTemp, sim::FaultKind::kDropout, 0.05, 0.0, 3},
      {sim::FaultSignal::kOutsideTemp, sim::FaultKind::kSpike, 0.03, 30.0, 1},
      {sim::FaultSignal::kSoc, sim::FaultKind::kStuckAt, 0.02, 150.0, 5},
  };
}

void expect_same_traces(const core::SimulationResult& a,
                        const core::SimulationResult& b) {
  ASSERT_EQ(a.recorder.channels(), b.recorder.channels());
  for (const std::string& ch : a.recorder.channels()) {
    const auto& va = a.recorder.values(ch);
    const auto& vb = b.recorder.values(ch);
    ASSERT_EQ(va.size(), vb.size()) << ch;
    for (std::size_t i = 0; i < va.size(); ++i)
      ASSERT_EQ(va[i], vb[i]) << ch << " diverges at sample " << i;
  }
  EXPECT_EQ(a.metrics.final_soc_percent, b.metrics.final_soc_percent);
  EXPECT_EQ(a.metrics.hvac_energy_j, b.metrics.hvac_energy_j);
  EXPECT_EQ(a.metrics.delta_soh_percent, b.metrics.delta_soh_percent);
  EXPECT_EQ(a.metrics.comfort.rms_error_c, b.metrics.comfort.rms_error_c);
}

TEST(SessionCheckpoint, ResumeIsByteIdenticalWithFaultsFdiAndMpc) {
  // The ISSUE acceptance criterion: N + checkpoint + restore + M steps
  // equals N + M uninterrupted steps bit-for-bit — including the MPC's
  // warm-start caches, the FDI layer mid-episode, and the fault
  // injector's RNG streams.
  const core::EvParams params;
  const auto profile =
      drive::make_cycle_profile(drive::StandardCycle::kEceEudc, 35.0)
          .window(0, 160);
  core::MpcOptions mpc_options;
  mpc_options.accessory_power_w = params.vehicle.accessory_power_w;
  ctl::SupervisorOptions sup_options;
  sup_options.fdi.enabled = true;

  // Reference: uninterrupted.
  core::SimulationResult reference;
  {
    auto controller =
        core::make_supervised_mpc_controller(params, mpc_options, sup_options);
    sim::FaultInjector injector(test_schedule(), 99);
    core::SimulationSession session(params, *controller, profile,
                                    faulted_options(&injector));
    session.run_to_completion();
    reference = session.finish();
  }

  // Interrupted: half-way checkpoint into a string, then a completely
  // fresh stack (controller, injector, session) resumes from it.
  std::string encoded;
  {
    auto controller =
        core::make_supervised_mpc_controller(params, mpc_options, sup_options);
    sim::FaultInjector injector(test_schedule(), 99);
    core::SimulationSession session(params, *controller, profile,
                                    faulted_options(&injector));
    while (session.step_index() < 80) session.advance();
    encoded = session.checkpoint();
  }
  core::SimulationResult resumed;
  {
    auto controller =
        core::make_supervised_mpc_controller(params, mpc_options, sup_options);
    sim::FaultInjector injector(test_schedule(), 99);
    core::SimulationSession session(params, *controller, profile,
                                    faulted_options(&injector));
    session.restore(encoded);
    EXPECT_EQ(session.step_index(), 80u);
    session.run_to_completion();
    resumed = session.finish();
  }

  expect_same_traces(reference, resumed);
}

TEST(SessionCheckpoint, FileRoundTripMatchesUninterruptedRun) {
  // Cheap controller (On/Off) so the file path variant stays fast.
  const core::EvParams params;
  const auto profile =
      drive::make_cycle_profile(drive::StandardCycle::kEceEudc, 35.0)
          .window(0, 400);
  const std::string path = "checkpoint_test_session.bin";

  core::SimulationResult reference;
  {
    auto controller = core::make_onoff_controller(params);
    core::SimulationSession session(params, *controller, profile, {});
    session.run_to_completion();
    reference = session.finish();
  }

  {
    auto controller = core::make_onoff_controller(params);
    core::SimulationSession session(params, *controller, profile, {});
    while (session.step_index() < 123) session.advance();
    session.checkpoint_to_file(path);
  }
  core::SimulationResult resumed;
  {
    auto controller = core::make_onoff_controller(params);
    core::SimulationSession session(params, *controller, profile, {});
    session.restore_from_file(path);
    session.run_to_completion();
    resumed = session.finish();
  }
  std::remove(path.c_str());

  expect_same_traces(reference, resumed);
}

TEST(SessionCheckpoint, RepeatedKillsStillMatchUninterrupted) {
  const core::EvParams params;
  const auto profile =
      drive::make_cycle_profile(drive::StandardCycle::kEceEudc, 35.0)
          .window(0, 300);
  // The fuzzy controller is unsupervised — no input sanitation — so the
  // schedule sticks to finite-valued faults (no NaN dropouts).
  const std::vector<sim::FaultSpec> finite_faults = {
      {sim::FaultSignal::kOutsideTemp, sim::FaultKind::kSpike, 0.04, 8.0, 2},
      {sim::FaultSignal::kSoc, sim::FaultKind::kBias, 0.03, -2.0, 6},
  };

  core::SimulationResult reference;
  {
    auto controller = core::make_fuzzy_controller(params);
    sim::FaultInjector injector(finite_faults, 7);
    core::SimulationSession session(params, *controller, profile,
                                    faulted_options(&injector));
    session.run_to_completion();
    reference = session.finish();
  }

  // Kill and rebuild the whole stack every 60 steps.
  std::string encoded;
  {
    auto controller = core::make_fuzzy_controller(params);
    sim::FaultInjector injector(finite_faults, 7);
    core::SimulationSession session(params, *controller, profile,
                                    faulted_options(&injector));
    encoded = session.checkpoint();
  }
  core::SimulationResult resumed;
  for (int segment = 0;; ++segment) {
    auto controller = core::make_fuzzy_controller(params);
    sim::FaultInjector injector(finite_faults, 7);
    core::SimulationSession session(params, *controller, profile,
                                    faulted_options(&injector));
    session.restore(encoded);
    const std::size_t stop =
        std::min<std::size_t>(session.step_index() + 60, profile.size());
    while (session.step_index() < stop) session.advance();
    if (session.done()) {
      resumed = session.finish();
      break;
    }
    encoded = session.checkpoint();
    ASSERT_LT(segment, 10) << "kill-and-resume loop failed to terminate";
  }

  expect_same_traces(reference, resumed);
}

TEST(SessionCheckpoint, ConfigMismatchesAreRefused) {
  const core::EvParams params;
  const auto profile =
      drive::make_cycle_profile(drive::StandardCycle::kEceEudc, 35.0)
          .window(0, 60);

  std::string encoded;
  {
    auto controller = core::make_onoff_controller(params);
    sim::FaultInjector injector(test_schedule(), 5);
    core::SimulationSession session(params, *controller, profile,
                                    faulted_options(&injector));
    while (session.step_index() < 20) session.advance();
    encoded = session.checkpoint();
  }

  {
    // Different fault-spec count: refused, not silently misassigned.
    auto controller = core::make_onoff_controller(params);
    sim::FaultInjector injector(
        {{sim::FaultSignal::kCabinTemp, sim::FaultKind::kDropout, 0.05, 0.0,
          3}},
        5);
    core::SimulationSession session(params, *controller, profile,
                                    faulted_options(&injector));
    EXPECT_THROW(session.restore(encoded), SerializationError);
  }
  {
    // Checkpoint carries fault state; restoring into a fault-free session
    // must be refused too.
    auto controller = core::make_onoff_controller(params);
    core::SimulationSession session(params, *controller, profile, {});
    EXPECT_THROW(session.restore(encoded), SerializationError);
  }
  {
    // A profile shorter than the checkpointed step index is a config error.
    const auto short_profile = profile.window(0, 10);
    auto controller = core::make_onoff_controller(params);
    sim::FaultInjector injector(test_schedule(), 5);
    core::SimulationSession session(params, *controller, short_profile,
                                    faulted_options(&injector));
    EXPECT_THROW(session.restore(encoded), SerializationError);
  }
}

TEST(SessionCheckpoint, SupervisorTierCountMismatchIsRefused) {
  const core::EvParams params;
  const auto profile =
      drive::make_cycle_profile(drive::StandardCycle::kEceEudc, 35.0)
          .window(0, 30);

  std::string encoded;
  {
    auto controller = core::make_supervised_mpc_controller(params);
    core::SimulationSession session(params, *controller, profile, {});
    while (session.step_index() < 5) session.advance();
    encoded = session.checkpoint();
  }
  // A single-tier controller cannot absorb a four-tier checkpoint.
  auto controller = core::make_onoff_controller(params);
  core::SimulationSession session(params, *controller, profile, {});
  EXPECT_THROW(session.restore(encoded), SerializationError);
}

}  // namespace
}  // namespace evc
